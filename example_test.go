package ft2_test

import (
	"fmt"

	"ft2"
)

// Example demonstrates the one-call FT2 flow: build a zoo model, attach the
// protection, and run a protected generation.
func Example() {
	cfg, err := ft2.ModelByName("llama2-7b-sim")
	if err != nil {
		panic(err)
	}
	m, err := ft2.NewModel(cfg, 42, ft2.FP16)
	if err != nil {
		panic(err)
	}
	prot := ft2.Protect(m, ft2.DefaultOptions())
	defer prot.Detach()

	out := prot.Generate([]int{4, 17, 42, 99}, 8)
	fmt.Println(len(out), "tokens, bounds for", prot.Bounds().Len(), "layers")
	// Output: 8 tokens, bounds for 12 layers
}

// ExampleIsCriticalLayer shows the structural criticality heuristic.
func ExampleIsCriticalLayer() {
	cfg, _ := ft2.ModelByName("opt-6.7b-sim")
	for _, kind := range cfg.Family.LayerKinds() {
		fmt.Printf("%s critical=%v\n", kind, ft2.IsCriticalLayer(cfg, kind))
	}
	// Output:
	// K_PROJ critical=false
	// Q_PROJ critical=false
	// V_PROJ critical=true
	// OUT_PROJ critical=true
	// FC1 critical=false
	// FC2 critical=true
}

// ExampleModels lists the paper's Table 2 zoo.
func ExampleModels() {
	for _, cfg := range ft2.Models() {
		fmt.Println(cfg.Name)
	}
	// Output:
	// opt-6.7b-sim
	// opt-2.7b-sim
	// gptj-6b-sim
	// llama2-7b-sim
	// vicuna-7b-sim
	// qwen2-7b-sim
	// qwen2-1.5b-sim
}
