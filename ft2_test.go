package ft2_test

import (
	"math/rand"
	"testing"

	"ft2"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	if len(ft2.Models()) != 7 {
		t.Fatal("zoo must expose 7 models")
	}
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ft2.LoadDataset("squad-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	p := ft2.Protect(m, ft2.DefaultOptions())
	defer p.Detach()
	out := p.Generate(ds.Inputs[0].Prompt, 20)
	if len(out) != 20 {
		t.Fatalf("generated %d tokens", len(out))
	}
	if p.Bounds().Len() == 0 {
		t.Error("FT2 captured no bounds")
	}
}

func TestPublicCriticality(t *testing.T) {
	cfg, err := ft2.ModelByName("llama2-7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	crit := ft2.CriticalLayers(cfg)
	if len(crit) != cfg.Blocks*4 {
		t.Errorf("critical layers = %d, want %d", len(crit), cfg.Blocks*4)
	}
	if ft2.IsCriticalLayer(cfg, crit[0].Kind) != true {
		t.Error("IsCriticalLayer inconsistent with CriticalLayers")
	}
}

func TestPublicCampaign(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ft2.LoadDataset("squad-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	ds.GenTokens, ds.AnswerLo, ds.AnswerHi = 12, 6, 10
	res, err := ft2.RunCampaign(ft2.CampaignSpec{
		ModelCfg: cfg, ModelSeed: 1, DType: ft2.FP16,
		Fault: ft2.ExponentBit, Method: ft2.MethodFT2,
		FT2Opts: ft2.DefaultOptions(), Dataset: ds,
		Trials: 10, BaseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC.Trials != 10 {
		t.Errorf("trials = %d", res.SDC.Trials)
	}
}

func TestPublicProfileBounds(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	store := ft2.ProfileBounds(m, [][]int{{4, 5, 6}}, 4)
	if store.Len() == 0 {
		t.Error("ProfileBounds recorded nothing")
	}
}

func TestPublicFaultInjection(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	plan := ft2.NewFaultPlan(cfg, 4, 8, ft2.FP16, ft2.ExponentBit, 2.0)
	rng := rand.New(rand.NewSource(5))
	site := plan.Sample(rng)
	inj := ft2.NewInjector(site, ft2.FP16)
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6, 7}, 8)
	if !inj.Fired {
		t.Error("public injector never fired")
	}
}
