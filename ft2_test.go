package ft2_test

import (
	"math/rand"
	"testing"

	"ft2"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	if len(ft2.Models()) != 7 {
		t.Fatal("zoo must expose 7 models")
	}
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ft2.LoadDataset("squad-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	p := ft2.Protect(m, ft2.DefaultOptions())
	defer p.Detach()
	out := p.Generate(ds.Inputs[0].Prompt, 20)
	if len(out) != 20 {
		t.Fatalf("generated %d tokens", len(out))
	}
	if p.Bounds().Len() == 0 {
		t.Error("FT2 captured no bounds")
	}
}

func TestPublicCriticality(t *testing.T) {
	cfg, err := ft2.ModelByName("llama2-7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	crit := ft2.CriticalLayers(cfg)
	if len(crit) != cfg.Blocks*4 {
		t.Errorf("critical layers = %d, want %d", len(crit), cfg.Blocks*4)
	}
	if ft2.IsCriticalLayer(cfg, crit[0].Kind) != true {
		t.Error("IsCriticalLayer inconsistent with CriticalLayers")
	}
}

func TestPublicCampaign(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ft2.LoadDataset("squad-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	ds.GenTokens, ds.AnswerLo, ds.AnswerHi = 12, 6, 10
	res, err := ft2.RunCampaign(ft2.CampaignSpec{
		ModelCfg: cfg, ModelSeed: 1, DType: ft2.FP16,
		Fault: ft2.ExponentBit, Method: ft2.MethodFT2,
		FT2Opts: ft2.DefaultOptions(), Dataset: ds,
		Trials: 10, BaseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC.Trials != 10 {
		t.Errorf("trials = %d", res.SDC.Trials)
	}
}

func TestPublicProfileBounds(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	store := ft2.ProfileBounds(m, [][]int{{4, 5, 6}}, 4)
	if store.Len() == 0 {
		t.Error("ProfileBounds recorded nothing")
	}
}

func TestPublicFaultInjection(t *testing.T) {
	cfg, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 1, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	plan := ft2.NewFaultPlan(cfg, 4, 8, ft2.FP16, ft2.ExponentBit, 2.0)
	rng := rand.New(rand.NewSource(5))
	site := plan.Sample(rng)
	inj := ft2.NewInjector(site, ft2.FP16)
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6, 7}, 8)
	if !inj.Fired {
		t.Error("public injector never fired")
	}
}

// TestPublicSafeGeneration covers the error-returning boundary wrappers:
// every misuse that panics on the raw Model methods must come back as an
// error here, and the happy path must match Model.Generate bit for bit.
func TestPublicSafeGeneration(t *testing.T) {
	cfg, err := ft2.ModelByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ft2.NewModel(cfg, 3, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}

	// Misuse before any prefill: DecodeStep must error, not panic.
	if _, err := ft2.DecodeStep(m, 1); err == nil {
		t.Fatal("DecodeStep before Prefill returned nil error")
	}
	// Restore of an empty snapshot must error, not panic.
	if _, err := ft2.RestoreSnapshot(m, &ft2.Snapshot{}); err == nil {
		t.Fatal("RestoreSnapshot of empty snapshot returned nil error")
	}

	// Bad prompts.
	for _, bad := range [][]int{
		nil,
		{},
		{-1, 2},
		{cfg.Vocab, 2},
		make([]int, cfg.MaxSeq+1),
	} {
		if _, err := ft2.Prefill(m, bad); err == nil {
			t.Fatalf("Prefill(%v...) returned nil error", bad[:min(len(bad), 3)])
		}
	}

	// Happy path: prefill + decode via the wrappers matches Generate.
	prompt := []int{4, 5, 6, 7}
	const n = 6
	ref, err := ft2.NewModel(cfg, 3, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Generate(prompt, n)

	got := make([]int, 0, n)
	tok, err := ft2.Prefill(m, prompt)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, tok)
	for len(got) < n {
		tok, err = ft2.DecodeStep(m, tok)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapper generation diverged at %d: got %v want %v", i, got, want)
		}
	}

	// Bad decode token on a live generation.
	if _, err := ft2.DecodeStep(m, cfg.Vocab); err == nil {
		t.Fatal("DecodeStep with out-of-vocab token returned nil error")
	}

	// Snapshot round trip through the safe wrapper.
	var snap ft2.Snapshot
	m.Checkpoint(&snap)
	back, err := ft2.RestoreSnapshot(m, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if back != tok {
		t.Fatalf("RestoreSnapshot token = %d, want %d", back, tok)
	}

	// Architecture mismatch must error, not panic.
	other, err := ft2.ModelByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ft2.NewModel(other, 3, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ft2.RestoreSnapshot(m2, &snap); err == nil {
		t.Fatal("RestoreSnapshot across architectures returned nil error")
	}

	// Sequence-budget exhaustion surfaces as an error, not a panic.
	small := cfg
	small.MaxSeq = 12 // just enough for NewModel's calibration pass
	tiny, err := ft2.NewModel(small, 3, ft2.FP16)
	if err != nil {
		t.Fatal(err)
	}
	tok, err = ft2.Prefill(tiny, prompt)
	if err != nil {
		t.Fatal(err)
	}
	exhausted := false
	for i := 0; i < small.MaxSeq+4; i++ {
		if tok, err = ft2.DecodeStep(tiny, tok); err != nil {
			exhausted = true
			break
		}
	}
	if !exhausted {
		t.Fatal("DecodeStep never reported sequence-budget exhaustion")
	}
}
