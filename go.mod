module ft2

go 1.22
