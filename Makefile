GO ?= go

.PHONY: build test vet race bench bench-json smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector pass covers the two packages with goroutine fan-out:
# the tensor kernels' row-parallel paths and the campaign worker pool.
race:
	$(GO) test -race ./internal/tensor/... ./internal/campaign/...

bench:
	$(GO) test -run XXX -bench 'BenchmarkGenerate(Unprotected|FT2)' -benchmem .
	$(GO) test -run XXX -bench BenchmarkDecodeStep -benchmem ./internal/model/

bench-json:
	$(GO) run ./cmd/ft2bench -bench-json BENCH_decode.json

# End-to-end resilience check: SIGINT a small campaign mid-run, resume it
# from the journal, and diff the final table against an uninterrupted run.
smoke:
	scripts/campaign_smoke.sh

ci: vet build test race smoke
