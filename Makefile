GO ?= go

.PHONY: build test vet race race-mp bench bench-json perfguard smoke serve-smoke serve-smoke-mp chaos-smoke prefix-smoke router-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector pass covers the packages with goroutine fan-out: the
# tensor kernels' pooled parallel paths, the campaign worker pool, and the
# serving scheduler with its shared read-only bounds store. race-mp repeats
# it at GOMAXPROCS=4 — adding internal/model so the mixed-phase fused-forward
# battery (co-batched prefill+decode with the per-(session×head) attention
# fan-out on pool workers) runs with real scheduler preemption even on
# single-core runners.
race:
	$(GO) test -race ./internal/tensor/... ./internal/campaign/... ./internal/serve/... ./internal/wire/... ./internal/router/...

race-mp:
	GOMAXPROCS=4 $(GO) test -race ./internal/tensor/... ./internal/model/... ./internal/campaign/... ./internal/serve/... ./internal/wire/... ./internal/router/...

bench:
	$(GO) test -run XXX -bench 'BenchmarkGenerate(Unprotected|FT2)' -benchmem .
	$(GO) test -run XXX -bench BenchmarkDecodeStep -benchmem ./internal/model/

bench-json:
	$(GO) run ./cmd/ft2bench -bench-json BENCH_decode.json

# Performance guard: with the calibrated kernel cost model, P=4
# single-session decode must not lose to P=1 on any model family and decode
# must stay allocation-free. Fails the build on regression.
perfguard:
	$(GO) run ./cmd/ft2bench -perfguard

# End-to-end resilience check: SIGINT a small campaign mid-run, resume it
# from the journal, and diff the final table against an uninterrupted run.
smoke:
	scripts/campaign_smoke.sh

# End-to-end serving check: selftest vs the oracle, concurrent HTTP traffic,
# metrics assertions, and a graceful SIGTERM drain with a request in flight.
# The -mp variant reruns it at GOMAXPROCS=4 to exercise the batched decode
# and pooled kernels under true concurrency.
serve-smoke:
	scripts/serve_smoke.sh

serve-smoke-mp:
	GOMAXPROCS=4 scripts/serve_smoke.sh

# Chaos-engineering check: derive an adaptive policy with ft2policy, run the
# ft2serve chaos selftest (control sessions bit-identical to the oracle under
# a seeded fault storm), then drive a live chaos-enabled server and verify
# metrics, the injection journal, and a graceful drain under fire.
chaos-smoke:
	scripts/chaos_smoke.sh

# Prefix-cache check: selftest (cold/warm shared-prefix storm vs the oracle),
# chaos selftest with the cache on, then a live cache-enabled server — warm
# HTTP responses bit-identical, prefix metrics live, SIGTERM drain with the
# cache populated.
prefix-smoke:
	scripts/prefix_smoke.sh

# Cluster check: router selftest (3 spawned workers, SIGKILL storm, every
# session bit-identical to the oracle), a live 2-worker cluster with the
# serving worker killed mid-stream twice, and durable session parking
# resumed across a worker restart.
router-smoke:
	scripts/router_smoke.sh

ci: vet build test race race-mp perfguard smoke serve-smoke serve-smoke-mp chaos-smoke prefix-smoke router-smoke
