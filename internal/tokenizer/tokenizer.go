// Package tokenizer implements the deterministic small-vocabulary tokenizer
// shared by the synthetic datasets and the model zoo. It plays the role of
// the real models' BPE tokenizers: a fixed id space, a handful of special
// tokens, and — important for the SDC/Masked decision — synonym classes that
// let the campaign classifier recognise semantically equivalent answers
// ("There are 5 people" vs "The number of people is 5" in the paper).
package tokenizer

import (
	"fmt"
	"strings"
)

// Special token ids. The vocabulary proper starts at FirstWordID.
const (
	PAD = iota
	BOS
	EOS
	UNK
	FirstWordID
)

// Tokenizer maps words to ids and back, and tracks synonym classes.
type Tokenizer struct {
	words   []string       // id-FirstWordID -> word
	ids     map[string]int // word -> id
	synonym map[int]int    // token id -> synonym class representative id
}

// New builds a tokenizer over the given word list. Duplicate words panic:
// the vocabulary is a fixed artifact, so a duplicate is a programming error.
func New(words []string) *Tokenizer {
	t := &Tokenizer{
		words:   append([]string(nil), words...),
		ids:     make(map[string]int, len(words)),
		synonym: make(map[int]int),
	}
	for i, w := range words {
		if _, dup := t.ids[w]; dup {
			panic(fmt.Sprintf("tokenizer: duplicate word %q", w))
		}
		t.ids[w] = FirstWordID + i
	}
	return t
}

// VocabSize returns the total id space (specials + words).
func (t *Tokenizer) VocabSize() int { return FirstWordID + len(t.words) }

// ID returns the id for word, or UNK if absent.
func (t *Tokenizer) ID(word string) int {
	if id, ok := t.ids[word]; ok {
		return id
	}
	return UNK
}

// Word returns the surface form of id.
func (t *Tokenizer) Word(id int) string {
	switch id {
	case PAD:
		return "<pad>"
	case BOS:
		return "<bos>"
	case EOS:
		return "<eos>"
	case UNK:
		return "<unk>"
	}
	idx := id - FirstWordID
	if idx < 0 || idx >= len(t.words) {
		return fmt.Sprintf("<bad:%d>", id)
	}
	return t.words[idx]
}

// Encode tokenizes a whitespace-separated string.
func (t *Tokenizer) Encode(s string) []int {
	fields := strings.Fields(s)
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		out = append(out, t.ID(f))
	}
	return out
}

// Decode renders token ids as a whitespace-joined string.
func (t *Tokenizer) Decode(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = t.Word(id)
	}
	return strings.Join(parts, " ")
}

// DeclareSynonyms marks all the given words as one semantic-equivalence
// class. Unknown words panic (same fixed-artifact rationale as New).
func (t *Tokenizer) DeclareSynonyms(words ...string) {
	if len(words) < 2 {
		panic("tokenizer: a synonym class needs at least two words")
	}
	rep := t.ID(words[0])
	if rep == UNK {
		panic(fmt.Sprintf("tokenizer: unknown synonym word %q", words[0]))
	}
	for _, w := range words {
		id := t.ID(w)
		if id == UNK {
			panic(fmt.Sprintf("tokenizer: unknown synonym word %q", w))
		}
		t.synonym[id] = rep
	}
}

// Canonical maps a token id to its synonym-class representative (itself if
// it belongs to no class).
func (t *Tokenizer) Canonical(id int) int {
	if rep, ok := t.synonym[id]; ok {
		return rep
	}
	return id
}

// Equivalent reports whether two token ids are semantically interchangeable.
func (t *Tokenizer) Equivalent(a, b int) bool {
	return a == b || t.Canonical(a) == t.Canonical(b)
}

// ContainsEquivalent reports whether haystack contains a contiguous
// subsequence semantically equivalent to needle. This is the paper's
// Masked/SDC rule: an output is masked if it (or an equivalent phrasing)
// still contains the reference answer.
func (t *Tokenizer) ContainsEquivalent(haystack, needle []int) bool {
	if len(needle) == 0 {
		return true
	}
	if len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, n := range needle {
			if !t.Equivalent(haystack[i+j], n) {
				continue outer
			}
		}
		return true
	}
	return false
}
