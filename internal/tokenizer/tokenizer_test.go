package tokenizer

import (
	"testing"
	"testing/quick"
)

func newTest() *Tokenizer {
	t := New([]string{"the", "cat", "sat", "mat", "five", "5", "people", "persons"})
	t.DeclareSynonyms("five", "5")
	t.DeclareSynonyms("people", "persons")
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tk := newTest()
	ids := tk.Encode("the cat sat")
	if len(ids) != 3 {
		t.Fatalf("Encode length %d", len(ids))
	}
	if tk.Decode(ids) != "the cat sat" {
		t.Errorf("round trip failed: %q", tk.Decode(ids))
	}
}

func TestUnknownWords(t *testing.T) {
	tk := newTest()
	if tk.ID("zebra") != UNK {
		t.Error("unknown word must map to UNK")
	}
	if tk.Word(UNK) != "<unk>" || tk.Word(BOS) != "<bos>" || tk.Word(EOS) != "<eos>" || tk.Word(PAD) != "<pad>" {
		t.Error("special token surface forms wrong")
	}
	if tk.Word(99999) == "" {
		t.Error("out-of-range id should render a diagnostic")
	}
}

func TestVocabSize(t *testing.T) {
	tk := newTest()
	if tk.VocabSize() != FirstWordID+8 {
		t.Errorf("VocabSize = %d", tk.VocabSize())
	}
}

func TestDuplicateWordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate word must panic")
		}
	}()
	New([]string{"a", "a"})
}

func TestSynonyms(t *testing.T) {
	tk := newTest()
	five, num5 := tk.ID("five"), tk.ID("5")
	if !tk.Equivalent(five, num5) {
		t.Error("five and 5 must be equivalent")
	}
	if !tk.Equivalent(five, five) {
		t.Error("identity equivalence")
	}
	if tk.Equivalent(five, tk.ID("cat")) {
		t.Error("five and cat must not be equivalent")
	}
	if tk.Canonical(num5) != five && tk.Canonical(num5) != num5 {
		t.Error("Canonical must map within the class")
	}
	if tk.Canonical(tk.ID("cat")) != tk.ID("cat") {
		t.Error("Canonical of unclassed word is itself")
	}
}

func TestDeclareSynonymsPanics(t *testing.T) {
	tk := newTest()
	for _, words := range [][]string{{"five"}, {"five", "zebra"}, {"zebra", "five"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DeclareSynonyms(%v) must panic", words)
				}
			}()
			tk.DeclareSynonyms(words...)
		}()
	}
}

func TestContainsEquivalent(t *testing.T) {
	tk := newTest()
	hay := tk.Encode("the cat sat five people")
	if !tk.ContainsEquivalent(hay, tk.Encode("five people")) {
		t.Error("exact subsequence must match")
	}
	if !tk.ContainsEquivalent(hay, tk.Encode("5 persons")) {
		t.Error("synonym subsequence must match")
	}
	if tk.ContainsEquivalent(hay, tk.Encode("five mat")) {
		t.Error("non-subsequence must not match")
	}
	if !tk.ContainsEquivalent(hay, nil) {
		t.Error("empty needle always matches")
	}
	if tk.ContainsEquivalent(tk.Encode("cat"), hay) {
		t.Error("needle longer than haystack must not match")
	}
}

// Property: any contiguous slice of a sequence is contained in it.
func TestContainsEquivalentProperty(t *testing.T) {
	tk := newTest()
	f := func(raw []uint8, lo, ln uint8) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = FirstWordID + int(r)%8
		}
		if len(seq) == 0 {
			return true
		}
		start := int(lo) % len(seq)
		end := start + int(ln)%(len(seq)-start+1)
		return tk.ContainsEquivalent(seq, seq[start:end])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
