package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ft2/internal/data"
)

// testConfig serves the smallest zoo model with one replica and enough
// session slots to force time-slicing — the regime where every
// park/restore bug shows.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Model:       "qwen2-1.5b-sim",
		Seed:        7,
		Replicas:    1,
		MaxSessions: 8,
		SliceSteps:  3,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func testPrompts(t *testing.T, n int) func(int) []int {
	t.Helper()
	ds, err := data.ByName("squad-sim", n)
	if err != nil {
		t.Fatal(err)
	}
	return func(i int) []int { return ds.Inputs[i%n].Prompt }
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServedMatchesOracle is the core contract: a generation served through
// the continuous-batching scheduler — sliced, parked, and resumed across
// many concurrent sessions on one replica — is bit-identical to the same
// generation run start-to-finish by GenerateInto, correction counters
// included.
func TestServedMatchesOracle(t *testing.T) {
	cfg := testConfig(t)
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 6)
	const maxTokens = 20

	for _, protected := range []bool{true, false} {
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: 8, Requests: 12, MaxTokens: maxTokens,
			Protected: protected, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("protected=%v: %d requests failed: %v", protected, st.Failed, st.Errs)
		}
		for i, res := range st.Results {
			want, corr, err := Oracle(srv.Config(), prompts(i), maxTokens, protected)
			if err != nil {
				t.Fatal(err)
			}
			if !equalTokens(res.Tokens, want) {
				t.Fatalf("protected=%v request %d: served %v != oracle %v", protected, i, res.Tokens, want)
			}
			if protected && (res.Corrections.OutOfBound != corr.OutOfBound ||
				res.Corrections.NaN != corr.NaN ||
				res.Corrections.FirstTokenNaN != corr.FirstTokenNaN) {
				t.Fatalf("request %d: corrections %+v != oracle %+v", i, res.Corrections, corr)
			}
		}
	}
}

// TestBatchMaxSweep pins the fusion contract across batch widths: the same
// protected load served with BatchMax 1 (pure serial fallback), 2, and 8
// produces bit-identical tokens — fusing sessions into DecodeStepBatch
// changes throughput, never results — and all match the GenerateInto oracle.
// The batched runs must also account every step in the batch metrics.
func TestBatchMaxSweep(t *testing.T) {
	prompts := testPrompts(t, 5)
	const requests, maxTokens = 10, 15

	run := func(batchMax int) [][]int {
		cfg := testConfig(t)
		cfg.BatchMax = batchMax
		srv := newTestServer(t, cfg)
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: 8, Requests: requests, MaxTokens: maxTokens,
			Protected: true, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("batchMax=%d: %v", batchMax, st.Errs)
		}
		if steps := srv.mx.batchSteps.Load(); steps <= 0 {
			t.Fatalf("batchMax=%d: no batched steps accounted", batchMax)
		}
		out := make([][]int, requests)
		for i, r := range st.Results {
			out[i] = r.Tokens
		}
		return out
	}

	resolved, err := testConfig(t).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	serial := run(1)
	for i := range serial {
		want, _, err := Oracle(resolved, prompts(i), maxTokens, true)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTokens(serial[i], want) {
			t.Fatalf("batchMax=1 request %d: %v != oracle %v", i, serial[i], want)
		}
	}
	for _, bm := range []int{2, 8} {
		batched := run(bm)
		for i := range serial {
			if !equalTokens(batched[i], serial[i]) {
				t.Fatalf("batchMax=%d request %d: %v != serial %v", bm, i, batched[i], serial[i])
			}
		}
	}
}

// TestContinuousBatching checks the defining property of the scheduler: a
// short request admitted while a long one is mid-flight finishes first,
// because sessions interleave in slices instead of running to completion.
func TestContinuousBatching(t *testing.T) {
	cfg := testConfig(t)
	cfg.StepDelay = 2 * time.Millisecond // slow decode enough to observe overlap
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 2)

	long, err := srv.Submit(context.Background(), Request{
		PromptTokens: prompts(0), MaxTokens: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Make sure the long request is already decoding before the short one
	// is admitted mid-flight.
	select {
	case <-long.Tokens():
	case <-time.After(10 * time.Second):
		t.Fatal("long request produced no token")
	}
	short, err := srv.Submit(context.Background(), Request{
		PromptTokens: prompts(1), MaxTokens: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-short.Done():
	case <-long.Done():
		t.Fatal("the 120-token request finished before the 5-token one: no interleaving")
	case <-time.After(30 * time.Second):
		t.Fatal("timed out")
	}
	if _, err := short.Wait(context.Background()); err != nil {
		t.Fatalf("short request failed: %v", err)
	}
	if _, err := long.Wait(context.Background()); err != nil {
		t.Fatalf("long request failed: %v", err)
	}
}

// TestBackpressure fills the session slots and the admission queue with
// throttled requests and checks the next submit is rejected with 429
// rather than blocking or crashing.
func TestBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxSessions = 2
	cfg.QueueDepth = 1
	cfg.StepDelay = 5 * time.Millisecond
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 1)

	var sessions []*Session
	sawFull := false
	for i := 0; i < 12 && !sawFull; i++ {
		s, err := srv.Submit(context.Background(), Request{PromptTokens: prompts(0), MaxTokens: 60})
		switch {
		case err == nil:
			sessions = append(sessions, s)
		case errors.Is(err, ErrQueueFull):
			sawFull = true
			if got := errStatus(err); got != http.StatusTooManyRequests {
				t.Fatalf("ErrQueueFull status = %d, want 429", got)
			}
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("never hit ErrQueueFull with queue depth 1")
	}
	for _, s := range sessions {
		if _, err := s.Wait(context.Background()); err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
}

// TestRequestValidation drives every malformed-request class through Submit
// and checks each comes back as a 400-class error — not a panic — and that
// the server still serves afterwards.
func TestRequestValidation(t *testing.T) {
	srv := newTestServer(t, testConfig(t))
	prompts := testPrompts(t, 1)
	maxSeq := srv.Config().ModelCfg.MaxSeq
	vocab := srv.Config().ModelCfg.Vocab

	bad := []Request{
		{MaxTokens: 4}, // no prompt source
		{PromptTokens: prompts(0), Text: "also text", MaxTokens: 4}, // two sources
		{PromptTokens: []int{1, vocab + 5}, MaxTokens: 4},           // out-of-vocab token
		{PromptTokens: []int{1, -2}, MaxTokens: 4},                  // negative token
		{PromptTokens: prompts(0)},                                  // max_tokens 0
		{PromptTokens: prompts(0), MaxTokens: maxSeq},               // MaxSeq overflow
		{Dataset: "no-such-corpus", MaxTokens: 4},                   // unknown dataset
		{Dataset: "squad-sim", Input: 9999, MaxTokens: 4},           // input out of range
	}
	for i, req := range bad {
		if _, err := srv.Submit(context.Background(), req); err == nil {
			t.Fatalf("bad request %d admitted", i)
		} else if got := errStatus(err); got != http.StatusBadRequest {
			t.Fatalf("bad request %d: status %d, want 400 (%v)", i, got, err)
		}
	}

	s, err := srv.Submit(context.Background(), Request{PromptTokens: prompts(0), MaxTokens: 4})
	if err != nil {
		t.Fatalf("server broken after bad requests: %v", err)
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDeadline checks a request whose deadline expires mid-generation
// settles with 504 and frees its slot.
func TestDeadline(t *testing.T) {
	cfg := testConfig(t)
	cfg.StepDelay = 10 * time.Millisecond
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 1)

	s, err := srv.Submit(context.Background(), Request{
		PromptTokens: prompts(0), MaxTokens: 200, DeadlineMS: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Wait(context.Background())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	// The slot must be free again: a fresh request still completes.
	s2, err := srv.Submit(context.Background(), Request{PromptTokens: prompts(0), MaxTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrain checks the shutdown sequence: draining rejects new
// submits with 503 while the in-flight request still completes normally,
// and Shutdown returns cleanly.
func TestGracefulDrain(t *testing.T) {
	cfg := testConfig(t)
	cfg.StepDelay = 2 * time.Millisecond
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 1)

	inflight, err := srv.Submit(context.Background(), Request{PromptTokens: prompts(0), MaxTokens: 40})
	if err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	if _, err := srv.Submit(context.Background(), Request{PromptTokens: prompts(0), MaxTokens: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: want ErrDraining, got %v", err)
	}
	res, err := inflight.Wait(context.Background())
	if err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if len(res.Tokens) != 40 {
		t.Fatalf("in-flight request truncated: %d tokens", len(res.Tokens))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestHTTPEndpoints exercises the full HTTP surface end to end against a
// httptest server: generate (single and streaming), models, healthz,
// metrics.
func TestHTTPEndpoints(t *testing.T) {
	srv := newTestServer(t, testConfig(t))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Single-document generate, text prompt, protected.
	resp := post(`{"text":"what city hosts the museum","max_tokens":8,"protected":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Tokens) != 8 || !res.Protected || res.Text == "" {
		t.Fatalf("generate result: %+v", res)
	}

	// Streaming: NDJSON token lines then a done line with the result.
	resp = post(`{"text":"what city hosts the museum","max_tokens":5,"stream":true}`)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []map[string]json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	resp.Body.Close()
	if len(lines) != 6 {
		t.Fatalf("stream: %d lines, want 5 tokens + 1 done", len(lines))
	}
	if _, ok := lines[5]["done"]; !ok {
		t.Fatalf("stream: last line is not the done line: %v", lines[5])
	}

	// Bad request: JSON error with 400, server stays up.
	resp = post(`{"max_tokens":0}`)
	if resp.StatusCode != 400 {
		t.Fatalf("bad generate: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Models.
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Serving string `json:"serving"`
		Models  []struct {
			Name    string `json:"name"`
			Serving bool   `json:"serving"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if models.Serving != "qwen2-1.5b-sim" || len(models.Models) < 7 {
		t.Fatalf("models: %+v", models)
	}

	// Healthz then metrics.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ft2serve_uptime_seconds",
		`ft2serve_model{name="qwen2-1.5b-sim"} 1`,
		`ft2serve_requests_total{code="200"} 2`,
		`ft2serve_requests_total{code="400"} 1`,
		"ft2serve_tokens_generated_total 13",
		"ft2serve_tokens_per_sec",
		`ft2serve_token_latency_ms{quantile="0.5"}`,
		`ft2serve_token_latency_ms{quantile="0.99"}`,
		"ft2serve_draining 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}

	// Drain flips healthz to 503.
	srv.BeginDrain()
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %v %d, want 503", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestConcurrentLoadAcrossReplicas runs a protected load over several
// replicas concurrently and re-checks determinism against a single-client
// run — same requests, same outputs, regardless of scheduling.
func TestConcurrentLoadAcrossReplicas(t *testing.T) {
	cfg := testConfig(t)
	cfg.Replicas = 2
	cfg.MaxSessions = 6
	prompts := testPrompts(t, 4)
	const requests, maxTokens = 8, 12

	run := func(clients int) [][]int {
		srv := newTestServer(t, cfg)
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: clients, Requests: requests, MaxTokens: maxTokens,
			Protected: true, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("clients=%d: %v", clients, st.Errs)
		}
		out := make([][]int, requests)
		for i, r := range st.Results {
			out[i] = r.Tokens
		}
		return out
	}

	sequential := run(1)
	concurrent := run(6)
	for i := range sequential {
		if !equalTokens(sequential[i], concurrent[i]) {
			t.Fatalf("request %d: concurrent %v != sequential %v", i, concurrent[i], sequential[i])
		}
	}
}
