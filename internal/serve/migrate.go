package serve

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/wire"
)

// This file is the scheduler's cluster surface: migration-checkpoint
// capture for /v1/sessions/export, snapshot adoption for
// /v1/sessions/import and spill resume, and the durable-parking writer.
//
// Capture ordering guarantee (what makes router-driven migration lossless):
// the worker goroutine that emitted token k runs any due checkpoint capture
// before the next decode step can emit k+1, so once a router has received
// token k+1 over the stream, GET /v1/sessions/export observes a checkpoint
// covering ≥ k+1−ExportStride tokens. The router therefore never has to
// replay more than one stride plus the tokens it already relayed.

// exportEntry is one session's latest migration checkpoint: the encoded
// wire blob and how many tokens it covers (Snapshot.NextStep at capture).
type exportEntry struct {
	blob   []byte
	tokens int
}

// exporting reports whether the session participates in checkpoint export.
func (sch *scheduler) exporting(s *Session) bool {
	return sch.cfg.ExportStride > 0 && s.req.SessionID != ""
}

// exportFor returns the latest checkpoint for a session id.
func (sch *scheduler) exportFor(id string) (exportEntry, bool) {
	sch.exportMu.Lock()
	e, ok := sch.exports[id]
	sch.exportMu.Unlock()
	return e, ok
}

// captureExport checkpoints the session's current state (KV rows + resume
// point, plus the fork state for protected sessions) into the export store.
// Called by the owning worker between steps; the replica's resident state is
// preserved around the capture, so it is safe both mid-batch and while the
// session's state is already swapped in (prefill completion).
func (sch *scheduler) captureExport(r *replica, s *Session) {
	blob, err := sch.encodeSessionState(r, s)
	if err != nil {
		log.Printf("serve: session %q checkpoint export failed: %v", s.req.SessionID, err)
		return
	}
	sch.exportMu.Lock()
	sch.exports[s.req.SessionID] = exportEntry{blob: blob, tokens: s.exportSnap.NextStep()}
	sch.exportMu.Unlock()
	sch.mx.ckptExports.Add(1)
}

// maybeSpill parks a successfully finished session's final state to the
// spill directory (durable parking). A later {"resume":true} request — to
// this process or a restarted one — picks the generation up from exactly
// this point. Failures are logged, never fail the request: parking is a
// best-effort bonus on top of a response already produced.
func (sch *scheduler) maybeSpill(r *replica, s *Session) {
	if sch.cfg.SpillDir == "" || s.req.SessionID == "" || !s.started {
		return
	}
	blob, err := sch.encodeSessionState(r, s)
	if err == nil {
		err = writeSpill(sch.cfg.SpillDir, s.req.SessionID, blob)
	}
	if err != nil {
		log.Printf("serve: session %q spill failed: %v", s.req.SessionID, err)
		return
	}
	sch.mx.sessSpilled.Add(1)
}

// encodeSessionState checkpoints s on replica r and encodes it (with the
// protected fork state) into a wire blob, reusing s.exportSnap's buffers.
func (sch *scheduler) encodeSessionState(r *replica, s *Session) ([]byte, error) {
	if s.exportSnap == nil {
		s.exportSnap = &model.Snapshot{}
	}
	m := r.m
	prev := m.SwapState(s.state)
	m.Checkpoint(s.exportSnap)
	m.SwapState(prev)
	var fk *core.ForkState
	if s.req.Protected {
		fk = &s.ftState
	}
	return wire.EncodeSession(s.exportSnap, fk)
}

// adoptGuarded is the adoption counterpart of prefillGuarded: the session's
// first slice restores its snapshot into (recycled) state, installs the
// fork state and the correction base, and leaves the session decode-ready.
// The snapshot was validated at the serve boundary (DecodeSessionFor +
// validateAdoptable), so Restore's panic paths are unreachable; the recover
// keeps an engine surprise inside the 500 boundary regardless.
func (sch *scheduler) adoptGuarded(r *replica, s *Session) (err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("serve: panic in session adoption: %v\n%s", p, debug.Stack())
			err = &apiError{Status: 500,
				Msg: fmt.Sprintf("serve: internal error: %v", p)}
		}
	}()
	m := r.m
	m.ClearHooks()
	if s.state == nil {
		s.state = sch.obtainState(r)
	}
	prev := m.SwapState(s.state)
	m.Restore(s.adoptSnap)
	m.SwapState(prev)
	s.lastTok = s.adoptSnap.LastToken()
	s.lastExport = s.adoptSnap.NextStep()
	s.started, s.prefillStarted = true, true
	s.startAt = time.Now()
	sch.mx.queueLat.observe(msSince(s.admitted, s.startAt))
	if s.adoptFT != nil {
		// The arriving counters are cumulative across the session's whole
		// life (the response must match the single-process oracle); corrBase
		// keeps server-level metrics to this process's delta.
		s.ftState = *s.adoptFT
		s.corrBase = core.ForkState{
			FirstTokenNaN: s.adoptFT.FirstTokenNaN,
			Stats:         s.adoptFT.Stats,
			ByKind:        s.adoptFT.ByKind,
		}
	}
	switch s.adoptKind {
	case adoptImport:
		sch.mx.sessImported.Add(1)
	case adoptSpill:
		sch.mx.sessRestored.Add(1)
	}
	s.adoptSnap, s.adoptFT = nil, nil
	return nil
}

// validateAdoptable rejects snapshots the scheduler could not adopt: prefix
// views without a resume point, tokens outside the vocabulary, and resumes
// whose extra token budget would overrun the KV capacity. Everything here
// would panic inside the engine; at this boundary it is a 4xx.
func validateAdoptable(snap *model.Snapshot, cfg model.Config, extraTokens int) error {
	if snap.NextStep() < 1 {
		return badRequest("snapshot is a prefix view (no resume point)")
	}
	if tok := snap.LastToken(); tok < 0 || tok >= cfg.Vocab {
		return badRequest("snapshot resume token %d outside vocabulary [0,%d)", tok, cfg.Vocab)
	}
	if extraTokens < 1 {
		return badRequest("no tokens left to generate from this snapshot")
	}
	if extraTokens > cfg.MaxSeq-snap.Rows() {
		return badRequest("snapshot rows (%d) + requested tokens (%d) exceed the model's max sequence %d",
			snap.Rows(), extraTokens, cfg.MaxSeq)
	}
	return nil
}

// spillPath maps a session id to its parking file. Ids are hashed so an
// arbitrary client string can never traverse outside the spill dir.
func spillPath(dir, id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	return filepath.Join(dir, fmt.Sprintf("%016x.ft2s", h.Sum64()))
}

// writeSpill atomically replaces the session's parking file (temp file +
// rename, so a crash or a concurrent resume never sees a torn blob).
func writeSpill(dir, id string, blob []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "spill-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), spillPath(dir, id)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readSpill loads a parked session's blob; missing files surface as 404.
func readSpill(dir, id string) ([]byte, error) {
	blob, err := os.ReadFile(spillPath(dir, id))
	if os.IsNotExist(err) {
		return nil, &apiError{Status: 404, Msg: fmt.Sprintf("serve: no parked session %q", id)}
	}
	return blob, err
}
