package serve

import (
	"net/http"
	"sync/atomic"
)

// StartupGate lets a worker bind its listener before the expensive part of
// startup — building the replicas — has finished, without ever reporting
// ready too early. Until Ready is called it answers 503 "initializing" on
// every path except /livez (the process is alive, just not ready), so a
// router health-checking /healthz keeps the worker out of rotation through
// the whole build window. After Ready it is a transparent passthrough.
//
//	gate := serve.NewStartupGate()
//	go http.Serve(ln, gate)      // port is up immediately
//	srv, err := serve.New(cfg)   // slow: weights + calibration
//	gate.Ready(srv.Handler())    // readiness flips atomically
type StartupGate struct {
	h atomic.Pointer[http.Handler]
}

// NewStartupGate returns a gate in the initializing state.
func NewStartupGate() *StartupGate { return &StartupGate{} }

// Ready installs the real handler; subsequent requests pass through.
func (g *StartupGate) Ready(h http.Handler) { g.h.Store(&h) }

func (g *StartupGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/livez" {
		w.Write([]byte("ok\n"))
		return
	}
	http.Error(w, "initializing", http.StatusServiceUnavailable)
}
