package serve

import (
	"context"
	"testing"
)

// Serving with packed-f16 weight storage must still match the GenerateInto
// oracle bit-for-bit: the oracle model is built with the same WeightsF16
// flag, and streaming the packed shadows is invisible to results by the
// tensor-layer contract.
func TestServedMatchesOracleWithF16Weights(t *testing.T) {
	cfg := testConfig(t)
	cfg.WeightsF16 = true
	srv := newTestServer(t, cfg)
	if !srv.Config().WeightsF16 {
		t.Fatal("WeightsF16 lost in config resolution")
	}
	prompts := testPrompts(t, 4)
	const maxTokens = 12

	for _, protected := range []bool{false, true} {
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: 4, Requests: 6, MaxTokens: maxTokens,
			Protected: protected, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("protected=%v: %d requests failed: %v", protected, st.Failed, st.Errs)
		}
		for i, res := range st.Results {
			want, _, err := Oracle(srv.Config(), prompts(i), maxTokens, protected)
			if err != nil {
				t.Fatal(err)
			}
			if !equalTokens(res.Tokens, want) {
				t.Fatalf("protected=%v request %d: served %v != oracle %v", protected, i, res.Tokens, want)
			}
		}
	}
}
