package serve

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"time"
)

// scheduler implements continuous batching over the replica pool: admitted
// sessions circulate through a ready ring, each worker repeatedly takes the
// next ready session, advances it by one slice on its replica, and puts it
// back — so a long generation shares replicas with short ones, a finished
// session frees its slot immediately, and the next queued request is
// admitted mid-flight. A worker whose ready ring is empty keeps its current
// session resident and skips the park/restore copies entirely.
type scheduler struct {
	cfg  Config
	pool *pool
	mx   *metrics

	mu       sync.RWMutex // guards draining + admit-channel close
	draining bool
	admit    chan *Session // bounded admission queue
	ready    chan *Session // circulating active sessions, cap MaxSessions
	slots    chan struct{} // active-session semaphore, cap MaxSessions

	sessions   map[*Session]struct{} // admitted, not yet finished
	sessionsMu sync.Mutex

	inflight       sync.WaitGroup // admitted sessions not yet finished
	workers        sync.WaitGroup
	dispatcherDone chan struct{}
	drainOnce      sync.Once
	closeOnce      sync.Once
}

func newScheduler(cfg Config, pool *pool, mx *metrics) *scheduler {
	sch := &scheduler{
		cfg:            cfg,
		pool:           pool,
		mx:             mx,
		admit:          make(chan *Session, cfg.QueueDepth),
		ready:          make(chan *Session, cfg.MaxSessions),
		slots:          make(chan struct{}, cfg.MaxSessions),
		sessions:       make(map[*Session]struct{}),
		dispatcherDone: make(chan struct{}),
	}
	go sch.dispatch()
	for i := range pool.replicas {
		sch.workers.Add(1)
		go sch.worker(i)
	}
	return sch
}

// submit validates nothing (the Server did); it only admits. The returned
// session is already circulating. Fails fast with ErrQueueFull or
// ErrDraining.
func (sch *scheduler) submit(ctx context.Context, req Request, prompt []int) (*Session, error) {
	deadline := sch.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	sctx, cancel := context.WithTimeout(ctx, deadline)
	s := &Session{
		req:      req,
		prompt:   prompt,
		ctx:      sctx,
		cancel:   cancel,
		out:      make([]int, 0, req.MaxTokens),
		tokens:   make(chan int, req.MaxTokens),
		done:     make(chan struct{}),
		admitted: time.Now(),
	}

	sch.mu.RLock()
	if sch.draining {
		sch.mu.RUnlock()
		cancel()
		return nil, ErrDraining
	}
	sch.inflight.Add(1)
	select {
	case sch.admit <- s:
		sch.mu.RUnlock()
	default:
		sch.mu.RUnlock()
		sch.inflight.Done()
		cancel()
		return nil, ErrQueueFull
	}

	sch.sessionsMu.Lock()
	sch.sessions[s] = struct{}{}
	sch.sessionsMu.Unlock()
	return s, nil
}

// dispatch moves queued sessions into the ready ring as session slots free
// up. It exits once the admission queue is closed (drain) and empty.
func (sch *scheduler) dispatch() {
	defer close(sch.dispatcherDone)
	for s := range sch.admit {
		sch.slots <- struct{}{} // blocks while MaxSessions are active
		sch.ready <- s          // cap MaxSessions ≥ active: never blocks
	}
}

// worker owns one replica slot and drives ready sessions over it.
func (sch *scheduler) worker(idx int) {
	defer sch.workers.Done()
	r := sch.pool.replicas[idx]
	for s := range sch.ready {
		r = sch.drive(r, s)
	}
}

// drive advances s slice by slice. When other sessions are waiting it parks
// s after each slice and round-robins; when none are, s stays resident and
// decodes without snapshot traffic. Returns the (possibly rebuilt) replica.
func (sch *scheduler) drive(r *replica, s *Session) *replica {
	for {
		done, err := sch.sliceGuarded(r, s)
		if err != nil {
			if r.resident == s {
				r.resident = nil
			}
			sch.finish(s, err)
			<-sch.slots
			if s.err != nil && errStatus(s.err) == 500 {
				// A panic escaped the engine mid-slice: the replica's KV
				// state and hook list are suspect. Replace it.
				if nr, rerr := sch.pool.rebuild(); rerr == nil {
					r = nr
				} else {
					r.m.ClearHooks()
				}
			}
			return r
		}
		if done {
			r.resident = nil
			sch.finish(s, nil)
			<-sch.slots
			return r
		}
		select {
		case next, ok := <-sch.ready:
			if !ok {
				// Ring closed with s still active: forced shutdown. Keep
				// driving s — its context has been canceled, so the next
				// slice fails fast.
				continue
			}
			s.park(r)
			sch.ready <- s // slot freed by the receive above: never blocks
			s = next
		default:
			// No one is waiting: keep s resident and continue.
		}
	}
}

// sliceGuarded is the per-slice fault boundary: any panic out of the
// engine (or a hook) is converted into a 500-class error for this request
// instead of crashing the server.
func (sch *scheduler) sliceGuarded(r *replica, s *Session) (done bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("serve: panic in session slice: %v\n%s", p, debug.Stack())
			err = &apiError{Status: 500,
				Msg: fmt.Sprintf("serve: internal error: %v", p)}
		}
	}()
	return s.advance(r, sch.cfg.SliceSteps, sch.cfg.StepDelay, sch.mx)
}

// finish settles a session: terminal result, stream close, bookkeeping.
func (sch *scheduler) finish(s *Session, err error) {
	if err != nil {
		s.err = err
	}
	s.finalize(sch.cfg.Model)
	s.cancel()
	close(s.tokens)
	close(s.done)

	sch.sessionsMu.Lock()
	delete(sch.sessions, s)
	sch.sessionsMu.Unlock()

	status := 200
	if s.err != nil {
		status = errStatus(s.err)
	}
	sch.mx.incStatus(status)
	sch.mx.reqLat.observe(msSince(s.admitted, time.Now()))
	if s.req.Protected {
		sch.mx.addCorrections(s.ftState)
	}
	sch.inflight.Done()
}

// beginDrain stops admission: subsequent submits fail with ErrDraining and
// the dispatcher exits once the already-queued sessions are scheduled.
// Idempotent.
func (sch *scheduler) beginDrain() {
	sch.drainOnce.Do(func() {
		sch.mu.Lock()
		sch.draining = true
		close(sch.admit)
		sch.mu.Unlock()
		sch.mx.draining.Store(true)
	})
}

// shutdown drains and stops the workers. In-flight and queued sessions are
// given until ctx expires to finish; past that their contexts are canceled
// and they settle with errors. Always returns with the workers stopped.
func (sch *scheduler) shutdown(ctx context.Context) error {
	sch.beginDrain()
	finished := make(chan struct{})
	go func() {
		<-sch.dispatcherDone
		sch.inflight.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		// Force the stragglers out: cancel every live session, then wait —
		// each fails at its next step boundary.
		sch.sessionsMu.Lock()
		for s := range sch.sessions {
			s.cancel()
		}
		sch.sessionsMu.Unlock()
		<-finished
	}
	sch.closeOnce.Do(func() { close(sch.ready) })
	sch.workers.Wait()
	return err
}

// queueDepth and activeSessions feed the metrics endpoint.
func (sch *scheduler) queueDepth() int     { return len(sch.admit) }
func (sch *scheduler) activeSessions() int { return len(sch.slots) }
