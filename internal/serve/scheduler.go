package serve

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ft2/internal/chaos"
	"ft2/internal/core"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/prefixcache"
	"ft2/internal/tensor"
)

// scheduler implements continuous batching over the replica pool: admitted
// sessions circulate through a ready ring; each worker repeatedly gathers up
// to BatchMax ready sessions into a group, advances the whole group one
// slice on its replica — fused into DecodeStepBatch calls so every weight
// matrix streams once per step for the whole group — and puts the survivors
// back. A long generation shares replicas with short ones, a finished
// session frees its slot immediately, and the next queued request is
// admitted mid-flight. Sessions own their KV state (model.DecodeState), so
// moving between replicas costs a pointer swap, not a snapshot copy.
type scheduler struct {
	cfg    Config
	pool   *pool
	mx     *metrics
	chaos  *chaos.Engine      // nil when chaos is off
	prefix *prefixcache.Cache // nil when the prefix cache is off

	nextID atomic.Int64 // session ids for the chaos journal

	mu       sync.RWMutex // guards draining + admit-channel close
	draining bool
	admit    chan *Session           // bounded admission queue
	ready    chan *Session           // circulating active sessions, cap MaxSessions
	slots    chan struct{}           // active-session semaphore, cap MaxSessions
	states   chan *model.DecodeState // recycled session KV states

	sessions   map[*Session]struct{} // admitted, not yet finished
	sessionsMu sync.Mutex

	// Migration checkpoints: latest wire-format blob per session id, written
	// by the owning worker at the export stride and served by
	// /v1/sessions/export. Entries die with their session's settle — a live
	// checkpoint is only useful while the generation is in flight.
	exportMu sync.Mutex
	exports  map[string]exportEntry

	inflight       sync.WaitGroup // admitted sessions not yet finished
	workers        sync.WaitGroup
	dispatcherDone chan struct{}
	drainOnce      sync.Once
	closeOnce      sync.Once
}

func newScheduler(cfg Config, pool *pool, mx *metrics, eng *chaos.Engine) *scheduler {
	sch := &scheduler{
		cfg:            cfg,
		pool:           pool,
		mx:             mx,
		chaos:          eng,
		admit:          make(chan *Session, cfg.QueueDepth),
		ready:          make(chan *Session, cfg.MaxSessions),
		slots:          make(chan struct{}, cfg.MaxSessions),
		states:         make(chan *model.DecodeState, cfg.MaxSessions),
		sessions:       make(map[*Session]struct{}),
		exports:        make(map[string]exportEntry),
		dispatcherDone: make(chan struct{}),
	}
	if cfg.PrefixCacheMB > 0 {
		sch.prefix = prefixcache.New(int64(cfg.PrefixCacheMB) << 20)
	}
	go sch.dispatch()
	for i := range pool.replicas {
		sch.workers.Add(1)
		go sch.worker(i)
	}
	return sch
}

// submit validates nothing (the Server did); it only admits. The returned
// session is already circulating. Fails fast with ErrQueueFull or
// ErrDraining.
func (sch *scheduler) submit(ctx context.Context, req Request, prompt []int) (*Session, error) {
	return sch.admitSession(ctx, req, prompt, nil, nil, adoptNone)
}

// submitAdopted admits a session that restores a decoded snapshot (plus the
// protected fork state, when present) instead of prefilling a prompt — the
// entry for live-migration imports and spill-dir resumes. req.MaxTokens is
// the number of tokens still to generate from the snapshot's resume point.
func (sch *scheduler) submitAdopted(ctx context.Context, req Request, snap *model.Snapshot, fk *core.ForkState, kind adoptKind) (*Session, error) {
	return sch.admitSession(ctx, req, nil, snap, fk, kind)
}

func (sch *scheduler) admitSession(ctx context.Context, req Request, prompt []int, snap *model.Snapshot, fk *core.ForkState, kind adoptKind) (*Session, error) {
	deadline := sch.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	sctx, cancel := context.WithTimeout(ctx, deadline)
	s := &Session{
		req:       req,
		prompt:    prompt,
		ctx:       sctx,
		cancel:    cancel,
		out:       make([]int, 0, req.MaxTokens),
		tokens:    make(chan int, req.MaxTokens),
		done:      make(chan struct{}),
		admitted:  time.Now(),
		id:        sch.nextID.Add(1),
		adoptSnap: snap,
		adoptFT:   fk,
		adoptKind: kind,
	}

	sch.mu.RLock()
	if sch.draining {
		sch.mu.RUnlock()
		cancel()
		return nil, ErrDraining
	}
	sch.inflight.Add(1)
	select {
	case sch.admit <- s:
		sch.mu.RUnlock()
	default:
		sch.mu.RUnlock()
		sch.inflight.Done()
		cancel()
		return nil, ErrQueueFull
	}

	sch.sessionsMu.Lock()
	sch.sessions[s] = struct{}{}
	sch.sessionsMu.Unlock()
	return s, nil
}

// dispatch moves queued sessions into the ready ring as session slots free
// up. It exits once the admission queue is closed (drain) and empty.
func (sch *scheduler) dispatch() {
	defer close(sch.dispatcherDone)
	for s := range sch.admit {
		sch.slots <- struct{}{} // blocks while MaxSessions are active
		sch.ready <- s          // cap MaxSessions ≥ active: never blocks
	}
}

// group is a worker's reusable slice batch: the sessions fused into this
// slice — mid-prefill and decoding alike — their per-slice step budgets,
// and the assembly buffers for ForwardBatch. Reused across slices so
// steady-state scheduling does not allocate.
type group struct {
	pending  []*Session // gathered from the ready ring
	sessions []*Session // after admit/weed; nil = settled mid-slice
	rem      []int      // steps left this slice (chunk or token), parallel to sessions
	ctls     []controller
	extras   []model.Hook // per-session chaos injector hook (usually nil)
	idx      []int        // participant indices of the current step
	items    []model.BatchItem
	toks     []int

	// chaos planning buffers, reused across slices.
	views   []chaos.SessionView
	victims []int // group indices behind views, parallel
}

// worker owns one replica slot and drives groups of ready sessions over it.
func (sch *scheduler) worker(idx int) {
	defer sch.workers.Done()
	r := sch.pool.replicas[idx]
	g := &group{}
	for s := range sch.ready {
		r = sch.runSlice(r, g, s)
	}
}

// runSlice advances one group of sessions by one scheduling slice: gather up
// to BatchMax ready sessions, open prefills for the unstarted ones (KV state,
// prefix-cache lookup — no prompt rows yet), then drive the whole group —
// mid-prefill and decoding sessions alike — through fused mixed-phase
// ForwardBatch steps. Returns the (possibly rebuilt) replica.
func (sch *scheduler) runSlice(r *replica, g *group, first *Session) *replica {
	g.pending = append(g.pending[:0], first)
	// Gather whatever is already ready, then yield up to twice and drain
	// again: a burst of clients submitting at a round boundary needs one
	// scheduler pass for their submits to reach the admit queue and one for
	// the dispatch goroutine to move them to the ready ring. Without the
	// yields the worker races ahead with a singleton group and serves the
	// whole slice serially while the rest of the burst sits queued; with
	// them the burst fuses from the first step. A genuinely lone session
	// pays only two no-op yields — no timer, no added latency.
	for tries := 0; len(g.pending) < sch.cfg.BatchMax; tries++ {
	gather:
		for len(g.pending) < sch.cfg.BatchMax {
			select {
			case s, ok := <-sch.ready:
				if !ok {
					tries = 2 // ring closed: forced shutdown, drive what we hold
					break gather
				}
				g.pending = append(g.pending, s)
			default:
				break gather
			}
		}
		if tries >= 2 {
			break
		}
		runtime.Gosched()
	}

	g.sessions, g.rem, g.ctls, g.extras = g.sessions[:0], g.rem[:0], g.ctls[:0], g.extras[:0]
	for _, s := range g.pending {
		if err := s.checkCtx(); err != nil {
			sch.settle(s, err)
			continue
		}
		if !s.started && s.adoptSnap != nil {
			// Adopted session (migration import / spill resume): restore the
			// snapshot instead of prefilling. Restore is a handful of copies,
			// so it does not consume a slice step.
			if err := sch.adoptGuarded(r, s); err != nil {
				sch.settle(s, err)
				if errStatus(err) == 500 {
					r = sch.replaceReplica(r)
				}
				continue
			}
		} else if !s.started && !s.prefillStarted {
			// First slice: open the prefill (state, cache lookup, admission
			// metrics). The prompt rows themselves are fed by the fused
			// slice loop below, co-batched with the decoding sessions.
			if err := sch.openPrefill(r, s); err != nil {
				sch.settle(s, err)
				if errStatus(err) == 500 {
					r = sch.replaceReplica(r)
				}
				continue
			}
		}
		g.sessions = append(g.sessions, s)
		g.rem = append(g.rem, sch.cfg.SliceSteps)
		g.extras = append(g.extras, nil)
	}
	if len(g.sessions) == 0 {
		return sch.postSlice(r)
	}

	// Reinstate each protected session's counters and first-token bounds on
	// its slot's controller; the decode hooks only read the shared bounds
	// store, so many sessions of one bounds lineage can decode in one batch.
	// A cold protected prefill (no bounds yet) gets a fresh store instead:
	// its hooks observe into it and the first chunk boundary captures it onto
	// the session.
	for i, s := range g.sessions {
		var f controller
		if s.req.Protected {
			f = r.controller(i)
			if s.ftState.Bounds != nil {
				f.ResumeFork(s.ftState)
			} else {
				f.Reset()
			}
		}
		g.ctls = append(g.ctls, f)
	}

	if sch.chaos != nil {
		sch.applyChaos(r, g)
	}

	if err := sch.fusedSlice(r, g); err != nil {
		// A panic escaped the engine mid-slice: every session still in the
		// group fails, and the replica's KV/hook state is suspect.
		for _, s := range g.sessions {
			if s != nil {
				sch.settle(s, err)
			}
		}
		return sch.replaceReplica(r)
	}
	return sch.postSlice(r)
}

// applyChaos plans and applies this slice's chaos faults while the worker
// holds the replica and no kernel is running. KV and weight mutations land
// right here at the boundary; activation faults become per-victim hooks
// that fire at their planned step inside the slice. Weight faults are
// replica-global, so the engine only emits them when every session in the
// group opted in; the replica is marked tainted and scrubbed in postSlice
// before it can serve anyone else.
func (sch *scheduler) applyChaos(r *replica, g *group) {
	g.views, g.victims = g.views[:0], g.victims[:0]
	allChaos := true
	for i, s := range g.sessions {
		if !s.req.Chaos {
			allChaos = false
			continue
		}
		if !s.started {
			// Mid-prefill sessions are never activation/KV victims — the
			// first token defines the FT2 bounds and the oracle baseline, so
			// session-scoped faults only target decoding sessions. They still
			// count toward the weight-fault opt-in gate above.
			continue
		}
		_, _, rows := s.state.KVSlabs(0)
		g.views = append(g.views, chaos.SessionView{
			ID: s.id, Step: s.state.Step(), Budget: g.rem[i], Rows: rows,
		})
		g.victims = append(g.victims, i)
	}
	plan := sch.chaos.PlanSlice(g.views, allChaos)
	if plan.Empty() {
		return
	}
	dtype := sch.chaos.Config().DType

	for _, f := range plan.Activation {
		i := g.victims[f.Session]
		s := g.sessions[i]
		hook := fault.NewInjector(f.Site, dtype).Hook()
		if prev := g.extras[i]; prev != nil {
			g.extras[i] = chainHooks(prev, hook)
		} else {
			g.extras[i] = hook
		}
		s.suspect = true
		sch.chaos.Record(chaos.Event{Kind: chaos.EvInject, Target: fault.TargetActivation.String(),
			Site: f.Site.String(), Session: s.id, Replica: r.slot, Step: f.Site.Step})
	}

	for _, f := range plan.KV {
		i := g.victims[f.Session]
		s := g.sessions[i]
		inj := fault.NewInjector(f.Site, dtype)
		inj.M = r.m
		prev := r.m.SwapState(s.state)
		inj.Fire()
		r.m.SwapState(prev)
		s.suspect = true
		sch.chaos.Record(chaos.Event{Kind: chaos.EvInject, Target: fault.TargetKVCache.String(),
			Site: f.Site.String(), Session: s.id, Replica: r.slot, Step: f.Site.Step})
	}

	for _, site := range plan.Weight {
		inj := fault.NewInjector(site, dtype)
		inj.M = r.m
		inj.Fire()
		r.tainted = true
		// Weights are replica-global: every opted-in session in the group —
		// including one whose prefill rows are computed after the flip — may
		// silently diverge.
		for _, s := range g.sessions {
			if s.req.Chaos {
				s.suspect = true
			}
		}
		sch.chaos.Record(chaos.Event{Kind: chaos.EvInject, Target: fault.TargetWeight.String(),
			Site: site.String(), Replica: r.slot, Step: site.Step})
	}
}

// chainHooks composes two hooks in order (burst: several activation faults
// on one victim in one slice).
func chainHooks(a, b model.Hook) model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		a(ctx, out)
		b(ctx, out)
	}
}

// postSlice is the detection-and-recovery boundary run after every slice on
// the owning worker: hybrid controllers drain their exact-correction
// counters, and a replica under persistent-corruption suspicion — chaos
// marked it tainted, or the ABFT tier recomputed a mismatch that would not
// repair (the signature of corrupted weights rather than a transient flip)
// — is scrubbed against its build-time weight checksum and rebuilt from
// seed when the scrub confirms. Sessions own their KV and fork state, so
// they survive the rebuild untouched.
func (sch *scheduler) postSlice(r *replica) *replica {
	counts := sch.drainHybrid(r)
	suspicion := r.tainted || counts.ABFT.Uncorrectable > 0
	r.tainted = false
	if !suspicion {
		return r
	}
	if r.scrub() {
		return r
	}
	if sch.chaos != nil {
		sch.chaos.Record(chaos.Event{Kind: chaos.EvScrubDetect, Replica: r.slot})
	}
	nr := sch.replaceReplica(r)
	if sch.chaos != nil {
		sch.chaos.Record(chaos.Event{Kind: chaos.EvRebuild, Replica: nr.slot})
	}
	return nr
}

// drainHybrid collects the exact-correction telemetry from every hybrid
// controller of the replica into the server metrics, returning the totals
// for suspicion checks. FT2-only controllers have nothing to drain.
func (sch *scheduler) drainHybrid(r *replica) core.HybridCounts {
	var total core.HybridCounts
	for _, c := range r.ctls {
		h, ok := c.(*core.Hybrid)
		if !ok {
			continue
		}
		d := h.DrainCounts()
		total.ABFT.Detected += d.ABFT.Detected
		total.ABFT.Corrected += d.ABFT.Corrected
		total.ABFT.Uncorrectable += d.ABFT.Uncorrectable
		total.DMRFixed += d.DMRFixed
	}
	if total != (core.HybridCounts{}) {
		sch.mx.addHybrid(total)
	}
	return total
}

// openPrefill runs a session's serial admission bookkeeping on its first
// slice, inside its own panic boundary: obtain a KV state, open the chunked
// prefill, consult the prefix cache, and — on a hit — fork the cached KV
// prefix (and, for protected sessions, the frozen first-token bounds) so
// only the unique suffix is computed. No prompt rows are computed here: the
// fused slice loop feeds the chunks, co-batched with decode rows.
func (sch *scheduler) openPrefill(r *replica, s *Session) (err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("serve: panic opening prefill: %v\n%s", p, debug.Stack())
			err = &apiError{Status: 500,
				Msg: fmt.Sprintf("serve: internal error: %v", p)}
		}
	}()
	m := r.m
	m.ClearHooks()
	if s.state == nil {
		s.state = sch.obtainState(r)
	}
	prev := m.SwapState(s.state)
	defer m.SwapState(prev)
	s.prefillStarted = true
	s.startAt = time.Now()
	sch.mx.queueLat.observe(msSince(s.admitted, s.startAt))
	sch.mx.promptTokens.Add(int64(len(s.prompt)))
	m.BeginPrefill(len(s.prompt))
	if sch.prefix != nil {
		if ref := sch.prefix.Lookup(s.prompt, s.req.Protected); ref != nil {
			m.ResumePrefillPrefix(ref.Snapshot())
			s.hitRows = ref.Rows()
			if s.req.Protected {
				// Seed the fork state from the frozen profile at exactly
				// hitRows rows; the clone is this session's to extend as it
				// observes the suffix (runSlice resumes it onto the slot's
				// controller).
				p := ref.FT()
				s.ftState = core.ForkState{Bounds: p.Bounds.Clone(), FirstTokenNaN: p.NaN}
			}
			ref.Release()
		}
		// Offer the finished prefill back unless the cache already covers
		// this prompt as deeply as a lookup could use it.
		s.insert = s.hitRows < len(s.prompt)-1
	}
	return nil
}

// finishPrefill completes a session's prefill bookkeeping right after the
// fused step that computed its final prompt chunk returned the first token:
// emit, freeze the first-token bounds, seed the migration checkpoint, and
// offer the full-prompt snapshot back to the prefix cache.
//
// Bit-identity: chunked, cache-seeded, co-batched, and single-pass prefills
// produce identical KV bits and first tokens (model.ForwardBatch /
// PrefillChunk contract), and the FT2 bounds merge identically — min/max
// observation is associative over row partitions and the frozen partial
// covers exactly the restored rows — so a cache-hit session's output matches
// a cold one and the GenerateInto oracle exactly.
func (sch *scheduler) finishPrefill(r *replica, g *group, i, tok int) {
	s := g.sessions[i]
	m := r.m
	s.started = true
	s.lastTok = tok
	s.emit(tok)
	sch.mx.tokensTotal.Add(1)
	if f := g.ctls[i]; f != nil {
		// The first-token bounds are complete once the final chunk ran;
		// clone them out of the controller so other sessions' Resets cannot
		// clear them.
		s.ftState = f.CaptureForkState()
	}
	if sch.exporting(s) && !s.finishedAfter(tok) {
		// Seed the migration checkpoint right after the first token, so a
		// router that loses this worker early in the generation can already
		// migrate instead of replaying the whole prefill.
		sch.captureExport(r, s)
		s.lastExport = 1
	}
	if sch.prefix != nil && s.insert {
		snap := &model.Snapshot{}
		prev := m.SwapState(s.state)
		m.Checkpoint(snap)
		m.SwapState(prev)
		var ft []prefixcache.FTPartial
		nanFree := true
		if s.req.Protected {
			// A NaN-corrected first token wrote corrected values into the KV;
			// a bare model would not reproduce them, so such entries serve
			// only protected sessions. The final partial shares the session's
			// captured store: decode steps never write bounds, and protected
			// hits clone before observing.
			nanFree = s.ftState.FirstTokenNaN == 0
			ft = append(s.partials, prefixcache.FTPartial{
				Rows: len(s.prompt), Bounds: s.ftState.Bounds, NaN: s.ftState.FirstTokenNaN})
			s.partials = nil
		}
		sch.prefix.Insert(s.prompt, snap, ft, nanFree)
	}
	if s.finishedAfter(tok) {
		sch.finishInGroup(r, g, i, nil)
	}
}

// fusedSlice is the mixed-phase fused engine loop and its fault boundary:
// each iteration advances every live session with step budget left — a
// decoding session by one token, a mid-prefill session by one bounded prompt
// chunk — through a single model.ForwardBatch call whose stacked rows stream
// every weight matrix once for the whole group. A prefill chunk consumes one
// slice step, so a session admitted mid-slice starts decoding in the same
// group the moment its prompt completes. Serial fallbacks keep the fast
// paths: a lone decoding session steps via swapped-state DecodeStep, and a
// decode-only step whose group is below the kernel cost model's fusion
// crossover (FuseWorthwhile) runs serially per session. Finished and expired
// sessions settle mid-loop; survivors are re-enqueued to the ready ring. Any
// panic out of the engine (or a hook) becomes a 500-class error for the
// whole group instead of crashing the server.
func (sch *scheduler) fusedSlice(r *replica, g *group) (err error) {
	defer func() {
		if p := recover(); p != nil {
			log.Printf("serve: panic in session slice: %v\n%s", p, debug.Stack())
			err = &apiError{Status: 500,
				Msg: fmt.Sprintf("serve: internal error: %v", p)}
		}
	}()
	m := r.m
	m.ClearHooks()
	cm := tensor.CurrentCostModel()

	// serial advances one decoding session via the single-row model path —
	// bit-identical to its fused row by the ForwardBatch contract.
	serial := func(i int) {
		s := g.sessions[i]
		m.ClearHooks()
		// A chaos injector hook registers before the protection controller —
		// faults corrupt the raw output, protection sees the corruption (the
		// campaign runner's ordering).
		if g.extras[i] != nil {
			m.RegisterHook(g.extras[i])
		}
		if g.ctls[i] != nil {
			g.ctls[i].Install()
		}
		prev := m.SwapState(s.state)
		s.lastTok = m.DecodeStep(s.lastTok)
		m.SwapState(prev)
		m.ClearHooks()
	}

	for {
		// Step boundary: settle sessions whose deadline expired or whose
		// client went away.
		for i, s := range g.sessions {
			if s == nil {
				continue
			}
			if cerr := s.checkCtx(); cerr != nil {
				sch.finishInGroup(r, g, i, cerr)
			}
		}

		// Assemble this step's fused items under the arena's row budget:
		// every participant with budget left contributes one decode row or
		// one ≤PrefillChunk prompt chunk; a chunk that would overflow the
		// budget shrinks to fit (and a session left with zero rows simply
		// waits for the next iteration — its step budget is untouched).
		g.idx = g.idx[:0]
		g.items = g.items[:0]
		rowBudget := m.Cfg.MaxSeq
		prefRows, decRows := 0, 0
		for i, s := range g.sessions {
			if s == nil || g.rem[i] <= 0 || rowBudget <= 0 {
				continue
			}
			if s.started {
				var hooks []model.Hook
				switch {
				case g.extras[i] != nil && g.ctls[i] != nil:
					hooks = []model.Hook{g.extras[i], g.ctls[i].Hook()}
				case g.extras[i] != nil:
					hooks = []model.Hook{g.extras[i]}
				case g.ctls[i] != nil:
					hooks = r.hooks(i)
				}
				g.items = append(g.items, model.BatchItem{State: s.state, Tok: s.lastTok, Hooks: hooks})
				g.idx = append(g.idx, i)
				rowBudget--
				decRows++
				continue
			}
			pos := s.state.PrefillPos()
			n := len(s.prompt) - pos
			if sch.cfg.PrefillChunk > 0 && n > sch.cfg.PrefillChunk {
				n = sch.cfg.PrefillChunk
			}
			if n > rowBudget {
				n = rowBudget
			}
			var hooks []model.Hook
			if g.ctls[i] != nil {
				hooks = r.hooks(i)
			}
			g.items = append(g.items, model.BatchItem{State: s.state, Prefill: s.prompt[pos : pos+n], Hooks: hooks})
			g.idx = append(g.idx, i)
			rowBudget -= n
			prefRows += n
		}
		if len(g.idx) == 0 {
			break
		}
		if sch.cfg.StepDelay > 0 {
			time.Sleep(sch.cfg.StepDelay)
		}

		t0 := time.Now()
		fused := false
		switch {
		case len(g.idx) == 1 && prefRows == 0:
			serial(g.idx[0])
		case prefRows == 0 && !cm.FuseWorthwhile(decRows):
			// Below the measured fusion crossover a small decode group runs
			// faster serially (per-row kernels keep their m=1 speed while the
			// fused slice pays the wider-matrix rate).
			for _, i := range g.idx {
				serial(i)
			}
		default:
			g.toks = m.ForwardBatch(g.items, g.toks[:0])
			fused = true
			sch.mx.fusedForwards.Add(1)
			sch.mx.fusedPrefillRows.Add(int64(prefRows))
			sch.mx.fusedDecodeRows.Add(int64(decRows))
			sch.mx.fusedRows.observe(float64(prefRows + decRows))
		}
		sch.mx.tokenLat.observe(msSince(t0, time.Now()))
		sch.mx.batchSize.observe(float64(len(g.idx)))
		sch.mx.batchSteps.Add(1)

		for n, i := range g.idx {
			s := g.sessions[i]
			if chunk := len(g.items[n].Prefill); chunk > 0 {
				sch.mx.prefillChunks.Add(1)
				sch.mx.prefillTokens.Add(int64(chunk))
				g.rem[i]-- // the chunk consumed one of this slice's steps
				if tok := g.toks[n]; tok >= 0 {
					sch.finishPrefill(r, g, i, tok)
					continue
				}
				if f := g.ctls[i]; f != nil {
					// Freeze the bounds at the chunk boundary: the capture
					// both carries the session to its next slice and —
					// cloned, since the next chunk keeps observing into the
					// captured store — becomes the FTPartial a future
					// protected hit can resume from.
					st := f.CaptureForkState()
					if s.insert {
						s.partials = append(s.partials, prefixcache.FTPartial{
							Rows: s.state.PrefillPos(), Bounds: st.Bounds.Clone(), NaN: st.FirstTokenNaN})
					}
					s.ftState = st
				}
				continue
			}
			if fused {
				s.lastTok = g.toks[n]
			}
			s.emit(s.lastTok)
			sch.mx.tokensTotal.Add(1)
			g.rem[i]--
			if s.finishedAfter(s.lastTok) {
				sch.finishInGroup(r, g, i, nil)
				continue
			}
			if sch.exporting(s) {
				// The checkpoint covering the token just emitted is captured
				// before the next step can emit another (same goroutine), so
				// a router that has seen token k can always fetch a
				// checkpoint within one stride of k.
				if total := s.state.Step() + 1; total-s.lastExport >= sch.cfg.ExportStride {
					if g.ctls[i] != nil {
						s.syncFT2(g.ctls[i])
					}
					sch.captureExport(r, s)
					s.lastExport = total
				}
			}
		}
	}

	// Survivors: capture their correction counters and put them back on the
	// ring (cap MaxSessions ≥ active sessions: never blocks).
	for i, s := range g.sessions {
		if s == nil {
			continue
		}
		if g.ctls[i] != nil {
			s.syncFT2(g.ctls[i])
		}
		sch.ready <- s
	}
	return nil
}

// finishInGroup settles a session mid-slice and removes it from the group.
// Successful finishes park the session to the spill dir first (while the
// worker still holds the replica its state can be checkpointed on).
func (sch *scheduler) finishInGroup(r *replica, g *group, i int, err error) {
	s := g.sessions[i]
	if g.ctls[i] != nil {
		s.syncFT2(g.ctls[i])
	}
	g.sessions[i] = nil
	if err == nil {
		sch.maybeSpill(r, s)
	}
	sch.settle(s, err)
}

// obtainState recycles a finished session's KV state or allocates a fresh
// one. States are architecture-identical across replicas, so any worker may
// reuse any state.
func (sch *scheduler) obtainState(r *replica) *model.DecodeState {
	select {
	case st := <-sch.states:
		return st
	default:
		return r.m.NewDecodeState()
	}
}

// replaceReplica swaps in a freshly built replica after a panic or a
// confirmed weight corruption poisoned the current one; if the rebuild
// fails the old one is kept with hooks cleared.
func (sch *scheduler) replaceReplica(r *replica) *replica {
	if nr, err := sch.pool.rebuild(r.slot); err == nil {
		sch.mx.rebuilds.Add(1)
		return nr
	}
	r.m.ClearHooks()
	r.tainted = false
	return r
}

// settle finishes a session: terminal result, stream close, bookkeeping,
// slot release, state recycling.
func (sch *scheduler) settle(s *Session, err error) {
	if err != nil {
		s.err = err
	}
	s.finalize(sch.cfg.Model)
	s.cancel()
	close(s.tokens)
	close(s.done)

	sch.sessionsMu.Lock()
	delete(sch.sessions, s)
	sch.sessionsMu.Unlock()

	if sch.exporting(s) {
		sch.exportMu.Lock()
		delete(sch.exports, s.req.SessionID)
		sch.exportMu.Unlock()
	}

	status := 200
	if s.err != nil {
		status = errStatus(s.err)
	}
	sch.mx.incStatus(status)
	sch.mx.reqLat.observe(msSince(s.admitted, time.Now()))
	if s.req.Protected {
		sch.mx.addCorrections(s.ftState, s.corrBase)
	}
	if s.suspect {
		sch.mx.sdcSuspect.Add(1)
	}
	if st := s.state; st != nil {
		s.state = nil
		select {
		case sch.states <- st:
		default:
		}
	}
	sch.inflight.Done()
	<-sch.slots
}

// beginDrain stops admission: subsequent submits fail with ErrDraining and
// the dispatcher exits once the already-queued sessions are scheduled.
// Idempotent.
func (sch *scheduler) beginDrain() {
	sch.drainOnce.Do(func() {
		sch.mu.Lock()
		sch.draining = true
		close(sch.admit)
		sch.mu.Unlock()
		sch.mx.draining.Store(true)
	})
}

// shutdown drains and stops the workers. In-flight and queued sessions are
// given until ctx expires to finish; past that their contexts are canceled
// and they settle with errors. Always returns with the workers stopped.
func (sch *scheduler) shutdown(ctx context.Context) error {
	sch.beginDrain()
	finished := make(chan struct{})
	go func() {
		<-sch.dispatcherDone
		sch.inflight.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		// Force the stragglers out: cancel every live session, then wait —
		// each fails at its next step boundary.
		sch.sessionsMu.Lock()
		for s := range sch.sessions {
			s.cancel()
		}
		sch.sessionsMu.Unlock()
		<-finished
	}
	sch.closeOnce.Do(func() { close(sch.ready) })
	sch.workers.Wait()
	return err
}

// queueDepth and activeSessions feed the metrics endpoint.
func (sch *scheduler) queueDepth() int     { return len(sch.admit) }
func (sch *scheduler) activeSessions() int { return len(sch.slots) }
