package serve

import (
	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
)

// replica is one model instance plus its reusable FT2 controller. A replica
// is owned by exactly one scheduler worker; sessions borrow it for a slice
// at a time.
type replica struct {
	m   *model.Model
	ft2 *core.FT2
	// resident is the session whose generation state currently lives in the
	// replica's KV cache (nil when none). A session advancing on the
	// replica it is resident on skips the Restore/Checkpoint round trip.
	resident *Session
}

// newReplica builds one replica of the pool's model. All replicas of a pool
// share (cfg, seed, dtype) and therefore have bit-identical weights.
func newReplica(cfg model.Config, seed int64, d numerics.DType, opts core.Options) (*replica, error) {
	m, err := model.New(cfg, seed, d)
	if err != nil {
		return nil, err
	}
	// The controller is built once and installed per protected slice; it
	// never runs with hooks left over from another session because every
	// slice starts from ClearHooks.
	return &replica{m: m, ft2: core.New(m, opts)}, nil
}

// pool is the fixed set of replicas, one per scheduler worker.
type pool struct {
	cfg      model.Config
	seed     int64
	dtype    numerics.DType
	ft2Opts  core.Options
	replicas []*replica
}

func newPool(c Config) (*pool, error) {
	p := &pool{cfg: c.ModelCfg, seed: c.Seed, dtype: c.DType, ft2Opts: c.FT2Opts}
	for i := 0; i < c.Replicas; i++ {
		r, err := newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts)
		if err != nil {
			return nil, err
		}
		p.replicas = append(p.replicas, r)
	}
	return p, nil
}

// rebuild replaces a replica whose state may be poisoned (a panic escaped a
// session slice). The scheduler worker that owns the slot calls it before
// touching the next session.
func (p *pool) rebuild() (*replica, error) {
	return newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts)
}
