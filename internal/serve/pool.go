package serve

import (
	"ft2/internal/abft"
	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
)

// controller abstracts the per-slot protection controller the scheduler
// drives: plain FT2 when the server runs the architectural coverage, or the
// policy-dispatching Hybrid when an adaptive protection policy is loaded.
// Both round-trip per-session state through the same ForkState, so sessions
// migrate between replicas identically either way.
type controller interface {
	Install()
	Hook() model.Hook
	Reset()
	ResumeFork(core.ForkState)
	CaptureForkState() core.ForkState
	Stats() protect.CorrectionStats
	StatsByKind() [model.NumLayerKinds]protect.CorrectionStats
	FirstTokenNaNCount() int
}

// replica is one model instance plus its per-batch-slot protection
// controllers. A replica is owned by exactly one scheduler worker; sessions
// borrow it for a slice at a time — serially (SwapState + Prefill/DecodeStep)
// or fused into one DecodeStepBatch call.
type replica struct {
	m      *model.Model
	opts   core.Options
	policy *protect.Policy
	refs   *abft.RefSums
	slot   int // pool index, for chaos journaling

	// checksum fingerprints the pristine weights at build time; scrub
	// compares against it to confirm (or clear) a persistent-corruption
	// suspicion.
	checksum uint64
	// tainted marks that chaos injected a persistent weight fault this
	// slice; the owning worker must scrub before the replica serves anyone
	// else.
	tainted bool

	// ctls[i] is the controller protecting the session in batch slot i, and
	// hookSets[i] the prebuilt one-element hook slice handed to
	// model.BatchItem.Hooks — built once so the per-step batch assembly
	// allocates nothing. Every controller resumes the session's own fork
	// state at slice start, so counters stay per-session even though the
	// controllers are replica-owned.
	ctls     []controller
	hookSets [][]model.Hook
}

// controller returns the slot's protection controller, growing the set on
// demand.
func (r *replica) controller(slot int) controller {
	for len(r.ctls) <= slot {
		var c controller
		if r.policy != nil {
			c = core.NewHybrid(r.m, r.opts, r.policy, r.refs)
		} else {
			c = core.New(r.m, r.opts)
		}
		r.ctls = append(r.ctls, c)
		r.hookSets = append(r.hookSets, []model.Hook{c.Hook()})
	}
	return r.ctls[slot]
}

// hooks returns the prebuilt hook slice for a slot (controller(slot) must
// have been called first this slice).
func (r *replica) hooks(slot int) []model.Hook { return r.hookSets[slot] }

// scrub re-fingerprints the weights and reports whether they still match
// the build-time checksum — the confirmation step behind a
// persistent-corruption suspicion. Any flipped bit (including one that
// produced a non-finite weight) changes the checksum.
func (r *replica) scrub() bool {
	return r.m.WeightChecksum() == r.checksum
}

// newReplica builds one replica of the pool's model. All replicas of a pool
// share (cfg, seed, dtype) and therefore have bit-identical weights — and
// identical checksums and ABFT reference sums.
func newReplica(cfg model.Config, seed int64, d numerics.DType, opts core.Options, f16 bool, policy *protect.Policy, slot int) (*replica, error) {
	m, err := model.New(cfg, seed, d)
	if err != nil {
		return nil, err
	}
	if f16 {
		m.EnableF16Weights()
	}
	r := &replica{m: m, opts: opts, policy: policy, slot: slot, checksum: m.WeightChecksum()}
	if kinds := policy.Kinds(protect.TierABFT, protect.TierABFTFT2); len(kinds) > 0 {
		r.refs = abft.CaptureRefSums(m, kinds...)
	}
	return r, nil
}

// pool is the fixed set of replicas, one per scheduler worker.
type pool struct {
	cfg      model.Config
	seed     int64
	dtype    numerics.DType
	ft2Opts  core.Options
	f16      bool
	policy   *protect.Policy
	replicas []*replica
}

func newPool(c Config) (*pool, error) {
	p := &pool{cfg: c.ModelCfg, seed: c.Seed, dtype: c.DType, ft2Opts: c.FT2Opts,
		f16: c.WeightsF16, policy: c.ProtectPolicy}
	for i := 0; i < c.Replicas; i++ {
		r, err := newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts, p.f16, p.policy, i)
		if err != nil {
			return nil, err
		}
		p.replicas = append(p.replicas, r)
	}
	return p, nil
}

// rebuild replaces a replica whose state may be poisoned (a panic escaped a
// session slice, or a weight scrub confirmed persistent corruption). The
// scheduler worker that owns the slot calls it before touching the next
// session.
func (p *pool) rebuild(slot int) (*replica, error) {
	return newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts, p.f16, p.policy, slot)
}
