package serve

import (
	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
)

// replica is one model instance plus its per-batch-slot FT2 controllers. A
// replica is owned by exactly one scheduler worker; sessions borrow it for a
// slice at a time — serially (SwapState + Prefill/DecodeStep) or fused into
// one DecodeStepBatch call.
type replica struct {
	m    *model.Model
	opts core.Options

	// ctls[i] is the controller protecting the session in batch slot i, and
	// hookSets[i] the prebuilt one-element hook slice handed to
	// model.BatchItem.Hooks — built once so the per-step batch assembly
	// allocates nothing. Every controller resumes the session's own fork
	// state at slice start, so counters stay per-session even though the
	// controllers are replica-owned.
	ctls     []*core.FT2
	hookSets [][]model.Hook
}

// controller returns the slot's FT2 controller, growing the set on demand.
func (r *replica) controller(slot int) *core.FT2 {
	for len(r.ctls) <= slot {
		f := core.New(r.m, r.opts)
		r.ctls = append(r.ctls, f)
		r.hookSets = append(r.hookSets, []model.Hook{f.Hook()})
	}
	return r.ctls[slot]
}

// hooks returns the prebuilt hook slice for a slot (controller(slot) must
// have been called first this slice).
func (r *replica) hooks(slot int) []model.Hook { return r.hookSets[slot] }

// newReplica builds one replica of the pool's model. All replicas of a pool
// share (cfg, seed, dtype) and therefore have bit-identical weights.
func newReplica(cfg model.Config, seed int64, d numerics.DType, opts core.Options, f16 bool) (*replica, error) {
	m, err := model.New(cfg, seed, d)
	if err != nil {
		return nil, err
	}
	if f16 {
		m.EnableF16Weights()
	}
	return &replica{m: m, opts: opts}, nil
}

// pool is the fixed set of replicas, one per scheduler worker.
type pool struct {
	cfg      model.Config
	seed     int64
	dtype    numerics.DType
	ft2Opts  core.Options
	f16      bool
	replicas []*replica
}

func newPool(c Config) (*pool, error) {
	p := &pool{cfg: c.ModelCfg, seed: c.Seed, dtype: c.DType, ft2Opts: c.FT2Opts, f16: c.WeightsF16}
	for i := 0; i < c.Replicas; i++ {
		r, err := newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts, p.f16)
		if err != nil {
			return nil, err
		}
		p.replicas = append(p.replicas, r)
	}
	return p, nil
}

// rebuild replaces a replica whose state may be poisoned (a panic escaped a
// session slice). The scheduler worker that owns the slot calls it before
// touching the next session.
func (p *pool) rebuild() (*replica, error) {
	return newReplica(p.cfg, p.seed, p.dtype, p.ft2Opts, p.f16)
}
