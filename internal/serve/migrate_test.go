package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// submitAndWait runs one request to completion against srv.
func submitAndWait(t *testing.T, srv *Server, req Request) Result {
	t.Helper()
	sess, err := srv.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// streamLine mirrors the worker's NDJSON stream shape.
type streamLine struct {
	Token  *int    `json:"token"`
	Word   string  `json:"word"`
	Done   bool    `json:"done"`
	Error  string  `json:"error"`
	Result *Result `json:"result"`
}

func readStream(t *testing.T, body io.Reader) ([]int, *Result, string) {
	t.Helper()
	var toks []int
	dec := json.NewDecoder(body)
	for {
		var l streamLine
		if err := dec.Decode(&l); err != nil {
			if err == io.EOF {
				t.Fatal("stream ended without a done line")
			}
			t.Fatal(err)
		}
		if l.Done {
			return toks, l.Result, l.Error
		}
		if l.Token != nil {
			toks = append(toks, *l.Token)
		}
	}
}

// TestExportImportMigration drives a session with checkpoint export on,
// pulls its live checkpoint over HTTP mid-generation, imports it into a
// SECOND server (a different process in spirit), and checks stitched output
// and cumulative corrections are bit-identical to the oracle — the
// worker-side half of live migration.
func TestExportImportMigration(t *testing.T) {
	const maxTokens = 24
	cfg := testConfig(t)
	cfg.ExportStride = 4
	cfg.StepDelay = 2 * time.Millisecond
	srcSrv := newTestServer(t, cfg)
	ts := httptest.NewServer(srcSrv.Handler())
	defer ts.Close()

	prompts := testPrompts(t, 1)
	oracleToks, oracleCorr, err := Oracle(srcSrv.Config(), prompts(0), maxTokens, true)
	if err != nil {
		t.Fatal(err)
	}

	// Start a streaming generation, read a few tokens, then grab the live
	// checkpoint while the session is still in flight.
	body, _ := json.Marshal(Request{
		PromptTokens: prompts(0), MaxTokens: maxTokens, Protected: true,
		Stream: true, SessionID: "migrate-me",
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var received []int
	for len(received) < 8 {
		var l streamLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.Done {
			t.Fatalf("stream finished after %d tokens, wanted to catch it mid-flight", len(received))
		}
		received = append(received, *l.Token)
	}

	exp, err := http.Get(ts.URL + "/v1/sessions/export?id=migrate-me")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(exp.Body)
	exp.Body.Close()
	if exp.StatusCode != 200 {
		t.Fatalf("export: %d %s", exp.StatusCode, blob)
	}
	ckptTokens, err := strconv.Atoi(exp.Header.Get("X-FT2-Checkpoint-Tokens"))
	if err != nil || ckptTokens < 1 {
		t.Fatalf("bad X-FT2-Checkpoint-Tokens %q", exp.Header.Get("X-FT2-Checkpoint-Tokens"))
	}
	if ckptTokens > len(received) {
		// The checkpoint may trail what we've read but never lead past the
		// emitted stream by more than the in-flight token; reading the
		// stream serialized emission, so this bound is exact.
		t.Fatalf("checkpoint covers %d tokens but only %d were received", ckptTokens, len(received))
	}

	// Import onto a second, fresh server — the "surviving worker".
	dstSrv := newTestServer(t, cfg)
	ts2 := httptest.NewServer(dstSrv.Handler())
	defer ts2.Close()
	ib, _ := json.Marshal(ImportRequest{
		SessionID: "migrate-me", MaxTokensTotal: maxTokens, Snapshot: blob,
	})
	iresp, err := http.Post(ts2.URL+"/v1/sessions/import", "application/json", bytes.NewReader(ib))
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	if iresp.StatusCode != 200 {
		msg, _ := io.ReadAll(iresp.Body)
		t.Fatalf("import: %d %s", iresp.StatusCode, msg)
	}
	suffix, ires, ierr := readStream(t, iresp.Body)
	if ierr != "" {
		t.Fatalf("import stream error: %s", ierr)
	}

	stitched := append(append([]int(nil), received[:ckptTokens]...), suffix...)
	if !equalTokens(stitched, oracleToks) {
		t.Fatalf("migrated output diverged:\n got %v\nwant %v", stitched, oracleToks)
	}
	if ires.Corrections.OutOfBound != oracleCorr.OutOfBound {
		t.Fatalf("migrated corrections %d != oracle %d (must be cumulative)",
			ires.Corrections.OutOfBound, oracleCorr.OutOfBound)
	}
	if got := dstSrv.mx.sessImported.Load(); got != 1 {
		t.Fatalf("sessions_imported_total %d, want 1", got)
	}

	// Drain the original stream so the test server can close down cleanly.
	for {
		var l streamLine
		if err := dec.Decode(&l); err != nil || l.Done {
			break
		}
	}
}

// TestSpillResumeAcrossRestart parks a finished session on disk, then
// resumes it on a brand-new server instance (simulating a process restart)
// for N more tokens: the concatenation must be bit-identical to a 2N-token
// oracle run, corrections cumulative, and the spill/restore counters live.
func TestSpillResumeAcrossRestart(t *testing.T) {
	const half = 10
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.SpillDir = dir
	prompts := testPrompts(t, 1)

	srv1 := newTestServer(t, cfg)
	oracleToks, oracleCorr, err := Oracle(srv1.Config(), prompts(0), 2*half, true)
	if err != nil {
		t.Fatal(err)
	}
	res1 := submitAndWait(t, srv1, Request{
		PromptTokens: prompts(0), MaxTokens: half, Protected: true, SessionID: "parked",
	})
	if got := srv1.mx.sessSpilled.Load(); got != 1 {
		t.Fatalf("sessions_spilled_total %d, want 1", got)
	}
	srv1.Shutdown(context.Background())

	srv2 := newTestServer(t, cfg) // "after restart": same spill dir, new process state
	res2 := submitAndWait(t, srv2, Request{
		Resume: true, SessionID: "parked", MaxTokens: half,
	})
	full := append(append([]int(nil), res1.Tokens...), res2.Tokens...)
	if !equalTokens(full, oracleToks) {
		t.Fatalf("spill+resume diverged:\n got %v\nwant %v", full, oracleToks)
	}
	if !res2.Protected {
		t.Fatal("resumed session lost its protection")
	}
	if res2.Corrections.OutOfBound != oracleCorr.OutOfBound {
		t.Fatalf("resumed corrections %d != oracle %d", res2.Corrections.OutOfBound, oracleCorr.OutOfBound)
	}
	if got := srv2.mx.sessRestored.Load(); got != 1 {
		t.Fatalf("sessions_restored_total %d, want 1", got)
	}

	// The resumed session finished successfully, so it was re-parked: a
	// second resume continues from 2N. Metrics must show both counters.
	rec := httptest.NewRecorder()
	srv2.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{"ft2serve_sessions_spilled_total 1", "ft2serve_sessions_restored_total 1"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestResumeValidation covers the resume error surface: parking off,
// unknown ids, prompts on resume requests.
func TestResumeValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.SpillDir = t.TempDir()
	srv := newTestServer(t, cfg)

	cases := []struct {
		name   string
		req    Request
		status int
	}{
		{"unknown id", Request{Resume: true, SessionID: "nope", MaxTokens: 4}, 404},
		{"missing id", Request{Resume: true, MaxTokens: 4}, 400},
		{"prompt on resume", Request{Resume: true, SessionID: "x", MaxTokens: 4, Text: "hi"}, 400},
		{"no budget", Request{Resume: true, SessionID: "x", MaxTokens: 0}, 400},
	}
	for _, tc := range cases {
		_, err := srv.Submit(context.Background(), tc.req)
		if err == nil || errStatus(err) != tc.status {
			t.Fatalf("%s: got %v (status %d), want %d", tc.name, err, errStatus(err), tc.status)
		}
	}

	off := testConfig(t)
	srvOff := newTestServer(t, off)
	if _, err := srvOff.Submit(context.Background(), Request{Resume: true, SessionID: "x", MaxTokens: 4}); errStatus(err) != 404 {
		t.Fatalf("parking off: got %v, want 404", err)
	}
}

// TestImportValidation covers the import error surface: garbage blobs and
// exhausted budgets must answer 4xx, not panic or 500.
func TestImportValidation(t *testing.T) {
	cfg := testConfig(t)
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/sessions/import", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	garbage, _ := json.Marshal(ImportRequest{SessionID: "g", MaxTokensTotal: 8, Snapshot: []byte("not a blob")})
	if code := post(garbage); code != 400 {
		t.Fatalf("garbage snapshot: %d, want 400", code)
	}
	if code := post([]byte("{")); code != 400 {
		t.Fatalf("bad json: %d, want 400", code)
	}
}

// TestStartupGate checks the liveness/readiness split during the build
// window: /healthz 503s, /livez 200s, and after Ready everything passes
// through to the real handler.
func TestStartupGate(t *testing.T) {
	gate := NewStartupGate()
	ts := httptest.NewServer(gate)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != 503 {
		t.Fatalf("initializing /healthz: %d, want 503", code)
	}
	if code := get("/v1/generate"); code != 503 {
		t.Fatalf("initializing /v1/generate: %d, want 503", code)
	}
	if code := get("/livez"); code != 200 {
		t.Fatalf("initializing /livez: %d, want 200", code)
	}

	srv := newTestServer(t, testConfig(t))
	gate.Ready(srv.Handler())
	if code := get("/healthz"); code != 200 {
		t.Fatalf("ready /healthz: %d, want 200", code)
	}
	srv.BeginDrain()
	if code := get("/healthz"); code != 503 {
		t.Fatalf("draining /healthz: %d, want 503 (readiness)", code)
	}
	if code := get("/livez"); code != 200 {
		t.Fatalf("draining /livez: %d, want 200 (liveness)", code)
	}
}
