package serve

import (
	"errors"
	"fmt"
	"net/http"

	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/protect"
	"ft2/internal/tokenizer"
)

// Request is one generation request. Exactly one prompt source must be set:
// explicit token ids, raw text (tokenized with the shared vocabulary), or a
// (dataset, input-index) pair sampling a synthetic corpus prompt.
type Request struct {
	// PromptTokens is the prompt as token ids.
	PromptTokens []int `json:"prompt_tokens,omitempty"`
	// Text is a whitespace-tokenized prompt; unknown words map to <unk>.
	Text string `json:"text,omitempty"`
	// Dataset + Input sample a prompt from a synthetic corpus by name and
	// input index (e.g. {"dataset":"squad-sim","input":3}).
	Dataset string `json:"dataset,omitempty"`
	Input   int    `json:"input,omitempty"`

	// MaxTokens is the number of tokens to generate (required, ≥1).
	MaxTokens int `json:"max_tokens"`
	// Protected runs the generation under FT2 (default false: bare model).
	Protected bool `json:"protected"`
	// Chaos opts the request in as a chaos-engineering victim: when the
	// server runs a chaos engine, this session's activations and KV cache
	// may be corrupted, and it may share a batch with persistent weight
	// corruption. Requests that do not opt in are never targeted and stay
	// bit-identical to the oracle. A no-op when the server runs no chaos.
	Chaos bool `json:"chaos,omitempty"`
	// Stream answers with one NDJSON line per token instead of a single
	// JSON document.
	Stream bool `json:"stream,omitempty"`
	// StopAtEOS ends the generation early when the model emits <eos>. Off
	// by default so responses stay bit-comparable to fixed-length
	// GenerateInto oracle runs.
	StopAtEOS bool `json:"stop_at_eos,omitempty"`
	// DeadlineMS overrides the server's default per-request deadline,
	// measured from admission (0 = server default).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// SessionID names the session for the cluster features: with the server's
	// ExportStride set it keys the migration checkpoints served by
	// /v1/sessions/export, and with SpillDir set the finished session is
	// parked to disk under this id for a later Resume. Empty opts out of both.
	SessionID string `json:"session_id,omitempty"`
	// Resume restores the parked session SessionID from the server's spill
	// directory (400/404 errors when parking is off or the id is unknown) and
	// generates MaxTokens further tokens from exactly where it stopped. A
	// resume request carries no prompt — the parked state is the prompt.
	Resume bool `json:"resume,omitempty"`
}

// KindCorrections reports the corrections FT2 applied on one layer kind.
type KindCorrections struct {
	OutOfBound int `json:"out_of_bound"`
	NaN        int `json:"nan"`
}

// Corrections is the per-request protection telemetry: how often FT2 acted
// while generating this response.
type Corrections struct {
	OutOfBound    int `json:"out_of_bound"`
	NaN           int `json:"nan"`
	FirstTokenNaN int `json:"first_token_nan"`
	// ByKind lists only the layer kinds that saw corrections.
	ByKind map[string]KindCorrections `json:"by_kind,omitempty"`
}

// correctionsReport renders FT2 counters into the response shape.
func correctionsReport(stats protect.CorrectionStats, firstTokenNaN int,
	byKind [model.NumLayerKinds]protect.CorrectionStats) Corrections {
	c := Corrections{
		OutOfBound:    stats.OutOfBound,
		NaN:           stats.NaN,
		FirstTokenNaN: firstTokenNaN,
	}
	for k, st := range byKind {
		if st.OutOfBound == 0 && st.NaN == 0 {
			continue
		}
		if c.ByKind == nil {
			c.ByKind = make(map[string]KindCorrections)
		}
		c.ByKind[model.LayerKind(k).String()] = KindCorrections{OutOfBound: st.OutOfBound, NaN: st.NaN}
	}
	return c
}

// Result is the terminal state of a finished session.
type Result struct {
	Model       string      `json:"model"`
	Tokens      []int       `json:"tokens"`
	Text        string      `json:"text"`
	Protected   bool        `json:"protected"`
	Corrections Corrections `json:"corrections"`
	// QueueMS is the time spent between admission and the first slice;
	// GenMS covers prefill + decode (including time parked between slices).
	QueueMS float64 `json:"queue_ms"`
	GenMS   float64 `json:"gen_ms"`
}

// apiError is a client-visible failure with an HTTP status. The serve
// boundary converts engine misuse — which panics inside internal packages,
// by contract a programmer error there — into these returned errors, so no
// request payload can take the server down.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func badRequest(format string, args ...interface{}) *apiError {
	return &apiError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// Sentinel scheduler errors, each mapped to its HTTP status by errStatus.
var (
	// ErrQueueFull is returned (429) when the admission queue is at
	// capacity — the client should back off and retry.
	ErrQueueFull = &apiError{Status: http.StatusTooManyRequests, Msg: "serve: admission queue full"}
	// ErrDraining is returned (503) once the server stopped admitting.
	ErrDraining = &apiError{Status: http.StatusServiceUnavailable, Msg: "serve: server is draining"}
	// ErrDeadline is returned (504) when a request's deadline expired
	// before its generation finished.
	ErrDeadline = &apiError{Status: http.StatusGatewayTimeout, Msg: "serve: request deadline exceeded"}
)

// errStatus maps any error to the HTTP status to answer with.
func errStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return http.StatusInternalServerError
}

// resolvePrompt validates the request against the served model and returns
// the prompt token ids. Every condition that would panic inside the engine
// (empty prompt, out-of-vocab token, MaxSeq overflow) is rejected here with
// a 400-class error instead.
func (r *Request) resolvePrompt(cfg model.Config) ([]int, error) {
	sources := 0
	if len(r.PromptTokens) > 0 {
		sources++
	}
	if r.Text != "" {
		sources++
	}
	if r.Dataset != "" {
		sources++
	}
	if sources != 1 {
		return nil, badRequest("exactly one of prompt_tokens, text, dataset must be set")
	}

	var prompt []int
	switch {
	case len(r.PromptTokens) > 0:
		prompt = r.PromptTokens
	case r.Text != "":
		prompt = append([]int{tokenizer.BOS}, data.Vocab().Encode(r.Text)...)
	default:
		// The corpora are synthetic and sized on demand; cap the index at
		// the paper's own evaluation scale so a single request cannot ask
		// for an arbitrarily large dataset build.
		const maxDatasetInput = 50
		if r.Input < 0 || r.Input >= maxDatasetInput {
			return nil, badRequest("dataset input %d out of range [0,%d)", r.Input, maxDatasetInput)
		}
		ds, err := data.ByName(r.Dataset, r.Input+1)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		prompt = ds.Inputs[r.Input].Prompt
	}

	for i, tok := range prompt {
		if tok < 0 || tok >= cfg.Vocab {
			return nil, badRequest("prompt token %d at position %d outside vocabulary [0,%d)", tok, i, cfg.Vocab)
		}
	}
	if r.MaxTokens < 1 {
		return nil, badRequest("max_tokens must be ≥ 1, got %d", r.MaxTokens)
	}
	// Subtraction form: len(prompt)+MaxTokens could wrap negative for a
	// MaxTokens near MaxInt and sneak past an addition-form check into the
	// engine's panic paths (and a huge make() in submit).
	if r.MaxTokens > cfg.MaxSeq || len(prompt) > cfg.MaxSeq-r.MaxTokens {
		return nil, badRequest("prompt (%d) + max_tokens (%d) exceeds the model's max sequence %d",
			len(prompt), r.MaxTokens, cfg.MaxSeq)
	}
	return prompt, nil
}
