package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
)

// LoadSpec describes a closed-loop load run against a Server: Clients
// concurrent clients issue Requests total generations, each client
// submitting its next request as soon as the previous one settles. The
// self-test and the serve benchmark both run through here so they measure
// the same path the HTTP handler uses.
type LoadSpec struct {
	Clients   int
	Requests  int
	MaxTokens int
	Protected bool
	// PromptFor returns the prompt token ids for request i (required).
	PromptFor func(i int) []int
	// ChaosFor, when non-nil, marks request i as a chaos victim
	// (Request.Chaos); requests it declines stay control traffic the chaos
	// engine must never touch.
	ChaosFor func(i int) bool
}

// LoadStats is the outcome of a RunLoad: per-request results (indexed by
// request number) plus aggregate throughput.
type LoadStats struct {
	Requests     int
	Failed       int
	WallSec      float64
	TokensPerSec float64
	Results      []Result // by request index; zero value where Errs[i] != nil
	Errs         []error  // by request index; nil on success
}

// RunLoad drives the server with spec. Clients that hit 429 backpressure
// retry after a short pause — a closed-loop client backs off, it does not
// drop work — so every request eventually settles unless ctx expires.
func (s *Server) RunLoad(ctx context.Context, spec LoadSpec) LoadStats {
	st := LoadStats{
		Requests: spec.Requests,
		Results:  make([]Result, spec.Requests),
		Errs:     make([]error, spec.Requests),
	}
	var next atomic.Int64
	var tokens atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= spec.Requests {
					return
				}
				req := Request{
					PromptTokens: spec.PromptFor(i),
					MaxTokens:    spec.MaxTokens,
					Protected:    spec.Protected,
					Chaos:        spec.ChaosFor != nil && spec.ChaosFor(i),
				}
				var sess *Session
				var err error
				for {
					sess, err = s.Submit(ctx, req)
					if !errors.Is(err, ErrQueueFull) {
						break
					}
					select {
					case <-ctx.Done():
						err = ctx.Err()
					case <-time.After(2 * time.Millisecond):
						continue
					}
					break
				}
				if err != nil {
					st.Errs[i] = err
					continue
				}
				res, err := sess.Wait(ctx)
				if err != nil {
					st.Errs[i] = err
					continue
				}
				st.Results[i] = res
				tokens.Add(int64(len(res.Tokens)))
			}
		}()
	}
	wg.Wait()
	st.WallSec = time.Since(start).Seconds()
	if st.WallSec > 0 {
		st.TokensPerSec = float64(tokens.Load()) / st.WallSec
	}
	for _, err := range st.Errs {
		if err != nil {
			st.Failed++
		}
	}
	return st
}

// SharedPrefixLoad builds a LoadSpec over the shared-prefix chat scenario:
// requests distinct prompts of promptLen tokens sharing a sharedFrac-common
// system prompt (data.SharedPrefixPrompts), issued by clients concurrent
// clients. Reusing the same (seed, promptLen, sharedFrac, requests) across
// two runs replays the identical prompt set — the warm-vs-cold comparison
// the prefix-cache bench and selftest are built on.
func SharedPrefixLoad(clients, requests, maxTokens, promptLen int, sharedFrac float64, seed int64, protected bool) LoadSpec {
	prompts := data.SharedPrefixPrompts(requests, promptLen, sharedFrac, seed)
	return LoadSpec{
		Clients: clients, Requests: requests, MaxTokens: maxTokens,
		Protected: protected,
		PromptFor: func(i int) []int { return prompts[i%len(prompts)] },
	}
}

// Oracle computes the reference output for one request on a fresh,
// dedicated model driven by GenerateInto end to end — the ground truth a
// served response must match bit-for-bit regardless of how the scheduler
// sliced and migrated the session. cfg must be the server's effective
// config (Server.Config()).
func Oracle(cfg Config, prompt []int, maxTokens int, protected bool) ([]int, Corrections, error) {
	m, err := model.New(cfg.ModelCfg, cfg.Seed, cfg.DType)
	if err != nil {
		return nil, Corrections{}, err
	}
	if cfg.WeightsF16 {
		m.EnableF16Weights()
	}
	if !protected {
		return m.Generate(prompt, maxTokens), Corrections{}, nil
	}
	// The oracle must run the exact protection the server applies: the
	// policy-dispatching hybrid when a policy is loaded, plain FT2 otherwise.
	var f controller
	if cfg.ProtectPolicy != nil {
		f = core.NewHybrid(m, cfg.FT2Opts, cfg.ProtectPolicy, nil)
	} else {
		f = core.New(m, cfg.FT2Opts)
	}
	f.Install()
	f.Reset()
	out := m.Generate(prompt, maxTokens)
	corr := correctionsReport(f.Stats(), f.FirstTokenNaNCount(), f.StatsByKind())
	return out, corr, nil
}
