package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// prefixConfig is testConfig plus the prefix cache and a small prefill
// grain, so chunked prefills and cache hits both exercise under
// time-slicing pressure.
func prefixConfig(t *testing.T) Config {
	cfg := testConfig(t)
	cfg.PrefixCacheMB = 8
	cfg.PrefillChunk = 4
	return cfg
}

// runSharedPrefix drives one warm-up-capable pass of the shared-prefix
// scenario and asserts every result against the oracle.
func runSharedPrefix(t *testing.T, srv *Server, spec LoadSpec, label string) LoadStats {
	t.Helper()
	st := srv.RunLoad(context.Background(), spec)
	if st.Failed > 0 {
		t.Fatalf("%s: %d requests failed: %v", label, st.Failed, st.Errs)
	}
	for i, res := range st.Results {
		want, corr, err := Oracle(srv.Config(), spec.PromptFor(i), spec.MaxTokens, spec.Protected)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTokens(res.Tokens, want) {
			t.Fatalf("%s request %d: served %v != oracle %v", label, i, res.Tokens, want)
		}
		if spec.Protected && (res.Corrections.OutOfBound != corr.OutOfBound ||
			res.Corrections.NaN != corr.NaN ||
			res.Corrections.FirstTokenNaN != corr.FirstTokenNaN) {
			t.Fatalf("%s request %d: corrections %+v != oracle %+v", label, i, res.Corrections, corr)
		}
	}
	return st
}

// TestPrefixCacheHitBitIdentical is the tentpole contract: a second (warm)
// pass over the same shared-prefix prompt set must serve from the cache —
// hits recorded, fewer prompt rows computed — and still produce tokens
// bit-identical to the GenerateInto oracle, protected and not.
func TestPrefixCacheHitBitIdentical(t *testing.T) {
	for _, protected := range []bool{false, true} {
		label := map[bool]string{false: "bare", true: "protected"}[protected]
		t.Run(label, func(t *testing.T) {
			srv := newTestServer(t, prefixConfig(t))
			spec := SharedPrefixLoad(4, 8, 10, 48, 0.9, 42, protected)

			runSharedPrefix(t, srv, spec, "cold")
			cold := srv.PrefixStats()
			if cold.Insertions == 0 {
				t.Fatalf("cold pass inserted nothing: %+v", cold)
			}
			coldPrefill, coldPrompt, _ := srv.PrefillCounters()

			runSharedPrefix(t, srv, spec, "warm")
			warm := srv.PrefixStats()
			if warm.Hits <= cold.Hits {
				t.Fatalf("warm pass recorded no hits: cold %+v warm %+v", cold, warm)
			}
			warmPrefill, warmPrompt, _ := srv.PrefillCounters()
			if warmPrompt-coldPrompt != coldPrompt {
				t.Fatalf("prompt token accounting: cold %d, warm delta %d", coldPrompt, warmPrompt-coldPrompt)
			}
			if warmPrefill-coldPrefill >= coldPrefill {
				t.Fatalf("warm pass computed no fewer prefill tokens: cold %d, warm %d",
					coldPrefill, warmPrefill-coldPrefill)
			}
		})
	}
}

// TestChunkedPrefillBitIdentical pins chunked prefill alone (cache off):
// long prompts split across slices must not change a single token, and the
// chunk counter must show the splitting actually happened.
func TestChunkedPrefillBitIdentical(t *testing.T) {
	cfg := testConfig(t)
	cfg.PrefillChunk = 3
	srv := newTestServer(t, cfg)
	spec := SharedPrefixLoad(4, 8, 10, 30, 0.5, 7, true)
	runSharedPrefix(t, srv, spec, "chunked")
	_, _, chunks := srv.PrefillCounters()
	if chunks < int64(spec.Requests)*2 {
		t.Fatalf("prefill chunks = %d, want ≥ %d (30-token prompts at grain 3)",
			chunks, spec.Requests*2)
	}
}

// TestMaxTokensOverflowRejected pins the admission bugfix: a max_tokens near
// MaxInt must answer 400 at the boundary, not wrap the sequence check
// negative and panic in the engine.
func TestMaxTokensOverflowRejected(t *testing.T) {
	srv := newTestServer(t, testConfig(t))
	for _, maxTokens := range []int{math.MaxInt, math.MaxInt - 10, srv.Config().ModelCfg.MaxSeq + 1} {
		_, err := srv.Submit(context.Background(), Request{
			PromptTokens: []int{1, 2, 3},
			MaxTokens:    maxTokens,
		})
		if err == nil {
			t.Fatalf("max_tokens=%d admitted", maxTokens)
		}
		if got := errStatus(err); got != http.StatusBadRequest {
			t.Fatalf("max_tokens=%d: status %d, want 400 (%v)", maxTokens, got, err)
		}
	}
}

// TestPrefixMetricsExposed asserts the documented metric names appear on
// /metrics when the cache is enabled.
func TestPrefixMetricsExposed(t *testing.T) {
	srv := newTestServer(t, prefixConfig(t))
	spec := SharedPrefixLoad(2, 4, 6, 32, 0.9, 3, false)
	runSharedPrefix(t, srv, spec, "cold")
	runSharedPrefix(t, srv, spec, "warm")

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{
		"ft2serve_prefix_hits",
		"ft2serve_prefix_misses",
		"ft2serve_prefix_evictions",
		"ft2serve_prefill_chunks_total",
		"ft2serve_prefill_tokens_total",
		"ft2serve_prompt_tokens_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics missing %s:\n%s", name, body)
		}
	}
}
