package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ft2/internal/chaos"
	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/prefixcache"
)

// metrics is the server's observability state: monotonic counters plus
// bounded latency reservoirs, rendered in Prometheus-style text by render.
type metrics struct {
	start       time.Time
	draining    atomic.Bool
	tokensTotal atomic.Int64
	batchSteps  atomic.Int64 // decode steps driven (each advances ≥1 session)

	// Prefill accounting for the prefix cache's effectiveness metric:
	// promptTokens counts every admitted session's full prompt length,
	// prefillTokens only the rows actually computed (cache hits skip the
	// cached prefix), prefillChunks the bounded chunks the scheduler ran.
	prefillChunks atomic.Int64
	prefillTokens atomic.Int64
	promptTokens  atomic.Int64

	// Fused-slice shape counters: how many mixed-phase ForwardBatch calls
	// ran, and how many of their stacked activation rows were prompt-chunk
	// rows vs decode rows — the observable measure of how well prefill work
	// amortizes over the decode batches it rides with. Serial-fallback steps
	// (lone sessions, below-crossover groups) do not count here.
	fusedForwards    atomic.Int64
	fusedPrefillRows atomic.Int64
	fusedDecodeRows  atomic.Int64

	statusMu sync.Mutex
	status   map[int]int64 // HTTP status → requests settled with it

	corrMu        sync.Mutex
	corrByKind    [model.NumLayerKinds]KindCorrections
	firstTokenNaN int64

	// Chaos / adaptive-protection telemetry: replica rebuilds (panic or
	// confirmed weight corruption), sessions a chaos fault targeted, and the
	// exact-correction tiers' counters drained per slice from the hybrid
	// controllers.
	rebuilds   atomic.Int64
	sdcSuspect atomic.Int64
	hybridMu   sync.Mutex
	hybrid     core.HybridCounts

	// Cluster / durability telemetry: migration checkpoints captured for
	// /v1/sessions/export, sessions adopted via /v1/sessions/import, and the
	// spill-dir parking pair (spilled at settle, restored on Resume).
	ckptExports  atomic.Int64
	sessImported atomic.Int64
	sessSpilled  atomic.Int64
	sessRestored atomic.Int64

	tokenLat  *latencyRing // per-step latency
	queueLat  *latencyRing // admission → first slice
	reqLat    *latencyRing // admission → settled
	batchSize *latencyRing // sessions advanced per step (achieved batch)
	fusedRows *latencyRing // activation rows per fused ForwardBatch call
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		status:    make(map[int]int64),
		tokenLat:  newLatencyRing(8192),
		queueLat:  newLatencyRing(2048),
		reqLat:    newLatencyRing(2048),
		batchSize: newLatencyRing(8192),
		fusedRows: newLatencyRing(8192),
	}
}

func (m *metrics) incStatus(code int) {
	m.statusMu.Lock()
	m.status[code]++
	m.statusMu.Unlock()
}

func (m *metrics) addHybrid(c core.HybridCounts) {
	m.hybridMu.Lock()
	m.hybrid.ABFT.Detected += c.ABFT.Detected
	m.hybrid.ABFT.Corrected += c.ABFT.Corrected
	m.hybrid.ABFT.Uncorrectable += c.ABFT.Uncorrectable
	m.hybrid.DMRFixed += c.DMRFixed
	m.hybridMu.Unlock()
}

// addCorrections accumulates a settled session's correction counters minus
// the base it was adopted with, so a migrated or resumed session — whose
// ForkState counters are cumulative across processes by design — only adds
// the corrections this process actually performed.
func (m *metrics) addCorrections(st, base core.ForkState) {
	m.corrMu.Lock()
	for k, c := range st.ByKind {
		m.corrByKind[k].OutOfBound += c.OutOfBound - base.ByKind[k].OutOfBound
		m.corrByKind[k].NaN += c.NaN - base.ByKind[k].NaN
	}
	m.firstTokenNaN += int64(st.FirstTokenNaN - base.FirstTokenNaN)
	m.corrMu.Unlock()
}

// latencyRing keeps the most recent cap observations (milliseconds) and
// answers quantile queries over them — a bounded-memory p50/p99 estimate
// that tracks current behaviour rather than lifetime history.
type latencyRing struct {
	mu     sync.Mutex
	buf    []float64
	next   int
	filled int
}

func newLatencyRing(capacity int) *latencyRing {
	return &latencyRing{buf: make([]float64, capacity)}
}

func (r *latencyRing) observe(ms float64) {
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
	r.mu.Unlock()
}

// quantiles returns the requested quantiles (0..1) over the retained
// window, or nil when nothing was observed yet.
func (r *latencyRing) quantiles(qs ...float64) []float64 {
	r.mu.Lock()
	vals := append([]float64(nil), r.buf[:r.filled]...)
	r.mu.Unlock()
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(vals)-1))
		out[i] = vals[idx]
	}
	return out
}

// render writes the text-format metrics. queueDepth/active/replicas come
// from the scheduler at scrape time; chaosC carries the chaos engine's
// counters (nil when chaos is off).
func (m *metrics) render(w io.Writer, modelName string, replicas, maxSessions, batchMax, queueDepth, active int, chaosC *chaos.Counters, prefixS *prefixcache.Stats) {
	uptime := time.Since(m.start).Seconds()
	fmt.Fprintf(w, "ft2serve_uptime_seconds %.3f\n", uptime)
	fmt.Fprintf(w, "ft2serve_model{name=%q} 1\n", modelName)
	fmt.Fprintf(w, "ft2serve_replicas %d\n", replicas)
	fmt.Fprintf(w, "ft2serve_max_sessions %d\n", maxSessions)
	fmt.Fprintf(w, "ft2serve_batch_max %d\n", batchMax)
	fmt.Fprintf(w, "ft2serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "ft2serve_active_sessions %d\n", active)
	drain := 0
	if m.draining.Load() {
		drain = 1
	}
	fmt.Fprintf(w, "ft2serve_draining %d\n", drain)

	m.statusMu.Lock()
	codes := make([]int, 0, len(m.status))
	for c := range m.status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "ft2serve_requests_total{code=\"%d\"} %d\n", c, m.status[c])
	}
	m.statusMu.Unlock()

	tokens := m.tokensTotal.Load()
	fmt.Fprintf(w, "ft2serve_tokens_generated_total %d\n", tokens)
	if uptime > 0 {
		fmt.Fprintf(w, "ft2serve_tokens_per_sec %.2f\n", float64(tokens)/uptime)
	}
	fmt.Fprintf(w, "ft2serve_batched_steps_total %d\n", m.batchSteps.Load())
	if qs := m.batchSize.quantiles(0.5, 0.99); qs != nil {
		fmt.Fprintf(w, "ft2serve_batch_size{quantile=\"0.5\"} %.1f\n", qs[0])
		fmt.Fprintf(w, "ft2serve_batch_size{quantile=\"0.99\"} %.1f\n", qs[1])
	}
	fmt.Fprintf(w, "ft2serve_fused_forwards_total %d\n", m.fusedForwards.Load())
	fmt.Fprintf(w, "ft2serve_prefill_fused_rows_total %d\n", m.fusedPrefillRows.Load())
	fmt.Fprintf(w, "ft2serve_decode_fused_rows_total %d\n", m.fusedDecodeRows.Load())
	if qs := m.fusedRows.quantiles(0.5, 0.99); qs != nil {
		fmt.Fprintf(w, "ft2serve_fused_rows{quantile=\"0.5\"} %.1f\n", qs[0])
		fmt.Fprintf(w, "ft2serve_fused_rows{quantile=\"0.99\"} %.1f\n", qs[1])
	}

	for _, lr := range []struct {
		name string
		ring *latencyRing
	}{
		{"ft2serve_token_latency_ms", m.tokenLat},
		{"ft2serve_queue_latency_ms", m.queueLat},
		{"ft2serve_request_latency_ms", m.reqLat},
	} {
		name, ring := lr.name, lr.ring
		if qs := ring.quantiles(0.5, 0.99); qs != nil {
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %.4f\n", name, qs[0])
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %.4f\n", name, qs[1])
		}
	}

	m.corrMu.Lock()
	for k, c := range m.corrByKind {
		if c.OutOfBound > 0 {
			fmt.Fprintf(w, "ft2serve_ft2_corrections_total{kind=%q,type=\"out_of_bound\"} %d\n",
				model.LayerKind(k).String(), c.OutOfBound)
		}
		if c.NaN > 0 {
			fmt.Fprintf(w, "ft2serve_ft2_corrections_total{kind=%q,type=\"nan\"} %d\n",
				model.LayerKind(k).String(), c.NaN)
		}
	}
	fmt.Fprintf(w, "ft2serve_ft2_first_token_nan_total %d\n", m.firstTokenNaN)
	m.corrMu.Unlock()

	m.hybridMu.Lock()
	hy := m.hybrid
	m.hybridMu.Unlock()
	if hy != (core.HybridCounts{}) {
		fmt.Fprintf(w, "ft2serve_abft_total{type=\"detected\"} %d\n", hy.ABFT.Detected)
		fmt.Fprintf(w, "ft2serve_abft_total{type=\"corrected\"} %d\n", hy.ABFT.Corrected)
		fmt.Fprintf(w, "ft2serve_abft_total{type=\"uncorrectable\"} %d\n", hy.ABFT.Uncorrectable)
		fmt.Fprintf(w, "ft2serve_dmr_corrections_total %d\n", hy.DMRFixed)
	}
	fmt.Fprintf(w, "ft2serve_prefill_chunks_total %d\n", m.prefillChunks.Load())
	fmt.Fprintf(w, "ft2serve_prefill_tokens_total %d\n", m.prefillTokens.Load())
	fmt.Fprintf(w, "ft2serve_prompt_tokens_total %d\n", m.promptTokens.Load())
	if prefixS != nil {
		fmt.Fprintf(w, "ft2serve_prefix_hits %d\n", prefixS.Hits)
		fmt.Fprintf(w, "ft2serve_prefix_misses %d\n", prefixS.Misses)
		fmt.Fprintf(w, "ft2serve_prefix_evictions %d\n", prefixS.Evictions)
		fmt.Fprintf(w, "ft2serve_prefix_insertions_total %d\n", prefixS.Insertions)
		fmt.Fprintf(w, "ft2serve_prefix_hit_rows_total %d\n", prefixS.HitRows)
		fmt.Fprintf(w, "ft2serve_prefix_entries %d\n", prefixS.Entries)
		fmt.Fprintf(w, "ft2serve_prefix_bytes %d\n", prefixS.Bytes)
		fmt.Fprintf(w, "ft2serve_prefix_budget_bytes %d\n", prefixS.Budget)
	}
	fmt.Fprintf(w, "ft2serve_checkpoint_exports_total %d\n", m.ckptExports.Load())
	fmt.Fprintf(w, "ft2serve_sessions_imported_total %d\n", m.sessImported.Load())
	fmt.Fprintf(w, "ft2serve_sessions_spilled_total %d\n", m.sessSpilled.Load())
	fmt.Fprintf(w, "ft2serve_sessions_restored_total %d\n", m.sessRestored.Load())
	fmt.Fprintf(w, "ft2serve_replica_rebuilds_total %d\n", m.rebuilds.Load())
	if chaosC != nil {
		fmt.Fprintf(w, "ft2serve_chaos_injected_total{target=\"activation\"} %d\n", chaosC.InjectedActivation)
		fmt.Fprintf(w, "ft2serve_chaos_injected_total{target=\"weight\"} %d\n", chaosC.InjectedWeight)
		fmt.Fprintf(w, "ft2serve_chaos_injected_total{target=\"kv\"} %d\n", chaosC.InjectedKV)
		fmt.Fprintf(w, "ft2serve_chaos_scrub_detected_total %d\n", chaosC.ScrubDetected)
		fmt.Fprintf(w, "ft2serve_chaos_sdc_suspect_sessions_total %d\n", m.sdcSuspect.Load())
	}
}
