package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ft2/internal/chaos"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/protect"
)

// chaosConfig is an aggressive chaos regime on the smallest zoo model: one
// replica (so chaos and control traffic must share it), small slices, and
// more than one expected fault arrival per slice.
func chaosConfig(t *testing.T, cc chaos.Config) Config {
	t.Helper()
	cfg := testConfig(t)
	cfg.Chaos = &cc
	return cfg
}

// testPolicy exercises every protection tier in one serving policy.
func testPolicy() *protect.Policy {
	return &protect.Policy{Tiers: map[model.LayerKind]protect.Tier{
		model.VProj:    protect.TierFT2,
		model.OutProj:  protect.TierFT2,
		model.DownProj: protect.TierABFTFT2,
		model.QProj:    protect.TierDMR,
		model.KProj:    protect.TierABFT,
	}}
}

// TestServedWithPolicyMatchesOracle pins the adaptive-protection serving
// contract: a policy-protected generation served through the batched
// scheduler — hybrid controllers parked and resumed across slices — is
// bit-identical to the policy-aware Oracle.
func TestServedWithPolicyMatchesOracle(t *testing.T) {
	cfg := testConfig(t)
	cfg.ProtectPolicy = testPolicy()
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 5)
	const maxTokens = 14

	st := srv.RunLoad(context.Background(), LoadSpec{
		Clients: 6, Requests: 10, MaxTokens: maxTokens,
		Protected: true, PromptFor: prompts,
	})
	if st.Failed > 0 {
		t.Fatalf("%d requests failed: %v", st.Failed, st.Errs)
	}
	for i, res := range st.Results {
		want, _, err := Oracle(srv.Config(), prompts(i), maxTokens, true)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTokens(res.Tokens, want) {
			t.Fatalf("request %d: served %v != policy oracle %v", i, res.Tokens, want)
		}
	}
}

// TestChaosControlSessionsBitIdentical is the blast-radius contract — and,
// under -race, the chaos/decode synchronization witness: batched sessions
// decode while the chaos engine mutates weights and KV slabs at slice
// boundaries, and every session that did NOT opt in must still match the
// oracle bit for bit. Victim traffic shares the same groups the whole time.
func TestChaosControlSessionsBitIdentical(t *testing.T) {
	cfg := chaosConfig(t, chaos.Config{
		Seed: 11, Rate: 1.5, Burst: 2,
		Mix: fault.TargetMix{Weight: 0.3, KV: 0.3},
	})
	cfg.Replicas = 2
	cfg.BatchMax = 4
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 6)
	const requests, maxTokens = 16, 12

	victim := func(i int) bool { return i%2 == 1 }
	st := srv.RunLoad(context.Background(), LoadSpec{
		Clients: 8, Requests: requests, MaxTokens: maxTokens,
		Protected: true, PromptFor: prompts, ChaosFor: victim,
	})
	if st.Failed > 0 {
		t.Fatalf("%d requests failed: %v", st.Failed, st.Errs)
	}
	for i, res := range st.Results {
		if victim(i) {
			continue // victims may legitimately diverge — that's the point
		}
		want, _, err := Oracle(srv.Config(), prompts(i), maxTokens, true)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTokens(res.Tokens, want) {
			t.Fatalf("control request %d diverged under chaos: %v != %v", i, res.Tokens, want)
		}
	}
	if srv.Chaos().Counters().Injected() == 0 {
		t.Fatal("chaos engine never injected — the control assertion is vacuous")
	}
	// Weight faults may appear whenever a slice group happened to be
	// all-victims; control integrity above is the invariant that matters —
	// the scrub cleans the replica before any control session can batch
	// onto it. Every journaled injection must name a session or replica.
	for _, ev := range srv.Chaos().Events() {
		if ev.Kind == chaos.EvInject && ev.Target != "weight" && ev.Session == 0 {
			t.Fatalf("session-scoped injection without a session id: %+v", ev)
		}
	}
}

// TestChaosWeightCorruptionRebuildsReplica drives all-victim traffic with a
// weight-only fault stream: every planned fault lands in replica weights,
// the end-of-slice scrub must confirm the corruption against the build-time
// checksum, and the replica must be rebuilt — while the load keeps being
// served to completion. The journal must show the full
// inject → scrub-detect → rebuild chain.
func TestChaosWeightCorruptionRebuildsReplica(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	cfg := chaosConfig(t, chaos.Config{
		Seed: 5, Rate: 1, Mix: fault.TargetMix{Weight: 1}, Journal: path,
	})
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 4)

	st := srv.RunLoad(context.Background(), LoadSpec{
		Clients: 4, Requests: 8, MaxTokens: 10,
		Protected: true, PromptFor: prompts,
		ChaosFor: func(int) bool { return true },
	})
	if st.Failed > 0 {
		t.Fatalf("%d requests failed under weight chaos: %v", st.Failed, st.Errs)
	}

	c := srv.Chaos().Counters()
	if c.InjectedWeight == 0 {
		t.Fatal("no weight faults injected")
	}
	if c.ScrubDetected == 0 || c.Rebuilds == 0 {
		t.Fatalf("weight corruption not detected/recovered: %+v", c)
	}
	if got := srv.mx.rebuilds.Load(); got < c.Rebuilds {
		t.Fatalf("metrics count %d rebuilds, journal %d", got, c.Rebuilds)
	}
	if got := srv.mx.sdcSuspect.Load(); got == 0 {
		t.Fatal("no session marked SDC-suspect despite weight corruption on its group")
	}

	// Every injection and recovery action must be on disk after Shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 10e9)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev chaos.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		kinds[ev.Kind]++
	}
	if int64(kinds[chaos.EvInject]) != c.Injected() {
		t.Fatalf("journal has %d injects, counters say %d", kinds[chaos.EvInject], c.Injected())
	}
	if kinds[chaos.EvScrubDetect] == 0 || kinds[chaos.EvRebuild] == 0 {
		t.Fatalf("journal missing recovery chain: %v", kinds)
	}
}

// TestChaosMetricsEndpoint checks the /metrics surface grows the chaos and
// adaptive-protection counters.
func TestChaosMetricsEndpoint(t *testing.T) {
	cfg := chaosConfig(t, chaos.Config{Seed: 3, Rate: 2, Mix: fault.TargetMix{KV: 0.5}})
	cfg.ProtectPolicy = testPolicy()
	srv := newTestServer(t, cfg)
	prompts := testPrompts(t, 3)

	st := srv.RunLoad(context.Background(), LoadSpec{
		Clients: 4, Requests: 6, MaxTokens: 8,
		Protected: true, PromptFor: prompts,
		ChaosFor: func(int) bool { return true },
	})
	if st.Failed > 0 {
		t.Fatalf("%d requests failed: %v", st.Failed, st.Errs)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"ft2serve_chaos_injected_total{target=\"activation\"}",
		"ft2serve_chaos_injected_total{target=\"weight\"}",
		"ft2serve_chaos_injected_total{target=\"kv\"}",
		"ft2serve_chaos_scrub_detected_total",
		"ft2serve_chaos_sdc_suspect_sessions_total",
		"ft2serve_replica_rebuilds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if srv.Chaos().Counters().InjectedKV == 0 {
		t.Fatal("kv chaos never fired — metric values untested")
	}
	if srv.mx.sdcSuspect.Load() == 0 {
		t.Fatal("no suspect sessions recorded")
	}
}
