package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ft2/internal/chaos"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/prefixcache"
	"ft2/internal/wire"
)

// Server is the assembled serving layer: replica pool + continuous-batching
// scheduler + HTTP surface. Build one with New, mount Handler on an
// http.Server, and call Shutdown (or BeginDrain + Shutdown) to drain.
type Server struct {
	cfg Config
	sch *scheduler
	mx  *metrics
}

// New builds a Server from the config (defaults resolved; see Config).
func New(c Config) (*Server, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	pool, err := newPool(cfg)
	if err != nil {
		return nil, err
	}
	var eng *chaos.Engine
	if cfg.Chaos != nil {
		if eng, err = chaos.NewEngine(*cfg.Chaos, cfg.ModelCfg); err != nil {
			return nil, err
		}
	}
	mx := newMetrics()
	return &Server{cfg: cfg, sch: newScheduler(cfg, pool, mx, eng), mx: mx}, nil
}

// Chaos returns the server's chaos engine (nil when chaos is off) — the
// self-test and smoke harnesses read its journal and counters through it.
func (s *Server) Chaos() *chaos.Engine { return s.sch.chaos }

// Config returns the effective (default-resolved) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit validates a request and admits it to the scheduler — the
// programmatic entry the HTTP handler, the self-test load generator, and
// the benchmarks share. The ctx bounds the whole request (client
// disconnect); the request's own deadline is layered on top.
func (s *Server) Submit(ctx context.Context, req Request) (*Session, error) {
	if req.Resume {
		return s.submitResume(ctx, req)
	}
	prompt, err := req.resolvePrompt(s.cfg.ModelCfg)
	if err != nil {
		return nil, err
	}
	return s.sch.submit(ctx, req, prompt)
}

// submitResume restores a parked session from the spill directory and
// admits it to generate req.MaxTokens further tokens from its stop point.
func (s *Server) submitResume(ctx context.Context, req Request) (*Session, error) {
	if s.cfg.SpillDir == "" {
		return nil, &apiError{Status: 404, Msg: "serve: session parking disabled (no -spill-dir)"}
	}
	if req.SessionID == "" {
		return nil, badRequest("resume requires session_id")
	}
	if len(req.PromptTokens) > 0 || req.Text != "" || req.Dataset != "" {
		return nil, badRequest("resume takes no prompt — the parked state is the prompt")
	}
	if req.MaxTokens < 1 {
		return nil, badRequest("max_tokens must be ≥ 1, got %d", req.MaxTokens)
	}
	blob, err := readSpill(s.cfg.SpillDir, req.SessionID)
	if err != nil {
		return nil, err
	}
	snap, fk, err := wire.DecodeSessionFor(blob, s.cfg.ModelCfg)
	if err != nil {
		return nil, badRequest("parked session %q: %v", req.SessionID, err)
	}
	if err := validateAdoptable(snap, s.cfg.ModelCfg, req.MaxTokens); err != nil {
		return nil, err
	}
	req.Protected = fk != nil
	return s.sch.submitAdopted(ctx, req, snap, fk, adoptSpill)
}

// BeginDrain stops admitting new requests; in-flight and queued requests
// keep running. Idempotent.
func (s *Server) BeginDrain() { s.sch.beginDrain() }

// Shutdown drains and stops the scheduler: admission closes, every
// admitted request is given until ctx expires to finish (then failed
// fast), and the workers exit. Returns ctx.Err() when the grace period
// lapsed. The chaos journal (if any) is flushed and closed last, so every
// injection of the run is on disk when Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.sch.shutdown(ctx)
	if s.sch.chaos != nil {
		if cerr := s.sch.chaos.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Handler returns the HTTP surface:
//
//	POST /v1/generate         — run a (protected) generation, optionally streamed
//	GET  /v1/models           — the zoo, with the served model marked
//	GET  /v1/sessions/export  — latest migration checkpoint of a live session
//	POST /v1/sessions/import  — adopt a checkpoint and stream the remainder
//	GET  /healthz             — readiness: 200 serving / 503 draining
//	GET  /livez               — liveness: 200 while the process runs
//	GET  /metrics             — text-format counters and latency quantiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/sessions/export", s.handleSessionExport)
	mux.HandleFunc("/v1/sessions/import", s.handleSessionImport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/livez", s.handleLivez)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// writeError answers with the request's error as JSON and records the
// status. Only submit-path failures are recorded here; settled sessions
// are recorded by the scheduler.
func (s *Server) writeError(w http.ResponseWriter, err error, record bool) {
	status := errStatus(err)
	if record {
		s.mx.incStatus(status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("invalid request body: %v", err), true)
		return
	}

	sess, err := s.Submit(r.Context(), req)
	if err != nil {
		s.writeError(w, err, true)
		return
	}

	if req.Stream {
		s.streamResponse(w, r, sess)
		return
	}
	res, err := sess.Wait(r.Context())
	if err != nil {
		s.writeError(w, err, false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// streamResponse writes one NDJSON line per token as it is decoded, then a
// terminal line carrying the full Result (or the error).
func (s *Server) streamResponse(w http.ResponseWriter, r *http.Request, sess *Session) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	vocab := data.Vocab()
	for tok := range sess.Tokens() {
		enc.Encode(map[string]interface{}{"token": tok, "word": vocab.Word(tok)})
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := sess.Wait(r.Context())
	if err != nil {
		enc.Encode(map[string]interface{}{"done": true, "error": err.Error()})
	} else {
		enc.Encode(map[string]interface{}{"done": true, "result": res})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelInfo struct {
		Name    string `json:"name"`
		Family  string `json:"family"`
		Blocks  int    `json:"blocks"`
		Hidden  int    `json:"hidden"`
		MaxSeq  int    `json:"max_seq"`
		Serving bool   `json:"serving"`
	}
	out := struct {
		Serving string      `json:"serving"`
		Models  []modelInfo `json:"models"`
	}{Serving: s.cfg.Model}
	for _, c := range model.Zoo() {
		out.Models = append(out.Models, modelInfo{
			Name: c.Name, Family: c.Family.String(), Blocks: c.Blocks,
			Hidden: c.Hidden, MaxSeq: c.MaxSeq, Serving: c.Name == s.cfg.Model,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleHealthz is READINESS: it answers 503 the moment the server stops
// being a correct routing target (draining refuses admission with 503s), so
// a router health-checking this endpoint never places a session on a worker
// that will refuse it. The pre-build window is covered by StartupGate,
// which answers 503 here until New has finished building the replicas.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mx.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleLivez is LIVENESS: 200 whenever the process can answer at all —
// including while draining, when readiness is already 503. Supervisors
// restart on livez failures and stop routing on healthz failures.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleSessionExport serves the latest migration checkpoint of a live
// session as a wire-format blob; X-FT2-Checkpoint-Tokens carries how many
// tokens it covers. 404 when export is disabled, the session is unknown, or
// it already settled (its checkpoint dies with it).
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.ExportStride <= 0 {
		s.writeError(w, &apiError{Status: 404, Msg: "serve: session export disabled (-export-stride 0)"}, false)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, badRequest("missing id parameter"), false)
		return
	}
	e, ok := s.sch.exportFor(id)
	if !ok {
		s.writeError(w, &apiError{Status: 404, Msg: fmt.Sprintf("serve: no checkpoint for session %q", id)}, false)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-FT2-Checkpoint-Tokens", fmt.Sprint(e.tokens))
	w.Write(e.blob)
}

// ImportRequest is the POST /v1/sessions/import body: a wire-format blob
// (base64 in JSON, per Go []byte marshaling) plus the generation's original
// total token budget. The worker adopts the snapshot and streams the
// remaining max_tokens_total − checkpointed tokens as NDJSON — the indices
// continue the original stream, so a router relays the suffix verbatim.
type ImportRequest struct {
	SessionID      string `json:"session_id"`
	MaxTokensTotal int    `json:"max_tokens_total"`
	StopAtEOS      bool   `json:"stop_at_eos,omitempty"`
	DeadlineMS     int    `json:"deadline_ms,omitempty"`
	Snapshot       []byte `json:"snapshot"`
}

func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var ir ImportRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ir); err != nil {
		s.writeError(w, badRequest("invalid import body: %v", err), true)
		return
	}
	if ir.SessionID == "" {
		s.writeError(w, badRequest("import requires session_id"), true)
		return
	}
	snap, fk, err := wire.DecodeSessionFor(ir.Snapshot, s.cfg.ModelCfg)
	if err != nil {
		s.writeError(w, badRequest("snapshot rejected: %v", err), true)
		return
	}
	remaining := ir.MaxTokensTotal - snap.NextStep()
	if err := validateAdoptable(snap, s.cfg.ModelCfg, remaining); err != nil {
		s.writeError(w, err, true)
		return
	}
	req := Request{
		SessionID:  ir.SessionID,
		MaxTokens:  remaining,
		Protected:  fk != nil,
		Stream:     true,
		StopAtEOS:  ir.StopAtEOS,
		DeadlineMS: ir.DeadlineMS,
	}
	sess, err := s.sch.submitAdopted(r.Context(), req, snap, fk, adoptImport)
	if err != nil {
		s.writeError(w, err, true)
		return
	}
	s.streamResponse(w, r, sess)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var cc *chaos.Counters
	if s.sch.chaos != nil {
		c := s.sch.chaos.Counters()
		cc = &c
	}
	var ps *prefixcache.Stats
	if s.sch.prefix != nil {
		st := s.sch.prefix.Stats()
		ps = &st
	}
	s.mx.render(w, s.cfg.Model, s.cfg.Replicas, s.cfg.MaxSessions, s.cfg.BatchMax,
		s.sch.queueDepth(), s.sch.activeSessions(), cc, ps)
}

// PrefixStats returns the prefix cache's counters, or zero stats when the
// cache is off — the selftest and benchmarks assert hit/insert behaviour
// through it.
func (s *Server) PrefixStats() prefixcache.Stats {
	if s.sch.prefix == nil {
		return prefixcache.Stats{}
	}
	return s.sch.prefix.Stats()
}

// PrefillCounters returns (computed prefill tokens, total prompt tokens,
// prefill chunks run) — the bench-json prefix section derives the
// computed-vs-total prefill ratio from deltas of these.
func (s *Server) PrefillCounters() (prefill, prompt, chunks int64) {
	return s.mx.prefillTokens.Load(), s.mx.promptTokens.Load(), s.mx.prefillChunks.Load()
}
