// Package serve is the online protected-inference serving layer: an HTTP
// server that runs FT2-protected generation for concurrent clients with
// continuous batching.
//
// Architecture (DESIGN.md §10):
//
//   - A replica pool holds N independent model replicas of one zoo config
//     (weights rebuilt per replica from the same seed, so they are
//     bit-identical), each paired with a reusable FT2 controller.
//   - A continuous-batching scheduler admits requests through a bounded
//     queue and multiplexes up to MaxSessions active sessions over the
//     replicas: each worker gathers up to BatchMax ready sessions into a
//     group and advances the whole group one slice of SliceSteps steps
//     through mixed-phase model.ForwardBatch calls — a decoding session
//     contributes one row, a mid-prefill session a bounded prompt chunk,
//     and every weight matrix streams once per step for the whole group
//     instead of once per session — then puts the survivors back on the
//     ready ring. Each session owns its KV state (model.DecodeState) and
//     its FT2 fork state, so moving between replicas is a pointer swap and
//     a served generation is bit-identical to a standalone GenerateInto
//     run no matter how it was batched, chunked, or preempted. Groups of
//     one (and decode-only steps below the kernel cost model's fusion
//     crossover) fall back to serial DecodeStep — same bits either way.
//   - Robustness: per-request deadlines via context, 429 backpressure when
//     the admission queue is full, 503 while draining, and a per-slice
//     recover boundary so a request that trips an engine panic is answered
//     with an error (and its replica rebuilt) instead of killing the
//     server.
//   - Observability: /healthz, /metrics (text format), and per-request
//     correction counts — total and per layer kind — in every response.
package serve

import (
	"fmt"
	"runtime"
	"time"

	"ft2/internal/chaos"
	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
)

// Config assembles a Server. The zero value is not usable: Model (or
// ModelCfg) is required; every other field has a sensible default.
type Config struct {
	// Model names the zoo config to serve; ModelCfg overrides it when
	// non-zero (Name set).
	Model    string
	ModelCfg model.Config
	// Seed is the deterministic weight seed shared by every replica.
	Seed int64
	// DType is the activation precision (default FP16).
	DType numerics.DType
	// Replicas is the model-replica count (default: GOMAXPROCS capped at
	// NumCPU — more workers than cores only time-slice each other through
	// the OS scheduler and shrink the fused groups each worker can gather).
	Replicas int
	// MaxSessions caps the sessions decoded concurrently; beyond Replicas
	// they time-slice (default 4×Replicas, min 16).
	MaxSessions int
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// SliceSteps is the decode steps a session runs per scheduling slice
	// before yielding its replica (default 8). Smaller slices interleave
	// finer at a higher scheduling cost.
	SliceSteps int
	// BatchMax caps how many ready sessions a worker fuses into one
	// mixed-phase ForwardBatch group (default MaxSessions — every weight
	// matrix streamed per step amortizes over the widest group available).
	// 1 disables fusion: every session steps serially.
	BatchMax int
	// DefaultDeadline bounds a request that carries no deadline of its own
	// (default 30s; ≤0 keeps the default — a server must never hold a slot
	// forever).
	DefaultDeadline time.Duration
	// FT2Opts tunes the protection applied when a request asks for it
	// (zero value: core.Defaults()).
	FT2Opts core.Options
	// ProtectPolicy, when set, replaces the architectural FT2 coverage with
	// an adaptive per-layer-kind tier policy: protected requests run under a
	// core.Hybrid dispatching each layer kind to the tier the policy assigns
	// (none / ft2 / abft / dmr / abft+ft2). Nil keeps plain FT2.
	ProtectPolicy *protect.Policy
	// Chaos enables online chaos engineering: a seeded deterministic fault
	// stream injected into live sessions that opted in (Request.Chaos) at
	// scheduler slice boundaries, with detection, scrubbing, and replica
	// rebuild wired into the slice loop. Nil disables chaos entirely.
	Chaos *chaos.Config
	// WeightsF16 stores every replica's weight matrices as packed binary16
	// (model.EnableF16Weights): half the streamed bytes per decode step on
	// F16C hosts, bit-identical outputs per the oracle selftest. All
	// replicas and the Oracle share the storage mode, so served tokens are
	// comparable either way.
	WeightsF16 bool
	// StepDelay inserts an artificial pause before every decode step — a
	// throttle for demos and smoke tests that need generations slow enough
	// to observe scheduling, draining, and preemption. Production: 0.
	StepDelay time.Duration
	// PrefixCacheMB enables the shared-prompt radix prefix cache with the
	// given KV byte budget in MiB (0 disables it). Admitted sessions fork
	// their KV from the longest cached token prefix and prefill only the
	// unique suffix; completed prefills are inserted back. Bit-identity with
	// cold sessions is preserved (DESIGN.md §14).
	PrefixCacheMB int
	// PrefillChunk bounds how many prompt rows one scheduling slice may
	// prefill before the session yields its replica, so long-prompt
	// admission cannot stall a decode batch for the whole prompt. 0 keeps
	// single-pass prefills — unless the prefix cache is on, which defaults
	// the grain to 64 (cached FT2 partials are frozen at chunk boundaries,
	// so protected cache hits need a finite grain).
	PrefillChunk int
	// ExportStride enables live-migration checkpoints for sessions that
	// carry a session_id: every ExportStride emitted tokens (plus once right
	// after the first token) the scheduler captures the session's state into
	// a wire-format blob served by GET /v1/sessions/export, so a router can
	// restore the session elsewhere if this worker dies. 0 disables export.
	ExportStride int
	// SpillDir enables durable session parking: a successfully finished
	// session that carried a session_id has its final state written to
	// <SpillDir>/<hash>.ft2s in the wire format, and a later request with
	// {"resume":true,"session_id":...} — to this process or a restarted one
	// — restores it and generates MaxTokens further tokens. "" disables.
	SpillDir string
}

// WithDefaults resolves the configuration exactly as New does — the
// harnesses that drive Oracle against a config without building a Server
// (the router selftest, the cluster bench) use it to get the effective
// FT2Opts and model config.
func (c Config) WithDefaults() (Config, error) { return c.withDefaults() }

// withDefaults resolves the config, returning the effective values.
func (c Config) withDefaults() (Config, error) {
	if c.ModelCfg.Name == "" {
		if c.Model == "" {
			return c, fmt.Errorf("serve: no model configured")
		}
		cfg, err := model.ConfigByName(c.Model)
		if err != nil {
			return c, err
		}
		c.ModelCfg = cfg
	}
	c.Model = c.ModelCfg.Name
	if err := c.ModelCfg.Validate(); err != nil {
		return c, err
	}
	if c.Replicas <= 0 {
		c.Replicas = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); c.Replicas > n {
			c.Replicas = n
		}
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4 * c.Replicas
		if c.MaxSessions < 16 {
			c.MaxSessions = 16
		}
	}
	if c.MaxSessions < c.Replicas {
		c.MaxSessions = c.Replicas
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SliceSteps <= 0 {
		c.SliceSteps = 8
	}
	if c.BatchMax <= 0 {
		c.BatchMax = c.MaxSessions
	}
	if c.BatchMax > c.MaxSessions {
		c.BatchMax = c.MaxSessions
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if (c.FT2Opts == core.Options{}) {
		c.FT2Opts = core.Defaults()
	}
	if c.PrefixCacheMB < 0 {
		c.PrefixCacheMB = 0
	}
	if c.PrefillChunk < 0 {
		c.PrefillChunk = 0
	}
	if c.PrefixCacheMB > 0 && c.PrefillChunk <= 0 {
		c.PrefillChunk = 64
	}
	if c.ExportStride < 0 {
		c.ExportStride = 0
	}
	return c, nil
}
