package serve

import (
	"context"
	"sync"
	"testing"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
)

// TestSharedBoundsStoreConcurrent is the data-race witness for the serving
// design's central sharing assumption: after the first token, the FT2 hook
// only reads its bounds store, so ONE captured store may back arbitrarily
// many concurrent protected generations. Ten goroutines, each with its own
// replica and controller, resume from the same ForkState (same
// protect.Store pointer) and must produce outputs bit-identical to the
// sequential reference. Run under -race this fails on any hidden write to
// the shared store.
func TestSharedBoundsStoreConcurrent(t *testing.T) {
	const (
		goroutines = 10
		maxTokens  = 16
	)
	cfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	prompts := testPrompts(t, goroutines)

	// Profile the bounds once: run one protected prefill and capture the
	// fork state. The clone inside CaptureForkState is the store every
	// goroutine will share read-only.
	profiler, err := model.New(cfg, 7, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	pf := core.New(profiler, core.Defaults())
	pf.Reset()
	pf.Install()
	profiler.Prefill(prompts(0))
	shared := pf.CaptureForkState()

	// resume runs one protected generation for prompt i, decoding from the
	// shared bounds after its own prefill-equivalent warmup. Each call gets
	// a private model and controller; only the bounds store is shared.
	resume := func(i int) []int {
		m, err := model.New(cfg, 7, numerics.FP16)
		if err != nil {
			panic(err)
		}
		f := core.New(m, core.Defaults())
		f.ResumeFork(core.ForkState{Bounds: shared.Bounds})
		f.Install()
		out := make([]int, 0, maxTokens)
		tok := m.Prefill(prompts(i))
		out = append(out, tok)
		for len(out) < maxTokens {
			tok = m.DecodeStep(tok)
			out = append(out, tok)
		}
		return out
	}

	sequential := make([][]int, goroutines)
	for i := range sequential {
		sequential[i] = resume(i)
	}

	concurrent := make([][]int, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = resume(i)
		}(i)
	}
	wg.Wait()

	for i := range sequential {
		if !equalTokens(concurrent[i], sequential[i]) {
			t.Fatalf("goroutine %d: concurrent %v != sequential %v", i, concurrent[i], sequential[i])
		}
	}
}

// TestWorkerPoolStressRace hammers the persistent matmul worker pool in
// internal/tensor from its two heaviest concurrent clients at once: a fault
// injection campaign (many trial workers, each running prefill passes large
// enough to take the pooled row-split path) and a batched serving load
// (whose fused logit products take the pooled path whenever two or more
// sessions share a step). The pool's job recycling and chunk handoff are
// lock-free; under -race this fails on any unsynchronized reuse, and the
// served outputs must still match the sequential reference bit for bit.
func TestWorkerPoolStressRace(t *testing.T) {
	cfg := Config{
		Model:       "qwen2-1.5b-sim",
		Seed:        7,
		Replicas:    2,
		MaxSessions: 8,
		SliceSteps:  2,
		BatchMax:    4,
	}
	prompts := testPrompts(t, 4)
	const requests, maxTokens = 8, 10

	serveLoad := func(clients int) [][]int {
		srv := newTestServer(t, cfg)
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: clients, Requests: requests, MaxTokens: maxTokens,
			Protected: true, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("clients=%d: %v", clients, st.Errs)
		}
		out := make([][]int, requests)
		for i, r := range st.Results {
			out[i] = r.Tokens
		}
		return out
	}
	sequential := serveLoad(1)

	mcfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.SquadSim(4)
	ds.GenTokens = 12
	ds.AnswerLo, ds.AnswerHi = 6, 9
	spec := campaign.Spec{
		ModelCfg:  mcfg,
		ModelSeed: 7,
		DType:     numerics.FP16,
		Fault:     numerics.ExponentBit,
		Method:    arch.MethodFT2,
		FT2Opts:   core.Defaults(),
		Dataset:   ds,
		Trials:    24,
		BaseSeed:  3,
		Workers:   4,
	}

	var wg sync.WaitGroup
	var campErr error
	var campRes campaign.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		campRes, campErr = campaign.Run(spec)
	}()
	concurrent := serveLoad(8)
	wg.Wait()

	if campErr != nil {
		t.Fatalf("campaign under shared pool load: %v", campErr)
	}
	if campRes.Failed > 0 {
		t.Fatalf("campaign trials failed under shared pool load: %v", campRes.ErrorSummaries())
	}
	for i := range sequential {
		if !equalTokens(concurrent[i], sequential[i]) {
			t.Fatalf("request %d: concurrent %v != sequential %v", i, concurrent[i], sequential[i])
		}
	}
}

// TestServerSharedLoadRace drives the full serving stack with more
// concurrent clients than replicas under -race: the scheduler, metrics,
// and session park/resume paths all get exercised with true concurrency,
// and the outputs must still match the single-client run bit for bit.
func TestServerSharedLoadRace(t *testing.T) {
	cfg := Config{
		Model:       "qwen2-1.5b-sim",
		Seed:        7,
		Replicas:    2,
		MaxSessions: 8,
		SliceSteps:  2,
	}
	prompts := testPrompts(t, 4)
	const requests, maxTokens = 8, 10

	run := func(clients int) [][]int {
		srv := newTestServer(t, cfg)
		st := srv.RunLoad(context.Background(), LoadSpec{
			Clients: clients, Requests: requests, MaxTokens: maxTokens,
			Protected: true, PromptFor: prompts,
		})
		if st.Failed > 0 {
			t.Fatalf("clients=%d: %v", clients, st.Errs)
		}
		out := make([][]int, requests)
		for i, r := range st.Results {
			out[i] = r.Tokens
		}
		return out
	}

	sequential := run(1)
	concurrent := run(8)
	for i := range sequential {
		if !equalTokens(concurrent[i], sequential[i]) {
			t.Fatalf("request %d: concurrent %v != sequential %v", i, concurrent[i], sequential[i])
		}
	}
}
