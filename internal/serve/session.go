package serve

import (
	"context"
	"errors"
	"time"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/tokenizer"
)

// Session is one admitted generation request moving through the scheduler.
// A session is driven by exactly one worker at a time; between slices it is
// parked as a model.Snapshot plus FT2 fork state, so it can resume on any
// replica bit-identically. Clients observe it through Tokens (streaming)
// and Wait.
type Session struct {
	req    Request
	prompt []int
	ctx    context.Context
	cancel context.CancelFunc

	out     []int
	tokens  chan int // cap MaxTokens: scheduler sends never block
	done    chan struct{}
	err     error
	res     Result
	lastTok int

	started  bool
	snap     model.Snapshot
	ftState  core.ForkState
	admitted time.Time
	startAt  time.Time // first slice began (queue latency endpoint)
}

// Tokens streams the generated token ids in order; the channel is closed
// when the session finishes (successfully or not).
func (s *Session) Tokens() <-chan int { return s.tokens }

// Done is closed when the session finished.
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session finishes or ctx expires and returns the
// terminal result.
func (s *Session) Wait(ctx context.Context) (Result, error) {
	select {
	case <-s.done:
		return s.res, s.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// emit records one generated token and forwards it to the stream.
func (s *Session) emit(tok int) {
	s.out = append(s.out, tok)
	s.tokens <- tok // never blocks: cap == MaxTokens
}

// checkCtx maps a context failure to the client-visible error.
func (s *Session) checkCtx() error {
	switch err := s.ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return &apiError{Status: statusClientClosed, Msg: "serve: request canceled"}
	}
}

// statusClientClosed is the nginx-convention status for a client that went
// away before its response was ready.
const statusClientClosed = 499

// advance runs one scheduling slice of up to steps decode steps (the first
// slice spends one of them on the prefill) on replica r. It returns whether
// the session finished. The caller (the scheduler worker) guarantees that
// r.resident is either nil or this session, and wraps the call in the
// panic-recovery boundary.
func (s *Session) advance(r *replica, steps int, stepDelay time.Duration, mx *metrics) (bool, error) {
	if err := s.checkCtx(); err != nil {
		return false, err
	}
	if r.resident != nil && r.resident != s {
		panic("serve: advancing a session on a replica with another session resident")
	}
	m, f := r.m, r.ft2
	m.ClearHooks()
	if s.req.Protected {
		if s.started {
			// Reinstate this session's counters and first-token bounds; the
			// decode hook only reads the bounds store, so the same store may
			// back many sessions concurrently.
			f.ResumeFork(s.ftState)
		} else {
			f.Reset()
		}
		f.Install()
	}

	var tok int
	switch {
	case !s.started:
		s.startAt = time.Now()
		mx.queueLat.observe(msSince(s.admitted, s.startAt))
		tok = m.Prefill(s.prompt)
		s.started = true
		s.emit(tok)
		mx.tokensTotal.Add(1)
		steps--
		if s.req.Protected {
			// The first-token bounds are complete once the prefill returned;
			// clone them out of the controller so other sessions' Resets
			// cannot clear them.
			s.ftState = f.CaptureForkState()
		}
	case r.resident != s:
		tok = m.Restore(&s.snap)
	default:
		tok = s.lastTok
	}
	r.resident = s

	finished := s.finishedAfter(tok)
	for !finished && steps > 0 {
		if stepDelay > 0 {
			time.Sleep(stepDelay)
		}
		if err := s.checkCtx(); err != nil {
			s.lastTok = tok
			s.syncFT2(f)
			return false, err
		}
		t0 := time.Now()
		tok = m.DecodeStep(tok)
		mx.tokenLat.observe(msSince(t0, time.Now()))
		mx.tokensTotal.Add(1)
		s.emit(tok)
		steps--
		finished = s.finishedAfter(tok)
	}
	s.lastTok = tok
	s.syncFT2(f)
	return finished, nil
}

// finishedAfter reports whether the generation is complete once tok has
// been emitted.
func (s *Session) finishedAfter(tok int) bool {
	return len(s.out) >= s.req.MaxTokens || (s.req.StopAtEOS && tok == tokenizer.EOS)
}

// syncFT2 captures the controller's correction counters into the session's
// fork state so they survive parking (the bounds pointer is already ours).
func (s *Session) syncFT2(f *core.FT2) {
	if !s.req.Protected || !s.started {
		return
	}
	s.ftState.Stats = f.Stats()
	s.ftState.ByKind = f.StatsByKind()
}

// park checkpoints the session's generation state out of the replica so
// another session can use it. Must only be called after an advance that
// returned unfinished.
func (s *Session) park(r *replica) {
	r.m.Checkpoint(&s.snap)
	r.resident = nil
}

// finalize builds the terminal Result (called by the scheduler with the
// session off every replica).
func (s *Session) finalize(modelName string) {
	s.res = Result{
		Model:     modelName,
		Tokens:    s.out,
		Text:      data.Vocab().Decode(s.out),
		Protected: s.req.Protected,
		QueueMS:   msSince(s.admitted, s.startAt),
		GenMS:     msSince(s.startAt, time.Now()),
	}
	if !s.started {
		// Never scheduled (deadline expired in the queue): no generation
		// window to report.
		s.res.QueueMS = msSince(s.admitted, time.Now())
		s.res.GenMS = 0
	}
	if s.req.Protected {
		s.res.Corrections = correctionsReport(s.ftState.Stats, s.ftState.FirstTokenNaN, s.ftState.ByKind)
	}
}

func msSince(from, to time.Time) float64 { return float64(to.Sub(from)) / float64(time.Millisecond) }
