package serve

import (
	"context"
	"errors"
	"time"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/prefixcache"
	"ft2/internal/tokenizer"
)

// Session is one admitted generation request moving through the scheduler.
// A session owns its generation state (a model.DecodeState holding its KV
// slabs) plus its FT2 fork state, so it can advance on any replica — swapped
// in for serial steps or handed to DecodeStepBatch alongside other sessions
// — with no snapshot copies and bit-identical results. A session is driven
// by exactly one worker at a time; clients observe it through Tokens
// (streaming) and Wait.
type Session struct {
	req    Request
	prompt []int
	ctx    context.Context
	cancel context.CancelFunc

	out     []int
	tokens  chan int // cap MaxTokens: scheduler sends never block
	done    chan struct{}
	err     error
	res     Result
	lastTok int

	started  bool
	state    *model.DecodeState // owned generation state (KV slabs)
	ftState  core.ForkState
	admitted time.Time
	startAt  time.Time // first slice began (queue latency endpoint)

	// Chunked-prefill / prefix-cache progress. prefillStarted flips on the
	// session's first prefill slice (cache lookup + BeginPrefill); hitRows is
	// the cached-prefix depth it resumed from; insert marks that the
	// completed prefill should be offered back to the cache; partials
	// collects the frozen FT2 first-token profiles at chunk boundaries for
	// protected inserts.
	prefillStarted bool
	hitRows        int
	insert         bool
	partials       []prefixcache.FTPartial

	// id identifies the session in the chaos journal; suspect marks that a
	// chaos fault targeted it (directly, or via weight corruption on its
	// group), so its output may silently diverge from the oracle.
	id      int64
	suspect bool

	// Adoption (migration import / spill resume): instead of prefilling a
	// prompt, the session's first slice restores adoptSnap (and, when
	// protected, adoptFT) into its state and decodes from there. corrBase
	// holds the correction counters the state arrived with, so server-level
	// metrics only accumulate this process's delta while the response stays
	// cumulative. lastExport and exportSnap drive the checkpoint-export
	// stride; exportSnap is reused across captures.
	adoptSnap  *model.Snapshot
	adoptFT    *core.ForkState
	adoptKind  adoptKind
	corrBase   core.ForkState
	lastExport int
	exportSnap *model.Snapshot
}

// adoptKind distinguishes how an adopted session's state arrived, for the
// restored/imported metrics split.
type adoptKind int

const (
	adoptNone   adoptKind = iota
	adoptImport           // POST /v1/sessions/import (live migration)
	adoptSpill            // Resume from the spill directory (durable parking)
)

// Tokens streams the generated token ids in order; the channel is closed
// when the session finishes (successfully or not).
func (s *Session) Tokens() <-chan int { return s.tokens }

// Done is closed when the session finished.
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session finishes or ctx expires and returns the
// terminal result.
func (s *Session) Wait(ctx context.Context) (Result, error) {
	select {
	case <-s.done:
		return s.res, s.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// emit records one generated token and forwards it to the stream.
func (s *Session) emit(tok int) {
	s.out = append(s.out, tok)
	s.tokens <- tok // never blocks: cap == MaxTokens
}

// checkCtx maps a context failure to the client-visible error.
func (s *Session) checkCtx() error {
	switch err := s.ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return &apiError{Status: statusClientClosed, Msg: "serve: request canceled"}
	}
}

// statusClientClosed is the nginx-convention status for a client that went
// away before its response was ready.
const statusClientClosed = 499

// finishedAfter reports whether the generation is complete once tok has
// been emitted.
func (s *Session) finishedAfter(tok int) bool {
	return len(s.out) >= s.req.MaxTokens || (s.req.StopAtEOS && tok == tokenizer.EOS)
}

// syncFT2 captures the controller's correction counters into the session's
// fork state so they survive the slice (the bounds pointer is already ours).
func (s *Session) syncFT2(f controller) {
	if !s.req.Protected || !s.started {
		return
	}
	s.ftState.Stats = f.Stats()
	s.ftState.ByKind = f.StatsByKind()
}

// finalize builds the terminal Result (called by the scheduler with the
// session off every replica).
func (s *Session) finalize(modelName string) {
	s.res = Result{
		Model:     modelName,
		Tokens:    s.out,
		Text:      data.Vocab().Decode(s.out),
		Protected: s.req.Protected,
		QueueMS:   msSince(s.admitted, s.startAt),
		GenMS:     msSince(s.startAt, time.Now()),
	}
	if !s.started {
		// Never scheduled (deadline expired in the queue): no generation
		// window to report.
		s.res.QueueMS = msSince(s.admitted, time.Now())
		s.res.GenMS = 0
	}
	if s.req.Protected {
		s.res.Corrections = correctionsReport(s.ftState.Stats, s.ftState.FirstTokenNaN, s.ftState.ByKind)
	}
}

func msSince(from, to time.Time) float64 { return float64(to.Sub(from)) / float64(time.Millisecond) }
