package data

import (
	"math/rand"

	"ft2/internal/tokenizer"
)

// SharedPrefixPrompts builds n deterministic chat prompts of promptLen
// tokens (BOS included) that all start with one common "system prompt" of
// ⌈promptLen·sharedFrac⌉ tokens followed by a per-prompt unique suffix — the
// production chat traffic shape the serving prefix cache exploits. The same
// (n, promptLen, sharedFrac, seed) always yields the same prompts, so warm
// and cold passes over one prompt set are comparable. sharedFrac is clamped
// so every prompt keeps at least one unique trailing token.
func SharedPrefixPrompts(n, promptLen int, sharedFrac float64, seed int64) [][]int {
	if promptLen < 2 {
		panic("data: shared-prefix prompts need promptLen >= 2")
	}
	tok := Vocab()
	p := newPool(chatWords, 55, commonWords, 30, topicWords, 15)

	shared := int(float64(promptLen) * sharedFrac)
	if shared > promptLen-1 {
		shared = promptLen - 1
	}
	if shared < 1 {
		shared = 1 // the BOS token is always common
	}
	base := rand.New(rand.NewSource(seed))
	prefix := make([]int, 0, shared)
	prefix = append(prefix, tokenizer.BOS)
	for len(prefix) < shared {
		prefix = append(prefix, tok.ID(p.draw(base)))
	}

	out := make([][]int, n)
	for i := range out {
		rng := rand.New(rand.NewSource(seed + 1 + int64(i)*7919))
		pr := make([]int, 0, promptLen)
		pr = append(pr, prefix...)
		for len(pr) < promptLen {
			pr = append(pr, tok.ID(p.draw(rng)))
		}
		out[i] = pr
	}
	return out
}
