// Package data provides the synthetic task generators standing in for the
// paper's datasets (SQuAD 2.0, Google XTREME, GSM8K) and the four
// alternative profiling corpora of Figure 3 (Awesome ChatGPT Prompts,
// TweetEval, MBPP, OPUS-100). Each dataset draws prompts from its own token
// distribution over a shared vocabulary, so bounds profiled on one dataset
// are systematically misaligned with another — the mechanism behind the
// paper's Figure 3 degradation.
//
// Reference answers are defined as the answer span of the fault-free
// generation (the paper only keeps inputs every model answers correctly, so
// fault-free output ≡ correct output), and the Masked/SDC rule is the
// paper's containment test with synonym-class equivalence.
package data

import "ft2/internal/tokenizer"

// Word groups of the shared vocabulary. The split into themed pools lets
// each dataset weight its draws differently.
var (
	commonWords = []string{
		"the", "a", "is", "of", "and", "to", "in", "that", "it", "was", "for",
		"on", "are", "with", "as", "at", "by", "from", "up", "about", "into",
		"over", "after", "between", "out", "against", "during", "without",
		"before", "under", "around", "among", "answer", "question", "context",
		"there", "here", "this", "these", "those", "then", "than", "so",
		"because", "therefore", "thus", "first", "second", "third", "final",
		"yes", "no", "not", "more", "less", "most", "least", "very", "quite",
	}
	questionWords = []string{
		"who", "what", "where", "when", "why", "which", "how", "whose",
		"many", "much", "did", "does", "do", "can", "could", "would", "should",
	}
	digitWords = []string{
		"0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
		"11", "12", "13", "14", "15", "16", "17", "18", "19", "20",
	}
	numberWords = []string{
		"zero", "one", "two", "three", "four", "five", "six", "seven",
		"eight", "nine", "ten", "eleven", "twelve", "thirteen", "fourteen",
		"fifteen", "sixteen", "seventeen", "eighteen", "nineteen", "twenty",
	}
	mathWords = []string{
		"number", "people", "persons", "total", "sum", "result", "equals",
		"plus", "minus", "times", "divided", "each", "per", "cost", "costs",
		"price", "dollars", "cents", "apples", "oranges", "books", "pages",
		"hours", "minutes", "days", "weeks", "buys", "sells", "gives",
		"takes", "left", "remaining", "altogether", "spends", "earns",
		"twice", "half", "double", "triple", "equation", "solve", "step",
	}
	topicWords = []string{
		"history", "science", "river", "mountain", "city", "country",
		"president", "king", "queen", "empire", "war", "treaty", "battle",
		"century", "year", "month", "population", "language", "culture",
		"music", "art", "film", "book", "author", "scientist", "discovery",
		"invention", "machine", "energy", "water", "earth", "moon", "star",
		"planet", "animal", "plant", "forest", "ocean", "weather", "climate",
		"school", "student", "teacher", "university", "company", "market",
		"government", "law", "court", "election", "party", "leader",
		"team", "game", "player", "season", "champion", "record", "medal",
		"bridge", "road", "train", "plane", "ship", "engine", "building",
		"museum", "library", "church", "castle", "garden", "field", "farm",
	}
	multilingualWords = []string{
		"le", "la", "les", "un", "une", "des", "et", "ou", "est", "sont",
		"der", "die", "das", "ein", "eine", "und", "oder", "ist", "sind",
		"el", "los", "las", "uno", "una", "y", "o", "es", "son",
		"il", "lo", "gli", "uno_it", "una_it", "e_it", "sono",
		"de_nl", "het", "een", "en_nl", "of_nl", "zijn",
		"qui", "que", "quoi", "ou_fr", "quand", "comment", "pourquoi",
		"wer", "was_de", "wo", "wann", "wie", "warum",
	}
	chatWords = []string{
		"act", "assistant", "prompt", "role", "play", "pretend", "imagine",
		"write", "explain", "describe", "list", "generate", "create",
		"helpful", "expert", "professional", "persona", "instruction",
		"respond", "reply", "style", "tone", "format", "example",
	}
	tweetWords = []string{
		"#happy", "#sad", "#angry", "#love", "#fail", "#win", "#news",
		"@user", "@friend", "lol", "omg", "wow", "haha", "smh", "tbh",
		"literally", "mood", "vibes", "trending", "viral", "retweet",
		"follow", "like", "share", "post", "thread", "selfie",
	}
	codeWords = []string{
		"def", "return", "if_kw", "else_kw", "for_kw", "while_kw", "print",
		"lambda", "import", "class", "self", "len", "range", "list_kw",
		"dict", "str", "int_kw", "float_kw", "true", "false", "none",
		"assert", "test", "function", "argument", "variable", "loop",
		"index", "value", "key", "append", "sorted", "reverse",
	}
)

// sharedVocab is the singleton tokenizer every dataset uses.
var sharedVocab = buildVocab()

func buildVocab() *tokenizer.Tokenizer {
	var words []string
	words = append(words, commonWords...)
	words = append(words, questionWords...)
	words = append(words, digitWords...)
	words = append(words, numberWords...)
	words = append(words, mathWords...)
	words = append(words, topicWords...)
	words = append(words, multilingualWords...)
	words = append(words, chatWords...)
	words = append(words, tweetWords...)
	words = append(words, codeWords...)
	tok := tokenizer.New(words)

	// Digit ↔ number-word synonym classes ("5" ≡ "five"): the paper's
	// semantically-equivalent masked outcomes.
	for i := range digitWords {
		tok.DeclareSynonyms(digitWords[i], numberWords[i])
	}
	tok.DeclareSynonyms("people", "persons")
	tok.DeclareSynonyms("total", "sum")
	tok.DeclareSynonyms("result", "answer")
	return tok
}

// Vocab returns the shared tokenizer.
func Vocab() *tokenizer.Tokenizer { return sharedVocab }
