package data

import (
	"testing"

	"ft2/internal/tokenizer"
)

func TestVocabSingleton(t *testing.T) {
	if Vocab() != Vocab() {
		t.Error("Vocab must be a singleton")
	}
	if Vocab().VocabSize() < 300 {
		t.Errorf("vocab too small: %d", Vocab().VocabSize())
	}
	if Vocab().VocabSize() > 512 {
		t.Errorf("vocab %d exceeds the model zoo's 512-token id space", Vocab().VocabSize())
	}
}

func TestVocabSynonyms(t *testing.T) {
	tok := Vocab()
	if !tok.Equivalent(tok.ID("5"), tok.ID("five")) {
		t.Error("digit/word synonym missing")
	}
	if !tok.Equivalent(tok.ID("people"), tok.ID("persons")) {
		t.Error("people/persons synonym missing")
	}
	if tok.Equivalent(tok.ID("5"), tok.ID("6")) {
		t.Error("distinct digits must not be equivalent")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a := SquadSim(10)
	b := SquadSim(10)
	if len(a.Inputs) != 10 {
		t.Fatalf("want 10 inputs, got %d", len(a.Inputs))
	}
	for i := range a.Inputs {
		pa, pb := a.Inputs[i].Prompt, b.Inputs[i].Prompt
		if len(pa) != len(pb) {
			t.Fatal("nondeterministic prompt length")
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatal("nondeterministic prompt contents")
			}
		}
	}
}

func TestPromptsWellFormed(t *testing.T) {
	for _, d := range EvalDatasets(8) {
		for _, in := range d.Inputs {
			if in.Prompt[0] != tokenizer.BOS {
				t.Errorf("%s: prompt must start with BOS", d.Name)
			}
			if len(in.Prompt) < d.minLen || len(in.Prompt) > d.maxLen {
				t.Errorf("%s: prompt length %d outside [%d,%d]", d.Name, len(in.Prompt), d.minLen, d.maxLen)
			}
			for _, tok := range in.Prompt {
				if tok < 0 || tok >= Vocab().VocabSize() {
					t.Errorf("%s: token %d out of vocab", d.Name, tok)
				}
			}
		}
	}
}

func TestTaskParameters(t *testing.T) {
	sq := SquadSim(1)
	if sq.Task != TaskQA || sq.GenTokens != 60 || sq.AnswerHi != 50 {
		t.Errorf("squad-sim parameters wrong: %+v", sq)
	}
	g := Gsm8kSim(1)
	if g.Task != TaskMath || g.GenTokens != 180 || g.AnswerHi != 150 {
		t.Errorf("gsm8k-sim parameters wrong: %+v", g)
	}
	if TaskQA.String() != "QA" || TaskMath.String() != "Math" {
		t.Error("Task strings wrong")
	}
}

func TestDatasetDistributionsDiffer(t *testing.T) {
	// The whole point of Fig. 3: different datasets have different token
	// distributions. Compare token histograms of squad vs xtreme.
	sq, xt := SquadSim(20), XtremeSim(20)
	count := func(d *Dataset) map[int]int {
		m := make(map[int]int)
		for _, in := range d.Inputs {
			for _, tok := range in.Prompt {
				m[tok]++
			}
		}
		return m
	}
	csq, cxt := count(sq), count(xt)
	overlap := 0
	union := 0
	for tok := range csq {
		union++
		if cxt[tok] > 0 {
			overlap++
		}
	}
	for tok := range cxt {
		if csq[tok] == 0 {
			union++
		}
	}
	if union == 0 || float64(overlap)/float64(union) > 0.6 {
		t.Errorf("squad and xtreme token supports overlap too much: %d/%d", overlap, union)
	}
}

func TestReferenceAnswer(t *testing.T) {
	d := SquadSim(1)
	golden := make([]int, 60)
	for i := range golden {
		golden[i] = 100 + i
	}
	ref := d.ReferenceAnswer(golden)
	if len(ref) != 6 || ref[0] != 144 {
		t.Errorf("ReferenceAnswer = %v", ref)
	}
	defer func() {
		if recover() == nil {
			t.Error("short generation must panic")
		}
	}()
	d.ReferenceAnswer(golden[:10])
}

func TestIsMasked(t *testing.T) {
	d := SquadSim(1)
	golden := make([]int, 60)
	for i := range golden {
		golden[i] = tokenizer.FirstWordID + i // unique per position
	}
	// Identical output: masked.
	if !d.IsMasked(golden, append([]int(nil), golden...)) {
		t.Error("identical output must be masked")
	}
	// Different prefix but answer intact: masked.
	faulty := append([]int(nil), golden...)
	faulty[0] ^= 1
	if !d.IsMasked(golden, faulty) {
		t.Error("answer-preserving corruption must be masked")
	}
	// Answer destroyed: SDC.
	bad := append([]int(nil), golden...)
	for i := d.AnswerLo; i < d.AnswerHi; i++ {
		bad[i] = tokenizer.FirstWordID
	}
	if d.IsMasked(golden, bad) {
		t.Error("destroyed answer must be SDC")
	}
	// Answer moved elsewhere (containment rule): masked.
	moved := make([]int, 60)
	for i := range moved {
		moved[i] = tokenizer.FirstWordID + 50
	}
	copy(moved[10:], d.ReferenceAnswer(golden))
	if !d.IsMasked(golden, moved) {
		t.Error("relocated answer must be masked (containment rule)")
	}
}

func TestIsMaskedSynonymEquivalence(t *testing.T) {
	d := SquadSim(1)
	tok := Vocab()
	golden := make([]int, 60)
	for i := range golden {
		golden[i] = tok.ID("the")
	}
	golden[45] = tok.ID("5")
	golden[46] = tok.ID("people")
	faulty := append([]int(nil), golden...)
	faulty[45] = tok.ID("five")
	faulty[46] = tok.ID("persons")
	if !d.IsMasked(golden, faulty) {
		t.Error("synonym-equivalent answer must be masked")
	}
	faulty[45] = tok.ID("6")
	if d.IsMasked(golden, faulty) {
		t.Error("numerically different answer must be SDC")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"squad-sim", "xtreme-sim", "gsm8k-sim", "chatprompts-sim", "tweeteval-sim", "mbpp-sim", "opus-sim"} {
		d, err := ByName(name, 3)
		if err != nil || d.Name != name || len(d.Inputs) != 3 {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestPromptsAccessor(t *testing.T) {
	d := SquadSim(5)
	ps := d.Prompts()
	if len(ps) != 5 || len(ps[0]) != len(d.Inputs[0].Prompt) {
		t.Error("Prompts accessor wrong")
	}
}

func TestAlternativeDatasets(t *testing.T) {
	alts := AlternativeDatasets(2)
	if len(alts) != 4 {
		t.Fatalf("want 4 alternative datasets, got %d", len(alts))
	}
	names := map[string]bool{}
	for _, d := range alts {
		names[d.Name] = true
		if len(d.Inputs) != 2 {
			t.Errorf("%s: wrong input count", d.Name)
		}
	}
	for _, want := range []string{"chatprompts-sim", "tweeteval-sim", "mbpp-sim", "opus-sim"} {
		if !names[want] {
			t.Errorf("missing alternative dataset %s", want)
		}
	}
}

func TestProfileSplitDisjoint(t *testing.T) {
	d := SquadSim(10)
	p := d.ProfileSplit(10)
	if p.Name != d.Name || p.Task != d.Task || p.GenTokens != d.GenTokens {
		t.Error("ProfileSplit must preserve task parameters")
	}
	if len(p.Inputs) != 10 {
		t.Fatalf("split size %d", len(p.Inputs))
	}
	// Same distribution, different inputs: no prompt may be identical.
	asKey := func(prompt []int) string {
		b := make([]byte, 0, len(prompt)*2)
		for _, tok := range prompt {
			b = append(b, byte(tok), byte(tok>>8))
		}
		return string(b)
	}
	seen := map[string]bool{}
	for _, in := range d.Inputs {
		seen[asKey(in.Prompt)] = true
	}
	for _, in := range p.Inputs {
		if seen[asKey(in.Prompt)] {
			t.Error("profile split overlaps evaluation inputs")
		}
	}
	// The original dataset must be untouched.
	if len(d.Inputs) != 10 {
		t.Error("ProfileSplit mutated the source dataset")
	}
}

func TestProfileSplitDeterministic(t *testing.T) {
	a := Gsm8kSim(3).ProfileSplit(5)
	b := Gsm8kSim(3).ProfileSplit(5)
	for i := range a.Inputs {
		pa, pb := a.Inputs[i].Prompt, b.Inputs[i].Prompt
		if len(pa) != len(pb) {
			t.Fatal("nondeterministic split")
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatal("nondeterministic split contents")
			}
		}
	}
}
