package data

import (
	"fmt"
	"math/rand"

	"ft2/internal/tokenizer"
)

// Task identifies the generative task type (Table 2).
type Task int

const (
	// TaskQA is question answering (60 generated tokens).
	TaskQA Task = iota
	// TaskMath is mathematical reasoning (180 generated tokens).
	TaskMath
)

// String implements fmt.Stringer.
func (t Task) String() string {
	if t == TaskMath {
		return "Math"
	}
	return "QA"
}

// Input is one inference instance.
type Input struct {
	ID     int
	Prompt []int
}

// Dataset is a deterministic synthetic corpus plus the task parameters the
// evaluation uses (generation length and answer span).
type Dataset struct {
	Name string
	Task Task
	// GenTokens is the number of tokens generated per inference (paper: 60
	// for QA, 180 for Math — 120% of the last correct-answer position).
	GenTokens int
	// AnswerLo/AnswerHi delimit the answer span inside the fault-free
	// generation; the reference answer for the Masked/SDC rule is that
	// token span (paper: answers end at position 50 for QA, 150 for Math).
	AnswerLo, AnswerHi int
	Inputs             []Input

	// Reference-workload metadata for the performance model (Fig. 4/10):
	// the real dataset's typical prompt length and offline-profiling corpus
	// size (20% of the training set / full validation set).
	RefPromptTokens    int
	RefProfilingInputs int

	pool   *pool
	seed   int64
	minLen int
	maxLen int
}

// pool is a weighted mixture of word groups defining a dataset's token
// distribution.
type pool struct {
	groups  [][]string
	weights []int
	total   int
}

func newPool(pairs ...interface{}) *pool {
	if len(pairs)%2 != 0 {
		panic("data: newPool needs (group, weight) pairs")
	}
	p := &pool{}
	for i := 0; i < len(pairs); i += 2 {
		g := pairs[i].([]string)
		w := pairs[i+1].(int)
		p.groups = append(p.groups, g)
		p.weights = append(p.weights, w)
		p.total += w
	}
	return p
}

func (p *pool) draw(rng *rand.Rand) string {
	r := rng.Intn(p.total)
	for i, w := range p.weights {
		if r < w {
			g := p.groups[i]
			return g[rng.Intn(len(g))]
		}
		r -= w
	}
	panic("data: unreachable")
}

// generate fills the dataset with n deterministic inputs.
func (d *Dataset) generate(n int) {
	tok := Vocab()
	for id := 0; id < n; id++ {
		rng := rand.New(rand.NewSource(d.seed + int64(id)*7919))
		ln := d.minLen + rng.Intn(d.maxLen-d.minLen+1)
		prompt := make([]int, 0, ln+1)
		prompt = append(prompt, tokenizer.BOS)
		for len(prompt) < ln {
			prompt = append(prompt, tok.ID(d.pool.draw(rng)))
		}
		d.Inputs = append(d.Inputs, Input{ID: id, Prompt: prompt})
	}
}

// ProfileSplit returns a dataset drawn from the same token distribution but
// with inputs disjoint from the evaluation inputs — the stand-in for the
// 20%-of-training-set profiling corpus the offline baselines use.
func (d *Dataset) ProfileSplit(n int) *Dataset {
	c := *d
	c.Inputs = nil
	c.seed += 500000
	c.generate(n)
	return &c
}

// Prompts returns the raw prompt token slices (for profilers).
func (d *Dataset) Prompts() [][]int {
	out := make([][]int, len(d.Inputs))
	for i, in := range d.Inputs {
		out[i] = in.Prompt
	}
	return out
}

// ReferenceAnswer extracts the answer span from a fault-free generation.
func (d *Dataset) ReferenceAnswer(golden []int) []int {
	if len(golden) < d.AnswerHi {
		panic(fmt.Sprintf("data: generation of %d tokens shorter than answer span [%d,%d)",
			len(golden), d.AnswerLo, d.AnswerHi))
	}
	return golden[d.AnswerLo:d.AnswerHi]
}

// IsMasked applies the paper's outcome rule: the faulty output is masked if
// it is identical to the fault-free output, or if it still contains (a
// semantically equivalent form of) the reference answer; otherwise SDC.
func (d *Dataset) IsMasked(golden, faulty []int) bool {
	if len(golden) == len(faulty) {
		same := true
		for i := range golden {
			if golden[i] != faulty[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return Vocab().ContainsEquivalent(faulty, d.ReferenceAnswer(golden))
}

// SquadSim is the SQuAD 2.0 stand-in: English QA over topical text.
func SquadSim(n int) *Dataset {
	d := &Dataset{
		Name: "squad-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 512, RefProfilingInputs: 26000,
		seed: 1001, minLen: 16, maxLen: 24,
		pool: newPool(
			commonWords, 35, questionWords, 10, topicWords, 40,
			digitWords, 8, numberWords, 4, mathWords, 3,
		),
	}
	d.generate(n)
	return d
}

// XtremeSim is the Google XTREME stand-in: multilingual QA, with a token
// distribution shifted toward the multilingual pool.
func XtremeSim(n int) *Dataset {
	d := &Dataset{
		Name: "xtreme-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 384, RefProfilingInputs: 122000,
		seed: 2002, minLen: 16, maxLen: 24,
		pool: newPool(
			multilingualWords, 45, topicWords, 25, commonWords, 15,
			questionWords, 8, digitWords, 5, numberWords, 2,
		),
	}
	d.generate(n)
	return d
}

// Gsm8kSim is the GSM8K stand-in: math word problems with long generations.
func Gsm8kSim(n int) *Dataset {
	d := &Dataset{
		Name: "gsm8k-sim", Task: TaskMath,
		GenTokens: 180, AnswerLo: 144, AnswerHi: 150,
		RefPromptTokens: 192, RefProfilingInputs: 1500,
		seed: 3003, minLen: 24, maxLen: 32,
		pool: newPool(
			mathWords, 40, digitWords, 20, numberWords, 10,
			commonWords, 20, questionWords, 5, topicWords, 5,
		),
	}
	d.generate(n)
	return d
}

// Alternative profiling corpora (Figure 3). They are prompt sources only:
// GenTokens matches the target task so profiling exercises the same steps.

// ChatPromptsSim stands in for Awesome ChatGPT Prompts.
func ChatPromptsSim(n int) *Dataset {
	d := &Dataset{
		Name: "chatprompts-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 256, RefProfilingInputs: 150,
		seed: 4004, minLen: 16, maxLen: 24,
		pool: newPool(chatWords, 55, commonWords, 30, topicWords, 15),
	}
	d.generate(n)
	return d
}

// TweetEvalSim stands in for TweetEval.
func TweetEvalSim(n int) *Dataset {
	d := &Dataset{
		Name: "tweeteval-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 64, RefProfilingInputs: 9000,
		seed: 5005, minLen: 16, maxLen: 24,
		pool: newPool(tweetWords, 60, commonWords, 25, topicWords, 15),
	}
	d.generate(n)
	return d
}

// MbppSim stands in for MBPP (program synthesis prompts).
func MbppSim(n int) *Dataset {
	d := &Dataset{
		Name: "mbpp-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 128, RefProfilingInputs: 120,
		seed: 6006, minLen: 16, maxLen: 24,
		pool: newPool(codeWords, 60, commonWords, 20, digitWords, 10, mathWords, 10),
	}
	d.generate(n)
	return d
}

// OpusSim stands in for OPUS-100 (translation pairs).
func OpusSim(n int) *Dataset {
	d := &Dataset{
		Name: "opus-sim", Task: TaskQA,
		GenTokens: 60, AnswerLo: 44, AnswerHi: 50,
		RefPromptTokens: 96, RefProfilingInputs: 200000,
		seed: 7007, minLen: 16, maxLen: 24,
		pool: newPool(multilingualWords, 60, commonWords, 25, topicWords, 15),
	}
	d.generate(n)
	return d
}

// ByName builds a dataset by its canonical name with n inputs.
func ByName(name string, n int) (*Dataset, error) {
	switch name {
	case "squad-sim":
		return SquadSim(n), nil
	case "xtreme-sim":
		return XtremeSim(n), nil
	case "gsm8k-sim":
		return Gsm8kSim(n), nil
	case "chatprompts-sim":
		return ChatPromptsSim(n), nil
	case "tweeteval-sim":
		return TweetEvalSim(n), nil
	case "mbpp-sim":
		return MbppSim(n), nil
	case "opus-sim":
		return OpusSim(n), nil
	default:
		return nil, fmt.Errorf("data: unknown dataset %q", name)
	}
}

// EvalDatasets returns the three evaluation datasets of the paper with n
// inputs each.
func EvalDatasets(n int) []*Dataset {
	return []*Dataset{SquadSim(n), XtremeSim(n), Gsm8kSim(n)}
}

// AlternativeDatasets returns the four Figure 3 profiling corpora.
func AlternativeDatasets(n int) []*Dataset {
	return []*Dataset{ChatPromptsSim(n), TweetEvalSim(n), MbppSim(n), OpusSim(n)}
}
