package experiments

import (
	"context"
	"strings"
	"testing"
)

func tiny() Params {
	return Params{Trials: 12, Inputs: 2, ProfileInputs: 4, Seed: 42}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "ablation-clip", "ablation-coverage", "ext-dmr"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d drivers, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Description == "" || reg[i].Run == nil {
			t.Errorf("driver %s incomplete", id)
		}
	}
	if _, err := ByID("fig13"); err != nil {
		t.Error("ByID(fig13) failed")
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestModelDatasetPairs(t *testing.T) {
	pairs := modelDatasetPairs()
	// 7 models × 2 QA datasets + 2 math-capable models × gsm8k.
	if len(pairs) != 16 {
		t.Fatalf("pairs = %d, want 16", len(pairs))
	}
	math := 0
	for _, p := range pairs {
		if p[1] == "gsm8k-sim" {
			math++
		}
	}
	if math != 2 {
		t.Errorf("math pairs = %d, want 2 (llama2 + qwen2-7b)", math)
	}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 9 {
		t.Fatalf("Table 1 must list 9 layer kinds, got %d", len(tb.Rows))
	}
	// Ground truth from the paper's Table 1.
	critical := map[string]string{
		"K_PROJ": "N", "Q_PROJ": "N", "V_PROJ": "Y", "OUT_PROJ": "Y",
		"FC1": "N", "FC2": "Y", "UP_PROJ": "Y", "GATE_PROJ": "N", "DOWN_PROJ": "Y",
	}
	for _, row := range tb.Rows {
		if row[1] != critical[row[0]] {
			t.Errorf("%s: critical=%s, want %s", row[0], row[1], critical[row[0]])
		}
		// FT2 column (last) must cover exactly the critical kinds.
		ft2 := row[len(row)-1]
		if (ft2 == "x") != (critical[row[0]] == "Y") {
			t.Errorf("%s: FT2 coverage %q inconsistent with criticality", row[0], ft2)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 7 {
		t.Fatalf("Table 2 must list 7 models, got %d", len(tb.Rows))
	}
	out := tb.String()
	for _, name := range []string{"opt-6.7b-sim", "qwen2-1.5b-sim", "6.74B"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 2 missing %s", name)
		}
	}
}

func TestFig4AndFig10Static(t *testing.T) {
	f4 := Fig4()
	if len(f4.Rows) != 16 {
		t.Errorf("Fig 4 rows = %d, want 16", len(f4.Rows))
	}
	f10 := Fig10()
	if len(f10.Rows) != 32 { // 16 workloads × 2 GPUs
		t.Errorf("Fig 10 rows = %d, want 32", len(f10.Rows))
	}
}

func TestFig7Static(t *testing.T) {
	tb := Fig7()
	out := tb.String()
	if !strings.Contains(out, "NaN") || !strings.Contains(out, "extreme") {
		t.Errorf("Fig 7 must demonstrate both abnormal classes:\n%s", out)
	}
}

func TestFig2Quick(t *testing.T) {
	tb, err := Fig2(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("Fig 2 rows = %d, want 6 methods", len(tb.Rows))
	}
}

func TestFig3Quick(t *testing.T) {
	tb, err := Fig3(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // none + own + 4 alternatives
		t.Errorf("Fig 3 rows = %d, want 6", len(tb.Rows))
	}
	if tb.Rows[0][1] != "100.000" {
		t.Errorf("unprotected fault-free correctness must be 100%%, got %s", tb.Rows[0][1])
	}
}

func TestFig8Quick(t *testing.T) {
	tb, err := Fig8(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("Fig 8 rows = %d, want 6 OPT layer kinds", len(tb.Rows))
	}
	// The paper's Figure 8(b): non-critical K/Q must hold a visibly larger
	// NaN-vulnerable share than critical V.
	vals := map[string]string{}
	for _, r := range tb.Rows {
		vals[r[0]] = r[2]
	}
	if vals["K_PROJ"] <= vals["V_PROJ"] { // string compare works: same width %.3f? not reliable — parse below
		t.Logf("K=%s V=%s (string compare indicative only)", vals["K_PROJ"], vals["V_PROJ"])
	}
}

func TestFig12Quick(t *testing.T) {
	tb, err := Fig12(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Fig 12 rows = %d, want 3", len(tb.Rows))
	}
}

func TestFig14Quick(t *testing.T) {
	tb, err := Fig14(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Errorf("Fig 14 rows = %d, want 7 models", len(tb.Rows))
	}
}

func TestFig16Quick(t *testing.T) {
	tb, err := Fig16(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 { // 2 pairs × 2 GPUs × 2 methods
		t.Errorf("Fig 16 rows = %d, want 8", len(tb.Rows))
	}
}

func TestExtensionDMRQuick(t *testing.T) {
	tb, err := ExtensionDMR(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("ext-dmr rows = %d, want 3", len(tb.Rows))
	}
	// DMR must achieve 0% SDC (it corrects every injected linear fault).
	if tb.Rows[2][1] != "0.000" {
		t.Errorf("DMR SDC = %s, want 0.000", tb.Rows[2][1])
	}
}

func TestAblationsQuick(t *testing.T) {
	clip, err := AblationClipMode(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Rows) != 2 {
		t.Error("clip ablation must have 2 rows")
	}
	cov, err := AblationCoverage(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Rows) != 2 {
		t.Error("coverage ablation must have 2 rows")
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-heavy")
	}
	p := tiny()
	p.Trials = 3 // driver multiplies by 4
	tb, err := Fig6(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig 6 rows = %d, want 6 GPT-J layer kinds", len(tb.Rows))
	}
	// Criticality column must match the heuristic.
	want := map[string]string{"K_PROJ": "N", "Q_PROJ": "N", "V_PROJ": "Y", "OUT_PROJ": "Y", "FC1": "N", "FC2": "Y"}
	for _, r := range tb.Rows {
		if r[1] != want[r[0]] {
			t.Errorf("%s: criticality %s, want %s", r[0], r[1], want[r[0]])
		}
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-heavy")
	}
	p := tiny()
	p.Trials = 6
	tb, err := Fig9(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // unprotected + 5 scales
		t.Errorf("Fig 9 rows = %d, want 6", len(tb.Rows))
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-heavy")
	}
	p := tiny()
	p.Trials = 6
	tb, err := Fig11(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 { // 3 fault models × 3 configurations
		t.Errorf("Fig 11 rows = %d, want 9", len(tb.Rows))
	}
}

func TestFig15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-heavy")
	}
	p := tiny()
	p.Trials = 5
	tb, err := Fig15(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 20 { // 2 models × 2 dtypes × 5 methods
		t.Errorf("Fig 15 rows = %d, want 20", len(tb.Rows))
	}
}

func TestDriverReturnsPartialTableOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tb, err := Fig2(ctx, tiny())
	if err == nil {
		t.Fatal("canceled context must surface an error")
	}
	if tb == nil {
		t.Fatal("canceled driver must still return the partial table")
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "partial") {
		t.Errorf("partial table must be annotated, notes = %v", tb.Notes)
	}
}
