// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver returns a report.Table with the same
// rows/series the paper plots, sized by a Params value so the same code
// backs the quick benchmark harness, the unit tests, and the full
// regeneration run of cmd/ft2bench.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ft2/internal/campaign"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/report"
)

// Params sizes a campaign. The paper runs 50 inputs × 500 injections per
// cell (≈0.006–0.37% error margins); the defaults here are scaled to
// single-core CPU budgets — the printed confidence intervals make the
// precision explicit.
type Params struct {
	// Trials is the number of fault injections per experiment cell.
	Trials int
	// Inputs is the number of evaluation inputs per dataset.
	Inputs int
	// ProfileInputs sizes the offline profiling split (the baselines' 20%
	// training corpus stand-in).
	ProfileInputs int
	// Seed is the base seed; model weights use Seed, trial RNGs derive
	// from it.
	Seed int64
	// Workers caps campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// TrialTimeout aborts a trial with no token progress for this long
	// (0 disables the watchdog). See campaign.Spec.TrialTimeout.
	TrialTimeout time.Duration
	// TrialRetries bounds per-trial retry attempts (0 = campaign default).
	TrialRetries int
	// Journal, when non-nil, checkpoints every campaign cell for resume;
	// cells are distinguished by their spec fingerprints, so one journal
	// backs a whole experiment run.
	Journal *campaign.Journal
	// NoFork disables golden-checkpoint forking in every campaign cell
	// (results are bit-identical either way; see campaign.Spec.NoFork).
	NoFork bool
	// CheckpointStride overrides the golden-checkpoint stride (0 = the
	// per-cell ⌈√GenTokens⌉ default; see campaign.Spec.CheckpointStride).
	CheckpointStride int
}

// partialOnCancel lets a driver hand back the table rows it finished before
// the context was canceled (or its deadline expired), annotated as partial.
// Non-cancellation errors discard the table as before.
func partialOnCancel(t *report.Table, err error) (*report.Table, error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.AddNote(fmt.Sprintf("interrupted: partial table (%v)", err))
		return t, err
	}
	return nil, err
}

// Quick returns a small smoke-test configuration for tests and the
// testing.B benchmark harness (every driver still runs end to end; the
// confidence intervals are wide at this size).
func Quick() Params {
	return Params{Trials: 12, Inputs: 2, ProfileInputs: 6, Seed: 42}
}

// Default returns the full-regeneration configuration used by cmd/ft2bench.
func Default() Params {
	return Params{Trials: 150, Inputs: 5, ProfileInputs: 60, Seed: 42}
}

// Driver regenerates one paper artifact. Run threads the context through
// every campaign so experiments honor cancellation and deadlines; on
// interruption a driver returns the partially-built table alongside the
// context's error.
type Driver struct {
	ID          string
	Description string
	Run         func(context.Context, Params) (*report.Table, error)
}

// static adapts a parameterless table builder to the Driver signature.
func static(f func() *report.Table) func(context.Context, Params) (*report.Table, error) {
	return func(context.Context, Params) (*report.Table, error) { return f(), nil }
}

// Registry lists every driver in paper order.
func Registry() []Driver {
	return []Driver{
		{"table1", "Layer criticality and protection coverage matrix", static(Table1)},
		{"table2", "Model zoo: reference vs simulated configurations", static(Table2)},
		{"fig2", "SDC with protections, Llama2+GSM8K under EXP faults", Fig2},
		{"fig3", "Fault-free correctness with bounds from alternative datasets", Fig3},
		{"fig4", "Offline bound-profiling hours on A100/H100", static(Fig4)},
		{"fig6", "Leave-one-out layer criticality (GPT-J + SQuAD)", Fig6},
		{"fig7", "Bit-flip anatomy: exponent blow-up and NaN encoding", static(Fig7)},
		{"fig8", "Neuron value distribution and NaN-vulnerable share per layer", Fig8},
		{"fig9", "SDC vs first-token bound scaling factor (Qwen2 + GSM8K)", Fig9},
		{"fig10", "First-token share of inference time", static(Fig10)},
		{"fig11", "Resilience of first-token generation", Fig11},
		{"fig12", "Large-value outlier channels in Llama-family MLP layers", Fig12},
		{"fig13", "Main comparison: 7 models × 3 datasets × 3 fault models", Fig13},
		{"fig14", "FT2 runtime overhead (measured on the Go engine)", Fig14},
		{"fig15", "Sensitivity to data type (FP16 vs FP32)", Fig15},
		{"fig16", "Sensitivity to hardware (A100 vs H100)", Fig16},
		{"ablation-clip", "Ablation: clip-to-bound vs clip-to-zero", AblationClipMode},
		{"ablation-coverage", "Ablation: critical-only vs all-layer protection", AblationCoverage},
		{"ext-dmr", "Extension: FT2 vs duplication in place (0%-SDC alternative)", ExtensionDMR},
	}
}

// ByID looks up a driver.
func ByID(id string) (Driver, error) {
	for _, d := range Registry() {
		if d.ID == id {
			return d, nil
		}
	}
	return Driver{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// modelDatasetPairs returns the valid evaluation combinations of Table 2:
// all models on the QA datasets, math only for Llama2 and Qwen2-7B.
func modelDatasetPairs() [][2]string {
	var out [][2]string
	for _, cfg := range model.Zoo() {
		out = append(out, [2]string{cfg.Name, "squad-sim"}, [2]string{cfg.Name, "xtreme-sim"})
		if cfg.TaskTypes == "QA/Math" {
			out = append(out, [2]string{cfg.Name, "gsm8k-sim"})
		}
	}
	return out
}

// faultModels lists the paper's three fault models.
var faultModels = numerics.AllFaultModels
