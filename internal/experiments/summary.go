package experiments

import (
	"fmt"
	"strconv"

	"ft2/internal/report"
)

// Fig13Summary aggregates the main-comparison grid into the paper's
// headline metrics: the average SDC-rate reduction of each protection
// relative to the unprotected model, averaged over every
// (model, dataset, fault) cell that has a non-zero unprotected rate.
type Fig13Summary struct {
	// AvgReduction maps protection name → mean SDC reduction in percent
	// (the paper reports 92.92% for FT2).
	AvgReduction map[string]float64
	// AvgSDC maps protection name → mean SDC percentage across cells.
	AvgSDC map[string]float64
	// Cells is the number of (model, dataset, fault) groups aggregated.
	Cells int
}

// SummarizeFig13 parses a Fig13 driver table (columns: Model, Dataset,
// Fault, Protection, SDC %, CI).
func SummarizeFig13(tb *report.Table) (Fig13Summary, error) {
	type cellKey struct{ model, dataset, fault string }
	unprotected := make(map[cellKey]float64)
	byMethod := make(map[string]map[cellKey]float64)

	for _, row := range tb.Rows {
		if len(row) < 5 {
			return Fig13Summary{}, fmt.Errorf("experiments: malformed fig13 row %v", row)
		}
		k := cellKey{row[0], row[1], row[2]}
		sdc, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return Fig13Summary{}, fmt.Errorf("experiments: bad SDC value %q: %w", row[4], err)
		}
		method := row[3]
		if method == "No Protection" {
			unprotected[k] = sdc
			continue
		}
		if byMethod[method] == nil {
			byMethod[method] = make(map[cellKey]float64)
		}
		byMethod[method][k] = sdc
	}

	s := Fig13Summary{
		AvgReduction: make(map[string]float64),
		AvgSDC:       make(map[string]float64),
	}
	for method, cells := range byMethod {
		var redSum, sdcSum float64
		n, nRed := 0, 0
		for k, sdc := range cells {
			sdcSum += sdc
			n++
			if base, ok := unprotected[k]; ok && base > 0 {
				redSum += (base - sdc) / base * 100
				nRed++
			}
		}
		if n > 0 {
			s.AvgSDC[method] = sdcSum / float64(n)
		}
		if nRed > 0 {
			s.AvgReduction[method] = redSum / float64(nRed)
		}
		if n > s.Cells {
			s.Cells = n
		}
	}
	return s, nil
}

// Table renders the summary as a report table.
func (s Fig13Summary) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("Figure 13 summary over %d cells (paper: FT2 achieves 92.92%% average SDC reduction)", s.Cells),
		"Protection", "Avg SDC %", "Avg reduction vs unprotected %")
	for _, m := range []string{"Ranger", "MaxiMals", "Global Clipper", "FT2", "FT2 (offline bounds)"} {
		if _, ok := s.AvgSDC[m]; !ok {
			continue
		}
		t.AddRow(m, s.AvgSDC[m], s.AvgReduction[m])
	}
	return t
}
