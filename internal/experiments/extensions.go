package experiments

import (
	"context"
	"time"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/report"
)

// ExtensionDMR compares FT2 against duplication in place (DMR), the
// high-overhead 0%-SDC alternative of the paper's limitations section:
// reliability under EXP faults plus measured generation overhead.
func ExtensionDMR(ctx context.Context, p Params) (*report.Table, error) {
	const modelName, dsName = "llama2-7b-sim", "squad-sim"
	t := report.NewTable("Extension: FT2 vs duplication in place (llama2-7b-sim, squad-sim, EXP faults)",
		"Protection", "SDC %", "±95% CI", "Overhead % vs unprotected")

	baseMS, err := genCost(p, modelName, dsName, nil)
	if err != nil {
		return nil, err
	}

	unprot, err := cell(ctx, p, modelName, dsName, numerics.ExponentBit, arch.MethodNone, nil)
	if err != nil {
		return partialOnCancel(t, err)
	}
	t.AddRow("No Protection", unprot.SDC.Percent(), unprot.SDC.CI95()*100, 0.0)

	ft2Res, err := cell(ctx, p, modelName, dsName, numerics.ExponentBit, arch.MethodFT2, nil)
	if err != nil {
		return partialOnCancel(t, err)
	}
	ft2MS, err := genCost(p, modelName, dsName, func(m *model.Model) func() {
		f := core.Attach(m, core.Defaults())
		return f.Detach
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("FT2", ft2Res.SDC.Percent(), ft2Res.SDC.CI95()*100, (ft2MS-baseMS)/baseMS*100)

	dmrRes, err := cell(ctx, p, modelName, dsName, numerics.ExponentBit, arch.MethodNone,
		func(s *campaign.Spec) { s.UseDMR = true })
	if err != nil {
		return partialOnCancel(t, err)
	}
	dmrMS, err := genCost(p, modelName, dsName, func(m *model.Model) func() {
		d := protect.NewDMR(m)
		h := m.RegisterHook(d.Hook())
		return func() { m.RemoveHook(h) }
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("DMR (duplication in place)", dmrRes.SDC.Percent(), dmrRes.SDC.CI95()*100,
		(dmrMS-baseMS)/baseMS*100)
	return t, nil
}

// genCost measures ms per generation with an optional hook installer.
func genCost(p Params, modelName, dsName string, install func(*model.Model) func()) (float64, error) {
	cfg, err := model.ConfigByName(modelName)
	if err != nil {
		return 0, err
	}
	ds, err := data.ByName(dsName, 1)
	if err != nil {
		return 0, err
	}
	m, err := model.New(cfg, p.Seed, numerics.FP16)
	if err != nil {
		return 0, err
	}
	if install != nil {
		cleanup := install(m)
		defer cleanup()
	}
	prompt := ds.Inputs[0].Prompt
	m.Generate(prompt, ds.GenTokens) // warm-up
	reps := 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		m.Generate(prompt, ds.GenTokens)
	}
	return time.Since(start).Seconds() * 1000 / float64(reps), nil
}
