package experiments

import (
	"context"
	"fmt"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/protect"
	"ft2/internal/report"
)

// cell builds and runs one campaign cell under ctx, returning its SDC
// estimate. The execution-robustness knobs (per-trial watchdog, retry
// budget, journal) are threaded from Params into the spec.
func cell(ctx context.Context, p Params, modelName, dsName string, fm numerics.FaultModel,
	method arch.Method, mutate func(*campaign.Spec)) (campaign.Result, error) {

	cfg, err := model.ConfigByName(modelName)
	if err != nil {
		return campaign.Result{}, err
	}
	ds, err := data.ByName(dsName, p.Inputs)
	if err != nil {
		return campaign.Result{}, err
	}
	spec := campaign.Spec{
		ModelCfg:  cfg,
		ModelSeed: p.Seed,
		DType:     numerics.FP16,
		Fault:     fm,
		Method:    method,
		FT2Opts:   core.Defaults(),
		Dataset:   ds,
		Trials:    p.Trials,
		BaseSeed:  p.Seed + 1000,
		Workers:   p.Workers,

		TrialTimeout: p.TrialTimeout,
		TrialRetries: p.TrialRetries,
		Journal:      p.Journal,

		NoFork:           p.NoFork,
		CheckpointStride: p.CheckpointStride,
	}
	if needsBounds(spec) {
		m, err := model.New(cfg, p.Seed, spec.DType)
		if err != nil {
			return campaign.Result{}, err
		}
		spec.OfflineBounds = protect.OfflineProfile(m, ds.ProfileSplit(p.ProfileInputs).Prompts(), ds.GenTokens)
	}
	if mutate != nil {
		mutate(&spec)
	}
	return campaign.RunContext(ctx, spec)
}

func needsBounds(s campaign.Spec) bool {
	switch s.Method {
	case arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2Offline:
		return true
	}
	return false
}

// Fig2 reproduces the motivating comparison: Llama2 + GSM8K under EXP
// faults, all protections.
func Fig2(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 2: SDC rate with various protections (llama2-7b-sim, gsm8k-sim, EXP faults)",
		"Protection", "SDC %", "±95% CI", "Trials")
	for _, m := range arch.AllMethods {
		res, err := cell(ctx, p, "llama2-7b-sim", "gsm8k-sim", numerics.ExponentBit, m, nil)
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(m.String(), res.SDC.Percent(), res.SDC.CI95()*100, res.SDC.Trials)
	}
	return t, nil
}

// Fig6 reproduces the leave-one-out criticality study: protect every linear
// layer except one kind, inject everywhere, and measure the SDC rate. A
// higher bar means the excluded layer is more necessary to protect.
func Fig6(ctx context.Context, p Params) (*report.Table, error) {
	const modelName, dsName = "gptj-6b-sim", "squad-sim"
	cfg, err := model.ConfigByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 6: SDC rate when one layer kind is left unprotected (gptj-6b-sim, squad-sim, EXP faults)",
		"Unprotected layer", "Heuristic critical?", "SDC %", "±95% CI")
	// The leave-one-out signal is small (the paper's critical bars are
	// 0.75-1.82%), so this driver runs 4x the configured trial count.
	p.Trials *= 4
	for _, excluded := range cfg.Family.LayerKinds() {
		cov := make(map[arch.CoveragePoint]bool)
		for _, k := range cfg.Family.LayerKinds() {
			if k != excluded {
				cov[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] = true
			}
		}
		res, err := cell(ctx, p, modelName, dsName, numerics.ExponentBit, arch.MethodFT2Offline,
			func(s *campaign.Spec) { s.CustomCoverage = cov })
		if err != nil {
			return partialOnCancel(t, err)
		}
		crit := "N"
		if arch.IsCritical(cfg.Family, excluded) {
			crit = "Y"
		}
		t.AddRow(excluded.String(), crit, res.SDC.Percent(), res.SDC.CI95()*100)
	}
	return t, nil
}

// Fig9 sweeps the first-token bound scaling factor on Qwen2 + GSM8K.
func Fig9(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 9: SDC rate vs bound scaling factor (qwen2-7b-sim, gsm8k-sim, EXP faults)",
		"Configuration", "SDC %", "±95% CI")
	unprot, err := cell(ctx, p, "qwen2-7b-sim", "gsm8k-sim", numerics.ExponentBit, arch.MethodNone, nil)
	if err != nil {
		return partialOnCancel(t, err)
	}
	t.AddRow("No Protection", unprot.SDC.Percent(), unprot.SDC.CI95()*100)
	for _, scale := range []float32{1, 1.25, 1.5, 2, 4} {
		res, err := cell(ctx, p, "qwen2-7b-sim", "gsm8k-sim", numerics.ExponentBit, arch.MethodFT2,
			func(s *campaign.Spec) { s.FT2Opts.ScaleFactor = scale })
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(fmt.Sprintf("FT2, scale %.2fx", scale), res.SDC.Percent(), res.SDC.CI95()*100)
	}
	return t, nil
}

// Fig11 measures the resilience of the first-token generation: faults
// injected only during the prefill pass with NaN correction active, versus
// unprotected whole-inference injection and full FT2.
func Fig11(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 11: resilience of the first token generation (opt-6.7b-sim, squad-sim)",
		"Fault model", "Configuration", "SDC %", "±95% CI")
	for _, fm := range faultModels {
		unprot, err := cell(ctx, p, "opt-6.7b-sim", "squad-sim", fm, arch.MethodNone, nil)
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(fm.String(), "No protection (all steps)", unprot.SDC.Percent(), unprot.SDC.CI95()*100)

		full, err := cell(ctx, p, "opt-6.7b-sim", "squad-sim", fm, arch.MethodFT2, nil)
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(fm.String(), "FT2 (all steps)", full.SDC.Percent(), full.SDC.CI95()*100)

		first, err := cell(ctx, p, "opt-6.7b-sim", "squad-sim", fm, arch.MethodFT2,
			func(s *campaign.Spec) { s.Window = campaign.WindowFirstToken })
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(fm.String(), "Faults in first token only, NaN corrected", first.SDC.Percent(), first.SDC.CI95()*100)
	}
	return t, nil
}

// Fig13 is the paper's main result: every valid model × dataset pair under
// the three fault models with all six protection configurations.
func Fig13(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 13: SDC rate comparison of FT2 against baselines",
		"Model", "Dataset", "Fault", "Protection", "SDC %", "±95% CI")
	for _, pair := range modelDatasetPairs() {
		for _, fm := range faultModels {
			for _, m := range arch.AllMethods {
				res, err := cell(ctx, p, pair[0], pair[1], fm, m, nil)
				if err != nil {
					return partialOnCancel(t, err)
				}
				t.AddRow(pair[0], pair[1], fm.String(), m.String(), res.SDC.Percent(), res.SDC.CI95()*100)
			}
		}
	}
	return t, nil
}

// Fig15 compares FP16 and FP32 inference under EXP faults.
func Fig15(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 15: SDC rate by data type (squad-sim, EXP faults)",
		"Model", "DType", "Protection", "SDC %", "±95% CI")
	for _, name := range []string{"opt-6.7b-sim", "gptj-6b-sim"} {
		for _, d := range []numerics.DType{numerics.FP16, numerics.FP32} {
			for _, m := range []arch.Method{arch.MethodNone, arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2} {
				res, err := cell(ctx, p, name, "squad-sim", numerics.ExponentBit, m,
					func(s *campaign.Spec) { s.DType = d })
				if err != nil {
					return partialOnCancel(t, err)
				}
				t.AddRow(name, d.String(), m.String(), res.SDC.Percent(), res.SDC.CI95()*100)
			}
		}
	}
	return t, nil
}

// Fig16 compares the two hardware configurations. Reliability is
// hardware-independent up to the prefill-exposure ratio the performance
// model supplies; the table also reports the modeled latencies that differ.
func Fig16(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 16: SDC rate by hardware (EXP faults)",
		"Model", "Dataset", "GPU", "Protection", "SDC %", "±95% CI", "Modeled inference (s)")
	pairs := [][2]string{{"opt-6.7b-sim", "squad-sim"}, {"qwen2-7b-sim", "xtreme-sim"}}
	for _, pair := range pairs {
		cfg, err := model.ConfigByName(pair[0])
		if err != nil {
			return nil, err
		}
		ds, err := data.ByName(pair[1], 1)
		if err != nil {
			return nil, err
		}
		for _, gpu := range perfmodel.GPUs {
			w := perfmodel.Workload{
				Params: cfg.RefParams, PromptTokens: ds.RefPromptTokens,
				GenTokens: ds.GenTokens, DType: numerics.FP16,
			}
			for _, m := range []arch.Method{arch.MethodNone, arch.MethodFT2} {
				res, err := cell(ctx, p, pair[0], pair[1], numerics.ExponentBit, m,
					func(s *campaign.Spec) { s.GPU = gpu })
				if err != nil {
					return partialOnCancel(t, err)
				}
				t.AddRow(pair[0], pair[1], gpu.Name, m.String(),
					res.SDC.Percent(), res.SDC.CI95()*100,
					perfmodel.InferenceTime(gpu, w).Seconds())
			}
		}
	}
	return t, nil
}
