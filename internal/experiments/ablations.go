package experiments

import (
	"context"
	"time"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/report"
)

// AblationClipMode compares FT2's clip-to-bound against the CNN-era
// clip-to-zero on FT2's coverage (Take-away #8: generative LLMs have
// legitimate large activations, so clipping to zero causes deviations).
func AblationClipMode(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Ablation: out-of-bound correction target (vicuna-7b-sim, squad-sim, EXP faults)",
		"Clip mode", "SDC %", "±95% CI")
	for _, mode := range []protect.ClipMode{protect.ClipToBound, protect.ClipToZero} {
		res, err := cell(ctx, p, "vicuna-7b-sim", "squad-sim", numerics.ExponentBit, arch.MethodFT2,
			func(s *campaign.Spec) { s.FT2Opts.Mode = mode })
		if err != nil {
			return partialOnCancel(t, err)
		}
		t.AddRow(mode.String(), res.SDC.Percent(), res.SDC.CI95()*100)
	}
	return t, nil
}

// AblationCoverage compares critical-only protection with all-layer
// protection: reliability and measured overhead (Sec. 4.1's ~2× overhead
// argument for the naïve configuration).
func AblationCoverage(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Ablation: protection coverage (llama2-7b-sim, squad-sim, EXP faults)",
		"Coverage", "SDC %", "±95% CI", "Protected layers", "Hook time ms/gen")
	for _, all := range []bool{false, true} {
		res, err := cell(ctx, p, "llama2-7b-sim", "squad-sim", numerics.ExponentBit, arch.MethodFT2,
			func(s *campaign.Spec) { s.FT2Opts.ProtectAllLayers = all })
		if err != nil {
			return partialOnCancel(t, err)
		}
		label := "critical layers only (FT2)"
		if all {
			label = "all linear layers"
		}
		layers, ms, err := coverageCost(p, all)
		if err != nil {
			return nil, err
		}
		t.AddRow(label, res.SDC.Percent(), res.SDC.CI95()*100, layers, ms)
	}
	return t, nil
}

// coverageCost measures the per-generation wall-clock of FT2's hook with
// the given coverage.
func coverageCost(p Params, all bool) (int, float64, error) {
	cfg, err := model.ConfigByName("llama2-7b-sim")
	if err != nil {
		return 0, 0, err
	}
	ds := data.SquadSim(1)
	m, err := model.New(cfg, p.Seed, numerics.FP16)
	if err != nil {
		return 0, 0, err
	}
	opts := core.Defaults()
	opts.ProtectAllLayers = all
	f := core.Attach(m, opts)
	defer f.Detach()
	f.Generate(ds.Inputs[0].Prompt, ds.GenTokens) // warm-up
	reps := 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		f.Generate(ds.Inputs[0].Prompt, ds.GenTokens)
	}
	return f.ProtectedSiteCount(), time.Since(start).Seconds() * 1000 / float64(reps), nil
}
