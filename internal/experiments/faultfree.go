package experiments

import (
	"context"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/report"
)

// Fig3 measures fault-free output correctness when protecting with bounds
// profiled from alternative datasets (the paper's dataset-unavailability
// scenario): the target is SQuAD-like QA on the OPT model, the profiling
// sources are the target's own split plus the four alternative corpora.
// Protection uses the existing range-restriction behaviour (clip to zero),
// the configuration whose false positives the paper's Figure 3 exposes.
func Fig3(ctx context.Context, p Params) (*report.Table, error) {
	const modelName = "opt-6.7b-sim"
	cfg, err := model.ConfigByName(modelName)
	if err != nil {
		return nil, err
	}
	// Fault-free runs are cheap, and the Figure 3 effect is a ~1-2% drop in
	// correct outputs, so this driver uses a much larger evaluation set than
	// the injection campaigns to resolve it.
	evalInputs := p.Inputs * 24
	if evalInputs < 48 {
		evalInputs = 48
	}
	target := data.SquadSim(evalInputs)

	t := report.NewTable("Figure 3: fault-free correct-output % by bound-profiling source (opt-6.7b-sim, squad-sim target)",
		"Bounds source", "Correct %", "±95% CI", "False-positive corrections/gen")

	// Baseline: no protection is 100% correct by construction.
	unprot, _, err := campaign.FaultFreeCorrectness(cfg, p.Seed, numerics.FP16, target, arch.MethodNone, nil, protect.ClipToZero)
	if err != nil {
		return nil, err
	}
	t.AddRow("None (no protection)", unprot.Percent(), unprot.CI95()*100, 0.0)

	profile := func(ds *data.Dataset) (*protect.Store, error) {
		m, err := model.New(cfg, p.Seed, numerics.FP16)
		if err != nil {
			return nil, err
		}
		return protect.OfflineProfile(m, ds.Prompts(), ds.GenTokens), nil
	}

	// Bounds from the target's own profiling split.
	own, err := profile(target.ProfileSplit(p.ProfileInputs))
	if err != nil {
		return nil, err
	}
	res, corr, err := campaign.FaultFreeCorrectness(cfg, p.Seed, numerics.FP16, target, arch.MethodFT2Offline, own, protect.ClipToZero)
	if err != nil {
		return nil, err
	}
	t.AddRow("squad-sim (target dataset)", res.Percent(), res.CI95()*100,
		float64(corr.Total())/float64(len(target.Inputs)))

	// Bounds from the four alternative corpora.
	for _, alt := range data.AlternativeDatasets(p.ProfileInputs) {
		if err := ctx.Err(); err != nil {
			return partialOnCancel(t, err)
		}
		altBounds, err := profile(alt)
		if err != nil {
			return nil, err
		}
		res, corr, err := campaign.FaultFreeCorrectness(cfg, p.Seed, numerics.FP16, target, arch.MethodFT2Offline, altBounds, protect.ClipToZero)
		if err != nil {
			return nil, err
		}
		t.AddRow(alt.Name, res.Percent(), res.CI95()*100,
			float64(corr.Total())/float64(len(target.Inputs)))
	}
	return t, nil
}
