package experiments

import (
	"strings"
	"testing"

	"ft2/internal/report"
)

func synthFig13() *report.Table {
	tb := report.NewTable("f13", "Model", "Dataset", "Fault", "Protection", "SDC %", "CI")
	add := func(m, d, f, meth string, sdc float64) {
		tb.AddRow(m, d, f, meth, sdc, 0.1)
	}
	// Two cells; FT2 reduces 10→1 (90%) and 4→0 (100%): avg 95%.
	add("m1", "d1", "EXP", "No Protection", 10)
	add("m1", "d1", "EXP", "FT2", 1)
	add("m1", "d1", "EXP", "Ranger", 8)
	add("m2", "d1", "1-bit", "No Protection", 4)
	add("m2", "d1", "1-bit", "FT2", 0)
	add("m2", "d1", "1-bit", "Ranger", 4)
	// A zero-baseline cell must not contribute to reductions.
	add("m3", "d2", "2-bit", "No Protection", 0)
	add("m3", "d2", "2-bit", "FT2", 0)
	return tb
}

func TestSummarizeFig13(t *testing.T) {
	s, err := SummarizeFig13(synthFig13())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AvgReduction["FT2"]; got != 95 {
		t.Errorf("FT2 avg reduction = %g, want 95", got)
	}
	if got := s.AvgReduction["Ranger"]; got != 10 {
		t.Errorf("Ranger avg reduction = %g, want 10 ((20+0)/2)", got)
	}
	wantSDC := (1.0 + 0 + 0) / 3
	if got := s.AvgSDC["FT2"]; got != wantSDC {
		t.Errorf("FT2 avg SDC = %g, want %g", got, wantSDC)
	}
	if s.Cells != 3 {
		t.Errorf("cells = %d, want 3", s.Cells)
	}
	out := s.Table().String()
	if !strings.Contains(out, "FT2") || !strings.Contains(out, "92.92") {
		t.Errorf("summary table missing content:\n%s", out)
	}
}

func TestSummarizeFig13Malformed(t *testing.T) {
	tb := report.NewTable("x", "a")
	tb.AddRow("only-one-cell")
	if _, err := SummarizeFig13(tb); err == nil {
		t.Error("malformed rows must error")
	}
	tb2 := report.NewTable("x", "Model", "Dataset", "Fault", "Protection", "SDC %", "CI")
	tb2.AddRow("m", "d", "f", "FT2", "not-a-number", "0")
	if _, err := SummarizeFig13(tb2); err == nil {
		t.Error("non-numeric SDC must error")
	}
}
