package experiments

import (
	"context"
	"fmt"

	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/report"
	"ft2/internal/stats"
	"ft2/internal/tensor"
)

// Fig7 demonstrates the two abnormal-value mechanisms of the paper's
// Figure 7 at the bit level: flipping the highest exponent bit of a small
// value produces an extreme value; flipping it on a NaN-vulnerable value
// produces NaN.
func Fig7() *report.Table {
	t := report.NewTable("Figure 7: FP16 bit-flip anatomy (flip of the highest exponent bit)",
		"Input value", "Bits before", "Bits after", "Result", "Class")
	cases := []float32{0.5, 0.0078125, 1.5, -1.25, 3.0}
	for _, v := range cases {
		before := numerics.F32ToF16Bits(v)
		after := numerics.FlipBits16(before, []int{14})
		out := numerics.F16BitsToF32(after)
		class := "moderate"
		switch {
		case numerics.IsNaN16(after):
			class = "NaN (NaN-vulnerable input)"
		case out >= 16384 || out <= -16384:
			class = "extreme out-of-bound"
		}
		t.AddRow(fmt.Sprintf("%g", v),
			numerics.FormatBits16(before), numerics.FormatBits16(after),
			fmt.Sprintf("%g", out), class)
	}
	return t
}

// layerValueStats runs one fault-free inference and collects per-layer-kind
// activation statistics (first block, like the paper's block ID 1 plots).
func layerValueStats(modelName, dsName string, p Params, kinds []model.LayerKind) (map[model.LayerKind]*layerStats, error) {
	cfg, err := model.ConfigByName(modelName)
	if err != nil {
		return nil, err
	}
	ds, err := data.ByName(dsName, 1)
	if err != nil {
		return nil, err
	}
	m, err := model.New(cfg, p.Seed, numerics.FP16)
	if err != nil {
		return nil, err
	}
	want := make(map[model.LayerKind]bool)
	for _, k := range kinds {
		want[k] = true
	}
	out := make(map[model.LayerKind]*layerStats)
	m.RegisterHook(func(ctx model.HookCtx, tens *tensor.Tensor) {
		if ctx.Site != model.SiteLinearOut || ctx.Layer.Block != 0 || !want[ctx.Layer.Kind] {
			return
		}
		ls := out[ctx.Layer.Kind]
		if ls == nil {
			ls = &layerStats{hist: stats.NewHistogram(-8, 8, 32)}
			out[ctx.Layer.Kind] = ls
		}
		ls.observe(tens)
	})
	m.Generate(ds.Inputs[0].Prompt, ds.GenTokens)
	return out, nil
}

type layerStats struct {
	hist          *stats.Histogram
	total         int
	nanVulnerable int
	min, max      float32
	init          bool
}

func (ls *layerStats) observe(t *tensor.Tensor) {
	for _, v := range t.Data {
		ls.hist.Add(float64(v))
		ls.total++
		if numerics.NaNVulnerableValue(v) {
			ls.nanVulnerable++
		}
		if !ls.init {
			ls.min, ls.max = v, v
			ls.init = true
			continue
		}
		if v < ls.min {
			ls.min = v
		}
		if v > ls.max {
			ls.max = v
		}
	}
}

func (ls *layerStats) nanVulnPct() float64 {
	if ls.total == 0 {
		return 0
	}
	return float64(ls.nanVulnerable) / float64(ls.total) * 100
}

// Fig8 reports the per-layer neuron value distributions and NaN-vulnerable
// shares that explain layer criticality (OPT + SQuAD, block 0).
func Fig8(ctx context.Context, p Params) (*report.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, err := model.ConfigByName("opt-6.7b-sim")
	if err != nil {
		return nil, err
	}
	st, err := layerValueStats("opt-6.7b-sim", "squad-sim", p, cfg.Family.LayerKinds())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8: neuron value distribution per layer (opt-6.7b-sim block 0, squad-sim; histogram spans [-8,8])",
		"Layer", "Critical?", "NaN-vulnerable %", "Min", "Max", "Distribution")
	for _, k := range cfg.Family.LayerKinds() {
		ls := st[k]
		if ls == nil {
			return nil, fmt.Errorf("experiments: no stats for %v", k)
		}
		crit := "N"
		if k == model.VProj || k == model.OutProj || k == model.FC2 {
			crit = "Y"
		}
		t.AddRow(k.String(), crit, ls.nanVulnPct(), ls.min, ls.max, ls.hist.Sparkline())
	}
	return t, nil
}

// Fig12 shows the Llama-family MLP value distributions with the large
// outlier channels in DOWN_PROJ (Vicuna + SQuAD).
func Fig12(ctx context.Context, p Params) (*report.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kinds := []model.LayerKind{model.DownProj, model.UpProj, model.GateProj}
	st, err := layerValueStats("vicuna-7b-sim", "squad-sim", p, kinds)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 12: value distributions of Llama-family MLP layers (vicuna-7b-sim block 0, squad-sim)",
		"Layer", "Min", "Max", "Distribution")
	for _, k := range kinds {
		ls := st[k]
		if ls == nil {
			return nil, fmt.Errorf("experiments: no stats for %v", k)
		}
		t.AddRow(k.String(), ls.min, ls.max, ls.hist.Sparkline())
	}
	return t, nil
}
