package experiments

import (
	"fmt"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/report"
)

// Table1 renders the layer criticality and protection-coverage matrix.
// Both architecture families are merged into one table (the paper lists
// the union of layer kinds).
func Table1() *report.Table {
	t := report.NewTable("Table 1: layer criticality and protection coverage",
		"Layer", "Critical", "Ranger", "MaxiMals", "Global Clipper", "FT2")
	methods := []arch.Method{arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2}
	kinds := []model.LayerKind{
		model.KProj, model.QProj, model.VProj, model.OutProj,
		model.FC1, model.FC2, model.UpProj, model.GateProj, model.DownProj,
	}
	familyOf := func(k model.LayerKind) model.Family {
		switch k {
		case model.FC1, model.FC2:
			return model.FamilyOPT
		case model.UpProj, model.GateProj, model.DownProj:
			return model.FamilyLlama
		default:
			return model.FamilyOPT
		}
	}
	for _, k := range kinds {
		fam := familyOf(k)
		crit := "N"
		if arch.IsCritical(fam, k) {
			crit = "Y"
		}
		row := []interface{}{k.String(), crit}
		for _, m := range methods {
			cov := arch.Coverage(m, fam)
			mark := ""
			if cov[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] {
				mark = "x"
			}
			// Ranger protects activation outputs; Table 1 leaves its linear
			// columns empty (it covers no linear layer), matching the paper.
			row = append(row, mark)
		}
		t.AddRow(row...)
	}
	return t
}

// Table2 renders the model zoo with reference and simulated configurations.
func Table2() *report.Table {
	t := report.NewTable("Table 2: models and tasks",
		"Model", "Ref params", "Task", "Family", "Sim hidden", "Sim blocks", "Sim params")
	for _, cfg := range model.Zoo() {
		t.AddRow(cfg.Name,
			fmt.Sprintf("%.2fB", cfg.RefParams/1e9),
			cfg.TaskTypes, cfg.Family.String(),
			cfg.Hidden, cfg.Blocks, cfg.ParamCount())
	}
	return t
}
