package experiments

import (
	"context"
	"time"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/report"
)

// perfWorkloads returns the (model, dataset) reference workloads used by
// the perfmodel-driven figures.
func perfWorkloads() []struct {
	Model   model.Config
	Dataset *data.Dataset
} {
	var out []struct {
		Model   model.Config
		Dataset *data.Dataset
	}
	for _, pair := range modelDatasetPairs() {
		cfg, err := model.ConfigByName(pair[0])
		if err != nil {
			panic(err) // zoo names are static
		}
		ds, err := data.ByName(pair[1], 1)
		if err != nil {
			panic(err)
		}
		out = append(out, struct {
			Model   model.Config
			Dataset *data.Dataset
		}{cfg, ds})
	}
	return out
}

// Fig4 reports the offline bound-profiling cost per task on both GPUs
// (log-scale hours in the paper).
func Fig4() *report.Table {
	t := report.NewTable("Figure 4: offline bound-profiling time (hours; 20% of training set / full validation set)",
		"Model", "Dataset", "Profiling inputs", "A100 (h)", "H100 (h)")
	for _, wl := range perfWorkloads() {
		w := perfmodel.Workload{
			Params: wl.Model.RefParams, PromptTokens: wl.Dataset.RefPromptTokens,
			GenTokens: wl.Dataset.GenTokens, DType: numerics.FP16,
		}
		t.AddRow(wl.Model.Name, wl.Dataset.Name, wl.Dataset.RefProfilingInputs,
			perfmodel.ProfilingHours(perfmodel.A100, w, wl.Dataset.RefProfilingInputs),
			perfmodel.ProfilingHours(perfmodel.H100, w, wl.Dataset.RefProfilingInputs))
	}
	return t
}

// Fig10 reports the first-token generation's share of total inference time.
func Fig10() *report.Table {
	t := report.NewTable("Figure 10: first-token generation as % of inference time",
		"Model", "Dataset", "GPU", "First token %", "Inference (s)")
	for _, wl := range perfWorkloads() {
		w := perfmodel.Workload{
			Params: wl.Model.RefParams, PromptTokens: wl.Dataset.RefPromptTokens,
			GenTokens: wl.Dataset.GenTokens, DType: numerics.FP16,
		}
		for _, g := range perfmodel.GPUs {
			t.AddRow(wl.Model.Name, wl.Dataset.Name, g.Name,
				perfmodel.FirstTokenFraction(g, w)*100,
				perfmodel.InferenceTime(g, w).Seconds())
		}
	}
	return t
}

// Fig14 measures the wall-clock overhead of FT2 on the Go engine itself:
// generation with and without the FT2 hook attached, repeated, plus the
// bounds-store memory footprint (the paper's 288–512 B).
func Fig14(ctx context.Context, p Params) (*report.Table, error) {
	t := report.NewTable("Figure 14: measured FT2 time overhead on the Go engine",
		"Model", "Baseline ms/gen", "FT2 ms/gen", "Overhead %", "Protected layers", "Bounds bytes (fp16)")
	reps := p.Trials / 10
	if reps < 3 {
		reps = 3
	}
	for _, cfg := range model.Zoo() {
		if err := ctx.Err(); err != nil {
			return partialOnCancel(t, err)
		}
		ds := data.SquadSim(1)
		prompt := ds.Inputs[0].Prompt
		m, err := model.New(cfg, p.Seed, numerics.FP16)
		if err != nil {
			return nil, err
		}
		// Warm up once, then time.
		m.Generate(prompt, ds.GenTokens)
		start := time.Now()
		for i := 0; i < reps; i++ {
			m.Generate(prompt, ds.GenTokens)
		}
		base := time.Since(start)

		f := core.Attach(m, core.Defaults())
		f.Generate(prompt, ds.GenTokens)
		start = time.Now()
		for i := 0; i < reps; i++ {
			f.Generate(prompt, ds.GenTokens)
		}
		prot := time.Since(start)
		layers := f.ProtectedSiteCount()
		bytes := f.Bounds().MemoryBytes(numerics.FP16)
		f.Detach()

		overhead := (prot.Seconds() - base.Seconds()) / base.Seconds() * 100
		t.AddRow(cfg.Name,
			base.Seconds()*1000/float64(reps),
			prot.Seconds()*1000/float64(reps),
			overhead, layers, bytes)
	}
	return t, nil
}
