package model

import (
	"fmt"
	"math"

	"ft2/internal/tensor"
)

// Raw-state accessors for the fault-injection and chaos subsystems. They
// expose the weight matrices and KV slabs for controlled mutation — callers
// own the synchronization (the chaos engine only mutates at scheduler slice
// boundaries, when no kernel is running on the replica) and must call
// MarkMutated on any tensor whose Data they write directly.

// Weight returns the weight matrix of the referenced linear layer (out×in,
// PyTorch layout). It panics when the layer is absent from the family or the
// block index is out of range — weight-fault planning is programmer-controlled.
func (m *Model) Weight(ref LayerRef) *tensor.Tensor {
	if ref.Block < 0 || ref.Block >= len(m.blocks) {
		panic(fmt.Sprintf("model: Weight block %d out of range", ref.Block))
	}
	l := m.linearByRef(ref)
	if l.w == nil {
		panic(fmt.Sprintf("model: layer %v not present in family %v", ref, m.Cfg.Family))
	}
	return l.w
}

// Bias returns the bias vector of the referenced linear layer, or nil when
// the layer (or family) has none. The returned slice is the live parameter —
// callers must treat it as read-only.
func (m *Model) Bias(ref LayerRef) []float32 {
	if ref.Block < 0 || ref.Block >= len(m.blocks) {
		panic(fmt.Sprintf("model: Bias block %d out of range", ref.Block))
	}
	return m.linearByRef(ref).b
}

// State returns the active generation state (nil when none is attached).
// Fault injectors use it to reach the KV slabs of the generation currently
// executing on this model.
func (m *Model) State() *DecodeState { return m.st }

// Step returns the generation step the state last executed (0 = prefill).
func (st *DecodeState) Step() int { return st.step }

// PromptLen returns the prompt length of the live generation (0 when not
// started).
func (st *DecodeState) PromptLen() int { return st.promptLen }

// KVSlabs exposes one block's raw key/value slabs plus the number of
// positions filled. The layout is head-blocked: element (head h, position p,
// channel c) lives at (h*maxSeq+p)*headDim + c. Callers mutating the slabs
// must do so only while no forward pass is running on the owning model.
func (st *DecodeState) KVSlabs(block int) (k, v []float32, rows int) {
	c := &st.kv[block]
	return c.k, c.v, c.rows
}

// WeightChecksum returns a deterministic FNV-1a style hash over the raw bits
// of every streamed weight matrix. Replicas of the same (cfg, seed, dtype)
// model hash identically, so a build-time checksum compared against a later
// scrub detects any persistent weight corruption — a single flipped bit
// changes the sum.
func (m *Model) WeightChecksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sum := uint64(offset64)
	for _, w := range m.weightTensors() {
		for _, v := range w.Data {
			sum ^= uint64(math.Float32bits(v))
			sum *= prime64
		}
	}
	return sum
}

// WeightsFinite reports whether every streamed weight element is finite — the
// cheap first-line scrub for suspected persistent corruption (an exponent
// flip usually lands in Inf/NaN territory).
func (m *Model) WeightsFinite() bool {
	for _, w := range m.weightTensors() {
		for _, v := range w.Data {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return false
			}
		}
	}
	return true
}
