package model

import "ft2/internal/tensor"

// Packed-f16 weight storage. EnableF16Weights rounds every weight matrix
// through the binary16 grid — the same numerics.RoundF16 gate the
// activations pass through — and builds packed shadows that the MatMulT
// kernels stream at half the bytes on F16C hosts (tensor/pack.go). Decode
// of the shadow matches the rounded f32 master bit-for-bit, so fault-site
// addressing, profiled FT2 bounds, and every downstream consumer observe
// one set of weight values regardless of storage mode or host.

// weightsF16 on the Model records that EnableF16Weights ran (serve exposes
// it per replica; benches report it per row).

// EnableF16Weights switches the model's weight matrices (token embedding,
// learned positions, and every linear) to packed binary16 storage. Biases
// and norm parameters stay float32 — they are O(width) per layer, and the
// paper's bandwidth model only counts the streamed matrices.
//
// Rounding the weights changes the model: it is a different (quantized)
// parameterization, so the sane-stream-norm teacher calibration is re-run
// against the rounded weights and any existing generation state is reset.
// Call it right after New, before sessions, hooks, or snapshots exist;
// it panics if hooks are registered (the calibration probe would fire
// them). Idempotent.
func (m *Model) EnableF16Weights() {
	if m.weightsF16 {
		return
	}
	if len(m.hooks) > 0 {
		panic("model: EnableF16Weights after hooks were registered")
	}
	for _, w := range m.weightTensors() {
		w.PackF16()
	}
	m.weightsF16 = true
	m.calibrateStreamNorm()
}

// WeightsF16 reports whether EnableF16Weights has run.
func (m *Model) WeightsF16() bool { return m.weightsF16 }

// weightTensors enumerates every streamed weight matrix.
func (m *Model) weightTensors() []*tensor.Tensor {
	ws := []*tensor.Tensor{m.embed}
	if m.posEmb != nil {
		ws = append(ws, m.posEmb)
	}
	for _, blk := range m.blocks {
		for _, l := range []linear{
			blk.kProj, blk.qProj, blk.vProj, blk.outProj,
			blk.fc1, blk.fc2,
			blk.gateProj, blk.upProj, blk.downProj,
		} {
			if l.w != nil {
				ws = append(ws, l.w)
			}
		}
	}
	return ws
}

// calibrateStreamNorm measures the sane residual-stream norm on a fixed
// probe sequence and installs it as the teacher injection scale. The
// teacher must be disabled during the probe (streamNorm = 0 sends forward
// down the plain readout path); New calls this with streamNorm still zero,
// EnableF16Weights re-runs it against the rounded weights.
func (m *Model) calibrateStreamNorm() {
	const firstRealToken = 4
	m.streamNorm = 0
	probe := make([]int, 8)
	for i := range probe {
		probe[i] = firstRealToken + (i*37)%(m.Cfg.Vocab-firstRealToken)
	}
	m.Generate(probe, 4)
	m.streamNorm = m.st.lastStreamNorm
	m.resetState()
}
