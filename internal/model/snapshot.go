package model

import "fmt"

// Snapshot is a restorable copy of a model's mid-generation state: the
// rows-prefix of every block's KV slabs (stored compactly, head-blocked at
// the filled row count instead of MaxSeq), the step counter, and the
// last-token state. A snapshot captured between two decode steps lets any
// replica of the same (config, seed, dtype) model resume the generation at
// exactly that point — the checkpoint/fork primitive the campaign engine
// uses to skip the fault-free prefix of every trial.
//
// Snapshots are deep copies: they stay valid after the source model moves
// on, and one snapshot can be restored concurrently into many worker
// replicas (Restore only reads it).
type Snapshot struct {
	// identity of the capturing model, checked on Restore
	family                          Family
	blocks, hidden, maxSeq, headDim int

	nextStep       int // the generation step the restored model executes next
	lastTok        int // token to feed into that step
	promptLen      int
	rows           int // KV rows filled at capture (promptLen + nextStep - 1)
	lastStreamNorm float32
	k, v           [][]float32 // per block, rows×hidden, head-blocked at rows
}

// NextStep returns the generation step a restored model executes next; the
// snapshot captures the state after steps 0..NextStep-1 completed.
func (s *Snapshot) NextStep() int { return s.nextStep }

// LastToken returns the token DecodeStep must be fed at NextStep (Restore
// also returns it).
func (s *Snapshot) LastToken() int { return s.lastTok }

// Rows returns the number of KV rows the snapshot holds per block.
func (s *Snapshot) Rows() int { return s.rows }

// MemoryBytes returns the heap footprint of the snapshot's KV payload:
// Blocks × 2 × rows × Hidden float32s. The bookkeeping fields are a few
// dozen bytes on top.
func (s *Snapshot) MemoryBytes() int {
	return s.blocks * 2 * s.rows * s.hidden * 4
}

// Compatible reports whether the snapshot can be restored into a model of
// the given configuration, returning a descriptive error when it cannot.
// Boundary layers (the serving API) check this before calling Restore so an
// architecture mismatch surfaces as a returned error instead of Restore's
// programmer-error panic.
func (s *Snapshot) Compatible(cfg Config) error {
	if s.rows == 0 {
		return fmt.Errorf("model: empty snapshot (never captured)")
	}
	if s.family != cfg.Family || s.blocks != cfg.Blocks || s.hidden != cfg.Hidden || s.maxSeq != cfg.MaxSeq || s.headDim != cfg.HeadDim() {
		return fmt.Errorf("model: snapshot of a %s %d-block/%d-hidden/%d-seq model is incompatible with %s",
			s.family, s.blocks, s.hidden, s.maxSeq, cfg.Name)
	}
	return nil
}

// Checkpoint copies the model's generation state into the snapshot,
// reusing its buffers when they are large enough. It must be called between
// steps — after Prefill or a DecodeStep returned and before the next
// DecodeStep — and captures the state "before step NextStep".
func (m *Model) Checkpoint(into *Snapshot) {
	if !m.st.Started() {
		panic("model: Checkpoint before Prefill")
	}
	cfg := m.Cfg
	d := cfg.HeadDim()
	st := m.st
	rows := st.kv[0].rows
	into.family = cfg.Family
	into.blocks, into.hidden, into.maxSeq, into.headDim = cfg.Blocks, cfg.Hidden, cfg.MaxSeq, d
	into.nextStep = st.step + 1
	into.lastTok = st.lastTok
	into.promptLen = st.promptLen
	into.rows = rows
	into.lastStreamNorm = st.lastStreamNorm

	if len(into.k) != cfg.Blocks {
		into.k = make([][]float32, cfg.Blocks)
		into.v = make([][]float32, cfg.Blocks)
	}
	span := rows * cfg.Hidden
	for b := range st.kv {
		if cap(into.k[b]) < span {
			into.k[b] = make([]float32, span)
			into.v[b] = make([]float32, span)
		}
		dk, dv := into.k[b][:span], into.v[b][:span]
		into.k[b], into.v[b] = dk, dv
		// Compact each head's contiguous run: slab offset h*MaxSeq*d,
		// snapshot offset h*rows*d.
		for h := 0; h < cfg.Heads; h++ {
			copy(dk[h*rows*d:(h+1)*rows*d], st.kv[b].k[h*cfg.MaxSeq*d:])
			copy(dv[h*rows*d:(h+1)*rows*d], st.kv[b].v[h*cfg.MaxSeq*d:])
		}
	}
}

// Restore loads the snapshot into the model — a handful of copies into the
// preallocated KV slabs — and returns the token to feed the next DecodeStep.
// The model must have the same architecture the snapshot was captured from;
// registered hooks are left untouched. After Restore the model's state is
// bit-identical to the capturing model's at Checkpoint time, so a greedy
// decode from here reproduces the original continuation exactly.
func (m *Model) Restore(s *Snapshot) int {
	cfg := m.Cfg
	if s.rows == 0 {
		panic("model: Restore of an empty snapshot")
	}
	if s.family != cfg.Family || s.blocks != cfg.Blocks || s.hidden != cfg.Hidden || s.maxSeq != cfg.MaxSeq || s.headDim != cfg.HeadDim() {
		panic(fmt.Sprintf("model: snapshot of a %s %d×%d/%d-seq model restored into %s",
			s.family, s.blocks, s.hidden, s.maxSeq, cfg.Name))
	}
	m.resetState()
	st := m.st
	st.step = s.nextStep - 1
	st.lastTok = s.lastTok
	st.promptLen = s.promptLen
	st.lastStreamNorm = s.lastStreamNorm
	d := s.headDim
	for b := range st.kv {
		for h := 0; h < cfg.Heads; h++ {
			copy(st.kv[b].k[h*cfg.MaxSeq*d:], s.k[b][h*s.rows*d:(h+1)*s.rows*d])
			copy(st.kv[b].v[h*cfg.MaxSeq*d:], s.v[b][h*s.rows*d:(h+1)*s.rows*d])
		}
		st.kv[b].rows = s.rows
	}
	return s.lastTok
}
