package model

import "fmt"

// Snapshot is a restorable copy of a model's mid-generation state: the
// rows-prefix of every block's KV slabs (stored compactly, head-blocked at
// the filled row count instead of MaxSeq), the step counter, and the
// last-token state. A snapshot captured between two decode steps lets any
// replica of the same (config, seed, dtype) model resume the generation at
// exactly that point — the checkpoint/fork primitive the campaign engine
// uses to skip the fault-free prefix of every trial.
//
// Snapshots are deep copies: they stay valid after the source model moves
// on, and one snapshot can be restored concurrently into many worker
// replicas (Restore only reads it).
type Snapshot struct {
	// identity of the capturing model, checked on Restore
	family                          Family
	blocks, hidden, maxSeq, headDim int

	nextStep       int // the generation step the restored model executes next
	lastTok        int // token to feed into that step
	promptLen      int
	rows           int // KV rows usable from this snapshot (or view)
	lastStreamNorm float32
	k, v           [][]float32 // per block, stride×hidden, head-blocked at stride

	// stride is the per-head row pitch of the k/v buffers — the row count of
	// the snapshot they were captured into. A snapshot fresh from Checkpoint
	// has stride == rows; a Prefix view shares the parent's buffers with a
	// smaller rows, so readers must walk head h at offset h*stride*headDim
	// and take only the first rows rows of each run.
	stride int
}

// NextStep returns the generation step a restored model executes next; the
// snapshot captures the state after steps 0..NextStep-1 completed.
func (s *Snapshot) NextStep() int { return s.nextStep }

// LastToken returns the token DecodeStep must be fed at NextStep (Restore
// also returns it).
func (s *Snapshot) LastToken() int { return s.lastTok }

// Rows returns the number of KV rows the snapshot holds per block.
func (s *Snapshot) Rows() int { return s.rows }

// MemoryBytes returns the heap footprint of the snapshot's KV payload:
// Blocks × 2 × rows × Hidden float32s. The bookkeeping fields are a few
// dozen bytes on top.
func (s *Snapshot) MemoryBytes() int {
	return s.blocks * 2 * s.rows * s.hidden * 4
}

// Compatible reports whether the snapshot can be restored into a model of
// the given configuration, returning a descriptive error when it cannot.
// Boundary layers (the serving API) check this before calling Restore so an
// architecture mismatch surfaces as a returned error instead of Restore's
// programmer-error panic.
func (s *Snapshot) Compatible(cfg Config) error {
	if s.rows == 0 {
		return fmt.Errorf("model: empty snapshot (never captured)")
	}
	if s.family != cfg.Family || s.blocks != cfg.Blocks || s.hidden != cfg.Hidden || s.maxSeq != cfg.MaxSeq || s.headDim != cfg.HeadDim() {
		return fmt.Errorf("model: snapshot of a %s %d-block/%d-hidden/%d-seq model is incompatible with %s",
			s.family, s.blocks, s.hidden, s.maxSeq, cfg.Name)
	}
	return nil
}

// Checkpoint copies the model's generation state into the snapshot,
// reusing its buffers when they are large enough. It must be called between
// steps — after Prefill or a DecodeStep returned and before the next
// DecodeStep — and captures the state "before step NextStep".
func (m *Model) Checkpoint(into *Snapshot) {
	if !m.st.Started() {
		panic("model: Checkpoint before Prefill")
	}
	cfg := m.Cfg
	d := cfg.HeadDim()
	st := m.st
	rows := st.kv[0].rows
	into.family = cfg.Family
	into.blocks, into.hidden, into.maxSeq, into.headDim = cfg.Blocks, cfg.Hidden, cfg.MaxSeq, d
	into.nextStep = st.step + 1
	into.lastTok = st.lastTok
	into.promptLen = st.promptLen
	into.rows = rows
	into.stride = rows
	into.lastStreamNorm = st.lastStreamNorm

	if len(into.k) != cfg.Blocks {
		into.k = make([][]float32, cfg.Blocks)
		into.v = make([][]float32, cfg.Blocks)
	}
	span := rows * cfg.Hidden
	for b := range st.kv {
		if cap(into.k[b]) < span {
			into.k[b] = make([]float32, span)
			into.v[b] = make([]float32, span)
		}
		dk, dv := into.k[b][:span], into.v[b][:span]
		into.k[b], into.v[b] = dk, dv
		// Compact each head's contiguous run: slab offset h*MaxSeq*d,
		// snapshot offset h*rows*d.
		for h := 0; h < cfg.Heads; h++ {
			copy(dk[h*rows*d:(h+1)*rows*d], st.kv[b].k[h*cfg.MaxSeq*d:])
			copy(dv[h*rows*d:(h+1)*rows*d], st.kv[b].v[h*cfg.MaxSeq*d:])
		}
	}
}

// srcStride returns the per-head row pitch to read the k/v buffers at. Older
// snapshots (and zero values) predate the stride field; for them the buffers
// are packed at rows.
func (s *Snapshot) srcStride() int {
	if s.stride > 0 {
		return s.stride
	}
	return s.rows
}

// Prefix returns a read-only view of the snapshot truncated to its first rows
// KV rows — the forkable shared-prompt prefix the serving prefix cache hands
// to sessions. The view shares the parent's buffers (no copy; the parent must
// stay immutable, which cache snapshots are) and carries no resume point:
// NextStep/LastToken/promptLen are zero, so it can only seed a chunked
// prefill via Model.ResumePrefillPrefix, never a full Restore. rows may be 0
// (an empty view) up to the parent's Rows().
func (s *Snapshot) Prefix(rows int) *Snapshot {
	if rows < 0 || rows > s.rows {
		panic(fmt.Sprintf("model: Snapshot.Prefix(%d) outside [0,%d]", rows, s.rows))
	}
	return &Snapshot{
		family: s.family, blocks: s.blocks, hidden: s.hidden,
		maxSeq: s.maxSeq, headDim: s.headDim,
		rows:   rows,
		stride: s.srcStride(),
		k:      s.k, v: s.v,
	}
}

// Restore loads the snapshot into the model — a handful of copies into the
// preallocated KV slabs — and returns the token to feed the next DecodeStep.
// The model must have the same architecture the snapshot was captured from;
// registered hooks are left untouched. After Restore the model's state is
// bit-identical to the capturing model's at Checkpoint time, so a greedy
// decode from here reproduces the original continuation exactly.
func (m *Model) Restore(s *Snapshot) int {
	cfg := m.Cfg
	if s.rows == 0 {
		panic("model: Restore of an empty snapshot")
	}
	if s.nextStep == 0 {
		panic("model: Restore of a prefix view; use ResumePrefillPrefix")
	}
	if s.family != cfg.Family || s.blocks != cfg.Blocks || s.hidden != cfg.Hidden || s.maxSeq != cfg.MaxSeq || s.headDim != cfg.HeadDim() {
		panic(fmt.Sprintf("model: snapshot of a %s %d×%d/%d-seq model restored into %s",
			s.family, s.blocks, s.hidden, s.maxSeq, cfg.Name))
	}
	m.resetState()
	st := m.st
	st.step = s.nextStep - 1
	st.lastTok = s.lastTok
	st.promptLen = s.promptLen
	st.prefillPos = s.promptLen
	st.lastStreamNorm = s.lastStreamNorm
	d := s.headDim
	stride := s.srcStride()
	for b := range st.kv {
		for h := 0; h < cfg.Heads; h++ {
			copy(st.kv[b].k[h*cfg.MaxSeq*d:], s.k[b][h*stride*d:h*stride*d+s.rows*d])
			copy(st.kv[b].v[h*cfg.MaxSeq*d:], s.v[b][h*stride*d:h*stride*d+s.rows*d])
		}
		st.kv[b].rows = s.rows
	}
	return s.lastTok
}
