package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ft2/internal/numerics"
)

// Checkpoint format: a little-endian binary stream carrying the config
// dimensions needed for validation followed by every parameter tensor in a
// fixed order. Models are seeded and cheap to rebuild, but checkpoints make
// experiments portable across processes without replaying seeds (and they
// are how a real deployment would ship calibrated weights).
const (
	checkpointMagic   = 0x46543243 // "FT2C"
	checkpointVersion = 1
)

// Save writes the model's parameters to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []uint32{
		checkpointMagic, checkpointVersion,
		uint32(m.Cfg.Family), uint32(m.Cfg.Vocab), uint32(m.Cfg.Hidden),
		uint32(m.Cfg.Heads), uint32(m.Cfg.FFN), uint32(m.Cfg.Blocks),
		uint32(m.Cfg.MaxSeq),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(m.streamNorm)); err != nil {
		return err
	}
	for _, tok := range m.teacher {
		if err := binary.Write(bw, binary.LittleEndian, uint32(tok)); err != nil {
			return err
		}
	}
	write := func(data []float32) error {
		for _, v := range data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(m.embed.Data); err != nil {
		return err
	}
	if m.posEmb != nil {
		if err := write(m.posEmb.Data); err != nil {
			return err
		}
	}
	for _, blk := range m.blocks {
		for _, n := range []norm{blk.ln1, blk.ln2} {
			if err := write(n.gamma); err != nil {
				return err
			}
			if err := write(n.beta); err != nil {
				return err
			}
		}
		for _, kind := range m.Cfg.Family.LayerKinds() {
			l := m.linearByRef(LayerRef{Block: blockIndexOf(m, blk), Kind: kind})
			if err := write(l.w.Data); err != nil {
				return err
			}
			if err := write(l.b); err != nil {
				return err
			}
		}
	}
	if err := write(m.lnF.gamma); err != nil {
		return err
	}
	if err := write(m.lnF.beta); err != nil {
		return err
	}
	return bw.Flush()
}

func blockIndexOf(m *Model, blk *block) int {
	for i, b := range m.blocks {
		if b == blk {
			return i
		}
	}
	panic("model: block not found")
}

// Load restores a model from a checkpoint written by Save. cfg must match
// the checkpoint's dimensions (the name/metadata fields are the caller's).
func Load(cfg Config, dtype numerics.DType, r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var header [9]uint32
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("model: reading checkpoint header: %w", err)
		}
	}
	if header[0] != checkpointMagic {
		return nil, fmt.Errorf("model: not an FT2 checkpoint (magic %#x)", header[0])
	}
	if header[1] != checkpointVersion {
		return nil, fmt.Errorf("model: unsupported checkpoint version %d", header[1])
	}
	got := Config{
		Family: Family(header[2]), Vocab: int(header[3]), Hidden: int(header[4]),
		Heads: int(header[5]), FFN: int(header[6]), Blocks: int(header[7]),
		MaxSeq: int(header[8]),
	}
	if got.Family != cfg.Family || got.Vocab != cfg.Vocab || got.Hidden != cfg.Hidden ||
		got.Heads != cfg.Heads || got.FFN != cfg.FFN || got.Blocks != cfg.Blocks ||
		got.MaxSeq != cfg.MaxSeq {
		return nil, fmt.Errorf("model: checkpoint dimensions %+v do not match config %s", got, cfg.Name)
	}

	// Build an empty model with the right shapes (seed irrelevant — every
	// parameter is overwritten), then fill it from the stream.
	m, err := New(cfg, 0, dtype)
	if err != nil {
		return nil, err
	}
	var bits uint32
	if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
		return nil, err
	}
	m.streamNorm = math.Float32frombits(bits)
	for i := range m.teacher {
		var tok uint32
		if err := binary.Read(br, binary.LittleEndian, &tok); err != nil {
			return nil, err
		}
		if int(tok) >= cfg.Vocab {
			return nil, fmt.Errorf("model: teacher entry %d out of vocab", tok)
		}
		m.teacher[i] = int(tok)
	}
	read := func(data []float32) error {
		for i := range data {
			var b uint32
			if err := binary.Read(br, binary.LittleEndian, &b); err != nil {
				return err
			}
			data[i] = math.Float32frombits(b)
		}
		return nil
	}
	if err := read(m.embed.Data); err != nil {
		return nil, err
	}
	if m.posEmb != nil {
		if err := read(m.posEmb.Data); err != nil {
			return nil, err
		}
	}
	for bIdx, blk := range m.blocks {
		for _, n := range []norm{blk.ln1, blk.ln2} {
			if err := read(n.gamma); err != nil {
				return nil, err
			}
			if err := read(n.beta); err != nil {
				return nil, err
			}
		}
		for _, kind := range cfg.Family.LayerKinds() {
			l := m.linearByRef(LayerRef{Block: bIdx, Kind: kind})
			if err := read(l.w.Data); err != nil {
				return nil, err
			}
			if err := read(l.b); err != nil {
				return nil, err
			}
		}
	}
	if err := read(m.lnF.gamma); err != nil {
		return nil, err
	}
	if err := read(m.lnF.beta); err != nil {
		return nil, err
	}
	return m, nil
}

// ParamTensors returns the total number of parameter tensors (for tests and
// tooling that want to sanity-check checkpoints).
func (m *Model) ParamTensors() int {
	n := 1 // embed
	if m.posEmb != nil {
		n++
	}
	n += len(m.blocks) * (4 + len(m.Cfg.Family.LayerKinds())*2)
	n += 2 // final norm
	return n
}
