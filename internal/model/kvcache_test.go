package model

import (
	"math"
	"testing"

	"ft2/internal/numerics"
)

// TestKVCacheEquivalenceBitwise pins the contiguous-slab KV cache to the
// from-scratch reference: for every family, every decode step's logits must
// be bit-identical to a full-sequence forward pass over the tokens generated
// so far. Prefill and decode share the same kernels, so any divergence here
// means the cache layout or the incremental attention walk is wrong.
func TestKVCacheEquivalenceBitwise(t *testing.T) {
	const genTokens = 12
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			m := MustNew(cfg, 7, numerics.FP16)
			prompt := []int{3, 14, 15, 9, 2, 6}

			// Cached run: one prefill, then incremental single-token steps.
			got := m.Generate(prompt, genTokens)

			// Record the cached-path logits per step by replaying the same
			// generation with a hookless second pass of forward calls.
			m.resetState()
			positions := make([]int, len(prompt))
			for i := range positions {
				positions[i] = i
			}
			cachedLogits := make([][]float32, 0, genTokens)
			logits := m.forward(prompt, positions)
			cachedLogits = append(cachedLogits, append([]float32(nil), logits...))
			tok := argmax(logits)
			for s := 1; s < genTokens; s++ {
				m.st.step = s
				m.scratch.stepTok[0] = tok
				m.scratch.stepPos[0] = len(prompt) + s - 1
				logits = m.forward(m.scratch.stepTok[:], m.scratch.stepPos[:])
				cachedLogits = append(cachedLogits, append([]float32(nil), logits...))
				tok = argmax(logits)
			}

			// Reference: rebuild every step from scratch as one full-sequence
			// prefill over prompt + generated prefix, no cache reuse.
			seq := append([]int(nil), prompt...)
			for s := 0; s < genTokens; s++ {
				m.resetState()
				pos := make([]int, len(seq))
				for i := range pos {
					pos[i] = i
				}
				ref := m.forward(seq, pos)
				for j, rv := range ref {
					cv := cachedLogits[s][j]
					if math.Float32bits(rv) != math.Float32bits(cv) {
						t.Fatalf("%v step %d logit %d: cached %g (%#08x) != fresh %g (%#08x)",
							f, s, j, cv, math.Float32bits(cv), rv, math.Float32bits(rv))
					}
				}
				refTok := argmax(ref)
				if refTok != got[s] {
					t.Fatalf("%v step %d: cached token %d != fresh token %d", f, s, got[s], refTok)
				}
				seq = append(seq, refTok)
			}
		})
	}
}

// TestGenerateAllocFree asserts the decode hot path's core guarantee: after
// construction and a warm-up generation, further generations perform (almost)
// no heap allocation — only the returned token slice.
func TestGenerateAllocFree(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	m := MustNew(cfg, 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4}
	m.Generate(prompt, 8) // warm up: lazily built scratch, rope table, KV slabs

	avg := testing.AllocsPerRun(10, func() {
		m.Generate(prompt, 8)
	})
	// One allocation: the out []int result slice.
	if avg > 1 {
		t.Fatalf("Generate allocates %.1f objects/run after warm-up, want <= 1", avg)
	}
}
