package model

import (
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// The f16 storage contract: streaming the packed shadows must be invisible.
// Both sides of every comparison run over the same EnableF16Weights model
// (identically rounded weights); one side streams the packed f16 shadows
// (on F16C hosts), the other reads the f32 master copy. On hosts without
// the F16C tier both sides read f32 and the tests pin that the toggle is
// inert.

func withF16Streaming(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := tensor.SetF16Streaming(on)
	defer tensor.SetF16Streaming(prev)
	f()
}

// Serial decode, every family: f16-streamed generation must be bit-identical
// to f32 generation over the same rounded weights.
func TestF16StreamedDecodeBitIdenticalSerial(t *testing.T) {
	prompt := []int{4, 9, 14, 19, 24}
	const gen = 12
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)

			var f32Toks, f16Toks []int
			withF16Streaming(t, false, func() {
				m := MustNew(cfg, 42, numerics.FP16)
				m.EnableF16Weights()
				f32Toks = m.Generate(prompt, gen)
			})
			withF16Streaming(t, true, func() {
				m := MustNew(cfg, 42, numerics.FP16)
				m.EnableF16Weights()
				f16Toks = m.Generate(prompt, gen)
			})
			for i := range f32Toks {
				if f32Toks[i] != f16Toks[i] {
					t.Fatalf("token %d: f32 %v vs f16-streamed %v", i, f32Toks, f16Toks)
				}
			}
		})
	}
}

// Batched decode, every family: f16-streamed DecodeStepBatch must match the
// f32 serial oracle token-for-token.
func TestF16StreamedDecodeBitIdenticalBatched(t *testing.T) {
	const gen = 8
	prompts := [][]int{{5, 9, 13}, {7}, {4, 6, 8, 10, 12}}
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)

			want := make([][]int, len(prompts))
			withF16Streaming(t, false, func() {
				oracle := MustNew(cfg, 11, numerics.FP16)
				oracle.EnableF16Weights()
				for i, p := range prompts {
					want[i] = oracle.Generate(p, gen)
				}
			})

			withF16Streaming(t, true, func() {
				m := MustNew(cfg, 11, numerics.FP16)
				m.EnableF16Weights()
				items := make([]BatchItem, len(prompts))
				got := make([][]int, len(prompts))
				for i, p := range prompts {
					it, tok := prefillSession(m, p)
					items[i] = it
					got[i] = append(got[i], tok)
				}
				var toks []int
				for step := 1; step < gen; step++ {
					toks = m.DecodeStepBatch(items, toks[:0])
					for i, tok := range toks {
						got[i] = append(got[i], tok)
						items[i].Tok = tok
					}
				}
				for i := range prompts {
					for j := range got[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("session %d token %d: batched f16 %v vs serial f32 %v", i, j, got[i], want[i])
						}
					}
				}
			})
		})
	}
}

// EnableF16Weights must actually round the weights (a model with rounded
// weights can diverge from the unrounded one) and recalibrate the teacher
// stream norm against them.
func TestEnableF16WeightsRoundsAndRecalibrates(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 42, numerics.FP16)
	w := m.blocks[0].fc1.w
	before := w.Clone()
	m.EnableF16Weights()
	rounded := false
	for i, v := range w.Data {
		if numerics.RoundF16(before.Data[i]) != v {
			t.Fatalf("weight %d not on the binary16 grid after EnableF16Weights", i)
		}
		if before.Data[i] != v {
			rounded = true
		}
	}
	if !rounded {
		t.Error("no weight moved: rounding seems not to have happened")
	}
	if m.streamNorm <= 0 {
		t.Error("stream norm not recalibrated")
	}
	if !m.WeightsF16() {
		t.Error("WeightsF16 should report true")
	}
	m.EnableF16Weights() // idempotent
}

// Decode must stay allocation-free with f16 streaming enabled.
func TestF16DecodeNoAllocs(t *testing.T) {
	if !tensor.F16StreamingAvailable() {
		t.Skip("no F16C tier on this host")
	}
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 42, numerics.FP16)
	m.EnableF16Weights()
	tok := m.Prefill([]int{4, 9, 14})
	avg := testing.AllocsPerRun(50, func() { tok = m.DecodeStep(tok) })
	if avg != 0 {
		t.Errorf("f16 decode allocates %.1f allocs/op, want 0", avg)
	}
}
