package model

import (
	"fmt"
	"math"

	"ft2/internal/tensor"
)

// BatchItem is one session's slot in a DecodeStepBatch call: the session's
// generation state, the token to feed it, and the forward hooks (fault
// injectors, FT2 protection) to run against that session's rows only.
type BatchItem struct {
	State *DecodeState
	Tok   int
	// Hooks run per layer invocation against a one-row view of this
	// session's slice of the layer output, in order — exactly what a
	// model-level hook sees when the session decodes alone.
	Hooks []Hook
}

// DecodeStepBatch advances B independent sessions by one decode step each in
// a single fused forward pass: the sessions' hidden states are stacked into
// one B-row activation matrix, so every linear layer (attention projections,
// MLP, LM head) streams its weight matrix once per step instead of once per
// session. Attention stays per-session over each state's own KV slab.
//
// Bit identity: every linear output row is an independent Dot(x-row, w-row)
// with the same FP op order as the single-session kernel, normalization and
// readout are computed row-by-row, and attention reads only the session's
// own KV — so each session's decoded token (and its entire KV/state
// evolution) is bit-identical to what a serial DecodeStep sequence produces.
// The batch equivalence tests and `ft2serve -selftest` assert this.
//
// The results are appended to dst (one token per item, in order) and each
// item's State advances exactly as DecodeStep would advance it. Per-session
// hooks ride on BatchItem.Hooks; model-level hooks registered with
// RegisterHook cannot be attributed to a session and make the call panic.
// Duplicate States within one call are a caller bug (the same KV slab would
// be appended twice).
func (m *Model) DecodeStepBatch(items []BatchItem, dst []int) []int {
	if len(items) == 0 {
		panic("model: DecodeStepBatch with no items")
	}
	if len(m.hooks) != 0 {
		panic("model: DecodeStepBatch with model-level hooks registered; attach per-session hooks via BatchItem.Hooks")
	}
	m.ensureRuntime()
	for i := range items {
		st := items[i].State
		if !st.Started() {
			panic("model: DecodeStepBatch item before Prefill or Restore")
		}
		m.checkCompatible(st)
		st.step++
		if pos := st.pos(); pos >= m.Cfg.MaxSeq {
			panic(fmt.Sprintf("model: decode position %d exceeds max seq %d", pos, m.Cfg.MaxSeq))
		}
	}
	return m.decodeBatch(items, dst)
}

// decodeBatch is the fused forward pass over the stacked batch rows; items'
// step counters are already advanced.
func (m *Model) decodeBatch(items []BatchItem, dst []int) []int {
	cfg := m.Cfg
	sc := m.scratch
	b := len(items)

	x := sc.x.Reuse(b, cfg.Hidden)
	for r := range items {
		it := &items[r]
		if it.Tok < 0 || it.Tok >= cfg.Vocab {
			panic(fmt.Sprintf("model: token %d out of vocab %d", it.Tok, cfg.Vocab))
		}
		copy(x.Row(r), m.embed.Row(it.Tok))
		if cfg.Family == FamilyOPT {
			row := x.Row(r)
			for c, pv := range m.posEmb.Row(it.State.pos()) {
				row[c] += pv
			}
		}
	}
	x.Quantize(m.DType)

	for bIdx, blk := range m.blocks {
		switch cfg.Family {
		case FamilyGPTJ:
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attentionBatch(bIdx, blk, normed, items)
			ffn := m.mlpBatch(bIdx, blk, normed, items)
			tensor.AddInPlace(x, attn)
			tensor.AddInPlace(x, ffn)
		default:
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attentionBatch(bIdx, blk, normed, items)
			tensor.AddInPlace(x, attn)
			normed2 := m.applyNormInto(sc.normed2, blk.ln2, x)
			ffn := m.mlpBatch(bIdx, blk, normed2, items)
			tensor.AddInPlace(x, ffn)
		}
		x.Quantize(m.DType)
	}

	// Per-session readout: every batch row is that session's final position.
	last := sc.lastB.Reuse(b, cfg.Hidden)
	copy(last.Data, x.Data)
	for r := range items {
		it := &items[r]
		row := last.Row(r)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		it.State.lastStreamNorm = float32(math.Sqrt(ss))

		if cfg.TeacherWeight > 0 && m.streamNorm > 0 {
			emb := m.embed.Row(m.teacher[it.Tok])
			var tn float64
			for _, v := range emb {
				tn += float64(v) * float64(v)
			}
			if tn > 0 {
				scale := cfg.TeacherWeight * m.streamNorm / float32(math.Sqrt(tn))
				for i, v := range emb {
					row[i] += scale * v
				}
			}
		}
	}

	final := m.applyNormInto(sc.finalB, m.lnF, last)
	logits := tensor.MatMulTInto(sc.logitsB.Reuse(b, cfg.Vocab), final, m.embed)
	logits.Scale(cfg.LogitScale)
	for r := range items {
		tok := argmax(logits.Row(r))
		items[r].State.lastTok = tok
		dst = append(dst, tok)
	}
	return dst
}

// applyLinearBatch is applyLinearInto with per-session hooks.
func (m *Model) applyLinearBatch(dst *tensor.Tensor, ref LayerRef, l linear, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	dst.Reuse(x.Rows, l.w.Rows)
	tensor.LinearInto(dst, x, l.w, l.b)
	dst.Quantize(m.DType)
	m.runBatchHooks(ref, SiteLinearOut, x, dst, items)
	return dst
}

// attentionBatch runs one decode row of causal self-attention per session:
// shared batched K/Q/V projections, then per-session rope, KV append, and
// per-head attention over that session's own slab. Row r of the result is
// bit-identical to what the single-session attention produces for that
// session's step.
func (m *Model) attentionBatch(bIdx int, blk *block, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	cfg := m.Cfg
	d := cfg.HeadDim()
	maxSeq := cfg.MaxSeq
	sc := m.scratch

	k := m.applyLinearBatch(sc.k, LayerRef{bIdx, KProj}, blk.kProj, x, items)
	q := m.applyLinearBatch(sc.q, LayerRef{bIdx, QProj}, blk.qProj, x, items)
	v := m.applyLinearBatch(sc.v, LayerRef{bIdx, VProj}, blk.vProj, x, items)

	if cfg.Family != FamilyOPT {
		for r := range items {
			pos := items[r].State.pos()
			qrow, krow := q.Row(r), k.Row(r)
			for h := 0; h < cfg.Heads; h++ {
				m.rope.Apply(qrow[h*d:(h+1)*d], pos)
				m.rope.Apply(krow[h*d:(h+1)*d], pos)
			}
		}
	}

	// Append each session's new K/V row to its own head-blocked slabs.
	for r := range items {
		cache := &items[r].State.kv[bIdx]
		base := cache.rows
		krow, vrow := k.Row(r), v.Row(r)
		for h := 0; h < cfg.Heads; h++ {
			off := (h*maxSeq + base) * d
			copy(cache.k[off:off+d], krow[h*d:(h+1)*d])
			copy(cache.v[off:off+d], vrow[h*d:(h+1)*d])
		}
		cache.rows++
	}

	ctxOut := sc.ctx.Reuse(x.Rows, cfg.Hidden)
	ctxOut.Zero()
	scale := float32(1 / math.Sqrt(float64(d)))
	for r := range items {
		cache := &items[r].State.kv[bIdx]
		limit := cache.rows // causal: everything up to and including own row
		scores := sc.scores[:limit]
		for h := 0; h < cfg.Heads; h++ {
			lo := h * d
			kh := cache.k[h*maxSeq*d:]
			vh := cache.v[h*maxSeq*d:]
			qrow := q.Row(r)[lo : lo+d]
			maxv := float32(math.Inf(-1))
			for j := 0; j < limit; j++ {
				s := tensor.Dot(qrow, kh[j*d:(j+1)*d]) * scale
				scores[j] = s
				if !math.IsNaN(float64(s)) && s > maxv {
					maxv = s
				}
			}
			var sum float32
			for j := 0; j < limit; j++ {
				e := float32(math.Exp(float64(scores[j] - maxv)))
				scores[j] = e
				sum += e
			}
			orow := ctxOut.Row(r)[lo : lo+d]
			if sum > 0 {
				inv := 1 / sum
				for j := 0; j < limit; j++ {
					wgt := scores[j] * inv
					if wgt == 0 {
						continue
					}
					vrow := vh[j*d : (j+1)*d]
					for t := 0; t < d; t++ {
						orow[t] += wgt * vrow[t]
					}
				}
			}
		}
	}
	ctxOut.Quantize(m.DType)
	return m.applyLinearBatch(sc.attn, LayerRef{bIdx, OutProj}, blk.outProj, ctxOut, items)
}

// mlpBatch is the family-specific MLP over the stacked batch rows with
// per-session hooks.
func (m *Model) mlpBatch(bIdx int, blk *block, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	sc := m.scratch
	switch m.Cfg.Family {
	case FamilyOPT, FamilyGPTJ:
		h := m.applyLinearBatch(sc.ffnA, LayerRef{bIdx, FC1}, blk.fc1, x, items)
		m.Cfg.Activation.Apply(h)
		h.Quantize(m.DType)
		m.runBatchHooks(LayerRef{bIdx, FC1}, SiteActivationOut, nil, h, items)
		return m.applyLinearBatch(sc.ffnOut, LayerRef{bIdx, FC2}, blk.fc2, h, items)
	case FamilyLlama:
		gate := m.applyLinearBatch(sc.ffnA, LayerRef{bIdx, GateProj}, blk.gateProj, x, items)
		up := m.applyLinearBatch(sc.ffnB, LayerRef{bIdx, UpProj}, blk.upProj, x, items)
		m.Cfg.Activation.Apply(gate)
		tensor.MulInPlace(gate, up)
		gate.Quantize(m.DType)
		m.runBatchHooks(LayerRef{bIdx, GateProj}, SiteActivationOut, nil, gate, items)
		return m.applyLinearBatch(sc.ffnOut, LayerRef{bIdx, DownProj}, blk.downProj, gate, items)
	default:
		panic("model: unknown family")
	}
}
