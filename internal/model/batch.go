package model

import (
	"fmt"
	"math"

	"ft2/internal/tensor"
)

// BatchItem is one session's slot in a ForwardBatch call. An item
// contributes a *row range* to the fused activation matrix:
//
//   - a decoding session contributes 1 row — the token Tok fed at its next
//     sequence position (Prefill nil);
//   - a session mid-prefill contributes len(Prefill) rows — the next
//     consecutive chunk of its prompt, starting at State.PrefillPos().
//
// Hooks run per layer invocation against a view of this item's row range of
// the layer output, in order — exactly the tensor shape the session would
// see decoding alone (1 row) or prefilling alone (C rows).
type BatchItem struct {
	State *DecodeState
	Tok   int
	// Prefill, when non-empty, marks this item as a prefill range: the
	// consecutive prompt tokens starting at State.PrefillPos(). The item's
	// State must be mid-prefill (BeginPrefill done, prompt rows left) and
	// the chunk must not overrun the prompt.
	Prefill []int
	Hooks   []Hook
}

// prefilling reports whether the item carries a prefill row range.
func (it *BatchItem) prefilling() bool { return len(it.Prefill) > 0 }

// rows is the number of fused activation rows the item contributes.
func (it *BatchItem) rows() int {
	if it.prefilling() {
		return len(it.Prefill)
	}
	return 1
}

// ForwardBatch advances B independent sessions — any mix of mid-prefill and
// decoding — in a single fused forward pass: the sessions' rows are stacked
// into one m=ΣC activation matrix, so every linear layer (attention
// projections, MLP, LM head) streams its weight matrix exactly once per
// call regardless of phase. Attention stays per-session over each state's
// own KV slab, with causal masking inside multi-row prefill ranges, and
// fans the (session × head) work units out over the resident tensor worker
// pool when the kernel cost model predicts a win.
//
// One result is appended to dst per item, in order: the decoded token for a
// decode row, the first token for a prefill range that completes its
// prompt, and -1 for a mid-prefill range (more chunks to come). Each item's
// State advances exactly as DecodeStep / PrefillChunk would advance it.
//
// Bit identity: every linear output row is an independent Dot(x-row, w-row)
// with the same FP op order as the single-session kernel, normalization and
// readout are computed row-by-row, and attention reads only the session's
// own KV with the same per-row causal limit — so each session's tokens (and
// its entire KV/state evolution) are bit-identical to a serial
// Prefill/DecodeStep sequence no matter how its rows were co-batched. The
// parallel attention fan-out assigns every (session, head) unit its own
// scores scratch and a disjoint output slice, so worker count and
// scheduling order cannot change a bit. The mixed-phase batch equivalence
// tests and `ft2serve -selftest` assert this.
//
// Per-session hooks ride on BatchItem.Hooks; model-level hooks registered
// with RegisterHook cannot be attributed to a session and make the call
// panic. Duplicate States within one call are a caller bug (the same KV
// slab would be appended twice).
func (m *Model) ForwardBatch(items []BatchItem, dst []int) []int {
	if len(items) == 0 {
		panic("model: ForwardBatch with no items")
	}
	if len(m.hooks) != 0 {
		panic("model: ForwardBatch with model-level hooks registered; attach per-session hooks via BatchItem.Hooks")
	}
	m.ensureRuntime()
	for i := range items {
		it := &items[i]
		st := it.State
		m.checkCompatible(st)
		if it.prefilling() {
			if !st.Prefilling() {
				panic("model: ForwardBatch prefill item without an open prefill")
			}
			if st.prefillPos+len(it.Prefill) > st.promptLen {
				panic(fmt.Sprintf("model: prefill chunk overruns prompt (%d+%d > %d)",
					st.prefillPos, len(it.Prefill), st.promptLen))
			}
			continue
		}
		if !st.Started() {
			panic("model: ForwardBatch decode item before Prefill or Restore")
		}
		st.step++
		if pos := st.pos(); pos >= m.Cfg.MaxSeq {
			panic(fmt.Sprintf("model: decode position %d exceeds max seq %d", pos, m.Cfg.MaxSeq))
		}
	}
	return m.forwardBatch(items, dst)
}

// DecodeStepBatch advances B decoding sessions by one step each in a single
// fused forward pass — ForwardBatch restricted to single-row decode items.
// Kept as the stable decode-only entry point; prefill ranges must go
// through ForwardBatch.
func (m *Model) DecodeStepBatch(items []BatchItem, dst []int) []int {
	for i := range items {
		if items[i].prefilling() {
			panic("model: DecodeStepBatch with a prefill item; use ForwardBatch")
		}
	}
	return m.ForwardBatch(items, dst)
}

// forwardBatch is the fused forward pass over the stacked row ranges;
// decode items' step counters are already advanced, prefill cursors are
// advanced here after their rows are computed.
func (m *Model) forwardBatch(items []BatchItem, dst []int) []int {
	cfg := m.Cfg
	sc := m.scratch

	// Row-range layout: itemLo[i] is item i's first fused row, itemPos[i]
	// the absolute sequence position of that row.
	sc.itemLo = sc.itemLo[:0]
	sc.itemRows = sc.itemRows[:0]
	sc.itemPos = sc.itemPos[:0]
	rows := 0
	for i := range items {
		it := &items[i]
		r := it.rows()
		pos := it.State.pos()
		if it.prefilling() {
			pos = it.State.prefillPos
		}
		sc.itemLo = append(sc.itemLo, rows)
		sc.itemRows = append(sc.itemRows, r)
		sc.itemPos = append(sc.itemPos, pos)
		rows += r
	}

	x := sc.x.Reuse(rows, cfg.Hidden)
	for i := range items {
		it := &items[i]
		lo, pos := sc.itemLo[i], sc.itemPos[i]
		if it.prefilling() {
			for j, tok := range it.Prefill {
				m.embedRow(x.Row(lo+j), tok, pos+j)
			}
		} else {
			m.embedRow(x.Row(lo), it.Tok, pos)
		}
	}
	x.Quantize(m.DType)

	for bIdx, blk := range m.blocks {
		switch cfg.Family {
		case FamilyGPTJ:
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attentionBatch(bIdx, blk, normed, items)
			ffn := m.mlpBatch(bIdx, blk, normed, items)
			tensor.AddInPlace(x, attn)
			tensor.AddInPlace(x, ffn)
		default:
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attentionBatch(bIdx, blk, normed, items)
			tensor.AddInPlace(x, attn)
			normed2 := m.applyNormInto(sc.normed2, blk.ln2, x)
			ffn := m.mlpBatch(bIdx, blk, normed2, items)
			tensor.AddInPlace(x, ffn)
		}
		x.Quantize(m.DType)
	}

	// Advance prefill cursors now that their KV rows exist, and collect the
	// items that emit a token this call: every decode item, plus prefill
	// ranges whose chunk completed the prompt (their final row is the
	// readout row — exactly the row a single-pass Prefill would read out).
	sc.emitIdx = sc.emitIdx[:0]
	for i := range items {
		it := &items[i]
		if it.prefilling() {
			it.State.prefillPos += len(it.Prefill)
			if it.State.prefillPos < it.State.promptLen {
				continue
			}
		}
		sc.emitIdx = append(sc.emitIdx, i)
	}
	if len(sc.emitIdx) == 0 {
		for range items {
			dst = append(dst, -1)
		}
		return dst
	}

	// Per-session readout over the emitting rows only.
	last := sc.lastB.Reuse(len(sc.emitIdx), cfg.Hidden)
	for e, i := range sc.emitIdx {
		it := &items[i]
		row := last.Row(e)
		copy(row, x.Row(sc.itemLo[i]+sc.itemRows[i]-1))
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		it.State.lastStreamNorm = float32(math.Sqrt(ss))

		if cfg.TeacherWeight > 0 && m.streamNorm > 0 {
			emb := m.embed.Row(m.teacher[it.lastFedTok()])
			var tn float64
			for _, v := range emb {
				tn += float64(v) * float64(v)
			}
			if tn > 0 {
				scale := cfg.TeacherWeight * m.streamNorm / float32(math.Sqrt(tn))
				for c, v := range emb {
					row[c] += scale * v
				}
			}
		}
	}

	final := m.applyNormInto(sc.finalB, m.lnF, last)
	logits := tensor.MatMulTInto(sc.logitsB.Reuse(len(sc.emitIdx), cfg.Vocab), final, m.embed)
	logits.Scale(cfg.LogitScale)
	e := 0
	for i := range items {
		if e < len(sc.emitIdx) && sc.emitIdx[e] == i {
			tok := argmax(logits.Row(e))
			items[i].State.lastTok = tok
			dst = append(dst, tok)
			e++
			continue
		}
		dst = append(dst, -1)
	}
	return dst
}

// lastFedTok is the token occupying the item's final row — it selects the
// teacher prior at readout, matching what the serial path feeds.
func (it *BatchItem) lastFedTok() int {
	if it.prefilling() {
		return it.Prefill[len(it.Prefill)-1]
	}
	return it.Tok
}

// embedRow writes one embedding row (plus the OPT positional embedding)
// after a vocab check — the shared row-assembly step of both phases.
func (m *Model) embedRow(row []float32, tok, pos int) {
	cfg := m.Cfg
	if tok < 0 || tok >= cfg.Vocab {
		panic(fmt.Sprintf("model: token %d out of vocab %d", tok, cfg.Vocab))
	}
	copy(row, m.embed.Row(tok))
	if cfg.Family == FamilyOPT {
		if pos >= cfg.MaxSeq {
			panic(fmt.Sprintf("model: position %d exceeds max seq %d", pos, cfg.MaxSeq))
		}
		for c, pv := range m.posEmb.Row(pos) {
			row[c] += pv
		}
	}
}

// applyLinearBatch is applyLinearInto with per-item range hooks.
func (m *Model) applyLinearBatch(dst *tensor.Tensor, ref LayerRef, l linear, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	dst.Reuse(x.Rows, l.w.Rows)
	tensor.LinearInto(dst, x, l.w, l.b)
	dst.Quantize(m.DType)
	m.runBatchHooks(ref, SiteLinearOut, x, dst, items)
	return dst
}

// attentionBatch runs each item's row range of causal self-attention:
// shared batched K/Q/V projections, then per-item rope and KV append, and
// per-(item × head) scores/softmax/context over that session's own slab —
// fanned out over the resident worker pool when the cost model predicts a
// win, inline otherwise; the results are bit-identical either way because
// every work unit owns its scores scratch and a disjoint output slice. Each
// row of the result is bit-identical to what the single-session attention
// produces for that session's position.
func (m *Model) attentionBatch(bIdx int, blk *block, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	cfg := m.Cfg
	d := cfg.HeadDim()
	maxSeq := cfg.MaxSeq
	sc := m.scratch

	k := m.applyLinearBatch(sc.k, LayerRef{bIdx, KProj}, blk.kProj, x, items)
	q := m.applyLinearBatch(sc.q, LayerRef{bIdx, QProj}, blk.qProj, x, items)
	v := m.applyLinearBatch(sc.v, LayerRef{bIdx, VProj}, blk.vProj, x, items)

	if cfg.Family != FamilyOPT {
		for i := range items {
			lo, rows, pos := sc.itemLo[i], sc.itemRows[i], sc.itemPos[i]
			for r := 0; r < rows; r++ {
				qrow, krow := q.Row(lo+r), k.Row(lo+r)
				for h := 0; h < cfg.Heads; h++ {
					m.rope.Apply(qrow[h*d:(h+1)*d], pos+r)
					m.rope.Apply(krow[h*d:(h+1)*d], pos+r)
				}
			}
		}
	}

	// Append each item's new K/V rows to its own head-blocked slabs,
	// recording the pre-append row count: row r of the range attends
	// causally to positions [0, base+r].  madds estimates the score+context
	// work for the fan-out decision.
	sc.itemBase = sc.itemBase[:0]
	madds := 0
	for i := range items {
		cache := &items[i].State.kv[bIdx]
		base := cache.rows
		rows := sc.itemRows[i]
		lo := sc.itemLo[i]
		for r := 0; r < rows; r++ {
			krow, vrow := k.Row(lo+r), v.Row(lo+r)
			for h := 0; h < cfg.Heads; h++ {
				off := (h*maxSeq + base + r) * d
				copy(cache.k[off:off+d], krow[h*d:(h+1)*d])
				copy(cache.v[off:off+d], vrow[h*d:(h+1)*d])
			}
		}
		cache.rows += rows
		sc.itemBase = append(sc.itemBase, base)
		madds += 2 * d * cfg.Heads * (rows*base + rows*(rows+1)/2)
	}

	ctxOut := sc.ctx.Reuse(x.Rows, cfg.Hidden)
	ctxOut.Zero()

	units := len(items) * cfg.Heads
	if need := units * maxSeq; cap(sc.attnScores) < need {
		sc.attnScores = make([]float32, need)
	}
	sc.attnItems, sc.attnQ, sc.attnCtx, sc.attnBlk = items, q, ctxOut, bIdx
	if sc.attnFn == nil {
		sc.attnFn = m.attnUnits
	}
	cm := tensor.CurrentCostModel()
	helpers := cm.AttnHelpers(units, madds)
	tensor.ParallelFor(units, 1, helpers, sc.attnFn)
	sc.attnItems = nil

	ctxOut.Quantize(m.DType)
	return m.applyLinearBatch(sc.attn, LayerRef{bIdx, OutProj}, blk.outProj, ctxOut, items)
}

// attnUnits executes the attention work units [lo, hi) of the current
// fan-out: unit u = item u/Heads, head u%Heads. Each unit reads its
// session's own K/V slab and q rows, scores into its private slice of the
// per-unit scratch slab, and writes only its item's rows of its head's
// output columns — disjoint from every other unit, so any parallel
// interleaving produces identical bits.
func (m *Model) attnUnits(lo, hi int) {
	cfg := m.Cfg
	sc := m.scratch
	d := cfg.HeadDim()
	maxSeq := cfg.MaxSeq
	scale := float32(1 / math.Sqrt(float64(d)))
	for u := lo; u < hi; u++ {
		i, h := u/cfg.Heads, u%cfg.Heads
		it := &sc.attnItems[i]
		cache := &it.State.kv[sc.attnBlk]
		base := sc.itemBase[i]
		rows := sc.itemRows[i]
		rowLo := sc.itemLo[i]
		hd := h * d
		kh := cache.k[h*maxSeq*d:]
		vh := cache.v[h*maxSeq*d:]
		scores := sc.attnScores[u*maxSeq : (u+1)*maxSeq]
		for r := 0; r < rows; r++ {
			qrow := sc.attnQ.Row(rowLo + r)[hd : hd+d]
			limit := base + r + 1 // causal: attend to positions <= own
			tensor.DotStride(scores, qrow, kh, d, limit, scale)
			maxv := float32(math.Inf(-1))
			for j := 0; j < limit; j++ {
				if s := scores[j]; !math.IsNaN(float64(s)) && s > maxv {
					maxv = s
				}
			}
			var sum float32
			for j := 0; j < limit; j++ {
				e := float32(math.Exp(float64(scores[j] - maxv)))
				scores[j] = e
				sum += e
			}
			orow := sc.attnCtx.Row(rowLo + r)[hd : hd+d]
			if sum > 0 {
				inv := 1 / sum
				tensor.ScaleSlice(scores[:limit], inv)
				tensor.AxpyStride(orow, vh, scores, d, limit)
			}
		}
	}
}

// mlpBatch is the family-specific MLP over the stacked batch rows with
// per-item range hooks.
func (m *Model) mlpBatch(bIdx int, blk *block, x *tensor.Tensor, items []BatchItem) *tensor.Tensor {
	sc := m.scratch
	switch m.Cfg.Family {
	case FamilyOPT, FamilyGPTJ:
		h := m.applyLinearBatch(sc.ffnA, LayerRef{bIdx, FC1}, blk.fc1, x, items)
		m.Cfg.Activation.Apply(h)
		h.Quantize(m.DType)
		m.runBatchHooks(LayerRef{bIdx, FC1}, SiteActivationOut, nil, h, items)
		return m.applyLinearBatch(sc.ffnOut, LayerRef{bIdx, FC2}, blk.fc2, h, items)
	case FamilyLlama:
		gate := m.applyLinearBatch(sc.ffnA, LayerRef{bIdx, GateProj}, blk.gateProj, x, items)
		up := m.applyLinearBatch(sc.ffnB, LayerRef{bIdx, UpProj}, blk.upProj, x, items)
		m.Cfg.Activation.Apply(gate)
		tensor.MulInPlace(gate, up)
		gate.Quantize(m.DType)
		m.runBatchHooks(LayerRef{bIdx, GateProj}, SiteActivationOut, nil, gate, items)
		return m.applyLinearBatch(sc.ffnOut, LayerRef{bIdx, DownProj}, blk.downProj, gate, items)
	default:
		panic("model: unknown family")
	}
}
