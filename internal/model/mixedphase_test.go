package model_test

// The mixed-phase fused-forward battery: ForwardBatch calls that co-batch
// mid-prefill chunk ranges with decoding rows — protected sessions carrying
// per-range FT2 hooks, a chaos-corrupted neighbor in the same batch — must
// reproduce each session's serial oracle bit-for-bit, at any attention
// worker count. The package is model_test (not model) so real core.FT2
// controllers can ride on the items like the serving scheduler's do.

import (
	"reflect"
	"runtime"
	"testing"

	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func mixedCfg(f model.Family) model.Config {
	c := model.Config{
		Name: "mixed-test", Family: f,
		Vocab: 64, Hidden: 32, Heads: 4, FFN: 64, Blocks: 2, MaxSeq: 64,
		LogitScale: 4,
	}
	switch f {
	case model.FamilyOPT:
		c.Activation = tensor.ActReLU
		c.AttnBias = true
	case model.FamilyGPTJ:
		c.Activation = tensor.ActGELU
	case model.FamilyLlama:
		c.Activation = tensor.ActSiLU
	}
	return c
}

// mixedSession is one lane of the co-batched schedule.
type mixedSession struct {
	prompt  []int
	st      *model.DecodeState
	ft      *core.FT2 // non-nil: protected (FT2 hook rides on every range)
	corrupt bool      // chaos neighbor: a hook flips its FC1 rows
	chunk   int       // >0: enter the batch mid-prefill in chunks this size
	pos     int       // prefill cursor (tokens already fed)
	lastTok int
	got     []int
	fired   int // corruption-hook invocations
}

// runMixedPhase drives the sessions over one shared replica until every
// session has emitted gen tokens, fusing each step's decode rows and
// prefill chunks into a single ForwardBatch call.
func runMixedPhase(t *testing.T, m *model.Model, sessions []*mixedSession, gen int) {
	t.Helper()
	var items []model.BatchItem
	var idx []int
	var toks []int
	for steps := 0; ; steps++ {
		if steps > 10*gen {
			t.Fatal("mixed-phase schedule did not converge")
		}
		items, idx = items[:0], idx[:0]
		for i, s := range sessions {
			if len(s.got) >= gen {
				continue
			}
			it := model.BatchItem{State: s.st}
			if s.pos < len(s.prompt) {
				n := len(s.prompt) - s.pos
				if s.chunk > 0 && n > s.chunk {
					n = s.chunk
				}
				it.Prefill = s.prompt[s.pos : s.pos+n]
			} else {
				it.Tok = s.lastTok
			}
			if s.ft != nil {
				it.Hooks = append(it.Hooks, s.ft.Hook())
			}
			if s.corrupt {
				sess := s
				it.Hooks = append(it.Hooks, func(ctx model.HookCtx, out *tensor.Tensor) {
					// FC1 on OPT/GPT-J, the gate projection on Llama.
					if (ctx.Layer.Kind == model.FC1 || ctx.Layer.Kind == model.GateProj) && ctx.Site == model.SiteLinearOut {
						sess.fired++
						out.Data[0] = 39 // corrupt this session's range only
					}
				})
			}
			items = append(items, it)
			idx = append(idx, i)
		}
		if len(items) == 0 {
			return
		}
		toks = m.ForwardBatch(items, toks[:0])
		for n, i := range idx {
			s := sessions[i]
			if chunk := len(items[n].Prefill); chunk > 0 {
				s.pos += chunk
			}
			if tok := toks[n]; tok >= 0 {
				s.lastTok = tok
				s.got = append(s.got, tok)
			}
		}
	}
}

// openChunkedPrefill opens a session that will feed its prompt through
// fused prefill ranges instead of a serial Prefill call.
func openChunkedPrefill(m *model.Model, s *mixedSession) {
	s.st = m.NewDecodeState()
	prev := m.SwapState(s.st)
	m.BeginPrefill(len(s.prompt))
	m.SwapState(prev)
}

// openDecoding runs the serial prefill (protected when s.ft is set, exactly
// like a scheduler slot would) so the session enters the batch decoding.
func openDecoding(m *model.Model, s *mixedSession) {
	s.st = m.NewDecodeState()
	prev := m.SwapState(s.st)
	if s.ft != nil {
		s.ft.Install()
	}
	tok := m.Prefill(s.prompt)
	if s.ft != nil {
		m.ClearHooks()
	}
	m.SwapState(prev)
	s.pos = len(s.prompt)
	s.lastTok = tok
	s.got = append(s.got, tok)
}

// TestForwardBatchMixedPhaseBitwise is the battery: for every family, a
// fused schedule of two decoding sessions (one FT2-protected, one clean), a
// chaos-corrupted neighbor, and a session prefilling its prompt in chunks
// co-batched with the decode rows — every uncorrupted session must emit
// exactly the tokens a fresh serial replica produces, and the corrupted
// neighbor must not leak into any of them. The same schedule repeats with
// the attention fan-out forced onto pool workers (SetNumCPUOverride +
// GOMAXPROCS), which must not change a bit; run it under -race to check the
// per-(session×head) disjointness claim.
func TestForwardBatchMixedPhaseBitwise(t *testing.T) {
	const gen = 8
	for _, fam := range []model.Family{model.FamilyOPT, model.FamilyGPTJ, model.FamilyLlama} {
		for _, workers := range []int{1, 4} {
			name := fam.String() + "/serial-attn"
			if workers > 1 {
				name = fam.String() + "/fanout-attn"
			}
			t.Run(name, func(t *testing.T) {
				if workers > 1 {
					prevP := runtime.GOMAXPROCS(workers)
					prevC := tensor.SetNumCPUOverride(workers)
					defer func() {
						runtime.GOMAXPROCS(prevP)
						tensor.SetNumCPUOverride(prevC)
					}()
				}
				cfg := mixedCfg(fam)
				m := model.MustNew(cfg, 17, numerics.FP16)

				sessions := []*mixedSession{
					{prompt: []int{5, 9, 13}},                             // protected decoder
					{prompt: []int{7, 11}},                                // clean decoder
					{prompt: []int{4, 6, 8, 10, 12, 14, 16, 18, 3, 2, 1}}, // chunked prefill, co-batched
					{prompt: []int{20, 21, 22, 23, 24}, corrupt: true},    // chaos neighbor
				}
				sessions[0].ft = core.Attach(m, core.Defaults())
				sessions[2].chunk = 3

				// Serial oracles on fresh replicas: protected sessions
				// against a protected serial Generate, clean ones against
				// the bare model.
				want := make([][]int, len(sessions))
				for i, s := range sessions {
					if s.corrupt {
						continue
					}
					om := model.MustNew(cfg, 17, numerics.FP16)
					if i == 0 {
						want[i] = core.Attach(om, core.Defaults()).Generate(s.prompt, gen)
					} else {
						want[i] = om.Generate(s.prompt, gen)
					}
				}

				openDecoding(m, sessions[0])
				openDecoding(m, sessions[1])
				openChunkedPrefill(m, sessions[2])
				openDecoding(m, sessions[3])

				runMixedPhase(t, m, sessions, gen)

				for i, s := range sessions {
					if s.corrupt {
						if s.fired == 0 {
							t.Fatal("corruption hook never fired")
						}
						continue
					}
					if !reflect.DeepEqual(s.got, want[i]) {
						t.Errorf("session %d: fused %v != serial oracle %v", i, s.got, want[i])
					}
				}
				if len(sessions[2].got) != gen {
					t.Fatalf("chunked-prefill session emitted %d tokens, want %d", len(sessions[2].got), gen)
				}
			})
		}
	}
}

// TestForwardBatchDecodeAllocFree pins the steady-state fused decode to
// zero allocations: after warm-up, a pure-decode ForwardBatch call must not
// touch the heap (the serving scheduler calls it per token).
func TestForwardBatchDecodeAllocFree(t *testing.T) {
	cfg := mixedCfg(model.FamilyLlama)
	m := model.MustNew(cfg, 23, numerics.FP16)
	sessions := []*mixedSession{
		{prompt: []int{5, 9, 13}},
		{prompt: []int{7, 11}},
		{prompt: []int{20, 21, 22}},
	}
	items := make([]model.BatchItem, len(sessions))
	for i, s := range sessions {
		openDecoding(m, s)
		items[i] = model.BatchItem{State: s.st, Tok: s.lastTok}
	}
	var toks []int
	step := func() {
		toks = m.ForwardBatch(items, toks[:0])
		for i, tok := range toks {
			items[i].Tok = tok
		}
	}
	for i := 0; i < 4; i++ {
		step() // warm the scratch arenas
	}
	if avg := testing.AllocsPerRun(10, step); avg > 0 {
		t.Fatalf("steady-state fused decode allocates %.1f objects/call, want 0", avg)
	}
}
