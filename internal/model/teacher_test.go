package model

import (
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// The teacher map must be a single cycle over the non-special ids: no fixed
// points (degenerate repetition) and full coverage.
func TestTeacherMapIsFullCycle(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	cfg.TeacherWeight = 4
	m := MustNew(cfg, 7, numerics.FP16)
	const first = 4
	n := cfg.Vocab - first

	seen := make(map[int]bool)
	tok := first
	for i := 0; i < n; i++ {
		next := m.teacher[tok]
		if next < first || next >= cfg.Vocab {
			t.Fatalf("teacher maps %d to out-of-range %d", tok, next)
		}
		if next == tok {
			t.Fatalf("teacher has a fixed point at %d", tok)
		}
		if seen[tok] {
			t.Fatalf("cycle shorter than vocab: revisited %d after %d steps", tok, i)
		}
		seen[tok] = true
		tok = next
	}
	if tok != first {
		t.Error("orbit does not close into a single cycle")
	}
	// Special ids must map into the real-token range.
	for i := 0; i < first; i++ {
		if m.teacher[i] < first {
			t.Errorf("special id %d maps to special id %d", i, m.teacher[i])
		}
	}
}

func TestStreamNormCalibrated(t *testing.T) {
	for _, name := range []string{"opt-6.7b-sim", "gptj-6b-sim", "llama2-7b-sim"} {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := MustNew(cfg, 42, numerics.FP16)
		if m.streamNorm <= 0 {
			t.Errorf("%s: stream norm %g not calibrated", name, m.streamNorm)
		}
		if m.streamNorm > 1e4 {
			t.Errorf("%s: stream norm %g implausibly large", name, m.streamNorm)
		}
	}
}

// A catastrophic stream corruption must overwhelm the teacher prior and
// change the generated tokens — the mechanism behind SDC outcomes — while
// the same generation without corruption is stable.
func TestTeacherOverwhelmedByStreamExplosion(t *testing.T) {
	cfg, err := ConfigByName("opt-6.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg, 42, numerics.FP16)
	prompt := []int{4, 9, 14, 19, 24}
	clean := m.Generate(prompt, 12)

	m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (LayerRef{1, OutProj}) && ctx.Step == 2 && ctx.Site == SiteLinearOut {
			// Non-uniform wipe: a constant vector would be cancelled exactly
			// by LayerNorm's mean subtraction.
			for i := range out.Data {
				out.Data[i] = float32((i%7 - 3)) * 10000
			}
		}
	})
	corrupted := m.Generate(prompt, 12)
	m.ClearHooks()

	same := true
	for i := 3; i < len(clean); i++ {
		if clean[i] != corrupted[i] {
			same = false
		}
	}
	if same {
		t.Error("a full stream wipe must derail the generation despite the teacher prior")
	}
	// Tokens before the fault step must be identical.
	for i := 0; i < 2; i++ {
		if clean[i] != corrupted[i] {
			t.Errorf("token %d changed before the fault step", i)
		}
	}
}

// A small single-value perturbation must NOT change the generation — the
// confidence margin that separates in-bound corruption from SDCs.
func TestTeacherMasksSmallPerturbation(t *testing.T) {
	cfg, err := ConfigByName("opt-6.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(cfg, 42, numerics.FP16)
	prompt := []int{4, 9, 14, 19, 24}
	clean := m.Generate(prompt, 12)

	m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (LayerRef{1, OutProj}) && ctx.Step == 2 && ctx.Site == SiteLinearOut {
			out.Data[0] += 0.05
		}
	})
	corrupted := m.Generate(prompt, 12)
	m.ClearHooks()

	for i := range clean {
		if clean[i] != corrupted[i] {
			t.Fatalf("a 0.05 perturbation flipped token %d — confidence margins miscalibrated", i)
		}
	}
}
