package model

import "fmt"

// DecodeState is the complete per-generation mutable state of a model: the
// KV slab caches plus the step/prompt counters and the last decoded token.
// Extracting it from the Model lets one replica serve many concurrent
// sessions without copying KV state around — the serving scheduler keeps a
// DecodeState per session and either swaps it in for single-session calls
// (SwapState) or passes a batch of them to DecodeStepBatch.
//
// A DecodeState belongs to one generation at a time. It may move between
// replicas of the same (config, seed, dtype) model freely — the weights are
// bit-identical, so a decode continued on another replica reproduces the
// original continuation exactly (the same argument as Snapshot portability,
// without the copy).
type DecodeState struct {
	// identity of the allocating model's architecture, checked on swap
	blocks, slab int

	step           int
	promptLen      int
	lastTok        int
	lastStreamNorm float32
	kv             []kvCache

	// prefillPos is the chunked-prefill cursor: how many prompt rows have
	// been processed so far. A state is mid-prefill while 0 < prefillPos <
	// promptLen (decode and checkpointing are forbidden then); the final
	// PrefillChunk sets it to promptLen, which is also what Prefill and
	// Restore establish directly.
	prefillPos int
}

// NewDecodeState allocates a fresh, empty generation state sized for m's
// architecture (Blocks × 2 slabs of MaxSeq×Hidden floats).
func (m *Model) NewDecodeState() *DecodeState {
	cfg := m.Cfg
	slab := cfg.MaxSeq * cfg.Hidden
	st := &DecodeState{blocks: cfg.Blocks, slab: slab}
	st.kv = make([]kvCache, cfg.Blocks)
	for i := range st.kv {
		st.kv[i].k = make([]float32, slab)
		st.kv[i].v = make([]float32, slab)
	}
	return st
}

// Reset clears the state back to not-started without freeing the slabs.
func (st *DecodeState) Reset() {
	for i := range st.kv {
		st.kv[i].rows = 0
	}
	st.step = 0
	st.promptLen = 0
	st.lastTok = 0
	st.lastStreamNorm = 0
	st.prefillPos = 0
}

// Started reports whether the state holds a live generation (a completed
// Prefill or a Restore populated it). A state mid-way through a chunked
// prefill is not started yet: its KV rows exist but no first token has been
// decoded, so DecodeStep and Checkpoint must wait for the final chunk.
func (st *DecodeState) Started() bool {
	return st != nil && st.promptLen > 0 && st.prefillPos >= st.promptLen
}

// PrefillPos returns the chunked-prefill cursor: prompt rows processed so
// far. It equals PromptLen once the prefill (chunked or single-pass)
// completed, and is 0 for a state that never began one.
func (st *DecodeState) PrefillPos() int {
	if st == nil {
		return 0
	}
	return st.prefillPos
}

// Prefilling reports whether the state is mid-way through a chunked prefill:
// a BeginPrefill happened but the final PrefillChunk has not run yet.
func (st *DecodeState) Prefilling() bool {
	return st != nil && st.promptLen > 0 && st.prefillPos < st.promptLen
}

// SeqLen returns the sequence positions occupied (prompt plus decoded
// steps); zero when not started.
func (st *DecodeState) SeqLen() int {
	if st == nil || st.promptLen == 0 {
		return 0
	}
	return st.promptLen + st.step
}

// LastToken returns the most recently decoded token.
func (st *DecodeState) LastToken() int { return st.lastTok }

// pos returns the absolute sequence position of the step the state is
// currently executing (promptLen + step - 1); callers increment step first.
func (st *DecodeState) pos() int { return st.promptLen + st.step - 1 }

// checkCompatible panics when the state was allocated for a different
// architecture than m's.
func (m *Model) checkCompatible(st *DecodeState) {
	if st.blocks != m.Cfg.Blocks || st.slab != m.Cfg.MaxSeq*m.Cfg.Hidden {
		panic(fmt.Sprintf("model: DecodeState of a %d-block/%d-slab model used with %s",
			st.blocks, st.slab, m.Cfg.Name))
	}
}

// SwapState installs st as the model's active generation state and returns
// the previously active one (nil if the model never generated). Prefill,
// DecodeStep, Checkpoint, and Restore all operate on the active state, so a
// scheduler multiplexing sessions over one replica swaps the session's state
// in, runs its steps, and swaps the old state back — no KV copies. A nil st
// detaches the current state; the next Prefill then allocates a fresh one.
func (m *Model) SwapState(st *DecodeState) *DecodeState {
	if st != nil {
		m.checkCompatible(st)
	}
	prev := m.st
	m.st = st
	return prev
}
