package model

import (
	"bytes"
	"testing"

	"ft2/internal/numerics"
)

func TestCheckpointRoundTrip(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		cfg := smallCfg(f)
		cfg.TeacherWeight = 4
		orig := MustNew(cfg, 1234, numerics.FP16)
		prompt := []int{1, 5, 9, 13}
		want := orig.Generate(prompt, 10)

		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%v: Save: %v", f, err)
		}
		loaded, err := Load(cfg, numerics.FP16, &buf)
		if err != nil {
			t.Fatalf("%v: Load: %v", f, err)
		}
		got := loaded.Generate(prompt, 10)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: loaded model diverges at %d: %v vs %v", f, i, got, want)
			}
		}
	}
}

func TestCheckpointRejectsWrongConfig(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 1, numerics.FP16)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := cfg
	wrong.Hidden = 64
	wrong.Heads = 8
	if _, err := Load(wrong, numerics.FP16, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched config must be rejected")
	}
	wrongFam := smallCfg(FamilyLlama)
	if _, err := Load(wrongFam, numerics.FP16, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched family must be rejected")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	if _, err := Load(cfg, numerics.FP16, bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated stream must be rejected")
	}
	bad := make([]byte, 64)
	if _, err := Load(cfg, numerics.FP16, bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic must be rejected")
	}
}

func TestCheckpointTruncatedBody(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 1, numerics.FP16)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(cfg, numerics.FP16, bytes.NewReader(half)); err == nil {
		t.Error("truncated body must be rejected")
	}
}

func TestParamTensors(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	m := MustNew(cfg, 1, numerics.FP16)
	// llama: no posEmb; per block 2 norms(=4 tensors counting gamma+beta
	// slots) + 7 layers ×2; final norm 2.
	want := 1 + cfg.Blocks*(4+7*2) + 2
	if got := m.ParamTensors(); got != want {
		t.Errorf("ParamTensors = %d, want %d", got, want)
	}
}
