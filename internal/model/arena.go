package model

import "ft2/internal/tensor"

// arena holds the per-model scratch buffers the forward pass reuses across
// steps, so a decode step performs zero heap allocations. Every buffer is
// sized at construction for the worst case (a MaxSeq-row prefill pass) and
// resliced per pass via Tensor.Reuse.
//
// Ownership: the arena belongs to exactly one Model, and a Model is
// documented single-goroutine (campaigns clone one model per worker), so no
// synchronization is needed. Tensors handed to forward hooks alias these
// buffers — they are valid only for the duration of the hook call, and
// hooks that want to keep activations must copy them (every in-tree hook
// already does).
type arena struct {
	x       *tensor.Tensor // residual stream, rows × hidden
	normed  *tensor.Tensor // ln1 output
	normed2 *tensor.Tensor // ln2 output
	q, k, v *tensor.Tensor // attention projections, rows × hidden
	ctx     *tensor.Tensor // pre-out_proj attention context
	attn    *tensor.Tensor // out_proj output
	ffnA    *tensor.Tensor // fc1 / gate_proj output, rows × ffn
	ffnB    *tensor.Tensor // up_proj output, rows × ffn
	ffnOut  *tensor.Tensor // fc2 / down_proj output, rows × hidden
	last    *tensor.Tensor // final-position residual copy, 1 × hidden
	final   *tensor.Tensor // final-norm output, 1 × hidden
	logits  *tensor.Tensor // readout, 1 × vocab

	// Batched-decode readout buffers (B × …). Separate from last/final/
	// logits because the single-row path relies on those keeping their 1-row
	// shape across calls.
	lastB   *tensor.Tensor // per-session residual copies, B × hidden
	finalB  *tensor.Tensor // final-norm output, B × hidden
	logitsB *tensor.Tensor // readout, B × vocab

	// rowOut/rowIn are reusable one-row tensor headers whose Data is
	// re-aimed at one batch row at a time when per-session hooks run; see
	// runBatchHooks.
	rowOut *tensor.Tensor
	rowIn  *tensor.Tensor

	scores    []float32 // attention score row, maxSeq (single-session path)
	positions []int     // absolute positions for Generate, maxSeq
	stepTok   [1]int    // single-token slice for decode steps
	stepPos   [1]int    // single-position slice for decode steps

	// Fused mixed-phase batch layout (ForwardBatch): per-item first fused
	// row, row count, absolute start position, pre-append KV row count for
	// the current block, and the indices of items emitting a token this
	// call. Reused across calls.
	itemLo   []int
	itemRows []int
	itemPos  []int
	itemBase []int
	emitIdx  []int

	// Parallel-attention fan-out state: the per-(item × head) scores
	// scratch slab (maxSeq floats per unit, grown on demand), the operands
	// the unit body reads, and the persistent closure handed to
	// tensor.ParallelFor so steady-state fan-out allocates nothing.
	attnScores []float32
	attnItems  []BatchItem
	attnQ      *tensor.Tensor
	attnCtx    *tensor.Tensor
	attnBlk    int
	attnFn     func(lo, hi int)
}

func newArena(cfg Config) *arena {
	s, h, f := cfg.MaxSeq, cfg.Hidden, cfg.FFN
	return &arena{
		x:         tensor.New(s, h),
		normed:    tensor.New(s, h),
		normed2:   tensor.New(s, h),
		q:         tensor.New(s, h),
		k:         tensor.New(s, h),
		v:         tensor.New(s, h),
		ctx:       tensor.New(s, h),
		attn:      tensor.New(s, h),
		ffnA:      tensor.New(s, f),
		ffnB:      tensor.New(s, f),
		ffnOut:    tensor.New(s, h),
		last:      tensor.New(1, h),
		final:     tensor.New(1, h),
		logits:    tensor.New(1, cfg.Vocab),
		lastB:     tensor.New(1, h),
		finalB:    tensor.New(1, h),
		logitsB:   tensor.New(1, cfg.Vocab),
		rowOut:    tensor.New(0, 0),
		rowIn:     tensor.New(0, 0),
		scores:    make([]float32, s),
		positions: make([]int, s),
	}
}
