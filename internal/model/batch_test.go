package model

import (
	"reflect"
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// prefillSession starts a fresh session on m (its own DecodeState) and
// returns the item primed with the prefill token.
func prefillSession(m *Model, prompt []int) (BatchItem, int) {
	st := m.NewDecodeState()
	prev := m.SwapState(st)
	tok := m.Prefill(prompt)
	m.SwapState(prev)
	return BatchItem{State: st, Tok: tok}, tok
}

// TestDecodeStepBatchBitwise pins the fused batched decode to the serial
// oracle: for every family, sessions with different prompt lengths advanced
// together through DecodeStepBatch must emit exactly the token sequences a
// fresh replica produces with Generate (prefill + serial DecodeSteps).
func TestDecodeStepBatchBitwise(t *testing.T) {
	const gen = 10
	prompts := [][]int{
		{5, 9, 13},
		{7},
		{4, 6, 8, 10, 12, 14, 16},
		{20, 21},
	}
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			oracle := MustNew(cfg, 11, numerics.FP16)
			m := MustNew(cfg, 11, numerics.FP16)

			want := make([][]int, len(prompts))
			for i, p := range prompts {
				want[i] = oracle.Generate(p, gen)
			}

			items := make([]BatchItem, len(prompts))
			got := make([][]int, len(prompts))
			for i, p := range prompts {
				it, tok := prefillSession(m, p)
				items[i] = it
				got[i] = append(got[i], tok)
			}
			var toks []int
			for s := 1; s < gen; s++ {
				toks = m.DecodeStepBatch(items, toks[:0])
				for i, tok := range toks {
					got[i] = append(got[i], tok)
					items[i].Tok = tok
				}
			}
			for i := range prompts {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Errorf("session %d (prompt len %d): batched %v != serial %v",
						i, len(prompts[i]), got[i], want[i])
				}
			}
		})
	}
}

// TestDecodeStepBatchSingleItem pins the degenerate B=1 batch to DecodeStep
// on the same replica, including the state evolution (SeqLen/LastToken).
func TestDecodeStepBatchSingleItem(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	serial := MustNew(cfg, 3, numerics.FP16)
	batched := MustNew(cfg, 3, numerics.FP16)
	prompt := []int{9, 4, 31}

	tokS := serial.Prefill(prompt)
	it, tokB := prefillSession(batched, prompt)
	if tokS != tokB {
		t.Fatalf("prefill: %d != %d", tokS, tokB)
	}
	var toks []int
	for s := 1; s < 8; s++ {
		tokS = serial.DecodeStep(tokS)
		it.Tok = tokB
		toks = batched.DecodeStepBatch([]BatchItem{it}, toks[:0])
		tokB = toks[0]
		if tokS != tokB {
			t.Fatalf("step %d: serial %d != batched %d", s, tokS, tokB)
		}
		if got, want := it.State.SeqLen(), serial.SeqLen(); got != want {
			t.Fatalf("step %d: SeqLen %d != %d", s, got, want)
		}
		if got := it.State.LastToken(); got != tokS {
			t.Fatalf("step %d: LastToken %d != %d", s, got, tokS)
		}
	}
}

// TestDecodeStepBatchRowHooks checks per-session hook attribution: a hook
// attached to one batch item observes one-row tensors with that session's
// step counter, its mutations corrupt only that session's continuation, and
// hook-free co-batched sessions still match the serial oracle bitwise.
func TestDecodeStepBatchRowHooks(t *testing.T) {
	const gen = 8
	cfg := smallCfg(FamilyGPTJ)
	oracle := MustNew(cfg, 5, numerics.FP16)
	m := MustNew(cfg, 5, numerics.FP16)
	prompts := [][]int{{6, 7, 8}, {12, 13, 14, 15}}

	clean := oracle.Generate(prompts[1], gen)

	items := make([]BatchItem, 2)
	for i, p := range prompts {
		items[i], _ = prefillSession(m, p)
	}
	var sawRows, sawSteps []int
	items[0].Hooks = []Hook{func(ctx HookCtx, out *tensor.Tensor) {
		sawRows = append(sawRows, out.Rows)
		if ctx.Layer.Kind == FC1 && ctx.Site == SiteLinearOut {
			sawSteps = append(sawSteps, ctx.Step)
			out.Data[0] = 40 // corrupt session 0 only
		}
	}}

	got := [][]int{{items[0].Tok}, {items[1].Tok}}
	var toks []int
	for s := 1; s < gen; s++ {
		toks = m.DecodeStepBatch(items, toks[:0])
		for i, tok := range toks {
			got[i] = append(got[i], tok)
			items[i].Tok = tok
		}
	}
	if !reflect.DeepEqual(got[1], clean) {
		t.Errorf("hook-free session diverged: %v != %v", got[1], clean)
	}
	for _, r := range sawRows {
		if r != 1 {
			t.Fatalf("hook saw %d-row tensor; want per-session 1-row views", r)
		}
	}
	for i, s := range sawSteps {
		// FC1 fires once per block per step; steps advance 1..gen-1.
		if want := 1 + i/cfg.Blocks; s != want {
			t.Fatalf("hook step %d: got %d want %d", i, s, want)
		}
	}
	if len(sawSteps) != (gen-1)*cfg.Blocks {
		t.Fatalf("hook fired %d times; want %d", len(sawSteps), (gen-1)*cfg.Blocks)
	}
}

// TestDecodeStepBatchModelHooksPanic pins the guard: model-level hooks
// cannot be attributed to a session, so batched decode must refuse them.
func TestDecodeStepBatchModelHooksPanic(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 2, numerics.FP16)
	it, _ := prefillSession(m, []int{5, 6})
	m.RegisterHook(func(HookCtx, *tensor.Tensor) {})
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeStepBatch with model-level hooks did not panic")
		}
	}()
	m.DecodeStepBatch([]BatchItem{it}, nil)
}
