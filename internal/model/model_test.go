package model

import (
	"math"
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func smallCfg(f Family) Config {
	c := Config{
		Name: "test", Family: f,
		Vocab: 64, Hidden: 32, Heads: 4, FFN: 64, Blocks: 2, MaxSeq: 64,
		LogitScale: 4,
	}
	switch f {
	case FamilyOPT:
		c.Activation = tensor.ActReLU
		c.AttnBias = true
	case FamilyGPTJ:
		c.Activation = tensor.ActGELU
	case FamilyLlama:
		c.Activation = tensor.ActSiLU
	}
	return c
}

func TestZooConfigsValid(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 7 {
		t.Fatalf("zoo has %d models, want 7 (Table 2)", len(zoo))
	}
	for _, c := range zoo {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.RefParams <= 0 || c.TaskTypes == "" {
			t.Errorf("%s: missing Table 2 metadata", c.Name)
		}
	}
}

func TestConfigByName(t *testing.T) {
	c, err := ConfigByName("llama2-7b-sim")
	if err != nil || c.Family != FamilyLlama {
		t.Fatalf("ConfigByName failed: %v", err)
	}
	if _, err := ConfigByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestConfigValidateRejectsBadShapes(t *testing.T) {
	c := smallCfg(FamilyOPT)
	c.Hidden = 30 // not divisible by 4 heads... 30/4 no
	if err := c.Validate(); err == nil {
		t.Error("non-divisible hidden/heads must fail validation")
	}
	c2 := smallCfg(FamilyLlama)
	c2.Hidden = 36 // headDim 9, odd — rotary needs even
	if err := c2.Validate(); err == nil {
		t.Error("odd head dim must fail validation for rotary families")
	}
	c3 := smallCfg(FamilyOPT)
	c3.Blocks = 0
	if err := c3.Validate(); err == nil {
		t.Error("zero blocks must fail validation")
	}
}

func TestLinearLayersEnumeration(t *testing.T) {
	c := smallCfg(FamilyOPT)
	layers := c.LinearLayers()
	if len(layers) != 2*6 {
		t.Fatalf("OPT family: %d layers, want 12", len(layers))
	}
	cl := smallCfg(FamilyLlama)
	if got := len(cl.LinearLayers()); got != 2*7 {
		t.Fatalf("Llama family: %d layers, want 14", got)
	}
	if layers[0] != (LayerRef{0, KProj}) || layers[11] != (LayerRef{1, FC2}) {
		t.Error("layer enumeration order wrong")
	}
}

func TestInOutDims(t *testing.T) {
	c := smallCfg(FamilyLlama)
	if c.OutDim(GateProj) != c.FFN || c.InDim(GateProj) != c.Hidden {
		t.Error("GateProj dims wrong")
	}
	if c.OutDim(DownProj) != c.Hidden || c.InDim(DownProj) != c.FFN {
		t.Error("DownProj dims wrong")
	}
	if c.OutDim(KProj) != c.Hidden {
		t.Error("KProj dims wrong")
	}
}

func TestParamCountMatchesStorage(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		c := smallCfg(f)
		m := MustNew(c, 1, numerics.FP16)
		// Count actual stored parameters.
		n := m.embed.Numel()
		if m.posEmb != nil {
			n += m.posEmb.Numel()
		}
		for _, blk := range m.blocks {
			for _, l := range []linear{blk.kProj, blk.qProj, blk.vProj, blk.outProj, blk.fc1, blk.fc2, blk.gateProj, blk.upProj, blk.downProj} {
				if l.w != nil {
					n += l.w.Numel() + len(l.b)
				}
			}
			n += len(blk.ln1.gamma) + len(blk.ln1.beta) + len(blk.ln2.gamma) + len(blk.ln2.beta)
		}
		n += len(m.lnF.gamma) + len(m.lnF.beta)
		if got := c.ParamCount(); got != n {
			t.Errorf("%v: ParamCount()=%d, stored=%d", f, got, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		cfg := smallCfg(f)
		m1 := MustNew(cfg, 7, numerics.FP16)
		m2 := MustNew(cfg, 7, numerics.FP16)
		prompt := []int{1, 5, 9, 13, 2}
		a := m1.Generate(prompt, 12)
		b := m2.Generate(prompt, 12)
		if len(a) != 12 {
			t.Fatalf("%v: generated %d tokens, want 12", f, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic generation at %d: %v vs %v", f, i, a, b)
			}
		}
		// Re-generating on the same model must reset state and agree.
		c := m1.Generate(prompt, 12)
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("%v: state leaked across Generate calls", f)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	a := MustNew(cfg, 1, numerics.FP16).Generate([]int{1, 2, 3}, 10)
	b := MustNew(cfg, 2, numerics.FP16).Generate([]int{1, 2, 3}, 10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical generations (suspicious)")
	}
}

func TestGenerateTokensInVocab(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 3, numerics.FP16)
	for _, tok := range m.Generate([]int{1, 2, 3, 4}, 20) {
		if tok < 0 || tok >= cfg.Vocab {
			t.Fatalf("generated token %d outside vocab", tok)
		}
	}
}

func TestGeneratePanicsOnBadInput(t *testing.T) {
	m := MustNew(smallCfg(FamilyOPT), 1, numerics.FP16)
	for name, fn := range map[string]func(){
		"empty prompt":   func() { m.Generate(nil, 4) },
		"overlong":       func() { m.Generate([]int{1}, 1000) },
		"bad token":      func() { m.Generate([]int{9999}, 4) },
		"negative token": func() { m.Generate([]int{-1}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// The KV-cache incremental path must agree with a full re-forward: generate
// one token at a time and check that prefilling the extended prompt yields
// the same next token.
func TestKVCacheConsistency(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		cfg := smallCfg(f)
		m := MustNew(cfg, 11, numerics.FP16)
		prompt := []int{4, 8, 15, 16}
		gen := m.Generate(prompt, 5)

		// Recompute each step by prefilling prompt+prefix from scratch.
		for i := 1; i < 5; i++ {
			extended := append(append([]int(nil), prompt...), gen[:i]...)
			got := m.Generate(extended, 1)[0]
			if got != gen[i] {
				t.Errorf("%v: KV-cache path diverges at step %d: cached=%d fresh=%d", f, i, gen[i], got)
			}
		}
	}
}

func TestHooksObserveEveryLinearLayer(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		cfg := smallCfg(f)
		m := MustNew(cfg, 5, numerics.FP16)
		seen := make(map[LayerRef]int)
		steps := make(map[int]bool)
		actSites := 0
		m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
			steps[ctx.Step] = true
			if ctx.FirstToken != (ctx.Step == 0) {
				t.Error("FirstToken flag inconsistent with Step")
			}
			if ctx.Site == SiteActivationOut {
				actSites++
				if ctx.Layer.Kind != FC1 && ctx.Layer.Kind != GateProj {
					t.Errorf("activation site fired on %v", ctx.Layer)
				}
				return
			}
			seen[ctx.Layer]++
			if wantCols := cfg.OutDim(ctx.Layer.Kind); out.Cols != wantCols {
				t.Errorf("%v: hook tensor has %d cols, want %d", ctx.Layer, out.Cols, wantCols)
			}
		})
		nGen := 4
		m.Generate([]int{1, 2, 3}, nGen)
		for _, ref := range cfg.LinearLayers() {
			if seen[ref] != nGen {
				t.Errorf("%v/%v: hook fired %d times, want %d", f, ref, seen[ref], nGen)
			}
		}
		for s := 0; s < nGen; s++ {
			if !steps[s] {
				t.Errorf("%v: no hook fired at step %d", f, s)
			}
		}
		if wantAct := cfg.Blocks * nGen; actSites != wantAct {
			t.Errorf("%v: activation site fired %d times, want %d", f, actSites, wantAct)
		}
	}
}

func TestSiteString(t *testing.T) {
	if SiteLinearOut.String() != "linear_out" || SiteActivationOut.String() != "act_out" {
		t.Error("Site strings wrong")
	}
}

func TestHookMutationChangesOutput(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 5, numerics.FP16)
	prompt := []int{1, 2, 3}
	clean := m.Generate(prompt, 8)

	h := m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (LayerRef{0, OutProj}) && ctx.Step == 0 && ctx.Site == SiteLinearOut {
			// Corrupt the last row (the position that produces the first
			// token) so the fault is on the readout path regardless of how
			// attention mixes earlier positions.
			for r := 0; r < out.Rows; r++ {
				out.Data[r*out.Cols] = 3.0e4
			}
		}
	})
	corrupted := m.Generate(prompt, 8)
	m.RemoveHook(h)
	restored := m.Generate(prompt, 8)

	same := true
	for i := range clean {
		if clean[i] != corrupted[i] {
			same = false
		}
		if clean[i] != restored[i] {
			t.Fatal("RemoveHook did not restore clean behaviour")
		}
	}
	if same {
		t.Error("a huge corruption in OUT_PROJ should change the generation")
	}
}

func TestRemoveAndClearHooks(t *testing.T) {
	m := MustNew(smallCfg(FamilyOPT), 1, numerics.FP16)
	h1 := m.RegisterHook(func(HookCtx, *tensor.Tensor) {})
	m.RegisterHook(func(HookCtx, *tensor.Tensor) {})
	if m.HookCount() != 2 {
		t.Fatal("HookCount wrong")
	}
	m.RemoveHook(h1)
	if m.HookCount() != 1 {
		t.Fatal("RemoveHook failed")
	}
	m.RemoveHook(HookHandle(999)) // unknown: no-op
	if m.HookCount() != 1 {
		t.Fatal("unknown handle must be ignored")
	}
	m.ClearHooks()
	if m.HookCount() != 0 {
		t.Fatal("ClearHooks failed")
	}
}

// The FP16 precision gate must make every hooked activation exactly
// binary16-representable.
func TestActivationsAreF16Representable(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 9, numerics.FP16)
	bad := 0
	m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		for _, v := range out.Data {
			if numerics.RoundF16(v) != v && !math.IsNaN(float64(v)) {
				bad++
			}
		}
	})
	m.Generate([]int{1, 2, 3, 4, 5}, 6)
	if bad > 0 {
		t.Errorf("%d activation values were not binary16-representable", bad)
	}
}

// FP32 mode should produce (slightly) different traces from FP16 but still
// be deterministic.
func TestFP32Mode(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	a := MustNew(cfg, 7, numerics.FP32).Generate([]int{1, 2, 3}, 10)
	b := MustNew(cfg, 7, numerics.FP32).Generate([]int{1, 2, 3}, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FP32 generation nondeterministic")
		}
	}
}

func TestStepRows(t *testing.T) {
	if StepRows(17, 0) != 17 {
		t.Error("prefill step must process the whole prompt")
	}
	if StepRows(17, 3) != 1 {
		t.Error("decode steps process one row")
	}
}

func TestLayerKindStrings(t *testing.T) {
	want := map[LayerKind]string{
		KProj: "K_PROJ", QProj: "Q_PROJ", VProj: "V_PROJ", OutProj: "OUT_PROJ",
		FC1: "FC1", FC2: "FC2", GateProj: "GATE_PROJ", UpProj: "UP_PROJ", DownProj: "DOWN_PROJ",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if FamilyOPT.String() != "opt" || FamilyGPTJ.String() != "gptj" || FamilyLlama.String() != "llama" {
		t.Error("Family strings wrong")
	}
}

func BenchmarkGeneratePrefill(b *testing.B) {
	cfg, _ := ConfigByName("opt-6.7b-sim")
	m := MustNew(cfg, 1, numerics.FP16)
	prompt := make([]int, 32)
	for i := range prompt {
		prompt[i] = 4 + i%60
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(prompt, 1)
	}
}

func BenchmarkGenerate16Tokens(b *testing.B) {
	cfg, _ := ConfigByName("llama2-7b-sim")
	m := MustNew(cfg, 1, numerics.FP16)
	prompt := make([]int, 16)
	for i := range prompt {
		prompt[i] = 4 + i%60
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(prompt, 16)
	}
}
