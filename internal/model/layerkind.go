// Package model implements the decoder-only transformer inference engine
// the FT2 reproduction runs on: the three architecture families of the
// paper's model zoo (OPT-style, GPT-J-style, Llama-style), greedy generation
// with a KV cache, an FP16/FP32 precision gate on every linear-layer output,
// and a PyTorch-style forward-hook mechanism that the fault injector and the
// protection layer interpose on.
package model

import "fmt"

// LayerKind identifies a linear layer's role inside a decoder block, the
// granularity at which the paper assesses criticality (Table 1 / Figure 6).
type LayerKind int

const (
	// KProj is the attention key projection.
	KProj LayerKind = iota
	// QProj is the attention query projection.
	QProj
	// VProj is the attention value projection.
	VProj
	// OutProj is the attention output projection.
	OutProj
	// FC1 is the first MLP linear layer (OPT/GPT-J family).
	FC1
	// FC2 is the second MLP linear layer (OPT/GPT-J family).
	FC2
	// GateProj is the SiLU-gated branch of the Llama-family MLP.
	GateProj
	// UpProj is the up-projection branch of the Llama-family MLP.
	UpProj
	// DownProj is the Llama-family MLP output projection.
	DownProj
	numLayerKinds
)

// NumLayerKinds is the number of distinct layer kinds across all families;
// fixed-size per-kind counter arrays (e.g. FT2's correction breakdown) are
// dimensioned by it.
const NumLayerKinds = int(numLayerKinds)

// String implements fmt.Stringer with the paper's layer names.
func (k LayerKind) String() string {
	switch k {
	case KProj:
		return "K_PROJ"
	case QProj:
		return "Q_PROJ"
	case VProj:
		return "V_PROJ"
	case OutProj:
		return "OUT_PROJ"
	case FC1:
		return "FC1"
	case FC2:
		return "FC2"
	case GateProj:
		return "GATE_PROJ"
	case UpProj:
		return "UP_PROJ"
	case DownProj:
		return "DOWN_PROJ"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// AllLayerKinds lists every layer kind in declaration order.
var AllLayerKinds = []LayerKind{KProj, QProj, VProj, OutProj, FC1, FC2, GateProj, UpProj, DownProj}

// Family identifies one of the paper's three architecture families
// (Figure 1): they differ in normalization, position encoding, MLP shape
// and the parallel-vs-sequential arrangement of attention and MLP.
type Family int

const (
	// FamilyOPT: LayerNorm, learned positions, sequential attention→MLP,
	// fc1/fc2 with ReLU (OPT-6.7B, OPT-2.7B).
	FamilyOPT Family = iota
	// FamilyGPTJ: LayerNorm, rotary positions, attention and MLP computed in
	// parallel from the same normalized input, fc1/fc2 with GELU (GPT-J-6B).
	FamilyGPTJ
	// FamilyLlama: RMSNorm, rotary positions, sequential attention→MLP,
	// gate/up/down with SiLU (Llama2-7B, Vicuna-7B, Qwen2-7B, Qwen2-1.5B).
	FamilyLlama
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyOPT:
		return "opt"
	case FamilyGPTJ:
		return "gptj"
	case FamilyLlama:
		return "llama"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// LayerKinds returns the linear layer kinds present in one decoder block of
// this family, in forward-pass order.
func (f Family) LayerKinds() []LayerKind {
	switch f {
	case FamilyOPT, FamilyGPTJ:
		return []LayerKind{KProj, QProj, VProj, OutProj, FC1, FC2}
	case FamilyLlama:
		return []LayerKind{KProj, QProj, VProj, OutProj, GateProj, UpProj, DownProj}
	default:
		panic("model: unknown family")
	}
}

// LayerRef addresses one linear layer instance inside a model.
type LayerRef struct {
	Block int
	Kind  LayerKind
}

// String implements fmt.Stringer.
func (r LayerRef) String() string { return fmt.Sprintf("block%d.%s", r.Block, r.Kind) }
