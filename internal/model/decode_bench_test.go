package model

import (
	"testing"

	"ft2/internal/numerics"
)

// BenchmarkDecodeStep measures one steady-state decode step — the unit the
// paper's runtime overhead numbers are normalized to — on each family's
// Table 2 sim config. The prompt is prefetched into the KV cache once; every
// iteration runs a single-token forward pass and then rewinds the cache so
// the sequence never outgrows MaxSeq.
func BenchmarkDecodeStep(b *testing.B) {
	for _, name := range []string{"opt-6.7b-sim", "gptj-6b-sim", "llama2-7b-sim"} {
		b.Run(name, func(b *testing.B) {
			cfg, err := ConfigByName(name)
			if err != nil {
				b.Fatal(err)
			}
			m := MustNew(cfg, 42, numerics.FP16)
			prompt := []int{4, 8, 15, 16, 23, 42}
			m.resetState()
			positions := m.scratch.positions[:len(prompt)]
			for i := range positions {
				positions[i] = i
			}
			logits := m.forward(prompt, positions)
			tok := argmax(logits)

			sc := m.scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.st.step = 1
				sc.stepTok[0] = tok
				sc.stepPos[0] = len(prompt)
				m.forward(sc.stepTok[:], sc.stepPos[:])
				for j := range m.st.kv {
					m.st.kv[j].rows = len(prompt)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}
