package model

import (
	"fmt"
	"math"
	"math/rand"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// linear is one weight matrix (out×in, PyTorch layout) plus optional bias.
type linear struct {
	w *tensor.Tensor
	b []float32
}

// norm holds LayerNorm (gamma+beta) or RMSNorm (gamma only) parameters.
type norm struct {
	gamma, beta []float32
}

// block is one decoder block. Layers not used by the family stay nil.
type block struct {
	ln1, ln2                     norm
	kProj, qProj, vProj, outProj linear
	fc1, fc2                     linear // OPT / GPT-J
	gateProj, upProj, downProj   linear // Llama family
}

// Model is an initialized decoder-only transformer ready for greedy
// generation.
//
// Concurrency contract: a Model is single-owner — exactly one goroutine may
// drive Prefill/DecodeStep/Generate/Checkpoint/Restore at a time, and hook
// registration belongs to that owner. Weights are written only during New,
// so any number of replicas of the same (cfg, seed, dtype) may run
// concurrently, and read-only artifacts (Snapshots, profiled bound stores)
// may be shared across replicas. Subsystems that juggle more generations
// than replicas (the campaign pool, the serving scheduler) time-slice
// sessions onto replicas with Checkpoint/Restore, which is bit-exact.
type Model struct {
	Cfg    Config
	DType  numerics.DType
	embed  *tensor.Tensor // vocab × hidden (tied LM head)
	posEmb *tensor.Tensor // maxSeq × hidden (OPT only)
	blocks []*block
	lnF    norm

	// teacher is a seeded random cycle over the non-special token ids
	// implementing the TeacherWeight next-token prior (see Config), and
	// streamNorm is the calibrated norm of a sane residual stream: the
	// teacher component is injected at that fixed scale, so a corrupted
	// stream whose norm has exploded swamps it under the final
	// normalization — confident margins for sane states, divergence for
	// extreme corruption, matching trained-model behaviour under faults.
	teacher        []int
	streamNorm     float32
	lastStreamNorm float32

	// weightsF16 records that the weight matrices were switched to packed
	// binary16 storage (see weights.go).
	weightsF16 bool

	hooks      []hookEntry
	nextHookID int

	// st is the active generation state (see DecodeState); swapped per
	// session by the serving scheduler, lazily allocated on first Prefill.
	st *DecodeState

	// rope caches the rotary sin/cos factors for non-OPT families.
	rope *tensor.RopeTable
	// scratch is the reusable forward-pass buffer arena; see arena.go.
	scratch *arena
}

// kvCache stores one block's accumulated key/value state in two contiguous
// slabs preallocated to Heads×MaxSeq×HeadDim (= MaxSeq×Hidden) floats. The
// layout is head-blocked — element (head h, position p, channel c) lives at
// (h*MaxSeq+p)*HeadDim+c — so the attention inner loop streams one head's
// keys/values as a single contiguous run instead of hopping between
// per-position heap rows.
type kvCache struct {
	k, v []float32
	rows int // positions filled so far
}

// New builds a model from cfg with seeded deterministic weights and the
// given activation dtype. The same (cfg, seed) always yields identical
// weights regardless of GOMAXPROCS.
func New(cfg Config, seed int64, dtype numerics.DType) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Cfg: cfg, DType: dtype}
	h := cfg.Hidden

	m.embed = tensor.New(cfg.Vocab, h)
	m.embed.RandNormal(rng, 0.08)
	// Give token groups structured channel signatures: tokens from one
	// vocabulary region carry extra energy in a group-specific channel
	// block. Different corpora (different token mixes) then excite
	// different activation subspaces, so per-layer activation ranges — and
	// hence profiled bounds — are genuinely dataset-dependent, the
	// phenomenon behind the paper's Figure 3 (real LLMs route different
	// content through different channels).
	const groupSpan = 32
	blockWidth := h / 4
	for tok := 0; tok < cfg.Vocab; tok++ {
		g := tok / groupSpan
		start := (g * 13 * blockWidth / 4) % h
		row := m.embed.Row(tok)
		for j := 0; j < blockWidth; j++ {
			row[(start+j)%h] += float32(rng.NormFloat64() * 0.18)
		}
	}
	if cfg.Family == FamilyOPT {
		m.posEmb = tensor.New(cfg.MaxSeq, h)
		m.posEmb.RandNormal(rng, 0.02)
	}

	for b := 0; b < cfg.Blocks; b++ {
		blk := &block{}
		blk.ln1 = newNorm(cfg, h)
		blk.ln2 = newNorm(cfg, h)
		for _, kind := range cfg.Family.LayerKinds() {
			l := m.initLinear(cfg, kind, rng)
			switch kind {
			case KProj:
				blk.kProj = l
			case QProj:
				blk.qProj = l
			case VProj:
				blk.vProj = l
			case OutProj:
				blk.outProj = l
			case FC1:
				blk.fc1 = l
			case FC2:
				blk.fc2 = l
			case GateProj:
				blk.gateProj = l
			case UpProj:
				blk.upProj = l
			case DownProj:
				blk.downProj = l
			}
		}
		m.blocks = append(m.blocks, blk)
	}
	m.lnF = newNorm(cfg, h)

	// Teacher map over ids [4, vocab): a single random cycle, so there are
	// no fixed points (no degenerate "x x x ..." generations), no special
	// tokens, and the orbit from any start covers the whole real vocabulary.
	const firstRealToken = 4
	order := rng.Perm(cfg.Vocab - firstRealToken)
	m.teacher = make([]int, cfg.Vocab)
	n := len(order)
	for i, tok := range order {
		m.teacher[firstRealToken+tok] = firstRealToken + order[(i+1)%n]
	}
	for i := 0; i < firstRealToken; i++ {
		m.teacher[i] = firstRealToken + order[i%n]
	}

	m.calibrateStreamNorm()
	return m, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config, seed int64, dtype numerics.DType) *Model {
	m, err := New(cfg, seed, dtype)
	if err != nil {
		panic(err)
	}
	return m
}

func newNorm(cfg Config, width int) norm {
	n := norm{gamma: make([]float32, width)}
	for i := range n.gamma {
		n.gamma[i] = 1
	}
	if cfg.Family != FamilyLlama {
		n.beta = make([]float32, width)
	}
	return n
}

// initLinear draws a weight matrix whose output scale reproduces the
// per-layer-kind value distributions of Figure 8: wide distributions (with a
// sizeable NaN-vulnerable fraction in ±(1,2)) for K/Q/FC1/GATE/UP, and tight
// near-zero distributions for V/OUT/FC2/DOWN. DOWN_PROJ additionally gets a
// few planted outlier rows reproducing the large-value channels of Figure 12
// (a documented property of trained Llama-family models).
func (m *Model) initLinear(cfg Config, kind LayerKind, rng *rand.Rand) linear {
	in, out := cfg.InDim(kind), cfg.OutDim(kind)
	w := tensor.New(out, in)

	// Inputs to each linear layer are normalized (post-LN) with roughly unit
	// RMS, so output std ≈ weightStd·sqrt(in). Choose weightStd to target the
	// desired output std per kind.
	var targetStd float64
	switch kind {
	case KProj, QProj:
		targetStd = 1.3 // wide: a large fraction of |values| in (1,2)
	case FC1, GateProj, UpProj:
		targetStd = 1.1
	case VProj:
		targetStd = 0.30 // tight near zero (critical layers, Fig. 8)
	case OutProj, FC2, DownProj:
		targetStd = 0.35
	}
	w.RandNormal(rng, targetStd/math.Sqrt(float64(in)))

	switch kind {
	case VProj, OutProj, FC2, DownProj:
		// Plant a handful of outlier output channels — dense rows with a
		// large weight scale, so the channel is *persistently* large across
		// tokens (the documented outlier-channel phenomenon of trained
		// transformers; Figure 12 shows it for DOWN_PROJ). Dense rows keep
		// the channel's distribution Gaussian: the first token's max is a
		// good bound estimate and the 2× scaled bound almost never clips
		// legitimate later values. The outliers also widen the profiled
		// bounds of the critical layers, which is what makes an uncorrected
		// extreme value destructive even after a downstream layer clamps
		// the fallout (the V_PROJ criticality mechanism of Figure 6).
		nOutliers := out / 32
		if nOutliers < 2 {
			nOutliers = 2
		}
		// V's outliers stay moderate (its corruption is clamped at the
		// source when covered); the residual-stream writers get larger
		// outlier channels so their profiled bounds admit genuinely
		// destructive clamped rows when a critical layer is left exposed.
		outlierScale := 30.0
		if kind == VProj {
			outlierScale = 6
		}
		outlierStd := outlierScale * targetStd / math.Sqrt(float64(in))
		for i := 0; i < nOutliers; i++ {
			row := rng.Intn(out)
			for j := 0; j < in; j++ {
				w.Set(row, j, float32(rng.NormFloat64()*outlierStd))
			}
		}
	}

	l := linear{w: w}
	if cfg.layerHasBias(kind) {
		l.b = make([]float32, out)
		for i := range l.b {
			l.b[i] = float32(rng.NormFloat64() * 0.01)
		}
	}
	return l
}

// linearByRef resolves a layer reference to its parameters.
func (m *Model) linearByRef(ref LayerRef) linear {
	blk := m.blocks[ref.Block]
	switch ref.Kind {
	case KProj:
		return blk.kProj
	case QProj:
		return blk.qProj
	case VProj:
		return blk.vProj
	case OutProj:
		return blk.outProj
	case FC1:
		return blk.fc1
	case FC2:
		return blk.fc2
	case GateProj:
		return blk.gateProj
	case UpProj:
		return blk.upProj
	case DownProj:
		return blk.downProj
	default:
		panic("model: unknown layer kind")
	}
}

// RecomputeLinear re-executes a linear layer on the given input and returns
// the freshly computed, precision-gated output — the redundant execution a
// duplication-in-place protection compares against. It does not run hooks.
func (m *Model) RecomputeLinear(ref LayerRef, x *tensor.Tensor) *tensor.Tensor {
	if ref.Block < 0 || ref.Block >= len(m.blocks) {
		panic(fmt.Sprintf("model: RecomputeLinear block %d out of range", ref.Block))
	}
	l := m.linearByRef(ref)
	if l.w == nil {
		panic(fmt.Sprintf("model: layer %v not present in family %v", ref, m.Cfg.Family))
	}
	return m.recomputeLinear(tensor.New(x.Rows, l.w.Rows), ref, l, x)
}

// RecomputeLinearInto is RecomputeLinear writing into a caller-owned
// scratch tensor (reshaped as needed), so redundant-execution protections
// can run allocation-free on the decode hot path.
func (m *Model) RecomputeLinearInto(out *tensor.Tensor, ref LayerRef, x *tensor.Tensor) *tensor.Tensor {
	if ref.Block < 0 || ref.Block >= len(m.blocks) {
		panic(fmt.Sprintf("model: RecomputeLinear block %d out of range", ref.Block))
	}
	l := m.linearByRef(ref)
	if l.w == nil {
		panic(fmt.Sprintf("model: layer %v not present in family %v", ref, m.Cfg.Family))
	}
	return m.recomputeLinear(out.Reuse(x.Rows, l.w.Rows), ref, l, x)
}

func (m *Model) recomputeLinear(out *tensor.Tensor, ref LayerRef, l linear, x *tensor.Tensor) *tensor.Tensor {
	tensor.LinearInto(out, x, l.w, l.b)
	out.Quantize(m.DType)
	return out
}

// applyLinearInto computes the layer output into dst (resliced to fit),
// passes it through the precision gate, and runs the forward hooks.
func (m *Model) applyLinearInto(dst *tensor.Tensor, ref LayerRef, l linear, x *tensor.Tensor) *tensor.Tensor {
	dst.Reuse(x.Rows, l.w.Rows)
	tensor.LinearInto(dst, x, l.w, l.b)
	dst.Quantize(m.DType)
	m.runHooks(ref, SiteLinearOut, x, dst)
	return dst
}

func (m *Model) applyNormInto(dst *tensor.Tensor, n norm, x *tensor.Tensor) *tensor.Tensor {
	dst.Reuse(x.Rows, x.Cols)
	if m.Cfg.Family == FamilyLlama {
		return tensor.RMSNormInto(dst, x, n.gamma, 1e-6)
	}
	return tensor.LayerNormInto(dst, x, n.gamma, n.beta, 1e-5)
}

// attention runs multi-head causal self-attention for the rows of x (the
// positions processed this pass), appending K/V to the block's slab cache.
// positions gives the absolute position of each row. The returned tensor
// aliases the scratch arena and is valid until the next attention call.
func (m *Model) attention(bIdx int, blk *block, x *tensor.Tensor, positions []int) *tensor.Tensor {
	cfg := m.Cfg
	d := cfg.HeadDim()
	maxSeq := cfg.MaxSeq
	sc := m.scratch

	k := m.applyLinearInto(sc.k, LayerRef{bIdx, KProj}, blk.kProj, x)
	q := m.applyLinearInto(sc.q, LayerRef{bIdx, QProj}, blk.qProj, x)
	v := m.applyLinearInto(sc.v, LayerRef{bIdx, VProj}, blk.vProj, x)

	if cfg.Family != FamilyOPT {
		// Rotary embeddings per head on q and k, straight on the strided
		// head slices with precomputed sin/cos factors.
		for r := 0; r < x.Rows; r++ {
			pos := positions[r]
			qrow, krow := q.Row(r), k.Row(r)
			for h := 0; h < cfg.Heads; h++ {
				m.rope.Apply(qrow[h*d:(h+1)*d], pos)
				m.rope.Apply(krow[h*d:(h+1)*d], pos)
			}
		}
	}

	// Append to the KV cache, transposing rows into the head-blocked slabs.
	cache := &m.st.kv[bIdx]
	base := cache.rows // absolute position of x's first row
	for r := 0; r < x.Rows; r++ {
		krow, vrow := k.Row(r), v.Row(r)
		for h := 0; h < cfg.Heads; h++ {
			off := (h*maxSeq + base + r) * d
			copy(cache.k[off:off+d], krow[h*d:(h+1)*d])
			copy(cache.v[off:off+d], vrow[h*d:(h+1)*d])
		}
	}
	cache.rows += x.Rows

	// Per-head scaled dot-product attention with causal masking, walking
	// each head's contiguous K/V run in the slabs.
	ctxOut := sc.ctx.Reuse(x.Rows, cfg.Hidden)
	ctxOut.Zero()
	scale := float32(1 / math.Sqrt(float64(d)))
	scores := sc.scores[:cache.rows]
	for h := 0; h < cfg.Heads; h++ {
		lo := h * d
		kh := cache.k[h*maxSeq*d:]
		vh := cache.v[h*maxSeq*d:]
		for r := 0; r < x.Rows; r++ {
			qrow := q.Row(r)[lo : lo+d]
			limit := base + r + 1 // causal: attend to positions <= own
			tensor.DotStride(scores, qrow, kh, d, limit, scale)
			maxv := float32(math.Inf(-1))
			for j := 0; j < limit; j++ {
				if s := scores[j]; !math.IsNaN(float64(s)) && s > maxv {
					maxv = s
				}
			}
			var sum float32
			for j := 0; j < limit; j++ {
				e := float32(math.Exp(float64(scores[j] - maxv)))
				scores[j] = e
				sum += e
			}
			orow := ctxOut.Row(r)[lo : lo+d]
			if sum > 0 {
				inv := 1 / sum
				tensor.ScaleSlice(scores[:limit], inv)
				// The stride kernels are bit-identical to per-position
				// Dot/Axpy calls (same op order, never fused).
				tensor.AxpyStride(orow, vh, scores, d, limit)
			}
		}
	}
	ctxOut.Quantize(m.DType)
	return m.applyLinearInto(sc.attn, LayerRef{bIdx, OutProj}, blk.outProj, ctxOut)
}

// mlp runs the family-specific MLP. The returned tensor aliases the scratch
// arena and is valid until the next mlp call.
func (m *Model) mlp(bIdx int, blk *block, x *tensor.Tensor) *tensor.Tensor {
	sc := m.scratch
	switch m.Cfg.Family {
	case FamilyOPT, FamilyGPTJ:
		h := m.applyLinearInto(sc.ffnA, LayerRef{bIdx, FC1}, blk.fc1, x)
		m.Cfg.Activation.Apply(h)
		h.Quantize(m.DType)
		m.runHooks(LayerRef{bIdx, FC1}, SiteActivationOut, nil, h)
		return m.applyLinearInto(sc.ffnOut, LayerRef{bIdx, FC2}, blk.fc2, h)
	case FamilyLlama:
		gate := m.applyLinearInto(sc.ffnA, LayerRef{bIdx, GateProj}, blk.gateProj, x)
		up := m.applyLinearInto(sc.ffnB, LayerRef{bIdx, UpProj}, blk.upProj, x)
		m.Cfg.Activation.Apply(gate)
		tensor.MulInPlace(gate, up)
		gate.Quantize(m.DType)
		m.runHooks(LayerRef{bIdx, GateProj}, SiteActivationOut, nil, gate)
		return m.applyLinearInto(sc.ffnOut, LayerRef{bIdx, DownProj}, blk.downProj, gate)
	default:
		panic("model: unknown family")
	}
}

// forward processes the rows of tokens (absolute positions given) and
// returns the logits of the final row.
func (m *Model) forward(tokens []int, positions []int) []float32 {
	return m.readout(m.forwardBlocks(tokens, positions), tokens[len(tokens)-1])
}

// forwardBlocks runs the embedding and decoder-block stack for the rows of
// tokens (absolute positions given), appending each block's K/V to the slab
// cache, and returns the residual stream (aliasing the scratch arena). It is
// the per-chunk body of a prefill: non-final chunks need only the KV side
// effects, so the readout is split off and run once on the final rows.
func (m *Model) forwardBlocks(tokens []int, positions []int) *tensor.Tensor {
	cfg := m.Cfg
	sc := m.scratch
	x := sc.x.Reuse(len(tokens), cfg.Hidden)
	for r, tok := range tokens {
		if tok < 0 || tok >= cfg.Vocab {
			panic(fmt.Sprintf("model: token %d out of vocab %d", tok, cfg.Vocab))
		}
		copy(x.Row(r), m.embed.Row(tok))
		if cfg.Family == FamilyOPT {
			pos := positions[r]
			if pos >= cfg.MaxSeq {
				panic(fmt.Sprintf("model: position %d exceeds max seq %d", pos, cfg.MaxSeq))
			}
			row := x.Row(r)
			for c, pv := range m.posEmb.Row(pos) {
				row[c] += pv
			}
		}
	}
	x.Quantize(m.DType)

	for bIdx, blk := range m.blocks {
		switch cfg.Family {
		case FamilyGPTJ:
			// Parallel attention+MLP from the same normalized input.
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attention(bIdx, blk, normed, positions)
			ffn := m.mlp(bIdx, blk, normed)
			tensor.AddInPlace(x, attn)
			tensor.AddInPlace(x, ffn)
		default:
			normed := m.applyNormInto(sc.normed, blk.ln1, x)
			attn := m.attention(bIdx, blk, normed, positions)
			tensor.AddInPlace(x, attn)
			normed2 := m.applyNormInto(sc.normed2, blk.ln2, x)
			ffn := m.mlp(bIdx, blk, normed2)
			tensor.AddInPlace(x, ffn)
		}
		x.Quantize(m.DType)
	}
	return x
}

// readout turns the final row of the residual stream x into next-token
// logits: teacher-prior injection, final norm, and the tied-embedding
// projection. lastTok is the token occupying that final row (it selects the
// teacher prior). It also records the stream norm the serving layer exposes.
func (m *Model) readout(x *tensor.Tensor, lastTok int) []float32 {
	cfg := m.Cfg
	sc := m.scratch
	last := sc.last
	copy(last.Data, x.Row(x.Rows-1))
	var ss float64
	for _, v := range last.Data {
		ss += float64(v) * float64(v)
	}
	m.st.lastStreamNorm = float32(math.Sqrt(ss))

	if cfg.TeacherWeight > 0 && m.streamNorm > 0 {
		// Inject the next-token prior as a stream component of fixed
		// reference norm: β·R·t̂ added to the pre-norm state. A sane stream
		// (‖x‖ ≈ R) is dominated by it; a corrupted stream whose norm has
		// exploded drowns it, and the readout diverges.
		emb := m.embed.Row(m.teacher[lastTok])
		var tn float64
		for _, v := range emb {
			tn += float64(v) * float64(v)
		}
		if tn > 0 {
			scale := cfg.TeacherWeight * m.streamNorm / float32(math.Sqrt(tn))
			for i, v := range emb {
				last.Data[i] += scale * v
			}
		}
	}

	final := m.applyNormInto(sc.final, m.lnF, last)
	logits := tensor.MatMulTInto(sc.logits, final, m.embed)
	logits.Scale(cfg.LogitScale)
	return logits.Row(0)
}

// ensureRuntime lazily builds the shared forward-pass machinery (scratch
// arena, rope table) without touching generation state, so batched decode
// over caller-owned DecodeStates can prepare a freshly built model too.
func (m *Model) ensureRuntime() {
	if m.scratch == nil {
		m.scratch = newArena(m.Cfg)
	}
	if m.rope == nil && m.Cfg.Family != FamilyOPT {
		m.rope = tensor.NewRopeTable(m.Cfg.MaxSeq, m.Cfg.HeadDim(), 10000)
	}
}

// resetState clears the active generation state for a fresh generation,
// lazily building the state, slab cache, and scratch arena on first use. The
// slabs are preallocated once to MaxSeq capacity and only their fill
// counters reset, so repeated generations never touch the allocator.
func (m *Model) resetState() {
	m.ensureRuntime()
	if m.st == nil {
		m.st = m.NewDecodeState()
	}
	m.st.Reset()
}

// Prefill resets the generation state and processes the whole prompt in a
// single pass (the paper's "first token generation"), returning the first
// greedily decoded token. It is the resumable-generation counterpart of
// Generate's opening pass: callers drive the following tokens one at a time
// with DecodeStep and may snapshot the state between steps with Checkpoint.
//
// Prefill is exactly BeginPrefill followed by one all-of-the-prompt
// PrefillChunk, so single-pass and chunked prefills share one code path and
// produce bit-identical state (each KV row is computed from the same inputs
// in the same FP order regardless of which chunk carried it, and causal
// attention never looks past a row's own position).
func (m *Model) Prefill(prompt []int) int {
	m.BeginPrefill(len(prompt))
	tok, _ := m.PrefillChunk(prompt)
	return tok
}

// BeginPrefill resets the generation state and opens a chunked prefill for a
// prompt of n tokens. The caller then feeds the prompt through one or more
// PrefillChunk calls (optionally seeding a cached prefix first with
// ResumePrefillPrefix); until the final chunk completes the state is
// mid-prefill and DecodeStep/Checkpoint panic.
func (m *Model) BeginPrefill(n int) {
	if n <= 0 {
		panic("model: empty prompt")
	}
	if n > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("model: prompt %d exceeds max seq %d", n, m.Cfg.MaxSeq))
	}
	m.resetState()
	m.st.promptLen = n
}

// ResumePrefillPrefix seeds a just-begun chunked prefill with a cached KV
// prefix: the snapshot's rows are copied into the slabs and the prefill
// cursor advances past them, so subsequent PrefillChunk calls compute only
// the remaining suffix. The snapshot (typically a Snapshot.Prefix view from
// the serving prefix cache) must hold KV rows for exactly the prompt's first
// Rows() tokens — the caller guarantees the token match; this function
// checks architecture and that at least one row is left to compute (the
// readout needs the final row's residual stream, which snapshots don't
// carry). A zero-row snapshot is a no-op.
func (m *Model) ResumePrefillPrefix(s *Snapshot) {
	st := m.st
	if st == nil || st.promptLen == 0 || st.prefillPos != 0 {
		panic("model: ResumePrefillPrefix outside a just-begun prefill")
	}
	cfg := m.Cfg
	if s.family != cfg.Family || s.blocks != cfg.Blocks || s.hidden != cfg.Hidden || s.maxSeq != cfg.MaxSeq || s.headDim != cfg.HeadDim() {
		panic(fmt.Sprintf("model: snapshot of a %s %d×%d/%d-seq model restored into %s",
			s.family, s.blocks, s.hidden, s.maxSeq, cfg.Name))
	}
	if s.rows >= st.promptLen {
		panic(fmt.Sprintf("model: cached prefix %d rows leaves no suffix for a %d-token prompt", s.rows, st.promptLen))
	}
	if s.rows == 0 {
		return
	}
	d := s.headDim
	stride := s.srcStride()
	for b := range st.kv {
		for h := 0; h < cfg.Heads; h++ {
			copy(st.kv[b].k[h*cfg.MaxSeq*d:], s.k[b][h*stride*d:h*stride*d+s.rows*d])
			copy(st.kv[b].v[h*cfg.MaxSeq*d:], s.v[b][h*stride*d:h*stride*d+s.rows*d])
		}
		st.kv[b].rows = s.rows
	}
	st.prefillPos = s.rows
}

// PrefillChunk advances an open prefill by the given consecutive prompt
// tokens (the slice starting at position PrefillPos). Non-final chunks run
// only the decoder stack — their purpose is the KV rows — and return (0,
// false). The chunk completing the prompt additionally runs the readout and
// returns the first decoded token with done=true, leaving the state exactly
// as a single-pass Prefill of the whole prompt would. A chunk that would
// overrun the prompt, an empty chunk, or a call without an open prefill
// panics.
func (m *Model) PrefillChunk(tokens []int) (tok int, done bool) {
	st := m.st
	if st == nil || st.promptLen == 0 || st.prefillPos >= st.promptLen {
		panic("model: PrefillChunk without an open prefill")
	}
	if len(tokens) == 0 {
		panic("model: empty prefill chunk")
	}
	if st.prefillPos+len(tokens) > st.promptLen {
		panic(fmt.Sprintf("model: prefill chunk overruns prompt (%d+%d > %d)",
			st.prefillPos, len(tokens), st.promptLen))
	}
	positions := m.scratch.positions[:len(tokens)]
	for i := range positions {
		positions[i] = st.prefillPos + i
	}
	x := m.forwardBlocks(tokens, positions)
	st.prefillPos += len(tokens)
	if st.prefillPos < st.promptLen {
		return 0, false
	}
	st.lastTok = argmax(m.readout(x, tokens[len(tokens)-1]))
	return st.lastTok, true
}

// Started reports whether the model holds live generation state — a
// Prefill or Restore happened — i.e. whether DecodeStep may be called.
func (m *Model) Started() bool { return m.st.Started() }

// SeqLen returns the sequence positions currently occupied (prompt plus
// decoded steps); the next DecodeStep claims position SeqLen, which must
// stay below Cfg.MaxSeq.
func (m *Model) SeqLen() int { return m.st.SeqLen() }

// DecodeStep runs one decode step: it feeds tok (normally the token the
// previous step returned) as the next sequence position against the KV
// cache and returns the greedily decoded next token. The step counter the
// hooks observe advances by one per call; the first call after Prefill is
// step 1.
func (m *Model) DecodeStep(tok int) int {
	if !m.st.Started() {
		if m.st.Prefilling() {
			panic("model: DecodeStep mid-prefill")
		}
		panic("model: DecodeStep before Prefill or Restore")
	}
	sc := m.scratch
	m.st.step++
	pos := m.st.pos()
	if pos >= m.Cfg.MaxSeq {
		panic(fmt.Sprintf("model: decode position %d exceeds max seq %d", pos, m.Cfg.MaxSeq))
	}
	sc.stepTok[0] = tok
	sc.stepPos[0] = pos
	m.st.lastTok = argmax(m.forward(sc.stepTok[:], sc.stepPos[:]))
	return m.st.lastTok
}

// Generate greedily decodes n tokens after the prompt, invoking forward
// hooks at every linear layer. The prompt itself is processed in a single
// prefill pass; each following token is a single-row pass against the KV
// cache. The returned slice is freshly allocated; campaign hot paths use
// GenerateInto instead.
func (m *Model) Generate(prompt []int, n int) []int {
	return m.GenerateInto(make([]int, 0, n), prompt, n)
}

// GenerateInto is Generate writing the decoded tokens into dst[:0] (grown if
// its capacity is short). With a caller-reused dst of capacity ≥ n the
// steady-state generation performs zero heap allocations; the returned slice
// aliases dst and is valid until the caller's next GenerateInto with it.
func (m *Model) GenerateInto(dst []int, prompt []int, n int) []int {
	if len(prompt)+n > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("model: prompt %d + generate %d exceeds max seq %d", len(prompt), n, m.Cfg.MaxSeq))
	}
	dst = dst[:0]
	tok := m.Prefill(prompt)
	dst = append(dst, tok)
	for s := 1; s < n; s++ {
		tok = m.DecodeStep(tok)
		dst = append(dst, tok)
	}
	return dst
}

// StepRows returns the number of sequence rows processed at generation step
// `step` for a prompt of the given length: the prefill pass processes the
// whole prompt, every later step one token.
func StepRows(promptLen, step int) int {
	if step == 0 {
		return promptLen
	}
	return 1
}

func argmax(xs []float32) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range xs {
		if !math.IsNaN(float64(v)) && v > bestV {
			bestV = v
			best = i
		}
	}
	return best
}
