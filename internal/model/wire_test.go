package model

import (
	"bytes"
	"testing"

	"ft2/internal/numerics"
)

// TestSnapshotWirePrefixViewCompacts encodes a stride-sharing Prefix view
// and checks the decoder gets back a packed, self-owned snapshot whose KV
// rows are bitwise the parent's first rows per head — the stride-aware path
// the serving prefix cache depends on.
func TestSnapshotWirePrefixViewCompacts(t *testing.T) {
	cfg, err := ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, 7, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6}
	tok := m.Prefill(prompt)
	for i := 0; i < 4; i++ {
		tok = m.DecodeStep(tok)
	}
	full := &Snapshot{}
	m.Checkpoint(full)

	const rows = 5
	view := full.Prefix(rows)
	dec, n, err := DecodeSnapshot(AppendSnapshot(nil, view))
	if err != nil {
		t.Fatal(err)
	}
	if n != snapWireHeader+dec.blocks*2*rows*dec.hidden*4 {
		t.Fatalf("consumed %d bytes", n)
	}
	if dec.rows != rows || dec.stride != rows || dec.nextStep != 0 {
		t.Fatalf("decoded view: rows %d stride %d nextStep %d", dec.rows, dec.stride, dec.nextStep)
	}
	d := full.headDim
	stride := full.srcStride()
	for b := 0; b < full.blocks; b++ {
		for h := 0; h < full.hidden/d; h++ {
			want := full.k[b][h*stride*d : h*stride*d+rows*d]
			got := dec.k[b][h*rows*d : (h+1)*rows*d]
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("block %d head %d k row mismatch at %d", b, h, i)
				}
			}
		}
	}

	// A compacted view must be usable as a chunked-prefill seed.
	m2, err := New(cfg, 7, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	m2.BeginPrefill(len(prompt))
	m2.ResumePrefillPrefix(dec)
	tok2, done := m2.PrefillChunk(prompt[rows:])
	if !done {
		t.Fatal("prefill not done after final chunk")
	}
	m3, err := New(cfg, 7, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if tok3 := m3.Prefill(prompt); tok2 != tok3 {
		t.Fatalf("seeded prefill token %d != direct %d", tok2, tok3)
	}
}

// TestSnapshotWireFullRoundTrip checks a restorable snapshot survives the
// codec with identical bookkeeping and payload bytes.
func TestSnapshotWireFullRoundTrip(t *testing.T) {
	cfg, err := ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, 11, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	tok := m.Prefill([]int{10, 20, 30, 40})
	for i := 0; i < 3; i++ {
		tok = m.DecodeStep(tok)
	}
	snap := &Snapshot{}
	m.Checkpoint(snap)
	enc := AppendSnapshot(nil, snap)
	dec, n, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !bytes.Equal(AppendSnapshot(nil, dec), enc) {
		t.Fatal("re-encode not bit-identical")
	}
	if dec.ArchFingerprint() != cfg.ArchFingerprint() {
		t.Fatal("fingerprint mismatch against source config")
	}
}
