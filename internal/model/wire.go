package model

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Wire codec for Snapshot: a flat little-endian layout the internal/wire
// envelope wraps for cross-process session migration and durable parking.
// The encoding is canonical — the same snapshot always produces the same
// bytes — so encode→decode→encode is bit-identical, which the router relies
// on when it compares checkpoints.
//
// Layout (all little-endian):
//
//	u32 family | u32 blocks | u32 hidden | u32 maxSeq | u32 headDim
//	u32 nextStep | u32 lastTok | u32 promptLen | u32 rows
//	u32 lastStreamNorm (float32 bits)
//	blocks × [ rows×hidden × u32 k bits, rows×hidden × u32 v bits ]
//
// KV rows are written packed at rows (head-blocked: head h's run starts at
// h*rows*headDim), regardless of the source snapshot's stride, so encoding a
// Prefix view compacts it — the decoded snapshot owns its buffers and has
// stride == rows.

// snapWireHeader is the fixed bookkeeping prefix: 10 u32 fields.
const snapWireHeader = 10 * 4

// ArchFingerprint returns a stable 64-bit identity of the model architecture
// the snapshot requires: FNV-64a over (family, blocks, hidden, maxSeq,
// headDim). Two snapshots are restore-compatible iff their fingerprints
// match; the wire envelope carries it so a receiver can reject a blob for
// the wrong model family before decoding megabytes of KV payload.
func (s *Snapshot) ArchFingerprint() uint64 {
	return archFingerprint(s.family, s.blocks, s.hidden, s.maxSeq, s.headDim)
}

// ArchFingerprint returns the configuration's snapshot-compatibility
// fingerprint; see Snapshot.ArchFingerprint.
func (c Config) ArchFingerprint() uint64 {
	return archFingerprint(c.Family, c.Blocks, c.Hidden, c.MaxSeq, c.HeadDim())
}

func archFingerprint(family Family, blocks, hidden, maxSeq, headDim int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range [...]int{int(family), blocks, hidden, maxSeq, headDim} {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// AppendSnapshot appends the snapshot's wire encoding to dst and returns the
// extended slice. Empty snapshots (never captured) encode to a header the
// decoder rejects; callers that need an error should check Rows() first.
func AppendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = appendWireU32(dst, uint32(s.family))
	dst = appendWireU32(dst, uint32(s.blocks))
	dst = appendWireU32(dst, uint32(s.hidden))
	dst = appendWireU32(dst, uint32(s.maxSeq))
	dst = appendWireU32(dst, uint32(s.headDim))
	dst = appendWireU32(dst, uint32(s.nextStep))
	dst = appendWireU32(dst, uint32(s.lastTok))
	dst = appendWireU32(dst, uint32(s.promptLen))
	dst = appendWireU32(dst, uint32(s.rows))
	dst = appendWireU32(dst, math.Float32bits(s.lastStreamNorm))
	if s.rows == 0 {
		return dst
	}
	d := s.headDim
	heads := s.hidden / d
	stride := s.srcStride()
	for b := 0; b < s.blocks; b++ {
		for h := 0; h < heads; h++ {
			dst = appendWireF32s(dst, s.k[b][h*stride*d:h*stride*d+s.rows*d])
		}
		for h := 0; h < heads; h++ {
			dst = appendWireF32s(dst, s.v[b][h*stride*d:h*stride*d+s.rows*d])
		}
	}
	return dst
}

// DecodeSnapshot parses one wire-encoded snapshot from the front of data,
// returning the snapshot and the number of bytes consumed. The decoded
// snapshot owns its buffers (stride == rows). Every dimension is validated
// before any payload-sized allocation, so hostile input cannot balloon
// memory or panic: errors are returned, never thrown.
func DecodeSnapshot(data []byte) (*Snapshot, int, error) {
	if len(data) < snapWireHeader {
		return nil, 0, fmt.Errorf("model: snapshot wire header truncated: %d bytes", len(data))
	}
	u32 := func(i int) uint32 { return binary.LittleEndian.Uint32(data[i*4:]) }
	s := &Snapshot{
		family:    Family(u32(0)),
		blocks:    int(u32(1)),
		hidden:    int(u32(2)),
		maxSeq:    int(u32(3)),
		headDim:   int(u32(4)),
		nextStep:  int(u32(5)),
		lastTok:   int(u32(6)),
		promptLen: int(u32(7)),
		rows:      int(u32(8)),
	}
	s.lastStreamNorm = math.Float32frombits(u32(9))
	s.stride = s.rows

	const dimCap = 1 << 20 // generous sanity bound well above any zoo model
	switch {
	case s.family > FamilyLlama:
		return nil, 0, fmt.Errorf("model: snapshot wire: unknown family %d", s.family)
	case s.blocks < 1 || s.blocks > dimCap:
		return nil, 0, fmt.Errorf("model: snapshot wire: bad block count %d", s.blocks)
	case s.hidden < 1 || s.hidden > dimCap:
		return nil, 0, fmt.Errorf("model: snapshot wire: bad hidden size %d", s.hidden)
	case s.maxSeq < 1 || s.maxSeq > dimCap:
		return nil, 0, fmt.Errorf("model: snapshot wire: bad max seq %d", s.maxSeq)
	case s.headDim < 1 || s.headDim > s.hidden || s.hidden%s.headDim != 0:
		return nil, 0, fmt.Errorf("model: snapshot wire: head dim %d does not divide hidden %d", s.headDim, s.hidden)
	case s.rows < 1 || s.rows > s.maxSeq:
		return nil, 0, fmt.Errorf("model: snapshot wire: rows %d outside [1,%d]", s.rows, s.maxSeq)
	case s.nextStep == 0:
		// A bare prefix view is legal: no resume point, only KV rows.
		if s.lastTok != 0 || s.promptLen != 0 {
			return nil, 0, fmt.Errorf("model: snapshot wire: prefix view with resume fields set")
		}
	case s.promptLen < 1 || s.promptLen > s.rows:
		return nil, 0, fmt.Errorf("model: snapshot wire: prompt length %d outside [1,%d]", s.promptLen, s.rows)
	case s.rows != s.promptLen+s.nextStep-1:
		return nil, 0, fmt.Errorf("model: snapshot wire: rows %d != promptLen %d + step %d",
			s.rows, s.promptLen, s.nextStep-1)
	case s.lastTok < 0 || s.lastTok > dimCap:
		return nil, 0, fmt.Errorf("model: snapshot wire: bad last token %d", s.lastTok)
	}

	// Payload size in uint64 to keep hostile headers from overflowing int
	// arithmetic; the available-bytes check bounds the allocation.
	span := uint64(s.rows) * uint64(s.hidden)
	need := uint64(snapWireHeader) + uint64(s.blocks)*2*span*4
	if uint64(len(data)) < need {
		return nil, 0, fmt.Errorf("model: snapshot wire: payload truncated: have %d bytes, need %d", len(data), need)
	}
	s.k = make([][]float32, s.blocks)
	s.v = make([][]float32, s.blocks)
	off := snapWireHeader
	for b := 0; b < s.blocks; b++ {
		s.k[b], off = decodeWireF32s(data, off, int(span))
		s.v[b], off = decodeWireF32s(data, off, int(span))
	}
	return s, off, nil
}

func appendWireU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendWireF32s(dst []byte, src []float32) []byte {
	for _, f := range src {
		dst = appendWireU32(dst, math.Float32bits(f))
	}
	return dst
}

func decodeWireF32s(data []byte, off, n int) ([]float32, int) {
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return out, off
}
