package model

import (
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// TestPrefillDecodeStepMatchesGenerate: the resumable API must be the same
// computation as Generate, token for token.
func TestPrefillDecodeStepMatchesGenerate(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			m := MustNew(cfg, 11, numerics.FP16)
			prompt := []int{5, 9, 21, 33}
			const n = 12
			want := m.Generate(prompt, n)

			got := make([]int, 0, n)
			tok := m.Prefill(prompt)
			got = append(got, tok)
			for s := 1; s < n; s++ {
				tok = m.DecodeStep(tok)
				got = append(got, tok)
			}
			if !equalInts(want, got) {
				t.Fatalf("Prefill/DecodeStep = %v, Generate = %v", got, want)
			}
		})
	}
}

// TestSnapshotForkBitwise: restoring a mid-generation snapshot into a fresh
// replica must reproduce the remaining tokens bit-identically, for
// checkpoints at the first, a middle, and the last decode step.
func TestSnapshotForkBitwise(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			m := MustNew(cfg, 7, numerics.FP16)
			prompt := []int{3, 14, 15, 9, 2, 6}
			const n = 10
			want := m.Generate(prompt, n)

			// Re-run, snapshotting before steps 1, n/2 and n-1.
			snaps := map[int]*Snapshot{1: {}, n / 2: {}, n - 1: {}}
			tok := m.Prefill(prompt)
			for s := 1; s < n; s++ {
				if snap := snaps[s]; snap != nil {
					m.Checkpoint(snap)
					if snap.NextStep() != s {
						t.Fatalf("NextStep() = %d, want %d", snap.NextStep(), s)
					}
				}
				tok = m.DecodeStep(tok)
			}

			replica := MustNew(cfg, 7, numerics.FP16)
			for s, snap := range snaps {
				got := append([]int(nil), want[:s]...)
				tok := replica.Restore(snap)
				if tok != want[s-1] {
					t.Fatalf("step %d: Restore returned token %d, want %d", s, tok, want[s-1])
				}
				for i := s; i < n; i++ {
					tok = replica.DecodeStep(tok)
					got = append(got, tok)
				}
				if !equalInts(want, got) {
					t.Errorf("fork at step %d: got %v, want %v", s, got, want)
				}
			}
		})
	}
}

// TestSnapshotSurvivesSourceMutation: a snapshot is a deep copy — decoding
// past the checkpoint on the source model must not corrupt it.
func TestSnapshotSurvivesSourceMutation(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	m := MustNew(cfg, 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4}
	const n = 8
	want := m.Generate(prompt, n)

	var snap Snapshot
	tok := m.Prefill(prompt)
	for s := 1; s < n; s++ {
		if s == 2 {
			m.Checkpoint(&snap)
		}
		tok = m.DecodeStep(tok)
	}

	// The source has long since advanced; restore into the same model.
	got := append([]int(nil), want[:2]...)
	tok = m.Restore(&snap)
	for s := 2; s < n; s++ {
		tok = m.DecodeStep(tok)
		got = append(got, tok)
	}
	if !equalInts(want, got) {
		t.Fatalf("restore after source mutation: got %v, want %v", got, want)
	}
}

// TestSnapshotHooksObserveForkedSteps: a hook registered on the restored
// replica sees exactly the suffix steps with the right step numbers.
func TestSnapshotHooksObserveForkedSteps(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 5, numerics.FP16)
	prompt := []int{4, 8, 15}
	const n = 6
	var snap Snapshot
	tok := m.Prefill(prompt)
	for s := 1; s < n; s++ {
		if s == 3 {
			m.Checkpoint(&snap)
		}
		tok = m.DecodeStep(tok)
	}

	steps := map[int]bool{}
	m.RegisterHook(func(ctx HookCtx, _ *tensor.Tensor) {
		steps[ctx.Step] = true
		if ctx.FirstToken {
			t.Error("forked continuation must never report FirstToken")
		}
	})
	defer m.ClearHooks()
	tok = m.Restore(&snap)
	for s := 3; s < n; s++ {
		tok = m.DecodeStep(tok)
	}
	for s := 3; s < n; s++ {
		if !steps[s] {
			t.Errorf("hook never saw step %d", s)
		}
	}
	if steps[0] || steps[1] || steps[2] {
		t.Errorf("hook saw pre-checkpoint steps: %v", steps)
	}
}

// TestSnapshotMemoryBytes: the KV payload must match the documented bound,
// Blocks × 2 × rows × Hidden float32s.
func TestSnapshotMemoryBytes(t *testing.T) {
	cfg := smallCfg(FamilyGPTJ)
	m := MustNew(cfg, 9, numerics.FP16)
	prompt := []int{1, 2, 3, 4, 5}
	m.Prefill(prompt)
	tok := m.DecodeStep(m.st.lastTok)
	_ = tok

	var snap Snapshot
	m.Checkpoint(&snap)
	rows := len(prompt) + 1 // prefill + one decode step
	if snap.Rows() != rows {
		t.Fatalf("Rows() = %d, want %d", snap.Rows(), rows)
	}
	want := cfg.Blocks * 2 * rows * cfg.Hidden * 4
	if got := snap.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes() = %d, want %d", got, want)
	}
}

// TestSnapshotRejectsWrongArchitecture: restoring into a different shape
// must fail loudly rather than corrupt the KV slabs.
func TestSnapshotRejectsWrongArchitecture(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	m.Prefill([]int{1, 2, 3})
	m.DecodeStep(m.st.lastTok)
	var snap Snapshot
	m.Checkpoint(&snap)

	other := smallCfg(FamilyLlama)
	other.Blocks = 3
	m2 := MustNew(other, 3, numerics.FP16)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore into a mismatched architecture did not panic")
		}
	}()
	m2.Restore(&snap)
}

// TestGenerateIntoAllocFree: with a caller-reused destination, steady-state
// generation must not touch the allocator at all.
func TestGenerateIntoAllocFree(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	m := MustNew(cfg, 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4}
	buf := make([]int, 0, 8)
	m.GenerateInto(buf, prompt, 8) // warm up scratch, rope table, KV slabs

	avg := testing.AllocsPerRun(10, func() {
		m.GenerateInto(buf, prompt, 8)
	})
	if avg != 0 {
		t.Fatalf("GenerateInto allocates %.1f objects/run after warm-up, want 0", avg)
	}
}

// TestRestoreAllocFree: a restore is a handful of copies into preallocated
// slabs — no allocation.
func TestRestoreAllocFree(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	m := MustNew(cfg, 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4}
	tok := m.Prefill(prompt)
	m.DecodeStep(tok)
	var snap Snapshot
	m.Checkpoint(&snap)

	avg := testing.AllocsPerRun(10, func() {
		tok := m.Restore(&snap)
		for s := snap.NextStep(); s < 8; s++ {
			tok = m.DecodeStep(tok)
		}
	})
	if avg != 0 {
		t.Fatalf("Restore + suffix decode allocates %.1f objects/run, want 0", avg)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
