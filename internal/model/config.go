package model

import (
	"fmt"

	"ft2/internal/tensor"
)

// Config describes a model in the zoo. The scaled-down dimensions keep
// inference tractable on a CPU while preserving every architectural feature
// the criticality analysis depends on; RefParams records the real model's
// parameter count for Table 2 and the performance model.
type Config struct {
	Name       string
	Family     Family
	Vocab      int
	Hidden     int
	Heads      int
	FFN        int // MLP inner width
	Blocks     int
	MaxSeq     int
	Activation tensor.ActivationKind
	AttnBias   bool // QKV/out bias (OPT: yes, Qwen: QKV only in the real model; simplified to all)
	// LogitScale multiplies the raw logits (cosmetic for greedy decoding).
	LogitScale float32
	// TeacherWeight γ adds a deterministic next-token prior to the logits,
	// standing in for a trained model's low per-token entropy: random-weight
	// models have near-tie logit gaps, so any perturbation flips tokens,
	// which a 7B trained model's confident margins do not allow. With γ, a
	// hidden-state distortion flips a token only when its induced logit
	// deviation exceeds γ — small in-bound corruptions stay masked, extreme
	// out-of-bound values and NaN do not, reproducing the paper's
	// fault-magnitude separation at small scale (see DESIGN.md §5).
	TeacherWeight float32

	// Real-model metadata for Table 2 and the perf model.
	RefParams float64 // parameters of the reference model (e.g. 6.66e9)
	RefHidden int     // hidden size of the reference model
	RefBlocks int     // decoder blocks of the reference model
	TaskTypes string  // "QA" or "QA/Math"
}

// HeadDim returns Hidden/Heads, panicking on a non-divisible config.
func (c Config) HeadDim() int {
	if c.Hidden%c.Heads != 0 {
		panic(fmt.Sprintf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads))
	}
	return c.Hidden / c.Heads
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Vocab <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.FFN <= 0 || c.Blocks <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model %s: non-positive dimension", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.HeadDim()%2 != 0 && c.Family != FamilyOPT:
		return fmt.Errorf("model %s: rotary families need an even head dim", c.Name)
	}
	return nil
}

// LinearLayers enumerates every linear layer of the model in forward order.
func (c Config) LinearLayers() []LayerRef {
	kinds := c.Family.LayerKinds()
	out := make([]LayerRef, 0, c.Blocks*len(kinds))
	for b := 0; b < c.Blocks; b++ {
		for _, k := range kinds {
			out = append(out, LayerRef{Block: b, Kind: k})
		}
	}
	return out
}

// OutDim returns the output width of a layer kind under this config.
func (c Config) OutDim(k LayerKind) int {
	switch k {
	case KProj, QProj, VProj, OutProj, FC2, DownProj:
		return c.Hidden
	case FC1, GateProj, UpProj:
		return c.FFN
	default:
		panic("model: unknown layer kind")
	}
}

// InDim returns the input width of a layer kind under this config.
func (c Config) InDim(k LayerKind) int {
	switch k {
	case KProj, QProj, VProj, OutProj, FC1, GateProj, UpProj:
		return c.Hidden
	case FC2, DownProj:
		return c.FFN
	default:
		panic("model: unknown layer kind")
	}
}

// ParamCount returns the simulated model's exact parameter count.
func (c Config) ParamCount() int {
	n := c.Vocab * c.Hidden // token embedding (tied LM head)
	if c.Family == FamilyOPT {
		n += c.MaxSeq * c.Hidden // learned positions
	}
	for _, ref := range c.LinearLayers() {
		n += c.InDim(ref.Kind) * c.OutDim(ref.Kind)
		if c.layerHasBias(ref.Kind) {
			n += c.OutDim(ref.Kind)
		}
	}
	// Norms: per block 2 norms (+ biases for LayerNorm families) + final norm.
	perNorm := c.Hidden
	if c.Family != FamilyLlama {
		perNorm *= 2 // gamma + beta
	}
	n += (2*c.Blocks + 1) * perNorm
	return n
}

func (c Config) layerHasBias(k LayerKind) bool {
	switch k {
	case KProj, QProj, VProj, OutProj:
		return c.AttnBias
	case FC1, FC2:
		return c.Family != FamilyLlama
	default:
		return false
	}
}

// Zoo returns the seven-model zoo of Table 2, scaled down per DESIGN.md.
// Names carry a "-sim" suffix to make the substitution explicit.
func Zoo() []Config {
	return []Config{
		{
			Name: "opt-6.7b-sim", Family: FamilyOPT,
			Vocab: 384, Hidden: 96, Heads: 8, FFN: 384, Blocks: 3, MaxSeq: 256,
			Activation: tensor.ActReLU, AttnBias: true, LogitScale: 6, TeacherWeight: 4,
			RefParams: 6.66e9, RefHidden: 4096, RefBlocks: 32, TaskTypes: "QA",
		},
		{
			Name: "opt-2.7b-sim", Family: FamilyOPT,
			Vocab: 384, Hidden: 64, Heads: 8, FFN: 256, Blocks: 2, MaxSeq: 256,
			Activation: tensor.ActReLU, AttnBias: true, LogitScale: 6, TeacherWeight: 4,
			RefParams: 2.65e9, RefHidden: 2560, RefBlocks: 32, TaskTypes: "QA",
		},
		{
			Name: "gptj-6b-sim", Family: FamilyGPTJ,
			Vocab: 384, Hidden: 96, Heads: 8, FFN: 384, Blocks: 3, MaxSeq: 256,
			Activation: tensor.ActGELU, AttnBias: false, LogitScale: 6, TeacherWeight: 4,
			RefParams: 6.05e9, RefHidden: 4096, RefBlocks: 28, TaskTypes: "QA",
		},
		{
			Name: "llama2-7b-sim", Family: FamilyLlama,
			Vocab: 384, Hidden: 96, Heads: 8, FFN: 264, Blocks: 3, MaxSeq: 256,
			Activation: tensor.ActSiLU, AttnBias: false, LogitScale: 6, TeacherWeight: 4,
			RefParams: 6.74e9, RefHidden: 4096, RefBlocks: 32, TaskTypes: "QA/Math",
		},
		{
			Name: "vicuna-7b-sim", Family: FamilyLlama,
			Vocab: 384, Hidden: 96, Heads: 8, FFN: 264, Blocks: 3, MaxSeq: 256,
			Activation: tensor.ActSiLU, AttnBias: false, LogitScale: 6, TeacherWeight: 4,
			RefParams: 6.74e9, RefHidden: 4096, RefBlocks: 32, TaskTypes: "QA",
		},
		{
			Name: "qwen2-7b-sim", Family: FamilyLlama,
			Vocab: 384, Hidden: 96, Heads: 8, FFN: 288, Blocks: 3, MaxSeq: 256,
			Activation: tensor.ActSiLU, AttnBias: true, LogitScale: 6, TeacherWeight: 4,
			RefParams: 7.62e9, RefHidden: 3584, RefBlocks: 28, TaskTypes: "QA/Math",
		},
		{
			Name: "qwen2-1.5b-sim", Family: FamilyLlama,
			Vocab: 384, Hidden: 64, Heads: 8, FFN: 192, Blocks: 2, MaxSeq: 256,
			Activation: tensor.ActSiLU, AttnBias: true, LogitScale: 6, TeacherWeight: 4,
			RefParams: 1.54e9, RefHidden: 1536, RefBlocks: 28, TaskTypes: "QA",
		},
	}
}

// ConfigByName looks up a zoo config.
func ConfigByName(name string) (Config, error) {
	for _, c := range Zoo() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: no zoo config named %q", name)
}
