package model

import (
	"testing"

	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// Causality: the first generated token must depend only on the prompt, so
// two prompts that share a prefix and differ afterwards produce identical
// activations for the shared positions. We verify via hooks on the prefill
// pass of the shorter prompt vs the longer one.
func TestCausalMaskProperty(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		cfg := smallCfg(f)
		m := MustNew(cfg, 13, numerics.FP16)

		capture := func(prompt []int) map[LayerRef][]float32 {
			out := make(map[LayerRef][]float32)
			h := m.RegisterHook(func(ctx HookCtx, tens *tensor.Tensor) {
				if ctx.Step != 0 || ctx.Site != SiteLinearOut {
					return
				}
				// Keep the first row (position 0) of every layer output.
				out[ctx.Layer] = append([]float32(nil), tens.Row(0)...)
			})
			m.Generate(prompt, 1)
			m.RemoveHook(h)
			return out
		}

		a := capture([]int{5, 9, 13, 17})
		b := capture([]int{5, 60, 61, 62}) // same first token, different tail

		for ref, rowA := range a {
			rowB := b[ref]
			for i := range rowA {
				if rowA[i] != rowB[i] {
					t.Fatalf("%v/%v: position 0 activations depend on future tokens", f, ref)
				}
			}
		}
	}
}

// The attention output must be a convex combination of V rows: with all V
// values bounded by M, no attention output can exceed M. This is the
// mechanism that keeps K/Q faults non-critical (scores only reweight).
func TestAttentionOutputBoundedByV(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 3, numerics.FP16)

	var vMax, attnInMax float32
	m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		if ctx.Site != SiteLinearOut {
			return
		}
		switch ctx.Layer.Kind {
		case VProj:
			_, hi := out.MinMax()
			lo, _ := out.MinMax()
			if hi > vMax {
				vMax = hi
			}
			if -lo > vMax {
				vMax = -lo
			}
		case OutProj:
			// ctx.Input is the attention context (pre-out_proj).
			lo, hi := ctx.Input.MinMax()
			if hi > attnInMax {
				attnInMax = hi
			}
			if -lo > attnInMax {
				attnInMax = -lo
			}
		}
	})
	m.Generate([]int{4, 5, 6, 7, 8}, 6)
	m.ClearHooks()
	if attnInMax > vMax*1.01 {
		t.Errorf("attention context max %g exceeds V max %g (not a convex combination?)", attnInMax, vMax)
	}
}

// A huge K value saturates the softmax but cannot blow up the attention
// output — the scaling/softmax damping behind the K/Q non-criticality.
func TestKFaultDampedBySoftmax(t *testing.T) {
	cfg := smallCfg(FamilyOPT)
	m := MustNew(cfg, 3, numerics.FP16)

	var ctxMax float32
	m.RegisterHook(func(ctx HookCtx, out *tensor.Tensor) {
		if ctx.Site != SiteLinearOut {
			return
		}
		if ctx.Layer == (LayerRef{0, KProj}) && ctx.Step == 0 {
			out.Data[0] = 48000 // huge K value
		}
		if ctx.Layer == (LayerRef{0, OutProj}) && ctx.Step == 0 {
			lo, hi := ctx.Input.MinMax()
			if -lo > hi {
				hi = -lo
			}
			ctxMax = hi
		}
	})
	m.Generate([]int{4, 5, 6, 7}, 1)
	m.ClearHooks()
	// The attention context must stay at the scale of legit V values (no
	// 48000-magnitude blow-up).
	if ctxMax > 100 {
		t.Errorf("huge K value leaked into the attention output: ctx max %g", ctxMax)
	}
}

// GPT-J's parallel block must differ from OPT's sequential block given the
// same dims: the architectures are genuinely distinct.
func TestGPTJParallelPathDiffersFromOPT(t *testing.T) {
	opt := MustNew(smallCfg(FamilyOPT), 21, numerics.FP16)
	gptj := MustNew(smallCfg(FamilyGPTJ), 21, numerics.FP16)
	a := opt.Generate([]int{4, 5, 6}, 8)
	b := gptj.Generate([]int{4, 5, 6}, 8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("OPT and GPT-J generations identical — parallel path suspect")
	}
}
