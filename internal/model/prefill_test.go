package model

import (
	"testing"

	"ft2/internal/numerics"
)

// chunkedPrefill drives BeginPrefill/PrefillChunk over the prompt in chunks
// of the given size and returns the first token.
func chunkedPrefill(m *Model, prompt []int, chunk int) int {
	m.BeginPrefill(len(prompt))
	for pos := 0; pos < len(prompt); {
		n := chunk
		if rem := len(prompt) - pos; n > rem {
			n = rem
		}
		tok, done := m.PrefillChunk(prompt[pos : pos+n])
		pos += n
		if done {
			if pos != len(prompt) {
				panic("done before the final chunk")
			}
			return tok
		}
	}
	panic("prefill never completed")
}

// kvEqual compares two snapshots' KV payloads bit-for-bit.
func kvEqual(a, b *Snapshot) bool {
	if a.rows != b.rows || len(a.k) != len(b.k) {
		return false
	}
	for blk := range a.k {
		for i := range a.k[blk] {
			if a.k[blk][i] != b.k[blk][i] || a.v[blk][i] != b.v[blk][i] {
				return false
			}
		}
	}
	return true
}

// TestPrefillChunkBitIdentical: a chunked prefill must leave state — first
// token, KV bits, and the whole greedy continuation — identical to the
// single-pass Prefill, for every family and chunk size including 1.
func TestPrefillChunkBitIdentical(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			m := MustNew(cfg, 11, numerics.FP16)
			prompt := []int{5, 9, 21, 33, 2, 40, 7}
			const n = 8
			want := m.Generate(prompt, n)
			var wantSnap Snapshot
			m.Prefill(prompt)
			m.Checkpoint(&wantSnap)

			for _, chunk := range []int{1, 2, 3, 5, len(prompt)} {
				got := make([]int, 0, n)
				tok := chunkedPrefill(m, prompt, chunk)
				var gotSnap Snapshot
				m.Checkpoint(&gotSnap)
				if !kvEqual(&wantSnap, &gotSnap) {
					t.Fatalf("chunk=%d: prefill KV differs from single-pass", chunk)
				}
				got = append(got, tok)
				for s := 1; s < n; s++ {
					tok = m.DecodeStep(tok)
					got = append(got, tok)
				}
				if !equalInts(want, got) {
					t.Errorf("chunk=%d: got %v, want %v", chunk, got, want)
				}
			}
		})
	}
}

// TestResumePrefillPrefixBitIdentical: seeding a prefill from a cached
// prefix view and computing only the suffix must reproduce the cold
// generation bit-for-bit at every prefix depth, including depth 0.
func TestResumePrefillPrefixBitIdentical(t *testing.T) {
	for _, f := range []Family{FamilyOPT, FamilyGPTJ, FamilyLlama} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := smallCfg(f)
			donor := MustNew(cfg, 7, numerics.FP16)
			prompt := []int{3, 14, 15, 9, 2, 6, 26, 5}
			const n = 8
			want := donor.Generate(prompt, n)

			// Cache entry: the full-prompt KV captured right after prefill.
			donor.Prefill(prompt)
			var cached Snapshot
			donor.Checkpoint(&cached)
			var wantSnap Snapshot
			donor.Prefill(prompt)
			donor.Checkpoint(&wantSnap)

			m := MustNew(cfg, 7, numerics.FP16)
			for _, rows := range []int{0, 1, len(prompt) / 2, len(prompt) - 1} {
				m.BeginPrefill(len(prompt))
				m.ResumePrefillPrefix(cached.Prefix(rows))
				if m.st.PrefillPos() != rows {
					t.Fatalf("rows=%d: PrefillPos() = %d", rows, m.st.PrefillPos())
				}
				tok, done := m.PrefillChunk(prompt[rows:])
				if !done {
					t.Fatalf("rows=%d: suffix chunk did not complete", rows)
				}
				var gotSnap Snapshot
				m.Checkpoint(&gotSnap)
				if !kvEqual(&wantSnap, &gotSnap) {
					t.Fatalf("rows=%d: prefix-seeded KV differs from cold prefill", rows)
				}
				got := append(make([]int, 0, n), tok)
				for s := 1; s < n; s++ {
					tok = m.DecodeStep(tok)
					got = append(got, tok)
				}
				if !equalInts(want, got) {
					t.Errorf("rows=%d: got %v, want %v", rows, got, want)
				}
			}
		})
	}
}

// TestSnapshotPrefixBounds: Prefix must reject out-of-range truncations and
// allow the full [0, Rows()] range.
func TestSnapshotPrefixBounds(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	m.Prefill([]int{1, 2, 3, 4})
	var snap Snapshot
	m.Checkpoint(&snap)

	if v := snap.Prefix(0); v.Rows() != 0 {
		t.Fatalf("Prefix(0).Rows() = %d", v.Rows())
	}
	if v := snap.Prefix(snap.Rows()); v.Rows() != snap.Rows() {
		t.Fatalf("Prefix(Rows()).Rows() = %d", v.Rows())
	}
	for _, bad := range []int{-1, snap.Rows() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Prefix(%d) did not panic", bad)
				}
			}()
			snap.Prefix(bad)
		}()
	}
}

// TestRestoreRejectsPrefixView: a prefix view has no resume point, so a full
// Restore of one must panic instead of resuming a bogus generation.
func TestRestoreRejectsPrefixView(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	m.Prefill([]int{1, 2, 3, 4})
	var snap Snapshot
	m.Checkpoint(&snap)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore of a prefix view did not panic")
		}
	}()
	m.Restore(snap.Prefix(2))
}

// TestResumePrefillPrefixRejectsMismatch: architecture mismatches — here a
// model with a smaller MaxSeq than the snapshot's — must panic loudly.
func TestResumePrefillPrefixRejectsMismatch(t *testing.T) {
	cfg := smallCfg(FamilyLlama)
	donor := MustNew(cfg, 3, numerics.FP16)
	donor.Prefill([]int{1, 2, 3, 4})
	var snap Snapshot
	donor.Checkpoint(&snap)

	small := cfg
	small.MaxSeq = cfg.MaxSeq / 2
	m := MustNew(small, 3, numerics.FP16)
	m.BeginPrefill(8)
	defer func() {
		if recover() == nil {
			t.Fatal("ResumePrefillPrefix into a smaller-MaxSeq model did not panic")
		}
	}()
	m.ResumePrefillPrefix(snap.Prefix(2))
}

// TestResumePrefillPrefixRejectsShortPrompt: a prompt no longer than the
// cached prefix leaves no suffix row for the readout, so seeding must panic
// (the serving cache caps lookups at len(prompt)-1 to avoid this).
func TestResumePrefillPrefixRejectsShortPrompt(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	m.Prefill([]int{1, 2, 3, 4, 5, 6})
	var snap Snapshot
	m.Checkpoint(&snap)

	for _, promptLen := range []int{3, 6} { // strictly shorter, and exactly equal
		m.BeginPrefill(promptLen)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("promptLen=%d: prefix of %d rows accepted", promptLen, snap.Rows())
				}
			}()
			m.ResumePrefillPrefix(snap.Prefix(snap.Rows()))
		}()
	}
}

// TestMidPrefillGuards: a state mid-way through a chunked prefill must be
// unusable for decode, checkpointing, and re-seeding, and the chunk cursor
// must reject overruns and empty chunks.
func TestMidPrefillGuards(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4, 5, 6}
	m.BeginPrefill(len(prompt))
	if _, done := m.PrefillChunk(prompt[:2]); done {
		t.Fatal("partial chunk reported done")
	}
	if m.Started() {
		t.Fatal("Started() true mid-prefill")
	}
	if !m.st.Prefilling() {
		t.Fatal("Prefilling() false mid-prefill")
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s mid-prefill did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DecodeStep", func() { m.DecodeStep(1) })
	mustPanic("Checkpoint", func() { m.Checkpoint(&Snapshot{}) })
	mustPanic("ResumePrefillPrefix", func() { m.ResumePrefillPrefix(&Snapshot{}) })
	mustPanic("overrun chunk", func() { m.PrefillChunk(prompt[1:]) })
	mustPanic("empty chunk", func() { m.PrefillChunk(nil) })

	// Finish cleanly: the state must come out identical to a cold prefill.
	tok, done := m.PrefillChunk(prompt[2:])
	if !done {
		t.Fatal("final chunk did not complete")
	}
	if want := m.Prefill(prompt); want != tok {
		t.Fatalf("recovered chunked prefill token %d, cold %d", tok, want)
	}

	mustPanic("PrefillChunk after completion", func() { m.PrefillChunk(prompt[:1]) })
}

// TestChunkedPrefillAllocFree: the chunked path must stay off the allocator
// after warm-up just like the single-pass one — it runs inside serve slices.
func TestChunkedPrefillAllocFree(t *testing.T) {
	m := MustNew(smallCfg(FamilyLlama), 3, numerics.FP16)
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	chunkedPrefill(m, prompt, 3) // warm up scratch, rope table, KV slabs

	avg := testing.AllocsPerRun(10, func() {
		tok := chunkedPrefill(m, prompt, 3)
		for s := 1; s < 6; s++ {
			tok = m.DecodeStep(tok)
		}
	})
	if avg != 0 {
		t.Fatalf("chunked prefill allocates %.1f objects/run after warm-up, want 0", avg)
	}
}
