package model

import "ft2/internal/tensor"

// Site distinguishes where in the block a hook fires. Fault injection and
// most protections interpose on linear-layer outputs; Ranger protects
// activation outputs instead, so the engine exposes both sites.
type Site int

const (
	// SiteLinearOut fires on the raw output of a linear layer.
	SiteLinearOut Site = iota
	// SiteActivationOut fires on the output of the MLP activation that
	// follows FC1 (OPT/GPT-J) or GateProj (Llama family).
	SiteActivationOut
)

// String implements fmt.Stringer.
func (s Site) String() string {
	if s == SiteActivationOut {
		return "act_out"
	}
	return "linear_out"
}

// HookCtx describes the layer invocation a forward hook observes.
type HookCtx struct {
	Layer LayerRef
	Site  Site
	// Input is the tensor the layer consumed (nil at activation sites).
	// Redundant-execution protections recompute the layer output from it.
	Input *tensor.Tensor
	// Step is the generation step: 0 is the prefill pass that produces the
	// first token; step s>0 processes the s-th generated token.
	Step int
	// FirstToken is true during the prefill pass (Step == 0); FT2 profiles
	// bounds then and protects afterwards.
	FirstToken bool
}

// Hook observes — and may mutate in place — the output tensor of a linear
// layer, mirroring PyTorch forward hooks (the interposition point of
// PyTorchFI and of all the range-restriction protections). The tensor has
// one row per sequence position processed in this pass and one column per
// output neuron.
type Hook func(ctx HookCtx, out *tensor.Tensor)

// hookEntry pairs a hook with a registration handle for removal.
type hookEntry struct {
	id int
	fn Hook
}

// HookHandle identifies a registered hook for removal.
type HookHandle int

// RegisterHook appends a forward hook. Hooks run in registration order after
// every linear layer's output has been computed and passed through the
// precision gate — so an injector registered before a protector corrupts the
// value first and the protector then gets a chance to detect it, exactly the
// paper's fault/protection interleaving.
func (m *Model) RegisterHook(h Hook) HookHandle {
	m.nextHookID++
	m.hooks = append(m.hooks, hookEntry{id: m.nextHookID, fn: h})
	return HookHandle(m.nextHookID)
}

// RemoveHook unregisters a hook by handle; unknown handles are ignored.
func (m *Model) RemoveHook(h HookHandle) {
	for i, e := range m.hooks {
		if e.id == int(h) {
			m.hooks = append(m.hooks[:i], m.hooks[i+1:]...)
			return
		}
	}
}

// ClearHooks removes every registered hook.
func (m *Model) ClearHooks() { m.hooks = m.hooks[:0] }

// HookCount returns the number of registered hooks.
func (m *Model) HookCount() int { return len(m.hooks) }

func (m *Model) runHooks(ref LayerRef, site Site, in, out *tensor.Tensor) {
	if len(m.hooks) == 0 {
		return
	}
	ctx := HookCtx{Layer: ref, Site: site, Input: in, Step: m.st.step, FirstToken: m.st.step == 0}
	for _, e := range m.hooks {
		e.fn(ctx, out)
	}
	// Hooks mutate out through its raw Data (fault injection, clamping);
	// drop any cached derived state.
	out.MarkMutated()
}

// runBatchHooks fires each item's per-session hooks against a view of that
// item's row range of out (and of in, for redundant-execution protections),
// so hooks observe exactly the tensor shape — and therefore the flat neuron
// indexing — they see in single-session decode (1 row) or single-session
// chunked prefill (C rows). A prefill item's hooks run with FirstToken set,
// exactly as a model-level hook sees the prefill pass, so FT2 observes
// bounds over the range instead of clamping it. The views alias reusable
// headers in the scratch arena and are only valid for the duration of the
// hook call, like every hook tensor.
func (m *Model) runBatchHooks(ref LayerRef, site Site, in, out *tensor.Tensor, items []BatchItem) {
	any := false
	for i := range items {
		if len(items[i].Hooks) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	sc := m.scratch
	for i := range items {
		it := &items[i]
		if len(it.Hooks) == 0 {
			continue
		}
		// Tracked views: a hook that writes its rows (fault injectors do)
		// marks the view mutated, which propagates to the full batch
		// tensor so its cached finiteness can never go stale.
		sc.rowOut.BindRowsView(out, sc.itemLo[i], sc.itemRows[i])
		ctx := HookCtx{Layer: ref, Site: site, Step: it.State.step, FirstToken: it.State.step == 0}
		if in != nil {
			sc.rowIn.BindRowsView(in, sc.itemLo[i], sc.itemRows[i])
			ctx.Input = sc.rowIn
		}
		for _, h := range it.Hooks {
			h(ctx, sc.rowOut)
		}
	}
	out.MarkMutated()
}
