package abft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ft2/internal/tensor"
)

func randMat(rng *rand.Rand, r, c int) *tensor.Tensor {
	m := tensor.New(r, c)
	m.RandNormal(rng, 1)
	return m
}

func TestCleanMultiplicationPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 12, 20), randMat(rng, 20, 16)
	c, res, err := CheckedMatMul(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("clean multiplication must not trigger detection")
	}
	want := tensor.MatMul(a, b)
	if !c.Equal(want) {
		t.Error("checked product differs from plain product")
	}
}

func TestSingleCorruptionCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 8, 10), randMat(rng, 10, 6)
	want := tensor.MatMul(a, b)
	c, res, err := CheckedMatMul(a, b, func(m *tensor.Tensor) {
		m.Set(3, 4, m.At(3, 4)+1000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.Corrected {
		t.Fatalf("single corruption must be detected and corrected: %+v", res)
	}
	if res.Row != 3 || res.Col != 4 {
		t.Errorf("located (%d,%d), want (3,4)", res.Row, res.Col)
	}
	for i := range want.Data {
		if diff := math.Abs(float64(c.Data[i] - want.Data[i])); diff > 1e-3 {
			t.Fatalf("repaired product wrong at %d: diff %g", i, diff)
		}
	}
}

func TestNaNCorruptionCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 6, 8), randMat(rng, 8, 5)
	c, res, err := CheckedMatMul(a, b, func(m *tensor.Tensor) {
		m.Set(2, 2, float32(math.NaN()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Corrected || res.Row != 2 || res.Col != 2 {
		t.Fatalf("NaN corruption must be located and repaired: %+v", res)
	}
	if c.HasNaN() {
		t.Error("repaired product still contains NaN")
	}
}

func TestDoubleCorruptionDetectedNotCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(rng, 6, 8), randMat(rng, 8, 5)
	_, res, err := CheckedMatMul(a, b, func(m *tensor.Tensor) {
		m.Set(1, 1, 500)
		m.Set(3, 2, -500)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("double corruption must be detected")
	}
	if res.Corrected {
		t.Error("two corrupted elements in different rows/cols cannot be single-corrected")
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, _, err := CheckedMatMul(randMat(rng, 2, 3), randMat(rng, 4, 2), nil); err == nil {
		t.Error("shape mismatch must error")
	}
}

// Property: for random matrices and a random single corruption large enough
// to clear the rounding tolerance, ABFT always detects, locates, and
// repairs.
func TestSingleCorruptionProperty(t *testing.T) {
	f := func(seed int64, ri, ci uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 7, 9), randMat(rng, 9, 8)
		i, j := int(ri)%7, int(ci)%8
		_, res, err := CheckedMatMul(a, b, func(m *tensor.Tensor) {
			m.Set(i, j, m.At(i, j)+300)
		})
		if err != nil {
			return false
		}
		return res.Detected && res.Corrected && res.Row == i && res.Col == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: clean products never false-positive across sizes.
func TestNoFalsePositivesProperty(t *testing.T) {
	f := func(seed int64, mr, kr, nr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+int(mr)%10, 1+int(kr)%10, 1+int(nr)%10
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		_, res, err := CheckedMatMul(a, b, nil)
		return err == nil && !res.Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCheckedMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randMat(rng, 64, 64), randMat(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CheckedMatMul(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlainMatMulBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randMat(rng, 64, 64), randMat(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}
