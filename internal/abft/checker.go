package abft

import (
	"math"

	"ft2/internal/model"
	"ft2/internal/tensor"
)

// LinearChecker is ABFT adapted to the decode hot path as a forward hook.
// Instead of checksum-extending a full matrix product (CheckedMatMul's
// O(m·n·k) framing), it verifies each linear-layer output row against a
// reference column-sum of the weight matrix captured at build time:
//
//	Σ_o out[r,o]  ≈  Σ_i x[r,i]·colSumW[i] + Σ_o b[o]
//
// which costs O(in+out) per row per layer — negligible next to the O(in·out)
// matmul it guards. On a mismatch the layer is recomputed from its input and
// differing elements repaired in place, which corrects any transient fault
// in the output (in-range flips included — the blind spot of pure range
// restriction). A detection the recompute *agrees* with is evidence the
// weights themselves no longer match the reference sums — the live suspicion
// signal for persistent weight corruption, surfaced as Uncorrectable.

// RowTolerance bounds the relative row-sum discrepancy attributed to the
// FP16 precision gate (each output element is rounded to ~2^-11 relative,
// and the errors sum); it scales with the row's absolute mass.
const RowTolerance = 4e-3

// refSum is one layer's reference checksums.
type refSum struct {
	colSumW []float64 // Σ_o w[o,i] per input channel
	sumB    float64   // Σ_o b[o]
}

// RefSums holds the per-layer reference checksums of one weight
// parameterization. It is immutable after capture and safe to share across
// replicas built from the same (cfg, seed, dtype, storage) — their weights
// are bit-identical.
type RefSums struct {
	sums map[model.LayerRef]refSum
}

// CaptureRefSums computes reference checksums for every linear layer of the
// given kinds (all family kinds when none are given) from m's current
// weights. Capture it at build time, before any fault can land.
func CaptureRefSums(m *model.Model, kinds ...model.LayerKind) *RefSums {
	covered := make(map[model.LayerKind]bool, len(kinds))
	if len(kinds) == 0 {
		for _, k := range m.Cfg.Family.LayerKinds() {
			covered[k] = true
		}
	} else {
		for _, k := range kinds {
			covered[k] = true
		}
	}
	rs := &RefSums{sums: make(map[model.LayerRef]refSum)}
	for _, ref := range m.Cfg.LinearLayers() {
		if !covered[ref.Kind] {
			continue
		}
		w := m.Weight(ref)
		cs := make([]float64, w.Cols)
		for o := 0; o < w.Rows; o++ {
			for i, v := range w.Row(o) {
				cs[i] += float64(v)
			}
		}
		var sb float64
		for _, v := range m.Bias(ref) {
			sb += float64(v)
		}
		rs.sums[ref] = refSum{colSumW: cs, sumB: sb}
	}
	return rs
}

// Stats counts what a LinearChecker observed. Corrected counts repaired
// elements; Uncorrectable counts detections where the recomputation
// reproduced the flagged output — input-consistent corruption, i.e. the
// weights disagree with the build-time reference sums.
type Stats struct {
	Detected      int64
	Corrected     int64
	Uncorrectable int64
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Detected += s2.Detected
	s.Corrected += s2.Corrected
	s.Uncorrectable += s2.Uncorrectable
}

// LinearChecker verifies covered linear-layer outputs against reference
// checksums and repairs transient corruption by recomputation. It follows
// the model's single-owner contract: one checker per replica goroutine.
type LinearChecker struct {
	m       *model.Model
	refs    *RefSums
	covered [model.NumLayerKinds]bool
	Stats   Stats
	scratch *tensor.Tensor
}

// NewLinearChecker builds a checker over m using previously captured
// reference sums (which may be shared across replicas). Only layers both
// requested in kinds (all when empty) and present in refs are checked.
func NewLinearChecker(m *model.Model, refs *RefSums, kinds ...model.LayerKind) *LinearChecker {
	c := &LinearChecker{m: m, refs: refs, scratch: tensor.New(1, 1)}
	if len(kinds) == 0 {
		for _, k := range m.Cfg.Family.LayerKinds() {
			c.covered[k] = true
		}
	} else {
		for _, k := range kinds {
			c.covered[k] = true
		}
	}
	return c
}

// DrainStats returns the counts accumulated since the previous drain and
// resets them — the per-slice absorption point for serving metrics.
func (c *LinearChecker) DrainStats() Stats {
	s := c.Stats
	c.Stats = Stats{}
	return s
}

// Hook returns the forward hook performing the check. Register it after any
// fault injector (so it sees corrupted outputs) and before range-restriction
// hooks (so those see the repaired values).
func (c *LinearChecker) Hook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Site != model.SiteLinearOut || ctx.Input == nil || !c.covered[ctx.Layer.Kind] {
			return
		}
		rs, ok := c.refs.sums[ctx.Layer]
		if !ok {
			return
		}
		bad := false
		for r := 0; r < out.Rows && !bad; r++ {
			var actual, mass float64
			for _, v := range out.Row(r) {
				actual += float64(v)
				mass += math.Abs(float64(v))
			}
			exp := rs.sumB
			for i, v := range ctx.Input.Row(r) {
				exp += float64(v) * rs.colSumW[i]
			}
			tol := RowTolerance * (mass + math.Abs(exp) + 1)
			if math.IsNaN(actual) != math.IsNaN(exp) || math.Abs(actual-exp) > tol {
				bad = true
			}
		}
		if !bad {
			return
		}
		c.Stats.Detected++
		ref := c.m.RecomputeLinearInto(c.scratch, ctx.Layer, ctx.Input)
		fixed := int64(0)
		for i, v := range ref.Data {
			old := out.Data[i]
			if v != old && !(math.IsNaN(float64(v)) && math.IsNaN(float64(old))) {
				out.Data[i] = v
				fixed++
			}
		}
		if fixed > 0 {
			c.Stats.Corrected += fixed
			out.MarkMutated()
		} else {
			c.Stats.Uncorrectable++
		}
	}
}
