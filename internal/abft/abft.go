// Package abft implements algorithm-based fault tolerance for matrix
// multiplication — the checksum technique of the paper's related work
// (Liang et al., ALBERTA, ATTNChecker): the inputs are extended with
// checksum rows/columns, the product is computed once, and a mismatch
// between the product's checksums and its actual row/column sums reveals —
// and for a single corrupted element, locates and repairs — a computation
// fault. It provides the "high reliability but high overhead" comparison
// point for FT2's low-overhead range restriction.
package abft

import (
	"fmt"
	"math"

	"ft2/internal/tensor"
)

// Result reports what a checked multiplication observed.
type Result struct {
	// Detected is true if any checksum mismatch was found.
	Detected bool
	// Corrected is true if the mismatch was isolated to one element and
	// repaired in place.
	Corrected bool
	// Row, Col locate the corrupted element when Corrected.
	Row, Col int
	// BadRows, BadCols are the row/column indices whose checksums
	// mismatched, in ascending order — the full localization evidence, even
	// when the pattern is not a single correctable element (multi-fault
	// bursts produce several of each).
	BadRows, BadCols []int
}

// Tolerance bounds the relative checksum discrepancy attributed to
// floating-point rounding; mismatches above it count as faults. Float32
// summation over k terms loses ~k·2^-24 relative precision, so the default
// is generous.
const Tolerance = 1e-3

// CheckedMatMul computes a×b and verifies the product with row and column
// checksums. If exactly one output element disagrees with both its row and
// column checksum, it is recomputed from the inputs and repaired. The
// returned tensor is the (possibly repaired) product.
//
// corrupt, when non-nil, is invoked on the raw product before verification;
// tests and the fault-injection harness use it to model a transient error
// inside the multiplication.
func CheckedMatMul(a, b *tensor.Tensor, corrupt func(*tensor.Tensor)) (*tensor.Tensor, Result, error) {
	if a.Cols != b.Rows {
		return nil, Result{}, fmt.Errorf("abft: shape mismatch %v × %v", a, b)
	}
	m, n := a.Rows, b.Cols

	// Column checksum vector of a (1×k) and row checksum of b (k×1):
	// colSum(C) = colSum(A)·B and rowSum(C) = A·rowSum(B).
	aColSum := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			aColSum[j] += float64(v)
		}
	}
	bRowSum := make([]float64, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for _, v := range b.Row(i) {
			bRowSum[i] += float64(v)
		}
	}

	c := tensor.MatMul(a, b)
	if corrupt != nil {
		corrupt(c)
	}

	// Expected column sums of C: (colSum(A))·B.
	expCol := make([]float64, n)
	for k := 0; k < b.Rows; k++ {
		brow := b.Row(k)
		s := aColSum[k]
		for j, v := range brow {
			expCol[j] += s * float64(v)
		}
	}
	// Expected row sums of C: A·(rowSum(B)).
	expRow := make([]float64, m)
	for i := 0; i < m; i++ {
		arow := a.Row(i)
		var s float64
		for k, v := range arow {
			s += float64(v) * bRowSum[k]
		}
		expRow[i] = s
	}

	badRows := checksumMismatches(c, expRow, true)
	badCols := checksumMismatches(c, expCol, false)

	res := Result{
		Detected: len(badRows) > 0 || len(badCols) > 0,
		BadRows:  badRows, BadCols: badCols,
	}
	if !res.Detected {
		return c, res, nil
	}
	if len(badRows) == 1 && len(badCols) == 1 {
		// Single corrupted element: recompute it from the inputs.
		i, j := badRows[0], badCols[0]
		var s float64
		arow := a.Row(i)
		for k, v := range arow {
			s += float64(v) * float64(b.At(k, j))
		}
		c.Set(i, j, float32(s))
		res.Corrected = true
		res.Row, res.Col = i, j
	}
	return c, res, nil
}

// checksumMismatches returns the indices whose actual sum deviates from the
// expected sum beyond the rounding tolerance. NaN sums always mismatch.
func checksumMismatches(c *tensor.Tensor, expected []float64, rows bool) []int {
	var out []int
	n := len(expected)
	for i := 0; i < n; i++ {
		var actual float64
		if rows {
			for _, v := range c.Row(i) {
				actual += float64(v)
			}
		} else {
			for r := 0; r < c.Rows; r++ {
				actual += float64(c.At(r, i))
			}
		}
		exp := expected[i]
		if math.IsNaN(actual) {
			out = append(out, i)
			continue
		}
		scale := math.Abs(exp)
		if scale < 1 {
			scale = 1
		}
		if math.Abs(actual-exp) > Tolerance*scale {
			out = append(out, i)
		}
	}
	return out
}
