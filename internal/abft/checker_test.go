package abft

import (
	"math/rand"
	"testing"

	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func checkerCfg(t *testing.T) model.Config {
	t.Helper()
	cfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func sameTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A clean generation must pass every check silently and stay bit-identical
// to an unhooked run — the checker's false-positive budget is zero repairs.
func TestLinearCheckerCleanRun(t *testing.T) {
	cfg := checkerCfg(t)
	prompt := []int{4, 9, 14, 19}
	golden := model.MustNew(cfg, 5, numerics.FP16).Generate(prompt, 12)

	m := model.MustNew(cfg, 5, numerics.FP16)
	chk := NewLinearChecker(m, CaptureRefSums(m))
	m.RegisterHook(chk.Hook())
	got := m.Generate(prompt, 12)
	if chk.Stats.Corrected != 0 || chk.Stats.Uncorrectable != 0 {
		t.Errorf("clean run repaired something: %+v", chk.Stats)
	}
	if !sameTokens(golden, got) {
		t.Error("checker perturbed a clean generation")
	}
}

// A transient activation flip on a covered layer is detected, repaired by
// recomputation, and the generation lands bit-identical to the fault-free
// run — the correction FT2's range clamp cannot deliver (a clamp saturates;
// the recompute restores the exact value).
func TestLinearCheckerCorrectsTransientFault(t *testing.T) {
	cfg := checkerCfg(t)
	prompt := []int{4, 9, 14, 19}
	golden := model.MustNew(cfg, 5, numerics.FP16).Generate(prompt, 12)

	m := model.MustNew(cfg, 5, numerics.FP16)
	chk := NewLinearChecker(m, CaptureRefSums(m))
	site := fault.Site{Step: 2, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 3, Bits: []int{14}}
	inj := fault.NewInjector(site, numerics.FP16)
	m.RegisterHook(inj.Hook()) // injector first: checker sees the corruption
	m.RegisterHook(chk.Hook())
	got := m.Generate(prompt, 12)
	if !inj.Fired {
		t.Fatal("injector never fired")
	}
	if chk.Stats.Detected == 0 || chk.Stats.Corrected == 0 {
		t.Fatalf("fault not repaired: %+v", chk.Stats)
	}
	if chk.Stats.Uncorrectable != 0 {
		t.Errorf("transient fault misclassified as uncorrectable: %+v", chk.Stats)
	}
	if !sameTokens(golden, got) {
		t.Errorf("repaired run diverged from golden: %v vs %v", got, golden)
	}
}

// Persistent weight corruption makes the output disagree with the reference
// sums while the recomputation — using the same corrupted weights —
// reproduces it exactly: detected, not correctable. This Uncorrectable
// signal is what the serving layer escalates to a checksum scrub.
func TestLinearCheckerFlagsWeightCorruption(t *testing.T) {
	cfg := checkerCfg(t)
	prompt := []int{4, 9, 14, 19}
	ref := model.LayerRef{Block: 0, Kind: model.VProj}

	m := model.MustNew(cfg, 5, numerics.FP16)
	refs := CaptureRefSums(m) // build-time, before any corruption

	// Find the input channel with the most mass at prefill so the single
	// corrupted weight element provably moves the row checksum.
	var best int
	var bestAbs float32
	probe := m.RegisterHook(func(ctx model.HookCtx, _ *tensor.Tensor) {
		if ctx.Layer != ref || ctx.Step != 0 {
			return
		}
		for i, v := range ctx.Input.Row(0) {
			if v < 0 {
				v = -v
			}
			if v > bestAbs {
				bestAbs, best = v, i
			}
		}
	})
	m.Generate(prompt, 1)
	m.RemoveHook(probe)

	w := m.Weight(ref)
	w.Data[best] += 32 // row 0, channel best
	w.MarkMutated()

	chk := NewLinearChecker(m, refs)
	m.RegisterHook(chk.Hook())
	m.Generate(prompt, 8)
	if chk.Stats.Detected == 0 {
		t.Fatal("weight corruption never detected")
	}
	if chk.Stats.Uncorrectable == 0 {
		t.Errorf("weight corruption not flagged uncorrectable: %+v", chk.Stats)
	}
}

// DrainStats hands out since-last-drain deltas.
func TestLinearCheckerDrainStats(t *testing.T) {
	cfg := checkerCfg(t)
	m := model.MustNew(cfg, 5, numerics.FP16)
	chk := NewLinearChecker(m, CaptureRefSums(m))
	chk.Stats = Stats{Detected: 3, Corrected: 2, Uncorrectable: 1}
	if got := chk.DrainStats(); got != (Stats{Detected: 3, Corrected: 2, Uncorrectable: 1}) {
		t.Errorf("first drain = %+v", got)
	}
	if got := chk.DrainStats(); got != (Stats{}) {
		t.Errorf("second drain not zero: %+v", got)
	}
}

// CheckedMatMul now reports which rows/columns mismatched — single faults
// localize to one of each; a two-element burst in one row shows one bad row
// with two bad columns (detected, honestly not corrected).
func TestCheckedMatMulExportsMismatchIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randMat(rng, 6, 5), randMat(rng, 5, 7)
	_, res, err := CheckedMatMul(a, b, func(c *tensor.Tensor) {
		c.Set(3, 4, c.At(3, 4)+50)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Corrected || len(res.BadRows) != 1 || len(res.BadCols) != 1 ||
		res.BadRows[0] != 3 || res.BadCols[0] != 4 {
		t.Errorf("single fault localization: %+v", res)
	}

	_, res, err = CheckedMatMul(a, b, func(c *tensor.Tensor) {
		c.Set(2, 1, c.At(2, 1)+40)
		c.Set(2, 5, c.At(2, 5)-40)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.Corrected {
		t.Fatalf("burst must detect without correcting: %+v", res)
	}
	if len(res.BadCols) != 2 || res.BadCols[0] != 1 || res.BadCols[1] != 5 {
		t.Errorf("burst bad columns = %v, want [1 5]", res.BadCols)
	}
}
