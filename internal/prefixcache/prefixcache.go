// Package prefixcache implements a token-keyed radix-tree cache of prompt-
// prefix KV snapshots for the serving layer. Production chat traffic shares
// long system prompts; a session that finds its prompt's longest cached
// token prefix forks the prefix KV via Snapshot.Prefix +
// Model.ResumePrefillPrefix and prefills only the unique suffix.
//
// Structure: a compressed radix tree over token sequences. Each inserted
// prompt contributes one immutable entry — the rows-prefix Snapshot captured
// when its prefill completed, plus (for FT2-protected sessions) the
// first-token bound stores frozen at chunk boundaries. The entry is
// reachable from every tree node on its path, so two prompts sharing only
// part of a cached prompt still hit the shared part: lookup walks the tree
// as far as the query matches and takes the deepest usable candidate,
// truncated to the matched depth via a zero-copy Snapshot.Prefix view.
//
// Memory is bounded by a byte budget over snapshot KV payloads with LRU
// eviction. Entries are refcounted while sessions hold them, but eviction
// never blocks on holders and holders never dangle: snapshots are immutable
// and garbage-collected, so evicting an in-use entry merely detaches it from
// the tree — the holding session keeps its view alive through the Ref (the
// "copy-on-evict" guarantee comes for free from immutability; no bytes are
// ever copied or freed under a reader).
//
// All methods are safe for concurrent use.
package prefixcache

import (
	"container/list"
	"sync"

	"ft2/internal/model"
	"ft2/internal/protect"
)

// FTPartial is a frozen FT2 first-token profile covering the first Rows
// prompt rows: the per-layer bound store and the NaN-correction count
// accumulated while prefilling them. A protected session resuming a cached
// prefix of exactly Rows rows clones Bounds, seeds its controller fork
// state, and continues observing the suffix — ending bit-identical to a
// cold protected prefill (min/max observation is associative over row
// partitions and NaN counts are additive).
type FTPartial struct {
	Rows   int
	Bounds *protect.Store
	NaN    int
}

// node is one compressed radix-tree node: the edge holds the token run from
// the parent, depth the total tokens from the root through the edge.
type node struct {
	parent   *node
	label    int // edge[0], the key in parent.children
	edge     []int
	depth    int
	children map[int]*node
	entry    *entry
}

// entry is one cached prompt: its full-prompt KV snapshot plus bookkeeping.
// snap and ft are immutable once inserted.
type entry struct {
	snap    *model.Snapshot
	plen    int         // length of the inserted prompt (== leaf depth)
	ft      []FTPartial // ascending Rows; empty for unprotected inserts
	nanFree bool        // prefill saw no NaN corrections ⇒ KV valid for unprotected reuse
	bytes   int64
	refs    int
	nodes   []*node // tree nodes pointing at this entry, for detach
	elem    *list.Element
	dead    bool
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Insertions, Evictions int64
	HitRows                             int64 // total KV rows served from cache
	Entries                             int
	Bytes, Budget                       int64
}

// Cache is the radix prefix cache. The zero value is unusable; call New.
type Cache struct {
	mu     sync.Mutex
	root   *node
	lru    *list.List // front = most recently used; values are *entry
	bytes  int64
	budget int64

	hits, misses, insertions, evictions, hitRows int64
}

// New returns a cache bounded to budgetBytes of snapshot KV payload.
func New(budgetBytes int64) *Cache {
	return &Cache{
		root:   &node{children: map[int]*node{}},
		lru:    list.New(),
		budget: budgetBytes,
	}
}

// Ref is a session's hold on a cache hit: a prefix view of the entry's
// snapshot truncated to Rows tokens, plus the matching FT2 partial for
// protected sessions. Release it once the prefix has been copied into the
// session's KV slabs.
type Ref struct {
	c    *Cache
	e    *entry
	rows int
	ft   *FTPartial
}

// Rows returns the number of cached prompt rows the hit covers.
func (r *Ref) Rows() int { return r.rows }

// Snapshot returns the zero-copy prefix view to feed ResumePrefillPrefix.
func (r *Ref) Snapshot() *model.Snapshot { return r.e.snap.Prefix(r.rows) }

// FT returns the frozen first-token profile at exactly Rows rows, nil for
// hits served to unprotected sessions.
func (r *Ref) FT() *FTPartial { return r.ft }

// Release drops the hold. The Ref must not be used afterwards.
func (r *Ref) Release() {
	r.c.mu.Lock()
	r.e.refs--
	r.c.mu.Unlock()
}

// matchLen returns the length of the common prefix of a and b.
func matchLen(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Lookup finds the deepest usable cached prefix of prompt and returns a Ref
// holding it, or nil on a miss. At most len(prompt)-1 rows are usable (the
// readout needs the final row's residual stream, which snapshots don't
// carry). Protected sessions can only resume at a frozen FTPartial depth
// within the true token match — the profile must cover only rows the query
// prompt shares — so their hit is the deepest candidate carrying such a
// partial. A NaN-free partial one row deeper than the usable limit (the
// whole-prompt profile of an identical cached prompt) is also usable: the
// suffix pass recomputes and re-observes that final row with bit-identical
// values, and min/max observation is idempotent. Unprotected sessions
// require a NaN-free entry (a NaN-corrected prefill's KV embeds the
// corrections, which a bare model would not reproduce).
func (c *Cache) Lookup(prompt []int, protected bool) *Ref {
	limit := len(prompt) - 1
	if limit < 1 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	type cand struct {
		e     *entry
		rows  int // usable hit depth: true match capped at limit
		match int // true token match depth with the entry's prompt
	}
	var cands []cand
	cur := c.root
	depth := 0
	for depth < len(prompt) { // past limit too: deeper entries still serve capped hits
		child := cur.children[prompt[depth]]
		if child == nil {
			break
		}
		k := matchLen(child.edge, prompt[depth:])
		if k < len(child.edge) {
			// Prompt diverges (or ends) mid-edge: everything in child's
			// subtree still shares prompt[:depth+k].
			if k > 0 && child.entry != nil && !child.entry.dead {
				rows := depth + k
				if rows > limit {
					rows = limit
				}
				cands = append(cands, cand{child.entry, rows, depth + k})
			}
			break
		}
		depth += k
		if child.entry != nil && !child.entry.dead {
			rows := depth
			if rows > limit {
				rows = limit
			}
			cands = append(cands, cand{child.entry, rows, depth})
		}
		cur = child
	}

	var best *entry
	bestRows := 0
	var bestFT *FTPartial
	for _, cd := range cands { // ascending depth: later wins ties
		if protected {
			for i := len(cd.e.ft) - 1; i >= 0; i-- { // descending Rows: deepest usable wins
				p := &cd.e.ft[i]
				if p.Rows < 1 || p.Rows > cd.match {
					continue
				}
				rows := p.Rows
				if rows > limit {
					if p.NaN != 0 {
						// Re-observing the overlap row would recount its
						// NaN corrections; keep scanning for an exact fit.
						continue
					}
					rows = limit
				}
				if rows >= bestRows {
					best, bestRows, bestFT = cd.e, rows, p
				}
				break
			}
		} else if cd.e.nanFree && cd.rows >= 1 && cd.rows >= bestRows {
			best, bestRows, bestFT = cd.e, cd.rows, nil
		}
	}
	if best == nil {
		c.misses++
		return nil
	}
	best.refs++
	c.lru.MoveToFront(best.elem)
	c.hits++
	c.hitRows += int64(bestRows)
	return &Ref{c: c, e: best, rows: bestRows, ft: bestFT}
}

// Insert adds a completed prefill's prompt and its full-prompt snapshot to
// the cache, reporting whether it was admitted. The cache takes ownership of
// snap and ft — they must never be mutated afterwards (the scheduler
// checkpoints into a fresh Snapshot and clones bound stores per insert). ft
// must be sorted by ascending Rows, with the final element covering the full
// prompt, for protected reuse to work; empty ft limits the entry to
// unprotected hits (and only when nanFree). Duplicate prompts refresh LRU
// recency; a duplicate carrying FT partials upgrades an unprotected-only
// entry in place.
func (c *Cache) Insert(prompt []int, snap *model.Snapshot, ft []FTPartial, nanFree bool) bool {
	if len(prompt) < 2 || snap == nil || snap.Rows() < len(prompt) {
		return false
	}
	bytes := int64(snap.MemoryBytes())
	if bytes > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Walk/create the path, splitting edges at divergence.
	cur := c.root
	pos := 0
	for pos < len(prompt) {
		child := cur.children[prompt[pos]]
		if child == nil {
			child = &node{
				parent:   cur,
				label:    prompt[pos],
				edge:     append([]int(nil), prompt[pos:]...),
				depth:    cur.depth + len(prompt) - pos,
				children: map[int]*node{},
			}
			cur.children[child.label] = child
			cur = child
			pos = len(prompt)
			break
		}
		k := matchLen(child.edge, prompt[pos:])
		if k < len(child.edge) {
			oldEdge := child.edge
			mid := &node{
				parent:   cur,
				label:    oldEdge[0],
				edge:     oldEdge[:k:k],
				depth:    child.depth - (len(oldEdge) - k),
				children: map[int]*node{},
				entry:    child.entry, // subtree entries stay reachable mid-path
			}
			if mid.entry != nil {
				mid.entry.nodes = append(mid.entry.nodes, mid)
			}
			cur.children[mid.label] = mid
			child.edge = oldEdge[k:]
			child.label = child.edge[0]
			child.parent = mid
			mid.children[child.label] = child
			cur = mid
			pos += k
		} else {
			pos += k
			cur = child
		}
	}
	leaf := cur

	if old := leaf.entry; old != nil && !old.dead {
		// The leaf position is already covered by a live entry — the same
		// prompt, or a longer one passing through. Keep it unless the new
		// entry adds FT partials it lacks (an unprotected insert must not
		// permanently block protected reuse of the same prefix).
		if len(ft) == 0 || len(old.ft) > 0 {
			c.lru.MoveToFront(old.elem)
			return false
		}
		if old.plen == len(prompt) {
			// Exact duplicate: replace outright. Detach without pruning —
			// the new entry reclaims the very same path nodes below.
			c.detachLocked(old)
		} else {
			// A longer prompt passes through; keep it reachable at its other
			// nodes but point this one at the new, partial-carrying entry.
			for i, n := range old.nodes {
				if n == leaf {
					old.nodes = append(old.nodes[:i], old.nodes[i+1:]...)
					break
				}
			}
			leaf.entry = nil
		}
	}

	e := &entry{snap: snap, plen: len(prompt), ft: ft, nanFree: nanFree, bytes: bytes}
	// Attach at every path node lacking a live entry so partial matches that
	// stop mid-path still find this prompt's KV.
	for n := leaf; n != c.root; n = n.parent {
		if n.entry == nil || n.entry.dead {
			n.entry = e
			e.nodes = append(e.nodes, n)
		}
	}
	// reverse so e.nodes runs root→leaf and nodes[len-1] is the leaf
	for i, j := 0, len(e.nodes)-1; i < j; i, j = i+1, j-1 {
		e.nodes[i], e.nodes[j] = e.nodes[j], e.nodes[i]
	}
	e.elem = c.lru.PushFront(e)
	c.bytes += bytes
	c.insertions++
	c.evictLocked(e)
	return true
}

// evictLocked evicts LRU entries until the budget holds, never touching
// keep. Unreferenced entries go first; if every other entry is held by a
// session the LRU-most held one is detached anyway — safe, because holders
// reach the buffers through their Ref, not the tree.
func (c *Cache) evictLocked(keep *entry) {
	for c.bytes > c.budget {
		var victim *entry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e == keep {
				continue
			}
			if victim == nil {
				victim = e // LRU-most other entry, fallback if all are held
			}
			if e.refs == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// detachLocked takes e out of the LRU list, the byte account, and its tree
// nodes' entry pointers, leaving the nodes themselves in place.
func (c *Cache) detachLocked(e *entry) {
	e.dead = true
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	for _, n := range e.nodes {
		if n.entry == e {
			n.entry = nil
		}
	}
}

// removeLocked detaches e from the LRU list and the tree, pruning emptied
// nodes upward. e's buffers stay valid for any session still holding a Ref.
func (c *Cache) removeLocked(e *entry) {
	nodes := e.nodes
	c.detachLocked(e)
	for _, n := range nodes {
		for n != c.root && n.entry == nil && len(n.children) == 0 {
			p := n.parent
			delete(p.children, n.label)
			n = p
		}
	}
	e.nodes = nil
}

// Stats returns a point-in-time counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Insertions: c.insertions, Evictions: c.evictions,
		HitRows: c.hitRows,
		Entries: c.lru.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}
