package prefixcache

import (
	"testing"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

func testCfg() model.Config {
	return model.Config{
		Name: "prefixcache-test", Family: model.FamilyLlama,
		Vocab: 64, Hidden: 32, Heads: 4, FFN: 64, Blocks: 2, MaxSeq: 64,
		LogitScale: 4, Activation: tensor.ActSiLU,
	}
}

func newModel(t *testing.T) *model.Model {
	t.Helper()
	return model.MustNew(testCfg(), 7, numerics.FP16)
}

// makeSnap prefills prompt on m and checkpoints the full-prompt KV.
func makeSnap(m *model.Model, prompt []int) *model.Snapshot {
	m.Prefill(prompt)
	snap := &model.Snapshot{}
	m.Checkpoint(snap)
	return snap
}

func seq(toks ...int) []int { return toks }

func TestLookupMissOnEmptyAndUnrelated(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	if ref := c.Lookup(seq(1, 2, 3), false); ref != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(seq(1, 2, 3, 4), makeSnap(m, seq(1, 2, 3, 4)), nil, true)
	if ref := c.Lookup(seq(9, 8, 7), false); ref != nil {
		t.Fatal("hit on unrelated prompt")
	}
	if ref := c.Lookup(seq(1), false); ref != nil {
		t.Fatal("hit on single-token prompt (no usable rows)")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupCapsAtPromptMinusOne(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	p := seq(1, 2, 3, 4, 5)
	c.Insert(p, makeSnap(m, p), nil, true)
	ref := c.Lookup(p, false)
	if ref == nil {
		t.Fatal("miss on exact cached prompt")
	}
	defer ref.Release()
	if ref.Rows() != len(p)-1 {
		t.Fatalf("Rows() = %d, want %d", ref.Rows(), len(p)-1)
	}
	if v := ref.Snapshot(); v.Rows() != len(p)-1 {
		t.Fatalf("view rows = %d", v.Rows())
	}
}

func TestSharedPrefixPartialHit(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	a := seq(10, 11, 12, 13, 20, 21)
	c.Insert(a, makeSnap(m, a), nil, true)

	// Diverges after 4 shared tokens, mid-edge.
	b := seq(10, 11, 12, 13, 30, 31, 32)
	ref := c.Lookup(b, false)
	if ref == nil {
		t.Fatal("miss on shared-prefix prompt")
	}
	if ref.Rows() != 4 {
		t.Fatalf("Rows() = %d, want 4", ref.Rows())
	}
	ref.Release()

	// A second insert splits the edge; a third prompt still hits the shared node.
	a2 := seq(10, 11, 12, 13, 40, 41)
	c.Insert(a2, makeSnap(m, a2), nil, true)
	ref = c.Lookup(seq(10, 11, 12, 13, 50), false)
	if ref == nil || ref.Rows() != 4 {
		t.Fatalf("post-split hit = %v", ref)
	}
	ref.Release()
}

func TestProtectedRequiresPartialAtDepth(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	p := seq(1, 2, 3, 4, 5, 6, 7, 8, 9)
	ft := []FTPartial{
		{Rows: 4, Bounds: protect.NewStore(), NaN: 0},
		{Rows: len(p), Bounds: protect.NewStore(), NaN: 0},
	}
	c.Insert(p, makeSnap(m, p), ft, true)

	// Shares 6 tokens: unprotected resumes at 6, protected only at grain 4.
	q := seq(1, 2, 3, 4, 5, 6, 60, 61)
	if ref := c.Lookup(q, false); ref == nil || ref.Rows() != 6 {
		t.Fatalf("unprotected hit = %v", ref)
	} else {
		ref.Release()
	}
	ref := c.Lookup(q, true)
	if ref == nil || ref.Rows() != 4 {
		t.Fatalf("protected hit = %v", ref)
	}
	if ref.FT() == nil || ref.FT().Rows != 4 {
		t.Fatalf("protected hit FT = %+v", ref.FT())
	}
	ref.Release()

	// Shares only 3 tokens — below the shallowest partial: protected misses.
	if ref := c.Lookup(seq(1, 2, 3, 70, 71), true); ref != nil {
		t.Fatalf("protected hit below partial grain: %d rows", ref.Rows())
	}
}

func TestNaNTaintedEntryServesOnlyProtected(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	p := seq(1, 2, 3, 4, 5)
	ft := []FTPartial{{Rows: len(p), Bounds: protect.NewStore(), NaN: 2}}
	c.Insert(p, makeSnap(m, p), ft, false)

	if ref := c.Lookup(p, false); ref != nil {
		t.Fatal("NaN-tainted entry served an unprotected session")
	}
	ref := c.Lookup(seq(1, 2, 3, 4, 5, 6), true)
	if ref == nil || ref.Rows() != len(p) {
		t.Fatalf("protected hit = %v", ref)
	}
	ref.Release()
}

func TestDuplicateInsertAndUpgrade(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	p := seq(1, 2, 3, 4, 5)
	if !c.Insert(p, makeSnap(m, p), nil, true) {
		t.Fatal("first insert rejected")
	}
	if c.Insert(p, makeSnap(m, p), nil, true) {
		t.Fatal("duplicate insert admitted")
	}
	if ref := c.Lookup(p, true); ref != nil {
		t.Fatal("protected hit on unprotected-only entry")
	}
	// The protected duplicate upgrades the entry in place.
	ft := []FTPartial{{Rows: len(p), Bounds: protect.NewStore(), NaN: 0}}
	if !c.Insert(p, makeSnap(m, p), ft, true) {
		t.Fatal("upgrade insert rejected")
	}
	ref := c.Lookup(seq(1, 2, 3, 4, 5, 6), true)
	if ref == nil || ref.Rows() != len(p) {
		t.Fatalf("post-upgrade protected hit = %v", ref)
	}
	ref.Release()
	if ref := c.Lookup(p, false); ref == nil {
		t.Fatal("unprotected hit lost after upgrade")
	} else {
		ref.Release()
	}
}

func TestInsertRejections(t *testing.T) {
	m := newModel(t)
	c := New(1 << 20)
	if c.Insert(seq(1), makeSnap(m, seq(1, 2)), nil, true) {
		t.Fatal("admitted single-token prompt")
	}
	// Snapshot with fewer rows than the prompt claims.
	short := makeSnap(m, seq(1, 2))
	if c.Insert(seq(1, 2, 3), short, nil, true) {
		t.Fatal("admitted snapshot shorter than prompt")
	}
	tiny := New(16) // budget smaller than any snapshot
	if tiny.Insert(seq(1, 2, 3), makeSnap(m, seq(1, 2, 3)), nil, true) {
		t.Fatal("admitted entry larger than the whole budget")
	}
}

func TestLRUByteBudgetEviction(t *testing.T) {
	m := newModel(t)
	one := makeSnap(m, seq(1, 2, 3, 4)).MemoryBytes()
	c := New(int64(one) * 2) // room for two entries
	a, b, d := seq(1, 2, 3, 4), seq(10, 11, 12, 13), seq(20, 21, 22, 23)
	c.Insert(a, makeSnap(m, a), nil, true)
	c.Insert(b, makeSnap(m, b), nil, true)
	if ref := c.Lookup(a, false); ref == nil { // touch a: b becomes LRU-most
		t.Fatal("miss on a")
	} else {
		ref.Release()
	}
	c.Insert(d, makeSnap(m, d), nil, true)

	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes > st.Budget {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if ref := c.Lookup(b, false); ref != nil {
		t.Fatal("evicted entry still served")
	}
	for _, p := range [][]int{a, d} {
		if ref := c.Lookup(p, false); ref == nil {
			t.Fatalf("survivor %v missing", p)
		} else {
			ref.Release()
		}
	}
}

// TestEvictionWhileHeldNeverDangles: evicting an entry a session still holds
// must leave the holder's snapshot view fully usable — the forked prefill
// and decode must stay bit-identical to a cold run.
func TestEvictionWhileHeldNeverDangles(t *testing.T) {
	m := newModel(t)
	prompt := seq(1, 2, 3, 4, 5, 6)
	const n = 6
	want := m.Generate(prompt, n)

	one := makeSnap(m, prompt).MemoryBytes()
	c := New(int64(one)) // room for exactly one entry
	c.Insert(prompt, makeSnap(m, prompt), nil, true)
	ref := c.Lookup(prompt, false)
	if ref == nil {
		t.Fatal("miss on cached prompt")
	}

	// Force the held entry out: the only way to fit the new one.
	other := seq(30, 31, 32, 33, 34, 35)
	c.Insert(other, makeSnap(m, other), nil, true)
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("held entry not evicted: %+v", st)
	}
	if r2 := c.Lookup(prompt, false); r2 != nil {
		t.Fatal("evicted entry still in the tree")
	}

	// The holder's view must still resume bit-identically.
	m.BeginPrefill(len(prompt))
	m.ResumePrefillPrefix(ref.Snapshot())
	tok, done := m.PrefillChunk(prompt[ref.Rows():])
	if !done {
		t.Fatal("suffix chunk did not complete")
	}
	got := []int{tok}
	for s := 1; s < n; s++ {
		tok = m.DecodeStep(tok)
		got = append(got, tok)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-eviction fork diverged: got %v, want %v", got, want)
		}
	}
	ref.Release()
}

// TestEvictionPrefersUnheldEntries: with a held and an unheld entry over
// budget, the unheld one goes first even when it is more recently used.
func TestEvictionPrefersUnheldEntries(t *testing.T) {
	m := newModel(t)
	a, b, d := seq(1, 2, 3, 4), seq(10, 11, 12, 13), seq(20, 21, 22, 23)
	one := makeSnap(m, a).MemoryBytes()
	c := New(int64(one) * 2)
	c.Insert(a, makeSnap(m, a), nil, true)
	c.Insert(b, makeSnap(m, b), nil, true)
	refA := c.Lookup(a, false) // hold a; also makes it most-recent
	if refA == nil {
		t.Fatal("miss on a")
	}
	// LRU order now: a (held, recent), b (unheld, older)... insert d evicts b.
	// Then touch nothing and insert one more: a is held, d unheld → d goes.
	c.Insert(d, makeSnap(m, d), nil, true)
	if ref := c.Lookup(b, false); ref != nil {
		t.Fatal("b survived")
	}
	e := seq(40, 41, 42, 43)
	c.Insert(e, makeSnap(m, e), nil, true)
	if ref := c.Lookup(a, false); ref == nil {
		t.Fatal("held entry was evicted while an unheld one existed")
	} else {
		ref.Release()
	}
	refA.Release()
}
