// Package router is ft2's cluster front-end: it spreads generation sessions
// across a set of ft2serve worker processes by consistent hashing, health
// checks the workers, and — the point of the exercise — survives a worker
// dying mid-generation by migrating the session to a survivor and resuming
// it from the worker's last exported checkpoint, bit-identically to a
// single-process run. Clients see one endpoint and uninterrupted streams;
// workers remain plain ft2serve processes.
package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the cluster front-end.
type Config struct {
	// Workers are the base URLs of the ft2serve processes (e.g.
	// "http://127.0.0.1:8101"). The set is fixed for the router's life;
	// individual workers may come and go (health checks handle that).
	Workers []string

	// ProbeInterval is the /healthz polling period per worker (default
	// 250ms). While a worker is down the prober backs off exponentially to
	// 8× the interval, and stream failures mark workers dead immediately —
	// the prober is how they come back, not how deaths are noticed.
	ProbeInterval time.Duration

	// ProbeTimeout bounds one health probe (default ProbeInterval).
	ProbeTimeout time.Duration

	// FetchStride is how many relayed tokens between checkpoint fetches
	// (GET /v1/sessions/export) for a session, 0 disabling fetching (failed
	// sessions then restart from the prompt on a survivor — still
	// bit-identical, just more replay). It should be ≥ the workers'
	// -export-stride; fetching more often than workers capture only
	// re-downloads the same blob.
	FetchStride int

	// Vnodes is the number of ring points per worker (default 64).
	Vnodes int

	// Client is the HTTP client used for proxying and probing (default: a
	// dedicated client with sane pooling).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
		}}
	}
	return c
}

// worker is the router's view of one ft2serve process.
type worker struct {
	url     string
	healthy atomic.Bool
	fails   atomic.Int64 // consecutive probe failures (drives backoff)
}

// Router is the front-end. Build with New, mount Handler, Close to stop
// the probers.
type Router struct {
	cfg     Config
	ring    *hashRing
	workers []*worker

	sessSeq atomic.Int64

	sessions   atomic.Int64 // sessions accepted
	migrations atomic.Int64 // mid-stream failovers (checkpoint or fresh)
	ckptMigr   atomic.Int64 // failovers resumed from a checkpoint
	failures   atomic.Int64 // sessions that exhausted every worker
	fetches    atomic.Int64 // checkpoint blobs fetched

	latMu   sync.Mutex
	migrLat []float64 // migration latencies, ms (bounded)

	start  time.Time
	stop   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// New builds the router and starts one health prober per worker. Workers
// start unknown-dead and flip healthy on their first successful probe; call
// WaitReady to block until the cluster can take traffic.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("router: no workers configured")
	}
	rt := &Router{
		cfg:   cfg,
		ring:  newHashRing(cfg.Workers, cfg.Vnodes),
		start: time.Now(),
		stop:  make(chan struct{}),
	}
	for _, u := range cfg.Workers {
		rt.workers = append(rt.workers, &worker{url: strings.TrimRight(u, "/")})
	}
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go rt.probe(w)
	}
	return rt, nil
}

// Close stops the probers. In-flight proxied requests are not interrupted.
func (rt *Router) Close() {
	rt.closed.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// WaitReady blocks until at least one worker is healthy or ctx expires.
func (rt *Router) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if rt.healthyCount() > 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (rt *Router) healthyCount() int {
	n := 0
	for _, w := range rt.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// probe is the per-worker health loop: GET /healthz at ProbeInterval,
// healthy on 200 (which ft2serve withholds while initializing or draining,
// so this doubles as a drain detector), exponential backoff to 8× the
// interval while the worker stays down.
func (rt *Router) probe(w *worker) {
	defer rt.wg.Done()
	for {
		delay := rt.cfg.ProbeInterval
		if f := w.fails.Load(); f > 0 {
			for i := int64(0); i < f && delay < 8*rt.cfg.ProbeInterval; i++ {
				delay *= 2
			}
		}
		if rt.probeOnce(w) {
			w.fails.Store(0)
			w.healthy.Store(true)
		} else {
			w.fails.Add(1)
			w.healthy.Store(false)
		}
		select {
		case <-rt.stop:
			return
		case <-time.After(delay):
		}
	}
}

func (rt *Router) probeOnce(w *worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDead takes a worker out of rotation immediately (stream broke); the
// prober brings it back when /healthz recovers.
func (rt *Router) markDead(w *worker) { w.healthy.Store(false) }

// pickWorker returns the first healthy worker in the session's ring order,
// or nil when the whole cluster is down.
func (rt *Router) pickWorker(sessionID string) *worker {
	for _, i := range rt.ring.sequence(sessionID) {
		if rt.workers[i].healthy.Load() {
			return rt.workers[i]
		}
	}
	return nil
}

// Stats is a point-in-time snapshot of the router's counters, consumed by
// the selftest and the cluster benchmark.
type Stats struct {
	Workers             int
	Healthy             int
	Sessions            int64
	Migrations          int64
	CheckpointResumes   int64
	Failures            int64
	CheckpointFetches   int64
	MigrationLatenciesM []float64 // milliseconds, most recent first capped
}

// Stats returns a snapshot of the router's counters.
func (rt *Router) Stats() Stats {
	rt.latMu.Lock()
	lat := append([]float64(nil), rt.migrLat...)
	rt.latMu.Unlock()
	return Stats{
		Workers:             len(rt.workers),
		Healthy:             rt.healthyCount(),
		Sessions:            rt.sessions.Load(),
		Migrations:          rt.migrations.Load(),
		CheckpointResumes:   rt.ckptMigr.Load(),
		Failures:            rt.failures.Load(),
		CheckpointFetches:   rt.fetches.Load(),
		MigrationLatenciesM: lat,
	}
}

func (rt *Router) observeMigration(ms float64) {
	rt.latMu.Lock()
	if len(rt.migrLat) < 4096 {
		rt.migrLat = append(rt.migrLat, ms)
	}
	rt.latMu.Unlock()
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Handler returns the router's HTTP surface:
//
//	POST /v1/generate — proxy a generation with transparent failover
//	GET  /v1/models   — passthrough to any healthy worker
//	GET  /healthz     — 200 while ≥1 worker is healthy
//	GET  /livez       — 200 while the router process runs
//	GET  /metrics     — router counters + per-worker health
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", rt.handleGenerate)
	mux.HandleFunc("/v1/models", rt.handlePassthrough)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.healthyCount() == 0 {
		http.Error(w, "no healthy workers", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintf(w, "ok %d/%d workers\n", rt.healthyCount(), len(rt.workers))
}

// handlePassthrough relays a read-only endpoint to any healthy worker.
func (rt *Router) handlePassthrough(w http.ResponseWriter, r *http.Request) {
	wk := rt.pickWorker(r.URL.Path)
	if wk == nil {
		http.Error(w, "no healthy workers", http.StatusServiceUnavailable)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk.url+r.URL.Path, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "ft2router_uptime_seconds %.1f\n", time.Since(rt.start).Seconds())
	fmt.Fprintf(w, "ft2router_workers %d\n", st.Workers)
	fmt.Fprintf(w, "ft2router_workers_healthy %d\n", st.Healthy)
	fmt.Fprintf(w, "ft2router_sessions_total %d\n", st.Sessions)
	fmt.Fprintf(w, "ft2router_migrations_total %d\n", st.Migrations)
	fmt.Fprintf(w, "ft2router_checkpoint_resumes_total %d\n", st.CheckpointResumes)
	fmt.Fprintf(w, "ft2router_checkpoint_fetches_total %d\n", st.CheckpointFetches)
	fmt.Fprintf(w, "ft2router_sessions_failed_total %d\n", st.Failures)
	lat := append([]float64(nil), st.MigrationLatenciesM...)
	sort.Float64s(lat)
	fmt.Fprintf(w, "ft2router_migration_latency_ms{quantile=\"0.5\"} %.3f\n", quantile(lat, 0.5))
	fmt.Fprintf(w, "ft2router_migration_latency_ms{quantile=\"0.99\"} %.3f\n", quantile(lat, 0.99))
	for _, wk := range rt.workers {
		h := 0
		if wk.healthy.Load() {
			h = 1
		}
		fmt.Fprintf(w, "ft2router_worker_healthy{worker=%q} %d\n", wk.url, h)
	}
}
