package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ft2/internal/data"
	"ft2/internal/serve"
)

func workerConfig(t *testing.T) serve.Config {
	t.Helper()
	return serve.Config{
		Model:       "qwen2-1.5b-sim",
		Seed:        7,
		Replicas:    1,
		MaxSessions: 8,
		SliceSteps:  3,
	}
}

// killableWorker is an in-process ft2serve worker whose death can be
// simulated: once killed it aborts in-flight streams and refuses every
// request, exactly what the router sees when a real process is SIGKILLed.
type killableWorker struct {
	srv  *serve.Server
	ts   *httptest.Server
	dead atomic.Bool
}

func (k *killableWorker) kill() {
	k.dead.Store(true)
	k.ts.CloseClientConnections() // snap in-flight streams mid-token
}

func newKillableWorker(t *testing.T, cfg serve.Config) *killableWorker {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := &killableWorker{srv: srv}
	inner := srv.Handler()
	k.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k.dead.Load() {
			panic(http.ErrAbortHandler) // connection reset, like a dead process
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		k.dead.Store(true)
		k.ts.CloseClientConnections()
		k.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return k
}

type testCluster struct {
	rt      *Router
	front   *httptest.Server
	workers []*killableWorker
}

func newTestCluster(t *testing.T, n int, cfg serve.Config, rcfg Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := newKillableWorker(t, cfg)
		c.workers = append(c.workers, w)
		urls[i] = w.ts.URL
	}
	rcfg.Workers = urls
	if rcfg.ProbeInterval == 0 {
		rcfg.ProbeInterval = 20 * time.Millisecond
	}
	rt, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	c.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		c.front.Close()
		rt.Close()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.WaitReady(ctx); err != nil {
		t.Fatal("cluster never became ready")
	}
	return c
}

// workerFor maps a worker pointer back to its harness.
func (c *testCluster) harness(w *worker) *killableWorker {
	for i, kw := range c.workers {
		if kw.ts.URL == w.url {
			return c.workers[i]
		}
	}
	return nil
}

func testPrompt(t *testing.T) []int {
	t.Helper()
	ds, err := data.ByName("squad-sim", 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Inputs[0].Prompt
}

func oracleRun(t *testing.T, cfg serve.Config, prompt []int, maxTokens int) ([]int, serve.Corrections) {
	t.Helper()
	eff, err := cfg.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	toks, corr, err := serve.Oracle(eff, prompt, maxTokens, true)
	if err != nil {
		t.Fatal(err)
	}
	return toks, corr
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRingDeterministicAndComplete(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1, r2 := newHashRing(urls, 64), newHashRing(urls, 64)
	for _, key := range []string{"s1", "s2", "another-session", ""} {
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if !equalInts(s1, s2) {
			t.Fatalf("ring not deterministic for %q: %v vs %v", key, s1, s2)
		}
		if len(s1) != len(urls) {
			t.Fatalf("sequence for %q covers %d workers, want %d", key, len(s1), len(urls))
		}
		seen := map[int]bool{}
		for _, w := range s1 {
			if seen[w] {
				t.Fatalf("sequence for %q repeats worker %d", key, w)
			}
			seen[w] = true
		}
	}
	// Placement should actually spread: many sessions over 4 workers must
	// not all land on one.
	owners := map[int]int{}
	for i := 0; i < 200; i++ {
		owners[r1.sequence(string(rune('a'+i%26)) + string(rune('0'+i%10)))[0]]++
	}
	if len(owners) < 3 {
		t.Fatalf("placement collapsed onto %d workers: %v", len(owners), owners)
	}
}

// TestProxyMatchesOracle drives plain and streaming requests through the
// router with no faults: output must match the single-process oracle, and
// the streaming done-line result must agree with the relayed tokens.
func TestProxyMatchesOracle(t *testing.T) {
	const maxTokens = 16
	cfg := workerConfig(t)
	c := newTestCluster(t, 2, cfg, Config{})
	prompt := testPrompt(t)
	want, wantCorr := oracleRun(t, cfg, prompt, maxTokens)

	// Non-streaming.
	body, _ := json.Marshal(serve.Request{
		PromptTokens: prompt, MaxTokens: maxTokens, Protected: true, SessionID: "plain",
	})
	resp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !equalInts(res.Tokens, want) {
		t.Fatalf("proxied tokens diverged:\n got %v\nwant %v", res.Tokens, want)
	}
	if res.Corrections.OutOfBound != wantCorr.OutOfBound {
		t.Fatalf("corrections %d != oracle %d", res.Corrections.OutOfBound, wantCorr.OutOfBound)
	}
	if res.Text != data.Vocab().Decode(want) {
		t.Fatalf("text mismatch: %q", res.Text)
	}

	// Streaming: relayed tokens and the terminal result must both match.
	sbody, _ := json.Marshal(serve.Request{
		PromptTokens: prompt, MaxTokens: maxTokens, Protected: true, Stream: true, SessionID: "streamy",
	})
	sresp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	toks, sres := readClientStream(t, sresp.Body)
	if !equalInts(toks, want) || !equalInts(sres.Tokens, want) {
		t.Fatalf("streamed tokens diverged:\n got %v\n res %v\nwant %v", toks, sres.Tokens, want)
	}
	if st := c.rt.Stats(); st.Sessions != 2 || st.Migrations != 0 || st.Failures != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func readClientStream(t *testing.T, body io.Reader) ([]int, serve.Result) {
	t.Helper()
	dec := json.NewDecoder(body)
	var toks []int
	for {
		var l streamLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("client stream broke after %d tokens: %v", len(toks), err)
		}
		if l.Done {
			if l.Error != "" {
				t.Fatalf("stream error after %d tokens: %s", len(toks), l.Error)
			}
			return toks, *l.Result
		}
		toks = append(toks, *l.Token)
	}
}

// TestMigrationCheckpointResume is the tentpole invariant: kill the worker
// driving a session mid-stream; the router must resume it on the survivor
// from the last exported checkpoint and the client's total stream must be
// bit-identical to the single-process oracle.
func TestMigrationCheckpointResume(t *testing.T) {
	const maxTokens = 48
	cfg := workerConfig(t)
	cfg.ExportStride = 2
	cfg.StepDelay = 2 * time.Millisecond
	c := newTestCluster(t, 2, cfg, Config{FetchStride: 3})
	prompt := testPrompt(t)
	want, wantCorr := oracleRun(t, cfg, prompt, maxTokens)

	body, _ := json.Marshal(serve.Request{
		PromptTokens: prompt, MaxTokens: maxTokens, Protected: true, Stream: true, SessionID: "victim",
	})
	resp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	owner := c.rt.pickWorker("victim")
	if owner == nil {
		t.Fatal("no owner")
	}
	dec := json.NewDecoder(resp.Body)
	var toks []int
	var res serve.Result
	for {
		var l streamLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("client stream broke after %d tokens: %v", len(toks), err)
		}
		if l.Done {
			if l.Error != "" {
				t.Fatalf("stream error after %d tokens: %s", len(toks), l.Error)
			}
			res = *l.Result
			break
		}
		toks = append(toks, *l.Token)
		if len(toks) == 12 {
			c.harness(owner).kill() // mid-generation, checkpoints already fetched
		}
	}

	if !equalInts(toks, want) {
		t.Fatalf("migrated stream diverged:\n got %v\nwant %v", toks, want)
	}
	if !equalInts(res.Tokens, want) {
		t.Fatalf("terminal result not rewritten to the full session: %v", res.Tokens)
	}
	if res.Corrections.OutOfBound != wantCorr.OutOfBound {
		t.Fatalf("corrections %d != oracle %d (fork state lost in migration?)",
			res.Corrections.OutOfBound, wantCorr.OutOfBound)
	}
	st := c.rt.Stats()
	if st.Migrations < 1 {
		t.Fatalf("no migration recorded: %+v", st)
	}
	if st.CheckpointResumes < 1 {
		t.Fatalf("migration did not use the checkpoint: %+v", st)
	}
	if st.Failures != 0 {
		t.Fatalf("failures: %+v", st)
	}
	if len(st.MigrationLatenciesM) < 1 {
		t.Fatal("no migration latency observed")
	}
}

// TestFreshFailover kills a worker with checkpoint fetching disabled: the
// router must replay the whole session on the survivor — slower, but still
// bit-identical.
func TestFreshFailover(t *testing.T) {
	const maxTokens = 24
	cfg := workerConfig(t)
	cfg.StepDelay = 2 * time.Millisecond
	c := newTestCluster(t, 2, cfg, Config{}) // FetchStride 0: no checkpoints
	prompt := testPrompt(t)
	want, _ := oracleRun(t, cfg, prompt, maxTokens)

	body, _ := json.Marshal(serve.Request{
		PromptTokens: prompt, MaxTokens: maxTokens, Protected: true, Stream: true, SessionID: "fresh",
	})
	resp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	owner := c.rt.pickWorker("fresh")
	dec := json.NewDecoder(resp.Body)
	var toks []int
	killed := false
	for {
		var l streamLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("client stream broke after %d tokens: %v", len(toks), err)
		}
		if l.Done {
			if l.Error != "" {
				t.Fatalf("stream error: %s", l.Error)
			}
			break
		}
		toks = append(toks, *l.Token)
		if len(toks) == 6 && !killed {
			killed = true
			c.harness(owner).kill()
		}
	}
	if !equalInts(toks, want) {
		t.Fatalf("fresh failover diverged:\n got %v\nwant %v", toks, want)
	}
	st := c.rt.Stats()
	if st.Migrations < 1 || st.CheckpointResumes != 0 {
		t.Fatalf("expected fresh (non-checkpoint) migration: %+v", st)
	}
}

// TestRoutesAroundDrainingWorker puts one worker into drain: its /healthz
// flips 503, the prober takes it out of rotation, and new sessions land on
// the other worker without client-visible errors.
func TestRoutesAroundDrainingWorker(t *testing.T) {
	const maxTokens = 8
	cfg := workerConfig(t)
	c := newTestCluster(t, 2, cfg, Config{ProbeInterval: 10 * time.Millisecond})
	prompt := testPrompt(t)
	want, _ := oracleRun(t, cfg, prompt, maxTokens)

	c.workers[0].srv.BeginDrain()
	deadline := time.Now().Add(2 * time.Second)
	for c.rt.workers[0].healthy.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.rt.workers[0].healthy.Load() {
		t.Fatal("prober never noticed the drain")
	}

	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(serve.Request{
			PromptTokens: prompt, MaxTokens: maxTokens, Protected: true,
		})
		resp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var res serve.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if !equalInts(res.Tokens, want) {
			t.Fatalf("request %d diverged", i)
		}
	}
	if st := c.rt.Stats(); st.Failures != 0 {
		t.Fatalf("failures while draining: %+v", st)
	}
}

// TestClientErrorsPassThrough checks a worker's 4xx verdict reaches the
// client untouched instead of triggering failover.
func TestClientErrorsPassThrough(t *testing.T) {
	cfg := workerConfig(t)
	c := newTestCluster(t, 2, cfg, Config{})
	body, _ := json.Marshal(serve.Request{MaxTokens: 4}) // no prompt at all
	resp, err := http.Post(c.front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "prompt") {
		t.Fatalf("unexpected error body %q", msg)
	}
	if st := c.rt.Stats(); st.Migrations != 0 {
		t.Fatalf("4xx caused failover: %+v", st)
	}
}

// TestRouterMetricsAndHealth exercises the router's own observability
// endpoints.
func TestRouterMetricsAndHealth(t *testing.T) {
	cfg := workerConfig(t)
	c := newTestCluster(t, 2, cfg, Config{})
	get := func(path string) (int, string) {
		resp, err := http.Get(c.front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz %d", code)
	}
	if code, _ := get("/livez"); code != 200 {
		t.Fatalf("livez %d", code)
	}
	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics %d", code)
	}
	for _, want := range []string{
		"ft2router_workers 2", "ft2router_workers_healthy 2",
		"ft2router_sessions_total", "ft2router_migrations_total",
		"ft2router_migration_latency_ms",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if code, body := get("/v1/models"); code != 200 || !strings.Contains(body, "qwen2-1.5b-sim") {
		t.Fatalf("models passthrough: %d %q", code, body)
	}

	for _, w := range c.workers {
		w.kill()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.rt.healthyCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("dead cluster healthz %d, want 503", code)
	}
}
