package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"ft2/internal/data"
	"ft2/internal/serve"
)

// This file is the proxy's session driver — the migration loop that makes a
// worker death invisible to the client. The protocol it rides on:
//
//   - Every session streams from its worker (NDJSON, one token per line),
//     whatever the client asked for; the router re-materializes a plain JSON
//     response for non-streaming clients.
//   - Every FetchStride relayed tokens the router pulls the session's latest
//     checkpoint (GET /v1/sessions/export) from the worker driving it.
//   - When the stream breaks, the router picks the next healthy worker in
//     ring order and resumes: from the checkpoint via POST
//     /v1/sessions/import when it has one (replaying only the tokens between
//     the checkpoint and the break), or from the original prompt when it
//     does not. Replayed tokens are verified against what was already
//     relayed — generation is deterministic, so any mismatch means state
//     corruption and fails the request rather than serving a silently
//     diverged stream.
//
// The worker-side capture ordering (checkpoint before the next decode step)
// guarantees the checkpoint never lags the relayed stream by more than one
// export stride, so the replay window is small and bounded.

// streamLine is one NDJSON line of a worker's token stream.
type streamLine struct {
	Token  *int          `json:"token"`
	Word   string        `json:"word"`
	Done   bool          `json:"done"`
	Error  string        `json:"error"`
	Result *serve.Result `json:"result"`
}

func (rt *Router) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req serve.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if req.SessionID == "" {
		// Sessions need stable ids for placement and checkpoint export; mint
		// one for clients that did not bring their own.
		req.SessionID = fmt.Sprintf("rt-%d-%d", os.Getpid(), rt.sessSeq.Add(1))
	}
	rt.sessions.Add(1)
	rt.driveSession(w, r, req)
}

// driveSession relays one generation to completion, failing over between
// workers as they die.
func (rt *Router) driveSession(w http.ResponseWriter, r *http.Request, req serve.Request) {
	clientStream := req.Stream
	upstream := req
	upstream.Stream = true

	var (
		received   []int  // tokens relayed to the client so far
		ckpt       []byte // latest checkpoint blob (nil until first fetch)
		ckptToks   int    // tokens the checkpoint covers
		written    bool   // client headers committed
		migrStart  time.Time
		enc        = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
	)
	beginStream := func() {
		if clientStream && !written {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			written = true
		}
	}
	// failSession: nothing left to try. Before the first byte this is a
	// clean HTTP error; mid-stream all we can do is a terminal error line.
	failSession := func(status int, msg string) {
		rt.failures.Add(1)
		if !written {
			writeJSONError(w, status, msg)
			return
		}
		enc.Encode(map[string]interface{}{"done": true, "error": msg})
	}

	maxAttempts := 3*len(rt.workers) + 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		wk := rt.pickWorkerWait(r.Context(), req.SessionID)
		if wk == nil {
			failSession(http.StatusServiceUnavailable, "router: no healthy workers")
			return
		}

		// Resume from the checkpoint when we have one that is actually
		// ahead of the prompt and behind the budget; otherwise replay from
		// scratch. Both paths re-produce the tokens we already relayed
		// (`skip` of them), which we verify rather than forward.
		resp, skip, viaCkpt, err := rt.openStream(r.Context(), wk, &upstream, req, received, ckpt, ckptToks)
		if err != nil {
			rt.markDead(wk)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
				// Draining or full: not dead, but not taking this session.
				// Nudge it out of rotation (the prober re-adds it) and move on.
				rt.markDead(wk)
				continue
			}
			// A real rejection (bad request, too long, …): the client's
			// problem, not a worker fault — pass it through verbatim.
			if !written {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(resp.StatusCode)
				w.Write(body)
			} else {
				failSession(resp.StatusCode, string(bytes.TrimSpace(body)))
			}
			return
		}
		if viaCkpt {
			rt.ckptMigr.Add(1)
		}

		done, why := rt.relayStream(w, r, resp.Body, relayState{
			req: req, worker: wk, clientStream: clientStream,
			received: &received, ckpt: &ckpt, ckptToks: &ckptToks,
			skip: skip, written: &written, migrStart: &migrStart,
			enc: enc, flusher: flusher, beginStream: beginStream,
		})
		resp.Body.Close()
		switch done {
		case relayFinished:
			return
		case relayFatal:
			failSession(http.StatusInternalServerError, why)
			return
		case relayBroken:
			// Worker died (or the connection did): fail over.
			rt.markDead(wk)
			rt.migrations.Add(1)
			migrStart = time.Now()
		}
	}
	failSession(http.StatusServiceUnavailable, "router: session failed on every worker")
}

// openStream starts (or resumes) the session on wk and returns the live
// NDJSON stream plus how many leading tokens are replays to verify-and-skip.
func (rt *Router) openStream(ctx context.Context, wk *worker, upstream *serve.Request, req serve.Request, received []int, ckpt []byte, ckptToks int) (resp *http.Response, skip int, viaCkpt bool, err error) {
	// Resume requests are driven by the worker's own spill files, which the
	// router cannot snapshot; they fail over by re-resuming from the parked
	// state (deterministic, so skip-verification still holds).
	useCkpt := ckpt != nil && ckptToks > 0 && len(received) >= ckptToks &&
		!req.Resume && req.MaxTokens-ckptToks >= 1
	if useCkpt {
		resp, err = rt.postImport(ctx, wk, req, ckpt)
		if err == nil && resp.StatusCode == http.StatusOK {
			return resp, len(received) - ckptToks, true, nil
		}
		// Import refused (e.g. checkpoint already covers the budget, or the
		// worker predates the endpoint): fall back to a fresh replay.
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
	}
	body, merr := json.Marshal(upstream)
	if merr != nil {
		return nil, 0, false, merr
	}
	hreq, herr := http.NewRequestWithContext(ctx, http.MethodPost, wk.url+"/v1/generate", bytes.NewReader(body))
	if herr != nil {
		return nil, 0, false, herr
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err = rt.cfg.Client.Do(hreq)
	if err != nil {
		return nil, 0, false, err
	}
	return resp, len(received), false, nil
}

func (rt *Router) postImport(ctx context.Context, wk *worker, req serve.Request, ckpt []byte) (*http.Response, error) {
	body, err := json.Marshal(serve.ImportRequest{
		SessionID:      req.SessionID,
		MaxTokensTotal: req.MaxTokens,
		StopAtEOS:      req.StopAtEOS,
		DeadlineMS:     req.DeadlineMS,
		Snapshot:       ckpt,
	})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.url+"/v1/sessions/import", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return rt.cfg.Client.Do(hreq)
}

type relayOutcome int

const (
	relayFinished relayOutcome = iota // terminal line relayed, session done
	relayBroken                       // stream died mid-generation: fail over
	relayFatal                        // unrecoverable (bit divergence)
)

type relayState struct {
	req          serve.Request
	worker       *worker
	clientStream bool
	received     *[]int
	ckpt         *[]byte
	ckptToks     *int
	skip         int
	written      *bool
	migrStart    *time.Time
	enc          *json.Encoder
	flusher      http.Flusher
	beginStream  func()
}

// relayStream pumps one worker stream: verifies replayed tokens, forwards
// fresh ones, fetches checkpoints on stride, and rewrites the terminal
// result to cover the whole session (a migrated worker only saw a suffix).
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request, body io.Reader, st relayState) (relayOutcome, string) {
	dec := json.NewDecoder(body)
	sinceFetch := 0
	for {
		var line streamLine
		if err := dec.Decode(&line); err != nil {
			return relayBroken, err.Error()
		}
		if line.Done {
			if line.Error != "" {
				// The worker itself failed the request (deadline, cancel):
				// that is a session-level verdict, not a worker death.
				rt.failures.Add(1)
				if !*st.written {
					writeJSONError(w, http.StatusInternalServerError, line.Error)
				} else {
					st.enc.Encode(map[string]interface{}{"done": true, "error": line.Error})
				}
				return relayFinished, ""
			}
			res := composeResult(line.Result, *st.received)
			if st.clientStream {
				st.beginStream()
				st.enc.Encode(map[string]interface{}{"done": true, "result": res})
			} else {
				w.Header().Set("Content-Type", "application/json")
				st.enc.Encode(res)
			}
			if st.flusher != nil {
				st.flusher.Flush()
			}
			*st.written = true
			return relayFinished, ""
		}
		if line.Token == nil {
			return relayBroken, "stream line without token"
		}
		tok := *line.Token
		if st.skip > 0 {
			// Replay window: the new worker re-emits tokens we already
			// relayed. They must match bit-for-bit.
			idx := len(*st.received) - st.skip
			if (*st.received)[idx] != tok {
				log.Printf("router: session %q diverged on replay at token %d: relayed %d, got %d",
					st.req.SessionID, idx, (*st.received)[idx], tok)
				return relayFatal, fmt.Sprintf(
					"router: replay diverged at token %d (had %d, worker produced %d)", idx, (*st.received)[idx], tok)
			}
			st.skip--
			continue
		}
		*st.received = append(*st.received, tok)
		if !st.migrStart.IsZero() {
			rt.observeMigration(float64(time.Since(*st.migrStart)) / float64(time.Millisecond))
			*st.migrStart = time.Time{}
		}
		if st.clientStream {
			st.beginStream()
			st.enc.Encode(map[string]interface{}{"token": tok, "word": line.Word})
			if st.flusher != nil {
				st.flusher.Flush()
			}
		}
		sinceFetch++
		if rt.cfg.FetchStride > 0 && sinceFetch >= rt.cfg.FetchStride && !st.req.Resume {
			if blob, toks, ok := rt.fetchCheckpoint(st.worker, st.req.SessionID); ok && toks > *st.ckptToks {
				*st.ckpt, *st.ckptToks = blob, toks
			}
			sinceFetch = 0
		}
	}
}

// composeResult rebuilds the session-wide Result from the final worker's
// terminal line: a migrated worker reports only the tokens it generated
// itself, but corrections are cumulative by construction (the fork state
// travels inside the checkpoint), so only tokens and text need stitching.
func composeResult(res *serve.Result, received []int) serve.Result {
	out := serve.Result{}
	if res != nil {
		out = *res
	}
	out.Tokens = received
	out.Text = data.Vocab().Decode(received)
	return out
}

// fetchCheckpoint pulls the session's latest export from the worker
// currently driving it. Failures (including 404 before the first capture)
// just keep the previous checkpoint.
func (rt *Router) fetchCheckpoint(wk *worker, sessionID string) ([]byte, int, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		wk.url+"/v1/sessions/export?id="+sessionID, nil)
	if err != nil {
		return nil, 0, false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, false
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, false
	}
	toks, err := strconv.Atoi(resp.Header.Get("X-FT2-Checkpoint-Tokens"))
	if err != nil || toks < 1 {
		return nil, 0, false
	}
	rt.fetches.Add(1)
	return blob, toks, true
}

// pickWorkerWait polls for a healthy worker in the session's ring order,
// riding out the probe lag after a kill (a few intervals) before giving up.
func (rt *Router) pickWorkerWait(ctx context.Context, sessionID string) *worker {
	deadline := time.Now().Add(10 * rt.cfg.ProbeInterval)
	for {
		if wk := rt.pickWorker(sessionID); wk != nil {
			return wk
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(rt.cfg.ProbeInterval / 5):
		}
	}
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
