package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashRing is a consistent-hash ring over worker indices. Each worker
// contributes vnodes points (fnv64a of "url#i"), so session placement is a
// pure function of the session id and the worker set: every router replica,
// and every restart of this one, maps the same id to the same worker. When
// the preferred worker is dead the ring yields its clockwise successors, so
// failover order is deterministic too — that is what makes the selftest's
// "kill a worker, outputs stay bit-identical" check meaningful.
type hashRing struct {
	points  []ringPoint // sorted by hash
	workers int
}

type ringPoint struct {
	hash   uint64
	worker int
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit finalization mix (the MurmurHash3 fmix). Raw FNV of
// short, similar strings — session ids are exactly that — clusters in a
// narrow band of the hash space, which would pile every session onto one
// worker; the mix spreads the avalanche over all 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newHashRing builds the ring for the given worker URLs.
func newHashRing(urls []string, vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &hashRing{workers: len(urls)}
	r.points = make([]ringPoint, 0, len(urls)*vnodes)
	for w, url := range urls {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{fnv64(fmt.Sprintf("%s#%d", url, i)), w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// sequence returns every worker index in ring order starting at the key's
// point — the first element is the preferred owner, the rest the failover
// order. Each worker appears exactly once.
func (r *hashRing) sequence(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]int, 0, r.workers)
	seen := make([]bool, r.workers)
	for i := 0; i < len(r.points) && len(seq) < r.workers; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			seq = append(seq, p.worker)
		}
	}
	return seq
}
