package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %g, want 5", Mean(xs))
	}
	sd := StdDev(xs)
	if math.Abs(sd-2.13809) > 1e-4 {
		t.Errorf("StdDev = %g, want ~2.138", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton cases must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("median = %g, want 3", Percentile(xs, 50))
	}
	if Percentile(xs, 25) != 2 {
		t.Errorf("Q1 = %g, want 2", Percentile(xs, 25))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 1000}
	if p.P() != 0.05 || p.Percent() != 5 {
		t.Error("Proportion point estimate wrong")
	}
	ci := p.CI95()
	// 1.96*sqrt(0.05*0.95/1000) ≈ 0.01351
	if math.Abs(ci-0.013508) > 1e-4 {
		t.Errorf("CI95 = %g, want ~0.01351", ci)
	}
	zero := Proportion{}
	if zero.P() != 0 || zero.CI95() != 0 {
		t.Error("zero-trial proportion must be 0")
	}
	if zero.String() == "" || p.String() == "" {
		t.Error("String must render")
	}
}

// Property: the CI half-width shrinks as 1/sqrt(n).
func TestCIShrinks(t *testing.T) {
	small := Proportion{Successes: 5, Trials: 100}
	big := Proportion{Successes: 500, Trials: 10000}
	if big.CI95() >= small.CI95() {
		t.Error("CI must shrink with more trials at the same rate")
	}
	ratio := small.CI95() / big.CI95()
	if math.Abs(ratio-10) > 0.1 {
		t.Errorf("CI ratio = %g, want ~10", ratio)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(-2, 2, 4)
	for _, x := range []float64{-1.5, -0.5, 0.5, 1.5, 1.5} {
		h.Add(x)
	}
	want := []int{1, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total != 5 {
		t.Errorf("Total = %d, want 5", h.Total)
	}
	if h.Fraction(3) != 0.4 {
		t.Errorf("Fraction(3) = %g, want 0.4", h.Fraction(3))
	}
	if h.BinCenter(0) != -1.5 {
		t.Errorf("BinCenter(0) = %g, want -1.5", h.BinCenter(0))
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)         // underflow -> bin 0
	h.Add(5)          // overflow -> last bin
	h.Add(math.NaN()) // dropped
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Total != 2 {
		t.Errorf("edge handling wrong: %v total=%d", h.Counts, h.Total)
	}
}

func TestHistogramSparkline(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	if h.Sparkline() != "" {
		t.Error("empty histogram sparkline must be empty")
	}
	h.Add(0.5)
	for i := 0; i < 100; i++ {
		h.Add(2.5)
	}
	s := []rune(h.Sparkline())
	if len(s) != 3 {
		t.Fatalf("sparkline length %d, want 3", len(s))
	}
	if s[1] != '▁' {
		t.Error("empty bin should render lowest mark")
	}
	if s[2] != '█' {
		t.Error("max bin should render highest mark")
	}
}

// Property: histogram total equals number of non-NaN Adds.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-1, 1, 8)
		want := 0
		for _, x := range xs {
			h.Add(x)
			if !math.IsNaN(x) {
				want++
			}
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return h.Total == want && sum == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram must panic on invalid params")
		}
	}()
	NewHistogram(1, 0, 4)
}
