// Package stats provides the small statistical toolkit used by the fault
// injection campaigns: sample means, binomial proportion confidence
// intervals (the paper quotes 95% CIs per Leemis & Park), and fixed-bin
// histograms for the neuron-value-distribution figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) via linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion is an estimated binomial proportion with its Wald 95%
// confidence half-width, the estimator used in statistical fault injection
// studies (Leveugle et al.; Leemis & Park).
type Proportion struct {
	Successes int
	Trials    int
}

// P returns the point estimate (0 when no trials ran).
func (p Proportion) P() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Percent returns the point estimate as a percentage.
func (p Proportion) Percent() float64 { return p.P() * 100 }

// CI95 returns the 95% Wald confidence half-width of the estimate.
func (p Proportion) CI95() float64 {
	if p.Trials == 0 {
		return 0
	}
	const z = 1.959963984540054
	est := p.P()
	return z * math.Sqrt(est*(1-est)/float64(p.Trials))
}

// String renders "x.xx% ±y.yy% (s/n)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.3f%% ±%.3f%% (%d/%d)", p.Percent(), p.CI95()*100, p.Successes, p.Trials)
}

// Histogram is a fixed-bin histogram over [Lo, Hi) with overflow/underflow
// counted in the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation. NaNs are dropped.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.Total++
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Sparkline renders the histogram as a one-line unicode bar chart, handy for
// the ASCII reproduction of the paper's distribution figures.
func (h *Histogram) Sparkline() string {
	marks := []rune("▁▂▃▄▅▆▇█")
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return ""
	}
	out := make([]rune, len(h.Counts))
	for i, c := range h.Counts {
		// log scale so sparse outlier bins stay visible
		level := 0
		if c > 0 {
			level = 1 + int(float64(len(marks)-2)*math.Log1p(float64(c))/math.Log1p(float64(maxC)))
			if level >= len(marks) {
				level = len(marks) - 1
			}
		}
		out[i] = marks[level]
	}
	return string(out)
}
