package perfmodel

import (
	"testing"

	"ft2/internal/numerics"
)

func llamaQA() Workload {
	return Workload{Params: 6.74e9, PromptTokens: 1024, GenTokens: 60, DType: numerics.FP16}
}

func llamaMath() Workload {
	return Workload{Params: 6.74e9, PromptTokens: 512, GenTokens: 180, DType: numerics.FP16}
}

func TestInferenceTimeInPaperRange(t *testing.T) {
	// Paper Sec 5.2.2: per-inference latency 1.35 – 6.4 s on A100.
	for _, w := range []Workload{llamaQA(), llamaMath()} {
		sec := InferenceTime(A100, w).Seconds()
		if sec < 1.0 || sec > 15 {
			t.Errorf("A100 inference time %.2fs outside plausible range", sec)
		}
	}
	qa := InferenceTime(A100, llamaQA()).Seconds()
	if qa < 1.35 || qa > 6.4 {
		t.Errorf("A100 QA inference %.2fs outside the paper's 1.35-6.4s", qa)
	}
}

func TestFirstTokenFractionMatchesFig10(t *testing.T) {
	// A100: QA 1.89–8.33%, Math 0.6–2.66%.
	qa := FirstTokenFraction(A100, llamaQA())
	if qa < 0.0189 || qa > 0.0833 {
		t.Errorf("A100 QA first-token fraction %.4f outside paper range", qa)
	}
	math := FirstTokenFraction(A100, llamaMath())
	if math < 0.006 || math > 0.0266 {
		t.Errorf("A100 Math first-token fraction %.4f outside paper range", math)
	}
	// H100: QA 1.75–2%, Math 0.59–0.61% (we accept a looser band: the model
	// captures the ordering, not the exact calibration).
	qaH := FirstTokenFraction(H100, llamaQA())
	if qaH < 0.01 || qaH > 0.035 {
		t.Errorf("H100 QA first-token fraction %.4f outside loose band", qaH)
	}
	if FirstTokenFraction(H100, llamaMath()) >= qaH {
		t.Error("Math first-token fraction must be below QA (3× more decode steps)")
	}
	// The paper's headline: first token is always <10% of execution time.
	for _, g := range GPUs {
		for _, w := range []Workload{llamaQA(), llamaMath()} {
			if f := FirstTokenFraction(g, w); f >= 0.10 {
				t.Errorf("%s: first-token fraction %.3f >= 10%%", g.Name, f)
			}
		}
	}
}

func TestH100FasterThanA100(t *testing.T) {
	for _, w := range []Workload{llamaQA(), llamaMath()} {
		if InferenceTime(H100, w) >= InferenceTime(A100, w) {
			t.Error("H100 must be faster than A100")
		}
	}
	speedup := InferenceTime(A100, llamaQA()).Seconds() / InferenceTime(H100, llamaQA()).Seconds()
	// Paper Fig 4: 217.5h -> 36.7h is ~5.9×; our calibration lands 3–6×.
	if speedup < 2.5 || speedup > 7 {
		t.Errorf("A100→H100 speedup %.1f× outside plausible calibration", speedup)
	}
}

func TestProfilingHoursShape(t *testing.T) {
	// Fig 4: profiling reaches up to ~217.5h on A100 and tens of hours on
	// H100. XTREME-like corpus: 122k inputs.
	xtremeA := ProfilingHours(A100, Workload{Params: 6.74e9, PromptTokens: 768, GenTokens: 60, DType: numerics.FP16}, 122000)
	if xtremeA < 50 || xtremeA > 400 {
		t.Errorf("A100 XTREME-scale profiling %.1fh outside the paper's order of magnitude", xtremeA)
	}
	gsmA := ProfilingHours(A100, Workload{Params: 6.74e9, PromptTokens: 512, GenTokens: 180, DType: numerics.FP16}, 1500)
	if gsmA < 2 || gsmA > 30 {
		t.Errorf("A100 GSM8K-scale profiling %.1fh outside the paper's order of magnitude", gsmA)
	}
	if gsmA >= xtremeA {
		t.Error("GSM8K profiling must be far cheaper than XTREME (corpus size)")
	}
}

func TestPrefillStepWeight(t *testing.T) {
	w := llamaQA()
	weight := PrefillStepWeight(A100, w)
	if weight <= 0 {
		t.Fatal("prefill weight must be positive")
	}
	// Consistency: weight/(weight + gen-1) == FirstTokenFraction.
	frac := weight / (weight + float64(w.GenTokens-1))
	if diff := frac - FirstTokenFraction(A100, w); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("prefill weight inconsistent with first-token fraction: %g vs %g", frac, FirstTokenFraction(A100, w))
	}
}

func TestFP32SlowerThanFP16(t *testing.T) {
	w16 := llamaQA()
	w32 := w16
	w32.DType = numerics.FP32
	if DecodeTimePerToken(A100, w32) <= DecodeTimePerToken(A100, w16) {
		t.Error("FP32 decode must be slower (twice the bytes)")
	}
	if PrefillTime(A100, w32) <= PrefillTime(A100, w16) {
		t.Error("FP32 prefill must be slower (lower TFLOPS)")
	}
}

func TestDegenerateWorkloads(t *testing.T) {
	if PrefillStepWeight(GPU{Name: "zero"}, llamaQA()) != 1 {
		t.Error("zero-bandwidth GPU must fall back to weight 1")
	}
	if FirstTokenFraction(GPU{Name: "zero"}, Workload{}) != 0 {
		t.Error("empty workload fraction must be 0")
	}
}
