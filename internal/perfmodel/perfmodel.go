// Package perfmodel is an analytic roofline-style performance model of LLM
// inference on the paper's two GPUs (NVIDIA A100 and H100). It supplies the
// quantities the evaluation needs that are properties of the *reference*
// hardware, not of the scaled-down Go engine:
//
//   - offline bound-profiling cost in hours (Figure 4),
//   - the first-token share of total inference time (Figure 10),
//   - the execution-time weight of the prefill pass used by the fault
//     sampler (faults arrive uniformly in time, so the prefill's share of
//     fault exposure is its share of wall-clock time — the argument of
//     Section 4.2.2).
//
// Prefill is modeled as compute-bound (2·P·T FLOPs at an effective MFU) and
// single-token decode as memory-bound (P·bytes of weights per token at an
// effective bandwidth utilization). The utilization constants are calibrated
// so the model reproduces the paper's reported times: per-inference latency
// 1.35–6.4 s (Sec. 5.2.2), first-token fractions 1.89–8.33% (QA) and
// 0.6–2.66% (Math) on A100, 1.75–2% / 0.59–0.61% on H100 (Fig. 10), and
// profiling costs up to 217.5 h on A100 vs 36.7 h on H100 (Fig. 4).
package perfmodel

import (
	"time"

	"ft2/internal/numerics"
)

// GPU describes one hardware configuration.
type GPU struct {
	Name string
	// Peak dense throughput in TFLOP/s by dtype.
	FP16TFLOPS float64
	FP32TFLOPS float64
	// Peak HBM bandwidth in GB/s.
	MemBWGBs float64
	// MFU is the effective fraction of peak compute achieved by the
	// batch-1 prefill pass (framework + kernel efficiency).
	MFU float64
	// MBU is the effective fraction of peak bandwidth achieved by batch-1
	// decode.
	MBU float64
}

// The two evaluation platforms (Sec. 5.1). Peak numbers are the published
// dense specs; MFU/MBU are calibrated against the paper's reported times.
var (
	A100 = GPU{Name: "A100", FP16TFLOPS: 312, FP32TFLOPS: 19.5, MemBWGBs: 1555, MFU: 0.20, MBU: 0.12}
	H100 = GPU{Name: "H100", FP16TFLOPS: 989, FP32TFLOPS: 67, MemBWGBs: 3350, MFU: 0.55, MBU: 0.22}
)

// GPUs lists the two platforms in paper order.
var GPUs = []GPU{A100, H100}

func (g GPU) tflops(d numerics.DType) float64 {
	if d == numerics.FP32 {
		return g.FP32TFLOPS
	}
	return g.FP16TFLOPS
}

// Workload is a reference inference configuration.
type Workload struct {
	// Params is the reference model's parameter count (e.g. 6.74e9).
	Params float64
	// PromptTokens is the reference prompt length.
	PromptTokens int
	// GenTokens is the number of generated tokens (60 QA / 180 Math).
	GenTokens int
	// DType selects weight precision (bytes moved per decode step).
	DType numerics.DType
}

// PrefillTime models the compute-bound prefill pass: 2·P FLOPs per prompt
// token at the GPU's effective MFU.
func PrefillTime(g GPU, w Workload) time.Duration {
	flops := 2 * w.Params * float64(w.PromptTokens)
	sec := flops / (g.tflops(w.DType) * 1e12 * g.MFU)
	return time.Duration(sec * float64(time.Second))
}

// DecodeTimePerToken models a memory-bound decode step: every weight byte
// is streamed once per token.
func DecodeTimePerToken(g GPU, w Workload) time.Duration {
	bytes := w.Params * float64(w.DType.Bits()/8)
	sec := bytes / (g.MemBWGBs * 1e9 * g.MBU)
	return time.Duration(sec * float64(time.Second))
}

// InferenceTime is the full generation latency: one prefill plus
// GenTokens-1 decode steps (the first token comes out of the prefill).
func InferenceTime(g GPU, w Workload) time.Duration {
	return PrefillTime(g, w) + time.Duration(w.GenTokens-1)*DecodeTimePerToken(g, w)
}

// FirstTokenFraction returns the first-token generation's share of total
// inference time (Figure 10).
func FirstTokenFraction(g GPU, w Workload) float64 {
	p := PrefillTime(g, w).Seconds()
	total := InferenceTime(g, w).Seconds()
	if total == 0 {
		return 0
	}
	return p / total
}

// PrefillStepWeight expresses the prefill pass's execution time in units of
// decode steps — the weight the fault sampler gives step 0 so that fault
// arrival is uniform in time.
func PrefillStepWeight(g GPU, w Workload) float64 {
	d := DecodeTimePerToken(g, w).Seconds()
	if d == 0 {
		return 1
	}
	return PrefillTime(g, w).Seconds() / d
}

// ProfilingTime is the offline bound-profiling cost: numInputs full
// inferences (Figure 4; 20% of the training set, full generations so every
// token step's activations contribute).
func ProfilingTime(g GPU, w Workload, numInputs int) time.Duration {
	return time.Duration(numInputs) * InferenceTime(g, w)
}

// ProfilingHours is ProfilingTime in hours, the unit of Figure 4.
func ProfilingHours(g GPU, w Workload, numInputs int) float64 {
	return ProfilingTime(g, w, numInputs).Hours()
}
