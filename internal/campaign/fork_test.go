package campaign

import (
	"context"
	"path/filepath"
	"testing"

	"ft2/internal/arch"
	"ft2/internal/fault"
	"ft2/internal/model"
)

// familySpec is baseSpec retargeted at a specific simulated model family.
func familySpec(t *testing.T, name string, method arch.Method) Spec {
	t.Helper()
	spec := baseSpec(t, method)
	cfg, err := model.ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.ModelCfg = cfg
	return spec
}

var simFamilies = []string{"opt-2.7b-sim", "gptj-6b-sim", "llama2-7b-sim"}

// TestCheckpointStrideDefault: an explicit positive stride wins; otherwise
// the stride defaults to ⌈√GenTokens⌉.
func TestCheckpointStrideDefault(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone) // GenTokens = 16
	if got := spec.checkpointStride(); got != 4 {
		t.Errorf("default stride = %d, want ⌈√16⌉ = 4", got)
	}
	spec.CheckpointStride = 3
	if got := spec.checkpointStride(); got != 3 {
		t.Errorf("explicit stride = %d, want 3", got)
	}
}

// TestForkTrialEquivalenceForcedSites: a forked trial must be bit-identical
// to a from-scratch trial for the same fault site — same outcome kind, SDC
// classification, and correction counters — at the first, a middle, and the
// last decode step, for every family and protection path, at stride 1 and a
// deliberately misaligned coarse stride.
func TestForkTrialEquivalenceForcedSites(t *testing.T) {
	for _, fam := range simFamilies {
		for _, method := range []arch.Method{arch.MethodNone, arch.MethodFT2, arch.MethodRanger} {
			t.Run(fam+"/"+method.String(), func(t *testing.T) {
				for _, stride := range []int{1, 6} {
					spec := familySpec(t, fam, method)
					spec.CheckpointStride = stride
					golden, err := goldenOutputs(context.Background(), spec)
					if err != nil {
						t.Fatal(err)
					}
					forks, err := buildForkStore(context.Background(), spec)
					if err != nil {
						t.Fatal(err)
					}
					if forks == nil {
						t.Fatal("buildForkStore returned nil with forking enabled")
					}
					forked, err := newTrialRunner(spec, golden, forks)
					if err != nil {
						t.Fatal(err)
					}
					scratch, err := newTrialRunner(spec, golden, nil)
					if err != nil {
						t.Fatal(err)
					}

					last := spec.Dataset.GenTokens - 1
					kind := spec.ModelCfg.Family.LayerKinds()[0]
					for _, step := range []int{0, 1, last / 2, last} {
						for idx := range spec.Dataset.Inputs {
							site := fault.Site{
								Step:  step,
								Layer: model.LayerRef{Block: 0, Kind: kind},
								Elem:  3,
								Bits:  []int{14},
							}
							a, aerr := forked.runWithSite(context.Background(), idx, site)
							forked.m.ClearHooks()
							b, berr := scratch.runWithSite(context.Background(), idx, site)
							scratch.m.ClearHooks()
							if aerr != nil || berr != nil {
								t.Fatalf("stride %d step %d input %d: errors %v / %v", stride, step, idx, aerr, berr)
							}
							if a != b {
								t.Errorf("stride %d step %d input %d: forked %+v != scratch %+v",
									stride, step, idx, a, b)
							}
						}
					}
				}
			})
		}
	}
}

// TestForkedCampaignBitIdentical: a full campaign with forking must produce
// exactly the same Result as the same campaign with NoFork, for each family.
func TestForkedCampaignBitIdentical(t *testing.T) {
	for _, fam := range simFamilies {
		t.Run(fam, func(t *testing.T) {
			spec := familySpec(t, fam, arch.MethodFT2)
			spec.Trials = 40
			forked, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.NoFork = true
			scratch, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !statsEqual(forked, scratch) {
				t.Errorf("forked result differs from no-fork: %+v vs %+v", forked, scratch)
			}
		})
	}
}

// TestForkedCampaignBitIdenticalDMR: the DMR escape hatch resumes its
// detection counter across forks too.
func TestForkedCampaignBitIdenticalDMR(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.UseDMR = true
	spec.Trials = 20
	forked, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NoFork = true
	scratch, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(forked, scratch) {
		t.Errorf("forked DMR result differs from no-fork: %+v vs %+v", forked, scratch)
	}
}

// TestForkFingerprintInvariant: NoFork and CheckpointStride are execution
// knobs — they must not change the journal fingerprint, or -resume could not
// interoperate across forked and unforked runs.
func TestForkFingerprintInvariant(t *testing.T) {
	spec := baseSpec(t, arch.MethodFT2)
	fp := spec.Fingerprint()
	spec.NoFork = true
	spec.CheckpointStride = 3
	if got := spec.Fingerprint(); got != fp {
		t.Errorf("fingerprint changed with fork knobs: %s vs %s", got, fp)
	}
}

// TestForkJournalCrossover: a campaign journaled under NoFork and resumed
// with forking enabled (and more trials) must match an uninterrupted forked
// run — the fork→resume→no-fork interop the journal fingerprint guarantees.
func TestForkJournalCrossover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	ref := baseSpec(t, arch.MethodFT2)
	ref.Trials = 30
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: first half of the trials, forking disabled.
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	half := ref
	half.NoFork = true
	half.Trials = 15
	half.Journal = j1
	if _, err := Run(half); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Phase 2: resume the full campaign with forking on.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	full := ref
	full.Journal = j2
	got, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != ref.Trials {
		t.Fatalf("resumed campaign completed %d/%d trials", got.Completed, ref.Trials)
	}
	if !statsEqual(want, got) {
		t.Errorf("no-fork→fork resume differs from straight run: %+v vs %+v", got, want)
	}
}

// TestForkStoreMemoryBound: the number of retained checkpoints and their
// total KV payload must follow the documented stride bound.
func TestForkStoreMemoryBound(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	n := spec.Dataset.GenTokens
	var prev int
	for _, stride := range []int{1, 4, 8} {
		spec.CheckpointStride = stride
		fs, err := buildForkStore(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		wantPts := (n - 1 + stride - 1) / stride // ⌈(GenTokens−1)/stride⌉
		wantBytes := 0
		for i, in := range spec.Dataset.Inputs {
			pts := fs.inputs[i].points
			if len(pts) != wantPts {
				t.Fatalf("stride %d input %d: %d checkpoints, want %d", stride, i, len(pts), wantPts)
			}
			for j, p := range pts {
				step := 1 + j*stride
				if p.snap.NextStep() != step {
					t.Errorf("stride %d input %d point %d: NextStep %d, want %d",
						stride, i, j, p.snap.NextStep(), step)
				}
				// Before step s the cache holds the prefill rows plus one row
				// per completed decode step: len(prompt) + (s − 1).
				rows := len(in.Prompt) + step - 1
				if p.snap.Rows() != rows {
					t.Errorf("stride %d input %d point %d: rows %d, want %d",
						stride, i, j, p.snap.Rows(), rows)
				}
				wantBytes += spec.ModelCfg.Blocks * 2 * rows * spec.ModelCfg.Hidden * 4
			}
		}
		if got := fs.MemoryBytes(); got != wantBytes {
			t.Errorf("stride %d: MemoryBytes %d, want %d", stride, got, wantBytes)
		}
		if prev > 0 && fs.MemoryBytes() >= prev {
			t.Errorf("stride %d retains %d bytes, not less than finer stride's %d",
				stride, fs.MemoryBytes(), prev)
		}
		prev = fs.MemoryBytes()
	}
}

// TestBuildForkStoreDisabled: NoFork and degenerate generations yield no
// store, and the campaign still runs (every trial from scratch).
func TestBuildForkStoreDisabled(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.NoFork = true
	if fs, err := buildForkStore(context.Background(), spec); err != nil || fs != nil {
		t.Errorf("NoFork: store %v, err %v; want nil, nil", fs, err)
	}
	spec.NoFork = false
	spec.Dataset.GenTokens = 1
	spec.Dataset.AnswerLo, spec.Dataset.AnswerHi = 0, 1
	if fs, err := buildForkStore(context.Background(), spec); err != nil || fs != nil {
		t.Errorf("GenTokens=1: store %v, err %v; want nil, nil", fs, err)
	}
}
