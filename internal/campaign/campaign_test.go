package campaign

import (
	"testing"

	"ft2/internal/arch"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/protect"
)

// smallDataset trims generation length so campaign tests stay fast while
// exercising the full pipeline.
func smallDataset(t *testing.T) *data.Dataset {
	t.Helper()
	d := data.SquadSim(4)
	d.GenTokens = 16
	d.AnswerLo, d.AnswerHi = 8, 12
	return d
}

func baseSpec(t *testing.T, method arch.Method) Spec {
	t.Helper()
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		ModelCfg:  cfg,
		ModelSeed: 42,
		DType:     numerics.FP16,
		Fault:     numerics.ExponentBit,
		Method:    method,
		FT2Opts:   core.Defaults(),
		Dataset:   smallDataset(t),
		Trials:    60,
		BaseSeed:  1,
	}
	if spec.needsOfflineBounds() {
		m := model.MustNew(cfg, 42, numerics.FP16)
		spec.OfflineBounds = protect.OfflineProfile(m, spec.Dataset.Prompts(), spec.Dataset.GenTokens)
	}
	return spec
}

func TestRunUnprotected(t *testing.T) {
	res, err := Run(baseSpec(t, arch.MethodNone))
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC.Trials != 60 {
		t.Errorf("trials = %d, want 60", res.SDC.Trials)
	}
	if res.SDC.Successes == 0 {
		t.Error("EXP faults on an unprotected model should cause some SDCs")
	}
	if res.Corrections.Total() != 0 {
		t.Error("unprotected run must report zero corrections")
	}
	sum := 0
	for _, p := range res.ByKind {
		sum += p.Trials
	}
	if sum != 60 {
		t.Errorf("per-kind trials sum to %d, want 60", sum)
	}
}

func TestRunFT2ReducesSDC(t *testing.T) {
	unprot, err := Run(baseSpec(t, arch.MethodNone))
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := Run(baseSpec(t, arch.MethodFT2))
	if err != nil {
		t.Fatal(err)
	}
	if ft2.SDC.Successes > unprot.SDC.Successes {
		t.Errorf("FT2 SDC count %d exceeds unprotected %d", ft2.SDC.Successes, unprot.SDC.Successes)
	}
	if ft2.Corrections.Total() == 0 {
		t.Error("FT2 should have corrected some values across 60 EXP-fault trials")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Workers = 4
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 1
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.SDC != b.SDC {
		t.Errorf("campaign result depends on worker count: %v vs %v", a.SDC, b.SDC)
	}
}

func TestRunBaselineMethods(t *testing.T) {
	for _, m := range []arch.Method{arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2Offline} {
		spec := baseSpec(t, m)
		spec.Trials = 30
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.SDC.Trials != 30 {
			t.Errorf("%v: trials %d", m, res.SDC.Trials)
		}
	}
}

func TestRunWindows(t *testing.T) {
	for _, w := range []Window{WindowFirstToken, WindowFollowing} {
		spec := baseSpec(t, arch.MethodNone)
		spec.Window = w
		spec.Trials = 20
		if _, err := Run(spec); err != nil {
			t.Fatalf("%v: %v", w, err)
		}
	}
	if WindowAll.String() != "all" || WindowFirstToken.String() != "first-token" || WindowFollowing.String() != "following" {
		t.Error("Window strings wrong")
	}
}

func TestRunCustomCoverage(t *testing.T) {
	spec := baseSpec(t, arch.MethodFT2Offline) // forces bounds profiling
	spec.Trials = 20
	// Leave-one-out: protect all linear layers except V_PROJ.
	cov := make(map[arch.CoveragePoint]bool)
	for _, k := range spec.ModelCfg.Family.LayerKinds() {
		if k != model.VProj {
			cov[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] = true
		}
	}
	spec.CustomCoverage = cov
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC.Trials != 20 {
		t.Errorf("trials = %d", res.SDC.Trials)
	}
}

func TestRunValidation(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Dataset = nil
	if _, err := Run(spec); err == nil {
		t.Error("nil dataset must error")
	}
	spec = baseSpec(t, arch.MethodNone)
	spec.Trials = 0
	if _, err := Run(spec); err == nil {
		t.Error("zero trials must error")
	}
	spec = baseSpec(t, arch.MethodRanger)
	spec.OfflineBounds = nil
	if _, err := Run(spec); err == nil {
		t.Error("Ranger without bounds must error")
	}
}

func TestFaultFreeCorrectness(t *testing.T) {
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t)

	// Unprotected fault-free runs are 100% correct by definition.
	p, _, err := FaultFreeCorrectness(cfg, 42, numerics.FP16, ds, arch.MethodNone, nil, protect.ClipToBound)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 1 {
		t.Errorf("unprotected fault-free correctness = %v, want 1", p)
	}

	// FT2 (scaled first-token bounds) must stay at 100%.
	p, _, err = FaultFreeCorrectness(cfg, 42, numerics.FP16, ds, arch.MethodFT2, nil, protect.ClipToBound)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 1 {
		t.Errorf("FT2 fault-free correctness = %v, want 1", p)
	}

	// Bounds profiled on the *target* dataset must also be safe.
	m := model.MustNew(cfg, 42, numerics.FP16)
	own := protect.OfflineProfile(m, ds.Prompts(), ds.GenTokens)
	p, _, err = FaultFreeCorrectness(cfg, 42, numerics.FP16, ds, arch.MethodFT2Offline, own, protect.ClipToBound)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 1 {
		t.Errorf("own-dataset offline bounds correctness = %v, want 1", p)
	}
}

func TestFaultFreeCorrectnessAlternativeBoundsDegrade(t *testing.T) {
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	target := smallDataset(t)
	m := model.MustNew(cfg, 42, numerics.FP16)

	alt := data.MbppSim(4)
	alt.GenTokens = 16
	altBounds := protect.OfflineProfile(m, alt.Prompts(), alt.GenTokens)
	p, _, err := FaultFreeCorrectness(cfg, 42, numerics.FP16, target, arch.MethodFT2Offline, altBounds, protect.ClipToZero)
	if err != nil {
		t.Fatal(err)
	}
	// Misaligned bounds may clip benign values; correctness must not exceed
	// own-dataset correctness (and typically drops — Fig. 3).
	if p.P() > 1 {
		t.Errorf("correctness %v out of range", p)
	}
	t.Logf("alternative-bounds correctness: %v", p)
}

func TestRunDMR(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.UseDMR = true
	spec.Trials = 25
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC.Successes != 0 {
		t.Errorf("DMR must correct every injected linear fault, got %v", res.SDC)
	}
	if res.Corrections.OutOfBound == 0 {
		t.Error("DMR should report detected corruptions")
	}
}

func TestPrefillWeightDerivation(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	// Default derives from the A100 perf model: small but positive.
	w := spec.prefillWeight()
	if w <= 0 || w > 20 {
		t.Errorf("derived prefill weight %g implausible", w)
	}
	spec.PrefillWeight = 7.5
	if spec.prefillWeight() != 7.5 {
		t.Error("explicit prefill weight must win")
	}
	spec.PrefillWeight = 0
	spec.GPU = perfmodel.H100
	wH := spec.prefillWeight()
	if wH <= 0 {
		t.Error("H100-derived weight must be positive")
	}
	if wH == w {
		t.Error("different GPUs should give different prefill weights")
	}
}

func TestSweepSharesProfiledBounds(t *testing.T) {
	base := baseSpec(t, arch.MethodNone)
	base.Trials = 15
	sw := Sweep{Base: base, ProfileInputs: 6}
	results, err := sw.Run(arch.MethodNone, arch.MethodRanger, arch.MethodFT2, arch.MethodFT2Offline)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []arch.Method{arch.MethodNone, arch.MethodRanger, arch.MethodFT2, arch.MethodFT2Offline} {
		if results[i].Method != want {
			t.Errorf("result %d method %v, want %v", i, results[i].Method, want)
		}
		if results[i].Result.SDC.Trials != 15 {
			t.Errorf("%v: trials %d", want, results[i].Result.SDC.Trials)
		}
	}
}

func TestSweepWithoutProfilingErrorsForOfflineMethods(t *testing.T) {
	base := baseSpec(t, arch.MethodNone)
	base.OfflineBounds = nil
	base.Trials = 5
	sw := Sweep{Base: base, ProfileInputs: 0}
	if _, err := sw.Run(arch.MethodRanger); err == nil {
		t.Error("offline method without profiling must error")
	}
	// Online-only methods still work.
	if _, err := sw.Run(arch.MethodNone, arch.MethodFT2); err != nil {
		t.Errorf("online methods must not need profiling: %v", err)
	}
}
