// Package campaign orchestrates statistical fault-injection campaigns: it
// fans trials out over a worker pool (one model replica per worker),
// injects exactly one fault per inference at a uniformly sampled site,
// applies the configured protection, classifies each outcome as Masked or
// SDC with the paper's containment rule, and aggregates binomial SDC-rate
// estimates with 95% confidence intervals.
//
// The execution core treats the harness itself as a fault domain: every
// trial runs under a recover() boundary that converts panics into a typed
// TrialError, transient failures are retried with a bounded budget, a dead
// worker replaces its model replica instead of sinking the pool, campaigns
// honor context cancellation and per-trial watchdog timeouts, and an
// append-only JSONL journal checkpoints classified outcomes so interrupted
// campaigns resume without re-running completed trials.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"ft2/internal/arch"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/protect"
	"ft2/internal/stats"
	"ft2/internal/tensor"
)

// Window restricts where in the inference faults are injected.
type Window int

const (
	// WindowAll samples sites uniformly over the whole inference.
	WindowAll Window = iota
	// WindowFirstToken restricts injection to the prefill pass (Fig. 11).
	WindowFirstToken
	// WindowFollowing restricts injection to the decode steps.
	WindowFollowing
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case WindowFirstToken:
		return "first-token"
	case WindowFollowing:
		return "following"
	default:
		return "all"
	}
}

// Spec configures one campaign cell (model × dataset × fault model ×
// protection method).
type Spec struct {
	ModelCfg  model.Config
	ModelSeed int64
	DType     numerics.DType
	Fault     numerics.FaultModel
	Method    arch.Method
	// FT2Opts configures the online FT2 when Method is MethodFT2.
	FT2Opts core.Options
	// OfflineBounds supplies profiled bounds for the baseline methods and
	// MethodFT2Offline. Required for every method except None and FT2.
	OfflineBounds *protect.Store
	// CustomCoverage, when non-nil, overrides the method's coverage with an
	// explicit site set protected via offline bounds + clip-to-bound + NaN
	// correction — the leave-one-out configuration of Figure 6.
	CustomCoverage map[arch.CoveragePoint]bool
	// UseDMR replaces the method's protection with duplication in place
	// over every linear layer (the high-overhead 0%-SDC alternative of the
	// paper's limitations section; see protect.DMR).
	UseDMR bool
	// Policy, when non-nil, replaces the method's protection with the
	// adaptive per-layer-kind hybrid controller the serving layer runs
	// (core.Hybrid): FT2 range restriction, ABFT checksum repair, DMR, or a
	// stacked abft+ft2 per layer kind, with FT2Opts configuring the FT2
	// tier. Method, UseDMR and CustomCoverage are ignored when set.
	Policy *protect.Policy
	// Targets routes a fraction of sampled faults to persistent weight
	// corruption and resident KV-cache flips (see fault.TargetMix); the
	// remainder stays transient activation flips. The zero value reproduces
	// the historical activation-only sampling — and its journal
	// fingerprint — exactly.
	Targets fault.TargetMix
	Dataset *data.Dataset
	// Trials is the total number of fault injections, spread round-robin
	// over the dataset inputs.
	Trials   int
	BaseSeed int64
	Window   Window
	// GPU selects the reference hardware for the time-uniform fault
	// exposure model (zero value: A100). Reliability is hardware-independent
	// (Sec. 5.2.4) up to the prefill/decode time ratio this supplies.
	GPU perfmodel.GPU
	// PrefillWeight overrides the prefill pass's execution-time weight in
	// decode-step equivalents; 0 derives it from the GPU performance model
	// and the dataset's reference workload.
	PrefillWeight float64
	// Workers caps the pool size (default GOMAXPROCS).
	Workers int

	// NoFork disables golden-checkpoint forking: every trial re-executes
	// its full prefill + decode from scratch. Forked and unforked campaigns
	// are bit-identical (greedy decode over the deterministic engine), so
	// this is purely an escape hatch / baseline for benchmarks; it is
	// excluded from the journal fingerprint and -resume interoperates
	// across forked and unforked runs.
	NoFork bool
	// CheckpointStride is the decode-step distance between recorded golden
	// checkpoints (see fork.go); 0 derives ⌈√GenTokens⌉. The stride bounds
	// checkpoint memory at ⌈(GenTokens−1)/stride⌉ × Blocks × 2 × rows ×
	// Hidden floats per input.
	CheckpointStride int

	// TrialTimeout is the per-trial watchdog budget: a trial is aborted and
	// classified TrialTimeout when the inference makes no token progress
	// (prefill counts as the first token) for this long. 0 disables the
	// watchdog.
	TrialTimeout time.Duration
	// TrialRetries bounds how many times a failed trial is re-attempted
	// before it is recorded as Failed. 0 means the default of 1 retry;
	// negative disables retries. Per-trial seeding makes retries safe: a
	// retried trial reproduces the identical fault site.
	TrialRetries int
	// Journal, when non-nil, checkpoints every classified outcome and
	// replays outcomes already recorded for this spec's Fingerprint before
	// executing the remaining trials.
	Journal *Journal
	// TrialHook, when non-nil, supplies an extra forward hook per trial,
	// registered right after the fault injector. It is the chaos-testing
	// seam (a hook that panics simulates a crashed trial) and is excluded
	// from the spec fingerprint.
	TrialHook func(trial int) model.Hook
}

// retryBudget resolves the per-trial retry count.
func (s Spec) retryBudget() int {
	switch {
	case s.TrialRetries > 0:
		return s.TrialRetries
	case s.TrialRetries < 0:
		return 0
	default:
		return 1
	}
}

// prefillWeight resolves the effective prefill time weight.
func (s Spec) prefillWeight() float64 {
	if s.PrefillWeight > 0 {
		return s.PrefillWeight
	}
	g := s.GPU
	if g.Name == "" {
		g = perfmodel.A100
	}
	return perfmodel.PrefillStepWeight(g, perfmodel.Workload{
		Params:       s.ModelCfg.RefParams,
		PromptTokens: s.Dataset.RefPromptTokens,
		GenTokens:    s.Dataset.GenTokens,
		DType:        s.DType,
	})
}

// maxRecordedErrors caps Result.Errors so a systematically failing campaign
// cannot balloon memory; FailuresByKind still counts every failure.
const maxRecordedErrors = 16

// Result aggregates a campaign cell. When the campaign was canceled or some
// trials failed, the statistics cover the completed trials only (the
// binomial CIs remain correct at the reduced trial count) and the
// Completed/Failed/Skipped breakdown plus the error taxonomy report what
// happened to the rest.
type Result struct {
	SDC stats.Proportion
	// ByKind breaks SDC rate down by the layer kind the fault hit.
	ByKind map[model.LayerKind]stats.Proportion
	// Corrections sums the protection corrections over all trials.
	Corrections protect.CorrectionStats

	// Completed counts classified trials (== SDC.Trials), including trials
	// replayed from the journal.
	Completed int
	// Failed counts trials that exhausted their retry budget.
	Failed int
	// Skipped counts trials never executed (campaign canceled or deadline
	// exceeded before they were reached).
	Skipped int
	// FailuresByKind breaks Failed down by the error taxonomy; nil when no
	// trial failed.
	FailuresByKind map[TrialErrorKind]int
	// Errors holds the first maxRecordedErrors trial failures, sorted by
	// trial index.
	Errors []*TrialError
}

// Partial reports whether the result covers fewer than the spec's trials.
func (r Result) Partial() bool { return r.Failed > 0 || r.Skipped > 0 }

// ErrorSummaries renders the recorded trial failures as strings (for
// report rendering without importing this package's types).
func (r Result) ErrorSummaries() []string {
	out := make([]string, len(r.Errors))
	for i, e := range r.Errors {
		out[i] = e.Error()
	}
	return out
}

// add folds one classified outcome into the aggregate.
func (r *Result) add(o trialOutcome) {
	r.Completed++
	r.SDC.Trials++
	kp := r.ByKind[o.kind]
	kp.Trials++
	if o.sdc {
		r.SDC.Successes++
		kp.Successes++
	}
	r.ByKind[o.kind] = kp
	r.Corrections.OutOfBound += o.corr.OutOfBound
	r.Corrections.NaN += o.corr.NaN
}

// addFailure folds one exhausted trial failure into the aggregate.
func (r *Result) addFailure(te *TrialError) {
	r.Failed++
	if r.FailuresByKind == nil {
		r.FailuresByKind = make(map[TrialErrorKind]int)
	}
	r.FailuresByKind[te.Kind]++
	if len(r.Errors) < maxRecordedErrors {
		r.Errors = append(r.Errors, te)
	}
}

// trialOutcome carries one classified trial back to the aggregator.
type trialOutcome struct {
	kind model.LayerKind
	sdc  bool
	corr protect.CorrectionStats
}

// trialResult pairs a trial index with either its outcome or its failure.
type trialResult struct {
	idx     int
	outcome trialOutcome
	err     *TrialError
}

// Run executes the campaign without cancellation (context.Background()).
func Run(spec Spec) (Result, error) { return RunContext(context.Background(), spec) }

// RunContext executes the campaign under ctx. On cancellation or deadline
// expiry it returns the partial Result aggregated over the trials that
// completed (journal-replayed trials included) together with ctx.Err();
// callers can render the partial statistics — the binomial CIs are correct
// at the reduced trial count — and resume later from the journal.
//
// Individual trial failures do not abort the campaign: they are retried
// within Spec's retry budget and then recorded in the Result's error
// taxonomy. RunContext returns a non-nil error only for invalid specs,
// context cancellation, journal write failures, or when every executed
// trial failed (the joined trial errors).
func RunContext(ctx context.Context, spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	res := Result{ByKind: make(map[model.LayerKind]stats.Proportion)}

	// Replay journal-checkpointed outcomes, then work out what remains.
	var fp string
	var replayed map[int]trialOutcome
	if spec.Journal != nil {
		fp = spec.Fingerprint()
		replayed = spec.Journal.completed(fp, spec.Trials)
		// Deterministic fold order (trial outcomes commute, but keep the
		// aggregation order-independent of map iteration anyway).
		idxs := make([]int, 0, len(replayed))
		for idx := range replayed {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			res.add(replayed[idx])
		}
	}
	pending := make([]int, 0, spec.Trials-len(replayed))
	for i := 0; i < spec.Trials; i++ {
		if _, done := replayed[i]; !done {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return res, nil
	}

	if spec.Journal != nil {
		if err := spec.Journal.recordSpec(fp, spec.describe()); err != nil {
			return res, err
		}
	}

	// Golden (fault-free, unprotected) generations, shared read-only.
	golden, err := goldenOutputs(ctx, spec)
	if err != nil {
		res.Skipped = spec.Trials - res.Completed
		return res, err
	}

	// Golden checkpoints of the fault-free *protected* runs, shared
	// read-only: decode-window trials restore the nearest checkpoint below
	// their injection step instead of re-executing the whole prefix.
	forks, err := buildForkStore(ctx, spec)
	if err != nil {
		res.Skipped = spec.Trials - res.Completed
		return res, err
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	trialIdx := make(chan int, len(pending))
	for _, i := range pending {
		trialIdx <- i
	}
	close(trialIdx)

	results := make(chan trialResult, len(pending))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(ctx, spec, golden, forks, trialIdx, results)
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Aggregate and checkpoint as outcomes arrive, so an interrupt can
	// never lose a classified trial.
	var journalErr error
	for tr := range results {
		if tr.err != nil {
			res.addFailure(tr.err)
			if spec.Journal != nil && journalErr == nil {
				journalErr = spec.Journal.recordFailure(fp, tr.err)
			}
			continue
		}
		res.add(tr.outcome)
		if spec.Journal != nil && journalErr == nil {
			journalErr = spec.Journal.recordOutcome(fp, tr.idx, tr.outcome)
		}
	}
	res.Skipped = spec.Trials - res.Completed - res.Failed
	sort.Slice(res.Errors, func(i, j int) bool { return res.Errors[i].Trial < res.Errors[j].Trial })

	switch {
	case ctx.Err() != nil:
		return res, ctx.Err()
	case journalErr != nil:
		return res, journalErr
	case res.Completed == 0 && res.Failed > 0:
		errs := make([]error, len(res.Errors))
		for i, te := range res.Errors {
			errs[i] = te
		}
		return res, fmt.Errorf("campaign: all %d executed trials failed: %w", res.Failed, errors.Join(errs...))
	}
	return res, nil
}

// describe renders the spec's identity for the journal's human-readable
// header line.
func (s Spec) describe() string {
	return fmt.Sprintf("model=%s dataset=%s fault=%v method=%v window=%v trials=%d seed=%d",
		s.ModelCfg.Name, s.Dataset.Name, s.Fault, s.Method, s.Window, s.Trials, s.BaseSeed)
}

func (s Spec) validate() error {
	switch {
	case s.Dataset == nil:
		return fmt.Errorf("campaign: no dataset")
	case len(s.Dataset.Inputs) == 0:
		return fmt.Errorf("campaign: dataset %s has no inputs", s.Dataset.Name)
	case s.Trials <= 0:
		return fmt.Errorf("campaign: non-positive trial count")
	case s.Window == WindowFollowing && s.Dataset.GenTokens < 2:
		// fault.Plan.SampleFollowing would panic inside a worker goroutine;
		// reject the degenerate window here instead.
		return fmt.Errorf("campaign: window %v needs at least 2 generated tokens, dataset %s generates %d",
			s.Window, s.Dataset.Name, s.Dataset.GenTokens)
	case s.Targets.Weight < 0 || s.Targets.KV < 0 || s.Targets.Weight+s.Targets.KV > 1:
		return fmt.Errorf("campaign: invalid target mix weight=%g kv=%g", s.Targets.Weight, s.Targets.KV)
	case s.Targets.KV > 0 && s.Dataset.GenTokens < 2:
		// fault.Plan.SampleKV would panic: the cache is only consulted from
		// the first decode step on.
		return fmt.Errorf("campaign: KV-cache targets need at least 2 generated tokens, dataset %s generates %d",
			s.Dataset.Name, s.Dataset.GenTokens)
	case s.needsOfflineBounds() && s.OfflineBounds == nil:
		return fmt.Errorf("campaign: method %v requires offline bounds", s.Method)
	}
	return s.ModelCfg.Validate()
}

func (s Spec) needsOfflineBounds() bool {
	if s.Policy != nil {
		// The hybrid controller derives everything it needs online: FT2
		// bounds from the first token, ABFT reference sums at build time.
		return false
	}
	if s.CustomCoverage != nil {
		return true
	}
	switch s.Method {
	case arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2Offline:
		return true
	default:
		return false
	}
}

// goldenOutputs computes the fault-free unprotected generation per input.
func goldenOutputs(ctx context.Context, spec Spec) ([][]int, error) {
	m, err := model.New(spec.ModelCfg, spec.ModelSeed, spec.DType)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(spec.Dataset.Inputs))
	for i, in := range spec.Dataset.Inputs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = m.Generate(in.Prompt, spec.Dataset.GenTokens)
	}
	return out, nil
}

// runWorker pulls trials from trialIdx and runs them on its own model
// replica. A worker never sinks the pool: trial failures (including
// panics) are retried within the spec's budget and then reported as
// classified failures, and a replica poisoned by a panic is replaced
// before the next attempt. The worker stops early only on context
// cancellation — unreached trials are counted as Skipped by the caller.
func runWorker(ctx context.Context, spec Spec, golden [][]int, forks *forkStore, trialIdx <-chan int, results chan<- trialResult) {
	var r *trialRunner
	budget := spec.retryBudget()
	for idx := range trialIdx {
		if ctx.Err() != nil {
			return
		}
		var terr *TrialError
		for attempt := 0; attempt <= budget; attempt++ {
			if r == nil || r.dirty {
				nr, err := newTrialRunner(spec, golden, forks)
				if err != nil {
					r = nil
					terr = &TrialError{Trial: idx, Kind: TrialModelError, Attempts: attempt + 1, Err: err}
					continue
				}
				r = nr
			}
			var o trialOutcome
			o, terr = r.runGuarded(ctx, idx)
			if terr == nil {
				results <- trialResult{idx: idx, outcome: o}
				break
			}
			if terr.Kind == trialCanceled {
				// Cancellation mid-trial is a skip, not a failure.
				return
			}
			terr.Attempts = attempt + 1
		}
		if terr != nil {
			results <- trialResult{idx: idx, err: terr}
		}
	}
}

// watchdog aborts a trial from inside the forward pass when the campaign
// context is canceled or the inference makes no token progress within the
// budget. It interposes as the last forward hook, so its cancellation
// latency is one linear layer.
type watchdog struct {
	ctx      context.Context
	budget   time.Duration
	deadline time.Time
	lastStep int
}

func newWatchdog(ctx context.Context, budget time.Duration) *watchdog {
	w := &watchdog{ctx: ctx, budget: budget, lastStep: -1}
	if budget > 0 {
		w.deadline = time.Now().Add(budget)
	}
	return w
}

func (w *watchdog) hook(hc model.HookCtx, _ *tensor.Tensor) {
	if w.ctx.Err() != nil {
		panic(trialAbort{kind: trialCanceled, err: w.ctx.Err()})
	}
	if w.budget <= 0 {
		return
	}
	now := time.Now()
	if hc.Step != w.lastStep {
		w.lastStep = hc.Step
		w.deadline = now.Add(w.budget)
		return
	}
	if now.After(w.deadline) {
		panic(trialAbort{kind: TrialTimeout,
			err: fmt.Errorf("no token progress within %v at step %d", w.budget, hc.Step)})
	}
}

// trialRunner owns one model replica plus every piece of per-trial state
// that survives across trials: the reseedable RNG, sampling plans keyed by
// prompt length, the single-fault injector, and the protection objects for
// the spec's fixed method. Reusing them keeps the steady-state trial cost
// at the generate pass itself — the model's scratch arena already makes
// that pass allocation-free — instead of rebuilding plans, RNG state and
// protector scratch on every trial.
type trialRunner struct {
	spec   Spec
	golden [][]int
	forks  *forkStore // nil when forking is disabled
	m      *model.Model
	rng    *rand.Rand
	weight float64             // prefill weight, resolved once
	plans  map[int]*fault.Plan // keyed by prompt length
	inj    fault.Injector
	hy     *core.Hybrid       // non-nil iff spec.Policy is set
	dmr    *protect.DMR       // non-nil iff spec.UseDMR
	prot   *protect.Protector // non-nil for bounds-based methods
	ft2    *core.FT2          // non-nil iff spec.Method is MethodFT2
	outBuf []int              // reused per-trial output buffer, cap GenTokens
	// dirty marks the replica as possibly poisoned (a panic escaped a
	// trial); the worker replaces the runner before reusing it.
	dirty bool
}

func newTrialRunner(spec Spec, golden [][]int, forks *forkStore) (*trialRunner, error) {
	m, err := model.New(spec.ModelCfg, spec.ModelSeed, spec.DType)
	if err != nil {
		return nil, err
	}
	r := &trialRunner{
		spec:   spec,
		golden: golden,
		forks:  forks,
		m:      m,
		rng:    rand.New(rand.NewSource(1)),
		weight: spec.prefillWeight(),
		plans:  make(map[int]*fault.Plan),
		outBuf: make([]int, 0, spec.Dataset.GenTokens),
	}
	if spec.Policy != nil {
		// refs nil: the replica is pristine here, so the hybrid captures its
		// own ABFT reference sums at build time.
		r.hy = core.NewHybrid(m, spec.FT2Opts, spec.Policy, nil)
	} else if spec.UseDMR {
		r.dmr = protect.NewDMR(m)
	} else if spec.CustomCoverage != nil {
		r.prot = &protect.Protector{
			Coverage:   spec.CustomCoverage,
			BoundsFor:  spec.OfflineBounds.Get,
			Mode:       protect.ClipToBound,
			CorrectNaN: true,
		}
	} else {
		switch spec.Method {
		case arch.MethodNone:
		case arch.MethodFT2:
			r.ft2 = core.New(m, spec.FT2Opts)
		default:
			r.prot = protect.ForMethod(spec.Method, spec.ModelCfg.Family, spec.OfflineBounds)
		}
	}
	return r, nil
}

// runGuarded is the per-trial fault-isolation boundary: it converts panics
// (from the engine, a hook, or the watchdog's abort) into typed TrialErrors
// and guarantees — via defer — that no hooks survive the trial, so a failed
// trial can never poison the next one's replica.
func (r *trialRunner) runGuarded(ctx context.Context, idx int) (o trialOutcome, terr *TrialError) {
	defer func() {
		r.m.ClearHooks()
		if p := recover(); p != nil {
			r.dirty = true
			if ab, ok := p.(trialAbort); ok {
				terr = &TrialError{Trial: idx, Kind: ab.kind, Err: ab.err}
				return
			}
			terr = &TrialError{Trial: idx, Kind: TrialPanic,
				Err: fmt.Errorf("%v", p), Stack: string(debug.Stack())}
		}
	}()
	return r.run(ctx, idx)
}

func (r *trialRunner) run(ctx context.Context, idx int) (trialOutcome, *TrialError) {
	spec := r.spec
	input := spec.Dataset.Inputs[idx%len(spec.Dataset.Inputs)]
	r.rng.Seed(spec.BaseSeed + int64(idx)*0x9E3779B9 + 1)

	plan := r.plans[len(input.Prompt)]
	if plan == nil {
		plan = fault.NewPlan(spec.ModelCfg, len(input.Prompt), spec.Dataset.GenTokens, spec.DType, spec.Fault, r.weight)
		plan.Mix = spec.Targets
		r.plans[len(input.Prompt)] = plan
	}
	var site fault.Site
	switch spec.Window {
	case WindowFirstToken:
		site = plan.SampleFirstToken(r.rng)
	case WindowFollowing:
		site = plan.SampleFollowing(r.rng)
	default:
		site = plan.Sample(r.rng)
	}
	return r.runWithSite(ctx, idx, site)
}

// runWithSite executes one trial at a pre-sampled fault site. When the site
// lands in the decode window and golden checkpoints exist, the trial forks:
// it restores the nearest checkpoint at or below the injection step and
// decodes only the suffix; otherwise it runs the full prefill + decode.
// Greedy decode over the deterministic engine makes the two paths
// bit-identical — same tokens, same hook sequence from the restored step
// on, same correction counters, same SDC classification.
func (r *trialRunner) runWithSite(ctx context.Context, idx int, site fault.Site) (trialOutcome, *TrialError) {
	spec, m := r.spec, r.m
	inputIdx := idx % len(spec.Dataset.Inputs)
	input := spec.Dataset.Inputs[inputIdx]
	r.inj = fault.Injector{Site: site, DType: spec.DType, M: m}
	// A weight-target trial corrupts the shared replica persistently — for
	// exactly the duration of its own inference. Revert restores the flipped
	// element afterwards (no-op for transient targets), so the next trial
	// starts from clean weights without rebuilding the replica.
	defer r.inj.Revert()

	var cp *forkPoint
	if r.forks != nil && site.Step >= 1 {
		cp = r.forks.nearest(inputIdx, site.Step)
	}

	// Hook order matters: the injector corrupts the layer output first, the
	// protection then gets its chance to detect/correct; the watchdog runs
	// last. Hooks are cleared by runGuarded's defer even when the trial
	// panics.
	m.ClearHooks()
	m.RegisterHook(r.inj.Hook())
	if spec.TrialHook != nil {
		if h := spec.TrialHook(idx); h != nil {
			m.RegisterHook(h)
		}
	}
	armWatchdog := func() {
		if spec.TrialTimeout > 0 || ctx.Done() != nil {
			m.RegisterHook(newWatchdog(ctx, spec.TrialTimeout).hook)
		}
	}

	var out []int
	if cp != nil {
		// Forked trial: protection counters resume from their values at the
		// checkpoint, the token prefix comes from the recorded fault-free
		// protected generation, and only steps NextStep.. are re-executed.
		fi := &r.forks.inputs[inputIdx]
		switch {
		case r.hy != nil:
			r.hy.ResumeFork(core.ForkState{Bounds: fi.ftBounds, FirstTokenNaN: cp.ftNaN, Stats: cp.corr})
			r.hy.Install()
		case r.dmr != nil:
			r.dmr.Detected = cp.corr.OutOfBound
			m.RegisterHook(r.dmr.Hook())
		case r.prot != nil:
			r.prot.Stats = cp.corr
			m.RegisterHook(r.prot.Hook())
		case r.ft2 != nil:
			r.ft2.ResumeFork(core.ForkState{Bounds: fi.ftBounds, FirstTokenNaN: cp.ftNaN, Stats: cp.corr})
			r.ft2.Install()
		}
		armWatchdog()
		out = append(r.outBuf[:0], fi.out[:cp.snap.NextStep()]...)
		tok := m.Restore(&cp.snap)
		for s := cp.snap.NextStep(); s < spec.Dataset.GenTokens; s++ {
			tok = m.DecodeStep(tok)
			out = append(out, tok)
		}
	} else {
		switch {
		case r.hy != nil:
			r.hy.Reset()
			r.hy.Install()
		case r.dmr != nil:
			r.dmr.Detected = 0
			m.RegisterHook(r.dmr.Hook())
		case r.prot != nil:
			r.prot.Stats = protect.CorrectionStats{}
			m.RegisterHook(r.prot.Hook())
		case r.ft2 != nil:
			r.ft2.Reset()
			r.ft2.Install()
		}
		armWatchdog()
		out = m.GenerateInto(r.outBuf, input.Prompt, spec.Dataset.GenTokens)
	}

	var corr protect.CorrectionStats
	switch {
	case r.hy != nil:
		corr = r.hy.Stats()
		corr.NaN += r.hy.FirstTokenNaNCount()
		// Fold the exact-correction tiers in as events (detections + DMR
		// fixes), keeping the journal's OOB/NaN schema unchanged.
		hc := r.hy.DrainCounts()
		corr.OutOfBound += int(hc.ABFT.Detected + hc.DMRFixed)
	case r.dmr != nil:
		corr.OutOfBound = r.dmr.Detected
	case r.prot != nil:
		corr = r.prot.Stats
	case r.ft2 != nil:
		corr = r.ft2.Stats()
		corr.NaN += r.ft2.FirstTokenNaNCount()
	}

	if !r.inj.Fired {
		return trialOutcome{}, &TrialError{Trial: idx, Kind: TrialInjectorNeverFired,
			Err: fmt.Errorf("injector never fired at %v", site)}
	}
	return trialOutcome{
		kind: site.Layer.Kind,
		sdc:  !spec.Dataset.IsMasked(r.golden[input.ID], out),
		corr: corr,
	}, nil
}

// FaultFreeCorrectness measures, without any fault injection, the fraction
// of inputs whose protected generation is still (semantically) correct —
// the Figure 3 experiment. bounds are the profiled bounds to protect with;
// method selects the coverage; mode selects the out-of-bound correction
// target (the paper's Figure 3 applies the existing clip-to-zero range
// restriction, which is what makes misaligned bounds destructive).
func FaultFreeCorrectness(cfg model.Config, seed int64, d numerics.DType,
	ds *data.Dataset, method arch.Method, bounds *protect.Store, mode protect.ClipMode) (stats.Proportion, protect.CorrectionStats, error) {

	m, err := model.New(cfg, seed, d)
	if err != nil {
		return stats.Proportion{}, protect.CorrectionStats{}, err
	}
	var p stats.Proportion
	var corr protect.CorrectionStats
	for _, in := range ds.Inputs {
		m.ClearHooks()
		golden := m.Generate(in.Prompt, ds.GenTokens)

		var out []int
		switch method {
		case arch.MethodNone:
			out = golden
		case arch.MethodFT2:
			f := core.Attach(m, core.Defaults())
			out = f.Generate(in.Prompt, ds.GenTokens)
			st := f.Stats()
			corr.OutOfBound += st.OutOfBound
			corr.NaN += st.NaN
			f.Detach()
		default:
			pr := protect.ForMethod(method, cfg.Family, bounds)
			pr.Mode = mode
			m.RegisterHook(pr.Hook())
			out = m.Generate(in.Prompt, ds.GenTokens)
			corr.OutOfBound += pr.Stats.OutOfBound
			corr.NaN += pr.Stats.NaN
			m.ClearHooks()
		}
		p.Trials++
		if ds.IsMasked(golden, out) {
			p.Successes++
		}
	}
	return p, corr, nil
}
