// Package campaign orchestrates statistical fault-injection campaigns: it
// fans trials out over a worker pool (one model replica per worker),
// injects exactly one fault per inference at a uniformly sampled site,
// applies the configured protection, classifies each outcome as Masked or
// SDC with the paper's containment rule, and aggregates binomial SDC-rate
// estimates with 95% confidence intervals.
package campaign

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ft2/internal/arch"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/protect"
	"ft2/internal/stats"
)

// Window restricts where in the inference faults are injected.
type Window int

const (
	// WindowAll samples sites uniformly over the whole inference.
	WindowAll Window = iota
	// WindowFirstToken restricts injection to the prefill pass (Fig. 11).
	WindowFirstToken
	// WindowFollowing restricts injection to the decode steps.
	WindowFollowing
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case WindowFirstToken:
		return "first-token"
	case WindowFollowing:
		return "following"
	default:
		return "all"
	}
}

// Spec configures one campaign cell (model × dataset × fault model ×
// protection method).
type Spec struct {
	ModelCfg  model.Config
	ModelSeed int64
	DType     numerics.DType
	Fault     numerics.FaultModel
	Method    arch.Method
	// FT2Opts configures the online FT2 when Method is MethodFT2.
	FT2Opts core.Options
	// OfflineBounds supplies profiled bounds for the baseline methods and
	// MethodFT2Offline. Required for every method except None and FT2.
	OfflineBounds *protect.Store
	// CustomCoverage, when non-nil, overrides the method's coverage with an
	// explicit site set protected via offline bounds + clip-to-bound + NaN
	// correction — the leave-one-out configuration of Figure 6.
	CustomCoverage map[arch.CoveragePoint]bool
	// UseDMR replaces the method's protection with duplication in place
	// over every linear layer (the high-overhead 0%-SDC alternative of the
	// paper's limitations section; see protect.DMR).
	UseDMR  bool
	Dataset *data.Dataset
	// Trials is the total number of fault injections, spread round-robin
	// over the dataset inputs.
	Trials   int
	BaseSeed int64
	Window   Window
	// GPU selects the reference hardware for the time-uniform fault
	// exposure model (zero value: A100). Reliability is hardware-independent
	// (Sec. 5.2.4) up to the prefill/decode time ratio this supplies.
	GPU perfmodel.GPU
	// PrefillWeight overrides the prefill pass's execution-time weight in
	// decode-step equivalents; 0 derives it from the GPU performance model
	// and the dataset's reference workload.
	PrefillWeight float64
	// Workers caps the pool size (default GOMAXPROCS).
	Workers int
}

// prefillWeight resolves the effective prefill time weight.
func (s Spec) prefillWeight() float64 {
	if s.PrefillWeight > 0 {
		return s.PrefillWeight
	}
	g := s.GPU
	if g.Name == "" {
		g = perfmodel.A100
	}
	return perfmodel.PrefillStepWeight(g, perfmodel.Workload{
		Params:       s.ModelCfg.RefParams,
		PromptTokens: s.Dataset.RefPromptTokens,
		GenTokens:    s.Dataset.GenTokens,
		DType:        s.DType,
	})
}

// Result aggregates a campaign cell.
type Result struct {
	SDC stats.Proportion
	// ByKind breaks SDC rate down by the layer kind the fault hit.
	ByKind map[model.LayerKind]stats.Proportion
	// Corrections sums the protection corrections over all trials.
	Corrections protect.CorrectionStats
}

// trialOutcome carries one classified trial back to the aggregator.
type trialOutcome struct {
	kind model.LayerKind
	sdc  bool
	corr protect.CorrectionStats
}

// Run executes the campaign.
func Run(spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Trials {
		workers = spec.Trials
	}

	// Golden (fault-free, unprotected) generations, shared read-only.
	golden, err := goldenOutputs(spec)
	if err != nil {
		return Result{}, err
	}

	outcomes := make(chan trialOutcome, spec.Trials)
	trialIdx := make(chan int, spec.Trials)
	for i := 0; i < spec.Trials; i++ {
		trialIdx <- i
	}
	close(trialIdx)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := worker(spec, golden, trialIdx, outcomes); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(outcomes)
	close(errs)
	if err := <-errs; err != nil {
		return Result{}, err
	}

	res := Result{ByKind: make(map[model.LayerKind]stats.Proportion)}
	for o := range outcomes {
		res.SDC.Trials++
		kp := res.ByKind[o.kind]
		kp.Trials++
		if o.sdc {
			res.SDC.Successes++
			kp.Successes++
		}
		res.ByKind[o.kind] = kp
		res.Corrections.OutOfBound += o.corr.OutOfBound
		res.Corrections.NaN += o.corr.NaN
	}
	return res, nil
}

func (s Spec) validate() error {
	switch {
	case s.Dataset == nil:
		return fmt.Errorf("campaign: no dataset")
	case len(s.Dataset.Inputs) == 0:
		return fmt.Errorf("campaign: dataset %s has no inputs", s.Dataset.Name)
	case s.Trials <= 0:
		return fmt.Errorf("campaign: non-positive trial count")
	case s.needsOfflineBounds() && s.OfflineBounds == nil:
		return fmt.Errorf("campaign: method %v requires offline bounds", s.Method)
	}
	return s.ModelCfg.Validate()
}

func (s Spec) needsOfflineBounds() bool {
	if s.CustomCoverage != nil {
		return true
	}
	switch s.Method {
	case arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2Offline:
		return true
	default:
		return false
	}
}

// goldenOutputs computes the fault-free unprotected generation per input.
func goldenOutputs(spec Spec) ([][]int, error) {
	m, err := model.New(spec.ModelCfg, spec.ModelSeed, spec.DType)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(spec.Dataset.Inputs))
	for i, in := range spec.Dataset.Inputs {
		out[i] = m.Generate(in.Prompt, spec.Dataset.GenTokens)
	}
	return out, nil
}

// worker runs trials pulled from trialIdx on its own model replica.
func worker(spec Spec, golden [][]int, trialIdx <-chan int, outcomes chan<- trialOutcome) error {
	r, err := newTrialRunner(spec, golden)
	if err != nil {
		return err
	}
	for idx := range trialIdx {
		o, err := r.run(idx)
		if err != nil {
			return err
		}
		outcomes <- o
	}
	return nil
}

// trialRunner owns one model replica plus every piece of per-trial state
// that survives across trials: the reseedable RNG, sampling plans keyed by
// prompt length, the single-fault injector, and the protection objects for
// the spec's fixed method. Reusing them keeps the steady-state trial cost
// at the generate pass itself — the model's scratch arena already makes
// that pass allocation-free — instead of rebuilding plans, RNG state and
// protector scratch on every trial.
type trialRunner struct {
	spec   Spec
	golden [][]int
	m      *model.Model
	rng    *rand.Rand
	weight float64             // prefill weight, resolved once
	plans  map[int]*fault.Plan // keyed by prompt length
	inj    fault.Injector
	dmr    *protect.DMR       // non-nil iff spec.UseDMR
	prot   *protect.Protector // non-nil for bounds-based methods
}

func newTrialRunner(spec Spec, golden [][]int) (*trialRunner, error) {
	m, err := model.New(spec.ModelCfg, spec.ModelSeed, spec.DType)
	if err != nil {
		return nil, err
	}
	r := &trialRunner{
		spec:   spec,
		golden: golden,
		m:      m,
		rng:    rand.New(rand.NewSource(1)),
		weight: spec.prefillWeight(),
		plans:  make(map[int]*fault.Plan),
	}
	if spec.UseDMR {
		r.dmr = protect.NewDMR(m)
	} else if spec.CustomCoverage != nil {
		r.prot = &protect.Protector{
			Coverage:   spec.CustomCoverage,
			BoundsFor:  spec.OfflineBounds.Get,
			Mode:       protect.ClipToBound,
			CorrectNaN: true,
		}
	} else {
		switch spec.Method {
		case arch.MethodNone, arch.MethodFT2:
		default:
			r.prot = protect.ForMethod(spec.Method, spec.ModelCfg.Family, spec.OfflineBounds)
		}
	}
	return r, nil
}

func (r *trialRunner) run(idx int) (trialOutcome, error) {
	spec := r.spec
	m := r.m
	input := spec.Dataset.Inputs[idx%len(spec.Dataset.Inputs)]
	r.rng.Seed(spec.BaseSeed + int64(idx)*0x9E3779B9 + 1)

	plan := r.plans[len(input.Prompt)]
	if plan == nil {
		plan = fault.NewPlan(spec.ModelCfg, len(input.Prompt), spec.Dataset.GenTokens, spec.DType, spec.Fault, r.weight)
		r.plans[len(input.Prompt)] = plan
	}
	var site fault.Site
	switch spec.Window {
	case WindowFirstToken:
		site = plan.SampleFirstToken(r.rng)
	case WindowFollowing:
		site = plan.SampleFollowing(r.rng)
	default:
		site = plan.Sample(r.rng)
	}
	r.inj = fault.Injector{Site: site, DType: spec.DType}

	// Hook order matters: the injector corrupts the layer output first, the
	// protection then gets its chance to detect/correct.
	m.ClearHooks()
	m.RegisterHook(r.inj.Hook())

	var out []int
	var corr protect.CorrectionStats
	switch {
	case r.dmr != nil:
		r.dmr.Detected = 0
		m.RegisterHook(r.dmr.Hook())
		out = m.Generate(input.Prompt, spec.Dataset.GenTokens)
		corr.OutOfBound = r.dmr.Detected
	case r.prot != nil:
		r.prot.Stats = protect.CorrectionStats{}
		m.RegisterHook(r.prot.Hook())
		out = m.Generate(input.Prompt, spec.Dataset.GenTokens)
		corr = r.prot.Stats
	case spec.Method == arch.MethodFT2:
		f := core.Attach(m, spec.FT2Opts)
		out = f.Generate(input.Prompt, spec.Dataset.GenTokens)
		corr = f.Stats()
		corr.NaN += f.FirstTokenNaNCount()
		f.Detach()
	default: // arch.MethodNone
		out = m.Generate(input.Prompt, spec.Dataset.GenTokens)
	}
	m.ClearHooks()

	if !r.inj.Fired {
		return trialOutcome{}, fmt.Errorf("campaign: injector never fired at %v", site)
	}
	return trialOutcome{
		kind: site.Layer.Kind,
		sdc:  !spec.Dataset.IsMasked(r.golden[input.ID], out),
		corr: corr,
	}, nil
}

// FaultFreeCorrectness measures, without any fault injection, the fraction
// of inputs whose protected generation is still (semantically) correct —
// the Figure 3 experiment. bounds are the profiled bounds to protect with;
// method selects the coverage; mode selects the out-of-bound correction
// target (the paper's Figure 3 applies the existing clip-to-zero range
// restriction, which is what makes misaligned bounds destructive).
func FaultFreeCorrectness(cfg model.Config, seed int64, d numerics.DType,
	ds *data.Dataset, method arch.Method, bounds *protect.Store, mode protect.ClipMode) (stats.Proportion, protect.CorrectionStats, error) {

	m, err := model.New(cfg, seed, d)
	if err != nil {
		return stats.Proportion{}, protect.CorrectionStats{}, err
	}
	var p stats.Proportion
	var corr protect.CorrectionStats
	for _, in := range ds.Inputs {
		m.ClearHooks()
		golden := m.Generate(in.Prompt, ds.GenTokens)

		var out []int
		switch method {
		case arch.MethodNone:
			out = golden
		case arch.MethodFT2:
			f := core.Attach(m, core.Defaults())
			out = f.Generate(in.Prompt, ds.GenTokens)
			st := f.Stats()
			corr.OutOfBound += st.OutOfBound
			corr.NaN += st.NaN
			f.Detach()
		default:
			pr := protect.ForMethod(method, cfg.Family, bounds)
			pr.Mode = mode
			m.RegisterHook(pr.Hook())
			out = m.Generate(in.Prompt, ds.GenTokens)
			corr.OutOfBound += pr.Stats.OutOfBound
			corr.NaN += pr.Stats.NaN
			m.ClearHooks()
		}
		p.Trials++
		if ds.IsMasked(golden, out) {
			p.Successes++
		}
	}
	return p, corr, nil
}
