package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"ft2/internal/model"
)

// Fingerprint deterministically identifies the outcome-relevant portion of a
// Spec: two specs with equal fingerprints produce identical per-trial
// outcomes (per-trial seeding makes outcomes order- and worker-count-
// independent), so a journal entry keyed by (fingerprint, trial index) can
// be replayed safely. Execution knobs that cannot change an outcome —
// Workers, TrialTimeout, TrialRetries, Journal, TrialHook, NoFork,
// CheckpointStride (forked and unforked trials are bit-identical) — are
// excluded.
func (s Spec) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "model=%s mseed=%d dtype=%v fault=%v method=%v window=%v trials=%d base=%d dmr=%v gpu=%s pw=%g",
		s.ModelCfg.Name, s.ModelSeed, s.DType, s.Fault, s.Method, s.Window,
		s.Trials, s.BaseSeed, s.UseDMR, s.GPU.Name, s.PrefillWeight)
	fmt.Fprintf(h, " ft2=%+v", s.FT2Opts)
	// Target mix and policy are hashed only when set, so journals written
	// before these knobs existed keep their fingerprints.
	if !s.Targets.IsZero() {
		fmt.Fprintf(h, " targets=%g/%g", s.Targets.Weight, s.Targets.KV)
	}
	if s.Policy != nil {
		// Policy.String is a canonical sorted kind→tier listing.
		fmt.Fprintf(h, " policy=%s", s.Policy)
	}
	if s.Dataset != nil {
		fmt.Fprintf(h, " ds=%s inputs=%d gen=%d", s.Dataset.Name, len(s.Dataset.Inputs), s.Dataset.GenTokens)
	}
	if s.CustomCoverage != nil {
		pts := make([]string, 0, len(s.CustomCoverage))
		for p, on := range s.CustomCoverage {
			if on {
				pts = append(pts, fmt.Sprintf("%v/%v", p.Kind, p.Site))
			}
		}
		sort.Strings(pts)
		fmt.Fprintf(h, " cov=%v", pts)
	}
	if s.OfflineBounds != nil {
		// Save writes a sorted canonical listing, so equal stores hash equal.
		if err := s.OfflineBounds.Save(h); err != nil {
			fmt.Fprintf(h, " bounds-err=%v", err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// journalEntry is one JSONL line of the campaign journal. Type "ok" records
// a classified outcome, "fail" a trial that exhausted its retry budget, and
// "spec" a human-readable header appended when a campaign starts.
type journalEntry struct {
	Type  string `json:"type"`
	FP    string `json:"fp"`
	Trial int    `json:"trial"`
	// ok fields
	Kind     int    `json:"kind,omitempty"`
	KindName string `json:"kind_name,omitempty"`
	SDC      bool   `json:"sdc,omitempty"`
	OOB      int    `json:"oob,omitempty"`
	NaN      int    `json:"nan,omitempty"`
	// fail fields
	ErrKind string `json:"err_kind,omitempty"`
	Err     string `json:"err,omitempty"`
	// spec fields
	Desc string `json:"desc,omitempty"`
}

// Journal is an append-only JSONL checkpoint of classified trial outcomes,
// keyed by spec fingerprint + trial index. One journal file can back many
// campaign cells (each cell has a distinct fingerprint). Writes go straight
// to the file descriptor — no userspace buffering — so every recorded
// outcome survives SIGKILL; a torn final line from a crash is skipped on
// reload. Failed trials are logged for forensics but are re-executed on
// resume (they may have been transient).
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]map[int]journalEntry // fingerprint → trial → last "ok" entry
}

// OpenJournal opens (or creates) the journal at path. With resume set, any
// existing entries are loaded for replay and new entries are appended;
// without it the file is truncated and the campaign starts from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, index: make(map[string]map[int]journalEntry)}
	flags := os.O_CREATE | os.O_RDWR
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	j.f = f
	if resume {
		if err := j.load(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load indexes the "ok" entries of an existing journal. Lines that fail to
// parse (e.g. a torn write from a crash) are skipped, not fatal: losing one
// checkpoint only costs re-running that trial.
func (j *Journal) load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		if e.Type != "ok" || e.FP == "" || e.Trial < 0 {
			continue
		}
		m := j.index[e.FP]
		if m == nil {
			m = make(map[int]journalEntry)
			j.index[e.FP] = m
		}
		m[e.Trial] = e
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("campaign: read journal %s: %w", j.path, err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// CompletedTrials returns how many classified outcomes the journal holds
// for the given spec fingerprint (for progress reporting).
func (j *Journal) CompletedTrials(fp string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.index[fp])
}

// completed returns the replayable outcomes for fp, restricted to trial
// indices below the campaign's trial count.
func (j *Journal) completed(fp string, trials int) map[int]trialOutcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]trialOutcome, len(j.index[fp]))
	for idx, e := range j.index[fp] {
		if idx >= trials {
			continue
		}
		o := trialOutcome{kind: model.LayerKind(e.Kind), sdc: e.SDC}
		o.corr.OutOfBound = e.OOB
		o.corr.NaN = e.NaN
		out[idx] = o
	}
	return out
}

// appendEntry marshals and writes one line.
func (j *Journal) appendEntry(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("campaign: append journal %s: %w", j.path, err)
	}
	if e.Type == "ok" {
		m := j.index[e.FP]
		if m == nil {
			m = make(map[int]journalEntry)
			j.index[e.FP] = m
		}
		m[e.Trial] = e
	}
	return nil
}

// recordSpec appends a human-readable campaign header.
func (j *Journal) recordSpec(fp, desc string) error {
	return j.appendEntry(journalEntry{Type: "spec", FP: fp, Trial: -1, Desc: desc})
}

// recordOutcome checkpoints one classified trial.
func (j *Journal) recordOutcome(fp string, idx int, o trialOutcome) error {
	return j.appendEntry(journalEntry{
		Type: "ok", FP: fp, Trial: idx,
		Kind: int(o.kind), KindName: o.kind.String(), SDC: o.sdc,
		OOB: o.corr.OutOfBound, NaN: o.corr.NaN,
	})
}

// recordFailure logs a trial that exhausted its retry budget.
func (j *Journal) recordFailure(fp string, te *TrialError) error {
	return j.appendEntry(journalEntry{
		Type: "fail", FP: fp, Trial: te.Trial,
		ErrKind: te.Kind.String(), Err: fmt.Sprint(te.Err),
	})
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
