package campaign

import (
	"context"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/protect"
)

// Sweep runs one spec across several protection methods, profiling offline
// bounds once and reusing them — the common pattern of the comparison
// figures and of downstream users evaluating their own configurations.
type Sweep struct {
	// Base is the spec template; its Method and OfflineBounds fields are
	// overwritten per run.
	Base Spec
	// ProfileInputs sizes the profiling split used for the offline methods
	// (0 disables profiling, in which case offline methods error).
	ProfileInputs int
}

// SweepResult pairs a method with its campaign outcome.
type SweepResult struct {
	Method arch.Method
	Result Result
}

// Run executes the sweep without cancellation.
func (s Sweep) Run(methods ...arch.Method) ([]SweepResult, error) {
	return s.RunContext(context.Background(), methods...)
}

// RunContext executes the sweep over the given methods in order. On
// cancellation it returns the results of the methods that completed (plus
// the interrupted method's partial result) together with ctx.Err().
func (s Sweep) RunContext(ctx context.Context, methods ...arch.Method) ([]SweepResult, error) {
	var bounds *protect.Store
	needProfile := false
	for _, m := range methods {
		spec := s.Base
		spec.Method = m
		if spec.needsOfflineBounds() {
			needProfile = true
		}
	}
	if needProfile && s.ProfileInputs > 0 {
		m, err := model.New(s.Base.ModelCfg, s.Base.ModelSeed, s.Base.DType)
		if err != nil {
			return nil, err
		}
		split := s.Base.Dataset.ProfileSplit(s.ProfileInputs)
		bounds = protect.OfflineProfile(m, split.Prompts(), s.Base.Dataset.GenTokens)
	}

	out := make([]SweepResult, 0, len(methods))
	for _, method := range methods {
		spec := s.Base
		spec.Method = method
		if spec.needsOfflineBounds() {
			spec.OfflineBounds = bounds
		}
		res, err := RunContext(ctx, spec)
		if err != nil {
			if ctx.Err() != nil && res.Completed > 0 {
				out = append(out, SweepResult{Method: method, Result: res})
			}
			return out, err
		}
		out = append(out, SweepResult{Method: method, Result: res})
	}
	return out, nil
}
