package campaign

import "fmt"

// TrialErrorKind classifies why a trial failed — the error taxonomy of the
// execution-robustness layer. Every failure mode a worker can hit is mapped
// onto one of these kinds so campaign results can report a breakdown
// instead of a single opaque error.
type TrialErrorKind int

const (
	// TrialPanic: the trial's inference (or a hook) panicked; the worker
	// recovered, recorded the stack, and replaced its model replica.
	TrialPanic TrialErrorKind = iota
	// TrialInjectorNeverFired: the planned fault site was never reached, so
	// the trial observed no fault and must not be counted (a mis-planned
	// site would otherwise bias the SDC estimate).
	TrialInjectorNeverFired
	// TrialModelError: the worker could not build (or rebuild) its model
	// replica or protection state.
	TrialModelError
	// TrialTimeout: the per-trial watchdog saw no token progress within
	// Spec.TrialTimeout and aborted the inference.
	TrialTimeout
	// trialCanceled is internal bookkeeping: the campaign context was
	// canceled mid-trial. Canceled trials are counted as Skipped, never as
	// Failed, so this kind never appears in a Result.
	trialCanceled
)

// String implements fmt.Stringer.
func (k TrialErrorKind) String() string {
	switch k {
	case TrialPanic:
		return "panic"
	case TrialInjectorNeverFired:
		return "injector-never-fired"
	case TrialModelError:
		return "model-error"
	case TrialTimeout:
		return "timeout"
	case trialCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("TrialErrorKind(%d)", int(k))
	}
}

// TrialError is one classified trial failure. It implements error and
// unwraps to the underlying cause.
type TrialError struct {
	// Trial is the trial index within the campaign.
	Trial int
	// Kind is the taxonomy bucket.
	Kind TrialErrorKind
	// Attempts is how many times the trial was tried before giving up.
	Attempts int
	// Err is the underlying cause (for panics, the recovered value).
	Err error
	// Stack holds the goroutine stack for TrialPanic failures.
	Stack string
}

// Error implements the error interface.
func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d failed (%s, %d attempts): %v", e.Trial, e.Kind, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// trialAbort is the panic payload the watchdog hook uses to abort a hung or
// canceled inference from inside the forward pass; the trial recovery
// boundary converts it back into a classified outcome.
type trialAbort struct {
	kind TrialErrorKind
	err  error
}
