package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ft2/internal/model"
	"ft2/internal/protect"
)

func testOutcome(kind model.LayerKind, sdc bool, oob, nan int) trialOutcome {
	return trialOutcome{kind: kind, sdc: sdc, corr: protect.CorrectionStats{OutOfBound: oob, NaN: nan}}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "cafebabe00000000"
	if err := j.recordSpec(fp, "model=x dataset=y"); err != nil {
		t.Fatal(err)
	}
	want := map[int]trialOutcome{
		0: testOutcome(model.VProj, true, 3, 1),
		2: testOutcome(model.FC2, false, 0, 0),
		5: testOutcome(model.KProj, false, 7, 0),
	}
	for idx, o := range want {
		if err := j.recordOutcome(fp, idx, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.recordFailure(fp, &TrialError{Trial: 3, Kind: TrialPanic, Err: os.ErrInvalid}); err != nil {
		t.Fatal(err)
	}
	// An outcome for a different spec must not leak into fp's replay set.
	if err := j.recordOutcome("other", 1, testOutcome(model.QProj, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.completed(fp, 10)
	if len(got) != len(want) {
		t.Fatalf("replayed %d outcomes, want %d", len(got), len(want))
	}
	for idx, o := range want {
		if got[idx] != o {
			t.Errorf("trial %d: got %+v, want %+v", idx, got[idx], o)
		}
	}
	// Failed trials are logged but never replayed (they re-run on resume).
	if _, ok := got[3]; ok {
		t.Error("failed trial must not be replayable")
	}
	// Replay respects the campaign's trial count.
	if n := len(j2.completed(fp, 3)); n != 2 {
		t.Errorf("completed(fp, 3) = %d outcomes, want 2 (indices 0 and 2)", n)
	}
	if n := j2.CompletedTrials("other"); n != 1 {
		t.Errorf("other fp holds %d, want 1", n)
	}
}

func TestJournalTruncateWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.recordOutcome("fp", 0, testOutcome(model.VProj, true, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-opening without resume starts from scratch.
	j2, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.CompletedTrials("fp"); n != 0 {
		t.Errorf("non-resume open replays %d outcomes, want 0", n)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 0 {
		t.Errorf("non-resume open must truncate the file, %d bytes left", len(b))
	}
}

func TestJournalLinesAreValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.recordOutcome("fp", 4, testOutcome(model.DownProj, true, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(string(b))
	var e journalEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("journal line is not valid JSON: %v\n%s", err, line)
	}
	if e.Type != "ok" || e.Trial != 4 || e.KindName != "DOWN_PROJ" || !e.SDC || e.OOB != 1 || e.NaN != 2 {
		t.Errorf("entry round-trip mismatch: %+v", e)
	}
}

func TestLatestEntryWinsOnDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.recordOutcome("fp", 0, testOutcome(model.VProj, false, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.recordOutcome("fp", 0, testOutcome(model.VProj, true, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.completed("fp", 1)
	if o := got[0]; !o.sdc || o.corr.OutOfBound != 2 {
		t.Errorf("latest duplicate must win, got %+v", o)
	}
}
