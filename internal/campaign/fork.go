package campaign

import (
	"context"
	"math"

	"ft2/internal/model"
	"ft2/internal/protect"
)

// Golden-checkpoint forking.
//
// A trial injects exactly one fault at one pre-sampled step; everything the
// model computes before that step is bit-identical to the deterministic
// fault-free run under the same protection method. The campaign therefore
// records, once per input, checkpoints of that fault-free *protected*
// generation at a configurable step stride, and every trial whose injection
// step lands in the decode window restores the nearest checkpoint at or
// below its injection step and recomputes only the divergent suffix.
// Prefill-window trials (step 0) fall back to a full run.
//
// The checkpoint run uses the spec's protection, not the bare model: a
// protection may legitimately fire on fault-free steps (the Figure 3
// phenomenon), so the fault-free protected trajectory — tokens and
// correction counters — is what a trial's prefix actually computes. Each
// forkPoint carries the protection-side counters alongside the model
// snapshot, and FT2's first-token bounds (fixed after the prefill) are
// captured once per input and shared read-only across workers.

// forkPoint is one restorable checkpoint of an input's fault-free protected
// generation: the model state before step snap.NextStep() plus the
// protection counters accumulated over steps 0..NextStep-1.
type forkPoint struct {
	snap model.Snapshot
	// corr holds the method's correction counters at the checkpoint: the
	// protector/DMR stats, or FT2's following-token stats (first-token NaN
	// corrections are tracked separately in ftNaN).
	corr  protect.CorrectionStats
	ftNaN int
}

// inputFork holds the fork state of one dataset input.
type inputFork struct {
	// out is the complete fault-free protected generation; a forked trial
	// copies out[:NextStep] as its token prefix.
	out []int
	// points are the checkpoints in ascending NextStep order, at steps
	// 1, 1+stride, 1+2·stride, ...
	points []forkPoint
	// ftBounds are FT2's raw first-token bounds for this input (nil for
	// other methods); decode steps only read them, so the store is shared
	// across worker replicas.
	ftBounds *protect.Store
}

// forkStore is the per-campaign, read-only golden checkpoint store built
// once before the worker pool starts.
type forkStore struct {
	stride int
	inputs []inputFork
}

// nearest returns the latest checkpoint whose NextStep is ≤ step, or nil
// when none qualifies (step 0, or a degenerate single-token generation).
func (fs *forkStore) nearest(input, step int) *forkPoint {
	pts := fs.inputs[input].points
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].snap.NextStep() <= step {
			return &pts[i]
		}
	}
	return nil
}

// MemoryBytes returns the KV payload held by every checkpoint — the
// quantity Spec.CheckpointStride bounds.
func (fs *forkStore) MemoryBytes() int {
	total := 0
	for i := range fs.inputs {
		for j := range fs.inputs[i].points {
			total += fs.inputs[i].points[j].snap.MemoryBytes()
		}
	}
	return total
}

// checkpointStride resolves the spec's checkpoint stride: an explicit
// positive value wins; otherwise the stride defaults to ⌈√GenTokens⌉, which
// balances the mean fault-free replay ((stride−1)/2 steps per trial)
// against the number of retained snapshots (⌈(GenTokens−1)/stride⌉, each
// Blocks × 2 × rows × Hidden floats).
func (s Spec) checkpointStride() int {
	if s.CheckpointStride > 0 {
		return s.CheckpointStride
	}
	st := int(math.Ceil(math.Sqrt(float64(s.Dataset.GenTokens))))
	if st < 1 {
		st = 1
	}
	return st
}

// buildForkStore records the golden checkpoints of every input by driving
// one fault-free generation per input under the spec's protection method on
// a dedicated replica. Returns nil when forking cannot help (NoFork set, or
// no decode steps to skip into).
func buildForkStore(ctx context.Context, spec Spec) (*forkStore, error) {
	if spec.NoFork || spec.Dataset.GenTokens < 2 {
		return nil, nil
	}
	r, err := newTrialRunner(spec, nil, nil)
	if err != nil {
		return nil, err
	}
	m := r.m
	n := spec.Dataset.GenTokens
	fs := &forkStore{stride: spec.checkpointStride(), inputs: make([]inputFork, len(spec.Dataset.Inputs))}
	for i, in := range spec.Dataset.Inputs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.ClearHooks()
		// Arm the protection exactly as a trial does (minus the injector,
		// the per-trial hook, and the watchdog — none of which belong in
		// the fault-free reference run).
		readCorr := func() (protect.CorrectionStats, int) { return protect.CorrectionStats{}, 0 }
		switch {
		case r.hy != nil:
			// Checkpoints carry the FT2 tier's counters only: the ABFT/DMR
			// tiers are per-step exact corrections whose counts are drained
			// per trial, not resumed state.
			r.hy.Reset()
			r.hy.Install()
			readCorr = func() (protect.CorrectionStats, int) {
				return r.hy.Stats(), r.hy.FirstTokenNaNCount()
			}
		case r.dmr != nil:
			r.dmr.Detected = 0
			m.RegisterHook(r.dmr.Hook())
			readCorr = func() (protect.CorrectionStats, int) {
				return protect.CorrectionStats{OutOfBound: r.dmr.Detected}, 0
			}
		case r.prot != nil:
			r.prot.Stats = protect.CorrectionStats{}
			m.RegisterHook(r.prot.Hook())
			readCorr = func() (protect.CorrectionStats, int) { return r.prot.Stats, 0 }
		case r.ft2 != nil:
			r.ft2.Reset()
			r.ft2.Install()
			readCorr = func() (protect.CorrectionStats, int) {
				return r.ft2.Stats(), r.ft2.FirstTokenNaNCount()
			}
		}

		f := inputFork{out: make([]int, 0, n)}
		tok := m.Prefill(in.Prompt)
		f.out = append(f.out, tok)
		switch {
		case r.ft2 != nil:
			// Bounds are complete once the prefill finished; clone them out
			// of the controller so later inputs' Resets cannot clear them.
			f.ftBounds = r.ft2.CaptureForkState().Bounds
		case r.hy != nil:
			f.ftBounds = r.hy.CaptureForkState().Bounds
		}
		for s := 1; s < n; s++ {
			if (s-1)%fs.stride == 0 {
				var p forkPoint
				m.Checkpoint(&p.snap)
				p.corr, p.ftNaN = readCorr()
				f.points = append(f.points, p)
			}
			tok = m.DecodeStep(tok)
			f.out = append(f.out, tok)
		}
		fs.inputs[i] = f
	}
	m.ClearHooks()
	return fs, nil
}
