package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/tensor"
)

// statsEqual compares the statistical content of two results (the part that
// must be bit-identical across worker counts and journal resumes).
func statsEqual(a, b Result) bool {
	return a.SDC == b.SDC &&
		reflect.DeepEqual(a.ByKind, b.ByKind) &&
		a.Corrections == b.Corrections &&
		a.Completed == b.Completed && a.Failed == b.Failed && a.Skipped == b.Skipped
}

// TestRunDeterministicAcrossWorkerCounts: same BaseSeed must yield an
// identical Result for 1, 4 and GOMAXPROCS workers.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := baseSpec(t, arch.MethodFT2)
	spec.Trials = 40
	var ref Result
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		spec.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Completed != spec.Trials || res.Failed != 0 || res.Skipped != 0 {
			t.Fatalf("workers=%d: breakdown %d/%d/%d, want %d/0/0",
				workers, res.Completed, res.Failed, res.Skipped, spec.Trials)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !statsEqual(ref, res) {
			t.Errorf("workers=%d: result differs from workers=1: %+v vs %+v", workers, res, ref)
		}
	}
}

// TestJournalResumeBitIdentical: a campaign interrupted after a prefix of
// trials and resumed from its journal must be bit-identical to an
// uninterrupted run, at several worker counts.
func TestJournalResumeBitIdentical(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 30

	clean, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")

		// Phase 1: run with a journal, canceling once half the trials have
		// been classified.
		j, err := OpenJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var classified atomic.Int64
		interrupted := spec
		interrupted.Workers = workers
		interrupted.Journal = j
		interrupted.TrialHook = func(trial int) model.Hook {
			return func(hc model.HookCtx, _ *tensor.Tensor) {
				if hc.Step == 0 && classified.Add(1) > int64(spec.Trials/2)*20 {
					cancel()
				}
			}
		}
		partial, err := RunContext(ctx, interrupted)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d interrupted run: %v", workers, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if partial.Completed+partial.Skipped != spec.Trials || partial.Failed != 0 {
			t.Fatalf("workers=%d partial breakdown %d/%d/%d inconsistent",
				workers, partial.Completed, partial.Failed, partial.Skipped)
		}

		// Phase 2: resume from the journal; only the missing trials run.
		j2, err := OpenJournal(path, true)
		if err != nil {
			t.Fatal(err)
		}
		already := j2.CompletedTrials(spec.Fingerprint())
		if already != partial.Completed {
			t.Errorf("workers=%d: journal holds %d outcomes, partial result says %d",
				workers, already, partial.Completed)
		}
		resumed := spec
		resumed.Workers = workers
		resumed.Journal = j2
		got, err := RunContext(context.Background(), resumed)
		if err != nil {
			t.Fatalf("workers=%d resume: %v", workers, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if !statsEqual(clean, got) {
			t.Errorf("workers=%d: resumed result differs from uninterrupted:\n got %+v\nwant %+v",
				workers, got, clean)
		}
	}
}

// TestJournalReplaySkipsCompletedTrials: resuming a fully-journaled
// campaign runs zero trials (no model is even built) and reproduces the
// result exactly.
func TestJournalReplaySkipsCompletedTrials(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 20
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	spec.Journal = j
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	spec.Journal = j2
	// Any trial executed now would fail loudly.
	spec.TrialHook = func(trial int) model.Hook {
		t.Errorf("trial %d executed despite full journal", trial)
		return nil
	}
	replayed, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(first, replayed) {
		t.Errorf("replayed result differs:\n got %+v\nwant %+v", replayed, first)
	}
}

// TestChaosPanicIsolated: a hook that panics on a chosen trial must not
// kill the campaign — the trial is retried, fails with TrialPanic, the
// remaining trials complete, and no hooks are left on any replica.
func TestChaosPanicIsolated(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 20
	spec.Workers = 4
	const victim = 7
	spec.TrialHook = func(trial int) model.Hook {
		return func(hc model.HookCtx, _ *tensor.Tensor) {
			if trial == victim {
				panic("chaos: injected trial crash")
			}
		}
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("campaign must survive a panicking trial, got %v", err)
	}
	if res.Completed != spec.Trials-1 || res.Failed != 1 || res.Skipped != 0 {
		t.Fatalf("breakdown %d/%d/%d, want %d/1/0", res.Completed, res.Failed, res.Skipped, spec.Trials-1)
	}
	if res.FailuresByKind[TrialPanic] != 1 {
		t.Errorf("FailuresByKind = %v, want one %v", res.FailuresByKind, TrialPanic)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("Errors = %v, want exactly one", res.Errors)
	}
	te := res.Errors[0]
	if te.Trial != victim || te.Kind != TrialPanic || te.Stack == "" || te.Attempts != 2 {
		t.Errorf("TrialError = %+v, want trial %d, kind panic, stack, 2 attempts", te, victim)
	}
	if !res.Partial() {
		t.Error("a result with a failed trial must report Partial()")
	}
}

// TestChaosPanicLeavesNoHooks drives the recovery boundary directly: after
// a panicking trial the replica must have zero registered hooks and be
// marked for replacement.
func TestChaosPanicLeavesNoHooks(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.TrialHook = func(trial int) model.Hook {
		return func(hc model.HookCtx, _ *tensor.Tensor) { panic("chaos") }
	}
	golden, err := goldenOutputs(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newTrialRunner(spec, golden, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, terr := r.runGuarded(context.Background(), 3)
	if terr == nil || terr.Kind != TrialPanic {
		t.Fatalf("want TrialPanic, got %v", terr)
	}
	if n := r.m.HookCount(); n != 0 {
		t.Errorf("%d hooks left registered on the replica after a panicking trial", n)
	}
	if !r.dirty {
		t.Error("a panicked replica must be marked for replacement")
	}

	// A transiently panicking trial succeeds on retry through the pool.
	var calls atomic.Int64
	spec.TrialHook = func(trial int) model.Hook {
		return func(hc model.HookCtx, _ *tensor.Tensor) {
			if calls.Add(1) == 1 {
				panic("chaos: transient")
			}
		}
	}
	spec.Trials = 1
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Failed != 0 {
		t.Errorf("transient panic must be retried to success, got %+v", res)
	}
}

// TestRunContextCancellationPartial: cancellation before the campaign
// starts yields no result; cancellation mid-campaign yields a partial
// result with a consistent breakdown and ctx.Err().
func TestRunContextCancellationPartial(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var seen atomic.Int64
	spec.Workers = 2
	spec.TrialHook = func(trial int) model.Hook {
		if seen.Add(1) == 5 {
			cancel2()
		}
		return nil
	}
	res, err := RunContext(ctx2, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Completed == 0 || res.Skipped == 0 {
		t.Errorf("mid-campaign cancel should complete some and skip some trials, got %d/%d/%d",
			res.Completed, res.Failed, res.Skipped)
	}
	if res.Completed+res.Failed+res.Skipped != spec.Trials {
		t.Errorf("breakdown %d/%d/%d does not sum to %d", res.Completed, res.Failed, res.Skipped, spec.Trials)
	}
	if res.SDC.Trials != res.Completed {
		t.Errorf("SDC covers %d trials, breakdown says %d completed", res.SDC.Trials, res.Completed)
	}
	if !res.Partial() {
		t.Error("canceled campaign must report Partial()")
	}
}

// TestTrialTimeoutWatchdog: a trial whose inference stops making token
// progress is aborted and classified TrialTimeout.
func TestTrialTimeoutWatchdog(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 3
	spec.Workers = 1
	spec.TrialTimeout = 100 * time.Millisecond
	spec.TrialRetries = -1 // a hang is deterministic here; don't retry
	spec.TrialHook = func(trial int) model.Hook {
		return func(hc model.HookCtx, _ *tensor.Tensor) {
			if trial == 1 {
				time.Sleep(250 * time.Millisecond) // stall inside one layer
			}
		}
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.FailuresByKind[TrialTimeout] != 1 {
		t.Fatalf("want one timeout failure, got breakdown %d/%d/%d, taxonomy %v",
			res.Completed, res.Failed, res.Skipped, res.FailuresByKind)
	}
	if res.Completed != 2 {
		t.Errorf("non-stalled trials must complete, got %d", res.Completed)
	}
}

// TestRejectFollowingWindowWithoutDecodeSteps is the regression test for
// the Spec.validate gap: WindowFollowing with GenTokens < 2 used to panic
// inside a worker goroutine via Plan.SampleFollowing.
func TestRejectFollowingWindowWithoutDecodeSteps(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Window = WindowFollowing
	spec.Dataset.GenTokens = 1
	_, err := Run(spec)
	if err == nil {
		t.Fatal("WindowFollowing with GenTokens=1 must be rejected at validation")
	}
	if te := new(TrialError); errors.As(err, &te) {
		t.Errorf("degenerate window must fail validation, not reach a worker: %v", err)
	}
}

// TestAllTrialsFailedSurfacesEveryError: when every trial fails, Run
// returns the partial aggregation plus a joined error that surfaces more
// than just the first failure.
func TestAllTrialsFailedSurfacesEveryError(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 4
	spec.Workers = 2
	spec.TrialRetries = -1
	spec.TrialHook = func(trial int) model.Hook {
		return func(hc model.HookCtx, _ *tensor.Tensor) { panic(trial) }
	}
	res, err := Run(spec)
	if err == nil {
		t.Fatal("all-failed campaign must return an error")
	}
	if res.Failed != 4 || res.Completed != 0 {
		t.Fatalf("breakdown %d/%d/%d, want 0/4/0", res.Completed, res.Failed, res.Skipped)
	}
	if len(res.Errors) != 4 {
		t.Fatalf("Errors holds %d entries, want all 4", len(res.Errors))
	}
	for i, te := range res.Errors {
		if te.Trial != i {
			t.Errorf("Errors[%d].Trial = %d, want sorted by trial index", i, te.Trial)
		}
	}
	// The joined error must surface more than just the first failure.
	msg := err.Error()
	if !strings.Contains(msg, "trial 0") || !strings.Contains(msg, "trial 3") {
		t.Errorf("joined error must surface multiple failures, got %q", msg)
	}
}

// TestFingerprintStability: fingerprints must be equal for equal specs,
// differ when an outcome-relevant knob changes, and ignore execution-only
// knobs.
func TestFingerprintStability(t *testing.T) {
	a := baseSpec(t, arch.MethodNone)
	b := baseSpec(t, arch.MethodNone)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal specs must have equal fingerprints")
	}
	b.BaseSeed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("BaseSeed must be outcome-relevant")
	}
	c := baseSpec(t, arch.MethodNone)
	c.Workers = 7
	c.TrialTimeout = time.Minute
	c.TrialRetries = 3
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("execution-only knobs must not change the fingerprint")
	}
	d := baseSpec(t, arch.MethodRanger)
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("method must be outcome-relevant")
	}
}

// TestJournalTornLineTolerated: a truncated final line (torn write from a
// crash) is skipped on reload; intact entries still replay.
func TestJournalTornLineTolerated(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Trials = 10
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	spec.Journal = j
	full, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("torn journal must still load: %v", err)
	}
	fp := spec.Fingerprint()
	if n := j2.CompletedTrials(fp); n != spec.Trials-1 {
		t.Errorf("torn journal replays %d trials, want %d", n, spec.Trials-1)
	}
	spec.Journal = j2
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !statsEqual(full, res) {
		t.Errorf("re-run after torn journal differs:\n got %+v\nwant %+v", res, full)
	}
}
