package campaign

import (
	"strings"
	"testing"

	"ft2/internal/arch"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/protect"
)

// mixedSpec is baseSpec with a weight/KV/activation target mix — the fault
// distribution the chaos and Pareto experiments use.
func mixedSpec(t *testing.T, method arch.Method) Spec {
	t.Helper()
	spec := baseSpec(t, method)
	spec.Targets = fault.TargetMix{Weight: 0.3, KV: 0.25}
	return spec
}

// optPolicy exercises every protection tier over the OPT family's kinds.
func optPolicy() *protect.Policy {
	return &protect.Policy{Tiers: map[model.LayerKind]protect.Tier{
		model.QProj:   protect.TierDMR,
		model.KProj:   protect.TierABFT,
		model.VProj:   protect.TierABFTFT2,
		model.OutProj: protect.TierFT2,
		model.FC1:     protect.TierABFTFT2,
		model.FC2:     protect.TierABFTFT2,
	}}
}

// TestRunMixedTargetsDeterministicAcrossWorkers: with weight and KV targets
// in the mix, the campaign must stay order-independent — a weight fault that
// leaked past its own trial (a missing Revert) would make the 1-worker and
// 4-worker schedules diverge, because trial order differs between them.
func TestRunMixedTargetsDeterministicAcrossWorkers(t *testing.T) {
	spec := mixedSpec(t, arch.MethodNone)
	spec.Trials = 40
	spec.Workers = 4
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 1
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(a, b) {
		t.Errorf("mixed-target campaign depends on worker count: %+v vs %+v", a, b)
	}
	if a.Completed != 40 {
		t.Errorf("completed %d of 40 trials", a.Completed)
	}
}

// TestRunPolicyHybrid: the adaptive per-layer policy must run end to end over
// the mixed fault distribution and not lose to the unprotected baseline; its
// exact-correction tiers must actually fire.
func TestRunPolicyHybrid(t *testing.T) {
	unprot, err := Run(mixedSpec(t, arch.MethodNone))
	if err != nil {
		t.Fatal(err)
	}
	spec := mixedSpec(t, arch.MethodNone)
	spec.Policy = optPolicy()
	hy, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Completed != spec.Trials {
		t.Fatalf("hybrid completed %d of %d trials (failures: %v)", hy.Completed, spec.Trials, hy.ErrorSummaries())
	}
	if hy.SDC.Successes > unprot.SDC.Successes {
		t.Errorf("hybrid SDC count %d exceeds unprotected %d", hy.SDC.Successes, unprot.SDC.Successes)
	}
	if hy.Corrections.Total() == 0 {
		t.Error("hybrid protection never corrected anything across 60 EXP-fault trials")
	}
}

// TestForkedCampaignBitIdenticalMixedPolicy: golden-checkpoint forking must
// stay bit-identical to from-scratch execution when trials corrupt weights
// and KV caches under the hybrid policy controller.
func TestForkedCampaignBitIdenticalMixedPolicy(t *testing.T) {
	spec := mixedSpec(t, arch.MethodNone)
	spec.Policy = optPolicy()
	spec.Trials = 30
	forked, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NoFork = true
	scratch, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(forked, scratch) {
		t.Errorf("forked mixed/policy result differs from no-fork: %+v vs %+v", forked, scratch)
	}
}

// TestMixedTargetsValidation: degenerate target mixes are rejected up front
// instead of panicking inside a worker goroutine.
func TestMixedTargetsValidation(t *testing.T) {
	spec := baseSpec(t, arch.MethodNone)
	spec.Targets = fault.TargetMix{Weight: 0.8, KV: 0.4}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "target mix") {
		t.Errorf("over-unity mix not rejected: %v", err)
	}
	spec = baseSpec(t, arch.MethodNone)
	spec.Targets = fault.TargetMix{KV: 0.5}
	spec.Dataset.GenTokens = 1
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "KV-cache") {
		t.Errorf("KV targets without decode steps not rejected: %v", err)
	}
}

// TestFingerprintMixedAndPolicy: the new spec knobs must alter the journal
// fingerprint when set — and only when set, so journals written before the
// knobs existed keep replaying.
func TestFingerprintMixedAndPolicy(t *testing.T) {
	base := baseSpec(t, arch.MethodNone)
	fp := base.Fingerprint()

	withMix := base
	withMix.Targets = fault.TargetMix{Weight: 0.3, KV: 0.25}
	if withMix.Fingerprint() == fp {
		t.Error("target mix does not alter the fingerprint")
	}
	withPolicy := base
	withPolicy.Policy = optPolicy()
	if withPolicy.Fingerprint() == fp {
		t.Error("policy does not alter the fingerprint")
	}
	otherPolicy := base
	otherPolicy.Policy = &protect.Policy{Tiers: map[model.LayerKind]protect.Tier{model.VProj: protect.TierFT2}}
	if otherPolicy.Fingerprint() == withPolicy.Fingerprint() {
		t.Error("distinct policies share a fingerprint")
	}
}
