package numerics

import (
	"fmt"
	"math"
	"math/rand"
)

// DType selects the stored representation that a transient fault corrupts.
type DType int

const (
	// FP16 stores activations as IEEE-754 binary16.
	FP16 DType = iota
	// FP32 stores activations as IEEE-754 binary32.
	FP32
)

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case FP16:
		return "fp16"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Bits returns the word width of the representation.
func (d DType) Bits() int {
	if d == FP16 {
		return 16
	}
	return 32
}

// ExponentBits returns the number of exponent bits of the representation.
func (d DType) ExponentBits() int {
	if d == FP16 {
		return F16ExpBits
	}
	return 8
}

// FaultModel enumerates the paper's three computation-fault models
// (Section 2.2): single-bit flip, double-bit flip, and a single-bit flip
// confined to the exponent field.
type FaultModel int

const (
	// SingleBit flips one uniformly random bit of the stored word.
	SingleBit FaultModel = iota
	// DoubleBit flips two distinct uniformly random bits.
	DoubleBit
	// ExponentBit flips one uniformly random bit within the exponent field —
	// the paper's most aggressive model.
	ExponentBit
)

// String implements fmt.Stringer.
func (m FaultModel) String() string {
	switch m {
	case SingleBit:
		return "1-bit"
	case DoubleBit:
		return "2-bit"
	case ExponentBit:
		return "EXP"
	default:
		return fmt.Sprintf("FaultModel(%d)", int(m))
	}
}

// AllFaultModels lists the three fault models in paper order.
var AllFaultModels = []FaultModel{SingleBit, DoubleBit, ExponentBit}

// PickBits draws the bit positions this fault model flips for the given
// dtype, using rng. Positions are counted from the LSB (bit 0) to the sign
// bit (bit width-1). For binary16 the exponent field is bits 10..14; for
// binary32, bits 23..30.
func (m FaultModel) PickBits(d DType, rng *rand.Rand) []int {
	w := d.Bits()
	expLo := w - 1 - d.ExponentBits() // first exponent bit position (LSB side)
	switch m {
	case SingleBit:
		return []int{rng.Intn(w)}
	case DoubleBit:
		a := rng.Intn(w)
		b := rng.Intn(w - 1)
		if b >= a {
			b++
		}
		return []int{a, b}
	case ExponentBit:
		return []int{expLo + rng.Intn(d.ExponentBits())}
	default:
		panic("numerics: unknown fault model")
	}
}

// FlipBits16 returns h with the given bit positions flipped.
func FlipBits16(h uint16, bits []int) uint16 {
	for _, b := range bits {
		h ^= 1 << uint(b)
	}
	return h
}

// FlipBits32 returns w with the given bit positions flipped.
func FlipBits32(w uint32, bits []int) uint32 {
	for _, b := range bits {
		w ^= 1 << uint(b)
	}
	return w
}

// CorruptValue applies a bit-flip fault to the stored representation of v
// under the given dtype and returns the corrupted float32 value as the rest
// of the computation will observe it. For FP16 the value is first rounded to
// binary16 (it already is, if it came out of the precision gate), flipped,
// and expanded back; for FP32 the flip happens on the binary32 word.
func CorruptValue(v float32, d DType, bits []int) float32 {
	switch d {
	case FP16:
		return F16BitsToF32(FlipBits16(F32ToF16Bits(v), bits))
	case FP32:
		return math.Float32frombits(FlipBits32(math.Float32bits(v), bits))
	default:
		panic("numerics: unknown dtype")
	}
}

// CorruptRandom draws bit positions from the fault model and corrupts v.
// It returns the corrupted value and the flipped bit positions.
func CorruptRandom(v float32, d DType, m FaultModel, rng *rand.Rand) (float32, []int) {
	bits := m.PickBits(d, rng)
	return CorruptValue(v, d, bits), bits
}
