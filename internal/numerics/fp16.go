// Package numerics implements the floating-point substrate of the FT2
// reproduction: software IEEE-754 binary16 (half precision) emulation,
// bit-level classification of float16 and float32 words, and the
// NaN-vulnerability analysis the paper's layer-criticality study relies on.
//
// The paper's fault model is a literal bit flip in the stored FP16 (or FP32)
// representation of a neuron value. All of that behaviour — exponent-flip
// blow-ups, the NaN encoding space, the (±1, ±2) NaN-vulnerable interval —
// is a property of the bit layout, so this package works directly on the
// binary16/binary32 bit patterns.
package numerics

import "math"

// Binary16 layout constants (1 sign, 5 exponent, 10 mantissa bits).
const (
	F16SignBits     = 1
	F16ExpBits      = 5
	F16MantissaBits = 10
	F16TotalBits    = 16

	f16SignMask     = 0x8000
	f16ExpMask      = 0x7C00
	f16MantissaMask = 0x03FF
	f16ExpBias      = 15

	// F16MaxValue is the largest finite binary16 value (65504).
	F16MaxValue = 65504.0
	// F16MinNormal is the smallest positive normal binary16 value (2^-14).
	F16MinNormal = 6.103515625e-05
)

// F32ToF16Bits converts a float32 to the nearest binary16 bit pattern using
// round-to-nearest-even, the IEEE-754 default (and what GPU hardware does).
func F32ToF16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & f16SignMask
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if man != 0 {
			// NaN: preserve a quiet NaN with some payload.
			return sign | f16ExpMask | 0x0200 | uint16(man>>13)&f16MantissaMask
		}
		return sign | f16ExpMask // Inf
	case exp == 0 && man == 0: // signed zero
		return sign
	}

	// Re-bias the exponent from binary32 (bias 127) to binary16 (bias 15).
	e := exp - 127 + f16ExpBias
	switch {
	case e >= 0x1F:
		// Overflow to infinity.
		return sign | f16ExpMask
	case e >= 1:
		// Normal number: round the 23-bit mantissa to 10 bits.
		m := man >> 13
		rem := man & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflow carries into exponent
				m = 0
				e++
				if e >= 0x1F {
					return sign | f16ExpMask
				}
			}
		}
		return sign | uint16(e<<10) | uint16(m)
	case e >= -10:
		// Subnormal half: shift in the implicit leading 1, then round.
		m := (man | 0x800000) >> uint(1-e+13)
		shifted := (man | 0x800000) << uint(32-(1-e+13))
		if shifted > 0x80000000 || (shifted == 0x80000000 && m&1 == 1) {
			m++
			// A carry out of the subnormal mantissa lands exactly on the
			// smallest normal, which the bit pattern encodes naturally.
		}
		return sign | uint16(m)
	default:
		// Underflow to signed zero.
		return sign
	}
}

// F16BitsToF32 expands a binary16 bit pattern to float32 exactly (binary16 is
// a subset of binary32, so this conversion is lossless).
func F16BitsToF32(h uint16) float32 {
	sign := uint32(h&f16SignMask) << 16
	exp := uint32(h&f16ExpMask) >> 10
	man := uint32(h & f16MantissaMask)

	switch {
	case exp == 0x1F: // Inf / NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7F800000 | man<<13 | 0x400000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - f16ExpBias + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= f16MantissaMask
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-f16ExpBias+127)<<23 | man<<13)
	}
}

// RoundF16 round-trips a float32 through binary16, yielding the value the
// hardware would actually have stored in an FP16 tensor.
//
// Inputs whose binary32 exponent field lies in [113, 141] — every value that
// rounds to a normal binary16 no larger than 32768 — take a branchless
// round-to-nearest-even bit trick instead of the full conversion pair:
// adding 0xFFF plus the parity of the last kept mantissa bit rounds the 13
// dropped bits up exactly when RNE requires, with mantissa carries flowing
// naturally into the exponent. Zeros, subnormals, near-overflow values,
// infinities and NaNs fall back to the exact conversion. The fast path is
// bit-identical to the fallback; TestRoundF16FastPath checks the boundaries
// and it has been verified exhaustively over all 2^32 bit patterns.
func RoundF16(f float32) float32 {
	b := math.Float32bits(f)
	if e := b >> 23 & 0xFF; e-113 <= 141-113 {
		b += 0xFFF + (b >> 13 & 1)
		b &^= 0x1FFF
		return math.Float32frombits(b)
	}
	return F16BitsToF32(F32ToF16Bits(f))
}

// IsNaN16 reports whether the binary16 bit pattern encodes a NaN
// (all exponent bits set and a non-zero mantissa).
func IsNaN16(h uint16) bool {
	return h&f16ExpMask == f16ExpMask && h&f16MantissaMask != 0
}

// IsInf16 reports whether the binary16 bit pattern encodes ±Inf.
func IsInf16(h uint16) bool {
	return h&f16ExpMask == f16ExpMask && h&f16MantissaMask == 0
}

// IsSubnormal16 reports whether the pattern encodes a non-zero subnormal.
func IsSubnormal16(h uint16) bool {
	return h&f16ExpMask == 0 && h&f16MantissaMask != 0
}

// NaNVulnerable16 reports whether a value sits in the paper's
// "NaN-vulnerable area": the intervals (-2,-1) and (1,2), i.e. binary16
// values whose exponent field is exactly 01111 (unbiased exponent 0) with a
// non-zero mantissa. Flipping the high exponent bit of such a value
// (0x3C00-class exponent 01111 → 11111) yields all-ones exponent with a
// non-zero fraction — a NaN.
func NaNVulnerable16(h uint16) bool {
	return h&f16ExpMask == 0x3C00 && h&f16MantissaMask != 0
}

// NaNVulnerableValue reports whether the float32 value, once stored as
// binary16, falls into the NaN-vulnerable interval.
func NaNVulnerableValue(f float32) bool { return NaNVulnerable16(F32ToF16Bits(f)) }
