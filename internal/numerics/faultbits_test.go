package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFaultModelString(t *testing.T) {
	if SingleBit.String() != "1-bit" || DoubleBit.String() != "2-bit" || ExponentBit.String() != "EXP" {
		t.Error("FaultModel String() mismatch")
	}
	if FP16.String() != "fp16" || FP32.String() != "fp32" {
		t.Error("DType String() mismatch")
	}
}

func TestDTypeWidths(t *testing.T) {
	if FP16.Bits() != 16 || FP32.Bits() != 32 {
		t.Error("DType.Bits mismatch")
	}
	if FP16.ExponentBits() != 5 || FP32.ExponentBits() != 8 {
		t.Error("DType.ExponentBits mismatch")
	}
}

func TestPickBitsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		for _, d := range []DType{FP16, FP32} {
			b := SingleBit.PickBits(d, rng)
			if len(b) != 1 || b[0] < 0 || b[0] >= d.Bits() {
				t.Fatalf("SingleBit pick out of range: %v (dtype %v)", b, d)
			}
			bb := DoubleBit.PickBits(d, rng)
			if len(bb) != 2 || bb[0] == bb[1] {
				t.Fatalf("DoubleBit must pick two distinct bits: %v", bb)
			}
			for _, x := range bb {
				if x < 0 || x >= d.Bits() {
					t.Fatalf("DoubleBit pick out of range: %v", bb)
				}
			}
			eb := ExponentBit.PickBits(d, rng)
			lo := d.Bits() - 1 - d.ExponentBits()
			hi := d.Bits() - 2
			if len(eb) != 1 || eb[0] < lo || eb[0] > hi {
				t.Fatalf("ExponentBit pick outside exponent field [%d,%d]: %v (dtype %v)", lo, hi, eb, d)
			}
		}
	}
}

func TestPickBitsCoversAllPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		seen[SingleBit.PickBits(FP16, rng)[0]] = true
	}
	for b := 0; b < 16; b++ {
		if !seen[b] {
			t.Errorf("SingleBit never picked bit %d in 5000 draws", b)
		}
	}
	seenExp := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		seenExp[ExponentBit.PickBits(FP16, rng)[0]] = true
	}
	for b := 10; b <= 14; b++ {
		if !seenExp[b] {
			t.Errorf("ExponentBit never picked exponent bit %d", b)
		}
	}
}

// Property: flipping the same bits twice is the identity (XOR involution).
func TestFlipBitsInvolution(t *testing.T) {
	f16 := func(h uint16, b0, b1 uint8) bool {
		bits := []int{int(b0 % 16), int(b1 % 16)}
		return FlipBits16(FlipBits16(h, bits), bits) == h
	}
	if err := quick.Check(f16, nil); err != nil {
		t.Error(err)
	}
	f32 := func(w uint32, b0 uint8) bool {
		bits := []int{int(b0 % 32)}
		return FlipBits32(FlipBits32(w, bits), bits) == w
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptValueFP32SignBit(t *testing.T) {
	got := CorruptValue(3.5, FP32, []int{31})
	if got != -3.5 {
		t.Errorf("flipping the FP32 sign bit of 3.5 should give -3.5, got %g", got)
	}
}

func TestCorruptValueFP16SignBit(t *testing.T) {
	got := CorruptValue(3.5, FP16, []int{15})
	if got != -3.5 {
		t.Errorf("flipping the FP16 sign bit of 3.5 should give -3.5, got %g", got)
	}
}

func TestCorruptValueExponentBlowupFP16(t *testing.T) {
	// 0.5 has top exponent bit clear; flipping it multiplies by 2^16.
	got := CorruptValue(0.5, FP16, []int{14})
	if got != 32768 {
		t.Errorf("FP16 exponent flip of 0.5: got %g, want 32768", got)
	}
}

func TestCorruptValueMakesNaN(t *testing.T) {
	got := CorruptValue(1.5, FP16, []int{14})
	if !math.IsNaN(float64(got)) {
		t.Errorf("FP16 top-exponent flip of 1.5 should be NaN, got %g", got)
	}
}

// Property: a mantissa-only flip in FP16 changes the value by at most one
// binade (relative error < 2^-1 of the value for normal numbers).
func TestMantissaFlipSmallPerturbation(t *testing.T) {
	f := func(x float32, b uint8) bool {
		v := RoundF16(x)
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v == 0 {
			return true
		}
		h := F32ToF16Bits(v)
		if h&f16ExpMask == 0 { // skip subnormals
			return true
		}
		bit := int(b % 10) // mantissa bits only
		c := CorruptValue(v, FP16, []int{bit})
		return float32(math.Abs(float64(c-v))) < float32(math.Abs(float64(v)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: CorruptRandom with fixed seed is deterministic.
func TestCorruptRandomDeterministic(t *testing.T) {
	for _, m := range AllFaultModels {
		r1 := rand.New(rand.NewSource(42))
		r2 := rand.New(rand.NewSource(42))
		for i := 0; i < 100; i++ {
			v := float32(i) * 0.37
			c1, b1 := CorruptRandom(v, FP16, m, r1)
			c2, b2 := CorruptRandom(v, FP16, m, r2)
			if len(b1) != len(b2) {
				t.Fatalf("%v: nondeterministic bit count", m)
			}
			for j := range b1 {
				if b1[j] != b2[j] {
					t.Fatalf("%v: nondeterministic bits %v vs %v", m, b1, b2)
				}
			}
			bothNaN := math.IsNaN(float64(c1)) && math.IsNaN(float64(c2))
			if c1 != c2 && !bothNaN {
				t.Fatalf("%v: nondeterministic values %g vs %g", m, c1, c2)
			}
		}
	}
}

func BenchmarkF32ToF16Bits(b *testing.B) {
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc ^= F32ToF16Bits(float32(i) * 0.001)
	}
	_ = acc
}

func BenchmarkRoundF16(b *testing.B) {
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += RoundF16(float32(i) * 0.001)
	}
	_ = acc
}
