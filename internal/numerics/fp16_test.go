package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF32ToF16BitsKnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{-2, 0xC000},
		{0.5, 0x3800},
		{1.5, 0x3E00},
		{65504, 0x7BFF},                 // max finite half
		{-65504, 0xFBFF},                // min finite half
		{6.103515625e-05, 0x0400},       // smallest normal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := F32ToF16Bits(c.in); got != c.want {
			t.Errorf("F32ToF16Bits(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestF16BitsToF32KnownValues(t *testing.T) {
	cases := []struct {
		in   uint16
		want float32
	}{
		{0x0000, 0},
		{0x3C00, 1},
		{0xBC00, -1},
		{0x4000, 2},
		{0x3800, 0.5},
		{0x7BFF, 65504},
		{0x0400, 6.103515625e-05},
		{0x0001, 5.960464477539063e-08},
	}
	for _, c := range cases {
		if got := F16BitsToF32(c.in); got != c.want {
			t.Errorf("F16BitsToF32(%#04x) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestF16InfinityAndNaN(t *testing.T) {
	if !math.IsInf(float64(F16BitsToF32(0x7C00)), 1) {
		t.Error("0x7C00 should decode to +Inf")
	}
	if !math.IsInf(float64(F16BitsToF32(0xFC00)), -1) {
		t.Error("0xFC00 should decode to -Inf")
	}
	if !math.IsNaN(float64(F16BitsToF32(0x7C01))) {
		t.Error("0x7C01 should decode to NaN")
	}
	if !math.IsNaN(float64(F16BitsToF32(0xFE00))) {
		t.Error("0xFE00 should decode to NaN")
	}
	nan := float32(math.NaN())
	if !IsNaN16(F32ToF16Bits(nan)) {
		t.Error("encoding a float32 NaN must produce a binary16 NaN")
	}
}

func TestF16OverflowToInf(t *testing.T) {
	if got := F32ToF16Bits(70000); got != 0x7C00 {
		t.Errorf("70000 should overflow to +Inf, got %#04x", got)
	}
	if got := F32ToF16Bits(-70000); got != 0xFC00 {
		t.Errorf("-70000 should overflow to -Inf, got %#04x", got)
	}
	// 65520 rounds up to 65536 which is out of range -> Inf per IEEE RNE.
	if got := F32ToF16Bits(65520); got != 0x7C00 {
		t.Errorf("65520 should round to +Inf, got %#04x", got)
	}
	// 65519.999 rounds down to 65504.
	if got := F32ToF16Bits(65519); got != 0x7BFF {
		t.Errorf("65519 should round to max finite, got %#04x", got)
	}
}

func TestF16UnderflowToZero(t *testing.T) {
	tiny := float32(1e-10)
	if got := F32ToF16Bits(tiny); got != 0 {
		t.Errorf("1e-10 should underflow to +0, got %#04x", got)
	}
	if got := F32ToF16Bits(-tiny); got != 0x8000 {
		t.Errorf("-1e-10 should underflow to -0, got %#04x", got)
	}
}

func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; RNE keeps the even
	// mantissa (1.0).
	halfway := float32(1) + float32(math.Ldexp(1, -11))
	if got := F32ToF16Bits(halfway); got != 0x3C00 {
		t.Errorf("RNE tie should round to even: got %#04x want 0x3C00", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE rounds to the
	// even mantissa 2 (pattern 0x3C02).
	halfway2 := float32(1) + 3*float32(math.Ldexp(1, -11))
	if got := F32ToF16Bits(halfway2); got != 0x3C02 {
		t.Errorf("RNE tie should round to even: got %#04x want 0x3C02", got)
	}
}

// Round-tripping any binary16 bit pattern through float32 must be exact.
func TestF16RoundTripExhaustive(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := uint16(i)
		f := F16BitsToF32(h)
		back := F32ToF16Bits(f)
		if IsNaN16(h) {
			if !IsNaN16(back) {
				t.Fatalf("NaN pattern %#04x did not round-trip to a NaN (got %#04x)", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("pattern %#04x -> %g -> %#04x did not round-trip", h, f, back)
		}
	}
}

// Property: RoundF16 is idempotent — rounding twice equals rounding once.
func TestRoundF16Idempotent(t *testing.T) {
	f := func(x float32) bool {
		once := RoundF16(x)
		twice := RoundF16(once)
		if math.IsNaN(float64(once)) {
			return math.IsNaN(float64(twice))
		}
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RoundF16 never increases magnitude beyond the next representable
// half value; in particular |RoundF16(x)| <= 65504 for finite results.
func TestRoundF16Bounded(t *testing.T) {
	f := func(x float32) bool {
		r := RoundF16(x)
		if math.IsInf(float64(r), 0) || math.IsNaN(float64(r)) {
			return true
		}
		return r >= -F16MaxValue && r <= F16MaxValue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRoundF16FastPath pins the bit-trick fast path in RoundF16 to the exact
// two-conversion round trip it replaces, sweeping every exponent boundary the
// trick depends on plus a dense random sample.
func TestRoundF16FastPath(t *testing.T) {
	check := func(f float32) {
		t.Helper()
		got := RoundF16(f)
		want := F16BitsToF32(F32ToF16Bits(f))
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("RoundF16(%g / %#08x) = %#08x, round trip gives %#08x",
				f, math.Float32bits(f), math.Float32bits(got), math.Float32bits(want))
		}
	}
	// Every mantissa pattern that matters around the rounding threshold, at
	// each exponent straddling the fast-path window [113, 141]: subnormal
	// half results (112), the window edges, the 65504/Inf overflow band
	// (142-143), and full exponent extremes.
	for _, exp := range []uint32{0, 1, 111, 112, 113, 114, 140, 141, 142, 143, 254, 255} {
		for _, man := range []uint32{0, 1, 0xFFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x3000,
			0x7FD000, 0x7FDFFF, 0x7FE000, 0x7FFFFF} {
			bits := exp<<23 | man
			check(math.Float32frombits(bits))
			check(math.Float32frombits(bits | 1<<31))
		}
	}
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 1_000_000; i++ {
		check(math.Float32frombits(rng.Uint32()))
	}
}

// Property: RoundF16 preserves sign (treating ±0 as equal-signed to input 0).
func TestRoundF16PreservesSign(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		r := RoundF16(x)
		if x == 0 || r == 0 {
			return true
		}
		return (x > 0) == (r > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNaNVulnerableInterval(t *testing.T) {
	cases := []struct {
		v    float32
		want bool
	}{
		{1.5, true},
		{-1.5, true},
		{1.0009765625, true}, // 1 + 2^-10, smallest value above 1
		{1.999, true},
		{-1.25, true},
		{1.0, false},  // mantissa zero -> flips to Inf, not NaN
		{-1.0, false}, // same
		{2.0, false},
		{0.75, false},
		{2.5, false},
		{0, false},
	}
	for _, c := range cases {
		if got := NaNVulnerableValue(c.v); got != c.want {
			t.Errorf("NaNVulnerableValue(%g) = %v, want %v", c.v, got, c.want)
		}
	}
}

// Property: flipping the top exponent bit of a NaN-vulnerable value yields a
// NaN; the paper's Figure 7(b) mechanism.
func TestNaNVulnerableFlipYieldsNaN(t *testing.T) {
	f := func(x float32) bool {
		h := F32ToF16Bits(x)
		if !NaNVulnerable16(h) {
			return true
		}
		flipped := FlipBits16(h, []int{14}) // highest exponent bit
		return IsNaN16(flipped)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// And deterministically:
	if !IsNaN16(FlipBits16(F32ToF16Bits(1.5), []int{14})) {
		t.Error("flipping bit 14 of 1.5 must give NaN")
	}
}

// Figure 7(a): flipping the highest exponent bit of a small value in (0,1)
// creates an extremely large value.
func TestExponentFlipBlowup(t *testing.T) {
	v := float32(0.5) // exponent 01110
	corrupted := F16BitsToF32(FlipBits16(F32ToF16Bits(v), []int{14}))
	if corrupted < 16384 {
		t.Errorf("exponent flip of 0.5 should blow up, got %g", corrupted)
	}
}

func TestClassifiers(t *testing.T) {
	if !IsInf16(0x7C00) || !IsInf16(0xFC00) {
		t.Error("IsInf16 failed on infinity patterns")
	}
	if IsInf16(0x7C01) {
		t.Error("IsInf16 must reject NaN patterns")
	}
	if !IsSubnormal16(0x0001) || !IsSubnormal16(0x83FF) {
		t.Error("IsSubnormal16 failed on subnormal patterns")
	}
	if IsSubnormal16(0x0000) || IsSubnormal16(0x0400) {
		t.Error("IsSubnormal16 must reject zero and normals")
	}
}

func TestFormatBits16(t *testing.T) {
	cases := map[uint16]string{
		0x3C00: "0|01111|0000000000", // 1.0
		0xBC00: "1|01111|0000000000", // -1.0
		0x7C01: "0|11111|0000000001", // NaN
		0x0000: "0|00000|0000000000", // +0
	}
	for h, want := range cases {
		if got := FormatBits16(h); got != want {
			t.Errorf("FormatBits16(%#04x) = %s, want %s", h, got, want)
		}
	}
}

func TestFormatBits32(t *testing.T) {
	got := FormatBits32(math.Float32bits(1.0))
	want := "0|01111111|00000000000000000000000"
	if got != want {
		t.Errorf("FormatBits32(1.0) = %s, want %s", got, want)
	}
	if len(FormatBits32(0)) != 34 { // 32 bits + 2 separators
		t.Error("FormatBits32 length wrong")
	}
}
