package numerics

import "strings"

// FormatBits16 renders a binary16 pattern as "s|eeeee|mmmmmmmmmm" — the
// sign/exponent/mantissa grouping of the paper's Figure 7 diagrams.
func FormatBits16(h uint16) string {
	var b strings.Builder
	for i := 15; i >= 0; i-- {
		if h&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if i == 15 || i == 10 {
			b.WriteByte('|')
		}
	}
	return b.String()
}

// FormatBits32 renders a binary32 pattern as "s|eeeeeeee|m...".
func FormatBits32(w uint32) string {
	var b strings.Builder
	for i := 31; i >= 0; i-- {
		if w&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if i == 31 || i == 23 {
			b.WriteByte('|')
		}
	}
	return b.String()
}
