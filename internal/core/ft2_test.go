package core

import (
	"testing"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

func testModel(t *testing.T, name string) *model.Model {
	t.Helper()
	cfg, err := model.ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return model.MustNew(cfg, 42, numerics.FP16)
}

func TestDefaults(t *testing.T) {
	d := Defaults()
	if d.ScaleFactor != 2 || d.Mode != protect.ClipToBound || !d.FirstTokenNaNCorrection || d.ProtectAllLayers {
		t.Errorf("Defaults() = %+v does not match the paper configuration", d)
	}
}

func TestAttachRejectsBadScale(t *testing.T) {
	m := testModel(t, "opt-2.7b-sim")
	defer func() {
		if recover() == nil {
			t.Error("scale < 1 must panic")
		}
	}()
	Attach(m, Options{ScaleFactor: 0.5})
}

func TestFT2FaultFreeTransparency(t *testing.T) {
	// With scaled bounds, FT2 must not change fault-free generations.
	for _, name := range []string{"opt-2.7b-sim", "gptj-6b-sim", "llama2-7b-sim"} {
		m := testModel(t, name)
		prompt := []int{4, 9, 14, 19, 24}
		clean := m.Generate(prompt, 12)

		f := Attach(m, Defaults())
		protected := f.Generate(prompt, 12)
		f.Detach()
		for i := range clean {
			if clean[i] != protected[i] {
				t.Errorf("%s: FT2 changed a fault-free generation at %d: %v vs %v", name, i, clean, protected)
				break
			}
		}
	}
}

func TestFT2CapturesBoundsDuringFirstToken(t *testing.T) {
	m := testModel(t, "llama2-7b-sim")
	f := Attach(m, Defaults())
	defer f.Detach()
	f.Generate([]int{4, 5, 6, 7}, 6)
	// Llama family: 4 critical kinds per block.
	want := m.Cfg.Blocks * 4
	if got := f.Bounds().Len(); got != want {
		t.Errorf("captured bounds for %d sites, want %d", got, want)
	}
	if f.ProtectedSiteCount() != want {
		t.Errorf("ProtectedSiteCount = %d, want %d", f.ProtectedSiteCount(), want)
	}
}

func TestFT2BoundsResetPerInference(t *testing.T) {
	m := testModel(t, "opt-2.7b-sim")
	f := Attach(m, Defaults())
	defer f.Detach()
	f.Generate([]int{4, 5, 6}, 4)
	k := protect.SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.VProj}, Site: model.SiteLinearOut}
	b1, ok1 := f.Bounds().Get(k)
	f.Generate([]int{40, 50, 60, 70, 80}, 4)
	b2, ok2 := f.Bounds().Get(k)
	if !ok1 || !ok2 {
		t.Fatal("bounds missing")
	}
	if b1 == b2 {
		t.Log("note: identical bounds across different prompts (possible but unlikely)")
	}
}

func TestFT2CorrectsInjectedFault(t *testing.T) {
	m := testModel(t, "opt-6.7b-sim")
	prompt := []int{4, 9, 14, 19}
	clean := m.Generate(prompt, 10)

	// Injector: huge value in a critical layer during a following token.
	inject := m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (model.LayerRef{Block: 2, Kind: model.OutProj}) && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
			out.Data[0] = 48000
		}
	})
	corrupted := m.Generate(prompt, 10)

	f := Attach(m, Defaults()) // protector runs after the injector
	protected := f.Generate(prompt, 10)
	f.Detach()
	m.RemoveHook(inject)

	diff := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !diff(clean, corrupted) {
		t.Skip("fault masked without protection on this seed")
	}
	if diff(clean, protected) {
		t.Errorf("FT2 failed to mask the fault: clean=%v protected=%v", clean, protected)
	}
	if f.Stats().OutOfBound == 0 {
		t.Error("FT2 should have clipped the injected value")
	}
}

func TestFT2CorrectsNaNDuringFirstToken(t *testing.T) {
	m := testModel(t, "opt-6.7b-sim")
	prompt := []int{4, 9, 14, 19}
	clean := m.Generate(prompt, 8)

	nan := float32(0)
	nan /= nan // quiet NaN without importing math
	inject := m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (model.LayerRef{Block: 1, Kind: model.FC2}) && ctx.Step == 0 && ctx.Site == model.SiteLinearOut {
			out.Data[3] = nan
		}
	})
	f := Attach(m, Defaults())
	protected := f.Generate(prompt, 8)
	if f.FirstTokenNaNCount() == 0 {
		t.Error("FT2 should have corrected the first-token NaN")
	}
	f.Detach()
	m.RemoveHook(inject)

	same := true
	for i := range clean {
		if clean[i] != protected[i] {
			same = false
		}
	}
	if !same {
		t.Log("first-token NaN changed output even after correction (counted as first-token SDC risk, acceptable)")
	}
}

func TestFT2AllLayerCoverage(t *testing.T) {
	m := testModel(t, "opt-2.7b-sim")
	opts := Defaults()
	opts.ProtectAllLayers = true
	f := Attach(m, opts)
	defer f.Detach()
	want := len(m.Cfg.LinearLayers())
	if f.ProtectedSiteCount() != want {
		t.Errorf("all-layer coverage = %d sites, want %d", f.ProtectedSiteCount(), want)
	}
	f.Generate([]int{4, 5, 6}, 4)
	if f.Bounds().Len() != want {
		t.Errorf("all-layer profiling captured %d, want %d", f.Bounds().Len(), want)
	}
}

func TestFT2MemoryOverheadBytes(t *testing.T) {
	m := testModel(t, "llama2-7b-sim")
	f := Attach(m, Defaults())
	defer f.Detach()
	f.Generate([]int{4, 5, 6}, 4)
	bytes := f.Bounds().MemoryBytes(numerics.FP16)
	// 16 protected layers × 2 values × 2 bytes = 64 bytes on the scaled-down
	// model; the real llama2-7b (32 blocks × 4) would be 512 — the paper's
	// upper end.
	if bytes != m.Cfg.Blocks*4*4 {
		t.Errorf("memory overhead %d bytes", bytes)
	}
	refBytes := 32 * 4 * 2 * 2
	if refBytes != 512 {
		t.Errorf("reference-model memory accounting wrong: %d", refBytes)
	}
}

func TestFT2ScaleFactorWidensEffectiveBounds(t *testing.T) {
	m := testModel(t, "vicuna-7b-sim")
	prompt := []int{4, 9, 14, 19, 24, 29}

	corrections := func(scale float32) int {
		opts := Defaults()
		opts.ScaleFactor = scale
		f := Attach(m, opts)
		defer f.Detach()
		f.Generate(prompt, 24)
		return f.Stats().Total()
	}
	// Fault-free corrections can only decrease as the scale grows.
	c1 := corrections(1)
	c2 := corrections(2)
	c4 := corrections(4)
	if c2 > c1 || c4 > c2 {
		t.Errorf("corrections must be monotone in scale: %d, %d, %d", c1, c2, c4)
	}
}

func TestFT2ClipModeZeroStillProtects(t *testing.T) {
	m := testModel(t, "opt-6.7b-sim")
	opts := Defaults()
	opts.Mode = protect.ClipToZero
	f := Attach(m, opts)
	defer f.Detach()
	out := f.Generate([]int{4, 5, 6, 7}, 10)
	if len(out) != 10 {
		t.Fatal("generation failed under clip-to-zero")
	}
}
