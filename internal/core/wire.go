package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"ft2/internal/model"
	"ft2/internal/protect"
)

// Wire codec for ForkState: the FT2 controller state that rides along with a
// model.Snapshot when a protected session migrates between worker processes
// or is parked to disk. The encoding is canonical (bounds entries sorted by
// block/kind/site), so the same state always produces the same bytes.
//
// Layout (all little-endian):
//
//	u64 firstTokenNaN
//	u64 stats.outOfBound | u64 stats.nan
//	u8  layerKindCount (must equal model.NumLayerKinds)
//	layerKindCount × [ u64 outOfBound, u64 nan ]
//	u32 boundsCount
//	boundsCount × [ u32 block, u8 kind, u8 site, u32 lo bits, u32 hi bits ]

const boundsEntryBytes = 4 + 1 + 1 + 4 + 4

// AppendForkState appends the fork state's wire encoding to dst and returns
// the extended slice. A nil Bounds store encodes as zero entries and decodes
// to an empty store.
func AppendForkState(dst []byte, st *ForkState) []byte {
	dst = appendCoreU64(dst, uint64(st.FirstTokenNaN))
	dst = appendCoreU64(dst, uint64(st.Stats.OutOfBound))
	dst = appendCoreU64(dst, uint64(st.Stats.NaN))
	dst = append(dst, byte(model.NumLayerKinds))
	for _, cs := range st.ByKind {
		dst = appendCoreU64(dst, uint64(cs.OutOfBound))
		dst = appendCoreU64(dst, uint64(cs.NaN))
	}
	var entries []protect.Entry
	if st.Bounds != nil {
		entries = st.Bounds.SortedEntries()
	}
	dst = appendCoreU32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = appendCoreU32(dst, uint32(e.Key.Layer.Block))
		dst = append(dst, byte(e.Key.Layer.Kind), byte(e.Key.Site))
		dst = appendCoreU32(dst, math.Float32bits(e.Bounds.Lo))
		dst = appendCoreU32(dst, math.Float32bits(e.Bounds.Hi))
	}
	return dst
}

// DecodeForkState parses one wire-encoded fork state from the front of
// data, returning the state and the number of bytes consumed. The decoded
// Bounds store is always non-nil. Malformed input returns an error, never a
// panic.
func DecodeForkState(data []byte) (ForkState, int, error) {
	var st ForkState
	const fixed = 8 + 8 + 8 + 1
	if len(data) < fixed {
		return st, 0, fmt.Errorf("core: fork-state wire truncated: %d bytes", len(data))
	}
	st.FirstTokenNaN = int(binary.LittleEndian.Uint64(data))
	st.Stats.OutOfBound = int(binary.LittleEndian.Uint64(data[8:]))
	st.Stats.NaN = int(binary.LittleEndian.Uint64(data[16:]))
	if int(data[24]) != model.NumLayerKinds {
		return st, 0, fmt.Errorf("core: fork-state wire: %d layer kinds, this build has %d", data[24], model.NumLayerKinds)
	}
	off := fixed
	if len(data) < off+model.NumLayerKinds*16+4 {
		return st, 0, fmt.Errorf("core: fork-state wire truncated in per-kind stats")
	}
	for k := range st.ByKind {
		st.ByKind[k].OutOfBound = int(binary.LittleEndian.Uint64(data[off:]))
		st.ByKind[k].NaN = int(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if n < 0 || n > (len(data)-off)/boundsEntryBytes {
		return st, 0, fmt.Errorf("core: fork-state wire: %d bounds entries exceed remaining %d bytes", n, len(data)-off)
	}
	st.Bounds = protect.NewStore()
	for i := 0; i < n; i++ {
		block := int(binary.LittleEndian.Uint32(data[off:]))
		kind := model.LayerKind(data[off+4])
		site := model.Site(data[off+5])
		lo := math.Float32frombits(binary.LittleEndian.Uint32(data[off+6:]))
		hi := math.Float32frombits(binary.LittleEndian.Uint32(data[off+10:]))
		off += boundsEntryBytes
		if int(kind) >= model.NumLayerKinds {
			return st, 0, fmt.Errorf("core: fork-state wire: bad layer kind %d", kind)
		}
		if site > model.SiteActivationOut {
			return st, 0, fmt.Errorf("core: fork-state wire: bad site %d", site)
		}
		st.Bounds.Set(protect.SiteKey{
			Layer: model.LayerRef{Block: block, Kind: kind},
			Site:  site,
		}, protect.Bounds{Lo: lo, Hi: hi})
	}
	return st, off, nil
}

func appendCoreU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendCoreU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
