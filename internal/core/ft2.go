// Package core assembles the paper's contribution — the FT2 methodology:
//
//  1. identify critical layers from the architecture alone (the heuristic of
//     Section 4.1.2, implemented in internal/arch);
//  2. during the first token's prefill pass, correct NaN and record each
//     critical layer's activation range (Section 4.2);
//  3. for every following token, apply range restriction with the recorded
//     bounds scaled by a factor (default 2), clipping out-of-bound values to
//     the bound and NaN to zero (Section 4.3).
//
// No offline profiling, no training data: everything happens inside a single
// inference.
package core

import (
	"fmt"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

// Options tune FT2; the zero value plus Defaults() reproduces the paper's
// configuration. The knobs exist for the ablation studies (Fig. 9 scaling
// sweep, clip-mode and coverage ablations).
type Options struct {
	// ScaleFactor widens the first-token bounds (paper default 2).
	ScaleFactor float32
	// Mode selects the out-of-bound correction target (paper: ClipToBound).
	Mode protect.ClipMode
	// FirstTokenNaNCorrection keeps NaN correction active while profiling
	// the first token (paper: on; Fig. 11 ablates it).
	FirstTokenNaNCorrection bool
	// ProtectAllLayers covers every linear layer instead of only the
	// critical ones (the "naïve" ~2× overhead configuration of Section 4.1).
	ProtectAllLayers bool
}

// Defaults returns the paper's FT2 configuration.
func Defaults() Options {
	return Options{
		ScaleFactor:             2,
		Mode:                    protect.ClipToBound,
		FirstTokenNaNCorrection: true,
	}
}

// FT2 is an online protector attached to a model. Use Generate (not the
// model's) so per-inference bounds reset correctly.
type FT2 struct {
	m      *model.Model
	opts   Options
	prof   *protect.FirstTokenProfiler
	stats  protect.CorrectionStats
	handle model.HookHandle
	cover  map[arch.CoveragePoint]bool
}

// Attach registers FT2's forward hook on the model and returns the
// controller. Call Detach to remove it.
func Attach(m *model.Model, opts Options) *FT2 {
	if opts.ScaleFactor < 1 {
		panic(fmt.Sprintf("core: scale factor %g < 1 would tighten bounds", opts.ScaleFactor))
	}
	f := &FT2{
		m:     m,
		opts:  opts,
		prof:  protect.NewFirstTokenProfiler(),
		cover: arch.Coverage(arch.MethodFT2, m.Cfg.Family),
	}
	if opts.ProtectAllLayers {
		f.cover = make(map[arch.CoveragePoint]bool)
		for _, k := range m.Cfg.Family.LayerKinds() {
			f.cover[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] = true
		}
	}
	f.handle = m.RegisterHook(f.hook)
	return f
}

// Detach removes FT2's hook from the model.
func (f *FT2) Detach() { f.m.RemoveHook(f.handle) }

// Stats returns the corrections applied since attach (following tokens
// only; first-token NaN corrections are reported by FirstTokenNaNCount).
func (f *FT2) Stats() protect.CorrectionStats { return f.stats }

// FirstTokenNaNCount returns NaNs corrected during the last inference's
// first-token pass.
func (f *FT2) FirstTokenNaNCount() int { return f.prof.NaNCorrected }

// Bounds exposes the raw (unscaled) bounds captured from the last
// inference's first token.
func (f *FT2) Bounds() *protect.Store { return f.prof.Store }

// ProtectedSiteCount returns how many concrete layer instances FT2 protects
// on this model.
func (f *FT2) ProtectedSiteCount() int {
	n := 0
	for b := 0; b < f.m.Cfg.Blocks; b++ {
		for _, k := range f.m.Cfg.Family.LayerKinds() {
			if f.cover[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] {
				n++
			}
		}
	}
	return n
}

// Generate runs a protected inference: bounds reset, first token profiled,
// following tokens range-restricted.
func (f *FT2) Generate(prompt []int, n int) []int {
	f.prof.Reset()
	return f.m.Generate(prompt, n)
}

func (f *FT2) hook(ctx model.HookCtx, out *tensor.Tensor) {
	if !f.cover[arch.CoveragePoint{Kind: ctx.Layer.Kind, Site: ctx.Site}] {
		return
	}
	key := protect.SiteKey{Layer: ctx.Layer, Site: ctx.Site}
	if ctx.FirstToken {
		if f.opts.FirstTokenNaNCorrection {
			f.prof.NaNCorrected += protect.CorrectNaNOnly(out.Data)
		}
		f.prof.Store.Observe(key, out)
		return
	}
	b, ok := f.prof.Store.Get(key)
	if !ok {
		// No bounds captured (should not happen in a Generate-driven run);
		// fall back to NaN-only correction.
		f.stats.NaN += protect.CorrectNaNOnly(out.Data)
		return
	}
	st := protect.ClampCorrect(out.Data, b.Scale(f.opts.ScaleFactor), f.opts.Mode, true)
	f.stats.OutOfBound += st.OutOfBound
	f.stats.NaN += st.NaN
}
