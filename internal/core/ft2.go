// Package core assembles the paper's contribution — the FT2 methodology:
//
//  1. identify critical layers from the architecture alone (the heuristic of
//     Section 4.1.2, implemented in internal/arch);
//  2. during the first token's prefill pass, correct NaN and record each
//     critical layer's activation range (Section 4.2);
//  3. for every following token, apply range restriction with the recorded
//     bounds scaled by a factor (default 2), clipping out-of-bound values to
//     the bound and NaN to zero (Section 4.3).
//
// No offline profiling, no training data: everything happens inside a single
// inference.
package core

import (
	"fmt"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

// Options tune FT2; the zero value plus Defaults() reproduces the paper's
// configuration. The knobs exist for the ablation studies (Fig. 9 scaling
// sweep, clip-mode and coverage ablations).
type Options struct {
	// ScaleFactor widens the first-token bounds (paper default 2).
	ScaleFactor float32
	// Mode selects the out-of-bound correction target (paper: ClipToBound).
	Mode protect.ClipMode
	// FirstTokenNaNCorrection keeps NaN correction active while profiling
	// the first token (paper: on; Fig. 11 ablates it).
	FirstTokenNaNCorrection bool
	// ProtectAllLayers covers every linear layer instead of only the
	// critical ones (the "naïve" ~2× overhead configuration of Section 4.1).
	ProtectAllLayers bool
}

// Defaults returns the paper's FT2 configuration.
func Defaults() Options {
	return Options{
		ScaleFactor:             2,
		Mode:                    protect.ClipToBound,
		FirstTokenNaNCorrection: true,
	}
}

// FT2 is an online protector attached to a model. Use Generate (not the
// model's) so per-inference bounds reset correctly.
type FT2 struct {
	m    *model.Model
	opts Options
	prof *protect.FirstTokenProfiler
	// bounds is the store the protection hook consults. It normally points
	// at the profiler's own store (written during the first token, read
	// afterwards); a forked continuation swaps in a shared read-only store
	// captured from an earlier run's prefill — decode steps never write it.
	bounds *protect.Store
	stats  protect.CorrectionStats
	// byKind breaks the following-token corrections down by the layer kind
	// they fired on — the per-layer-kind protection telemetry the serving
	// layer exports. Fixed-size array: updating it on the hook hot path
	// never allocates.
	byKind [model.NumLayerKinds]protect.CorrectionStats
	handle model.HookHandle
	cover  map[arch.CoveragePoint]bool
}

// New builds an FT2 controller for the model without registering its hook;
// callers that interleave FT2 with other hooks (the campaign runner puts
// the fault injector first) register it with Install. The controller is
// reusable across inferences — Reset or ResumeFork rearm it.
func New(m *model.Model, opts Options) *FT2 {
	if opts.ScaleFactor < 1 {
		panic(fmt.Sprintf("core: scale factor %g < 1 would tighten bounds", opts.ScaleFactor))
	}
	f := &FT2{
		m:     m,
		opts:  opts,
		prof:  protect.NewFirstTokenProfiler(),
		cover: arch.Coverage(arch.MethodFT2, m.Cfg.Family),
	}
	f.bounds = f.prof.Store
	if opts.ProtectAllLayers {
		f.cover = make(map[arch.CoveragePoint]bool)
		for _, k := range m.Cfg.Family.LayerKinds() {
			f.cover[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] = true
		}
	}
	return f
}

// NewWithKinds builds an FT2 controller covering exactly the given layer
// kinds (at their linear-output sites) instead of the family's architectural
// criticality heuristic — the constructor adaptive policies use to aim the
// clamp at their FT2-tier kinds. Coverage is a constructor concern so that
// Options stays a comparable value type.
func NewWithKinds(m *model.Model, opts Options, kinds ...model.LayerKind) *FT2 {
	f := New(m, opts)
	f.cover = make(map[arch.CoveragePoint]bool, len(kinds))
	for _, k := range kinds {
		f.cover[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] = true
	}
	return f
}

// Attach is New followed by Install: it registers FT2's forward hook on the
// model and returns the controller. Call Detach to remove it.
func Attach(m *model.Model, opts Options) *FT2 {
	f := New(m, opts)
	f.Install()
	return f
}

// Install registers FT2's forward hook on the model (after any hooks the
// caller registered first).
func (f *FT2) Install() { f.handle = f.m.RegisterHook(f.hook) }

// Hook returns the controller's forward hook without registering it, for
// per-session installation in batched decode (model.BatchItem.Hooks): each
// session's controller observes and corrects only that session's rows while
// every controller shares the same read-only bounds store.
func (f *FT2) Hook() model.Hook { return f.hook }

// Detach removes FT2's hook from the model.
func (f *FT2) Detach() { f.m.RemoveHook(f.handle) }

// Reset rearms the controller for a fresh full inference: per-inference
// bounds and correction counters clear, and the hook profiles the next
// first token into the controller's own store again.
func (f *FT2) Reset() {
	f.prof.Reset()
	f.bounds = f.prof.Store
	f.stats = protect.CorrectionStats{}
	f.byKind = [model.NumLayerKinds]protect.CorrectionStats{}
}

// ForkState is the protection-side state FT2 carries across decode steps,
// captured so a forked continuation reproduces a full run bit-for-bit:
// the bounds recorded from the inference's prefill, the first-token NaN
// correction count, and the following-token correction counters accumulated
// so far.
type ForkState struct {
	Bounds        *protect.Store
	FirstTokenNaN int
	Stats         protect.CorrectionStats
	// ByKind carries the per-layer-kind correction breakdown. Callers that
	// only need the aggregate counters bit-identical (the campaign's golden
	// checkpoints) may leave it zero; the serving layer round-trips it so a
	// session's per-kind telemetry survives being parked and resumed.
	ByKind [model.NumLayerKinds]protect.CorrectionStats
}

// CaptureForkState snapshots the controller's state (the bounds are deep
// copied, so the capture stays valid across later Resets).
func (f *FT2) CaptureForkState() ForkState {
	return ForkState{
		Bounds:        f.bounds.Clone(),
		FirstTokenNaN: f.prof.NaNCorrected,
		Stats:         f.stats,
		ByKind:        f.byKind,
	}
}

// ResumeFork installs a captured state for a forked continuation that
// starts at a decode step ≥ 1. The hook then reads st.Bounds without ever
// writing it (only the first-token pass writes bounds), so one captured
// state may back many concurrent forks.
func (f *FT2) ResumeFork(st ForkState) {
	f.bounds = st.Bounds
	f.prof.NaNCorrected = st.FirstTokenNaN
	f.stats = st.Stats
	f.byKind = st.ByKind
}

// Stats returns the corrections applied since attach (following tokens
// only; first-token NaN corrections are reported by FirstTokenNaNCount).
func (f *FT2) Stats() protect.CorrectionStats { return f.stats }

// StatsByKind breaks the following-token corrections down by the layer kind
// they fired on, indexed by model.LayerKind.
func (f *FT2) StatsByKind() [model.NumLayerKinds]protect.CorrectionStats { return f.byKind }

// FirstTokenNaNCount returns NaNs corrected during the last inference's
// first-token pass.
func (f *FT2) FirstTokenNaNCount() int { return f.prof.NaNCorrected }

// Bounds exposes the raw (unscaled) bounds the hook currently consults:
// those captured from the last inference's first token, or the fork-state
// bounds after ResumeFork.
func (f *FT2) Bounds() *protect.Store { return f.bounds }

// ProtectedSiteCount returns how many concrete layer instances FT2 protects
// on this model.
func (f *FT2) ProtectedSiteCount() int {
	n := 0
	for b := 0; b < f.m.Cfg.Blocks; b++ {
		for _, k := range f.m.Cfg.Family.LayerKinds() {
			if f.cover[arch.CoveragePoint{Kind: k, Site: model.SiteLinearOut}] {
				n++
			}
		}
	}
	return n
}

// Generate runs a protected inference: bounds reset, first token profiled,
// following tokens range-restricted.
func (f *FT2) Generate(prompt []int, n int) []int {
	f.Reset()
	return f.m.Generate(prompt, n)
}

// GenerateInto is Generate writing the decoded tokens into dst[:0]; with a
// reused dst the protected steady-state generation is allocation-free (the
// bounds store clears in place, see protect.Store.Reset).
func (f *FT2) GenerateInto(dst []int, prompt []int, n int) []int {
	f.Reset()
	return f.m.GenerateInto(dst, prompt, n)
}

func (f *FT2) hook(ctx model.HookCtx, out *tensor.Tensor) {
	if !f.cover[arch.CoveragePoint{Kind: ctx.Layer.Kind, Site: ctx.Site}] {
		return
	}
	key := protect.SiteKey{Layer: ctx.Layer, Site: ctx.Site}
	if ctx.FirstToken {
		if f.opts.FirstTokenNaNCorrection {
			f.prof.NaNCorrected += protect.CorrectNaNOnly(out.Data)
		}
		f.bounds.Observe(key, out)
		return
	}
	b, ok := f.bounds.Get(key)
	if !ok {
		// No bounds captured (should not happen in a Generate-driven run);
		// fall back to NaN-only correction.
		n := protect.CorrectNaNOnly(out.Data)
		f.stats.NaN += n
		f.byKind[ctx.Layer.Kind].NaN += n
		return
	}
	st := protect.ClampCorrect(out.Data, b.Scale(f.opts.ScaleFactor), f.opts.Mode, true)
	f.stats.OutOfBound += st.OutOfBound
	f.stats.NaN += st.NaN
	f.byKind[ctx.Layer.Kind].OutOfBound += st.OutOfBound
	f.byKind[ctx.Layer.Kind].NaN += st.NaN
}
