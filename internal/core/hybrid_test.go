package core

import (
	"testing"

	"ft2/internal/arch"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

func hybridCfg(t *testing.T) model.Config {
	t.Helper()
	cfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// ft2OnlyPolicy assigns TierFT2 to exactly the kinds the architectural
// heuristic covers — the policy under which Hybrid must be FT2.
func ft2OnlyPolicy(family model.Family) *protect.Policy {
	p := &protect.Policy{Tiers: make(map[model.LayerKind]protect.Tier)}
	for pt := range arch.Coverage(arch.MethodFT2, family) {
		if pt.Site == model.SiteLinearOut {
			p.Tiers[pt.Kind] = protect.TierFT2
		}
	}
	return p
}

func tokensEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Under an all-FT2 policy the hybrid controller is FT2: identical tokens and
// identical correction counters, with and without an injected fault.
func TestHybridFT2PolicyMatchesFT2(t *testing.T) {
	cfg := hybridCfg(t)
	prompt := []int{4, 9, 14, 19, 24}
	site := fault.Site{Step: 2, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 7, Bits: []int{14}}

	run := func(hybrid, faulty bool) ([]int, protect.CorrectionStats) {
		m := model.MustNew(cfg, 11, numerics.FP16)
		if faulty {
			m.RegisterHook(fault.NewInjector(site, numerics.FP16).Hook())
		}
		if hybrid {
			h := NewHybrid(m, Defaults(), ft2OnlyPolicy(cfg.Family), nil)
			h.Install()
			return h.Generate(prompt, 14), h.Stats()
		}
		f := New(m, Defaults())
		f.Install()
		return f.Generate(prompt, 14), f.Stats()
	}

	for _, faulty := range []bool{false, true} {
		ft2Toks, ft2Stats := run(false, faulty)
		hybToks, hybStats := run(true, faulty)
		if !tokensEqual(ft2Toks, hybToks) {
			t.Errorf("faulty=%v: hybrid tokens %v differ from FT2 %v", faulty, hybToks, ft2Toks)
		}
		if ft2Stats != hybStats {
			t.Errorf("faulty=%v: hybrid stats %+v differ from FT2 %+v", faulty, hybStats, ft2Stats)
		}
	}
}

// An in-range corruption sails through FT2's clamp but the ABFT tier
// recomputes the exact value: the hybrid run lands bit-identical to the
// fault-free golden where FT2-only diverges or silently carries the error.
func TestHybridABFTTierCorrectsInBoundFault(t *testing.T) {
	cfg := hybridCfg(t)
	prompt := []int{4, 9, 14, 19, 24}
	ref := model.LayerRef{Block: 0, Kind: model.DownProj}
	golden := model.MustNew(cfg, 11, numerics.FP16).Generate(prompt, 14)

	// Probe the 2×-scaled bound FT2 would clamp against, then pin the whole
	// output row at 90% of it — a stuck-row burst that is provably in-range
	// for the clamp element-by-element yet wrecks the row checksum. (Single
	// in-bound flips are architecturally masked on a model this small; the
	// burst makes the FT2 blind spot observable.)
	probe := model.MustNew(cfg, 11, numerics.FP16)
	pf := New(probe, Defaults())
	pf.Install()
	pf.Generate(prompt, 14)
	b, ok := pf.Bounds().Get(protect.SiteKey{Layer: ref, Site: model.SiteLinearOut})
	if !ok {
		t.Fatal("no profiled bounds for the fault site")
	}
	stuck := 0.9 * b.Scale(2).Hi
	if stuck <= 0 {
		t.Fatalf("degenerate bound %g — no room for an in-bound fault", stuck)
	}

	inBoundFault := func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Step == 2 && ctx.Site == model.SiteLinearOut && ctx.Layer == ref {
			for i := range out.Data {
				out.Data[i] = stuck
			}
		}
	}

	policy := ft2OnlyPolicy(cfg.Family)
	policy.Tiers[model.DownProj] = protect.TierABFTFT2
	m := model.MustNew(cfg, 11, numerics.FP16)
	m.RegisterHook(inBoundFault)
	h := NewHybrid(m, Defaults(), policy, nil)
	h.Install()
	got := h.Generate(prompt, 14)
	c := h.DrainCounts()
	if c.ABFT.Detected == 0 || c.ABFT.Corrected == 0 {
		t.Fatalf("abft tier never repaired the in-bound fault: %+v", c.ABFT)
	}
	if !tokensEqual(golden, got) {
		t.Errorf("hybrid run diverged from golden: %v vs %v", got, golden)
	}
	if c2 := h.DrainCounts(); c2 != (HybridCounts{}) {
		t.Errorf("second drain not zero: %+v", c2)
	}

	// Control: FT2 alone passes the in-range corruption through at the fault
	// site (it may clamp downstream fallout, but cannot restore the exact
	// value), so the generation diverges from golden — the gap the ABFT tier
	// closes.
	m2 := model.MustNew(cfg, 11, numerics.FP16)
	m2.RegisterHook(inBoundFault)
	f := New(m2, Defaults())
	f.Install()
	ft2Only := f.Generate(prompt, 14)
	if tokensEqual(golden, ft2Only) {
		t.Error("stuck-row fault masked under FT2-only — the control lost its meaning")
	}
}

// A DMR-tier kind gets duplicated execution: a transient fault there is
// fixed exactly and counted through DrainCounts.
func TestHybridDMRTier(t *testing.T) {
	cfg := hybridCfg(t)
	prompt := []int{4, 9, 14, 19, 24}
	golden := model.MustNew(cfg, 11, numerics.FP16).Generate(prompt, 14)

	policy := &protect.Policy{Tiers: map[model.LayerKind]protect.Tier{
		model.QProj: protect.TierDMR,
	}}
	site := fault.Site{Step: 1, Layer: model.LayerRef{Block: 0, Kind: model.QProj}, Elem: 2, Bits: []int{14}}
	m := model.MustNew(cfg, 11, numerics.FP16)
	m.RegisterHook(fault.NewInjector(site, numerics.FP16).Hook())
	h := NewHybrid(m, Defaults(), policy, nil)
	h.Install()
	got := h.Generate(prompt, 14)
	if c := h.DrainCounts(); c.DMRFixed == 0 {
		t.Fatalf("dmr tier never fixed the fault: %+v", c)
	}
	if !tokensEqual(golden, got) {
		t.Errorf("dmr-protected run diverged from golden: %v vs %v", got, golden)
	}
}

// Fork-state round-tripping goes through the FT2 tier, so a parked
// policy-protected session resumes bit-identically (the serving contract).
func TestHybridForkStateRoundTrip(t *testing.T) {
	cfg := hybridCfg(t)
	m := model.MustNew(cfg, 11, numerics.FP16)
	policy := ft2OnlyPolicy(cfg.Family)
	h := NewHybrid(m, Defaults(), policy, nil)
	h.Install()
	h.Generate([]int{4, 9, 14, 19}, 6)
	st := h.CaptureForkState()
	if st.Bounds == nil {
		t.Fatal("fork state missing bounds")
	}
	h.Reset()
	h.ResumeFork(st)
	if h.ft2.Bounds() != st.Bounds {
		t.Error("ResumeFork must install the captured bounds store")
	}
}
