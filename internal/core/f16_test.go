package core

import (
	"testing"

	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// f16ProtectedTokens builds a fresh model with packed-f16 weights, attaches
// FT2, optionally injects a fault, and generates with the given streaming
// mode.
func f16ProtectedTokens(t *testing.T, name string, stream bool, inject bool) []int {
	t.Helper()
	prev := tensor.SetF16Streaming(stream)
	defer tensor.SetF16Streaming(prev)

	cfg, err := model.ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m := model.MustNew(cfg, 42, numerics.FP16)
	m.EnableF16Weights()
	f := Attach(m, Defaults())
	defer f.Detach()
	if inject {
		inj := fault.NewInjector(fault.Site{
			Step:  3,
			Layer: model.LayerRef{Block: 1, Kind: model.FC1},
			Elem:  7,
			Bits:  []int{14}, // exponent bit in FP16: a magnitude fault FT2 clips
		}, numerics.FP16)
		h := m.RegisterHook(inj.Hook())
		defer m.RemoveHook(h)
	}
	return f.Generate([]int{4, 9, 14, 19, 24}, 12)
}

// FT2-protected decode must be bit-identical between f16-streamed and f32
// weight reads — bounds capture, clipping decisions, and the first-token
// NaN correction all observe the same activations either way — both
// fault-free and with an armed injector.
func TestF16StreamedProtectedDecodeBitIdentical(t *testing.T) {
	for _, name := range []string{"opt-2.7b-sim", "gptj-6b-sim", "llama2-7b-sim"} {
		t.Run(name, func(t *testing.T) {
			for _, inject := range []bool{false, true} {
				f32 := f16ProtectedTokens(t, name, false, inject)
				f16 := f16ProtectedTokens(t, name, true, inject)
				for i := range f32 {
					if f32[i] != f16[i] {
						t.Fatalf("inject=%v token %d: f32 %v vs f16-streamed %v", inject, i, f32, f16)
					}
				}
			}
		})
	}
}
