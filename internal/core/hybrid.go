package core

import (
	"ft2/internal/abft"
	"ft2/internal/model"
	"ft2/internal/protect"
	"ft2/internal/tensor"
)

// Hybrid drives an adaptive per-layer-kind protection policy on one model:
// each layer kind gets the tier its vulnerability profile earned —
// FT2 range restriction, ABFT checksum verify-and-repair, DMR duplicated
// execution, a stacked abft+ft2, or nothing. One dispatching forward hook
// runs the exact-correction tiers (ABFT, DMR) first and the FT2 clamp last,
// so recomputation repairs transient faults precisely and the clamp still
// bounds whatever persistent weight/KV corruption leaves behind.
//
// Hybrid presents the same controller surface as FT2 (Install / Hook /
// Reset / fork-state round-tripping), so the serving scheduler can park and
// resume policy-protected sessions exactly like FT2-protected ones. The
// fork state is the FT2 portion — the checker and DMR tiers are stateless
// per step apart from their counters, which DrainCounts hands to the owner.
type Hybrid struct {
	m      *model.Model
	policy *protect.Policy
	ft2    *FT2
	chk    *abft.LinearChecker
	dmr    *protect.DMR
	handle model.HookHandle

	chkHook model.Hook
	dmrHook model.Hook
	ft2Hook model.Hook
}

// HybridCounts is the since-last-drain telemetry of the exact-correction
// tiers.
type HybridCounts struct {
	ABFT     abft.Stats
	DMRFixed int64
}

// NewHybrid builds a policy-driven controller. refs carries the build-time
// ABFT reference sums; pass nil to capture them from m now (the model must
// still be pristine). Like New, the hook is not yet registered — use Install
// or Hook.
func NewHybrid(m *model.Model, opts Options, policy *protect.Policy, refs *abft.RefSums) *Hybrid {
	h := &Hybrid{m: m, policy: policy}
	h.ft2 = NewWithKinds(m, opts, policy.Kinds(protect.TierFT2, protect.TierABFTFT2)...)
	h.ft2Hook = h.ft2.Hook()
	if abftKinds := policy.Kinds(protect.TierABFT, protect.TierABFTFT2); len(abftKinds) > 0 {
		if refs == nil {
			refs = abft.CaptureRefSums(m, abftKinds...)
		}
		h.chk = abft.NewLinearChecker(m, refs, abftKinds...)
		h.chkHook = h.chk.Hook()
	}
	if dmrKinds := policy.Kinds(protect.TierDMR); len(dmrKinds) > 0 {
		h.dmr = protect.NewDMR(m, dmrKinds...)
		h.dmrHook = h.dmr.Hook()
	}
	return h
}

// Policy returns the policy the controller enforces.
func (h *Hybrid) Policy() *protect.Policy { return h.policy }

// Hook returns the dispatching forward hook without registering it, for
// per-session installation in batched decode.
func (h *Hybrid) Hook() model.Hook { return h.hook }

// Install registers the hook on the model; Detach removes it.
func (h *Hybrid) Install() { h.handle = h.m.RegisterHook(h.hook) }

// Detach removes the hook from the model.
func (h *Hybrid) Detach() { h.m.RemoveHook(h.handle) }

// Reset rearms the FT2 tier for a fresh inference. The checker/DMR counters
// survive (they are lifetime telemetry, collected via DrainCounts).
func (h *Hybrid) Reset() { h.ft2.Reset() }

// CaptureForkState / ResumeFork round-trip the FT2 tier's per-session state,
// the only protection state that must follow a parked session.
func (h *Hybrid) CaptureForkState() ForkState { return h.ft2.CaptureForkState() }

// ResumeFork installs a previously captured session state.
func (h *Hybrid) ResumeFork(st ForkState) { h.ft2.ResumeFork(st) }

// Stats returns the FT2 tier's following-token corrections.
func (h *Hybrid) Stats() protect.CorrectionStats { return h.ft2.Stats() }

// StatsByKind returns the FT2 tier's per-kind correction breakdown.
func (h *Hybrid) StatsByKind() [model.NumLayerKinds]protect.CorrectionStats {
	return h.ft2.StatsByKind()
}

// FirstTokenNaNCount returns the FT2 tier's first-token NaN corrections.
func (h *Hybrid) FirstTokenNaNCount() int { return h.ft2.FirstTokenNaNCount() }

// DrainCounts returns the exact-correction tiers' counters accumulated since
// the previous drain and resets them. The serving scheduler calls it once
// per slice from the replica-owning worker, so no atomics are needed here.
func (h *Hybrid) DrainCounts() HybridCounts {
	var c HybridCounts
	if h.chk != nil {
		c.ABFT = h.chk.DrainStats()
	}
	if h.dmr != nil {
		c.DMRFixed = int64(h.dmr.Detected)
		h.dmr.Detected = 0
	}
	return c
}

// Generate runs a policy-protected inference (the hook must be installed).
func (h *Hybrid) Generate(prompt []int, n int) []int {
	h.Reset()
	return h.m.Generate(prompt, n)
}

// GenerateInto is Generate writing tokens into dst[:0].
func (h *Hybrid) GenerateInto(dst []int, prompt []int, n int) []int {
	h.Reset()
	return h.m.GenerateInto(dst, prompt, n)
}

// hook dispatches to the tiers in correction order: checksum repair and
// duplicated execution first (exact fixes), range restriction last (bounds
// whatever remains).
func (h *Hybrid) hook(ctx model.HookCtx, out *tensor.Tensor) {
	if h.chkHook != nil {
		h.chkHook(ctx, out)
	}
	if h.dmrHook != nil {
		h.dmrHook(ctx, out)
	}
	h.ft2Hook(ctx, out)
}
