// Package tensor provides the dense numeric kernels of the FT2 reproduction:
// row-major float32 matrices with parallel blocked matrix multiplication,
// the normalization and activation functions used by the transformer engine,
// and a binary16 precision gate that mirrors FP16 storage on GPUs.
//
// Tensors are deliberately simple — a shape plus a flat float32 buffer — so
// that the fault injector and the protection layer can address individual
// neurons by flat index exactly the way the paper addresses fault sites
// (layer ID, neuron ID, bit position).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ft2/internal/numerics"
)

// finiteness cache states (Tensor.finite).
const (
	finiteUnknown uint32 = iota
	finiteYes
	finiteNo
)

// Tensor is a row-major dense matrix of float32 values. Rank is 1 or 2:
// vectors are represented as 1×n matrices.
type Tensor struct {
	Rows, Cols int
	Data       []float32

	// finite caches the all-elements-finite scan (finiteUnknown/-Yes/-No).
	// Weight tensors never change after load, so MatMul's zero-skip
	// soundness check pays its O(k·n) scan once instead of every forward
	// pass. Mutating methods reset it; code that writes through Data or Row
	// directly must call MarkMutated. Atomic because replicas share
	// read-only weight tensors across serving goroutines, and two of them
	// may fill the cache concurrently.
	finite atomic.Uint32

	// half is the packed binary16 shadow built by PackF16 (pack.go); halfOK
	// is 1 while the shadow matches Data and 0 after any mutation.
	half   []uint16
	halfOK atomic.Uint32

	// base points at the tensor a view was carved from (RowView /
	// BindRowView). MarkMutated on the view propagates to base, so cached
	// state on the parent can never go stale through a view write.
	base *Tensor
}

// MarkMutated invalidates cached derived state — the finiteness cache and
// the packed-f16 shadow — after the contents were changed through Data,
// Row, or any other direct-slice write. The mutating methods on Tensor call
// it themselves; writes through a tracked view propagate to the parent.
func (t *Tensor) MarkMutated() {
	t.finite.Store(finiteUnknown)
	if t.half != nil {
		t.halfOK.Store(0)
	}
	if t.base != nil {
		t.base.MarkMutated()
	}
}

// RowView returns a 1×Cols tensor aliasing row r of t, with mutation
// tracking: MarkMutated on the view invalidates t's cached state too.
func (t *Tensor) RowView(r int) *Tensor {
	return &Tensor{Rows: 1, Cols: t.Cols, Data: t.Row(r), base: t}
}

// BindRowView re-aims view (typically a reusable scratch header) at row r
// of t without allocating. Any cached state carried by the old binding is
// dropped and mutations through the view now invalidate t.
func (view *Tensor) BindRowView(t *Tensor, r int) *Tensor {
	view.Rows, view.Cols = 1, t.Cols
	view.Data = t.Row(r)
	view.half, view.base = nil, t
	view.finite.Store(finiteUnknown)
	return view
}

// BindRowsView re-aims view at the row range [lo, lo+rows) of t without
// allocating — the multi-row generalization of BindRowView that the fused
// mixed-phase forward uses to hand a prefill item's C-row slice to its
// hooks. Mutations through the view invalidate t.
func (view *Tensor) BindRowsView(t *Tensor, lo, rows int) *Tensor {
	view.Rows, view.Cols = rows, t.Cols
	view.Data = t.Data[lo*t.Cols : (lo+rows)*t.Cols]
	view.half, view.base = nil, t
	view.finite.Store(finiteUnknown)
	return view
}

// AllFinite reports whether every element is finite (no NaN, no ±Inf),
// scanning at most once until the next mutation.
func (t *Tensor) AllFinite() bool {
	switch t.finite.Load() {
	case finiteYes:
		return true
	case finiteNo:
		return false
	}
	if allFinite(t.Data) {
		t.finite.Store(finiteYes)
		return true
	}
	t.finite.Store(finiteNo)
	return false
}

// New allocates a zeroed rows×cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %d×%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy (including the cached finiteness state and any
// packed-f16 shadow). The clone is standalone: it never aliases t and is
// not a tracked view even when t was one.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	c.finite.Store(t.finite.Load())
	if t.half != nil {
		c.half = make([]uint16, len(t.half))
		copy(c.half, t.half)
		c.halfOK.Store(t.halfOK.Load())
	}
	return c
}

// At returns the element at (r, c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set stores v at (r, c).
func (t *Tensor) Set(r, c int, v float32) {
	t.Data[r*t.Cols+c] = v
	t.MarkMutated()
}

// Row returns the r-th row as a slice aliasing the tensor's storage.
func (t *Tensor) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Reuse reshapes t to rows×cols, reusing the backing array when its
// capacity suffices and reallocating otherwise. The contents are undefined
// afterwards (callers overwrite or Zero them). This is the scratch-arena
// primitive: a buffer sized once at model construction is Reused every
// decode step without touching the allocator.
func (t *Tensor) Reuse(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	n := rows * cols
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Rows, t.Cols = rows, cols
	t.MarkMutated()
	return t
}

// Zero sets every element to 0. It is a mutation like any other (shadow
// and parent invalidation), but the finiteness answer is known afterwards.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
	t.MarkMutated()
	t.finite.Store(finiteYes)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
	t.MarkMutated()
}

// RandNormal fills the tensor with N(0, std²) draws from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	t.MarkMutated()
}

// Quantize rounds every element through the given dtype's storage format.
// For FP16 this is the precision gate the paper's FP16 models pass every
// activation through; for FP32 it is the identity. FP16 rounding maps
// overflow to ±Inf, so it invalidates the finiteness cache.
func (t *Tensor) Quantize(d numerics.DType) {
	if d != numerics.FP16 {
		return
	}
	quantizeF16(t.Data)
	t.MarkMutated()
}

// HasNaN reports whether any element is NaN.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) {
			return true
		}
	}
	return false
}

// MinMax returns the smallest and largest finite elements. NaNs are skipped;
// if every element is NaN it returns (0, 0).
func (t *Tensor) MinMax() (lo, hi float32) {
	first := true
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) {
			continue
		}
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Equal reports exact element-wise equality of shape and contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%d×%d)", t.Rows, t.Cols)
}
