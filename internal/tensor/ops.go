package tensor

import "math"

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: Add shape mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
	a.MarkMutated()
}

// MulInPlace multiplies a by b element-wise (a *= b).
func MulInPlace(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MulInPlace shape mismatch")
	}
	for i, v := range b.Data {
		a.Data[i] *= v
	}
	a.MarkMutated()
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	ScaleSlice(t.Data, s)
	t.MarkMutated()
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
// NaN inputs propagate to the whole row (as in real attention kernels).
func SoftmaxRows(t *Tensor) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			row[i] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
	t.MarkMutated()
}

// LayerNorm normalizes each row to zero mean / unit variance then applies
// gamma (scale) and beta (shift). eps guards the variance.
func LayerNorm(x *Tensor, gamma, beta []float32, eps float32) *Tensor {
	return LayerNormInto(New(x.Rows, x.Cols), x, gamma, beta, eps)
}

// LayerNormInto is LayerNorm writing into a preallocated out (same shape as
// x, fully overwritten; must not alias x).
func LayerNormInto(out, x *Tensor, gamma, beta []float32, eps float32) *Tensor {
	if len(gamma) != x.Cols || len(beta) != x.Cols {
		panic("tensor: LayerNorm parameter length mismatch")
	}
	if out.Rows != x.Rows || out.Cols != x.Cols {
		panic("tensor: LayerNormInto output shape mismatch")
	}
	n := float32(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= n
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		orow := out.Row(r)
		for i, v := range row {
			orow[i] = (v-mean)*inv*gamma[i] + beta[i]
		}
	}
	out.MarkMutated()
	return out
}

// RMSNorm applies root-mean-square normalization per row with a learned
// scale, as used by the Llama/Qwen architecture family.
func RMSNorm(x *Tensor, gamma []float32, eps float32) *Tensor {
	return RMSNormInto(New(x.Rows, x.Cols), x, gamma, eps)
}

// RMSNormInto is RMSNorm writing into a preallocated out (same shape as x,
// fully overwritten; must not alias x).
func RMSNormInto(out, x *Tensor, gamma []float32, eps float32) *Tensor {
	if len(gamma) != x.Cols {
		panic("tensor: RMSNorm parameter length mismatch")
	}
	if out.Rows != x.Rows || out.Cols != x.Cols {
		panic("tensor: RMSNormInto output shape mismatch")
	}
	n := float32(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var ss float32
		for _, v := range row {
			ss += v * v
		}
		inv := 1 / float32(math.Sqrt(float64(ss/n)+float64(eps)))
		orow := out.Row(r)
		for i, v := range row {
			orow[i] = v * inv * gamma[i]
		}
	}
	out.MarkMutated()
	return out
}

// ArgMaxRow returns the index of the largest element in row r
// (ties broken toward the lower index; NaNs never win).
func (t *Tensor) ArgMaxRow(r int) int {
	row := t.Row(r)
	best := 0
	bestV := float32(math.Inf(-1))
	for i, v := range row {
		if !math.IsNaN(float64(v)) && v > bestV {
			bestV = v
			best = i
		}
	}
	return best
}

// Concat stacks a on top of b (same column count).
func Concat(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: Concat column mismatch")
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SliceRows returns rows [lo,hi) as a copy.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	if lo < 0 || hi > t.Rows || lo > hi {
		panic("tensor: SliceRows out of range")
	}
	out := New(hi-lo, t.Cols)
	copy(out.Data, t.Data[lo*t.Cols:hi*t.Cols])
	return out
}

// SliceCols returns columns [lo,hi) of every row as a copy.
func (t *Tensor) SliceCols(lo, hi int) *Tensor {
	if lo < 0 || hi > t.Cols || lo > hi {
		panic("tensor: SliceCols out of range")
	}
	out := New(t.Rows, hi-lo)
	for r := 0; r < t.Rows; r++ {
		copy(out.Row(r), t.Row(r)[lo:hi])
	}
	return out
}
