package tensor

import (
	"math"
	"math/rand"
	"testing"

	"ft2/internal/numerics"
)

// Property: PackF16 must leave Data exactly at numerics.RoundF16 of the
// original values, and the shadow must decode to Data bit-for-bit — that is
// the contract that keeps fault-site addressing and FT2 bounds unchanged
// under f16 storage.
func TestPackF16RoundTripsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 65504, -65504, 65520, 1e9, -1e9,
		5.9604645e-08, 6.1e-05, 1e-30, float32(math.Inf(1)), float32(math.Inf(-1)),
	}
	for i := 0; i < 2000; i++ {
		vals = append(vals, float32(rng.NormFloat64()*math.Pow(10, float64(rng.Intn(9)-4))))
	}
	orig := make([]float32, len(vals))
	copy(orig, vals)
	tt := FromSlice(1, len(vals), vals)
	tt.PackF16()
	for i, v := range orig {
		want := numerics.RoundF16(v)
		got := tt.Data[i]
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("elem %d (%g): Data = %x, RoundF16 = %x", i, v, math.Float32bits(got), math.Float32bits(want))
		}
		dec := numerics.F16BitsToF32(tt.half[i])
		if math.Float32bits(dec) != math.Float32bits(got) {
			t.Fatalf("elem %d (%g): shadow decodes to %x, Data = %x", i, v, math.Float32bits(dec), math.Float32bits(got))
		}
	}
	if !tt.IsPackedF16() {
		t.Error("tensor should report packed after PackF16")
	}
}

// Mutating a packed tensor must invalidate the shadow so kernels fall back
// to the (mutated) f32 master copy instead of streaming stale halves.
func TestPackF16InvalidatedByMutation(t *testing.T) {
	mutations := map[string]func(*Tensor){
		"Set":         func(t *Tensor) { t.Set(0, 1, 3.25) },
		"Fill":        func(t *Tensor) { t.Fill(2) },
		"Zero":        func(t *Tensor) { t.Zero() },
		"Reuse":       func(t *Tensor) { t.Reuse(2, 4) },
		"MarkMutated": func(t *Tensor) { t.Data[0] = 7; t.MarkMutated() },
		"Quantize":    func(t *Tensor) { t.Quantize(numerics.FP16) },
		"RowViewWrite": func(t *Tensor) {
			v := t.RowView(1)
			v.Data[0] = 42
			v.MarkMutated()
		},
	}
	for name, mutate := range mutations {
		tt := New(2, 4)
		tt.Fill(1.5)
		tt.PackF16()
		if !tt.IsPackedF16() {
			t.Fatalf("%s: not packed before mutation", name)
		}
		mutate(tt)
		if tt.IsPackedF16() {
			t.Errorf("%s: shadow still valid after mutation", name)
		}
		if tt.halfData() != nil {
			t.Errorf("%s: halfData still streams after mutation", name)
		}
	}
}

// Clone must carry the shadow; the clone and the original invalidate
// independently.
func TestPackF16CloneIndependent(t *testing.T) {
	a := New(2, 3)
	a.Fill(0.5)
	a.PackF16()
	c := a.Clone()
	if !c.IsPackedF16() {
		t.Fatal("clone lost the packed shadow")
	}
	c.Set(0, 0, 9)
	if c.IsPackedF16() {
		t.Error("clone shadow should be invalid after mutation")
	}
	if !a.IsPackedF16() {
		t.Error("original shadow must survive clone mutation")
	}
}

// SetF16Streaming(false) must park the shadow without dropping it.
func TestSetF16StreamingGate(t *testing.T) {
	tt := New(1, 8)
	tt.Fill(0.25)
	tt.PackF16()
	prev := SetF16Streaming(false)
	defer SetF16Streaming(prev)
	if tt.halfData() != nil {
		t.Error("halfData must be nil while streaming is disabled")
	}
	if !tt.IsPackedF16() {
		t.Error("disabling streaming must not invalidate the shadow")
	}
	SetF16Streaming(true)
	if hasF16C && tt.halfData() == nil {
		t.Error("halfData should stream again once re-enabled")
	}
}

// Satellite audit test: corrupting a weight through a 1-row view must make
// the parent's cached finiteness rescan fire, so the zero-skip fast path
// cannot mask the fault.
func TestViewCorruptionInvalidatesFiniteness(t *testing.T) {
	w := New(4, 8)
	w.Fill(0.5)
	if !w.AllFinite() {
		t.Fatal("weights should start finite")
	}
	v := w.RowView(2)
	v.Data[3] = float32(math.NaN())
	v.MarkMutated()
	if w.AllFinite() {
		t.Fatal("parent finiteness cache went stale through a view write")
	}
	// End-to-end soundness: a sparse activation row against the corrupted
	// weight must propagate NaN (the zero-skip shortcut must be off).
	a := New(1, 4)
	a.Data[0] = 0 // would skip the NaN row if the cache lied
	wT := New(4, 8)
	wT.Fill(0.5)
	vt := wT.RowView(0)
	vt.Data[2] = float32(math.NaN())
	vt.MarkMutated()
	out := MatMul(a, wT)
	if !math.IsNaN(float64(out.Data[2])) {
		t.Error("0 × NaN failed to propagate after view corruption")
	}
}

// BindRowView must re-aim a scratch header and track the new parent.
func TestBindRowView(t *testing.T) {
	parent := New(3, 5)
	parent.Fill(1)
	if !parent.AllFinite() {
		t.Fatal("parent should start finite")
	}
	var scratch Tensor
	scratch.BindRowView(parent, 1)
	if scratch.Rows != 1 || scratch.Cols != 5 {
		t.Fatalf("bound view shape %dx%d", scratch.Rows, scratch.Cols)
	}
	scratch.Data[0] = float32(math.Inf(1))
	scratch.MarkMutated()
	if parent.AllFinite() {
		t.Error("parent cache stale after bound-view write")
	}
	if parent.Data[5] != float32(math.Inf(1)) {
		t.Error("bound view does not alias the parent row")
	}
}
