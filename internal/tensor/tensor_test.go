package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ft2/internal/numerics"
)

func almostEqual(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Numel() != 12 {
		t.Fatal("New dimensions wrong")
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Error("Set/At mismatch")
	}
	if len(m.Row(2)) != 4 || m.Row(2)[3] != 7 {
		t.Error("Row aliasing broken")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice should panic on length mismatch")
		}
	}()
	FromSlice(2, 3, []float32{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Clone must be Equal to source")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, got.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(5, 5)
	a.RandNormal(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).Equal(a) {
		t.Error("A × I must equal A")
	}
	if !MatMul(id, a).Equal(a) {
		t.Error("I × A must equal A")
	}
}

// Parallel and serial paths must agree exactly: the parallel path splits by
// rows, and each row's dot products run in the same order either way.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough to trigger the parallel path (m*k*n >= 1<<15).
	a := New(64, 48)
	b := New(48, 32)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	par := MatMul(a, b)
	ser := New(64, 32)
	matMulRows(ser, a, b, 0, 64, true)
	if !par.Equal(ser) {
		t.Error("parallel MatMul diverges from serial result")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(7, 9)
	b := New(4, 9)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	bt := New(9, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 9; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got := MatMulT(a, b)
	want := MatMul(a, bt)
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulT[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul should panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestLinearBias(t *testing.T) {
	x := FromSlice(1, 2, []float32{1, 2})
	w := FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 1}) // out=3, in=2
	out := Linear(x, w, []float32{10, 20, 30})
	want := []float32{11, 22, 33}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("Linear[%d] = %g, want %g", i, out.Data[i], v)
		}
	}
	// nil bias
	out2 := Linear(x, w, nil)
	want2 := []float32{1, 2, 3}
	for i, v := range want2 {
		if out2.Data[i] != v {
			t.Fatalf("Linear no-bias[%d] = %g, want %g", i, out2.Data[i], v)
		}
	}
}

func TestAddAndInPlaceOps(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	s := Add(a, b)
	if s.Data[0] != 11 || s.Data[2] != 33 {
		t.Error("Add wrong")
	}
	AddInPlace(a, b)
	if a.Data[1] != 22 {
		t.Error("AddInPlace wrong")
	}
	MulInPlace(a, b)
	if a.Data[0] != 110 {
		t.Error("MulInPlace wrong")
	}
	a.Scale(0.5)
	if a.Data[0] != 55 {
		t.Error("Scale wrong")
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := New(4, 16)
	m.RandNormal(rng, 3)
	SoftmaxRows(m)
	for r := 0; r < 4; r++ {
		var sum float32
		for _, v := range m.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of [0,1]: %g", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-5) {
			t.Fatalf("softmax row %d sums to %g", r, sum)
		}
	}
}

func TestSoftmaxStableUnderLargeInputs(t *testing.T) {
	m := FromSlice(1, 3, []float32{1e30, 1e30, 1e30})
	SoftmaxRows(m)
	for _, v := range m.Data {
		if !almostEqual(v, 1.0/3, 1e-5) {
			t.Fatalf("softmax of equal huge values should be uniform, got %g", v)
		}
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := New(3, 32)
	x.RandNormal(rng, 5)
	gamma := make([]float32, 32)
	beta := make([]float32, 32)
	for i := range gamma {
		gamma[i] = 1
	}
	out := LayerNorm(x, gamma, beta, 1e-5)
	for r := 0; r < 3; r++ {
		var mean, varr float32
		for _, v := range out.Row(r) {
			mean += v
		}
		mean /= 32
		for _, v := range out.Row(r) {
			d := v - mean
			varr += d * d
		}
		varr /= 32
		if !almostEqual(mean, 0, 1e-4) || !almostEqual(varr, 1, 1e-2) {
			t.Fatalf("LayerNorm row %d: mean=%g var=%g", r, mean, varr)
		}
	}
}

func TestRMSNormUnitRMS(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := New(2, 64)
	x.RandNormal(rng, 4)
	gamma := make([]float32, 64)
	for i := range gamma {
		gamma[i] = 1
	}
	out := RMSNorm(x, gamma, 1e-6)
	for r := 0; r < 2; r++ {
		var ss float32
		for _, v := range out.Row(r) {
			ss += v * v
		}
		rms := float32(math.Sqrt(float64(ss / 64)))
		if !almostEqual(rms, 1, 1e-3) {
			t.Fatalf("RMSNorm row %d rms=%g", r, rms)
		}
	}
}

func TestActivations(t *testing.T) {
	x := FromSlice(1, 4, []float32{-2, -0.5, 0.5, 2})
	r := x.Clone()
	ReLU(r)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 0.5 || r.Data[3] != 2 {
		t.Error("ReLU wrong")
	}
	g := x.Clone()
	GELU(g)
	if !almostEqual(g.Data[3], 1.954, 5e-3) || g.Data[0] > 0 {
		t.Errorf("GELU wrong: %v", g.Data)
	}
	s := x.Clone()
	SiLU(s)
	if !almostEqual(s.Data[3], 1.7616, 1e-3) || s.Data[0] > 0 {
		t.Errorf("SiLU wrong: %v", s.Data)
	}
}

// Property: ReLU output is always non-negative and idempotent.
func TestReLUProperties(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		m := FromSlice(1, len(vals), append([]float32(nil), vals...))
		ReLU(m)
		once := append([]float32(nil), m.Data...)
		ReLU(m)
		for i, v := range m.Data {
			if !math.IsNaN(float64(v)) && v < 0 {
				return false
			}
			bothNaN := math.IsNaN(float64(v)) && math.IsNaN(float64(once[i]))
			if v != once[i] && !bothNaN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: activation functions reduce the magnitude of extreme negative
// values and do not amplify positives beyond the identity (|act(x)| <= |x|
// + small constant) — the paper's "magnitude reduction" mechanism
// (Take-away #4).
func TestActivationsDampenExtremes(t *testing.T) {
	extreme := float32(60000)
	for _, kind := range []ActivationKind{ActReLU, ActGELU, ActSiLU} {
		neg := FromSlice(1, 1, []float32{-extreme})
		kind.Apply(neg)
		if math.Abs(float64(neg.Data[0])) > 1e-3 {
			t.Errorf("%v(-60000) = %g, expected ~0", kind, neg.Data[0])
		}
		pos := FromSlice(1, 1, []float32{extreme})
		kind.Apply(pos)
		if pos.Data[0] > extreme+1 {
			t.Errorf("%v(60000) amplified to %g", kind, pos.Data[0])
		}
	}
}

func TestActivationKindString(t *testing.T) {
	if ActNone.String() != "none" || ActReLU.String() != "relu" ||
		ActGELU.String() != "gelu" || ActSiLU.String() != "silu" {
		t.Error("ActivationKind String mismatch")
	}
}

func TestRotaryEmbedPositionZeroIsIdentity(t *testing.T) {
	x := FromSlice(1, 4, []float32{1, 2, 3, 4})
	orig := x.Clone()
	RotaryEmbed(x, []int{0}, 4, 10000)
	for i := range x.Data {
		if !almostEqual(x.Data[i], orig.Data[i], 1e-6) {
			t.Fatalf("RoPE at position 0 should be identity, got %v", x.Data)
		}
	}
}

func TestRotaryEmbedPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := New(3, 8)
	x.RandNormal(rng, 1)
	var before float64
	for _, v := range x.Data {
		before += float64(v) * float64(v)
	}
	RotaryEmbed(x, []int{5, 9, 100}, 8, 10000)
	var after float64
	for _, v := range x.Data {
		after += float64(v) * float64(v)
	}
	if math.Abs(before-after) > 1e-3*before {
		t.Errorf("RoPE must preserve norm: before=%g after=%g", before, after)
	}
}

func TestQuantizeFP16(t *testing.T) {
	x := FromSlice(1, 3, []float32{1.0000001, 70000, 1e-10})
	x.Quantize(numerics.FP16)
	if x.Data[0] != 1 {
		t.Errorf("quantize should round 1.0000001 to 1, got %g", x.Data[0])
	}
	if !math.IsInf(float64(x.Data[1]), 1) {
		t.Errorf("quantize should overflow 70000 to +Inf, got %g", x.Data[1])
	}
	if x.Data[2] != 0 {
		t.Errorf("quantize should flush 1e-10 to 0, got %g", x.Data[2])
	}
	// FP32 quantize is identity.
	y := FromSlice(1, 1, []float32{1.0000001})
	y.Quantize(numerics.FP32)
	if y.Data[0] != 1.0000001 {
		t.Error("FP32 quantize must be identity")
	}
}

func TestMinMaxSkipsNaN(t *testing.T) {
	x := FromSlice(1, 4, []float32{3, float32(math.NaN()), -5, 2})
	lo, hi := x.MinMax()
	if lo != -5 || hi != 3 {
		t.Errorf("MinMax = (%g,%g), want (-5,3)", lo, hi)
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice(1, 2, []float32{1, 2})
	if x.HasNaN() {
		t.Error("no NaN expected")
	}
	x.Data[1] = float32(math.NaN())
	if !x.HasNaN() {
		t.Error("NaN expected")
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice(2, 4, []float32{1, 9, 2, 9, float32(math.NaN()), -1, -2, -3})
	if x.ArgMaxRow(0) != 1 {
		t.Error("ArgMaxRow should break ties low")
	}
	if x.ArgMaxRow(1) != 1 {
		t.Error("ArgMaxRow must skip NaN")
	}
}

func TestConcatAndSlices(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	c := Concat(a, b)
	if c.Rows != 3 || c.At(2, 1) != 6 {
		t.Error("Concat wrong")
	}
	s := c.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 {
		t.Error("SliceRows wrong")
	}
	sc := c.SliceCols(1, 2)
	if sc.Cols != 1 || sc.At(2, 0) != 6 {
		t.Error("SliceCols wrong")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128)
	y := New(128, 128)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulT128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128)
	y := New(128, 128)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(x, y)
	}
}

func BenchmarkQuantizeFP16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(64, 256)
	x.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Quantize(numerics.FP16)
	}
}
