package tensor

import "math"

// ReLU applies max(0, x) in place — OPT's MLP activation.
func ReLU(t *Tensor) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit in place —
// GPT-J's MLP activation.
func GELU(t *Tensor) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.Data {
		x := float64(v)
		t.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// SiLU applies x·sigmoid(x) in place — the Llama/Qwen gate activation.
func SiLU(t *Tensor) {
	// Split loop: a scalar pass fills the exp values (math.Exp must keep its
	// exact scalar semantics), then the vector kernel finishes x/(1+e) —
	// per-lane IEEE add/divide/convert, bit-identical to the fused loop.
	data := t.Data
	var ebuf [256]float64
	for len(data) > 0 {
		chunk := data
		if len(chunk) > len(ebuf) {
			chunk = chunk[:len(ebuf)]
		}
		for i, v := range chunk {
			ebuf[i] = math.Exp(-float64(v))
		}
		if !siluFinish(chunk, ebuf[:len(chunk)]) {
			for i, v := range chunk {
				chunk[i] = float32(float64(v) / (1 + ebuf[i]))
			}
		}
		data = data[len(chunk):]
	}
}

// ActivationKind identifies an activation function by name; the
// architecture analyzer uses it when classifying layer criticality.
type ActivationKind int

const (
	// ActNone marks the absence of an activation.
	ActNone ActivationKind = iota
	// ActReLU is the rectified linear unit.
	ActReLU
	// ActGELU is the Gaussian error linear unit (tanh approximation).
	ActGELU
	// ActSiLU is the sigmoid linear unit (a.k.a. swish).
	ActSiLU
)

// String implements fmt.Stringer.
func (a ActivationKind) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActGELU:
		return "gelu"
	case ActSiLU:
		return "silu"
	default:
		return "unknown"
	}
}

// Apply runs the activation in place.
func (a ActivationKind) Apply(t *Tensor) {
	switch a {
	case ActNone:
		return
	case ActReLU:
		ReLU(t)
	case ActGELU:
		GELU(t)
	case ActSiLU:
		SiLU(t)
	default:
		panic("tensor: unknown activation")
	}
	t.MarkMutated()
}

// RopeTable caches the sin/cos factors of rotary position embeddings for
// every (position, frequency) pair, so the decode hot path rotates with two
// table lookups instead of a math.Pow and math.Sincos per pair. The factors
// are kept in float64 and the rotation applied in float64 exactly as in
// RotaryEmbed, so table-driven and direct application are bit-identical.
type RopeTable struct {
	half     int
	sin, cos []float64 // indexed pos*half + i
}

// NewRopeTable precomputes rotation factors for positions [0, maxPos) over
// rotDim interleaved dimensions with the given frequency base.
func NewRopeTable(maxPos, rotDim int, base float64) *RopeTable {
	half := rotDim / 2
	rt := &RopeTable{
		half: half,
		sin:  make([]float64, maxPos*half),
		cos:  make([]float64, maxPos*half),
	}
	for pos := 0; pos < maxPos; pos++ {
		for i := 0; i < half; i++ {
			theta := float64(pos) / math.Pow(base, 2*float64(i)/float64(rotDim))
			s, c := math.Sincos(theta)
			rt.sin[pos*half+i] = s
			rt.cos[pos*half+i] = c
		}
	}
	return rt
}

// Apply rotates the first 2*half elements of row (interleaved even/odd
// pairs) in place for absolute position pos.
func (rt *RopeTable) Apply(row []float32, pos int) {
	base := pos * rt.half
	for i := 0; i < rt.half; i++ {
		sin, cos := rt.sin[base+i], rt.cos[base+i]
		a, b := float64(row[2*i]), float64(row[2*i+1])
		row[2*i] = float32(a*cos - b*sin)
		row[2*i+1] = float32(a*sin + b*cos)
	}
}

// RotaryEmbed applies rotary position embeddings (RoPE) in place to a
// row-major [seq × dim] tensor whose rows are per-position head vectors
// laid out as interleaved (even, odd) pairs over rotDim dimensions.
// positions gives the absolute position of each row.
func RotaryEmbed(t *Tensor, positions []int, rotDim int, base float64) {
	if rotDim > t.Cols {
		panic("tensor: RotaryEmbed rotDim exceeds width")
	}
	if len(positions) != t.Rows {
		panic("tensor: RotaryEmbed positions length mismatch")
	}
	half := rotDim / 2
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		pos := float64(positions[r])
		for i := 0; i < half; i++ {
			theta := pos / math.Pow(base, 2*float64(i)/float64(rotDim))
			sin, cos := math.Sincos(theta)
			a, b := float64(row[2*i]), float64(row[2*i+1])
			row[2*i] = float32(a*cos - b*sin)
			row[2*i+1] = float32(a*sin + b*cos)
		}
	}
	t.MarkMutated()
}
