package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestScaleSliceBitIdentity checks the uniform-multiply kernel against the
// scalar loop, bitwise, across lengths and value classes including NaN,
// ±Inf, ±0, and denormals, with scales of every class too.
func TestScaleSliceBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	scales := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 0.125,
		3.7e-39, 2.5e38, float32(math.Inf(1)), float32(math.NaN())}
	for _, n := range []int{0, 1, 3, 4, 7, 8, 9, 15, 16, 33, 250} {
		for _, s := range scales {
			xs := make([]float32, n)
			fillPattern(r, xs)
			want := make([]float32, n)
			for i, v := range xs {
				want[i] = v * s
			}
			ScaleSlice(xs, s)
			for i := range xs {
				if math.Float32bits(xs[i]) != math.Float32bits(want[i]) {
					t.Fatalf("n=%d s=%v i=%d: got %x want %x",
						n, s, i, math.Float32bits(xs[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestSiLUBitIdentity checks the split-loop SiLU (scalar exp pass + vector
// finish) against the original fused scalar loop, bitwise, over sizes that
// cross the chunk boundary and inputs including NaN, ±Inf, ±0, denormals,
// and magnitudes that overflow/underflow the sigmoid.
func TestSiLUBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 3, 5, 8, 64, 255, 256, 257, 264, 1000} {
		xs := make([]float32, n)
		fillPattern(r, xs)
		for i := range xs {
			if i%9 == 0 {
				xs[i] = float32(r.NormFloat64()) * 100 // saturate the sigmoid
			}
		}
		want := make([]float32, n)
		for i, v := range xs {
			x := float64(v)
			want[i] = float32(x / (1 + math.Exp(-x)))
		}
		tt := &Tensor{Rows: 1, Cols: n, Data: xs}
		SiLU(tt)
		for i := range xs {
			if math.Float32bits(xs[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d i=%d in=%v: got %x want %x",
					n, i, want[i], math.Float32bits(xs[i]), math.Float32bits(want[i]))
			}
		}
	}
}
