package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// Regression: the zero-skip fast path in matMulRows must not run when b
// carries non-finite values — 0 × NaN and 0 × ±Inf are NaN and a masked
// fault would silently vanish from the campaign.
func TestMatMulZeroTimesNaNPropagates(t *testing.T) {
	nan := float32(math.NaN())
	for _, poison := range []float32{nan, float32(math.Inf(1)), float32(math.Inf(-1))} {
		a := FromSlice(1, 2, []float32{0, 1})
		b := FromSlice(2, 2, []float32{poison, 2, 3, 4})
		out := MatMul(a, b)
		// out[0][0] = 0*poison + 1*3 — NaN through the 0×poison term.
		if !math.IsNaN(float64(out.Data[0])) {
			t.Errorf("0 × %g was skipped: got %g, want NaN", poison, out.Data[0])
		}
		// out[0][1] = 0*2 + 1*4 stays clean.
		if out.Data[1] != 4 {
			t.Errorf("finite column corrupted: got %g, want 4", out.Data[1])
		}
	}
}

// The zero-skip path itself must stay active for fully finite operands.
func TestMatMulZeroSkipStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(rng, 3, 8)
	for i := 0; i < 8; i += 2 {
		a.Data[i] = 0 // force the shortcut on a sparse row
	}
	b := randTensor(rng, 8, 4)
	got := MatMul(a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			var want float32
			for k := 0; k < 8; k++ {
				want += a.Data[i*8+k] * b.Data[k*4+j]
			}
			if diff := float64(got.Data[i*4+j] - want); math.Abs(diff) > 1e-5 {
				t.Fatalf("out[%d][%d] = %g, want %g", i, j, got.Data[i*4+j], want)
			}
		}
	}
}

// Dot must agree with a sequential reference within float32 reassociation
// error on every size class the SIMD kernels branch on (scalar tail, SSE
// 4/16 blocks, AVX 8/32 blocks and its >=16 dispatch threshold).
func TestDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 17, 31, 32, 33, 63, 64, 96, 97, 264, 384} {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
			t.Errorf("n=%d: Dot = %g, reference = %g", n, got, want)
		}
	}
}

// Dot must propagate NaN from either operand — attention scores over a
// corrupted KV row have to surface the fault, not average it away.
func TestDotPropagatesNaN(t *testing.T) {
	for _, n := range []int{4, 16, 33} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i], b[i] = 1, 1
		}
		b[n-1] = float32(math.NaN())
		if v := Dot(a, b); !math.IsNaN(float64(v)) {
			t.Errorf("n=%d: Dot = %g, want NaN", n, v)
		}
	}
}

func TestMatMulTIntoMatchesMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 5, 24)
	b := randTensor(rng, 7, 24)
	want := MatMulT(a, b)
	out := New(5, 7)
	for i := range out.Data {
		out.Data[i] = 99 // must be fully overwritten, not accumulated into
	}
	MatMulTInto(out, a, b)
	for i, v := range want.Data {
		if out.Data[i] != v {
			t.Fatalf("elem %d: %g != %g", i, out.Data[i], v)
		}
	}
}

func TestLinearIntoMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 4, 16)
	w := randTensor(rng, 10, 16)
	bias := make([]float32, 10)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := Linear(x, w, bias)
	got := LinearInto(New(4, 10), x, w, bias)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("elem %d: %g != %g", i, got.Data[i], v)
		}
	}
}

func TestNormIntoMatchesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 3, 12)
	gamma := make([]float32, 12)
	beta := make([]float32, 12)
	for i := range gamma {
		gamma[i] = float32(rng.NormFloat64())
		beta[i] = float32(rng.NormFloat64())
	}
	ln := LayerNorm(x, gamma, beta, 1e-5)
	lnInto := LayerNormInto(New(3, 12), x, gamma, beta, 1e-5)
	rms := RMSNorm(x, gamma, 1e-5)
	rmsInto := RMSNormInto(New(3, 12), x, gamma, 1e-5)
	for i := range ln.Data {
		if ln.Data[i] != lnInto.Data[i] {
			t.Fatalf("LayerNormInto elem %d: %g != %g", i, lnInto.Data[i], ln.Data[i])
		}
		if rms.Data[i] != rmsInto.Data[i] {
			t.Fatalf("RMSNormInto elem %d: %g != %g", i, rmsInto.Data[i], rms.Data[i])
		}
	}
}

func TestReuse(t *testing.T) {
	x := New(4, 8)
	data := &x.Data[0]
	x.Reuse(2, 8)
	if x.Rows != 2 || x.Cols != 8 || len(x.Data) != 16 {
		t.Fatalf("Reuse shrink: got %dx%d len %d", x.Rows, x.Cols, len(x.Data))
	}
	if &x.Data[0] != data {
		t.Error("Reuse within capacity must not reallocate")
	}
	x.Reuse(16, 8)
	if x.Rows != 16 || x.Cols != 8 || len(x.Data) != 128 {
		t.Fatalf("Reuse grow: got %dx%d len %d", x.Rows, x.Cols, len(x.Data))
	}
}

// RopeTable.Apply must be bit-identical to RotaryEmbed — the table is a pure
// caching layer over the same float64 rotation.
func TestRopeTableMatchesRotaryEmbed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim, maxPos = 16, 32
	rt := NewRopeTable(maxPos, dim, 10000)
	for pos := 0; pos < maxPos; pos += 5 {
		direct := randTensor(rng, 1, dim)
		viaTable := direct.Clone()
		RotaryEmbed(direct, []int{pos}, dim, 10000)
		rt.Apply(viaTable.Row(0), pos)
		for i := range direct.Data {
			if math.Float32bits(direct.Data[i]) != math.Float32bits(viaTable.Data[i]) {
				t.Fatalf("pos %d elem %d: table %g != direct %g", pos, i, viaTable.Data[i], direct.Data[i])
			}
		}
	}
}
