package tensor

import (
	"sync/atomic"

	"ft2/internal/numerics"
)

// Packed binary16 weight storage (DESIGN.md §12).
//
// PackF16 gives a tensor a packed half-precision shadow of its contents.
// Data stays the master copy: every value is first rounded through the same
// binary16 grid the activations pass through (numerics.RoundF16 semantics),
// so the shadow decodes to Data bit-for-bit and every consumer that reads
// Data — fault-site addressing, FT2 bound profiling, the zero-skip scan,
// non-F16C kernels — observes exactly the values the f16 kernels stream.
// The shadow is purely a bandwidth optimization: on F16C hosts the MatMulT
// row kernels stream half the bytes per weight row; everywhere else the
// tensor behaves as if PackF16 had only quantized it.
//
// Mutation invalidates the shadow (MarkMutated clears halfOK) and the
// tensor silently falls back to f32 streaming of the mutated master copy —
// never re-packing automatically, because a mutated value (for instance a
// fault-flipped weight) need not be representable in binary16 and
// re-rounding it would change the computation. Call PackF16 again to
// restore f16 streaming after deliberate mutation.

// f16Stream is the process-wide gate for streaming packed shadows; tests
// and benches flip it to force the f32 path on F16C hosts.
var f16Stream atomic.Bool

func init() { f16Stream.Store(true) }

// SetF16Streaming enables or disables use of packed-f16 shadows by the
// matmul kernels (packing state is kept either way) and reports the
// previous setting. Streaming is on by default; it only takes effect on
// hosts with the F16C kernel tier.
func SetF16Streaming(on bool) (prev bool) { return f16Stream.Swap(on) }

// F16StreamingAvailable reports whether this host has the F16C kernel tier,
// i.e. whether PackF16 can change streaming bandwidth at all.
func F16StreamingAvailable() bool { return hasF16C }

// PackF16 rounds every element through the binary16 grid (exactly
// numerics.RoundF16) and builds the packed shadow. Overflow rounds to ±Inf
// like RoundF16, so the finiteness cache is invalidated along the way.
func (t *Tensor) PackF16() {
	n := len(t.Data)
	if cap(t.half) < n {
		t.half = make([]uint16, n)
	} else {
		t.half = t.half[:n]
	}
	for i, v := range t.Data {
		hb := numerics.F32ToF16Bits(v)
		t.half[i] = hb
		t.Data[i] = numerics.F16BitsToF32(hb)
	}
	t.finite.Store(finiteUnknown)
	t.halfOK.Store(1)
}

// IsPackedF16 reports whether the tensor currently has a valid packed
// shadow (packed and not mutated since).
func (t *Tensor) IsPackedF16() bool { return t.half != nil && t.halfOK.Load() == 1 }

// F16Bits returns the packed shadow bits, or nil when no valid shadow
// exists. The slice aliases internal storage; callers must not write it.
func (t *Tensor) F16Bits() []uint16 {
	if !t.IsPackedF16() {
		return nil
	}
	return t.half
}

// halfData returns the packed shadow when the kernels may stream it: valid
// shadow, streaming enabled, and the F16C tier present (which pins the FMA
// f32 kernels of identical op order). Returns nil otherwise, sending the
// caller down the bit-identical f32 path.
func (t *Tensor) halfData() []uint16 {
	if !hasF16C || t.half == nil || t.halfOK.Load() != 1 || !f16Stream.Load() {
		return nil
	}
	return t.half
}
