#include "textflag.h"

// func dotVec(a, b *float32, n int) float32
//
// SSE 4-lane dot product with four independent accumulator registers
// (16 floats per main-loop iteration). SSE2 is part of the amd64
// baseline, so no CPUID dispatch is needed. NaN and ±Inf propagate
// through MULPS/ADDPS exactly as in scalar IEEE arithmetic, which the
// fault-injection framework depends on.
TEXT ·dotVec(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  CX, BX
	SHRQ  $4, BX
	JZ    tail4

loop16:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(SI), X6
	MOVUPS 16(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X1
	MOVUPS 32(SI), X4
	MOVUPS 32(DI), X5
	MULPS  X5, X4
	ADDPS  X4, X2
	MOVUPS 48(SI), X6
	MOVUPS 48(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X3
	ADDQ   $64, SI
	ADDQ   $64, DI
	DECQ   BX
	JNZ    loop16

tail4:
	MOVQ CX, BX
	ANDQ $15, BX
	MOVQ BX, DX
	SHRQ $2, DX
	JZ   tail1

loop4:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    loop4

tail1:
	ANDQ $3, BX
	JZ   reduce

loop1:
	MOVSS (SI), X4
	MOVSS (DI), X5
	MULSS X5, X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   loop1

reduce:
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET

// func dotVecAVX(a, b *float32, n int) float32
//
// AVX 8-lane dot product with four independent Y-register accumulators
// (32 floats per main-loop iteration). Only reached when cpu_amd64.go has
// confirmed OS-enabled AVX via CPUID/XGETBV. VMULPS/VADDPS (no FMA) keep
// the multiply-then-add float32 semantics of the SSE and scalar kernels;
// only the lane-accumulation order differs.
TEXT ·dotVecAVX(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   CX, BX
	SHRQ   $5, BX
	JZ     avxtail8

avxloop32:
	VMOVUPS (SI), Y4
	VMULPS  (DI), Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI), Y5
	VMULPS  32(DI), Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS 64(SI), Y6
	VMULPS  64(DI), Y6, Y6
	VADDPS  Y6, Y2, Y2
	VMOVUPS 96(SI), Y7
	VMULPS  96(DI), Y7, Y7
	VADDPS  Y7, Y3, Y3
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    BX
	JNZ     avxloop32

avxtail8:
	MOVQ CX, BX
	ANDQ $31, BX
	MOVQ BX, DX
	SHRQ $3, DX
	JZ   avxreduce

avxloop8:
	VMOVUPS (SI), Y4
	VMULPS  (DI), Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     avxloop8

avxreduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, BX
	JZ           avxhsum

avxloop1:
	MOVSS (SI), X4
	MULSS (DI), X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   avxloop1

avxhsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET
