#include "textflag.h"

// func dotVec(a, b *float32, n int) float32
//
// SSE 4-lane dot product with four independent accumulator registers
// (16 floats per main-loop iteration). SSE2 is part of the amd64
// baseline, so no CPUID dispatch is needed. NaN and ±Inf propagate
// through MULPS/ADDPS exactly as in scalar IEEE arithmetic, which the
// fault-injection framework depends on.
TEXT ·dotVec(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  CX, BX
	SHRQ  $4, BX
	JZ    tail4

loop16:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(SI), X6
	MOVUPS 16(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X1
	MOVUPS 32(SI), X4
	MOVUPS 32(DI), X5
	MULPS  X5, X4
	ADDPS  X4, X2
	MOVUPS 48(SI), X6
	MOVUPS 48(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X3
	ADDQ   $64, SI
	ADDQ   $64, DI
	DECQ   BX
	JNZ    loop16

tail4:
	MOVQ CX, BX
	ANDQ $15, BX
	MOVQ BX, DX
	SHRQ $2, DX
	JZ   tail1

loop4:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    loop4

tail1:
	ANDQ $3, BX
	JZ   reduce

loop1:
	MOVSS (SI), X4
	MOVSS (DI), X5
	MULSS X5, X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   loop1

reduce:
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET

// func dotVecAVX(a, b *float32, n int) float32
//
// AVX 8-lane dot product with four independent Y-register accumulators
// (32 floats per main-loop iteration). Only reached when cpu_amd64.go has
// confirmed OS-enabled AVX via CPUID/XGETBV. VMULPS/VADDPS (no FMA) keep
// the multiply-then-add float32 semantics of the SSE and scalar kernels;
// only the lane-accumulation order differs.
TEXT ·dotVecAVX(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   CX, BX
	SHRQ   $5, BX
	JZ     avxtail8

avxloop32:
	VMOVUPS (SI), Y4
	VMULPS  (DI), Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI), Y5
	VMULPS  32(DI), Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS 64(SI), Y6
	VMULPS  64(DI), Y6, Y6
	VADDPS  Y6, Y2, Y2
	VMOVUPS 96(SI), Y7
	VMULPS  96(DI), Y7, Y7
	VADDPS  Y7, Y3, Y3
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    BX
	JNZ     avxloop32

avxtail8:
	MOVQ CX, BX
	ANDQ $31, BX
	MOVQ BX, DX
	SHRQ $3, DX
	JZ   avxreduce

avxloop8:
	VMOVUPS (SI), Y4
	VMULPS  (DI), Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     avxloop8

avxreduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, BX
	JZ           avxhsum

avxloop1:
	MOVSS (SI), X4
	MULSS (DI), X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   avxloop1

avxhsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET

// func dotVecFMA(a, b *float32, n int) float32
//
// AVX2/FMA 8-lane dot product with two independent Y-register accumulators
// (16 floats per main-loop iteration). Only reached when cpu_amd64.go has
// confirmed AVX2+FMA3. Fused multiply-add rounds once per lane-step, so the
// FMA tier is NOT bit-identical to the AVX/SSE tiers — the tier is fixed per
// process, and every kernel of the tier (this one, dotVec4FMA, and the F16C
// variants) shares the exact per-row op order: b is loaded (or converted)
// into a register, a rides as the FMA memory operand, chunk 0 accumulates
// into Y0/X0 and chunk 1 into Y1, tails drop into Y0/X0. Any path mixing
// the four kernels therefore produces bit-identical sums.
TEXT ·dotVecFMA(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     fmatail8

fmaloop16:
	VMOVUPS     (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	VMOVUPS     32(DI), Y3
	VFMADD231PS 32(SI), Y3, Y1
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        BX
	JNZ         fmaloop16

fmatail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  fmareduce
	VMOVUPS     (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	SUBQ        $8, BX

fmareduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	TESTQ        BX, BX
	JZ           fmahsum

fmaloop1:
	VMOVSS      (DI), X2
	VFMADD231SS (SI), X2, X0
	ADDQ        $4, SI
	ADDQ        $4, DI
	DECQ        BX
	JNZ         fmaloop1

fmahsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET

// func dotVecF16C(a *float32, b *uint16, n int) float32
//
// dotVecFMA with the b operand stored as packed IEEE binary16: each 8-lane
// chunk converts through VCVTPH2PS (exact — every binary16 value is a
// binary32 value) before the identical FMA sequence, so the result is
// bit-for-bit the value dotVecFMA computes over the pre-decoded f32 copy.
// Only reached when cpu_amd64.go has confirmed F16C (which implies FMA).
TEXT ·dotVecF16C(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     hftail8

hfloop16:
	VCVTPH2PS   (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	VCVTPH2PS   16(DI), Y3
	VFMADD231PS 32(SI), Y3, Y1
	ADDQ        $64, SI
	ADDQ        $32, DI
	DECQ        BX
	JNZ         hfloop16

hftail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  hfreduce
	VCVTPH2PS   (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	ADDQ        $32, SI
	ADDQ        $16, DI
	SUBQ        $8, BX

hfreduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	TESTQ        BX, BX
	JZ           hfhsum

hfloop1:
	MOVWLZX     (DI), DX
	MOVL        DX, X2
	VCVTPH2PS   X2, X2
	VFMADD231SS (SI), X2, X0
	ADDQ        $4, SI
	ADDQ        $2, DI
	DECQ        BX
	JNZ         hfloop1

hfhsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+24(FP)
	RET

// func dotVec4FMA(a *float32, lda int, b *float32, n int) (r0, r1, r2, r3 float32)
//
// 4-row FMA microkernel: dot products of four consecutive a-rows (stride
// lda floats) against one shared b row, streaming b once instead of four
// times — the m=4 panel step of the blocked MatMulT path. Register budget:
// Y0..Y7 hold two accumulators per row, Y8/Y9 hold the two shared b chunks,
// a-rows ride as FMA memory operands through R8..R11. Per-row op order is
// exactly dotVecFMA's, so each r_i is bit-identical to
// dotVecFMA(&a[i*lda], b, n).
TEXT ·dotVec4FMA(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R8
	MOVQ lda+8(FP), AX
	SHLQ $2, AX
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     q4tail8

q4loop16:
	VMOVUPS     (DI), Y8
	VMOVUPS     32(DI), Y9
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS 32(R8), Y9, Y1
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS 32(R9), Y9, Y3
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS 32(R10), Y9, Y5
	VFMADD231PS (R11), Y8, Y6
	VFMADD231PS 32(R11), Y9, Y7
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	ADDQ        $64, DI
	DECQ        BX
	JNZ         q4loop16

q4tail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  q4reduce
	VMOVUPS     (DI), Y8
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS (R11), Y8, Y6
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $32, DI
	SUBQ        $8, BX

q4reduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y5, Y4, Y4
	VADDPS       Y7, Y6, Y6
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPS       X3, X2, X2
	VEXTRACTF128 $1, Y4, X5
	VADDPS       X5, X4, X4
	VEXTRACTF128 $1, Y6, X7
	VADDPS       X7, X6, X6
	VZEROUPPER
	TESTQ        BX, BX
	JZ           q4hsum

q4loop1:
	VMOVSS      (DI), X8
	VFMADD231SS (R8), X8, X0
	VFMADD231SS (R9), X8, X2
	VFMADD231SS (R10), X8, X4
	VFMADD231SS (R11), X8, X6
	ADDQ        $4, R8
	ADDQ        $4, R9
	ADDQ        $4, R10
	ADDQ        $4, R11
	ADDQ        $4, DI
	DECQ        BX
	JNZ         q4loop1

q4hsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, r0+32(FP)
	MOVAPS X2, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X2
	MOVAPS X2, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X2
	MOVSS  X2, r1+36(FP)
	MOVAPS X4, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X4
	MOVAPS X4, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X4
	MOVSS  X4, r2+40(FP)
	MOVAPS X6, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X6
	MOVAPS X6, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X6
	MOVSS  X6, r3+44(FP)
	RET

// func dotVec4F16C(a *float32, lda int, b *uint16, n int) (r0, r1, r2, r3 float32)
//
// dotVec4FMA with the shared b row stored as packed binary16 — the blocked
// MatMulT panel step that streams each weight row once at half the bytes.
// Identical per-row op order to dotVecFMA/dotVecF16C.
TEXT ·dotVec4F16C(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R8
	MOVQ lda+8(FP), AX
	SHLQ $2, AX
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     h4tail8

h4loop16:
	VCVTPH2PS   (DI), Y8
	VCVTPH2PS   16(DI), Y9
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS 32(R8), Y9, Y1
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS 32(R9), Y9, Y3
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS 32(R10), Y9, Y5
	VFMADD231PS (R11), Y8, Y6
	VFMADD231PS 32(R11), Y9, Y7
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	ADDQ        $32, DI
	DECQ        BX
	JNZ         h4loop16

h4tail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  h4reduce
	VCVTPH2PS   (DI), Y8
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS (R11), Y8, Y6
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $16, DI
	SUBQ        $8, BX

h4reduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y5, Y4, Y4
	VADDPS       Y7, Y6, Y6
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPS       X3, X2, X2
	VEXTRACTF128 $1, Y4, X5
	VADDPS       X5, X4, X4
	VEXTRACTF128 $1, Y6, X7
	VADDPS       X7, X6, X6
	VZEROUPPER
	TESTQ        BX, BX
	JZ           h4hsum

h4loop1:
	MOVWLZX     (DI), DX
	MOVL        DX, X8
	VCVTPH2PS   X8, X8
	VFMADD231SS (R8), X8, X0
	VFMADD231SS (R9), X8, X2
	VFMADD231SS (R10), X8, X4
	VFMADD231SS (R11), X8, X6
	ADDQ        $4, R8
	ADDQ        $4, R9
	ADDQ        $4, R10
	ADDQ        $4, R11
	ADDQ        $2, DI
	DECQ        BX
	JNZ         h4loop1

h4hsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, r0+32(FP)
	MOVAPS X2, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X2
	MOVAPS X2, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X2
	MOVSS  X2, r1+36(FP)
	MOVAPS X4, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X4
	MOVAPS X4, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X4
	MOVSS  X4, r2+40(FP)
	MOVAPS X6, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X6
	MOVAPS X6, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X6
	MOVSS  X6, r3+44(FP)
	RET

// func axpyVec(dst, src *float32, w float32, n int)
//
// SSE scaled accumulate: dst[i] += w·src[i]. Each element is one MULPS
// lane followed by one ADDPS lane — multiply then add, never fused — so
// every element's result is bit-identical to the scalar Go loop. The
// attention context accumulation depends on that: vectorizing it must not
// change a single activation bit. NaN and ±Inf propagate lane-wise exactly
// as in scalar IEEE arithmetic.
TEXT ·axpyVec(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), SI
	MOVQ   src+8(FP), DI
	MOVSS  w+16(FP), X0
	MOVQ   n+24(FP), CX
	SHUFPS $0, X0, X0
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     axtail4

axloop8:
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS (SI), X2
	ADDPS  X1, X2
	MOVUPS X2, (SI)
	MOVUPS 16(DI), X3
	MULPS  X0, X3
	MOVUPS 16(SI), X4
	ADDPS  X3, X4
	MOVUPS X4, 16(SI)
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    axloop8

axtail4:
	MOVQ CX, BX
	ANDQ $7, BX
	MOVQ BX, DX
	SHRQ $2, DX
	JZ   axtail1

axloop4:
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS (SI), X2
	ADDPS  X1, X2
	MOVUPS X2, (SI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    axloop4

axtail1:
	ANDQ $3, BX
	JZ   axdone

axloop1:
	MOVSS (DI), X1
	MULSS X0, X1
	MOVSS (SI), X2
	ADDSS X1, X2
	MOVSS X2, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   axloop1

axdone:
	RET

// func quantizeF16Vec(p *float32, n int)
// In-place float32 → binary16 → float32 round trip over n floats (n a
// positive multiple of 8) via F16C: VCVTPS2PH with imm8=0 forces
// round-to-nearest-even independent of MXCSR, and VCVTPH2PS widens back
// exactly, so each lane matches numerics.RoundF16 bit for bit (NaNs are
// quieted with the same truncated payload the software converter keeps).
TEXT ·quantizeF16Vec(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   qztail8

qzloop16:
	VMOVUPS   (SI), Y0
	VMOVUPS   32(SI), Y1
	VCVTPS2PH $0, Y0, X2
	VCVTPS2PH $0, Y1, X3
	VCVTPH2PS X2, Y0
	VCVTPH2PS X3, Y1
	VMOVUPS   Y0, (SI)
	VMOVUPS   Y1, 32(SI)
	ADDQ      $64, SI
	DECQ      BX
	JNZ       qzloop16

qztail8:
	TESTQ $8, CX
	JZ    qzdone
	VMOVUPS   (SI), Y0
	VCVTPS2PH $0, Y0, X2
	VCVTPH2PS X2, Y0
	VMOVUPS   Y0, (SI)

qzdone:
	VZEROUPPER
	RET

// func dotStrideVec(dst, q, k *float32, d, limit int, scale float32)
// dst[j] = dotVec(q, k[j·d:], d) · scale for j in [0, limit). The inner
// body is instruction-for-instruction the dotVec kernel (same accumulator
// split, same reduction order, zero registers included), so each output is
// bit-identical to a standalone Dot call; hoisting the loop just removes
// the per-position call and bounds overhead of attention scoring. k rows
// are contiguous, so DI walks forward d floats per position naturally.
TEXT ·dotStrideVec(SB), NOSPLIT, $0-44
	MOVQ  dst+0(FP), R8
	MOVQ  q+8(FP), R11
	MOVQ  k+16(FP), DI
	MOVQ  d+24(FP), R9
	MOVQ  limit+32(FP), R10
	MOVSS scale+40(FP), X8
	TESTQ R10, R10
	JZ    dsdone

dsrow:
	MOVQ  R11, SI
	MOVQ  R9, CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  CX, BX
	SHRQ  $4, BX
	JZ    dstail4

dsloop16:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(SI), X6
	MOVUPS 16(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X1
	MOVUPS 32(SI), X4
	MOVUPS 32(DI), X5
	MULPS  X5, X4
	ADDPS  X4, X2
	MOVUPS 48(SI), X6
	MOVUPS 48(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X3
	ADDQ   $64, SI
	ADDQ   $64, DI
	DECQ   BX
	JNZ    dsloop16

dstail4:
	MOVQ CX, BX
	ANDQ $15, BX
	MOVQ BX, DX
	SHRQ $2, DX
	JZ   dstail1

dsloop4:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    dsloop4

dstail1:
	ANDQ $3, BX
	JZ   dsreduce

dsloop1:
	MOVSS (SI), X4
	MOVSS (DI), X5
	MULSS X5, X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   dsloop1

dsreduce:
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MULSS  X8, X0
	MOVSS  X0, (R8)
	ADDQ   $4, R8
	DECQ   R10
	JNZ    dsrow

dsdone:
	RET

// func axpyStrideVec(dst, v, w *float32, d, limit int)
// dst += w[j]·v[j·d:j·d+d] for j in [0, limit), skipping exact-zero
// weights (bit test on sign-stripped word — NaN weights are NOT skipped,
// matching the Go guard `if wgt == 0`). The inner body is the axpyVec
// kernel verbatim — one MULPS then one ADDPS per lane, never fused — so
// the accumulated context row is bit-identical to a per-position Axpy
// loop, including NaN/±Inf propagation.
TEXT ·axpyStrideVec(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), R11
	MOVQ  v+8(FP), DI
	MOVQ  w+16(FP), R8
	MOVQ  d+24(FP), R9
	MOVQ  limit+32(FP), R10
	MOVQ  R9, R12
	SHLQ  $2, R12
	TESTQ R10, R10
	JZ    asdone

asrow:
	MOVL  (R8), AX
	ADDQ  $4, R8
	TESTL $0x7FFFFFFF, AX
	JZ    asskip
	MOVSS  -4(R8), X0
	SHUFPS $0, X0, X0
	MOVQ   R11, SI
	MOVQ   R9, CX
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     astail4

asloop8:
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS (SI), X2
	ADDPS  X1, X2
	MOVUPS X2, (SI)
	MOVUPS 16(DI), X3
	MULPS  X0, X3
	MOVUPS 16(SI), X4
	ADDPS  X3, X4
	MOVUPS X4, 16(SI)
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    asloop8

astail4:
	MOVQ CX, BX
	ANDQ $7, BX
	MOVQ BX, DX
	SHRQ $2, DX
	JZ   astail1

asloop4:
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS (SI), X2
	ADDPS  X1, X2
	MOVUPS X2, (SI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    asloop4

astail1:
	ANDQ $3, BX
	JZ   asnext

asloop1:
	MOVSS (DI), X1
	MULSS X0, X1
	MOVSS (SI), X2
	ADDSS X1, X2
	MOVSS X2, (SI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  BX
	JNZ   asloop1

asnext:
	DECQ R10
	JNZ  asrow
	RET

asskip:
	ADDQ R12, DI
	DECQ R10
	JNZ  asrow

asdone:
	RET

// func matMulT1Vec(out, a, b *float32, k, cols int)
// out[j] = dotVecFMA(a, b[j·k:], k) for j in [0, cols): the single-row
// MatMulT column sweep with the per-column call hoisted into the kernel.
// The inner body is dotVecFMA verbatim (same accumulator split, same
// reduction), so every output element is bit-identical to the per-column
// call it replaces. b rows are contiguous, so DI walks forward naturally.
TEXT ·matMulT1Vec(SB), NOSPLIT, $0-40
	MOVQ  out+0(FP), R8
	MOVQ  a+8(FP), R11
	MOVQ  b+16(FP), DI
	MOVQ  k+24(FP), CX
	MOVQ  cols+32(FP), R10
	TESTQ R10, R10
	JZ    m1done

m1col:
	MOVQ   R11, SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     m1tail8

m1loop16:
	VMOVUPS     (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	VMOVUPS     32(DI), Y3
	VFMADD231PS 32(SI), Y3, Y1
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        BX
	JNZ         m1loop16

m1tail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  m1reduce
	VMOVUPS     (DI), Y2
	VFMADD231PS (SI), Y2, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	SUBQ        $8, BX

m1reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	TESTQ        BX, BX
	JZ           m1hsum

m1loop1:
	VMOVSS      (DI), X2
	VFMADD231SS (SI), X2, X0
	ADDQ        $4, SI
	ADDQ        $4, DI
	DECQ        BX
	JNZ         m1loop1

m1hsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVSS  X0, (R8)
	ADDQ   $4, R8
	DECQ   R10
	JNZ    m1col

m1done:
	RET

// func matMulT4Vec(out *float32, ldo int, a *float32, lda int, b *float32, k, cols int)
// Four MatMulT output rows over all cols in one call: out[r·ldo+j] =
// dotVecFMA(a[r·lda:], b[j·k:], k) for r in 0..3, j in [0, cols). The
// inner body is dotVec4FMA verbatim (two accumulators per row, shared b
// loads, same reduction and horizontal-sum order), so results are
// bit-identical to per-column dotRow4 calls; hoisting the column loop
// removes the per-column call, argument, and bounds overhead that
// dominates at the zoo's small widths.
TEXT ·matMulT4Vec(SB), NOSPLIT, $0-56
	MOVQ  out+0(FP), DX
	MOVQ  ldo+8(FP), R12
	SHLQ  $2, R12
	MOVQ  a+16(FP), R8
	MOVQ  lda+24(FP), AX
	SHLQ  $2, AX
	LEAQ  (R8)(AX*1), R9
	LEAQ  (R9)(AX*1), R10
	LEAQ  (R10)(AX*1), R11
	MOVQ  b+32(FP), DI
	MOVQ  k+40(FP), CX
	MOVQ  cols+48(FP), R14
	MOVQ  CX, R13
	SHLQ  $2, R13
	TESTQ R14, R14
	JZ    m4done

m4col:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     m4tail8

m4loop16:
	VMOVUPS     (DI), Y8
	VMOVUPS     32(DI), Y9
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS 32(R8), Y9, Y1
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS 32(R9), Y9, Y3
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS 32(R10), Y9, Y5
	VFMADD231PS (R11), Y8, Y6
	VFMADD231PS 32(R11), Y9, Y7
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	ADDQ        $64, DI
	DECQ        BX
	JNZ         m4loop16

m4tail8:
	MOVQ CX, BX
	ANDQ $15, BX
	CMPQ BX, $8
	JLT  m4reduce
	VMOVUPS     (DI), Y8
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS (R11), Y8, Y6
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $32, DI
	SUBQ        $8, BX

m4reduce:
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y5, Y4, Y4
	VADDPS       Y7, Y6, Y6
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPS       X3, X2, X2
	VEXTRACTF128 $1, Y4, X5
	VADDPS       X5, X4, X4
	VEXTRACTF128 $1, Y6, X7
	VADDPS       X7, X6, X6
	VZEROUPPER
	TESTQ        BX, BX
	JZ           m4hsum

m4loop1:
	VMOVSS      (DI), X8
	VFMADD231SS (R8), X8, X0
	VFMADD231SS (R9), X8, X2
	VFMADD231SS (R10), X8, X4
	VFMADD231SS (R11), X8, X6
	ADDQ        $4, R8
	ADDQ        $4, R9
	ADDQ        $4, R10
	ADDQ        $4, R11
	ADDQ        $4, DI
	DECQ        BX
	JNZ         m4loop1

m4hsum:
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	ADDSS  X1, X0
	MOVAPS X2, X3
	SHUFPS $0xEE, X3, X3
	ADDPS  X3, X2
	MOVAPS X2, X3
	SHUFPS $0x55, X3, X3
	ADDSS  X3, X2
	MOVAPS X4, X5
	SHUFPS $0xEE, X5, X5
	ADDPS  X5, X4
	MOVAPS X4, X5
	SHUFPS $0x55, X5, X5
	ADDSS  X5, X4
	MOVAPS X6, X7
	SHUFPS $0xEE, X7, X7
	ADDPS  X7, X6
	MOVAPS X6, X7
	SHUFPS $0x55, X7, X7
	ADDSS  X7, X6
	MOVSS  X0, (DX)
	LEAQ   (DX)(R12*1), AX
	MOVSS  X2, (AX)
	ADDQ   R12, AX
	MOVSS  X4, (AX)
	ADDQ   R12, AX
	MOVSS  X6, (AX)
	SUBQ   R13, R8
	SUBQ   R13, R9
	SUBQ   R13, R10
	SUBQ   R13, R11
	ADDQ   $4, DX
	DECQ   R14
	JNZ    m4col

m4done:
	RET

// func scaleVec(p *float32, n int, s float32)
// p[i] *= s. A uniform multiply is one IEEE operation per lane, so the
// vector loop is bit-identical to the scalar loop on every input, NaN and
// ±Inf included.
TEXT ·scaleVec(SB), NOSPLIT, $0-20
	MOVQ   p+0(FP), DI
	MOVQ   n+8(FP), CX
	MOVSS  s+16(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     sctail4

scloop8:
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS X1, (DI)
	MOVUPS 16(DI), X2
	MULPS  X0, X2
	MOVUPS X2, 16(DI)
	ADDQ   $32, DI
	DECQ   BX
	JNZ    scloop8

sctail4:
	TESTQ $4, CX
	JZ    sctail1
	MOVUPS (DI), X1
	MULPS  X0, X1
	MOVUPS X1, (DI)
	ADDQ   $16, DI

sctail1:
	ANDQ $3, CX
	JZ   scdone

scloop1:
	MOVSS (DI), X1
	MULSS X0, X1
	MOVSS X1, (DI)
	ADDQ  $4, DI
	DECQ  CX
	JNZ   scloop1

scdone:
	RET

// func siluFinishVec(p *float32, e *float64, n int)
// p[i] = float32(float64(p[i]) / (1 + e[i])) — the finishing pass of SiLU
// after the scalar math.Exp pass filled e. Widening f32→f64 is exact, the
// add and divide are single correctly-rounded IEEE f64 operations per lane,
// and the f64→f32 narrowing rounds exactly like the scalar conversion, so
// the 4-lane loop is bit-identical to the scalar reference. n must be a
// multiple of 4 (the caller handles the tail).
TEXT ·siluFinishVec(SB), NOSPLIT, $0-24
	MOVQ         p+0(FP), DI
	MOVQ         e+8(FP), SI
	MOVQ         n+16(FP), CX
	SHRQ         $2, CX
	JZ           sfdone
	MOVQ         $0x3FF0000000000000, AX
	MOVQ         AX, X9
	VBROADCASTSD X9, Y9

sfloop4:
	VCVTPS2PD (DI), Y0
	VMOVUPD   (SI), Y1
	VADDPD    Y9, Y1, Y1
	VDIVPD    Y1, Y0, Y0
	VCVTPD2PSY Y0, X0
	VMOVUPS   X0, (DI)
	ADDQ      $16, DI
	ADDQ      $32, SI
	DECQ      CX
	JNZ       sfloop4
	VZEROUPPER

sfdone:
	RET
