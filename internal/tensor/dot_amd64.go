package tensor

// dotVec (SSE) and dotVecAVX are the vector kernels in dot_amd64.s;
// dotVecFMA/dotVec4FMA (AVX2+FMA3) and dotVecF16C/dotVec4F16C (F16C) are
// the row kernels of the blocked MatMulT paths, appended by the cost-model
// dispatch work.
func dotVec(a, b *float32, n int) float32
func dotVecAVX(a, b *float32, n int) float32
func dotVecFMA(a, b *float32, n int) float32
func dotVecF16C(a *float32, b *uint16, n int) float32
func dotVec4FMA(a *float32, lda int, b *float32, n int) (r0, r1, r2, r3 float32)
func dotVec4F16C(a *float32, lda int, b *uint16, n int) (r0, r1, r2, r3 float32)

// Dot computes the dot product of a and b (len(b) >= len(a)) with a SIMD
// kernel: 8-lane AVX when the host enables it, 4-lane SSE otherwise.
// Lane-parallel accumulation reorders the float32 sums relative to a
// sequential loop; all engine paths (prefill and decode) go through this
// same kernel, so cached and recomputed activations stay bit-identical to
// each other. Dot deliberately does NOT use the FMA tier: attention scores
// (head-dim 12 slices) and every other public Dot caller keep the exact
// multiply-then-add numerics they had before the FMA kernels existed.
func Dot(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n] // bounds hint: panics early if b is shorter
	if hasAVX && n >= 16 {
		return dotVecAVX(&a[0], &b[0], n)
	}
	return dotVec(&a[0], &b[0], n)
}

// dotRow is the row kernel behind the MatMulT (x × wᵀ) paths: the
// FMA-tier kernel where the host supports it, plain Dot otherwise. The
// choice is fixed at startup, so every MatMulT path — serial, row-split,
// col-split, 4-row blocked, f16-streamed — computes each output element
// with the same FP op order and stays bit-identical to every other.
func dotRow(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	if hasFMA {
		return dotVecFMA(&a[0], &b[0], n)
	}
	return Dot(a, b)
}

// dotRow4 computes four dot products of consecutive a-rows (stride lda
// floats, rows i.e. a[0:n], a[lda:lda+n], ...) against one shared b row,
// streaming b once instead of four times. Per-row op order is identical to
// dotRow, so blocking rows in groups of four is invisible in the results.
func dotRow4(a []float32, lda int, b []float32) (r0, r1, r2, r3 float32) {
	n := len(b)
	if hasFMA && n > 0 {
		_ = a[3*lda+n-1] // one bounds check for all four rows
		return dotVec4FMA(&a[0], lda, &b[0], n)
	}
	return dotRow(a[:n], b),
		dotRow(a[lda:lda+n], b),
		dotRow(a[2*lda:2*lda+n], b),
		dotRow(a[3*lda:3*lda+n], b)
}

// dotRowF16 is dotRow with b stored as packed binary16. Callers must gate
// on hasF16C (halfData does); conversion through VCVTPH2PS is exact, so the
// result is bit-identical to dotRow over the pre-decoded f32 master copy.
func dotRowF16(a []float32, b []uint16) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotVecF16C(&a[0], &b[0], n)
}

// dotRow4F16 is dotRow4 with b stored as packed binary16; hasF16C only.
func dotRow4F16(a []float32, lda int, b []uint16) (r0, r1, r2, r3 float32) {
	n := len(b)
	if n == 0 {
		return 0, 0, 0, 0
	}
	_ = a[3*lda+n-1]
	return dotVec4F16C(&a[0], lda, &b[0], n)
}
