package tensor

// dotVec (SSE) and dotVecAVX are the vector kernels in dot_amd64.s.
func dotVec(a, b *float32, n int) float32
func dotVecAVX(a, b *float32, n int) float32

// Dot computes the dot product of a and b (len(b) >= len(a)) with a SIMD
// kernel: 8-lane AVX when the host enables it, 4-lane SSE otherwise.
// Lane-parallel accumulation reorders the float32 sums relative to a
// sequential loop; all engine paths (prefill and decode) go through this
// same kernel, so cached and recomputed activations stay bit-identical to
// each other.
func Dot(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n] // bounds hint: panics early if b is shorter
	if hasAVX && n >= 16 {
		return dotVecAVX(&a[0], &b[0], n)
	}
	return dotVec(&a[0], &b[0], n)
}
