package tensor

import "ft2/internal/numerics"

// dotVec (SSE) and dotVecAVX are the vector kernels in dot_amd64.s;
// dotVecFMA/dotVec4FMA (AVX2+FMA3) and dotVecF16C/dotVec4F16C (F16C) are
// the row kernels of the blocked MatMulT paths, appended by the cost-model
// dispatch work.
func dotVec(a, b *float32, n int) float32
func dotVecAVX(a, b *float32, n int) float32
func dotVecFMA(a, b *float32, n int) float32
func dotVecF16C(a *float32, b *uint16, n int) float32
func dotVec4FMA(a *float32, lda int, b *float32, n int) (r0, r1, r2, r3 float32)
func dotVec4F16C(a *float32, lda int, b *uint16, n int) (r0, r1, r2, r3 float32)
func axpyVec(dst, src *float32, w float32, n int)
func quantizeF16Vec(p *float32, n int)
func dotStrideVec(dst, q, k *float32, d, limit int, scale float32)
func axpyStrideVec(dst, v, w *float32, d, limit int)
func matMulT1Vec(out, a, b *float32, k, cols int)
func matMulT4Vec(out *float32, ldo int, a *float32, lda int, b *float32, k, cols int)
func scaleVec(p *float32, n int, s float32)

//go:noescape
func siluFinishVec(p *float32, e *float64, n int)

// Axpy accumulates w·src into dst element-wise (dst[i] += w*src[i], over
// len(dst) elements; len(src) must be at least len(dst)). Each element is an
// independent multiply-then-add, and the SSE kernel performs exactly that op
// pair per lane — never an FMA — so the result is bit-identical to the scalar
// loop on every input, including NaN and ±Inf. The attention context
// accumulation is built on this kernel in both the single-session and the
// batched path.
func Axpy(dst, src []float32, w float32) {
	n := len(dst)
	if n == 0 {
		return
	}
	src = src[:n] // bounds hint: panics early if src is shorter
	axpyVec(&dst[0], &src[0], w, n)
}

// Dot computes the dot product of a and b (len(b) >= len(a)) with a SIMD
// kernel: 8-lane AVX when the host enables it, 4-lane SSE otherwise.
// Lane-parallel accumulation reorders the float32 sums relative to a
// sequential loop; all engine paths (prefill and decode) go through this
// same kernel, so cached and recomputed activations stay bit-identical to
// each other. Dot deliberately does NOT use the FMA tier: attention scores
// (head-dim 12 slices) and every other public Dot caller keep the exact
// multiply-then-add numerics they had before the FMA kernels existed.
func Dot(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n] // bounds hint: panics early if b is shorter
	if hasAVX && n >= 16 {
		return dotVecAVX(&a[0], &b[0], n)
	}
	return dotVec(&a[0], &b[0], n)
}

// dotRow is the row kernel behind the MatMulT (x × wᵀ) paths: the
// FMA-tier kernel where the host supports it, plain Dot otherwise. The
// choice is fixed at startup, so every MatMulT path — serial, row-split,
// col-split, 4-row blocked, f16-streamed — computes each output element
// with the same FP op order and stays bit-identical to every other.
func dotRow(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	if hasFMA {
		return dotVecFMA(&a[0], &b[0], n)
	}
	return Dot(a, b)
}

// dotRow4 computes four dot products of consecutive a-rows (stride lda
// floats, rows i.e. a[0:n], a[lda:lda+n], ...) against one shared b row,
// streaming b once instead of four times. Per-row op order is identical to
// dotRow, so blocking rows in groups of four is invisible in the results.
func dotRow4(a []float32, lda int, b []float32) (r0, r1, r2, r3 float32) {
	n := len(b)
	if hasFMA && n > 0 {
		_ = a[3*lda+n-1] // one bounds check for all four rows
		return dotVec4FMA(&a[0], lda, &b[0], n)
	}
	return dotRow(a[:n], b),
		dotRow(a[lda:lda+n], b),
		dotRow(a[2*lda:2*lda+n], b),
		dotRow(a[3*lda:3*lda+n], b)
}

// dotRowF16 is dotRow with b stored as packed binary16. Callers must gate
// on hasF16C (halfData does); conversion through VCVTPH2PS is exact, so the
// result is bit-identical to dotRow over the pre-decoded f32 master copy.
func dotRowF16(a []float32, b []uint16) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotVecF16C(&a[0], &b[0], n)
}

// DotStride fills dst[j] = Dot(q, k[j*d:(j+1)*d]) * scale for j in
// [0, limit) — the attention score sweep of one (row, head) against a
// contiguous per-head K slab. The kernel's inner body is the Dot kernel
// verbatim, so every score is bit-identical to the per-position Dot call
// it replaces; only the call and bounds overhead per position is gone.
func DotStride(dst, q, k []float32, d, limit int, scale float32) {
	if limit <= 0 {
		return
	}
	if hasAVX && d >= 16 {
		// Dot crosses to the 8-lane AVX kernel at n ≥ 16; the stride
		// kernel carries the SSE body, so wide heads (none in the zoo)
		// keep the per-position calls to stay bit-identical to Dot.
		q = q[:d]
		for j := 0; j < limit; j++ {
			dst[j] = Dot(q, k[j*d:(j+1)*d]) * scale
		}
		return
	}
	_ = dst[limit-1]
	_ = k[limit*d-1]
	_ = q[d-1]
	dotStrideVec(&dst[0], &q[0], &k[0], d, limit, scale)
}

// AxpyStride accumulates dst += w[j]·v[j*d:(j+1)*d] for j in [0, limit),
// skipping exact-zero weights — the attention context accumulation of one
// (row, head) over a contiguous per-head V slab. Per element it is the
// same multiply-then-add (never FMA) as Axpy, in the same j order, so the
// result is bit-identical to the per-position Axpy loop it replaces. NaN
// weights are not skipped (0·Inf and NaN propagation match the scalar
// guard `if w[j] == 0`).
func AxpyStride(dst, v, w []float32, d, limit int) {
	if limit <= 0 {
		return
	}
	_ = w[limit-1]
	_ = v[limit*d-1]
	_ = dst[d-1]
	axpyStrideVec(&dst[0], &v[0], &w[0], d, limit)
}

// quantizeF16 rounds every element of data through binary16 in place — the
// activation-precision step every layer output passes through. On F16C
// hosts the vector kernel round-trips 8 lanes per VCVTPS2PH/VCVTPH2PS pair
// with round-to-nearest-even forced by the immediate, which is bit-identical
// to numerics.RoundF16 on every input class (normals, subnormals, ±0, ±Inf,
// NaN — TestQuantizeF16VecBitIdentity sweeps them all); elsewhere it is the
// scalar loop.
func quantizeF16(data []float32) {
	n := len(data)
	if hasF16C {
		if v := n &^ 7; v > 0 {
			quantizeF16Vec(&data[0], v)
		}
		for i := n &^ 7; i < n; i++ {
			data[i] = numerics.RoundF16(data[i])
		}
		return
	}
	for i, v := range data {
		data[i] = numerics.RoundF16(v)
	}
}

// matMulTSweep4 computes out[r·ldo+j] = dotRow(a[r·lda:], b[j·k:]) for
// r in 0..3 and j in [0, cols) in one kernel call, the 4-row MatMulT block
// with the column loop hoisted into assembly. The kernel's per-column body
// is dotVec4FMA verbatim, so every element is bit-identical to the
// per-column dotRow4 loop it replaces. Returns false when the FMA tier is
// absent (caller falls back to the reference loop).
func matMulTSweep4(out []float32, ldo int, a []float32, lda int, b []float32, k, cols int) bool {
	if !hasFMA || k == 0 || cols == 0 {
		return false
	}
	_ = a[3*lda+k-1]
	_ = b[cols*k-1]
	_ = out[3*ldo+cols-1]
	matMulT4Vec(&out[0], ldo, &a[0], lda, &b[0], k, cols)
	return true
}

// matMulTSweep1 is the single-row variant: out[j] = dotRow(a, b[j·k:]) for
// j in [0, cols), with the dotVecFMA body inlined per column. Bit-identical
// to the per-column dotRow loop; false when the FMA tier is absent.
func matMulTSweep1(out, a, b []float32, k, cols int) bool {
	if !hasFMA || k == 0 || cols == 0 {
		return false
	}
	_ = a[k-1]
	_ = b[cols*k-1]
	_ = out[cols-1]
	matMulT1Vec(&out[0], &a[0], &b[0], k, cols)
	return true
}

// ScaleSlice multiplies every element of p by s in place. A uniform
// multiply is one IEEE operation per lane, so the vector kernel is
// bit-identical to the scalar loop on every input (NaN, ±Inf included).
func ScaleSlice(p []float32, s float32) {
	if len(p) == 0 {
		return
	}
	scaleVec(&p[0], len(p), s)
}

// siluFinish completes SiLU after the scalar exp pass: p[i] =
// float32(float64(p[i]) / (1 + e[i])). Widening, add, divide, and
// narrowing are each single correctly-rounded IEEE operations per lane,
// so the vector kernel matches the scalar reference bitwise. Returns
// false when the AVX2 tier is absent.
func siluFinish(p []float32, e []float64) bool {
	if !hasFMA {
		return false
	}
	n := len(p) &^ 3
	if n > 0 {
		_ = e[n-1]
		siluFinishVec(&p[0], &e[0], n)
	}
	for i := n; i < len(p); i++ {
		p[i] = float32(float64(p[i]) / (1 + e[i]))
	}
	return true
}

// dotRow4F16 is dotRow4 with b stored as packed binary16; hasF16C only.
func dotRow4F16(a []float32, lda int, b []uint16) (r0, r1, r2, r3 float32) {
	n := len(b)
	if n == 0 {
		return 0, 0, 0, 0
	}
	_ = a[3*lda+n-1]
	return dotVec4F16C(&a[0], lda, &b[0], n)
}
