package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestDotStrideBitIdentity checks the stride score kernel against
// per-position Dot calls bit for bit, across head dims, limits, and value
// classes (normals, NaN, ±Inf lanes).
func TestDotStrideBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fill := func(p []float32) {
		for i := range p {
			switch rng.Intn(20) {
			case 0:
				p[i] = float32(math.NaN())
			case 1:
				p[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
			default:
				p[i] = rng.Float32()*4 - 2
			}
		}
	}
	for _, d := range []int{1, 3, 8, 12, 16, 24, 33} {
		for _, limit := range []int{0, 1, 2, 7, 40, 250} {
			q := make([]float32, d)
			k := make([]float32, (limit+1)*d)
			fill(q)
			fill(k)
			scale := rng.Float32() + 0.5
			got := make([]float32, limit+1)
			want := make([]float32, limit+1)
			for j := 0; j < limit; j++ {
				want[j] = Dot(q, k[j*d:(j+1)*d]) * scale
			}
			DotStride(got, q, k, d, limit, scale)
			for j := 0; j < limit; j++ {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("d=%d limit=%d j=%d: got %08x want %08x",
						d, limit, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
				}
			}
		}
	}
}

// TestAxpyStrideBitIdentity checks the stride context kernel against the
// per-position Axpy loop bit for bit, including exact-zero weight skips
// (both signs), NaN weights (which must NOT be skipped), and NaN/Inf V
// lanes.
func TestAxpyStrideBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []int{1, 3, 8, 12, 16, 24, 33} {
		for _, limit := range []int{0, 1, 2, 7, 40, 250} {
			v := make([]float32, (limit+1)*d)
			w := make([]float32, limit+1)
			for i := range v {
				if rng.Intn(25) == 0 {
					v[i] = float32(math.Inf(1))
				} else {
					v[i] = rng.Float32()*2 - 1
				}
			}
			for j := range w {
				switch rng.Intn(6) {
				case 0:
					w[j] = 0
				case 1:
					w[j] = float32(math.Copysign(0, -1))
				case 2:
					w[j] = float32(math.NaN())
				default:
					w[j] = rng.Float32()
				}
			}
			got := make([]float32, d)
			want := make([]float32, d)
			for i := range got {
				got[i] = rng.Float32()
				want[i] = got[i]
			}
			for j := 0; j < limit; j++ {
				if w[j] == 0 {
					continue
				}
				Axpy(want, v[j*d:(j+1)*d], w[j])
			}
			AxpyStride(got, v, w, d, limit)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("d=%d limit=%d i=%d: got %08x want %08x",
						d, limit, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}
