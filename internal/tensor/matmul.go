package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul runs
// single-threaded; goroutine fan-out only pays off for larger products.
const parallelThreshold = 1 << 15

// MatMul returns a × b (a: m×k, b: k×n). The multiplication is row-blocked
// across GOMAXPROCS workers for large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("tensor: MatMul shape mismatch")
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

func matMulInto(out, a, b *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	work := m * k * n
	if work < parallelThreshold || m == 1 {
		matMulRows(out, a, b, 0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of out = a×b with a k-outer loop that
// streams b row-wise (cache friendly for row-major storage).
func matMulRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT returns a × bᵀ (a: m×k, b: n×k). Used for attention scores
// (Q × Kᵀ) where both operands are stored row-major.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Rows
	out := New(m, n)
	compute := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
			}
		}
	}
	if m*k*n < parallelThreshold || m == 1 {
		compute(0, m)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			compute(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Dot is a 4-way unrolled dot product; with independent accumulators the
// compiler keeps four FMA chains in flight, roughly doubling throughput on
// the scalar path.
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // hoist the bounds check
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Linear computes x × wᵀ + bias, the canonical nn.Linear forward pass
// (w: out×in stored row-major like PyTorch, bias: len out or nil).
func Linear(x, w *Tensor, bias []float32) *Tensor {
	out := MatMulT(x, w)
	if bias != nil {
		if len(bias) != out.Cols {
			panic("tensor: Linear bias length mismatch")
		}
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}
	}
	return out
}
