package tensor

import "runtime"

// parallelThreshold is the number of multiply-adds below which the matmuls
// run single-threaded; even pooled handoff only pays off for larger
// products.
const parallelThreshold = 1 << 15

// grainWork is the minimum number of multiply-adds a parallel chunk should
// carry; finer chunks spend more time on cursor traffic than arithmetic.
const grainWork = 1 << 13

// MatMul returns a × b (a: m×k, b: k×n). Large products are split across
// the resident worker pool — row-blocked when m offers enough parallelism,
// column-blocked otherwise — with per-element FP op order identical to the
// serial loop either way.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("tensor: MatMul shape mismatch")
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

func matMulInto(out, a, b *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	// The zero-skipping fast path in matMulRows is only sound when b is
	// fully finite: 0 × NaN and 0 × ±Inf are NaN and must propagate, or a
	// sparse activation row would silently mask an injected fault. The scan
	// result is cached on b (weights never change after load).
	skipZeros := b.AllFinite()
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	defer out.MarkMutated()
	if workers == 1 || work < parallelThreshold {
		matMulRows(out, a, b, 0, m, skipZeros)
		return
	}
	if m >= workers {
		chunk := rowChunk(m, k*n, workers)
		runPooled(kernelMatMulRows, out, a, b, skipZeros, m, chunk, workers-1)
		return
	}
	// Few rows, wide product: split the output columns instead so a decode
	// step (m = 1 or a small batch) still uses every core. out must be
	// zeroed before the accumulating column kernel runs; New and the
	// serial/row paths overwrite, so only this path clears it here.
	out.Zero()
	chunk := colChunk(n, m*k, workers)
	if (n+chunk-1)/chunk == 1 {
		matMulRows(out, a, b, 0, m, skipZeros)
		return
	}
	runPooled(kernelMatMulCols, out, a, b, skipZeros, n, chunk, workers-1)
}

// rowChunk sizes row-split chunks: enough of them for the pool to balance
// (≈4 per worker) but each at least grainWork multiply-adds.
func rowChunk(m, workPerRow, workers int) int {
	chunk := (m + workers*4 - 1) / (workers * 4)
	if min := (grainWork + workPerRow - 1) / workPerRow; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// colChunk sizes column-split chunks the same way, with workPerCol
// multiply-adds per output column.
func colChunk(n, workPerCol, workers int) int {
	chunk := (n + workers*4 - 1) / (workers * 4)
	if min := (grainWork + workPerCol - 1) / workPerCol; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// matMulRows computes rows [lo,hi) of out = a×b with a k-outer loop that
// streams b row-wise (cache friendly for row-major storage). skipZeros
// enables the sparse shortcut for zero elements of a; callers must disable
// it when b contains non-finite values so that 0 × NaN propagates.
func matMulRows(out, a, b *Tensor, lo, hi int, skipZeros bool) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 && skipZeros {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulCols computes columns [lo,hi) of every row of out = a×b. The
// accumulation per element runs in the same kk-ascending order as
// matMulRows, so splitting by columns is bit-identical to the serial loop.
// out must be zeroed over [lo,hi) before the call.
func matMulCols(out, a, b *Tensor, lo, hi int, skipZeros bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 && skipZeros {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := lo; j < hi; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// allFinite reports whether every element is finite (no NaN, no ±Inf).
func allFinite(xs []float32) bool {
	for _, v := range xs {
		if v-v != 0 { // NaN-NaN and Inf-Inf are NaN; finite-finite is 0
			return false
		}
	}
	return true
}

// MatMulT returns a × bᵀ (a: m×k, b: n×k). Used for attention scores
// (Q × Kᵀ) where both operands are stored row-major.
func MatMulT(a, b *Tensor) *Tensor {
	return MatMulTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulTInto computes a × bᵀ into out (a: m×k, b: n×k, out: m×n),
// overwriting every element of out. It allocates nothing, which keeps the
// per-token decode step off the garbage collector; out must not alias a
// or b. Every out element is an independent Dot(a-row, b-row), so the
// row- and column-split parallel paths are bit-identical to the serial
// loop at any worker count.
func MatMulTInto(out, a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Rows
	if out.Rows != m || out.Cols != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers == 1 || m*k*n < parallelThreshold {
		// The single-core decode hot path lands here every step; it stays
		// free of pool traffic entirely.
		matMulTRows(out, a, b, 0, m)
		out.MarkMutated()
		return out
	}
	if m >= workers {
		chunk := rowChunk(m, k*n, workers)
		runPooled(kernelMatMulTRows, out, a, b, false, m, chunk, workers-1)
		out.MarkMutated()
		return out
	}
	chunk := colChunk(n, m*k, workers)
	if (n+chunk-1)/chunk == 1 {
		matMulTRows(out, a, b, 0, m)
		out.MarkMutated()
		return out
	}
	runPooled(kernelMatMulTCols, out, a, b, false, n, chunk, workers-1)
	out.MarkMutated()
	return out
}

// matMulTRows computes rows [lo,hi) of out = a×bᵀ.
func matMulTRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// matMulTCols computes columns [lo,hi) of every row of out = a×bᵀ — the
// small-m split that lets a single decode step use every core. Each element
// is the same Dot call the row kernel makes, so results are bit-identical.
func matMulTCols(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Rows
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := lo; j < hi; j++ {
			orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// Linear computes x × wᵀ + bias, the canonical nn.Linear forward pass
// (w: out×in stored row-major like PyTorch, bias: len out or nil).
func Linear(x, w *Tensor, bias []float32) *Tensor {
	return LinearInto(New(x.Rows, w.Rows), x, w, bias)
}

// LinearInto computes x × wᵀ + bias into out without allocating; out must
// be x.Rows × w.Rows and must not alias x or w.
func LinearInto(out, x, w *Tensor, bias []float32) *Tensor {
	MatMulTInto(out, x, w)
	if bias != nil {
		if len(bias) != out.Cols {
			panic("tensor: Linear bias length mismatch")
		}
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}
	}
	return out
}
