package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul runs
// single-threaded; goroutine fan-out only pays off for larger products.
const parallelThreshold = 1 << 15

// MatMul returns a × b (a: m×k, b: k×n). The multiplication is row-blocked
// across GOMAXPROCS workers for large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("tensor: MatMul shape mismatch")
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

func matMulInto(out, a, b *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	// The zero-skipping fast path in matMulRows is only sound when b is
	// fully finite: 0 × NaN and 0 × ±Inf are NaN and must propagate, or a
	// sparse activation row would silently mask an injected fault.
	skipZeros := allFinite(b.Data)
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || m == 1 || workers == 1 {
		matMulRows(out, a, b, 0, m, skipZeros)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi, skipZeros)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of out = a×b with a k-outer loop that
// streams b row-wise (cache friendly for row-major storage). skipZeros
// enables the sparse shortcut for zero elements of a; callers must disable
// it when b contains non-finite values so that 0 × NaN propagates.
func matMulRows(out, a, b *Tensor, lo, hi int, skipZeros bool) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 && skipZeros {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// allFinite reports whether every element is finite (no NaN, no ±Inf).
func allFinite(xs []float32) bool {
	for _, v := range xs {
		if v-v != 0 { // NaN-NaN and Inf-Inf are NaN; finite-finite is 0
			return false
		}
	}
	return true
}

// MatMulT returns a × bᵀ (a: m×k, b: n×k). Used for attention scores
// (Q × Kᵀ) where both operands are stored row-major.
func MatMulT(a, b *Tensor) *Tensor {
	return MatMulTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulTInto computes a × bᵀ into out (a: m×k, b: n×k, out: m×n),
// overwriting every element of out. It allocates nothing, which keeps the
// per-token decode step off the garbage collector; out must not alias a
// or b.
func MatMulTInto(out, a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Rows
	if out.Rows != m || out.Cols != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < parallelThreshold || m == 1 || workers == 1 {
		// Closure-free serial path: the decode hot path lands here every
		// step, and a per-call closure object would put it back on the heap.
		matMulTRows(out, a, b, 0, m)
		return out
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulTRows(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matMulTRows computes rows [lo,hi) of out = a×bᵀ.
func matMulTRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// Linear computes x × wᵀ + bias, the canonical nn.Linear forward pass
// (w: out×in stored row-major like PyTorch, bias: len out or nil).
func Linear(x, w *Tensor, bias []float32) *Tensor {
	return LinearInto(New(x.Rows, w.Rows), x, w, bias)
}

// LinearInto computes x × wᵀ + bias into out without allocating; out must
// be x.Rows × w.Rows and must not alias x or w.
func LinearInto(out, x, w *Tensor, bias []float32) *Tensor {
	MatMulTInto(out, x, w)
	if bias != nil {
		if len(bias) != out.Cols {
			panic("tensor: Linear bias length mismatch")
		}
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}
	}
	return out
}
