package tensor

import "runtime"

// grainWork is the minimum number of multiply-adds a parallel chunk should
// carry; finer chunks spend more time on cursor traffic than arithmetic.
const grainWork = 1 << 13

// MatMul returns a × b (a: m×k, b: k×n). The cost-model dispatcher
// (dispatch.go) picks serial, row-split, or column-split per shape; the
// per-element FP op order is identical on every path.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("tensor: MatMul shape mismatch")
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

func matMulInto(out, a, b *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	// The zero-skipping fast path in matMulRows is only sound when b is
	// fully finite: 0 × NaN and 0 × ±Inf are NaN and must propagate, or a
	// sparse activation row would silently mask an injected fault. The scan
	// result is cached on b (weights never change after load).
	skipZeros := b.AllFinite()
	defer out.MarkMutated()
	p := currentCostModel().plan(kindMatMul, m, k, n, runtime.GOMAXPROCS(0))
	switch p.mode {
	case planRows:
		runPooled(kernelMatMulRows, out, a, b, skipZeros, m, p.chunk, p.helpers)
	case planCols:
		// Few rows, wide product: split the output columns so a small-m
		// product still uses every core. out must be zeroed before the
		// accumulating column kernel runs; New and the serial/row paths
		// overwrite, so only this path clears it here.
		out.Zero()
		runPooled(kernelMatMulCols, out, a, b, skipZeros, n, p.chunk, p.helpers)
	default:
		matMulRows(out, a, b, 0, m, skipZeros)
	}
}

// matMulRows computes rows [lo,hi) of out = a×b with a k-outer loop that
// streams b row-wise (cache friendly for row-major storage). skipZeros
// enables the sparse shortcut for zero elements of a; callers must disable
// it when b contains non-finite values so that 0 × NaN propagates.
func matMulRows(out, a, b *Tensor, lo, hi int, skipZeros bool) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 && skipZeros {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulCols computes columns [lo,hi) of every row of out = a×b. The
// accumulation per element runs in the same kk-ascending order as
// matMulRows, so splitting by columns is bit-identical to the serial loop.
// out must be zeroed over [lo,hi) before the call.
func matMulCols(out, a, b *Tensor, lo, hi int, skipZeros bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 && skipZeros {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := lo; j < hi; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// allFinite reports whether every element is finite (no NaN, no ±Inf).
func allFinite(xs []float32) bool {
	for _, v := range xs {
		if v-v != 0 { // NaN-NaN and Inf-Inf are NaN; finite-finite is 0
			return false
		}
	}
	return true
}

// MatMulT returns a × bᵀ (a: m×k, b: n×k). Used for attention scores
// (Q × Kᵀ) and every linear layer (weights stored out×in).
func MatMulT(a, b *Tensor) *Tensor {
	return MatMulTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulTInto computes a × bᵀ into out (a: m×k, b: n×k, out: m×n),
// overwriting every element of out. It allocates nothing, which keeps the
// per-token decode step off the garbage collector; out must not alias a
// or b. Every out element is an independent dotRow(a-row, b-row), so the
// serial, row-split, column-split, 4-row-blocked, and f16-streamed paths
// are bit-identical at any worker count.
func MatMulTInto(out, a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Rows
	if out.Rows != m || out.Cols != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	p := currentCostModel().plan(kindMatMulT, m, k, n, runtime.GOMAXPROCS(0))
	switch p.mode {
	case planRows:
		runPooled(kernelMatMulTRows, out, a, b, false, m, p.chunk, p.helpers)
	case planCols:
		runPooled(kernelMatMulTCols, out, a, b, false, n, p.chunk, p.helpers)
	default:
		// The decode hot path (m = 1 or a small batch on a host without
		// spare cores) lands here every step, free of pool traffic.
		matMulTRows(out, a, b, 0, m)
	}
	out.MarkMutated()
	return out
}

// matMulTRows computes rows [lo,hi) of out = a×bᵀ, blocked: rows are taken
// in groups of four so each weight row of b is streamed once per group
// instead of once per output row, through the 4-row microkernel when the
// FMA tier is present. When b carries a streamable packed-f16 shadow the
// F16C variants read half the bytes; op order per element is identical
// either way, so blocking and streaming mode are invisible in the results.
func matMulTRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Rows
	bh := b.halfData()
	i := lo
	if bh == nil && hi-lo >= 8 && matMulTTiled(out, a, b, lo, hi) {
		return
	}
	if hasFMA && k > 0 {
		for ; i+4 <= hi; i += 4 {
			ablk := a.Data[i*k : (i+3)*k+k]
			o0 := out.Data[i*n : (i+1)*n]
			o1 := out.Data[(i+1)*n : (i+2)*n]
			o2 := out.Data[(i+2)*n : (i+3)*n]
			o3 := out.Data[(i+3)*n : (i+4)*n]
			if bh != nil {
				for j := 0; j < n; j++ {
					o0[j], o1[j], o2[j], o3[j] = dotRow4F16(ablk, k, bh[j*k:(j+1)*k])
				}
			} else if !matMulTSweep4(out.Data[i*n:(i+4)*n], n, ablk, k, b.Data, k, n) {
				for j := 0; j < n; j++ {
					o0[j], o1[j], o2[j], o3[j] = dotRow4(ablk, k, b.Data[j*k:(j+1)*k])
				}
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		if bh != nil {
			for j := 0; j < n; j++ {
				orow[j] = dotRowF16(arow, bh[j*k:(j+1)*k])
			}
		} else if !matMulTSweep1(orow, arow, b.Data[:n*k], k, n) {
			for j := 0; j < n; j++ {
				orow[j] = dotRow(arow, b.Data[j*k:(j+1)*k])
			}
		}
	}
}

// matMulTTiled is matMulTRows with the columns of b tiled so one weight
// block is streamed from the outer cache once and then reused from L1 by
// every 4-row group — the shape the fused mixed-phase batch produces
// (many activation rows against one weight matrix). Each output element is
// still an independent dotRow of the same two vectors, so tiling changes
// only the traversal order, never a result bit. Returns false when the FMA
// sweep kernels are unavailable (the caller runs the untiled loops).
func matMulTTiled(out, a, b *Tensor, lo, hi int) bool {
	k, n := a.Cols, b.Rows
	if k == 0 || n == 0 {
		return false
	}
	// 32 columns × k floats ≤ ~12-16 KiB for the zoo's widths: comfortably
	// inside L1 with the activation rows.
	const colBlock = 32
	for j0 := 0; j0 < n; j0 += colBlock {
		jn := n - j0
		if jn > colBlock {
			jn = colBlock
		}
		blk := b.Data[j0*k : (j0+jn)*k]
		i := lo
		for ; i+4 <= hi; i += 4 {
			if !matMulTSweep4(out.Data[i*n+j0:], n, a.Data[i*k:(i+4)*k], k, blk, k, jn) {
				return false
			}
		}
		for ; i < hi; i++ {
			if !matMulTSweep1(out.Data[i*n+j0:i*n+j0+jn], a.Data[i*k:(i+1)*k], blk, k, jn) {
				return false
			}
		}
	}
	return true
}

// matMulTCols computes columns [lo,hi) of every row of out = a×bᵀ — the
// small-m split that lets a single decode step use every core. Each element
// is the same dotRow the row kernel makes, so results are bit-identical.
func matMulTCols(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Rows
	bh := b.halfData()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		if bh != nil {
			for j := lo; j < hi; j++ {
				orow[j] = dotRowF16(arow, bh[j*k:(j+1)*k])
			}
		} else if !matMulTSweep1(orow[lo:hi], arow, b.Data[lo*k:hi*k], k, hi-lo) {
			for j := lo; j < hi; j++ {
				orow[j] = dotRow(arow, b.Data[j*k:(j+1)*k])
			}
		}
	}
}

// Linear computes x × wᵀ + bias, the canonical nn.Linear forward pass
// (w: out×in stored row-major like PyTorch, bias: len out or nil).
func Linear(x, w *Tensor, bias []float32) *Tensor {
	return LinearInto(New(x.Rows, w.Rows), x, w, bias)
}

// LinearInto computes x × wᵀ + bias into out without allocating; out must
// be x.Rows × w.Rows and must not alias x or w.
func LinearInto(out, x, w *Tensor, bias []float32) *Tensor {
	MatMulTInto(out, x, w)
	if bias != nil {
		if len(bias) != out.Cols {
			panic("tensor: Linear bias length mismatch")
		}
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}
	}
	return out
}
