package tensor

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// Cost-model-driven kernel dispatch (DESIGN.md §12).
//
// The previous dispatch was a static threshold: products above 1<<15
// multiply-adds took a pooled path. That loses exactly where decode lives —
// small-m, medium-n products whose serial time is comparable to the pool
// handoff — and it ignores how many CPUs actually back GOMAXPROCS, so a
// single-core host running at P=4 paid the full handoff for zero
// parallelism (the BENCH_decode regression in ROADMAP item 3).
//
// Dispatch now consults a CostModel: measured serial throughput per kernel
// kind and m-class, a measured pool dispatch/chunk overhead, and a measured
// parallel efficiency. plan() predicts serial vs pooled time for the
// concrete (m, k, n, workers) shape and only leaves the serial path when
// the pooled prediction wins by a hysteresis margin — so P>1 can never lose
// to P=1 by more than mispredicted noise on any shape class. Workers are
// capped at runtime.NumCPU(): raising GOMAXPROCS past the physical core
// count adds handoff cost but no bandwidth, so it never changes the plan.
//
// The model ships with conservative defaults (serial until a product is
// clearly large enough), is measured in-process by Calibrate/AutoCalibrate,
// and round-trips through JSON (cmd/calibrate writes the file, binaries
// load it via LoadCalibration) so startup does not have to re-measure.

// matKind distinguishes the two product families with different inner
// loops: MatMul (k-outer accumulate) and MatMulT (row-dot).
type matKind int

const (
	kindMatMul matKind = iota
	kindMatMulT
	numMatKinds
)

// m-classes bucket the output-row count: m=1 (single-token decode), small
// batches, and prefill-sized blocks have very different per-madd costs
// because the dot kernels amortize differently.
const numMClasses = 5

func mClass(m int) int {
	switch {
	case m <= 1:
		return 0
	case m <= 3:
		return 1
	case m <= 7:
		return 2
	case m <= 15:
		return 3
	default:
		return 4
	}
}

// mClassRep is the representative m Calibrate measures per class.
var mClassRep = [numMClasses]int{1, 2, 5, 12, 32}

// CostModel holds the measured constants the dispatcher predicts with. All
// times are nanoseconds.
type CostModel struct {
	// SerialNsPerMadd[kind][mClass]: serial kernel cost per multiply-add.
	SerialNsPerMadd [numMatKinds][numMClasses]float64 `json:"serial_ns_per_madd"`
	// PoolDispatchNs: fixed cost of waking the pool for one product.
	PoolDispatchNs float64 `json:"pool_dispatch_ns"`
	// PoolChunkNs: marginal cost per chunk (cursor claim + WaitGroup).
	PoolChunkNs float64 `json:"pool_chunk_ns"`
	// ParallelEff: fraction of linear speedup each extra worker adds
	// (speedup ≈ 1 + eff·(w-1)).
	ParallelEff float64 `json:"parallel_eff"`
	// MeasuredWorkers records the GOMAXPROCS ParallelEff was measured at
	// (0 = not measured).
	MeasuredWorkers int  `json:"measured_workers"`
	Calibrated      bool `json:"calibrated"`
}

// hysteresis: the pooled prediction must beat serial by this factor before
// dispatch leaves the serial path. Mispredicting toward serial costs a
// bounded fraction of ideal speedup; mispredicting toward pooled costs a
// regression, which the acceptance bar forbids.
const planMargin = 1.15

// plan is one dispatch decision.
type plan struct {
	mode    planMode
	chunk   int
	helpers int
}

type planMode uint8

const (
	planSerial planMode = iota
	planRows
	planCols
)

// DefaultCostModel returns the conservative uncalibrated model: serial
// throughput guessed slow (so pooling engages only for clearly large
// products) and pool overhead guessed high.
func DefaultCostModel() *CostModel {
	cm := &CostModel{
		PoolDispatchNs: 20000,
		PoolChunkNs:    800,
		ParallelEff:    0.7,
	}
	for kind := matKind(0); kind < numMatKinds; kind++ {
		cm.SerialNsPerMadd[kind] = [numMClasses]float64{0.45, 0.35, 0.28, 0.22, 0.18}
	}
	return cm
}

var costModelPtr atomic.Pointer[CostModel]

func init() { costModelPtr.Store(DefaultCostModel()) }

func currentCostModel() *CostModel { return costModelPtr.Load() }

// SetCostModel installs cm as the process-wide dispatch model (nil restores
// the defaults). The pointer is read atomically per product, so swapping
// mid-run is safe; results are unaffected either way (every plan is
// bit-identical).
func SetCostModel(cm *CostModel) {
	if cm == nil {
		cm = DefaultCostModel()
	}
	costModelPtr.Store(cm)
}

// CurrentCostModel returns a copy of the installed model.
func CurrentCostModel() CostModel { return *costModelPtr.Load() }

// cachedNumCPU avoids the runtime.NumCPU call (cheap but not free) on the
// per-product dispatch path. Atomic so SetNumCPUOverride can swap it under
// the race detector while kernels are running.
var cachedNumCPU atomic.Int64

func init() { cachedNumCPU.Store(int64(runtime.NumCPU())) }

// effectiveNumCPU is the physical-core cap every worker-count decision
// (dispatch plans, attention fan-out) respects.
func effectiveNumCPU() int { return int(cachedNumCPU.Load()) }

// SetNumCPUOverride replaces the detected physical CPU count that caps
// worker recruitment, returning the previous value; n <= 0 restores
// detection. Every plan is bit-identical regardless of worker count, so the
// override only shifts work placement — it exists so tests (and experiments)
// can exercise the multi-worker paths on hosts with fewer cores, e.g. the
// mixed-phase race battery forcing the attention fan-out onto pool helpers.
func SetNumCPUOverride(n int) int {
	prev := effectiveNumCPU()
	if n <= 0 {
		n = runtime.NumCPU()
	}
	cachedNumCPU.Store(int64(n))
	return prev
}

// plan picks serial vs row-split vs col-split for an m×k×n product under
// `procs` GOMAXPROCS. It allocates nothing.
func (cm *CostModel) plan(kind matKind, m, k, n, procs int) plan {
	work := m * k * n
	workers := procs
	if cpus := effectiveNumCPU(); workers > cpus {
		workers = cpus
	}
	if workers <= 1 || work == 0 {
		return plan{mode: planSerial}
	}
	serialNs := float64(work) * cm.SerialNsPerMadd[kind][mClass(m)]
	if serialNs <= cm.PoolDispatchNs {
		// The whole product costs less than waking the pool.
		return plan{mode: planSerial}
	}
	mode := planCols
	grid, per := n, m*k
	if m >= workers {
		mode = planRows
		grid, per = m, k*n
	}
	chunk := chunkFor(grid, per, workers)
	chunks := (grid + chunk - 1) / chunk
	if chunks < 2 {
		return plan{mode: planSerial}
	}
	pooledNs := cm.PoolDispatchNs + float64(chunks)*cm.PoolChunkNs +
		serialNs/(1+cm.ParallelEff*float64(workers-1))
	if pooledNs*planMargin >= serialNs {
		return plan{mode: planSerial}
	}
	helpers := chunks - 1
	if helpers > workers-1 {
		helpers = workers - 1
	}
	return plan{mode: mode, chunk: chunk, helpers: helpers}
}

// chunkFor sizes chunks: enough of them for the pool to balance (≈4 per
// worker) but each at least grainWork multiply-adds (workPer per grid
// element).
func chunkFor(grid, workPer, workers int) int {
	chunk := (grid + workers*4 - 1) / (workers * 4)
	if min := (grainWork + workPer - 1) / workPer; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// fuseMargin biases FuseWorthwhile toward fusing: a fused group replaces m
// kernel invocations with one, so even measured per-madd parity favors the
// fused call once the saved call overhead is counted.
const fuseMargin = 1.05

// FuseWorthwhile reports whether fusing m single-row sessions into one
// m-row forward call is predicted no slower than m serial calls, judged by
// the measured serial per-madd cost of m's class against the single-row
// class. The serving scheduler consults it to route small groups through
// the serial fallback instead of always fusing — on hosts where the
// small-batch kernels lose to m=1 (cache pressure, blocked-kernel setup),
// this is the measured crossover; elsewhere it always fuses.
func (cm *CostModel) FuseWorthwhile(m int) bool {
	if m <= 1 {
		return true
	}
	return cm.SerialNsPerMadd[kindMatMulT][mClass(m)] <=
		cm.SerialNsPerMadd[kindMatMulT][0]*fuseMargin
}

// AttnHelpers sizes the pool fan-out for a batched attention section of
// `units` independent (session × head) work units totalling roughly `madds`
// multiply-adds. Zero means run the section inline — the correct answer
// whenever the handoff would cost more than the parallelism buys (small
// groups, short KV, or a host without spare cores). Work units are row-dot
// shaped, so the single-row MatMulT class approximates their serial cost.
func (cm *CostModel) AttnHelpers(units, madds int) int {
	workers := runtime.GOMAXPROCS(0)
	if cpus := effectiveNumCPU(); workers > cpus {
		workers = cpus
	}
	if workers <= 1 || units < 2 {
		return 0
	}
	serialNs := float64(madds) * cm.SerialNsPerMadd[kindMatMulT][0]
	if serialNs <= cm.PoolDispatchNs {
		return 0
	}
	pooledNs := cm.PoolDispatchNs + float64(units)*cm.PoolChunkNs +
		serialNs/(1+cm.ParallelEff*float64(workers-1))
	if pooledNs*planMargin >= serialNs {
		return 0
	}
	helpers := workers - 1
	if helpers > units-1 {
		helpers = units - 1
	}
	return helpers
}

// ---- calibration ----

// timeOp reports the best-of-3 per-call nanoseconds of f, sizing the rep
// count so each sample runs ≥ minSample.
func timeOp(f func(), minSample time.Duration) float64 {
	reps := 1
	f() // warm caches and the page tables
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		el := time.Since(start)
		if el >= minSample {
			break
		}
		if el <= 0 {
			reps *= 16
			continue
		}
		grow := int(float64(minSample)/float64(el)) + 1
		if grow < 2 {
			grow = 2
		}
		reps *= grow
	}
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(reps)
		if trial == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// Calibrate measures the kernel cost model on this host: serial ns/madd for
// both kernel kinds across the m-classes, the pool handoff overhead, and
// the parallel efficiency at the current GOMAXPROCS. Takes on the order of
// tens of milliseconds. The returned model is not installed; call
// SetCostModel (or AutoCalibrate, which does both).
func Calibrate() *CostModel {
	cm := DefaultCostModel()
	const k, n = 96, 384 // decode-representative inner/outer widths

	for class, m := range mClassRep {
		a := New(m, k)
		bT := New(n, k) // MatMulT operand: n rows of length k
		b := New(k, n)  // MatMul operand
		out := New(m, n)
		a.Fill(0.5)
		bT.Fill(0.25)
		b.Fill(0.25)
		madds := float64(m * k * n)
		cm.SerialNsPerMadd[kindMatMulT][class] =
			timeOp(func() { matMulTRows(out, a, bT, 0, m) }, 100*time.Microsecond) / madds
		cm.SerialNsPerMadd[kindMatMul][class] =
			timeOp(func() { matMulRows(out, a, b, 0, m, true) }, 100*time.Microsecond) / madds
	}

	// Pool overhead: run a tiny grid through the pool and subtract the
	// serial kernel time. Chunked 8 ways so the per-chunk cost registers.
	{
		m, kk, nn := 4, 64, 64
		a, b, out := New(m, kk), New(nn, kk), New(m, nn)
		a.Fill(0.5)
		b.Fill(0.25)
		const chunks = 8
		chunk := (nn + chunks - 1) / chunks
		serial := timeOp(func() { matMulTRows(out, a, b, 0, m) }, 100*time.Microsecond)
		pooled := timeOp(func() {
			runPooled(kernelMatMulTCols, out, a, b, false, nn, chunk, 0)
		}, 100*time.Microsecond)
		over := pooled - serial
		if over < 1000 {
			over = 1000
		}
		cm.PoolChunkNs = over / chunks
		pooled = timeOp(func() {
			runPooled(kernelMatMulTCols, out, a, b, false, nn, nn/2, 0)
		}, 100*time.Microsecond)
		disp := pooled - serial - 2*cm.PoolChunkNs
		if disp < 2000 {
			disp = 2000
		}
		cm.PoolDispatchNs = disp
	}

	// Parallel efficiency: a large row-split product at the effective
	// worker count. On a single-CPU host there is nothing to measure and
	// ParallelEff is irrelevant (plan() never leaves serial).
	procs := runtime.GOMAXPROCS(0)
	workers := procs
	if cpus := effectiveNumCPU(); workers > cpus {
		workers = cpus
	}
	cm.MeasuredWorkers = workers
	if workers > 1 {
		m, kk, nn := 64, 128, 256
		a, b, out := New(m, kk), New(nn, kk), New(m, nn)
		a.Fill(0.5)
		b.Fill(0.25)
		serial := timeOp(func() { matMulTRows(out, a, b, 0, m) }, 200*time.Microsecond)
		chunk := chunkFor(m, kk*nn, workers)
		pooled := timeOp(func() {
			runPooled(kernelMatMulTRows, out, a, b, false, m, chunk, workers-1)
		}, 200*time.Microsecond)
		speedup := serial / pooled
		eff := (speedup - 1) / float64(workers-1)
		if eff < 0.05 {
			eff = 0.05
		}
		if eff > 1 {
			eff = 1
		}
		cm.ParallelEff = eff
	}
	cm.Calibrated = true
	return cm
}

// AutoCalibrate measures and installs the cost model in one step; binaries
// call it once at startup (after flag parsing, before the hot loops).
func AutoCalibrate() *CostModel {
	cm := Calibrate()
	SetCostModel(cm)
	return cm
}

// calibrationFile is the JSON envelope SaveCalibration writes.
type calibrationFile struct {
	Version int       `json:"version"`
	Model   CostModel `json:"model"`
}

const calibrationVersion = 1

// SaveCalibration writes the installed cost model to path as JSON.
func SaveCalibration(path string) error {
	env := calibrationFile{Version: calibrationVersion, Model: CurrentCostModel()}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCalibration reads a SaveCalibration file and installs it.
func LoadCalibration(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env calibrationFile
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("tensor: parsing calibration %s: %w", path, err)
	}
	if env.Version != calibrationVersion {
		return fmt.Errorf("tensor: calibration %s has version %d, want %d", path, env.Version, calibrationVersion)
	}
	m := env.Model
	if m.PoolDispatchNs <= 0 || m.PoolChunkNs <= 0 || m.ParallelEff <= 0 {
		return fmt.Errorf("tensor: calibration %s has non-positive constants", path)
	}
	for kind := range m.SerialNsPerMadd {
		for class, v := range m.SerialNsPerMadd[kind] {
			if v <= 0 {
				return fmt.Errorf("tensor: calibration %s kind %d class %d non-positive", path, kind, class)
			}
		}
	}
	SetCostModel(&m)
	return nil
}
