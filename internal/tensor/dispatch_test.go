package tensor

import (
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"ft2/internal/numerics"
)

// ---- kernel identity: every row kernel must agree bit-for-bit ----

// dotRow4 must be bit-identical per row to dotRow: the blocked MatMulT path
// mixes them freely (groups of 4 plus a remainder), so any divergence would
// make results depend on row-block alignment.
func TestDotRow4MatchesDotRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 64, 96, 100, 384} {
		lda := n + 3 // rows deliberately non-contiguous
		a := make([]float32, 3*lda+n+1)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		r0, r1, r2, r3 := dotRow4(a, lda, b)
		for i, got := range []float32{r0, r1, r2, r3} {
			want := dotRow(a[i*lda:i*lda+n], b)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("n=%d row %d: dotRow4 = %x, dotRow = %x", n, i, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

// dotRow must propagate NaN wherever Dot would: linear layers carry
// injected faults through these kernels.
func TestDotRowPropagatesNaN(t *testing.T) {
	nan := float32(math.NaN())
	for _, n := range []int{1, 5, 8, 16, 33, 96} {
		for _, pos := range []int{0, n / 2, n - 1} {
			a := make([]float32, n)
			b := make([]float32, n)
			for i := range a {
				a[i], b[i] = 1, 2
			}
			b[pos] = nan
			if v := dotRow(a, b); !math.IsNaN(float64(v)) {
				t.Fatalf("n=%d pos=%d: dotRow = %g, want NaN", n, pos, v)
			}
		}
	}
}

// The f16 row kernels must be bit-identical to the f32 kernels over the
// decoded master copy — VCVTPH2PS is exact, so any divergence is an op
// order bug.
func TestDotRowF16MatchesF32(t *testing.T) {
	if !hasF16C {
		t.Skip("no F16C tier on this host")
	}
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 7, 8, 9, 16, 17, 24, 33, 96, 264, 384} {
		a := make([]float32, n)
		bf := make([]float32, n)
		bh := make([]uint16, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			hb := numerics.F32ToF16Bits(float32(rng.NormFloat64()))
			bh[i] = hb
			bf[i] = numerics.F16BitsToF32(hb)
		}
		got := dotRowF16(a, bh)
		want := dotRow(a, bf)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("n=%d: dotRowF16 = %x, dotRow = %x", n, math.Float32bits(got), math.Float32bits(want))
		}
		lda := n
		a4 := make([]float32, 4*n)
		for i := range a4 {
			a4[i] = float32(rng.NormFloat64())
		}
		r0, r1, r2, r3 := dotRow4F16(a4, lda, bh)
		for i, g := range []float32{r0, r1, r2, r3} {
			w := dotRowF16(a4[i*lda:i*lda+n], bh)
			if math.Float32bits(g) != math.Float32bits(w) {
				t.Fatalf("n=%d row %d: dotRow4F16 = %x, dotRowF16 = %x", n, i, math.Float32bits(g), math.Float32bits(w))
			}
		}
	}
}

// ---- forced-plan identity: serial, row-split, col-split, f16 ----

// Every dispatch plan must produce bit-identical MatMulT results, including
// with a packed-f16 operand streaming on and off.
func TestMatMulTPlansBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 6, 96, 40
	a := New(m, k)
	b := New(n, k)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)

	serial := New(m, n)
	matMulTRows(serial, a, b, 0, m)

	rows := New(m, n)
	runPooled(kernelMatMulTRows, rows, a, b, false, m, 2, 1)
	if !rows.Equal(serial) {
		t.Error("row-split MatMulT diverges from serial")
	}

	cols := New(m, n)
	runPooled(kernelMatMulTCols, cols, a, b, false, n, 7, 1)
	if !cols.Equal(serial) {
		t.Error("col-split MatMulT diverges from serial")
	}

	// f16: packing rounds b, so recompute the serial reference, then check
	// streamed (shadow read) against unstreamed (master copy read).
	b.PackF16()
	f32ref := New(m, n)
	prev := SetF16Streaming(false)
	matMulTRows(f32ref, a, b, 0, m)
	SetF16Streaming(true)
	f16out := New(m, n)
	matMulTRows(f16out, a, b, 0, m)
	SetF16Streaming(prev)
	if !f16out.Equal(f32ref) {
		t.Error("f16-streamed MatMulT diverges from f32 over the same rounded weights")
	}
}

// ---- plan() behavior ----

func TestPlanSerialWhenNoParallelism(t *testing.T) {
	cm := DefaultCostModel()
	// One worker: always serial, no matter the shape.
	if p := cm.plan(kindMatMulT, 64, 512, 512, 1); p.mode != planSerial {
		t.Error("plan with 1 worker must be serial")
	}
	// GOMAXPROCS above the physical core count adds nothing: the plan must
	// not change past NumCPU (this is the P>1-never-loses-to-P=1 rule on a
	// host with fewer cores than GOMAXPROCS).
	pCPU := cm.plan(kindMatMulT, 64, 512, 512, runtime.NumCPU())
	pOver := cm.plan(kindMatMulT, 64, 512, 512, runtime.NumCPU()*4)
	if pOver != pCPU {
		t.Errorf("plan changed past NumCPU: %+v vs %+v", pOver, pCPU)
	}
	// Tiny product: serial at any worker count.
	if p := cm.plan(kindMatMulT, 1, 12, 8, 8); p.mode != planSerial {
		t.Error("tiny product must stay serial")
	}
}

func TestPlanPooledForLargeProducts(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host: pooled plans are unreachable by design")
	}
	cm := DefaultCostModel()
	p := cm.plan(kindMatMulT, 256, 512, 512, runtime.NumCPU())
	if p.mode == planSerial {
		t.Error("large product should take a pooled plan on a multi-CPU host")
	}
}

// ---- calibration ----

func TestCalibrateProducesSaneModel(t *testing.T) {
	cm := Calibrate()
	if !cm.Calibrated {
		t.Fatal("Calibrate did not mark the model calibrated")
	}
	for kind := range cm.SerialNsPerMadd {
		for class, v := range cm.SerialNsPerMadd[kind] {
			if v <= 0 || v > 1000 {
				t.Errorf("kind %d class %d: implausible ns/madd %g", kind, class, v)
			}
		}
	}
	if cm.PoolDispatchNs <= 0 || cm.PoolChunkNs <= 0 {
		t.Error("pool overheads must be positive")
	}
	if cm.ParallelEff <= 0 || cm.ParallelEff > 1 {
		t.Errorf("parallel efficiency %g out of range", cm.ParallelEff)
	}
}

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kernels.json")
	orig := CurrentCostModel()
	defer SetCostModel(&orig)

	cm := DefaultCostModel()
	cm.PoolDispatchNs = 1234
	cm.Calibrated = true
	SetCostModel(cm)
	if err := SaveCalibration(path); err != nil {
		t.Fatal(err)
	}
	SetCostModel(nil) // back to defaults
	if err := LoadCalibration(path); err != nil {
		t.Fatal(err)
	}
	got := CurrentCostModel()
	if got.PoolDispatchNs != 1234 || !got.Calibrated {
		t.Errorf("round-trip lost fields: %+v", got)
	}
	if err := LoadCalibration(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file must fail")
	}
}
