package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fillPattern writes a deterministic mix of normals, tiny and huge values,
// exact zeros, and non-finite lanes so the sweep kernels are compared
// against the per-column reference on every value class.
func fillPattern(r *rand.Rand, xs []float32) {
	for i := range xs {
		switch r.Intn(12) {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = float32(math.Copysign(0, -1))
		case 2:
			xs[i] = float32(math.Inf(1 - 2*r.Intn(2)))
		case 3:
			xs[i] = float32(math.NaN())
		case 4:
			xs[i] = float32(r.NormFloat64()) * 1e-30
		case 5:
			xs[i] = float32(r.NormFloat64()) * 1e30
		default:
			xs[i] = float32(r.NormFloat64())
		}
	}
}

// TestMatMulTSweepBitIdentity checks the column-sweep kernels against the
// per-column dotRow/dotRow4 loops they replace, bitwise, over odd widths
// and non-finite inputs.
func TestMatMulTSweepBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 3, 7, 8, 12, 15, 16, 17, 31, 64, 96, 97} {
		for _, cols := range []int{1, 2, 5, 96, 131} {
			a := make([]float32, 4*k)
			b := make([]float32, cols*k)
			fillPattern(r, a)
			fillPattern(r, b)

			got1 := make([]float32, cols)
			if matMulTSweep1(got1, a[:k], b, k, cols) {
				for j := 0; j < cols; j++ {
					want := dotRow(a[:k], b[j*k:(j+1)*k])
					if math.Float32bits(got1[j]) != math.Float32bits(want) {
						t.Fatalf("sweep1 k=%d cols=%d j=%d: got %x want %x",
							k, cols, j, math.Float32bits(got1[j]), math.Float32bits(want))
					}
				}
			}

			ldo := cols + 3 // non-contiguous output rows exercise the stride
			got4 := make([]float32, 3*ldo+cols)
			if matMulTSweep4(got4, ldo, a, k, b, k, cols) {
				for rr := 0; rr < 4; rr++ {
					for j := 0; j < cols; j++ {
						want := dotRow(a[rr*k:(rr+1)*k], b[j*k:(j+1)*k])
						if math.Float32bits(got4[rr*ldo+j]) != math.Float32bits(want) {
							t.Fatalf("sweep4 k=%d cols=%d r=%d j=%d: got %x want %x",
								k, cols, rr, j, math.Float32bits(got4[rr*ldo+j]), math.Float32bits(want))
						}
					}
				}
			}
		}
	}
}
