package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Dot agrees with the naive summation within float tolerance.
func TestDotMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%64
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		var naive float64
		for i := range a {
			naive += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		return math.Abs(got-naive) <= 1e-3*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC (within
// float tolerance).
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(5, 7)
		b := New(7, 4)
		c := New(7, 4)
		a.RandNormal(rng, 1)
		b.RandNormal(rng, 1)
		c.RandNormal(rng, 1)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Linear with a zero weight matrix returns the bias broadcast.
func TestLinearZeroWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(3, 6)
		x.RandNormal(rng, 2)
		w := New(4, 6) // zeros
		bias := []float32{1, -2, 3, -4}
		out := Linear(x, w, bias)
		for r := 0; r < 3; r++ {
			for j, bv := range bias {
				if out.At(r, j) != bv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: softmax is invariant to a constant shift of the row.
func TestSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if math.IsNaN(float64(shift)) || math.IsInf(float64(shift), 0) || shift > 20 || shift < -20 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := New(1, 12)
		a.RandNormal(rng, 2)
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		SoftmaxRows(a)
		SoftmaxRows(b)
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LayerNorm output is invariant to input scaling (gamma=1,
// beta=0): LN(c·x) == LN(x) for c > 0.
func TestLayerNormScaleInvariant(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		c := 0.5 + float32(cRaw)/16
		rng := rand.New(rand.NewSource(seed))
		x := New(1, 24)
		x.RandNormal(rng, 3)
		gamma := make([]float32, 24)
		beta := make([]float32, 24)
		for i := range gamma {
			gamma[i] = 1
		}
		scaled := x.Clone()
		scaled.Scale(c)
		a := LayerNorm(x, gamma, beta, 1e-6)
		b := LayerNorm(scaled, gamma, beta, 1e-6)
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: RMSNorm of a one-hot row has the full RMS magnitude in the hot
// channel (√n) — the "state wipe" behaviour extreme corruption causes.
func TestRMSNormOneHot(t *testing.T) {
	n := 16
	x := New(1, n)
	x.Set(0, 7, 30000)
	gamma := make([]float32, n)
	for i := range gamma {
		gamma[i] = 1
	}
	out := RMSNorm(x, gamma, 1e-6)
	want := float32(math.Sqrt(float64(n)))
	if math.Abs(float64(out.At(0, 7)-want)) > 1e-2 {
		t.Errorf("hot channel = %g, want %g", out.At(0, 7), want)
	}
	for j := 0; j < n; j++ {
		if j != 7 && out.At(0, j) != 0 {
			t.Errorf("cold channel %d = %g, want 0", j, out.At(0, j))
		}
	}
}

// Property: RotaryEmbed of the same vector at two positions preserves the
// pairwise dot product structure (relative position property): the dot of
// q@p1 with k@p2 depends only on p1-p2.
func TestRotaryRelativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dim := 8
	q := New(1, dim)
	k := New(1, dim)
	q.RandNormal(rng, 1)
	k.RandNormal(rng, 1)

	rot := func(v *Tensor, pos int) *Tensor {
		c := v.Clone()
		RotaryEmbed(c, []int{pos}, dim, 10000)
		return c
	}
	dotAt := func(p1, p2 int) float64 {
		return float64(Dot(rot(q, p1).Row(0), rot(k, p2).Row(0)))
	}
	if diff := dotAt(5, 3) - dotAt(12, 10); math.Abs(diff) > 1e-3 {
		t.Errorf("RoPE must depend only on relative positions: %g", diff)
	}
	if diff := dotAt(0, 0) - dotAt(100, 100); math.Abs(diff) > 1e-3 {
		t.Errorf("equal positions must match at any offset: %g", diff)
	}
}
