package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the resident worker pool behind the parallel matmul
// paths. The previous design spawned GOMAXPROCS goroutines per call, which
// put a scheduler round trip and a stack handoff on every large product; the
// pool spawns its helpers once and hands work over with a channel send plus
// atomic chunk claiming.
//
// Execution model: a job covers a grid of `chunks` equal slices of [0, n).
// Chunk indices are claimed through an atomic cursor, so any number of
// helpers — including zero — may participate. The submitting goroutine
// always works the grid itself, which guarantees completion even when every
// helper is busy with other jobs, and a sync.WaitGroup counting one unit per
// chunk tells the submitter when the last claimed chunk finished.
//
// Jobs carry plain operand pointers (no closures) and are recycled through a
// freelist, so the decode hot path can fan out without touching the heap.
//
// Recycling safety: a helper can hold a stale *job after the submitter
// returned (it received the pointer from the channel but lost the race for
// the last chunk). Before a job is recycled its cursor is parked at jobIdle,
// far above any real chunk count, so a stale claim always fails the bounds
// check without reading the operand fields; those fields are only read after
// a claim that observed the new owner's cursor reset, which (all cursor
// operations being sequentially consistent atomics) also publishes them.

// kernel identifies which row/column kernel a pooled job runs.
type kernel uint8

const (
	kernelMatMulRows kernel = iota
	kernelMatMulCols
	kernelMatMulTRows
	kernelMatMulTCols
	// kernelFunc runs a caller-supplied range function instead of a matmul
	// kernel — the ParallelFor escape hatch the batched attention fan-out
	// uses. The function travels in the job's fn field.
	kernelFunc
)

// jobIdle parks a job's cursor between uses: any stale chunk claim lands
// above every plausible chunk count and exits without touching the operands.
const jobIdle = int64(1) << 40

type job struct {
	kind      kernel
	out, a, b *Tensor
	skipZeros bool
	// fn is the range body of a kernelFunc job. Callers keep the closure
	// alive across calls (the model arena does), so assigning it here does
	// not allocate.
	fn func(lo, hi int)

	chunk  atomic.Int64 // elements per chunk
	n      atomic.Int64 // grid size (rows or cols)
	chunks atomic.Int64 // total chunk count = ceil(n/chunk)
	cursor atomic.Int64 // next chunk index to claim
	wg     sync.WaitGroup
}

func (j *job) exec(lo, hi int) {
	switch j.kind {
	case kernelMatMulRows:
		matMulRows(j.out, j.a, j.b, lo, hi, j.skipZeros)
	case kernelMatMulCols:
		matMulCols(j.out, j.a, j.b, lo, hi, j.skipZeros)
	case kernelMatMulTRows:
		matMulTRows(j.out, j.a, j.b, lo, hi)
	case kernelMatMulTCols:
		matMulTCols(j.out, j.a, j.b, lo, hi)
	case kernelFunc:
		j.fn(lo, hi)
	}
}

// run claims and executes chunks until the grid is exhausted.
func (j *job) run() {
	for {
		idx := j.cursor.Add(1) - 1
		if idx >= j.chunks.Load() {
			return
		}
		chunk, n := j.chunk.Load(), j.n.Load()
		lo := idx * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		j.exec(int(lo), int(hi))
		j.wg.Done()
	}
}

var (
	poolMu      sync.Mutex
	poolWork    chan *job
	poolFree    chan *job
	poolHelpers atomic.Int32
)

// ensurePool keeps the resident helper set in step with GOMAXPROCS instead
// of sizing once at first use: helpers = procs-1 (floor 1, so single-proc
// processes that later raise GOMAXPROCS still have a helper to hand off
// to), grown on demand whenever GOMAXPROCS rises between phases — bench
// sweeps, servers re-tuned at runtime. Helpers are never killed when
// GOMAXPROCS drops: callers cap per-job recruitment by the current plan, so
// surplus helpers just stay parked on the channel. The fast path is one
// atomic load; its acquire ordering also publishes the channels created
// under the mutex.
func ensurePool(procs int) {
	want := int32(procs - 1)
	if want < 1 {
		want = 1
	}
	if poolHelpers.Load() >= want {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolWork == nil {
		poolWork = make(chan *job, 256)
		poolFree = make(chan *job, 64)
	}
	for poolHelpers.Load() < want {
		go func() {
			for j := range poolWork {
				j.run()
			}
		}()
		poolHelpers.Add(1)
	}
}

// poolHelperCount reports the resident helper count (tests only).
func poolHelperCount() int { return int(poolHelpers.Load()) }

// runPooled executes a kernel over grid [0,n) split into chunk-sized slices,
// recruiting up to maxHelpers resident helpers. Steady-state it performs no
// heap allocation: jobs cycle through the freelist and the kernel arguments
// travel as struct fields, not closures.
func runPooled(kind kernel, out, a, b *Tensor, skipZeros bool, n, chunk, maxHelpers int) {
	j := acquireJob()
	j.kind, j.out, j.a, j.b, j.skipZeros = kind, out, a, b, skipZeros
	submitJob(j, n, chunk, maxHelpers)
}

// ParallelFor executes fn over [0,n) in chunk-sized ranges on the resident
// pool, recruiting up to maxHelpers helpers (the submitter always works the
// grid too). fn must be safe to invoke concurrently on disjoint ranges and
// must not touch shared mutable state beyond what it owns per range — the
// batched attention fan-out keys per-range scratch off the range bounds.
// With maxHelpers <= 0 the grid runs inline as fn(0, n), so a single-CPU
// host pays no atomics. Zero-alloc when the caller reuses a long-lived
// closure.
func ParallelFor(n, chunk, maxHelpers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if maxHelpers <= 0 || chunk <= 0 || chunk >= n {
		fn(0, n)
		return
	}
	j := acquireJob()
	j.kind, j.fn = kernelFunc, fn
	submitJob(j, n, chunk, maxHelpers)
}

// acquireJob recycles a parked job or allocates a fresh one.
func acquireJob() *job {
	ensurePool(runtime.GOMAXPROCS(0))
	select {
	case j := <-poolFree:
		return j
	default:
		return &job{}
	}
}

// submitJob publishes a prepared job over grid [0,n), recruits helpers,
// works the grid on the calling goroutine, waits for completion, and parks
// the job for reuse.
func submitJob(j *job, n, chunk, maxHelpers int) {
	chunks := (n + chunk - 1) / chunk
	j.chunk.Store(int64(chunk))
	j.n.Store(int64(n))
	j.chunks.Store(int64(chunks))
	j.wg.Add(chunks)
	// Publish: helpers only read the fields above after a claim that
	// observed this reset.
	j.cursor.Store(0)

	helpers := chunks - 1
	if helpers > maxHelpers {
		helpers = maxHelpers
	}
	for i := 0; i < helpers; i++ {
		select {
		case poolWork <- j:
		default:
			// Queue full: the submitter and already-recruited helpers
			// finish the grid on their own.
			i = helpers
		}
	}
	j.run()
	j.wg.Wait()

	// Park the cursor so stale claims from helpers that still hold the
	// pointer fail the bounds check, then recycle.
	j.cursor.Store(jobIdle)
	j.out, j.a, j.b, j.fn = nil, nil, nil, nil
	select {
	case poolFree <- j:
	default:
	}
}
