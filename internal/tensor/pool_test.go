package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// Regression test for the pool sizing bug: the helper set was sized once at
// first parallel use, so a bench sweep that started at GOMAXPROCS=1 ran all
// later phases with a single helper. Sweeping P=1→4→1 must grow the pool at
// the P=4 phase and keep results correct at every stop.
func TestPoolResizesAcrossGOMAXPROCSSweep(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(13))
	m, k, n := 16, 32, 24
	a := New(m, k)
	b := New(n, k)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	want := New(m, n)
	matMulTRows(want, a, b, 0, m)

	check := func(phase string) {
		out := New(m, n)
		runPooled(kernelMatMulTRows, out, a, b, false, m, 3, runtime.GOMAXPROCS(0)-1)
		if !out.Equal(want) {
			t.Fatalf("%s: pooled result diverges from serial", phase)
		}
	}

	runtime.GOMAXPROCS(1)
	check("P=1 (first use)")
	afterP1 := poolHelperCount()
	if afterP1 < 1 {
		t.Fatalf("pool has %d helpers after first use, want >= 1", afterP1)
	}

	runtime.GOMAXPROCS(4)
	check("P=4")
	if got := poolHelperCount(); got < 3 {
		t.Fatalf("pool has %d helpers at GOMAXPROCS=4, want >= 3 (resize did not fire)", got)
	}

	runtime.GOMAXPROCS(1)
	check("P=1 (after shrink)")
	if got := poolHelperCount(); got < 3 {
		t.Fatalf("pool shrank to %d helpers; surplus helpers should stay parked", got)
	}
}
