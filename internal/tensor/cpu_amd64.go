package tensor

// cpuidAsm and xgetbvAsm are in cpu_amd64.s.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// hasAVX reports whether the CPU supports AVX and the OS has enabled the
// YMM register state. SSE2 is part of the amd64 baseline, but AVX is not,
// so the wide dot kernel needs this runtime gate.
var hasAVX = detectAVX()

func detectAVX() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	lo, _ := xgetbvAsm()
	return lo&0x6 == 0x6 // XCR0: XMM and YMM state enabled by the OS
}
