package tensor

// cpuidAsm and xgetbvAsm are in cpu_amd64.s.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// Kernel tiers, detected once at startup. SSE2 is part of the amd64
// baseline; everything above it needs a runtime gate. The tier in effect
// fixes the floating-point op order of every kernel for the lifetime of the
// process, so all paths that must agree bit-for-bit (serial vs pooled,
// single-session vs batched, f32 vs f16-streamed) observe the same
// arithmetic.
var (
	// hasAVX: AVX and OS-enabled YMM state — gates the 8-lane mul/add dot.
	hasAVX = detectAVX()
	// hasFMA: AVX2 + FMA3 on top of hasAVX — gates the fused-multiply-add
	// row kernels used by the MatMulT paths (dotRow / dotRow4).
	hasFMA = hasAVX && detectFeature1(1<<12) && detectAVX2()
	// hasF16C: F16C half-precision conversion on top of hasFMA — gates the
	// packed-f16 streaming kernels. Tied to hasFMA so the f16 kernels only
	// ever pair with FMA-tier f32 kernels of identical op order.
	hasF16C = hasFMA && detectFeature1(1<<29)
)

func detectAVX() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	lo, _ := xgetbvAsm()
	return lo&0x6 == 0x6 // XCR0: XMM and YMM state enabled by the OS
}

// detectFeature1 tests a CPUID leaf-1 ECX feature bit (FMA: bit 12,
// F16C: bit 29).
func detectFeature1(bit uint32) bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	return ecx&bit != 0
}

// detectAVX2 tests CPUID leaf-7 EBX bit 5.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	return ebx&(1<<5) != 0
}
