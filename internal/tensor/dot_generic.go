//go:build !amd64

package tensor

// Non-amd64 hosts have no SIMD kernels: one scalar tier for everything, and
// no packed-f16 streaming (halfData gates on hasF16C, so the f32 master copy
// is always used — bit-identical by construction).
var (
	hasFMA  = false
	hasF16C = false
)

// Dot is a 4-way unrolled dot product; with independent accumulators the
// compiler keeps four FMA chains in flight, roughly doubling throughput on
// the scalar path. (amd64 builds use the SSE kernel in dot_amd64.s instead.)
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // hoist the bounds check
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// dotRow/dotRow4 mirror the amd64 tier wiring with the scalar kernel.
func dotRow(a, b []float32) float32 { return Dot(a, b) }

func dotRow4(a []float32, lda int, b []float32) (r0, r1, r2, r3 float32) {
	n := len(b)
	return dotRow(a[:n], b),
		dotRow(a[lda:lda+n], b),
		dotRow(a[2*lda:2*lda+n], b),
		dotRow(a[3*lda:3*lda+n], b)
}

// The f16 kernels are unreachable without hasF16C; halfData never hands out
// a packed view here.
func dotRowF16(a []float32, b []uint16) float32 {
	panic("tensor: f16 kernel without F16C tier")
}

func dotRow4F16(a []float32, lda int, b []uint16) (r0, r1, r2, r3 float32) {
	panic("tensor: f16 kernel without F16C tier")
}
