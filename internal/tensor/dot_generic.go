//go:build !amd64

package tensor

import "ft2/internal/numerics"

// Non-amd64 hosts have no SIMD kernels: one scalar tier for everything, and
// no packed-f16 streaming (halfData gates on hasF16C, so the f32 master copy
// is always used — bit-identical by construction).
var (
	hasFMA  = false
	hasF16C = false
)

// Dot is a 4-way unrolled dot product; with independent accumulators the
// compiler keeps four FMA chains in flight, roughly doubling throughput on
// the scalar path. (amd64 builds use the SSE kernel in dot_amd64.s instead.)
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // hoist the bounds check
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy accumulates w·src into dst element-wise. The amd64 build carries an
// SSE kernel with identical per-element multiply-then-add semantics; the
// scalar loop is the reference definition.
func Axpy(dst, src []float32, w float32) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += w * src[i]
	}
}

// dotRow/dotRow4 mirror the amd64 tier wiring with the scalar kernel.
func dotRow(a, b []float32) float32 { return Dot(a, b) }

func dotRow4(a []float32, lda int, b []float32) (r0, r1, r2, r3 float32) {
	n := len(b)
	return dotRow(a[:n], b),
		dotRow(a[lda:lda+n], b),
		dotRow(a[2*lda:2*lda+n], b),
		dotRow(a[3*lda:3*lda+n], b)
}

// DotStride fills dst[j] = Dot(q, k[j*d:(j+1)*d]) * scale for j in
// [0, limit) — the reference definition of the amd64 stride kernel.
func DotStride(dst, q, k []float32, d, limit int, scale float32) {
	q = q[:d]
	for j := 0; j < limit; j++ {
		dst[j] = Dot(q, k[j*d:(j+1)*d]) * scale
	}
}

// AxpyStride accumulates dst += w[j]·v[j*d:(j+1)*d] for j in [0, limit),
// skipping exact-zero weights — the reference definition of the amd64
// stride kernel.
func AxpyStride(dst, v, w []float32, d, limit int) {
	dst = dst[:d]
	for j := 0; j < limit; j++ {
		if w[j] == 0 {
			continue
		}
		Axpy(dst, v[j*d:(j+1)*d], w[j])
	}
}

// quantizeF16 is the scalar reference: round every element through binary16
// in place. (amd64 hosts with F16C use the VCVTPS2PH kernel instead.)
func quantizeF16(data []float32) {
	for i, v := range data {
		data[i] = numerics.RoundF16(v)
	}
}

// The column-sweep MatMulT kernels are FMA-tier only; reporting false makes
// matMulTRows/matMulTCols fall back to their per-column reference loops.
func matMulTSweep4(out []float32, ldo int, a []float32, lda int, b []float32, k, cols int) bool {
	return false
}

func matMulTSweep1(out, a, b []float32, k, cols int) bool {
	return false
}

// ScaleSlice multiplies every element of p by s in place — the scalar
// reference of the amd64 vector kernel.
func ScaleSlice(p []float32, s float32) {
	for i := range p {
		p[i] *= s
	}
}

// siluFinish reports false so SiLU runs its scalar finishing loop.
func siluFinish(p []float32, e []float64) bool { return false }

// The f16 kernels are unreachable without hasF16C; halfData never hands out
// a packed view here.
func dotRowF16(a []float32, b []uint16) float32 {
	panic("tensor: f16 kernel without F16C tier")
}

func dotRow4F16(a []float32, lda int, b []uint16) (r0, r1, r2, r3 float32) {
	panic("tensor: f16 kernel without F16C tier")
}
