//go:build !amd64

package tensor

// Dot is a 4-way unrolled dot product; with independent accumulators the
// compiler keeps four FMA chains in flight, roughly doubling throughput on
// the scalar path. (amd64 builds use the SSE kernel in dot_amd64.s instead.)
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // hoist the bounds check
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}
