package tensor

import (
	"math"
	"math/rand"
	"testing"

	"ft2/internal/numerics"
)

// TestQuantizeF16VecBitIdentity proves the vectorized in-place f32→f16→f32
// round trip produces exactly the bits numerics.RoundF16 produces, across
// every value class the activation stream can contain: normals across the
// full binary16 range, rounding ties (the RNE half-way cases), subnormal
// halves, underflow-to-zero, overflow-to-Inf, ±Inf, and NaN. The serving
// oracle contract makes any single-bit divergence here a correctness bug,
// not a precision bug.
func TestQuantizeF16VecBitIdentity(t *testing.T) {
	var vals []float32
	// Every binary16 bit pattern expanded to f32 (fixed points of the round
	// trip), plus neighbors one and a few f32 ULPs away to exercise rounding
	// in both directions and the tie cases.
	for h := 0; h < 1<<16; h++ {
		f := numerics.F16BitsToF32(uint16(h))
		b := math.Float32bits(f)
		vals = append(vals, f,
			math.Float32frombits(b+1), math.Float32frombits(b-1),
			math.Float32frombits(b+0x1000), math.Float32frombits(b+0x1001))
	}
	// Specials and boundary magnitudes.
	vals = append(vals,
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.Float32frombits(0x7F800001), // signaling-NaN pattern
		math.Float32frombits(0xFFC00123), // quiet NaN with payload
		65504, 65505, 65519.996, 65520, 131000,
		numerics.F16MinNormal, numerics.F16MinNormal/2, 5.96e-8, 2.98e-8, 1e-45,
	)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<20; i++ {
		vals = append(vals, math.Float32frombits(rng.Uint32()))
	}

	got := make([]float32, len(vals))
	copy(got, vals)
	quantizeF16(got) // vector kernel + scalar tail on F16C hosts
	for i, v := range vals {
		want := numerics.RoundF16(v)
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("idx %d: in %08x: got %08x want %08x",
				i, math.Float32bits(v), math.Float32bits(got[i]), math.Float32bits(want))
		}
	}

	// Unaligned lengths: the split between vector body and scalar tail must
	// not depend on where it lands.
	for n := 0; n < 40; n++ {
		in := make([]float32, n)
		for i := range in {
			in[i] = math.Float32frombits(rng.Uint32())
		}
		ref := make([]float32, n)
		for i, v := range in {
			ref[i] = numerics.RoundF16(v)
		}
		quantizeF16(in)
		for i := range in {
			if math.Float32bits(in[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("n=%d idx %d mismatch", n, i)
			}
		}
	}
}
