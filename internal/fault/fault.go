// Package fault implements the statistical fault-injection framework of the
// paper (Section 2.3): uniform sampling of fault sites over every linear
// layer output across an entire inference, and a forward-hook injector that
// flips bits of the stored FP16/FP32 representation of one neuron —
// PyTorchFI-style injection reimplemented on the Go engine.
package fault

import (
	"fmt"
	"math/rand"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// Target selects what state a fault corrupts. The zero value is the
// classic transient activation flip, so existing plans and journals keep
// their meaning.
type Target int

const (
	// TargetActivation flips bits in one linear-layer output element at one
	// step — a transient fault, gone next step.
	TargetActivation Target = iota
	// TargetWeight flips bits in one stored weight element — a persistent
	// fault that corrupts every subsequent use of that weight until
	// reverted or the replica is rebuilt.
	TargetWeight
	// TargetKVCache flips bits in one resident KV-cache element of the live
	// generation — a semi-persistent fault that skews attention for every
	// remaining step of that session.
	TargetKVCache
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetWeight:
		return "weight"
	case TargetKVCache:
		return "kv"
	default:
		return "activation"
	}
}

// Site is one fault location: a target kind, a generation step, a layer
// reference, a flat element index, and the bit positions to flip.
//
// Element addressing per target:
//   - TargetActivation: flat index into the layer's output tensor at Step.
//   - TargetWeight: flat index into the layer's weight matrix (out×in); the
//     flip is applied when execution reaches Step.
//   - TargetKVCache: pos*Hidden + col into the block's K (Layer.Kind KProj)
//     or V (VProj) slab in logical position-major order; the injector
//     translates to the head-blocked slab layout at fire time.
type Site struct {
	Target Target
	Step   int
	Layer  model.LayerRef
	Elem   int
	Bits   []int
}

// String implements fmt.Stringer. The activation form is unchanged from
// earlier releases so journal greps keep working.
func (s Site) String() string {
	switch s.Target {
	case TargetWeight:
		return fmt.Sprintf("weight step=%d %s elem=%d bits=%v", s.Step, s.Layer, s.Elem, s.Bits)
	case TargetKVCache:
		return fmt.Sprintf("kv step=%d %s elem=%d bits=%v", s.Step, s.Layer, s.Elem, s.Bits)
	default:
		return fmt.Sprintf("step=%d %s elem=%d bits=%v", s.Step, s.Layer, s.Elem, s.Bits)
	}
}

// TargetMix sets the probability that a sampled fault targets weights or the
// KV cache; the remainder goes to transient activation flips. The zero value
// reproduces the activation-only sampling of earlier releases exactly (no
// extra RNG draws).
type TargetMix struct {
	Weight float64
	KV     float64
}

// IsZero reports whether the mix is all-activation.
func (t TargetMix) IsZero() bool { return t.Weight == 0 && t.KV == 0 }

// Plan enumerates the fault-site space of one inference configuration and
// samples sites so that fault *arrival is uniform in wall-clock time* on the
// reference hardware: the prefill pass (which computes over the whole
// prompt in parallel on a GPU) receives a time weight expressed in
// decode-step equivalents, and every decode step weighs one. This matches
// the paper's Section 4.2.2 argument that the first token generation is
// exposed in proportion to its share of execution time (<9%, Fig. 10).
// Within a step, the corrupted neuron is chosen uniformly over every linear
// layer's output elements. Setting PrefillWeight equal to PromptLen
// recovers plain neuron-uniform sampling.
type Plan struct {
	Cfg       model.Config
	PromptLen int
	GenTokens int
	DType     numerics.DType
	Model     numerics.FaultModel
	// PrefillWeight is the execution-time weight of the prefill pass in
	// decode-step equivalents (from perfmodel.PrefillStepWeight).
	PrefillWeight float64
	// Mix routes a fraction of samples to weight / KV-cache targets; the
	// zero value keeps the plan activation-only. Set after NewPlan.
	Mix TargetMix

	layers      []model.LayerRef
	layerElems  []int // output width per layer (columns)
	perTokenSum int   // Σ layer widths
	virtualRows int   // promptLen + genTokens - 1
	weightElems []int // weight matrix size per layer (out×in)
	weightSum   int64 // Σ weight sizes
}

// NewPlan builds a sampling plan. prefillWeight <= 0 defaults to 1 (the
// prefill weighs like one decode step). It panics on degenerate
// configurations — campaign construction is programmer-controlled.
func NewPlan(cfg model.Config, promptLen, genTokens int, d numerics.DType, fm numerics.FaultModel, prefillWeight float64) *Plan {
	if promptLen <= 0 || genTokens <= 0 {
		panic("fault: need a non-empty prompt and at least one generated token")
	}
	if prefillWeight <= 0 {
		prefillWeight = 1
	}
	p := &Plan{
		Cfg: cfg, PromptLen: promptLen, GenTokens: genTokens,
		DType: d, Model: fm, PrefillWeight: prefillWeight,
		layers: cfg.LinearLayers(),
	}
	for _, ref := range p.layers {
		w := cfg.OutDim(ref.Kind)
		p.layerElems = append(p.layerElems, w)
		p.perTokenSum += w
		we := cfg.OutDim(ref.Kind) * cfg.InDim(ref.Kind)
		p.weightElems = append(p.weightElems, we)
		p.weightSum += int64(we)
	}
	p.virtualRows = promptLen + genTokens - 1
	return p
}

// TotalElements returns the number of candidate fault sites (neuron
// invocations across the whole inference), before the bit dimension.
func (p *Plan) TotalElements() int64 {
	return int64(p.virtualRows) * int64(p.perTokenSum)
}

// FirstTokenProbability returns the probability that a sampled fault lands
// in the prefill pass under the time-uniform model.
func (p *Plan) FirstTokenProbability() float64 {
	return p.PrefillWeight / (p.PrefillWeight + float64(p.GenTokens-1))
}

// Sample draws a fault site: first the target kind per Mix, then — for
// activation targets — step by execution-time weight and a uniform neuron
// within the step, then bit positions per the fault model. A zero Mix takes
// the historical all-activation path with an identical RNG consumption
// pattern.
func (p *Plan) Sample(rng *rand.Rand) Site {
	if !p.Mix.IsZero() {
		u := rng.Float64()
		switch {
		case u < p.Mix.Weight:
			return p.SampleWeight(rng)
		case u < p.Mix.Weight+p.Mix.KV:
			return p.SampleKV(rng)
		}
	}
	if rng.Float64() < p.FirstTokenProbability() {
		return p.SampleFirstToken(rng)
	}
	return p.SampleFollowing(rng)
}

// SampleWeight draws a persistent weight-corruption site: arrival step by
// execution-time weight (the flip lands mid-inference, including during the
// prefill), then a uniform element over every weight matrix.
func (p *Plan) SampleWeight(rng *rand.Rand) Site {
	site := Site{Target: TargetWeight}
	if p.GenTokens > 1 && rng.Float64() >= p.FirstTokenProbability() {
		site.Step = 1 + rng.Intn(p.GenTokens-1)
	}
	e := rng.Int63n(p.weightSum)
	for i, we := range p.weightElems {
		if e < int64(we) {
			site.Layer = p.layers[i]
			site.Elem = int(e)
			break
		}
		e -= int64(we)
	}
	site.Bits = p.Model.PickBits(p.DType, rng)
	return site
}

// SampleKV draws a KV-cache corruption site: a decode step (the cache only
// matters once it is consulted, step >= 1), a uniform block, K or V, and a
// uniform resident (position, channel) pair among the rows filled when the
// step begins. It panics when the plan has no decode steps.
func (p *Plan) SampleKV(rng *rand.Rand) Site {
	if p.GenTokens < 2 {
		panic("fault: KV targets need at least two generated tokens")
	}
	step := 1 + rng.Intn(p.GenTokens-1)
	resident := p.PromptLen + step - 1 // rows filled before step's KV append
	pos := rng.Intn(resident)
	col := rng.Intn(p.Cfg.Hidden)
	kind := model.KProj
	if rng.Intn(2) == 1 {
		kind = model.VProj
	}
	return Site{
		Target: TargetKVCache,
		Step:   step,
		Layer:  model.LayerRef{Block: rng.Intn(p.Cfg.Blocks), Kind: kind},
		Elem:   pos*p.Cfg.Hidden + col,
		Bits:   p.Model.PickBits(p.DType, rng),
	}
}

// SampleFirstToken draws a site restricted to the prefill pass (step 0) —
// the Figure 11 campaign.
func (p *Plan) SampleFirstToken(rng *rand.Rand) Site {
	elem := int(rng.Int63n(int64(p.PromptLen) * int64(p.perTokenSum)))
	rowInStep := elem / p.perTokenSum
	return p.buildSite(0, rowInStep, elem%p.perTokenSum, rng)
}

// SampleFollowing draws a site restricted to the following-token steps
// (step >= 1), uniform over steps and neurons (every decode step has the
// same element count and the same time weight).
func (p *Plan) SampleFollowing(rng *rand.Rand) Site {
	if p.GenTokens < 2 {
		panic("fault: no following tokens to sample")
	}
	step := 1 + rng.Intn(p.GenTokens-1)
	return p.buildSite(step, 0, rng.Intn(p.perTokenSum), rng)
}

// buildSite resolves a per-token element offset to (layer, element) and
// draws the fault bits.
func (p *Plan) buildSite(step, rowInStep, offset int, rng *rand.Rand) Site {
	site := Site{Step: step}
	for i, w := range p.layerElems {
		if offset < w {
			site.Layer = p.layers[i]
			site.Elem = rowInStep*w + offset
			break
		}
		offset -= w
	}
	site.Bits = p.Model.PickBits(p.DType, rng)
	return site
}

// Injector corrupts exactly one element at the planned site. After the run,
// Fired reports whether the site was reached and Original/Corrupted record
// the value transition (for per-site forensics). Weight and KV-cache targets
// additionally need M — the model whose state the fault lands in; weight
// flips persist until Revert (or a rebuild) restores the original value.
type Injector struct {
	Site  Site
	DType numerics.DType
	// M is the model the injection mutates. Required for TargetWeight and
	// TargetKVCache; ignored for activation targets (those mutate the hook's
	// output tensor directly).
	M *model.Model

	Fired     bool
	Original  float32
	Corrupted float32
	reverted  bool
}

// NewInjector builds an injector for a sampled site. Callers planning weight
// or KV-cache targets must also set M before installing the hook.
func NewInjector(site Site, d numerics.DType) *Injector {
	return &Injector{Site: site, DType: d}
}

// Reset clears the fired state so the injector can be reused across runs.
func (inj *Injector) Reset() {
	inj.Fired = false
	inj.Original = 0
	inj.Corrupted = 0
	inj.reverted = false
}

// Revert undoes a fired persistent weight corruption, restoring the original
// element. It is idempotent and a no-op for transient targets (activation
// flips vanish with the tensor; KV flips die with the generation state).
// Campaigns call it after every weight-fault trial so the shared model is
// clean for the next one.
func (inj *Injector) Revert() {
	if !inj.Fired || inj.reverted || inj.Site.Target != TargetWeight {
		return
	}
	w := inj.M.Weight(inj.Site.Layer)
	w.Data[inj.Site.Elem] = inj.Original
	w.MarkMutated()
	inj.reverted = true
}

// Hook returns the forward hook performing the injection. It fires at most
// once per inference (single-fault assumption, Section 2.3): activation
// targets fire on the planned layer's output; weight and KV targets fire on
// the first linear-layer hook of the planned step — the earliest moment the
// step is known to have begun — and mutate the model / generation state
// directly.
func (inj *Injector) Hook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if inj.Fired || ctx.Site != model.SiteLinearOut {
			return
		}
		switch inj.Site.Target {
		case TargetWeight:
			if ctx.Step != inj.Site.Step {
				return
			}
			inj.fireWeight()
		case TargetKVCache:
			if ctx.Step != inj.Site.Step {
				return
			}
			inj.fireKV()
		default:
			if ctx.Step != inj.Site.Step || ctx.Layer != inj.Site.Layer {
				return
			}
			if inj.Site.Elem >= len(out.Data) {
				// Defensive: a mis-planned element index must fail loudly, not
				// silently skip the injection and bias the campaign.
				panic(fmt.Sprintf("fault: element %d out of range %d at %v",
					inj.Site.Elem, len(out.Data), inj.Site))
			}
			inj.Fired = true
			inj.Original = out.Data[inj.Site.Elem]
			inj.Corrupted = numerics.CorruptValue(inj.Original, inj.DType, inj.Site.Bits)
			out.Data[inj.Site.Elem] = inj.Corrupted
		}
	}
}

// Fire applies a weight or KV-cache fault immediately, outside any forward
// pass — the chaos engine's slice-boundary application path, where the
// mutation must land while no kernel is running. Activation targets have no
// state to mutate outside a forward pass and must go through Hook.
func (inj *Injector) Fire() {
	switch inj.Site.Target {
	case TargetWeight:
		inj.fireWeight()
	case TargetKVCache:
		inj.fireKV()
	default:
		panic("fault: Fire is for weight/kv targets; activation faults fire via Hook")
	}
}

// fireWeight flips the planned weight element in place.
func (inj *Injector) fireWeight() {
	if inj.M == nil {
		panic("fault: weight target needs Injector.M")
	}
	w := inj.M.Weight(inj.Site.Layer)
	if inj.Site.Elem >= len(w.Data) {
		panic(fmt.Sprintf("fault: weight element %d out of range %d at %v",
			inj.Site.Elem, len(w.Data), inj.Site))
	}
	inj.Fired = true
	inj.Original = w.Data[inj.Site.Elem]
	inj.Corrupted = numerics.CorruptValue(inj.Original, inj.DType, inj.Site.Bits)
	w.Data[inj.Site.Elem] = inj.Corrupted
	w.MarkMutated()
}

// fireKV flips the planned KV-cache element of the model's active
// generation state, translating the logical pos*Hidden+col address to the
// head-blocked slab layout.
func (inj *Injector) fireKV() {
	if inj.M == nil {
		panic("fault: kv target needs Injector.M")
	}
	st := inj.M.State()
	if st == nil || !st.Started() {
		panic("fault: kv target with no live generation state")
	}
	cfg := inj.M.Cfg
	slabK, slabV, rows := st.KVSlabs(inj.Site.Layer.Block)
	slab := slabK
	if inj.Site.Layer.Kind == model.VProj {
		slab = slabV
	}
	pos, col := inj.Site.Elem/cfg.Hidden, inj.Site.Elem%cfg.Hidden
	if pos >= rows {
		panic(fmt.Sprintf("fault: kv position %d beyond %d resident rows at %v",
			pos, rows, inj.Site))
	}
	hd := cfg.HeadDim()
	off := (col/hd*cfg.MaxSeq+pos)*hd + col%hd
	inj.Fired = true
	inj.Original = slab[off]
	inj.Corrupted = numerics.CorruptValue(inj.Original, inj.DType, inj.Site.Bits)
	slab[off] = inj.Corrupted
}
