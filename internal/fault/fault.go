// Package fault implements the statistical fault-injection framework of the
// paper (Section 2.3): uniform sampling of fault sites over every linear
// layer output across an entire inference, and a forward-hook injector that
// flips bits of the stored FP16/FP32 representation of one neuron —
// PyTorchFI-style injection reimplemented on the Go engine.
package fault

import (
	"fmt"
	"math/rand"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// Site is one fault location: a generation step, a linear layer, a flat
// element index into that layer's output tensor at that step, and the bit
// positions to flip.
type Site struct {
	Step  int
	Layer model.LayerRef
	Elem  int
	Bits  []int
}

// String implements fmt.Stringer.
func (s Site) String() string {
	return fmt.Sprintf("step=%d %s elem=%d bits=%v", s.Step, s.Layer, s.Elem, s.Bits)
}

// Plan enumerates the fault-site space of one inference configuration and
// samples sites so that fault *arrival is uniform in wall-clock time* on the
// reference hardware: the prefill pass (which computes over the whole
// prompt in parallel on a GPU) receives a time weight expressed in
// decode-step equivalents, and every decode step weighs one. This matches
// the paper's Section 4.2.2 argument that the first token generation is
// exposed in proportion to its share of execution time (<9%, Fig. 10).
// Within a step, the corrupted neuron is chosen uniformly over every linear
// layer's output elements. Setting PrefillWeight equal to PromptLen
// recovers plain neuron-uniform sampling.
type Plan struct {
	Cfg       model.Config
	PromptLen int
	GenTokens int
	DType     numerics.DType
	Model     numerics.FaultModel
	// PrefillWeight is the execution-time weight of the prefill pass in
	// decode-step equivalents (from perfmodel.PrefillStepWeight).
	PrefillWeight float64

	layers      []model.LayerRef
	layerElems  []int // output width per layer (columns)
	perTokenSum int   // Σ layer widths
	virtualRows int   // promptLen + genTokens - 1
}

// NewPlan builds a sampling plan. prefillWeight <= 0 defaults to 1 (the
// prefill weighs like one decode step). It panics on degenerate
// configurations — campaign construction is programmer-controlled.
func NewPlan(cfg model.Config, promptLen, genTokens int, d numerics.DType, fm numerics.FaultModel, prefillWeight float64) *Plan {
	if promptLen <= 0 || genTokens <= 0 {
		panic("fault: need a non-empty prompt and at least one generated token")
	}
	if prefillWeight <= 0 {
		prefillWeight = 1
	}
	p := &Plan{
		Cfg: cfg, PromptLen: promptLen, GenTokens: genTokens,
		DType: d, Model: fm, PrefillWeight: prefillWeight,
		layers: cfg.LinearLayers(),
	}
	for _, ref := range p.layers {
		w := cfg.OutDim(ref.Kind)
		p.layerElems = append(p.layerElems, w)
		p.perTokenSum += w
	}
	p.virtualRows = promptLen + genTokens - 1
	return p
}

// TotalElements returns the number of candidate fault sites (neuron
// invocations across the whole inference), before the bit dimension.
func (p *Plan) TotalElements() int64 {
	return int64(p.virtualRows) * int64(p.perTokenSum)
}

// FirstTokenProbability returns the probability that a sampled fault lands
// in the prefill pass under the time-uniform model.
func (p *Plan) FirstTokenProbability() float64 {
	return p.PrefillWeight / (p.PrefillWeight + float64(p.GenTokens-1))
}

// Sample draws a fault site: step by execution-time weight, then a uniform
// neuron within the step, then bit positions per the fault model.
func (p *Plan) Sample(rng *rand.Rand) Site {
	if rng.Float64() < p.FirstTokenProbability() {
		return p.SampleFirstToken(rng)
	}
	return p.SampleFollowing(rng)
}

// SampleFirstToken draws a site restricted to the prefill pass (step 0) —
// the Figure 11 campaign.
func (p *Plan) SampleFirstToken(rng *rand.Rand) Site {
	elem := int(rng.Int63n(int64(p.PromptLen) * int64(p.perTokenSum)))
	rowInStep := elem / p.perTokenSum
	return p.buildSite(0, rowInStep, elem%p.perTokenSum, rng)
}

// SampleFollowing draws a site restricted to the following-token steps
// (step >= 1), uniform over steps and neurons (every decode step has the
// same element count and the same time weight).
func (p *Plan) SampleFollowing(rng *rand.Rand) Site {
	if p.GenTokens < 2 {
		panic("fault: no following tokens to sample")
	}
	step := 1 + rng.Intn(p.GenTokens-1)
	return p.buildSite(step, 0, rng.Intn(p.perTokenSum), rng)
}

// buildSite resolves a per-token element offset to (layer, element) and
// draws the fault bits.
func (p *Plan) buildSite(step, rowInStep, offset int, rng *rand.Rand) Site {
	site := Site{Step: step}
	for i, w := range p.layerElems {
		if offset < w {
			site.Layer = p.layers[i]
			site.Elem = rowInStep*w + offset
			break
		}
		offset -= w
	}
	site.Bits = p.Model.PickBits(p.DType, rng)
	return site
}

// Injector corrupts exactly one neuron at the planned site. After the run,
// Fired reports whether the site was reached and Original/Corrupted record
// the value transition (for per-site forensics).
type Injector struct {
	Site  Site
	DType numerics.DType

	Fired     bool
	Original  float32
	Corrupted float32
}

// NewInjector builds an injector for a sampled site.
func NewInjector(site Site, d numerics.DType) *Injector {
	return &Injector{Site: site, DType: d}
}

// Reset clears the fired state so the injector can be reused across runs.
func (inj *Injector) Reset() {
	inj.Fired = false
	inj.Original = 0
	inj.Corrupted = 0
}

// Hook returns the forward hook performing the injection. It fires at most
// once per inference (single-fault assumption, Section 2.3) and only on
// linear-layer outputs.
func (inj *Injector) Hook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if inj.Fired || ctx.Site != model.SiteLinearOut ||
			ctx.Step != inj.Site.Step || ctx.Layer != inj.Site.Layer {
			return
		}
		if inj.Site.Elem >= len(out.Data) {
			// Defensive: a mis-planned element index must fail loudly, not
			// silently skip the injection and bias the campaign.
			panic(fmt.Sprintf("fault: element %d out of range %d at %v",
				inj.Site.Elem, len(out.Data), inj.Site))
		}
		inj.Fired = true
		inj.Original = out.Data[inj.Site.Elem]
		inj.Corrupted = numerics.CorruptValue(inj.Original, inj.DType, inj.Site.Bits)
		out.Data[inj.Site.Elem] = inj.Corrupted
	}
}
