package fault

import (
	"math"
	"math/rand"
	"testing"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func testCfg(t *testing.T) model.Config {
	t.Helper()
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestPlanTotalElements(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 10, 5, numerics.FP16, numerics.SingleBit, 1)
	perToken := 0
	for _, ref := range cfg.LinearLayers() {
		perToken += cfg.OutDim(ref.Kind)
	}
	want := int64(10+5-1) * int64(perToken)
	if got := p.TotalElements(); got != want {
		t.Errorf("TotalElements = %d, want %d", got, want)
	}
}

func TestPlanPanicsOnDegenerate(t *testing.T) {
	cfg := testCfg(t)
	for _, bad := range [][2]int{{0, 5}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%v) must panic", bad)
				}
			}()
			NewPlan(cfg, bad[0], bad[1], numerics.FP16, numerics.SingleBit, 1)
		}()
	}
}

func TestSampleSitesValid(t *testing.T) {
	cfg := testCfg(t)
	promptLen, gen := 8, 6
	p := NewPlan(cfg, promptLen, gen, numerics.FP16, numerics.ExponentBit, 2.5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s := p.Sample(rng)
		if s.Step < 0 || s.Step >= gen {
			t.Fatalf("step %d out of range", s.Step)
		}
		rows := model.StepRows(promptLen, s.Step)
		maxElem := rows * cfg.OutDim(s.Layer.Kind)
		if s.Elem < 0 || s.Elem >= maxElem {
			t.Fatalf("elem %d out of range %d at %v", s.Elem, maxElem, s)
		}
		if s.Layer.Block < 0 || s.Layer.Block >= cfg.Blocks {
			t.Fatalf("block out of range: %v", s)
		}
		if len(s.Bits) != 1 || s.Bits[0] < 10 || s.Bits[0] > 14 {
			t.Fatalf("EXP fault must flip one FP16 exponent bit, got %v", s.Bits)
		}
	}
}

func TestSampleCoversAllLayersAndSteps(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 6, 4, numerics.FP16, numerics.SingleBit, 2)
	rng := rand.New(rand.NewSource(2))
	layers := make(map[model.LayerRef]bool)
	steps := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		s := p.Sample(rng)
		layers[s.Layer] = true
		steps[s.Step] = true
	}
	if len(layers) != len(cfg.LinearLayers()) {
		t.Errorf("sampling covered %d layers, want %d", len(layers), len(cfg.LinearLayers()))
	}
	for s := 0; s < 4; s++ {
		if !steps[s] {
			t.Errorf("step %d never sampled", s)
		}
	}
}

// The prefill step must receive samples in proportion to its element count
// (promptLen rows vs 1 row per decode step).
func TestSampleStepWeighting(t *testing.T) {
	cfg := testCfg(t)
	promptLen, gen := 20, 5
	p := NewPlan(cfg, promptLen, gen, numerics.FP16, numerics.SingleBit, float64(promptLen))
	rng := rand.New(rand.NewSource(3))
	n := 20000
	step0 := 0
	for i := 0; i < n; i++ {
		if p.Sample(rng).Step == 0 {
			step0++
		}
	}
	wantFrac := float64(promptLen) / float64(promptLen+gen-1)
	gotFrac := float64(step0) / float64(n)
	if diff := gotFrac - wantFrac; diff > 0.02 || diff < -0.02 {
		t.Errorf("prefill sampling fraction %g, want ~%g", gotFrac, wantFrac)
	}
}

func TestSampleFirstTokenRestricted(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if s := p.SampleFirstToken(rng); s.Step != 0 {
			t.Fatalf("SampleFirstToken returned step %d", s.Step)
		}
	}
}

func TestSampleFollowingRestricted(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if s := p.SampleFollowing(rng); s.Step == 0 {
			t.Fatal("SampleFollowing returned step 0")
		}
	}
	p1 := NewPlan(cfg, 8, 1, numerics.FP16, numerics.SingleBit, 1)
	defer func() {
		if recover() == nil {
			t.Error("SampleFollowing with one token must panic")
		}
	}()
	p1.SampleFollowing(rng)
}

func TestInjectorFiresOnce(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 1, Layer: model.LayerRef{Block: 0, Kind: model.FC2}, Elem: 3, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6}, 4)
	if !inj.Fired {
		t.Fatal("injector never fired")
	}
	want := numerics.CorruptValue(inj.Original, numerics.FP16, []int{14})
	bothNaN := math.IsNaN(float64(want)) && math.IsNaN(float64(inj.Corrupted))
	if inj.Corrupted != want && !bothNaN {
		t.Errorf("corrupted=%g, want %g", inj.Corrupted, want)
	}
	inj.Reset()
	if inj.Fired || inj.Original != 0 {
		t.Error("Reset must clear state")
	}
}

func TestInjectorChangesActivation(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 0, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 10, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)

	var observed float32
	sawCorruption := false
	m.RegisterHook(inj.Hook())
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == site.Layer && ctx.Step == 0 && ctx.Site == model.SiteLinearOut {
			observed = out.Data[site.Elem]
			sawCorruption = true
		}
	})
	m.Generate([]int{4, 5, 6, 7}, 2)
	if !sawCorruption {
		t.Fatal("observer hook never fired")
	}
	bothNaN := math.IsNaN(float64(observed)) && math.IsNaN(float64(inj.Corrupted))
	if observed != inj.Corrupted && !bothNaN {
		t.Errorf("downstream hook saw %g, injector wrote %g", observed, inj.Corrupted)
	}
}

func TestInjectorPanicsOnBadElem(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 1, Layer: model.LayerRef{Block: 0, Kind: model.FC2}, Elem: 10_000_000, Bits: []int{0}}
	m.RegisterHook(NewInjector(site, numerics.FP16).Hook())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range element must panic")
		}
	}()
	m.Generate([]int{4, 5, 6}, 4)
}

func TestSiteString(t *testing.T) {
	s := Site{Step: 2, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 7, Bits: []int{3, 9}}
	if s.String() == "" {
		t.Error("Site.String empty")
	}
}

func TestSamplingDeterministicWithSeed(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.DoubleBit, 3)
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		sa, sb := p.Sample(a), p.Sample(b)
		if sa.Step != sb.Step || sa.Layer != sb.Layer || sa.Elem != sb.Elem {
			t.Fatal("sampling not deterministic under fixed seed")
		}
	}
}

// Time-weighted sampling: with prefill weight w, P(step 0) = w/(w+gen-1),
// matching the first-token execution-time fraction of Fig. 10.
func TestSampleTimeWeightedPrefill(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 20, 61, numerics.FP16, numerics.SingleBit, 3.2)
	wantP := 3.2 / (3.2 + 60)
	if got := p.FirstTokenProbability(); got != wantP {
		t.Fatalf("FirstTokenProbability = %g, want %g", got, wantP)
	}
	rng := rand.New(rand.NewSource(6))
	n := 30000
	step0 := 0
	for i := 0; i < n; i++ {
		if p.Sample(rng).Step == 0 {
			step0++
		}
	}
	got := float64(step0) / float64(n)
	if diff := got - wantP; diff > 0.01 || diff < -0.01 {
		t.Errorf("prefill sampling fraction %g, want ~%g", got, wantP)
	}
}

func TestNewPlanDefaultsWeight(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 0)
	if p.PrefillWeight != 1 {
		t.Errorf("default prefill weight = %g, want 1", p.PrefillWeight)
	}
}

// Within a step, the corrupted layer must be chosen in proportion to its
// output width (uniform over neurons).
func TestSampleLayerProportionalToWidth(t *testing.T) {
	cfg, err := model.ConfigByName("llama2-7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(cfg, 8, 4, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(8))
	counts := make(map[model.LayerKind]int)
	n := 30000
	for i := 0; i < n; i++ {
		counts[p.SampleFollowing(rng).Layer.Kind]++
	}
	perToken := 0
	for _, ref := range cfg.LinearLayers() {
		perToken += cfg.OutDim(ref.Kind)
	}
	for _, kind := range cfg.Family.LayerKinds() {
		want := float64(cfg.OutDim(kind)*cfg.Blocks) / float64(perToken)
		got := float64(counts[kind]) / float64(n)
		if diff := got - want; diff > 0.015 || diff < -0.015 {
			t.Errorf("%v sampled at %.3f, want %.3f", kind, got, want)
		}
	}
}
