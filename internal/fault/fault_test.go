package fault

import (
	"math"
	"math/rand"
	"testing"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func testCfg(t *testing.T) model.Config {
	t.Helper()
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestPlanTotalElements(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 10, 5, numerics.FP16, numerics.SingleBit, 1)
	perToken := 0
	for _, ref := range cfg.LinearLayers() {
		perToken += cfg.OutDim(ref.Kind)
	}
	want := int64(10+5-1) * int64(perToken)
	if got := p.TotalElements(); got != want {
		t.Errorf("TotalElements = %d, want %d", got, want)
	}
}

func TestPlanPanicsOnDegenerate(t *testing.T) {
	cfg := testCfg(t)
	for _, bad := range [][2]int{{0, 5}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%v) must panic", bad)
				}
			}()
			NewPlan(cfg, bad[0], bad[1], numerics.FP16, numerics.SingleBit, 1)
		}()
	}
}

func TestSampleSitesValid(t *testing.T) {
	cfg := testCfg(t)
	promptLen, gen := 8, 6
	p := NewPlan(cfg, promptLen, gen, numerics.FP16, numerics.ExponentBit, 2.5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s := p.Sample(rng)
		if s.Step < 0 || s.Step >= gen {
			t.Fatalf("step %d out of range", s.Step)
		}
		rows := model.StepRows(promptLen, s.Step)
		maxElem := rows * cfg.OutDim(s.Layer.Kind)
		if s.Elem < 0 || s.Elem >= maxElem {
			t.Fatalf("elem %d out of range %d at %v", s.Elem, maxElem, s)
		}
		if s.Layer.Block < 0 || s.Layer.Block >= cfg.Blocks {
			t.Fatalf("block out of range: %v", s)
		}
		if len(s.Bits) != 1 || s.Bits[0] < 10 || s.Bits[0] > 14 {
			t.Fatalf("EXP fault must flip one FP16 exponent bit, got %v", s.Bits)
		}
	}
}

func TestSampleCoversAllLayersAndSteps(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 6, 4, numerics.FP16, numerics.SingleBit, 2)
	rng := rand.New(rand.NewSource(2))
	layers := make(map[model.LayerRef]bool)
	steps := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		s := p.Sample(rng)
		layers[s.Layer] = true
		steps[s.Step] = true
	}
	if len(layers) != len(cfg.LinearLayers()) {
		t.Errorf("sampling covered %d layers, want %d", len(layers), len(cfg.LinearLayers()))
	}
	for s := 0; s < 4; s++ {
		if !steps[s] {
			t.Errorf("step %d never sampled", s)
		}
	}
}

// The prefill step must receive samples in proportion to its element count
// (promptLen rows vs 1 row per decode step).
func TestSampleStepWeighting(t *testing.T) {
	cfg := testCfg(t)
	promptLen, gen := 20, 5
	p := NewPlan(cfg, promptLen, gen, numerics.FP16, numerics.SingleBit, float64(promptLen))
	rng := rand.New(rand.NewSource(3))
	n := 20000
	step0 := 0
	for i := 0; i < n; i++ {
		if p.Sample(rng).Step == 0 {
			step0++
		}
	}
	wantFrac := float64(promptLen) / float64(promptLen+gen-1)
	gotFrac := float64(step0) / float64(n)
	if diff := gotFrac - wantFrac; diff > 0.02 || diff < -0.02 {
		t.Errorf("prefill sampling fraction %g, want ~%g", gotFrac, wantFrac)
	}
}

func TestSampleFirstTokenRestricted(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if s := p.SampleFirstToken(rng); s.Step != 0 {
			t.Fatalf("SampleFirstToken returned step %d", s.Step)
		}
	}
}

func TestSampleFollowingRestricted(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if s := p.SampleFollowing(rng); s.Step == 0 {
			t.Fatal("SampleFollowing returned step 0")
		}
	}
	p1 := NewPlan(cfg, 8, 1, numerics.FP16, numerics.SingleBit, 1)
	defer func() {
		if recover() == nil {
			t.Error("SampleFollowing with one token must panic")
		}
	}()
	p1.SampleFollowing(rng)
}

func TestInjectorFiresOnce(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 1, Layer: model.LayerRef{Block: 0, Kind: model.FC2}, Elem: 3, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6}, 4)
	if !inj.Fired {
		t.Fatal("injector never fired")
	}
	want := numerics.CorruptValue(inj.Original, numerics.FP16, []int{14})
	bothNaN := math.IsNaN(float64(want)) && math.IsNaN(float64(inj.Corrupted))
	if inj.Corrupted != want && !bothNaN {
		t.Errorf("corrupted=%g, want %g", inj.Corrupted, want)
	}
	inj.Reset()
	if inj.Fired || inj.Original != 0 {
		t.Error("Reset must clear state")
	}
}

func TestInjectorChangesActivation(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 0, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 10, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)

	var observed float32
	sawCorruption := false
	m.RegisterHook(inj.Hook())
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == site.Layer && ctx.Step == 0 && ctx.Site == model.SiteLinearOut {
			observed = out.Data[site.Elem]
			sawCorruption = true
		}
	})
	m.Generate([]int{4, 5, 6, 7}, 2)
	if !sawCorruption {
		t.Fatal("observer hook never fired")
	}
	bothNaN := math.IsNaN(float64(observed)) && math.IsNaN(float64(inj.Corrupted))
	if observed != inj.Corrupted && !bothNaN {
		t.Errorf("downstream hook saw %g, injector wrote %g", observed, inj.Corrupted)
	}
}

func TestInjectorPanicsOnBadElem(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	site := Site{Step: 1, Layer: model.LayerRef{Block: 0, Kind: model.FC2}, Elem: 10_000_000, Bits: []int{0}}
	m.RegisterHook(NewInjector(site, numerics.FP16).Hook())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range element must panic")
		}
	}()
	m.Generate([]int{4, 5, 6}, 4)
}

func TestSiteString(t *testing.T) {
	s := Site{Step: 2, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 7, Bits: []int{3, 9}}
	if s.String() == "" {
		t.Error("Site.String empty")
	}
}

func TestSamplingDeterministicWithSeed(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.DoubleBit, 3)
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		sa, sb := p.Sample(a), p.Sample(b)
		if sa.Step != sb.Step || sa.Layer != sb.Layer || sa.Elem != sb.Elem {
			t.Fatal("sampling not deterministic under fixed seed")
		}
	}
}

// Time-weighted sampling: with prefill weight w, P(step 0) = w/(w+gen-1),
// matching the first-token execution-time fraction of Fig. 10.
func TestSampleTimeWeightedPrefill(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 20, 61, numerics.FP16, numerics.SingleBit, 3.2)
	wantP := 3.2 / (3.2 + 60)
	if got := p.FirstTokenProbability(); got != wantP {
		t.Fatalf("FirstTokenProbability = %g, want %g", got, wantP)
	}
	rng := rand.New(rand.NewSource(6))
	n := 30000
	step0 := 0
	for i := 0; i < n; i++ {
		if p.Sample(rng).Step == 0 {
			step0++
		}
	}
	got := float64(step0) / float64(n)
	if diff := got - wantP; diff > 0.01 || diff < -0.01 {
		t.Errorf("prefill sampling fraction %g, want ~%g", got, wantP)
	}
}

func TestNewPlanDefaultsWeight(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 6, numerics.FP16, numerics.SingleBit, 0)
	if p.PrefillWeight != 1 {
		t.Errorf("default prefill weight = %g, want 1", p.PrefillWeight)
	}
}

// Within a step, the corrupted layer must be chosen in proportion to its
// output width (uniform over neurons).
func TestSampleLayerProportionalToWidth(t *testing.T) {
	cfg, err := model.ConfigByName("llama2-7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(cfg, 8, 4, numerics.FP16, numerics.SingleBit, 1)
	rng := rand.New(rand.NewSource(8))
	counts := make(map[model.LayerKind]int)
	n := 30000
	for i := 0; i < n; i++ {
		counts[p.SampleFollowing(rng).Layer.Kind]++
	}
	perToken := 0
	for _, ref := range cfg.LinearLayers() {
		perToken += cfg.OutDim(ref.Kind)
	}
	for _, kind := range cfg.Family.LayerKinds() {
		want := float64(cfg.OutDim(kind)*cfg.Blocks) / float64(perToken)
		got := float64(counts[kind]) / float64(n)
		if diff := got - want; diff > 0.015 || diff < -0.015 {
			t.Errorf("%v sampled at %.3f, want %.3f", kind, got, want)
		}
	}
}

func TestSiteStringTargets(t *testing.T) {
	base := Site{Step: 3, Layer: model.LayerRef{Block: 1, Kind: model.VProj}, Elem: 7, Bits: []int{14}}
	act := base
	if s := act.String(); s != "step=3 block1.V_PROJ elem=7 bits=[14]" {
		t.Errorf("activation form changed: %q", s)
	}
	w := base
	w.Target = TargetWeight
	if s := w.String(); s != "weight step=3 block1.V_PROJ elem=7 bits=[14]" {
		t.Errorf("weight form: %q", s)
	}
	kv := base
	kv.Target = TargetKVCache
	if s := kv.String(); s != "kv step=3 block1.V_PROJ elem=7 bits=[14]" {
		t.Errorf("kv form: %q", s)
	}
	for want, tgt := range map[string]Target{
		"activation": TargetActivation, "weight": TargetWeight, "kv": TargetKVCache,
	} {
		if tgt.String() != want {
			t.Errorf("Target(%d).String() = %q, want %q", tgt, tgt.String(), want)
		}
	}
}

// A mixed plan must route samples per the mix, keep every site in range for
// its target kind, and stay deterministic under a fixed seed.
func TestSampleTargetMix(t *testing.T) {
	cfg := testCfg(t)
	promptLen, gen := 8, 6
	p := NewPlan(cfg, promptLen, gen, numerics.FP16, numerics.SingleBit, 1)
	p.Mix = TargetMix{Weight: 0.3, KV: 0.2}
	rng := rand.New(rand.NewSource(11))
	counts := map[Target]int{}
	n := 8000
	for i := 0; i < n; i++ {
		s := p.Sample(rng)
		counts[s.Target]++
		switch s.Target {
		case TargetWeight:
			w := cfg.OutDim(s.Layer.Kind) * cfg.InDim(s.Layer.Kind)
			if s.Elem < 0 || s.Elem >= w {
				t.Fatalf("weight elem %d out of range %d at %v", s.Elem, w, s)
			}
			if s.Step < 0 || s.Step >= gen {
				t.Fatalf("weight step out of range: %v", s)
			}
		case TargetKVCache:
			if s.Step < 1 || s.Step >= gen {
				t.Fatalf("kv step out of range: %v", s)
			}
			if s.Layer.Kind != model.KProj && s.Layer.Kind != model.VProj {
				t.Fatalf("kv must target K or V slab: %v", s)
			}
			resident := promptLen + s.Step - 1
			if pos := s.Elem / cfg.Hidden; pos < 0 || pos >= resident {
				t.Fatalf("kv position %d beyond %d resident rows: %v", pos, resident, s)
			}
		default:
			rows := model.StepRows(promptLen, s.Step)
			if s.Elem < 0 || s.Elem >= rows*cfg.OutDim(s.Layer.Kind) {
				t.Fatalf("activation elem out of range: %v", s)
			}
		}
	}
	for tgt, want := range map[Target]float64{TargetWeight: 0.3, TargetKVCache: 0.2, TargetActivation: 0.5} {
		got := float64(counts[tgt]) / float64(n)
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("target %v fraction %.3f, want ~%.2f", tgt, got, want)
		}
	}
	// Determinism: the same seed replays the same site sequence.
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		sa, sb := p.Sample(a), p.Sample(b)
		if sa.String() != sb.String() {
			t.Fatalf("sampling not deterministic: %v vs %v", sa, sb)
		}
	}
}

func TestSampleKVNeedsDecodeSteps(t *testing.T) {
	cfg := testCfg(t)
	p := NewPlan(cfg, 8, 1, numerics.FP16, numerics.SingleBit, 1)
	defer func() {
		if recover() == nil {
			t.Error("SampleKV with one token must panic")
		}
	}()
	p.SampleKV(rand.New(rand.NewSource(1)))
}

func TestInjectorWeightFireAndRevert(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	ref := model.LayerRef{Block: 0, Kind: model.VProj}
	site := Site{Target: TargetWeight, Step: 1, Layer: ref, Elem: 5, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)
	inj.M = m
	clean := m.Weight(ref).Data[site.Elem]
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6}, 3)
	if !inj.Fired {
		t.Fatal("weight injector never fired")
	}
	if inj.Original != clean {
		t.Errorf("recorded original %g, weight was %g", inj.Original, clean)
	}
	if got := m.Weight(ref).Data[site.Elem]; got != inj.Corrupted {
		t.Errorf("weight holds %g after run, want corrupted %g", got, inj.Corrupted)
	}
	inj.Revert()
	if got := m.Weight(ref).Data[site.Elem]; got != clean {
		t.Errorf("Revert left %g, want %g", got, clean)
	}
	inj.Revert() // idempotent
	if got := m.Weight(ref).Data[site.Elem]; got != clean {
		t.Errorf("second Revert corrupted the weight: %g", got)
	}
}

// A persistent weight flip must change the weight checksum and be restored
// exactly by Revert — the scrub contract the serving layer relies on.
func TestInjectorWeightChecksumRoundTrip(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	before := m.WeightChecksum()
	site := Site{Target: TargetWeight, Step: 0, Layer: model.LayerRef{Block: 1, Kind: model.FC1}, Elem: 9, Bits: []int{14}}
	inj := NewInjector(site, numerics.FP16)
	inj.M = m
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6}, 2)
	m.ClearHooks()
	if !inj.Fired {
		t.Fatal("never fired")
	}
	if m.WeightChecksum() == before {
		t.Error("checksum unchanged by weight corruption")
	}
	inj.Revert()
	if m.WeightChecksum() != before {
		t.Error("checksum not restored by Revert")
	}
}

func TestInjectorKVFires(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	promptLen := 4
	pos, col := 2, cfg.Hidden-1
	site := Site{
		Target: TargetKVCache, Step: 2,
		Layer: model.LayerRef{Block: 1, Kind: model.VProj},
		Elem:  pos*cfg.Hidden + col, Bits: []int{14},
	}
	inj := NewInjector(site, numerics.FP16)
	inj.M = m
	m.RegisterHook(inj.Hook())
	m.Generate([]int{4, 5, 6, 7}, 4)
	if !inj.Fired {
		t.Fatal("kv injector never fired")
	}
	_, v, rows := m.State().KVSlabs(1)
	if rows != promptLen+4-1 {
		t.Fatalf("unexpected resident rows %d", rows)
	}
	hd := cfg.HeadDim()
	off := (col/hd*cfg.MaxSeq+pos)*hd + col%hd
	bothNaN := math.IsNaN(float64(v[off])) && math.IsNaN(float64(inj.Corrupted))
	if v[off] != inj.Corrupted && !bothNaN {
		t.Errorf("slab holds %g, injector wrote %g", v[off], inj.Corrupted)
	}
}

// A KV flip changes the session's continuation but not the weights — and a
// fresh generation (fresh state) is clean again.
func TestInjectorKVTransient(t *testing.T) {
	cfg := testCfg(t)
	m := model.MustNew(cfg, 7, numerics.FP16)
	prompt := []int{4, 5, 6, 7}
	golden := append([]int(nil), m.Generate(prompt, 6)...)
	before := m.WeightChecksum()
	site := Site{
		Target: TargetKVCache, Step: 1,
		Layer: model.LayerRef{Block: 0, Kind: model.KProj},
		Elem:  1*cfg.Hidden + 3, Bits: []int{14},
	}
	inj := NewInjector(site, numerics.FP16)
	inj.M = m
	m.RegisterHook(inj.Hook())
	m.Generate(prompt, 6)
	m.ClearHooks()
	if !inj.Fired {
		t.Fatal("never fired")
	}
	if m.WeightChecksum() != before {
		t.Error("kv fault must not touch weights")
	}
	again := m.Generate(prompt, 6)
	if len(again) != len(golden) {
		t.Fatalf("clean rerun length %d vs %d", len(again), len(golden))
	}
	for i := range golden {
		if golden[i] != again[i] {
			t.Fatalf("clean rerun diverged at %d after kv fault", i)
		}
	}
}
