package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
)

// One small zoo model per family: the round-trip battery must cover every
// architecture the wire format can carry.
var familyModels = []string{"opt-2.7b-sim", "gptj-6b-sim", "qwen2-1.5b-sim"}

func testPrompt() []int {
	p := make([]int, 12)
	for i := range p {
		p[i] = (i*37 + 5) % 384
	}
	return p
}

// captureSession runs a protected generation a few steps past prefill and
// returns the model config, the live model (positioned mid-generation), its
// checkpoint, and the captured fork state.
func captureSession(t *testing.T, name string, steps int) (model.Config, *model.Model, *model.Snapshot, core.ForkState) {
	t.Helper()
	cfg, err := model.ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(cfg, 7, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	f := core.New(m, core.Defaults())
	f.Reset()
	f.Install()
	tok := m.Prefill(testPrompt())
	for i := 0; i < steps; i++ {
		tok = m.DecodeStep(tok)
	}
	snap := &model.Snapshot{}
	m.Checkpoint(snap)
	return cfg, m, snap, f.CaptureForkState()
}

func encodeSession(t *testing.T, name string) ([]byte, model.Config) {
	t.Helper()
	cfg, _, snap, fk := captureSession(t, name, 4)
	blob, err := EncodeSession(snap, &fk)
	if err != nil {
		t.Fatal(err)
	}
	return blob, cfg
}

// TestRoundTripBitIdentity is the core contract: for every model family,
// encode→decode→encode reproduces the same bytes, the decoded fork state
// matches field for field, and a fresh model restored from the decoded
// snapshot continues the generation bit-identically to the original.
func TestRoundTripBitIdentity(t *testing.T) {
	const extra = 12
	for _, name := range familyModels {
		t.Run(name, func(t *testing.T) {
			cfg, m, snap, fk := captureSession(t, name, 4)
			blob, err := EncodeSession(snap, &fk)
			if err != nil {
				t.Fatal(err)
			}
			snap2, fk2, err := DecodeSession(blob)
			if err != nil {
				t.Fatal(err)
			}
			if fk2 == nil {
				t.Fatal("fork state dropped in round trip")
			}
			if fk2.FirstTokenNaN != fk.FirstTokenNaN || fk2.Stats != fk.Stats || fk2.ByKind != fk.ByKind {
				t.Fatalf("fork counters changed: %+v != %+v", fk2, fk)
			}
			got, want := fk2.Bounds.SortedEntries(), fk.Bounds.SortedEntries()
			if len(got) != len(want) {
				t.Fatalf("bounds entries %d != %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("bounds entry %d changed: %+v != %+v", i, got[i], want[i])
				}
			}
			blob2, err := EncodeSession(snap2, fk2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("re-encoding the decoded session is not bit-identical")
			}

			// Continue the original generation, then replay it from the
			// decoded snapshot on a fresh protected model.
			tok := snap.LastToken()
			var ref []int
			for i := 0; i < extra; i++ {
				tok = m.DecodeStep(tok)
				ref = append(ref, tok)
			}
			m2, err := model.New(cfg, 7, numerics.FP16)
			if err != nil {
				t.Fatal(err)
			}
			f2 := core.New(m2, core.Defaults())
			f2.ResumeFork(*fk2)
			f2.Install()
			tok = m2.Restore(snap2)
			for i := 0; i < extra; i++ {
				tok = m2.DecodeStep(tok)
				if tok != ref[i] {
					t.Fatalf("restored continuation diverged at step %d: %d != %d", i, tok, ref[i])
				}
			}
		})
	}
}

// TestBareSessionRoundTrip checks the unprotected path: no fork state in,
// none out.
func TestBareSessionRoundTrip(t *testing.T) {
	_, _, snap, _ := captureSession(t, "qwen2-1.5b-sim", 3)
	blob, err := EncodeSession(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap2, fk, err := DecodeSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fk != nil {
		t.Fatal("bare session decoded with a fork state")
	}
	if snap2.NextStep() != snap.NextStep() || snap2.LastToken() != snap.LastToken() || snap2.Rows() != snap.Rows() {
		t.Fatalf("snapshot bookkeeping changed: step %d tok %d rows %d", snap2.NextStep(), snap2.LastToken(), snap2.Rows())
	}
}

func TestEmptySnapshotRejected(t *testing.T) {
	if _, err := EncodeSession(&model.Snapshot{}, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty snapshot: got %v, want ErrMalformed", err)
	}
	if _, err := EncodeSession(nil, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("nil snapshot: got %v, want ErrMalformed", err)
	}
}

// TestTruncation decodes every proper prefix of a valid blob: each must
// fail with a typed error and never panic.
func TestTruncation(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	for n := 0; n < len(blob); n++ {
		_, _, err := DecodeSession(blob[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMalformed) &&
			!errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
}

// TestBitFlips flips one bit in every byte of a valid blob: the CRC (or an
// earlier header check) must reject every corruption.
func TestBitFlips(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	mut := make([]byte, len(blob))
	for i := 0; i < len(blob); i++ {
		copy(mut, blob)
		mut[i] ^= 1 << (i % 8)
		if _, _, err := DecodeSession(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestVersionBump(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	mut := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(mut[4:], Version+1)
	fixCRC(mut)
	if _, _, err := DecodeSession(mut); !errors.Is(err, ErrVersion) {
		t.Fatalf("version bump: got %v, want ErrVersion", err)
	}
}

func TestBadMagic(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	mut := append([]byte(nil), blob...)
	mut[0] = 'X'
	if _, _, err := DecodeSession(mut); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	if _, _, err := DecodeSession(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing garbage: got %v, want ErrTruncated", err)
	}
}

// TestHeaderFingerprintLie rewrites the header fingerprint (CRC fixed up):
// the decoder must notice it disagrees with the payload's architecture.
func TestHeaderFingerprintLie(t *testing.T) {
	blob, _ := encodeSession(t, "qwen2-1.5b-sim")
	mut := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(mut[8:], 0xdeadbeef)
	fixCRC(mut)
	if _, _, err := DecodeSession(mut); !errors.Is(err, ErrMalformed) {
		t.Fatalf("fingerprint lie: got %v, want ErrMalformed", err)
	}
}

// TestWrongFamily rejects adopting a blob captured from a different
// architecture before the payload is decoded.
func TestWrongFamily(t *testing.T) {
	blob, _ := encodeSession(t, "opt-2.7b-sim")
	other, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSessionFor(blob, other); !errors.Is(err, ErrArchMismatch) {
		t.Fatalf("wrong family: got %v, want ErrArchMismatch", err)
	}
	own, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSessionFor(blob, own); err != nil {
		t.Fatalf("matching family rejected: %v", err)
	}
}

func TestInspect(t *testing.T) {
	blob, cfg := encodeSession(t, "gptj-6b-sim")
	h, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || !h.HasFork || h.Fingerprint != cfg.ArchFingerprint() {
		t.Fatalf("bad header %+v", h)
	}
	if h.PayloadLen != len(blob)-28 {
		t.Fatalf("payload length %d, blob %d", h.PayloadLen, len(blob))
	}
}

// FuzzDecodeSession is the never-panic property: any byte soup must come
// back as an error or a valid session, no panics, no unbounded allocation.
func FuzzDecodeSession(f *testing.F) {
	cfg, _, snap, fk := captureSessionF(f)
	blob, err := EncodeSession(snap, &fk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Add(blob[:28])
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, _, err := DecodeSession(data)
		if err == nil {
			if err := snap.Compatible(cfg); err == nil {
				_ = snap.Rows()
			}
		}
	})
}

// captureSessionF is captureSession for fuzz seeds (testing.F lacks the
// *testing.T helpers).
func captureSessionF(f *testing.F) (model.Config, *model.Model, *model.Snapshot, core.ForkState) {
	cfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		f.Fatal(err)
	}
	m, err := model.New(cfg, 7, numerics.FP16)
	if err != nil {
		f.Fatal(err)
	}
	ctl := core.New(m, core.Defaults())
	ctl.Reset()
	ctl.Install()
	tok := m.Prefill(testPrompt())
	for i := 0; i < 3; i++ {
		tok = m.DecodeStep(tok)
	}
	snap := &model.Snapshot{}
	m.Checkpoint(snap)
	return cfg, m, snap, ctl.CaptureForkState()
}

func fixCRC(blob []byte) {
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], crc32.ChecksumIEEE(blob[:len(blob)-4]))
}
