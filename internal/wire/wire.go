// Package wire defines the versioned, self-describing binary envelope that
// carries a serving session's resumable state — a model.Snapshot plus, for
// protected sessions, the core.ForkState — between processes (live
// migration through ft2router) and to disk (durable session parking).
//
// Envelope layout (little-endian):
//
//	offset  size  field
//	0       4     magic "FT2W" (0x46543257)
//	4       2     version (currently 1)
//	6       2     flags (bit 0: payload carries a ForkState)
//	8       8     architecture fingerprint (Snapshot.ArchFingerprint)
//	16      8     payload length in bytes
//	24      n     payload: wire-encoded Snapshot [+ ForkState]
//	24+n    4     CRC-32 (IEEE) over bytes [0, 24+n)
//
// The fingerprint lets a receiver reject a blob captured from a different
// model architecture before touching the payload; the CRC catches
// truncation and corruption. Decoding is total: any input — truncated,
// bit-flipped, version-bumped, adversarial — yields a typed error, never a
// panic, and no allocation is sized from an unvalidated header field.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ft2/internal/core"
	"ft2/internal/model"
)

const (
	// Magic identifies an FT2 session blob ("FT2W" little-endian).
	Magic = 0x46543257
	// Version is the envelope version this build reads and writes.
	Version = 1

	headerSize  = 24
	trailerSize = 4

	flagForkState = 1 << 0
)

// Typed decode failures. Callers branch with errors.Is; every decode error
// wraps exactly one of these.
var (
	ErrTruncated    = errors.New("wire: truncated session blob")
	ErrBadMagic     = errors.New("wire: not an FT2 session blob")
	ErrVersion      = errors.New("wire: unsupported envelope version")
	ErrChecksum     = errors.New("wire: checksum mismatch (corrupted blob)")
	ErrArchMismatch = errors.New("wire: snapshot architecture does not match model")
	ErrMalformed    = errors.New("wire: malformed session payload")
)

// Header is the parsed envelope prefix Inspect returns.
type Header struct {
	Version     int
	HasFork     bool
	Fingerprint uint64
	PayloadLen  int
}

// EncodeSession serializes a captured snapshot (and, when fk is non-nil,
// the protected session's FT2 fork state) into a self-describing envelope.
// The encoding is canonical: the same state always yields the same bytes.
func EncodeSession(snap *model.Snapshot, fk *core.ForkState) ([]byte, error) {
	if snap == nil || snap.Rows() == 0 {
		return nil, fmt.Errorf("%w: empty snapshot", ErrMalformed)
	}
	var flags uint16
	payload := model.AppendSnapshot(nil, snap)
	if fk != nil {
		flags |= flagForkState
		payload = core.AppendForkState(payload, fk)
	}
	buf := make([]byte, headerSize, headerSize+len(payload)+trailerSize)
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint16(buf[4:], Version)
	binary.LittleEndian.PutUint16(buf[6:], flags)
	binary.LittleEndian.PutUint64(buf[8:], snap.ArchFingerprint())
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(payload)))
	buf = append(buf, payload...)
	var crc [trailerSize]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...), nil
}

// Inspect parses and validates the envelope header without decoding the
// payload — enough to answer "is this an FT2 blob, for which architecture,
// how big" cheaply.
func Inspect(data []byte) (Header, error) {
	var h Header
	if len(data) < headerSize+trailerSize {
		return h, fmt.Errorf("%w: %d bytes, envelope needs at least %d", ErrTruncated, len(data), headerSize+trailerSize)
	}
	if m := binary.LittleEndian.Uint32(data); m != Magic {
		return h, fmt.Errorf("%w: magic %#x", ErrBadMagic, m)
	}
	h.Version = int(binary.LittleEndian.Uint16(data[4:]))
	if h.Version != Version {
		return h, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, h.Version, Version)
	}
	flags := binary.LittleEndian.Uint16(data[6:])
	h.HasFork = flags&flagForkState != 0
	if flags&^uint16(flagForkState) != 0 {
		return h, fmt.Errorf("%w: unknown flags %#x", ErrMalformed, flags)
	}
	h.Fingerprint = binary.LittleEndian.Uint64(data[8:])
	plen := binary.LittleEndian.Uint64(data[16:])
	if plen != uint64(len(data)-headerSize-trailerSize) {
		return h, fmt.Errorf("%w: payload length %d, envelope carries %d", ErrTruncated, plen, len(data)-headerSize-trailerSize)
	}
	h.PayloadLen = int(plen)
	return h, nil
}

// DecodeSession parses an envelope back into the snapshot and optional fork
// state. The returned fork state is nil iff the blob was encoded without
// one.
func DecodeSession(data []byte) (*model.Snapshot, *core.ForkState, error) {
	return decode(data, nil)
}

// DecodeSessionFor is DecodeSession plus an architecture gate: the blob's
// fingerprint must match cfg, otherwise ErrArchMismatch — the check a
// worker runs before adopting a migrated session.
func DecodeSessionFor(data []byte, cfg model.Config) (*model.Snapshot, *core.ForkState, error) {
	return decode(data, &cfg)
}

func decode(data []byte, cfg *model.Config) (*model.Snapshot, *core.ForkState, error) {
	h, err := Inspect(data)
	if err != nil {
		return nil, nil, err
	}
	body := data[:headerSize+h.PayloadLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, nil, fmt.Errorf("%w: crc32 %#08x, trailer says %#08x", ErrChecksum, got, want)
	}
	if cfg != nil && h.Fingerprint != cfg.ArchFingerprint() {
		return nil, nil, fmt.Errorf("%w: blob fingerprint %#016x, %s wants %#016x",
			ErrArchMismatch, h.Fingerprint, cfg.Name, cfg.ArchFingerprint())
	}
	payload := body[headerSize:]
	snap, n, err := model.DecodeSnapshot(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if snap.ArchFingerprint() != h.Fingerprint {
		return nil, nil, fmt.Errorf("%w: header fingerprint %#016x != payload architecture %#016x",
			ErrMalformed, h.Fingerprint, snap.ArchFingerprint())
	}
	var fk *core.ForkState
	if h.HasFork {
		st, m, err := core.DecodeForkState(payload[n:])
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		n += m
		fk = &st
	}
	if n != len(payload) {
		return nil, nil, fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, len(payload)-n)
	}
	return snap, fk, nil
}
