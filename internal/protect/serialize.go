package protect

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ft2/internal/model"
)

// boundsFile is the on-disk JSON schema of a bounds store. Offline
// profiling is expensive (Figure 4: up to hundreds of GPU-hours on the
// reference hardware), so persisting the result is part of the baseline
// workflow this package reproduces.
type boundsFile struct {
	Version int           `json:"version"`
	Entries []boundsEntry `json:"entries"`
}

type boundsEntry struct {
	Block int     `json:"block"`
	Kind  string  `json:"kind"`
	Site  string  `json:"site"`
	Lo    float32 `json:"lo"`
	Hi    float32 `json:"hi"`
}

const boundsFileVersion = 1

// Save writes the store as JSON, sorted for reproducible output.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	entries := make([]boundsEntry, 0, len(s.m))
	for k, b := range s.m {
		entries = append(entries, boundsEntry{
			Block: k.Layer.Block,
			Kind:  k.Layer.Kind.String(),
			Site:  k.Site.String(),
			Lo:    b.Lo,
			Hi:    b.Hi,
		})
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Site < b.Site
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(boundsFile{Version: boundsFileVersion, Entries: entries})
}

// LoadStore reads a store previously written by Save. Unknown layer kinds
// or sites are an error: bounds protect specific hook points, and silently
// dropping one would weaken coverage.
func LoadStore(r io.Reader) (*Store, error) {
	var f boundsFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("protect: decoding bounds: %w", err)
	}
	if f.Version != boundsFileVersion {
		return nil, fmt.Errorf("protect: unsupported bounds file version %d", f.Version)
	}
	s := NewStore()
	for _, e := range f.Entries {
		kind, err := parseLayerKind(e.Kind)
		if err != nil {
			return nil, err
		}
		site, err := parseSite(e.Site)
		if err != nil {
			return nil, err
		}
		if e.Lo > e.Hi {
			return nil, fmt.Errorf("protect: inverted bounds [%g,%g] for %s/%s", e.Lo, e.Hi, e.Kind, e.Site)
		}
		s.Set(SiteKey{
			Layer: model.LayerRef{Block: e.Block, Kind: kind},
			Site:  site,
		}, Bounds{Lo: e.Lo, Hi: e.Hi})
	}
	return s, nil
}

func parseLayerKind(s string) (model.LayerKind, error) {
	for _, k := range model.AllLayerKinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("protect: unknown layer kind %q", s)
}

func parseSite(s string) (model.Site, error) {
	switch s {
	case model.SiteLinearOut.String():
		return model.SiteLinearOut, nil
	case model.SiteActivationOut.String():
		return model.SiteActivationOut, nil
	default:
		return 0, fmt.Errorf("protect: unknown site %q", s)
	}
}
