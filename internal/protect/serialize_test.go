package protect

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ft2/internal/model"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Set(SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.VProj}, Site: model.SiteLinearOut}, Bounds{-1.5, 2.25})
	s.Set(SiteKey{Layer: model.LayerRef{Block: 3, Kind: model.DownProj}, Site: model.SiteLinearOut}, Bounds{-8, 8})
	s.Set(SiteKey{Layer: model.LayerRef{Block: 1, Kind: model.FC1}, Site: model.SiteActivationOut}, Bounds{0, 4})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), s.Len())
	}
	for _, k := range []SiteKey{
		{Layer: model.LayerRef{Block: 0, Kind: model.VProj}, Site: model.SiteLinearOut},
		{Layer: model.LayerRef{Block: 3, Kind: model.DownProj}, Site: model.SiteLinearOut},
		{Layer: model.LayerRef{Block: 1, Kind: model.FC1}, Site: model.SiteActivationOut},
	} {
		want, _ := s.Get(k)
		got, ok := loaded.Get(k)
		if !ok || got != want {
			t.Errorf("%v: got %v ok=%v, want %v", k, got, ok, want)
		}
	}
}

// Property: round-tripping a randomly populated store preserves every bound
// exactly (float32 values survive JSON).
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		for i := 0; i < int(n%24); i++ {
			lo := float32(rng.NormFloat64() * 10)
			hi := lo + float32(rng.Float64()*20)
			s.Set(SiteKey{
				Layer: model.LayerRef{Block: rng.Intn(8), Kind: model.AllLayerKinds[rng.Intn(len(model.AllLayerKinds))]},
				Site:  model.Site(rng.Intn(2)),
			}, Bounds{lo, hi})
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadStore(&buf)
		if err != nil {
			return false
		}
		return loaded.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSaveDeterministicOrder(t *testing.T) {
	build := func(order []model.LayerKind) string {
		s := NewStore()
		for _, k := range order {
			s.Set(SiteKey{Layer: model.LayerRef{Block: 0, Kind: k}, Site: model.SiteLinearOut}, Bounds{-1, 1})
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]model.LayerKind{model.VProj, model.FC2, model.KProj})
	b := build([]model.LayerKind{model.KProj, model.VProj, model.FC2})
	if a != b {
		t.Error("Save output must be insertion-order independent")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"bad version":  `{"version": 99, "entries": []}`,
		"unknown kind": `{"version": 1, "entries": [{"block":0,"kind":"BOGUS","site":"linear_out","lo":0,"hi":1}]}`,
		"unknown site": `{"version": 1, "entries": [{"block":0,"kind":"V_PROJ","site":"bogus","lo":0,"hi":1}]}`,
		"inverted":     `{"version": 1, "entries": [{"block":0,"kind":"V_PROJ","site":"linear_out","lo":5,"hi":1}]}`,
	}
	for name, in := range cases {
		if _, err := LoadStore(strings.NewReader(in)); err == nil {
			t.Errorf("%s: LoadStore must reject it", name)
		}
	}
}

func TestLoadEmpty(t *testing.T) {
	s, err := LoadStore(strings.NewReader(`{"version":1,"entries":[]}`))
	if err != nil || s.Len() != 0 {
		t.Errorf("empty file must load to empty store: %v", err)
	}
}
