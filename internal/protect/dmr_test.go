package protect

import (
	"testing"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func TestDMRCorrectsAnyLinearFault(t *testing.T) {
	m := testModel(t)
	prompt := []int{4, 5, 6, 7}
	clean := m.Generate(prompt, 8)

	// Inject an *in-bound* small corruption — undetectable by range
	// restriction, but DMR's recompute catches it.
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (model.LayerRef{Block: 0, Kind: model.VProj}) && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
			out.Data[0] += 0.25
		}
	})
	d := NewDMR(m)
	m.RegisterHook(d.Hook())
	protected := m.Generate(prompt, 8)
	m.ClearHooks()

	for i := range clean {
		if clean[i] != protected[i] {
			t.Fatalf("DMR failed to restore the clean generation at %d", i)
		}
	}
	if d.Detected != 1 {
		t.Errorf("DMR detected %d corruptions, want exactly 1", d.Detected)
	}
}

func TestDMRCoverageRestriction(t *testing.T) {
	m := testModel(t)
	prompt := []int{4, 5, 6}

	// Corrupt FC2 but only cover V_PROJ: the fault must slip through.
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer.Kind == model.FC2 && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
			out.Data[0] = 30000
		}
	})
	d := NewDMR(m, model.VProj)
	m.RegisterHook(d.Hook())
	m.Generate(prompt, 4)
	m.ClearHooks()
	if d.Detected != 0 {
		t.Errorf("restricted DMR corrected %d values outside its coverage", d.Detected)
	}
}

func TestDMRFaultFreeSilent(t *testing.T) {
	m := testModel(t)
	d := NewDMR(m)
	m.RegisterHook(d.Hook())
	m.Generate([]int{4, 5, 6, 7}, 8)
	m.ClearHooks()
	if d.Detected != 0 {
		t.Errorf("DMR flagged %d values in a fault-free run (recompute must be bit-identical)", d.Detected)
	}
}

func TestRecomputeLinearMatchesForward(t *testing.T) {
	m := testModel(t)
	var captured *tensor.Tensor
	var capturedIn *tensor.Tensor
	ref := model.LayerRef{Block: 1, Kind: model.FC1}
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == ref && ctx.Step == 0 && ctx.Site == model.SiteLinearOut {
			captured = out.Clone()
			capturedIn = ctx.Input.Clone()
		}
	})
	m.Generate([]int{4, 5, 6}, 1)
	m.ClearHooks()
	if captured == nil {
		t.Fatal("hook never captured the layer")
	}
	re := m.RecomputeLinear(ref, capturedIn)
	if !re.Equal(captured) {
		t.Error("RecomputeLinear must reproduce the forward output exactly")
	}
}

func TestRecomputeLinearPanics(t *testing.T) {
	m := testModel(t)
	x := tensor.New(1, m.Cfg.Hidden)
	for name, ref := range map[string]model.LayerRef{
		"bad block":   {Block: 99, Kind: model.VProj},
		"absent kind": {Block: 0, Kind: model.DownProj}, // OPT family has no DownProj
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			m.RecomputeLinear(ref, x)
		}()
	}
}

func BenchmarkDMRGenerate(b *testing.B) {
	cfg, err := model.ConfigByName("llama2-7b-sim")
	if err != nil {
		b.Fatal(err)
	}
	m := model.MustNew(cfg, 1, numerics.FP16)
	d := NewDMR(m)
	m.RegisterHook(d.Hook())
	prompt := []int{4, 5, 6, 7, 8, 9, 10, 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(prompt, 16)
	}
}

func TestDMRCorrectsExtremeAndNaN(t *testing.T) {
	m := testModel(t)
	prompt := []int{4, 5, 6, 7}
	clean := m.Generate(prompt, 8)

	nan := float32(0)
	nan /= nan
	for name, v := range map[string]float32{"extreme": 48000, "NaN": nan} {
		m.ClearHooks()
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer.Kind == model.OutProj && ctx.Layer.Block == 1 && ctx.Step == 2 && ctx.Site == model.SiteLinearOut {
				out.Data[3] = v
			}
		})
		d := NewDMR(m)
		m.RegisterHook(d.Hook())
		got := m.Generate(prompt, 8)
		m.ClearHooks()
		for i := range clean {
			if got[i] != clean[i] {
				t.Fatalf("%s: DMR failed to restore generation", name)
			}
		}
		if d.Detected != 1 {
			t.Errorf("%s: detected %d, want 1", name, d.Detected)
		}
	}
}
