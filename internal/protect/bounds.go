// Package protect implements range-restriction protection for the
// transformer engine: per-layer activation bounds, the fused
// clamp+NaN-correction operator (the paper's torch.clamp/nan_to_num fusion),
// an offline bound profiler (the expensive baseline workflow), and
// hook-based protectors configured per method coverage.
package protect

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

// Bounds is the protected range of one layer's activations. Only two scalar
// values per layer are stored — the paper's 288–512 byte total memory
// overhead.
type Bounds struct {
	Lo, Hi float32
}

// Contains reports whether v lies inside the bounds (NaN never does).
func (b Bounds) Contains(v float32) bool {
	return v >= b.Lo && v <= b.Hi // NaN comparisons are false
}

// Scale widens the bounds by factor s ≥ 1 — the paper's bound scaling
// (Section 4.2.1, factor 2 in FT2). The interval always grows: a negative
// lower bound is multiplied by s, a positive one divided by s (and
// symmetrically for the upper bound), so limited first-token data never
// yields a *tighter* range after scaling.
func (b Bounds) Scale(s float32) Bounds {
	out := b
	if out.Lo <= 0 {
		out.Lo *= s
	} else {
		out.Lo /= s
	}
	if out.Hi >= 0 {
		out.Hi *= s
	} else {
		out.Hi /= s
	}
	return out
}

// Widen returns bounds covering both b and o.
func (b Bounds) Widen(o Bounds) Bounds {
	out := b
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	return out
}

// Store maps protected sites to bounds. A zero-value Store is empty and
// ready to use through Observe/Set.
type Store struct {
	mu sync.RWMutex
	m  map[SiteKey]Bounds
}

// SiteKey addresses a protected site (layer instance + hook site).
type SiteKey struct {
	Layer model.LayerRef
	Site  model.Site
}

// NewStore returns an empty bounds store.
func NewStore() *Store { return &Store{m: make(map[SiteKey]Bounds)} }

// Set stores bounds for a site.
func (s *Store) Set(k SiteKey, b Bounds) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[SiteKey]Bounds)
	}
	s.m[k] = b
}

// Get returns the bounds for a site and whether they exist.
func (s *Store) Get(k SiteKey) (Bounds, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[k]
	return b, ok
}

// Observe widens the stored bounds of a site to cover every finite value in
// the tensor. NaNs are skipped (they are corrected, not learned).
func (s *Store) Observe(k SiteKey, t *tensor.Tensor) {
	var lo, hi float32
	first := true
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if first {
		return // nothing finite to learn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[SiteKey]Bounds)
	}
	if cur, ok := s.m[k]; ok {
		s.m[k] = cur.Widen(Bounds{lo, hi})
	} else {
		s.m[k] = Bounds{lo, hi}
	}
}

// Len returns the number of sites with recorded bounds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Reset clears every recorded bound. The map's buckets are kept, so a
// per-inference Reset/Observe cycle over a stable site set (the FT2 hot
// path) stops touching the allocator after the first inference.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[SiteKey]Bounds)
		return
	}
	clear(s.m)
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := &Store{m: make(map[SiteKey]Bounds, len(s.m))}
	for k, b := range s.m {
		out.m[k] = b
	}
	return out
}

// Scaled returns a copy of the store with every bound scaled by factor.
func (s *Store) Scaled(factor float32) *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := NewStore()
	for k, b := range s.m {
		out.m[k] = b.Scale(factor)
	}
	return out
}

// MemoryBytes reports the storage footprint of the bounds when held in the
// model's dtype (2 values per protected layer), the paper's Section 5.2.2
// memory-overhead accounting.
func (s *Store) MemoryBytes(d numerics.DType) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m) * 2 * d.Bits() / 8
}

// Entry pairs a protected site with its recorded bounds.
type Entry struct {
	Key    SiteKey
	Bounds Bounds
}

// SortedEntries returns every recorded bound in canonical (block, kind,
// site) order — the deterministic traversal the wire codec needs so the
// same store always serializes to the same bytes.
func (s *Store) SortedEntries() []Entry {
	s.mu.RLock()
	out := make([]Entry, 0, len(s.m))
	for k, b := range s.m {
		out = append(out, Entry{k, b})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Layer.Block != b.Layer.Block {
			return a.Layer.Block < b.Layer.Block
		}
		if a.Layer.Kind != b.Layer.Kind {
			return a.Layer.Kind < b.Layer.Kind
		}
		return a.Site < b.Site
	})
	return out
}

// String renders the store contents sorted by site for stable output.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SiteKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Layer.Block != b.Layer.Block {
			return a.Layer.Block < b.Layer.Block
		}
		if a.Layer.Kind != b.Layer.Kind {
			return a.Layer.Kind < b.Layer.Kind
		}
		return a.Site < b.Site
	})
	var sb strings.Builder
	for _, k := range keys {
		b := s.m[k]
		fmt.Fprintf(&sb, "%s/%s: [%g, %g]\n", k.Layer, k.Site, b.Lo, b.Hi)
	}
	return sb.String()
}
