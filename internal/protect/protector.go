package protect

import (
	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/tensor"
)

// Protector applies a range-restriction method as a forward hook. The zero
// value is unusable; construct with ForMethod or assemble the fields
// directly for ablations.
type Protector struct {
	// Coverage lists the hook sites this protector acts on.
	Coverage map[arch.CoveragePoint]bool
	// BoundsFor resolves the bounds for a site; a false return skips range
	// checking there (NaN correction still applies if enabled).
	BoundsFor func(SiteKey) (Bounds, bool)
	// Mode selects the out-of-bound correction target.
	Mode ClipMode
	// CorrectNaN enables NaN→0 correction at covered sites.
	CorrectNaN bool
	// Stats accumulates correction counts across invocations.
	Stats CorrectionStats
}

// ForMethod builds a protector for one of the paper's methods over a
// statically profiled bounds store. All methods clamp out-of-bound values
// to the violated bound (the original Ranger behaviour; clip-to-zero is
// kept as an explicit ablation via the Mode field). MaxiMals additionally
// applies its own 1.25× bound scaling, the technique FT2's bound scaling is
// inspired by (Sec. 4.2.1). FT2's online variant is assembled in
// internal/core instead (its bounds come from the first token of each
// inference, not from a static store).
func ForMethod(m arch.Method, family model.Family, bounds *Store) *Protector {
	if m == arch.MethodMaxiMals {
		bounds = bounds.Scaled(1.25)
	}
	return &Protector{
		Coverage:   arch.Coverage(m, family),
		BoundsFor:  bounds.Get,
		Mode:       ClipToBound,
		CorrectNaN: arch.CorrectsNaN(m),
	}
}

// Hook returns the model forward hook implementing the protection.
func (p *Protector) Hook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if !p.Coverage[arch.CoveragePoint{Kind: ctx.Layer.Kind, Site: ctx.Site}] {
			return
		}
		key := SiteKey{Layer: ctx.Layer, Site: ctx.Site}
		if b, ok := p.BoundsFor(key); ok {
			st := ClampCorrect(out.Data, b, p.Mode, p.CorrectNaN)
			p.Stats.OutOfBound += st.OutOfBound
			p.Stats.NaN += st.NaN
		} else if p.CorrectNaN {
			p.Stats.NaN += CorrectNaNOnly(out.Data)
		}
	}
}

// ProtectedSites enumerates the concrete sites the protector covers for a
// model config (each covered kind in every block) — the paper counts these
// per model ("72 - 128 protected layers").
func (p *Protector) ProtectedSites(cfg model.Config) []SiteKey {
	var out []SiteKey
	for b := 0; b < cfg.Blocks; b++ {
		for _, k := range cfg.Family.LayerKinds() {
			for _, site := range []model.Site{model.SiteLinearOut, model.SiteActivationOut} {
				if p.Coverage[arch.CoveragePoint{Kind: k, Site: site}] {
					out = append(out, SiteKey{Layer: model.LayerRef{Block: b, Kind: k}, Site: site})
				}
			}
		}
	}
	return out
}
