package protect

import (
	"math"
	"testing"
	"testing/quick"

	"ft2/internal/arch"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func TestBoundsContains(t *testing.T) {
	b := Bounds{-2, 3}
	for v, want := range map[float32]bool{
		-2: true, 3: true, 0: true, -2.1: false, 3.1: false,
		float32(math.NaN()):  false,
		float32(math.Inf(1)): false,
	} {
		if got := b.Contains(v); got != want {
			t.Errorf("Contains(%g) = %v, want %v", v, got, want)
		}
	}
}

func TestBoundsScaleWidens(t *testing.T) {
	cases := []struct {
		in   Bounds
		want Bounds
	}{
		{Bounds{-2, 3}, Bounds{-4, 6}},
		{Bounds{1, 3}, Bounds{0.5, 6}},     // positive lo divides
		{Bounds{-3, -1}, Bounds{-6, -0.5}}, // negative hi divides
		{Bounds{0, 0}, Bounds{0, 0}},
	}
	for _, c := range cases {
		if got := c.in.Scale(2); got != c.want {
			t.Errorf("Scale(2) of %v = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: scaling by s >= 1 never shrinks the interval.
func TestBoundsScaleNeverShrinks(t *testing.T) {
	f := func(lo, hi float32, sRaw uint8) bool {
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) || lo > hi {
			return true
		}
		s := 1 + float32(sRaw)/32
		out := Bounds{lo, hi}.Scale(s)
		return out.Lo <= lo && out.Hi >= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsWiden(t *testing.T) {
	got := Bounds{-1, 2}.Widen(Bounds{-3, 1})
	if got != (Bounds{-3, 2}) {
		t.Errorf("Widen = %v", got)
	}
}

func TestStoreObserve(t *testing.T) {
	s := NewStore()
	k := SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.VProj}, Site: model.SiteLinearOut}
	s.Observe(k, tensor.FromSlice(1, 4, []float32{1, -3, 2, 0}))
	b, ok := s.Get(k)
	if !ok || b != (Bounds{-3, 2}) {
		t.Fatalf("Observe bounds = %v ok=%v", b, ok)
	}
	// Second observation widens.
	s.Observe(k, tensor.FromSlice(1, 2, []float32{5, -1}))
	b, _ = s.Get(k)
	if b != (Bounds{-3, 5}) {
		t.Errorf("widened bounds = %v", b)
	}
	// NaN and Inf are skipped.
	s.Observe(k, tensor.FromSlice(1, 2, []float32{float32(math.NaN()), float32(math.Inf(1))}))
	b, _ = s.Get(k)
	if b != (Bounds{-3, 5}) {
		t.Errorf("NaN/Inf must not widen bounds: %v", b)
	}
}

func TestStoreObserveAllNaN(t *testing.T) {
	s := NewStore()
	k := SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.VProj}, Site: model.SiteLinearOut}
	s.Observe(k, tensor.FromSlice(1, 1, []float32{float32(math.NaN())}))
	if _, ok := s.Get(k); ok {
		t.Error("all-NaN observation must not create bounds")
	}
}

func TestStoreResetAndLen(t *testing.T) {
	s := NewStore()
	k := SiteKey{Layer: model.LayerRef{Block: 1, Kind: model.FC2}, Site: model.SiteLinearOut}
	s.Set(k, Bounds{-1, 1})
	if s.Len() != 1 {
		t.Error("Len after Set")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset must clear")
	}
}

func TestStoreMemoryBytes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 72; i++ {
		s.Set(SiteKey{Layer: model.LayerRef{Block: i, Kind: model.VProj}}, Bounds{-1, 1})
	}
	// 72 layers × 2 values × 2 bytes (fp16) = 288 — the paper's lower bound.
	if got := s.MemoryBytes(numerics.FP16); got != 288 {
		t.Errorf("MemoryBytes = %d, want 288", got)
	}
	if got := s.MemoryBytes(numerics.FP32); got != 576 {
		t.Errorf("MemoryBytes FP32 = %d, want 576", got)
	}
}

func TestStoreScaledCopies(t *testing.T) {
	s := NewStore()
	k := SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.FC2}}
	s.Set(k, Bounds{-1, 1})
	sc := s.Scaled(2)
	b, _ := sc.Get(k)
	if b != (Bounds{-2, 2}) {
		t.Errorf("Scaled = %v", b)
	}
	orig, _ := s.Get(k)
	if orig != (Bounds{-1, 1}) {
		t.Error("Scaled must not mutate the source store")
	}
}

func TestStoreStringStable(t *testing.T) {
	s := NewStore()
	s.Set(SiteKey{Layer: model.LayerRef{Block: 1, Kind: model.FC2}}, Bounds{-1, 1})
	s.Set(SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.VProj}}, Bounds{-2, 2})
	out := s.String()
	if out == "" || out != s.String() {
		t.Error("String must be stable and non-empty")
	}
}

func TestClampCorrectToBound(t *testing.T) {
	data := []float32{-5, -1, 0, 1, 5, float32(math.NaN()), float32(math.Inf(1))}
	st := ClampCorrect(data, Bounds{-2, 2}, ClipToBound, true)
	want := []float32{-2, -1, 0, 1, 2, 0, 2}
	for i, w := range want {
		if data[i] != w {
			t.Errorf("data[%d] = %g, want %g", i, data[i], w)
		}
	}
	if st.OutOfBound != 3 || st.NaN != 1 {
		t.Errorf("stats = %+v, want 3 OOB + 1 NaN", st)
	}
	if st.Total() != 4 {
		t.Error("Total wrong")
	}
}

func TestClampCorrectToZero(t *testing.T) {
	data := []float32{-5, 5, 1}
	ClampCorrect(data, Bounds{-2, 2}, ClipToZero, false)
	if data[0] != 0 || data[1] != 0 || data[2] != 1 {
		t.Errorf("ClipToZero result %v", data)
	}
}

func TestClampCorrectNaNDisabled(t *testing.T) {
	data := []float32{float32(math.NaN())}
	st := ClampCorrect(data, Bounds{-1, 1}, ClipToBound, false)
	if !math.IsNaN(float64(data[0])) || st.NaN != 0 {
		t.Error("NaN must survive when correction disabled")
	}
}

// Property: after ClampCorrect with NaN correction, every value is inside
// the bounds, and the pass is idempotent.
func TestClampCorrectProperty(t *testing.T) {
	f := func(vals []float32, lo, hi float32) bool {
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) || math.IsInf(float64(lo), 0) || math.IsInf(float64(hi), 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		b := Bounds{lo, hi}
		data := append([]float32(nil), vals...)
		ClampCorrect(data, b, ClipToBound, true)
		for _, v := range data {
			if !(v >= lo && v <= hi) && v != 0 {
				return false
			}
		}
		again := append([]float32(nil), data...)
		st := ClampCorrect(again, b, ClipToBound, true)
		// Idempotence: a second pass corrects only values that were clipped
		// to 0 outside [lo,hi] (possible when 0 < lo or 0 > hi from NaN
		// correction); contents must be unchanged otherwise.
		_ = st
		for i := range again {
			if again[i] != data[i] && !(data[i] == 0 && (lo > 0 || hi < 0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrectNaNOnly(t *testing.T) {
	data := []float32{1, float32(math.NaN()), -2, float32(math.NaN())}
	if n := CorrectNaNOnly(data); n != 2 {
		t.Errorf("corrected %d NaNs, want 2", n)
	}
	if data[1] != 0 || data[3] != 0 || data[0] != 1 || data[2] != -2 {
		t.Errorf("CorrectNaNOnly result %v", data)
	}
}

func TestClipModeString(t *testing.T) {
	if ClipToBound.String() != "clip-to-bound" || ClipToZero.String() != "clip-to-zero" {
		t.Error("ClipMode strings wrong")
	}
}

func testModel(t *testing.T) *model.Model {
	t.Helper()
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return model.MustNew(cfg, 42, numerics.FP16)
}

func TestOfflineProfileCoversAllSites(t *testing.T) {
	m := testModel(t)
	prompts := [][]int{{4, 5, 6, 7}, {8, 9, 10}}
	store := OfflineProfile(m, prompts, 4)
	// Every linear site plus one activation site per block.
	wantSites := len(m.Cfg.LinearLayers()) + m.Cfg.Blocks
	if store.Len() != wantSites {
		t.Errorf("profile covers %d sites, want %d", store.Len(), wantSites)
	}
	// Profiling must remove its hook.
	if m.HookCount() != 0 {
		t.Error("OfflineProfile leaked its hook")
	}
	// Bounds must be sane (lo <= hi).
	for _, ref := range m.Cfg.LinearLayers() {
		b, ok := store.Get(SiteKey{Layer: ref, Site: model.SiteLinearOut})
		if !ok {
			t.Fatalf("no bounds for %v", ref)
		}
		if b.Lo > b.Hi {
			t.Errorf("%v: inverted bounds %v", ref, b)
		}
	}
}

func TestOfflineProfileMoreDataWidens(t *testing.T) {
	m := testModel(t)
	small := OfflineProfile(m, [][]int{{4, 5, 6}}, 3)
	big := OfflineProfile(m, [][]int{{4, 5, 6}, {20, 30, 40}, {7, 8, 9, 10, 11}}, 6)
	k := SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.FC1}, Site: model.SiteLinearOut}
	bs, _ := small.Get(k)
	bb, _ := big.Get(k)
	if bb.Lo > bs.Lo || bb.Hi < bs.Hi {
		t.Errorf("larger corpus must widen bounds: small=%v big=%v", bs, bb)
	}
}

func TestProtectorForMethodConfig(t *testing.T) {
	store := NewStore()
	p := ForMethod(arch.MethodFT2Offline, model.FamilyOPT, store)
	if p.Mode != ClipToBound || !p.CorrectNaN {
		t.Error("FT2-offline protector misconfigured")
	}
	r := ForMethod(arch.MethodRanger, model.FamilyOPT, store)
	if r.Mode != ClipToBound || r.CorrectNaN {
		t.Error("Ranger protector misconfigured")
	}
	// MaxiMals applies its own 1.25x bound scaling.
	store.Set(SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.OutProj}, Site: model.SiteLinearOut}, Bounds{-4, 4})
	mm := ForMethod(arch.MethodMaxiMals, model.FamilyOPT, store)
	if b, ok := mm.BoundsFor(SiteKey{Layer: model.LayerRef{Block: 0, Kind: model.OutProj}, Site: model.SiteLinearOut}); !ok || b != (Bounds{-5, 5}) {
		t.Errorf("MaxiMals bounds not scaled: %v %v", b, ok)
	}
}

func TestProtectorCorrectsInjectedValue(t *testing.T) {
	m := testModel(t)
	store := OfflineProfile(m, [][]int{{4, 5, 6, 7}}, 6)
	prompt := []int{4, 5, 6, 7}
	clean := m.Generate(prompt, 8)

	// Inject a huge value into a critical layer at step 2.
	m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Layer == (model.LayerRef{Block: 1, Kind: model.FC2}) && ctx.Step == 2 && ctx.Site == model.SiteLinearOut {
			out.Data[0] = 60000
		}
	})
	corrupted := m.Generate(prompt, 8)

	// Now add FT2-offline protection after the injector.
	p := ForMethod(arch.MethodFT2Offline, m.Cfg.Family, store.Scaled(2))
	m.RegisterHook(p.Hook())
	protected := m.Generate(prompt, 8)
	m.ClearHooks()

	diff := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !diff(clean, corrupted) {
		t.Skip("injected fault was masked without protection on this seed")
	}
	if diff(clean, protected) {
		t.Errorf("protection failed to mask the fault: clean=%v protected=%v", clean, protected)
	}
	if p.Stats.OutOfBound == 0 {
		t.Error("protector should have detected the out-of-bound value")
	}
}

func TestProtectedSitesEnumeration(t *testing.T) {
	m := testModel(t)
	p := ForMethod(arch.MethodFT2, m.Cfg.Family, NewStore())
	sites := p.ProtectedSites(m.Cfg)
	if len(sites) != m.Cfg.Blocks*3 { // OPT: V, OUT, FC2 per block
		t.Errorf("FT2 protects %d sites on OPT, want %d", len(sites), m.Cfg.Blocks*3)
	}
	r := ForMethod(arch.MethodRanger, m.Cfg.Family, NewStore())
	if got := len(r.ProtectedSites(m.Cfg)); got != m.Cfg.Blocks {
		t.Errorf("Ranger protects %d sites, want %d", got, m.Cfg.Blocks)
	}
}

func BenchmarkClampCorrect(b *testing.B) {
	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(i%7) - 3
	}
	bounds := Bounds{-2.5, 2.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClampCorrect(data, bounds, ClipToBound, true)
	}
}
