package protect

import (
	"math"

	"ft2/internal/model"
	"ft2/internal/tensor"
)

// DMR implements duplication in place — the high-overhead alternative the
// paper's limitations section reserves for safety-critical deployments
// ("achieving 0% SDC may require additional techniques such as duplications
// in place, where the corresponding significant overhead is expected").
//
// Each covered linear layer is re-executed from its input and any
// disagreement with the observed output is replaced by the recomputed
// value. Because the redundant execution happens after the fault lands in
// the first result, a single transient fault in a covered layer is always
// detected and corrected, regardless of magnitude — at roughly 2× the
// compute of the covered layers.
type DMR struct {
	m *model.Model
	// Covered selects the layer kinds to duplicate; nil means every linear
	// layer.
	Covered map[model.LayerKind]bool
	// Detected counts mismatching values corrected so far.
	Detected int
	// scratch receives every redundant execution; it is resized per layer by
	// RecomputeLinearInto and reused across calls, keeping DMR off the decode
	// hot path's allocation budget. Safe because a DMR is bound to a single
	// model and hooks run on the model's goroutine.
	scratch *tensor.Tensor
}

// NewDMR builds a duplication-in-place protector for the model. kinds
// restricts coverage; pass nothing to duplicate every linear layer.
func NewDMR(m *model.Model, kinds ...model.LayerKind) *DMR {
	d := &DMR{m: m, scratch: tensor.New(1, 1)}
	if len(kinds) > 0 {
		d.Covered = make(map[model.LayerKind]bool, len(kinds))
		for _, k := range kinds {
			d.Covered[k] = true
		}
	}
	return d
}

// Hook returns the forward hook performing the redundant execution.
func (d *DMR) Hook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if ctx.Site != model.SiteLinearOut || ctx.Input == nil {
			return
		}
		if d.Covered != nil && !d.Covered[ctx.Layer.Kind] {
			return
		}
		clean := d.m.RecomputeLinearInto(d.scratch, ctx.Layer, ctx.Input)
		for i, v := range out.Data {
			c := clean.Data[i]
			if v != c && !(math.IsNaN(float64(v)) && math.IsNaN(float64(c))) {
				out.Data[i] = c
				d.Detected++
			}
		}
	}
}
