package protect

import (
	"bytes"
	"strings"
	"testing"

	"ft2/internal/model"
)

func TestTierRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierNone, TierFT2, TierABFT, TierDMR, TierABFTFT2} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if _, err := ParseTier("triple-modular"); err == nil {
		t.Error("unknown tier must error")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	p := &Policy{Tiers: map[model.LayerKind]Tier{
		model.VProj:    TierABFTFT2,
		model.OutProj:  TierFT2,
		model.DownProj: TierFT2,
		model.QProj:    TierNone,
		model.KProj:    TierABFT,
	}}
	profiles := map[model.LayerKind]KindProfile{
		model.VProj: {Unprotected: 0.31, FT2: 0.04, Trials: 200},
	}
	var buf bytes.Buffer
	if err := SavePolicy(&buf, p, profiles); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPolicy(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range p.Tiers {
		if got.Tier(k) != want {
			t.Errorf("kind %v round-tripped to %v, want %v", k, got.Tier(k), want)
		}
	}
	// Unmentioned kinds default to none.
	if got.Tier(model.FC1) != TierNone {
		t.Error("absent kind must default to TierNone")
	}
}

func TestPolicyLoadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"version":99,"entries":[]}`,
		`{"version":1,"entries":[{"kind":"NOT_A_KIND","tier":"ft2"}]}`,
		`{"version":1,"entries":[{"kind":"V_PROJ","tier":"quadruple"}]}`,
	} {
		if _, err := LoadPolicy(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadPolicy(%s) must error", bad)
		}
	}
}

func TestPolicyKinds(t *testing.T) {
	p := &Policy{Tiers: map[model.LayerKind]Tier{
		model.VProj:   TierABFTFT2,
		model.OutProj: TierFT2,
		model.KProj:   TierABFT,
	}}
	ft2 := p.Kinds(TierFT2, TierABFTFT2)
	if len(ft2) != 2 {
		t.Errorf("Kinds(ft2, abft+ft2) = %v", ft2)
	}
	abft := p.Kinds(TierABFT, TierABFTFT2)
	if len(abft) != 2 {
		t.Errorf("Kinds(abft, abft+ft2) = %v", abft)
	}
	if got := (&Policy{}).Kinds(TierFT2); len(got) != 0 {
		t.Errorf("empty policy Kinds = %v", got)
	}
}

// DerivePolicy assigns the cheapest sufficient tier per the documented
// thresholds.
func TestDerivePolicy(t *testing.T) {
	profiles := map[model.LayerKind]KindProfile{
		model.VProj:    {Unprotected: 0.30, FT2: 0.05, Trials: 200},  // residual → abft+ft2
		model.DownProj: {Unprotected: 0.25, FT2: 0.002, Trials: 200}, // clamp suffices → ft2
		model.QProj:    {Unprotected: 0.004, FT2: 0, Trials: 200},    // benign → none
		model.KProj:    {Unprotected: 0.12},                          // no FT2 evidence → abft
	}
	p := DerivePolicy(model.FamilyLlama, profiles)
	want := map[model.LayerKind]Tier{
		model.VProj:    TierABFTFT2,
		model.DownProj: TierFT2,
		model.QProj:    TierNone,
		model.KProj:    TierABFT,
		model.UpProj:   TierNone, // unprofiled
	}
	for k, tier := range want {
		if p.Tier(k) != tier {
			t.Errorf("derived %v for %v, want %v", p.Tier(k), k, tier)
		}
	}
	if _, ok := p.Tiers[model.FC1]; ok {
		t.Error("FC1 is not a Llama kind and must not be assigned")
	}
}
