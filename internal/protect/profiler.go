package protect

import (
	"ft2/internal/model"
	"ft2/internal/tensor"
)

// OfflineProfile runs fault-free generations over a profiling corpus and
// records the min/max activation of every hook site — the expensive offline
// bound-profiling workflow of the baselines (Section 3.2: 20% of the
// training set). The returned store covers all sites; protectors consult
// only their covered subset.
//
// genTokens is the number of tokens generated per input (the paper profiles
// full generations so that every token step's activations contribute).
func OfflineProfile(m *model.Model, prompts [][]int, genTokens int) *Store {
	store := NewStore()
	h := m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
		store.Observe(SiteKey{Layer: ctx.Layer, Site: ctx.Site}, out)
	})
	defer m.RemoveHook(h)
	for _, p := range prompts {
		m.Generate(p, genTokens)
	}
	return store
}

// FirstTokenProfiler records per-inference bounds during the prefill pass
// (step 0) and NaN-corrects it, implementing the observation side of FT2's
// online methodology. It is reset per inference by the FT2 core.
type FirstTokenProfiler struct {
	Store *Store
	// NaNCorrected counts NaNs fixed during the first token (always-on
	// protection per Section 4.2.2).
	NaNCorrected int
}

// NewFirstTokenProfiler returns a profiler with an empty store.
func NewFirstTokenProfiler() *FirstTokenProfiler {
	return &FirstTokenProfiler{Store: NewStore()}
}

// Reset clears the recorded bounds for a new inference.
func (f *FirstTokenProfiler) Reset() {
	f.Store.Reset()
	f.NaNCorrected = 0
}

// ObserveHook returns a hook that, during the first token only, corrects
// NaN (the only protection possible without bounds) and then records the
// min/max of the corrected tensor.
func (f *FirstTokenProfiler) ObserveHook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		if !ctx.FirstToken {
			return
		}
		f.NaNCorrected += CorrectNaNOnly(out.Data)
		f.Store.Observe(SiteKey{Layer: ctx.Layer, Site: ctx.Site}, out)
	}
}
