package protect

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ft2/internal/model"
)

// Adaptive per-layer protection tiers. FT2's insight is that layer kinds
// differ wildly in vulnerability ("Not All Errors Are Equal" makes the same
// point per-layer), so paying one uniform protection everywhere wastes
// overhead where faults are benign and under-protects where they are not. A
// Policy assigns each layer kind the cheapest sufficient defense:
//
//	none     — unprotected (faults there almost never corrupt output)
//	ft2      — range restriction from first-token bounds (cheap clamp)
//	abft     — checksum verify + recompute-repair (exact, catches in-range
//	           flips FT2's clamp passes through)
//	dmr      — full duplicated execution of the layer (exact, dearest)
//	abft+ft2 — checksum repair first, range clamp second: the recompute
//	           fixes transient faults exactly, the clamp still bounds
//	           fallout from persistent weight/KV corruption that checksums
//	           can detect but not repair
type Tier int

const (
	TierNone Tier = iota
	TierFT2
	TierABFT
	TierDMR
	TierABFTFT2
)

// String implements fmt.Stringer (the on-disk names).
func (t Tier) String() string {
	switch t {
	case TierFT2:
		return "ft2"
	case TierABFT:
		return "abft"
	case TierDMR:
		return "dmr"
	case TierABFTFT2:
		return "abft+ft2"
	default:
		return "none"
	}
}

// ParseTier is the inverse of String.
func ParseTier(s string) (Tier, error) {
	for _, t := range []Tier{TierNone, TierFT2, TierABFT, TierDMR, TierABFTFT2} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("protect: unknown tier %q", s)
}

// Policy maps layer kinds to protection tiers. Kinds absent from Tiers are
// TierNone. The zero Policy protects nothing.
type Policy struct {
	Tiers map[model.LayerKind]Tier
}

// Tier returns the tier for a kind (TierNone when unset).
func (p *Policy) Tier(k model.LayerKind) Tier {
	if p == nil || p.Tiers == nil {
		return TierNone
	}
	return p.Tiers[k]
}

// Kinds returns the kinds assigned the given tiers (any of them), sorted.
func (p *Policy) Kinds(tiers ...Tier) []model.LayerKind {
	var out []model.LayerKind
	if p == nil {
		return out
	}
	for _, k := range model.AllLayerKinds {
		for _, t := range tiers {
			if p.Tiers[k] == t && t != TierNone {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// String renders the policy compactly for logs: "K_PROJ=none V_PROJ=ft2 …"
// over the kinds it mentions, sorted.
func (p *Policy) String() string {
	if p == nil || len(p.Tiers) == 0 {
		return "none"
	}
	s := ""
	for _, k := range model.AllLayerKinds {
		if t, ok := p.Tiers[k]; ok {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%s", k, t)
		}
	}
	return s
}

// policyFile is the on-disk JSON schema of a protection policy, versioned
// like the bounds files.
type policyFile struct {
	Version int           `json:"version"`
	Entries []policyEntry `json:"entries"`
}

type policyEntry struct {
	Kind string `json:"kind"`
	Tier string `json:"tier"`
	// Profile echoes the campaign evidence the assignment was derived from
	// (optional, informational).
	Profile *KindProfile `json:"profile,omitempty"`
}

const policyFileVersion = 1

// SavePolicy writes the policy as JSON, sorted for reproducible output.
// profiles, when non-nil, attaches the per-kind campaign evidence.
func SavePolicy(w io.Writer, p *Policy, profiles map[model.LayerKind]KindProfile) error {
	entries := make([]policyEntry, 0, len(p.Tiers))
	for k, t := range p.Tiers {
		e := policyEntry{Kind: k.String(), Tier: t.String()}
		if prof, ok := profiles[k]; ok {
			pc := prof
			e.Profile = &pc
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Kind < entries[j].Kind })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(policyFile{Version: policyFileVersion, Entries: entries})
}

// LoadPolicy reads a policy previously written by SavePolicy. Unknown kinds
// or tiers are an error — a typo must not silently weaken protection.
func LoadPolicy(r io.Reader) (*Policy, error) {
	var f policyFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("protect: decoding policy: %w", err)
	}
	if f.Version != policyFileVersion {
		return nil, fmt.Errorf("protect: unsupported policy file version %d", f.Version)
	}
	p := &Policy{Tiers: make(map[model.LayerKind]Tier, len(f.Entries))}
	for _, e := range f.Entries {
		kind, err := parseLayerKind(e.Kind)
		if err != nil {
			return nil, err
		}
		tier, err := ParseTier(e.Tier)
		if err != nil {
			return nil, err
		}
		p.Tiers[kind] = tier
	}
	return p, nil
}

// KindProfile is one layer kind's measured vulnerability: SDC rates from
// unprotected and FT2-protected campaigns over the same fault distribution,
// plus the trial count behind them.
type KindProfile struct {
	Unprotected float64 `json:"unprotected_sdc"`
	FT2         float64 `json:"ft2_sdc"`
	Trials      int     `json:"trials"`
}

// DerivePolicy turns campaign evidence into a tier assignment for every
// layer kind of the family:
//
//   - a kind whose unprotected SDC rate is already negligible gets TierNone —
//     protection there buys nothing;
//   - a vulnerable kind that FT2 reduces to negligible gets TierFT2 — the
//     cheapest sufficient defense;
//   - a vulnerable kind with residual SDCs under FT2 (in-range flips the
//     clamp passes) gets TierABFTFT2: checksum repair for the residue, the
//     clamp retained for persistent-corruption fallout;
//   - a vulnerable kind FT2 does not cover at all in this family profile
//     (no FT2 measurement, Trials 0) gets TierABFT.
//
// The negligible threshold is 1%, matching the paper's reading of Figure 6
// (kinds below it are noise at campaign scale).
func DerivePolicy(family model.Family, profiles map[model.LayerKind]KindProfile) *Policy {
	const negligible = 0.01
	p := &Policy{Tiers: make(map[model.LayerKind]Tier)}
	for _, k := range family.LayerKinds() {
		prof, ok := profiles[k]
		if !ok || prof.Unprotected <= negligible {
			p.Tiers[k] = TierNone
			continue
		}
		switch {
		case prof.Trials == 0:
			p.Tiers[k] = TierABFT
		case prof.FT2 <= negligible:
			p.Tiers[k] = TierFT2
		default:
			p.Tiers[k] = TierABFTFT2
		}
	}
	return p
}
