package protect

import "math"

// ClipMode selects what an out-of-bound value is corrected to. The paper's
// Take-away #8: generative LLMs have legitimate large activations, so FT2
// clips to the bound; clipping to zero (the CNN-era default) causes large
// deviations.
type ClipMode int

const (
	// ClipToBound replaces out-of-bound values with the violated bound
	// (FT2's choice).
	ClipToBound ClipMode = iota
	// ClipToZero replaces out-of-bound values with 0 (Ranger-style).
	ClipToZero
)

// String implements fmt.Stringer.
func (c ClipMode) String() string {
	if c == ClipToZero {
		return "clip-to-zero"
	}
	return "clip-to-bound"
}

// CorrectionStats counts the abnormal values a protector corrected; the
// campaign uses it to verify detection coverage and the paper's claim that
// protection fires rarely in fault-free runs.
type CorrectionStats struct {
	OutOfBound int
	NaN        int
}

// Total returns the total number of corrections.
func (s CorrectionStats) Total() int { return s.OutOfBound + s.NaN }

// ClampCorrect applies the fused range-restriction + NaN-correction pass to
// data in place (the reproduction of the paper's fused torch.clamp +
// torch.nan_to_num kernel). correctNaN maps NaN→0 (residual branches recover
// the lost signal); out-of-bound values are corrected per mode. ±Inf counts
// as out-of-bound. Returns the correction counts.
func ClampCorrect(data []float32, b Bounds, mode ClipMode, correctNaN bool) CorrectionStats {
	var st CorrectionStats
	for i, v := range data {
		if math.IsNaN(float64(v)) {
			if correctNaN {
				data[i] = 0
				st.NaN++
			}
			continue
		}
		if v < b.Lo {
			if mode == ClipToBound {
				data[i] = b.Lo
			} else {
				data[i] = 0
			}
			st.OutOfBound++
		} else if v > b.Hi {
			if mode == ClipToBound {
				data[i] = b.Hi
			} else {
				data[i] = 0
			}
			st.OutOfBound++
		}
	}
	return st
}

// CorrectNaNOnly replaces NaNs with 0 in place and returns how many were
// corrected — the protection FT2 applies during first-token generation when
// no bounds exist yet (Section 4.2.2).
func CorrectNaNOnly(data []float32) int {
	n := 0
	for i, v := range data {
		if math.IsNaN(float64(v)) {
			data[i] = 0
			n++
		}
	}
	return n
}
