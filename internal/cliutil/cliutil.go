// Package cliutil factors the flag surface and signal plumbing shared by
// the ft2 command-line tools (ft2bench, ft2inject, ft2serve): the run-level
// -timeout deadline with SIGINT/SIGTERM cancellation, and the resumable
// campaign's -trial-timeout/-journal/-resume/-no-fork/-checkpoint-stride
// quintet with its journal lifecycle and interrupt notices.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ft2/internal/campaign"
	"ft2/internal/experiments"
)

// Base holds the flags every ft2 binary shares.
type Base struct {
	// Timeout bounds the whole invocation (0 = none).
	Timeout time.Duration
}

// RegisterBase registers the shared base flags on fs.
func RegisterBase(fs *flag.FlagSet) *Base {
	b := &Base{}
	b.register(fs)
	return b
}

func (b *Base) register(fs *flag.FlagSet) {
	fs.DurationVar(&b.Timeout, "timeout", 0, "deadline for the whole run (0 = none)")
}

// Context returns a run context canceled by SIGINT/SIGTERM and, when
// -timeout is set, by its deadline. A second signal force-kills the
// process (signal delivery reverts to the default once the first fires).
// The caller must defer the returned cancel.
func (b *Base) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	if b.Timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, b.Timeout)
	return tctx, func() { cancel(); stop() }
}

// Interrupted reports whether err is the cancellation family — a signal or
// an expired -timeout — as opposed to a real failure.
func Interrupted(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Campaign extends Base with the resumable-campaign flags.
type Campaign struct {
	Base
	// TrialTimeout arms the per-trial no-progress watchdog (0 = off).
	TrialTimeout time.Duration
	// JournalPath checkpoints classified trials to a JSONL journal.
	JournalPath string
	// Resume replays the journal and runs only the missing trials.
	Resume bool
	// NoFork disables golden-checkpoint forking.
	NoFork bool
	// CheckpointStride overrides the golden-checkpoint stride (0 = default).
	CheckpointStride int
}

// RegisterCampaign registers the base flags plus the campaign quintet on fs.
func RegisterCampaign(fs *flag.FlagSet) *Campaign {
	c := &Campaign{}
	c.Base.register(fs)
	fs.DurationVar(&c.TrialTimeout, "trial-timeout", 0,
		"abort a trial with no token progress for this long (0 = no watchdog)")
	fs.StringVar(&c.JournalPath, "journal", "",
		"checkpoint classified trials to this JSONL journal")
	fs.BoolVar(&c.Resume, "resume", false,
		"replay the journal and run only the missing trials (requires -journal)")
	fs.BoolVar(&c.NoFork, "no-fork", false,
		"disable golden-checkpoint forking: re-run every trial's fault-free prefix from scratch (bit-identical, slower)")
	fs.IntVar(&c.CheckpointStride, "checkpoint-stride", 0,
		"decode steps between golden checkpoints (0 = per-cell ceil(sqrt(GenTokens)) default)")
	return c
}

// Validate checks cross-flag consistency.
func (c *Campaign) Validate() error {
	if c.Resume && c.JournalPath == "" {
		return errors.New("-resume requires -journal")
	}
	return nil
}

// OpenJournal opens (or, with -resume, reopens) the journal named by the
// flags. Returns (nil, nil) when no journal was requested; otherwise the
// caller owns the Close.
func (c *Campaign) OpenJournal() (*campaign.Journal, error) {
	if c.JournalPath == "" {
		return nil, nil
	}
	return campaign.OpenJournal(c.JournalPath, c.Resume)
}

// ApplyParams copies the campaign flags into an experiment parameter set.
func (c *Campaign) ApplyParams(p *experiments.Params, j *campaign.Journal) {
	p.TrialTimeout = c.TrialTimeout
	p.NoFork = c.NoFork
	p.CheckpointStride = c.CheckpointStride
	p.Journal = j
}

// ApplySpec copies the campaign flags into a single campaign spec.
func (c *Campaign) ApplySpec(s *campaign.Spec, j *campaign.Journal) {
	s.TrialTimeout = c.TrialTimeout
	s.NoFork = c.NoFork
	s.CheckpointStride = c.CheckpointStride
	s.Journal = j
}

// InterruptNotice prints the standard stderr hint after an interrupted
// campaign — how to resume, or how to make the run resumable — and returns
// the conventional exit code for a signal-terminated run (130).
func (c *Campaign) InterruptNotice(prog string, err error) int {
	if c.JournalPath != "" {
		fmt.Fprintf(os.Stderr, "%s: interrupted (%v); journal %s flushed — re-run with -resume to continue\n",
			prog, err, c.JournalPath)
	} else {
		fmt.Fprintf(os.Stderr, "%s: interrupted (%v); no journal — re-run with -journal/-resume to checkpoint\n",
			prog, err)
	}
	return 130
}
