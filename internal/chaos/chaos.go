// Package chaos is the online chaos-engineering engine for the serving
// layer: a seeded, deterministic fault planner that injects transient
// activation flips, persistent weight corruption, and KV-cache bit flips
// into live batched sessions.
//
// The engine only *plans* and *journals*; the scheduler applies every
// mutation at a slice boundary — the moment the replica-owning worker holds
// the model and no kernel is running — so chaos never races decode. Two
// invariants keep the blast radius honest:
//
//   - Session-scoped faults (activation, KV) land only on sessions that
//     opted in (Request.Chaos); control sessions sharing the same batch
//     stay bit-identical to the oracle.
//   - Weight faults corrupt replica-global state, so the planner emits them
//     only when the caller reports that every session in the slice group is
//     a chaos victim, and the scheduler scrubs the replica before it can
//     serve anyone else.
//
// Every injection and every recovery action is journaled (bounded
// in-memory ring plus optional JSONL file), so a chaos run is replayable
// evidence, not noise.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
)

// Config tunes the engine. The zero value is not usable: Rate must be
// positive; everything else has a default.
type Config struct {
	// Seed drives the deterministic fault stream.
	Seed int64
	// Rate is the expected fault arrivals per scheduling slice (Poisson-ish:
	// ⌊Rate⌋ guaranteed arrivals plus one more with the fractional
	// probability). 0.25 means roughly one arrival every four slices.
	Rate float64
	// Burst widens each arrival into 1+rand(Burst) simultaneous faults — the
	// multi-fault burst regime. 0 or 1 keeps single-fault arrivals.
	Burst int
	// Mix routes arrivals to weight / KV-cache targets; the remainder are
	// transient activation flips. Weight arrivals planned for a slice whose
	// group is not fully chaos-eligible are demoted to activation faults so
	// the blast-radius invariant holds without skewing the arrival rate.
	Mix fault.TargetMix
	// Fault picks the flipped bit positions (default numerics.SingleBit).
	Fault numerics.FaultModel
	// DType is the corrupted storage format (default FP16).
	DType numerics.DType
	// Journal, when non-empty, appends every event as one JSON line to this
	// path.
	Journal string
	// MaxEvents bounds the in-memory event ring (default 256).
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.Burst < 1 {
		c.Burst = 1
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 256
	}
	return c
}

// Event kinds journaled by the engine. Injections come from the planner;
// the recovery kinds are recorded by the serving layer when detection and
// repair actions fire.
const (
	EvInject      = "inject"       // a fault was applied
	EvScrubDetect = "scrub-detect" // a weight scrub found checksum corruption
	EvRebuild     = "rebuild"      // a replica was rebuilt from seed
)

// Event is one journaled chaos action.
type Event struct {
	Seq     int64  `json:"seq"`
	Kind    string `json:"kind"`
	Target  string `json:"target,omitempty"` // activation | weight | kv
	Site    string `json:"site,omitempty"`
	Session int64  `json:"session,omitempty"`
	Replica int    `json:"replica,omitempty"`
	Step    int    `json:"step,omitempty"`
}

// Counters aggregates journaled events for /metrics.
type Counters struct {
	InjectedActivation int64
	InjectedWeight     int64
	InjectedKV         int64
	ScrubDetected      int64
	Rebuilds           int64
}

// Injected returns the total applied injections across targets.
func (c Counters) Injected() int64 {
	return c.InjectedActivation + c.InjectedWeight + c.InjectedKV
}

// SessionView is the planner's picture of one chaos-eligible session in the
// slice group about to run.
type SessionView struct {
	// ID identifies the session in the journal.
	ID int64
	// Step is the decode steps the session has completed so far.
	Step int
	// Budget is how many steps this slice will run (≥ 1).
	Budget int
	// Rows is the session's resident KV rows (prompt + generated so far).
	Rows int
}

// SessionFault is a planned fault aimed at one session of the group.
type SessionFault struct {
	// Session indexes the views passed to PlanSlice.
	Session int
	Site    fault.Site
}

// Plan is the faults to apply around one scheduling slice: KV and weight
// mutations land at the boundary before the slice runs; activation faults
// install as per-victim hooks that fire at their planned step inside it.
type Plan struct {
	Activation []SessionFault
	KV         []SessionFault
	Weight     []fault.Site
}

// Empty reports whether the plan carries no faults.
func (p Plan) Empty() bool {
	return len(p.Activation) == 0 && len(p.KV) == 0 && len(p.Weight) == 0
}

// Engine plans faults and journals chaos events. Safe for concurrent use by
// the scheduler's workers; the single seeded RNG behind the mutex keeps the
// global fault stream deterministic for a given arrival order.
type Engine struct {
	mu       sync.Mutex
	cfg      Config
	mcfg     model.Config
	rng      *rand.Rand
	seq      int64
	events   []Event
	journal  *os.File
	enc      *json.Encoder
	counters Counters

	layers      []model.LayerRef
	layerElems  []int
	perTokenSum int
	weightElems []int
	weightSum   int64
}

// NewEngine builds an engine for one model configuration, opening the JSONL
// journal when configured.
func NewEngine(cfg Config, mcfg model.Config) (*Engine, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("chaos: rate must be positive, got %g", cfg.Rate)
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:  cfg,
		mcfg: mcfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, ref := range mcfg.LinearLayers() {
		w := mcfg.OutDim(ref.Kind)
		e.layers = append(e.layers, ref)
		e.layerElems = append(e.layerElems, w)
		e.perTokenSum += w
		we := w * mcfg.InDim(ref.Kind)
		e.weightElems = append(e.weightElems, we)
		e.weightSum += int64(we)
	}
	if cfg.Journal != "" {
		f, err := os.OpenFile(cfg.Journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("chaos: opening journal: %w", err)
		}
		e.journal = f
		e.enc = json.NewEncoder(f)
	}
	return e, nil
}

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Close flushes and closes the journal file, if any.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal == nil {
		return nil
	}
	err := e.journal.Close()
	e.journal = nil
	e.enc = nil
	return err
}

// PlanSlice draws this slice's faults over the chaos-eligible sessions in
// views. weightOK reports that *every* session in the slice group (eligible
// or not) is a chaos victim — the precondition for replica-global weight
// corruption; when false, weight arrivals demote to activation flips. An
// empty views yields an empty plan: with nobody opted in there is nothing
// to corrupt.
func (e *Engine) PlanSlice(views []SessionView, weightOK bool) Plan {
	var plan Plan
	if len(views) == 0 {
		return plan
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	arrivals := int(e.cfg.Rate)
	if e.rng.Float64() < e.cfg.Rate-float64(arrivals) {
		arrivals++
	}
	for a := 0; a < arrivals; a++ {
		n := 1
		if e.cfg.Burst > 1 {
			n += e.rng.Intn(e.cfg.Burst)
		}
		for i := 0; i < n; i++ {
			e.planOne(&plan, views, weightOK)
		}
	}
	return plan
}

func (e *Engine) planOne(plan *Plan, views []SessionView, weightOK bool) {
	u := e.rng.Float64()
	v := e.rng.Intn(len(views))
	switch {
	case u < e.cfg.Mix.Weight:
		if weightOK {
			plan.Weight = append(plan.Weight, e.weightSite(views[v].Step+1))
			return
		}
		// Demoted: a weight arrival on a mixed group becomes an activation
		// flip on the drawn victim, preserving the arrival rate.
		plan.Activation = append(plan.Activation, SessionFault{v, e.activationSite(views[v])})
	case u < e.cfg.Mix.Weight+e.cfg.Mix.KV:
		plan.KV = append(plan.KV, SessionFault{v, e.kvSite(views[v])})
	default:
		plan.Activation = append(plan.Activation, SessionFault{v, e.activationSite(views[v])})
	}
}

// activationSite plans a transient flip at a uniform step of the victim's
// slice and a width-uniform neuron.
func (e *Engine) activationSite(v SessionView) fault.Site {
	site := fault.Site{
		Target: fault.TargetActivation,
		Step:   v.Step + 1 + e.rng.Intn(v.Budget),
	}
	off := e.rng.Intn(e.perTokenSum)
	for i, w := range e.layerElems {
		if off < w {
			site.Layer = e.layers[i]
			site.Elem = off
			break
		}
		off -= w
	}
	site.Bits = e.cfg.Fault.PickBits(e.cfg.DType, e.rng)
	return site
}

// kvSite plans a flip of one resident KV element of the victim.
func (e *Engine) kvSite(v SessionView) fault.Site {
	kind := model.KProj
	if e.rng.Intn(2) == 1 {
		kind = model.VProj
	}
	pos := e.rng.Intn(v.Rows)
	col := e.rng.Intn(e.mcfg.Hidden)
	return fault.Site{
		Target: fault.TargetKVCache,
		Step:   v.Step,
		Layer:  model.LayerRef{Block: e.rng.Intn(e.mcfg.Blocks), Kind: kind},
		Elem:   pos*e.mcfg.Hidden + col,
		Bits:   e.cfg.Fault.PickBits(e.cfg.DType, e.rng),
	}
}

// weightSite plans a persistent flip of one size-uniform weight element;
// step records when the corruption lands, for the journal.
func (e *Engine) weightSite(step int) fault.Site {
	site := fault.Site{Target: fault.TargetWeight, Step: step}
	w := e.rng.Int63n(e.weightSum)
	for i, we := range e.weightElems {
		if w < int64(we) {
			site.Layer = e.layers[i]
			site.Elem = int(w)
			break
		}
		w -= int64(we)
	}
	site.Bits = e.cfg.Fault.PickBits(e.cfg.DType, e.rng)
	return site
}

// Record journals one event, stamping its sequence number and bumping the
// matching counter. The serving layer calls it when a planned fault is
// actually applied and when detection/recovery actions fire.
func (e *Engine) Record(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	ev.Seq = e.seq
	if len(e.events) >= e.cfg.MaxEvents {
		copy(e.events, e.events[1:])
		e.events = e.events[:len(e.events)-1]
	}
	e.events = append(e.events, ev)
	if e.enc != nil {
		_ = e.enc.Encode(ev) // journal loss must not stall serving
	}
	switch ev.Kind {
	case EvInject:
		switch ev.Target {
		case fault.TargetWeight.String():
			e.counters.InjectedWeight++
		case fault.TargetKVCache.String():
			e.counters.InjectedKV++
		default:
			e.counters.InjectedActivation++
		}
	case EvScrubDetect:
		e.counters.ScrubDetected++
	case EvRebuild:
		e.counters.Rebuilds++
	}
}

// Counters snapshots the aggregate event counts.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Events returns a copy of the in-memory event ring (most recent MaxEvents,
// oldest first).
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}
