package chaos

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ft2/internal/fault"
	"ft2/internal/model"
)

func chaosCfg(t *testing.T) model.Config {
	t.Helper()
	cfg, err := model.ConfigByName("qwen2-1.5b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func testViews() []SessionView {
	return []SessionView{
		{ID: 101, Step: 4, Budget: 3, Rows: 12},
		{ID: 102, Step: 0, Budget: 2, Rows: 8},
		{ID: 103, Step: 9, Budget: 1, Rows: 17},
	}
}

func planString(p Plan) string {
	s := ""
	for _, f := range p.Activation {
		s += fmt.Sprintf("A%d:%s;", f.Session, f.Site)
	}
	for _, f := range p.KV {
		s += fmt.Sprintf("K%d:%s;", f.Session, f.Site)
	}
	for _, w := range p.Weight {
		s += fmt.Sprintf("W:%s;", w)
	}
	return s
}

func TestNewEngineRejectsZeroRate(t *testing.T) {
	if _, err := NewEngine(Config{}, chaosCfg(t)); err == nil {
		t.Fatal("zero rate must be rejected")
	}
}

// The fault stream is a pure function of the seed and the arrival order.
func TestPlanSliceDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 1.5, Burst: 3, Mix: fault.TargetMix{Weight: 0.3, KV: 0.2}}
	mcfg := chaosCfg(t)
	a, err := NewEngine(cfg, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfg, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		weightOK := i%2 == 0
		pa, pb := a.PlanSlice(testViews(), weightOK), b.PlanSlice(testViews(), weightOK)
		if planString(pa) != planString(pb) {
			t.Fatalf("slice %d: plans diverge:\n%s\n%s", i, planString(pa), planString(pb))
		}
	}
}

// Every planned site must be applicable: activation steps inside the
// victim's slice and element within the layer width, KV positions within the
// victim's resident rows, weight sites only on all-victim groups.
func TestPlanSliceSitesInRange(t *testing.T) {
	mcfg := chaosCfg(t)
	e, err := NewEngine(Config{Seed: 7, Rate: 3, Burst: 2, Mix: fault.TargetMix{Weight: 0.4, KV: 0.3}}, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	views := testViews()
	sawA, sawK, sawW := 0, 0, 0
	for i := 0; i < 200; i++ {
		p := e.PlanSlice(views, true)
		for _, f := range p.Activation {
			sawA++
			v := views[f.Session]
			if f.Site.Step <= v.Step || f.Site.Step > v.Step+v.Budget {
				t.Fatalf("activation step %d outside slice (%d, %d]", f.Site.Step, v.Step, v.Step+v.Budget)
			}
			if f.Site.Elem >= mcfg.OutDim(f.Site.Layer.Kind) {
				t.Fatalf("activation elem %d beyond layer width %d", f.Site.Elem, mcfg.OutDim(f.Site.Layer.Kind))
			}
			if len(f.Site.Bits) == 0 {
				t.Fatal("no bits planned")
			}
		}
		for _, f := range p.KV {
			sawK++
			v := views[f.Session]
			pos, col := f.Site.Elem/mcfg.Hidden, f.Site.Elem%mcfg.Hidden
			if pos >= v.Rows || col >= mcfg.Hidden {
				t.Fatalf("kv (pos=%d col=%d) beyond %d resident rows", pos, col, v.Rows)
			}
			if k := f.Site.Layer.Kind; k != model.KProj && k != model.VProj {
				t.Fatalf("kv fault on non-KV kind %v", k)
			}
		}
		for _, w := range p.Weight {
			sawW++
			we := mcfg.OutDim(w.Layer.Kind) * mcfg.InDim(w.Layer.Kind)
			if w.Elem >= we {
				t.Fatalf("weight elem %d beyond matrix size %d", w.Elem, we)
			}
		}
	}
	if sawA == 0 || sawK == 0 || sawW == 0 {
		t.Fatalf("target mix never exercised: act=%d kv=%d weight=%d", sawA, sawK, sawW)
	}
}

// A mixed group must never see weight corruption: weight arrivals demote to
// activation flips.
func TestPlanSliceWeightDemotion(t *testing.T) {
	e, err := NewEngine(Config{Seed: 3, Rate: 2, Mix: fault.TargetMix{Weight: 1}}, chaosCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := e.PlanSlice(testViews(), false)
		if len(p.Weight) != 0 || len(p.KV) != 0 {
			t.Fatalf("mixed group got non-activation faults: %+v", p)
		}
	}
}

// No victims, no faults — and an empty plan costs no RNG state that would
// shift later slices (checked implicitly by determinism above).
func TestPlanSliceNoVictims(t *testing.T) {
	e, err := NewEngine(Config{Seed: 1, Rate: 10}, chaosCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if p := e.PlanSlice(nil, true); !p.Empty() {
		t.Fatalf("faults with no victims: %+v", p)
	}
}

// The arrival count tracks Rate in expectation.
func TestPlanSliceRate(t *testing.T) {
	e, err := NewEngine(Config{Seed: 5, Rate: 1.5}, chaosCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const slices = 2000
	for i := 0; i < slices; i++ {
		p := e.PlanSlice(testViews(), true)
		total += len(p.Activation) + len(p.KV) + len(p.Weight)
	}
	mean := float64(total) / slices
	if mean < 1.35 || mean > 1.65 {
		t.Fatalf("mean arrivals %.3f far from configured rate 1.5", mean)
	}
}

// Record journals JSONL, bounds the ring, and keeps counters by kind.
func TestRecordJournalAndCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	e, err := NewEngine(Config{Seed: 1, Rate: 1, Journal: path, MaxEvents: 4}, chaosCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.Record(Event{Kind: EvInject, Target: "activation", Session: int64(i)})
	}
	e.Record(Event{Kind: EvInject, Target: "weight"})
	e.Record(Event{Kind: EvInject, Target: "kv"})
	e.Record(Event{Kind: EvScrubDetect, Replica: 1})
	e.Record(Event{Kind: EvRebuild, Replica: 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	c := e.Counters()
	want := Counters{InjectedActivation: 6, InjectedWeight: 1, InjectedKV: 1, ScrubDetected: 1, Rebuilds: 1}
	if c != want {
		t.Fatalf("counters %+v, want %+v", c, want)
	}
	if c.Injected() != 8 {
		t.Fatalf("Injected() = %d, want 8", c.Injected())
	}

	ring := e.Events()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ring))
	}
	if ring[len(ring)-1].Seq != 10 || ring[0].Seq != 7 {
		t.Fatalf("ring seqs [%d..%d], want [7..10]", ring[0].Seq, ring[len(ring)-1].Seq)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 10 {
		t.Fatalf("journal holds %d events, want all 10", len(lines))
	}
	for i, ev := range lines {
		if ev.Seq != int64(i+1) {
			t.Fatalf("journal seq %d at line %d", ev.Seq, i)
		}
	}
}
