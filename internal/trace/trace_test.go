package trace

import (
	"math"
	"strings"
	"testing"

	"ft2/internal/core"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
)

func testModel(t *testing.T) *model.Model {
	t.Helper()
	cfg, err := model.ConfigByName("opt-2.7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	return model.MustNew(cfg, 42, numerics.FP16)
}

func TestFaultFreeRunHasNoDeviation(t *testing.T) {
	m := testModel(t)
	devs, err := Run(m, []int{4, 5, 6, 7}, 6, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) == 0 {
		t.Fatal("no deviations recorded")
	}
	for _, d := range devs {
		if d.RelL2 != 0 || d.MaxAbs != 0 || d.NaNCount != 0 {
			t.Fatalf("fault-free run deviates at %v: %+v", d.Layer, d)
		}
	}
	if len(Affected(devs, 0.001)) != 0 {
		t.Error("Affected must be empty for a fault-free run")
	}
}

func TestInjectedFaultPropagatesForward(t *testing.T) {
	m := testModel(t)
	site := model.LayerRef{Block: 0, Kind: model.FC2}
	devs, err := Run(m, []int{4, 5, 6, 7}, 6, func() {
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer == site && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
				out.Data[0] = 30000
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	affected := Affected(devs, 1e-3)
	if len(affected) == 0 {
		t.Fatal("a huge fault must produce deviations")
	}
	// No deviation may appear before the fault step.
	for _, d := range affected {
		if d.Step < 1 {
			t.Errorf("deviation before the fault step: %+v", d)
		}
	}
	// The faulted layer itself must show the original corruption magnitude.
	foundOrigin := false
	for _, d := range affected {
		if d.Layer == site && d.Step == 1 && d.Site == model.SiteLinearOut {
			foundOrigin = true
			if d.MaxAbs < 20000 {
				t.Errorf("origin deviation too small: %g", d.MaxAbs)
			}
		}
	}
	if !foundOrigin {
		t.Error("origin site missing from the trace")
	}
	// Block 1 (downstream) must be affected at the fault step or later.
	downstream := false
	for _, d := range affected {
		if d.Layer.Block == 1 {
			downstream = true
		}
	}
	if !downstream {
		t.Error("fault did not propagate to the next block")
	}
}

func TestNaNPropagationCounted(t *testing.T) {
	m := testModel(t)
	nan := float32(math.NaN())
	devs, err := Run(m, []int{4, 5, 6}, 4, func() {
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer == (model.LayerRef{Block: 0, Kind: model.FC1}) && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
				out.Data[2] = nan
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	totalNaN := 0
	for _, d := range devs {
		totalNaN += d.NaNCount
	}
	if totalNaN == 0 {
		t.Error("NaN injection must surface NaN counts in the trace")
	}
}

func TestProtectionLimitsPropagation(t *testing.T) {
	m := testModel(t)
	prompt := []int{4, 5, 6, 7}
	inject := func() {
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer == (model.LayerRef{Block: 0, Kind: model.OutProj}) && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
				out.Data[0] = 30000
			}
		})
	}
	unprotected, err := Run(m, prompt, 6, inject)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Run(m, prompt, 6, func() {
		inject()
		core.Attach(m, core.Defaults()) // cleared by Run's ClearHooks afterwards
	})
	if err != nil {
		t.Fatal(err)
	}
	maxRel := func(devs []Deviation, block int) float64 {
		worst := 0.0
		for _, d := range devs {
			if d.Layer.Block == block && d.RelL2 > worst {
				worst = d.RelL2
			}
		}
		return worst
	}
	// Downstream corruption must be materially smaller with FT2 attached.
	if maxRel(protected, 1) >= maxRel(unprotected, 1) {
		t.Errorf("FT2 did not reduce downstream corruption: %g vs %g",
			maxRel(protected, 1), maxRel(unprotected, 1))
	}
}

func TestSummarize(t *testing.T) {
	m := testModel(t)
	devs, err := Run(m, []int{4, 5, 6}, 4, func() {
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer == (model.LayerRef{Block: 0, Kind: model.VProj}) && ctx.Step == 1 && ctx.Site == model.SiteLinearOut {
				out.Data[0] = 9000
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(Affected(devs, 1e-4), m.Cfg.Family)
	if !strings.Contains(s, "V_PROJ") {
		t.Errorf("summary missing the origin layer:\n%s", s)
	}
	if !strings.Contains(s, "max rel-L2") {
		t.Error("summary header missing")
	}
}

func TestCompareShapeDrift(t *testing.T) {
	m := testModel(t)
	tr := New()
	h := m.RegisterHook(tr.RecordHook())
	m.Generate([]int{4, 5, 6}, 3)
	m.RemoveHook(h)
	if tr.SiteCount() == 0 {
		t.Fatal("no snapshots recorded")
	}
	var devs []Deviation
	var cmpErr error
	m.RegisterHook(tr.CompareHook(&devs, &cmpErr))
	m.Generate([]int{4, 5, 6, 7, 8}, 3) // longer prompt: shapes drift
	m.ClearHooks()
	if cmpErr == nil {
		t.Error("shape drift must be reported")
	}
}
