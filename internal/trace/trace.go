// Package trace records how a fault propagates through the network: it
// captures every hook site's activations during a golden (fault-free) run
// and then measures, site by site and step by step, how far a faulty run
// deviates. This is the instrumentation behind the paper's Section 4.1.1
// analysis — residual branches recovering NaN, scaling operations and
// activations damping extreme values, and out-of-bound values surviving
// until a protected layer clips them.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ft2/internal/model"
	"ft2/internal/tensor"
)

// siteKey addresses one hook invocation.
type siteKey struct {
	Step  int
	Layer model.LayerRef
	Site  model.Site
}

// Deviation summarizes how one site's activations differ between the golden
// and the faulty run.
type Deviation struct {
	Step     int
	Layer    model.LayerRef
	Site     model.Site
	MaxAbs   float64 // max |faulty - golden| over finite pairs
	RelL2    float64 // ‖faulty-golden‖ / (‖golden‖ + ε)
	NaNCount int     // NaNs in the faulty tensor
}

// Tracer captures golden activations and compares faulty runs against them.
type Tracer struct {
	golden map[siteKey][]float32
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{golden: make(map[siteKey][]float32)}
}

// RecordHook returns a hook that snapshots every site of the golden run.
func (t *Tracer) RecordHook() model.Hook {
	return func(ctx model.HookCtx, out *tensor.Tensor) {
		k := siteKey{Step: ctx.Step, Layer: ctx.Layer, Site: ctx.Site}
		t.golden[k] = append([]float32(nil), out.Data...)
	}
}

// SiteCount reports how many golden snapshots are held.
func (t *Tracer) SiteCount() int { return len(t.golden) }

// CompareHook returns a hook that, during the faulty run, appends one
// Deviation per site to out. Sites missing from the golden record (a
// different prompt or generation length) are an error surfaced via the
// returned pointer after the run.
func (t *Tracer) CompareHook(out *[]Deviation, errOut *error) model.Hook {
	return func(ctx model.HookCtx, tens *tensor.Tensor) {
		k := siteKey{Step: ctx.Step, Layer: ctx.Layer, Site: ctx.Site}
		ref, ok := t.golden[k]
		if !ok || len(ref) != len(tens.Data) {
			if *errOut == nil {
				*errOut = fmt.Errorf("trace: no golden snapshot for step %d %v/%v (shape drift?)", ctx.Step, ctx.Layer, ctx.Site)
			}
			return
		}
		d := Deviation{Step: ctx.Step, Layer: ctx.Layer, Site: ctx.Site}
		var num, den float64
		for i, v := range tens.Data {
			g := float64(ref[i])
			f := float64(v)
			if math.IsNaN(f) {
				d.NaNCount++
				continue
			}
			diff := math.Abs(f - g)
			if diff > d.MaxAbs {
				d.MaxAbs = diff
			}
			num += (f - g) * (f - g)
			den += g * g
		}
		d.RelL2 = math.Sqrt(num) / (math.Sqrt(den) + 1e-12)
		*out = append(*out, d)
	}
}

// Run traces a faulty execution against a fresh golden run of the same
// model. prepare registers the fault-producing hooks (injector, protector)
// on the model; it runs after the tracer's compare hook is installed, so
// hook ordering inside prepare matches campaign semantics.
func Run(m *model.Model, prompt []int, genTokens int, prepare func()) ([]Deviation, error) {
	tr := New()
	h := m.RegisterHook(tr.RecordHook())
	m.Generate(prompt, genTokens)
	m.RemoveHook(h)

	var devs []Deviation
	var cmpErr error
	m.ClearHooks()
	prepare()
	m.RegisterHook(tr.CompareHook(&devs, &cmpErr))
	m.Generate(prompt, genTokens)
	m.ClearHooks()
	if cmpErr != nil {
		return nil, cmpErr
	}
	return devs, nil
}

// Affected filters deviations to those with measurable corruption.
func Affected(devs []Deviation, relThreshold float64) []Deviation {
	var out []Deviation
	for _, d := range devs {
		if d.RelL2 > relThreshold || d.NaNCount > 0 {
			out = append(out, d)
		}
	}
	return out
}

// Summarize renders the worst deviation per (layer, site) across steps,
// ordered by forward position — a compact propagation picture.
func Summarize(devs []Deviation, family model.Family) string {
	type agg struct {
		maxRel  float64
		maxAbs  float64
		nan     int
		firstAt int
	}
	byLayer := make(map[siteKey]*agg) // step 0 key reused with Step=-1
	for _, d := range devs {
		k := siteKey{Step: -1, Layer: d.Layer, Site: d.Site}
		a := byLayer[k]
		if a == nil {
			a = &agg{firstAt: d.Step}
			byLayer[k] = a
		}
		if d.RelL2 > a.maxRel {
			a.maxRel = d.RelL2
		}
		if d.MaxAbs > a.maxAbs {
			a.maxAbs = d.MaxAbs
		}
		a.nan += d.NaNCount
	}
	keys := make([]siteKey, 0, len(byLayer))
	for k := range byLayer {
		keys = append(keys, k)
	}
	order := make(map[model.LayerKind]int)
	for i, k := range family.LayerKinds() {
		order[k] = i
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Layer.Block != b.Layer.Block {
			return a.Layer.Block < b.Layer.Block
		}
		if order[a.Layer.Kind] != order[b.Layer.Kind] {
			return order[a.Layer.Kind] < order[b.Layer.Kind]
		}
		return a.Site < b.Site
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-12s %-12s %-8s\n", "site", "max rel-L2", "max |dev|", "NaNs")
	for _, k := range keys {
		a := byLayer[k]
		fmt.Fprintf(&sb, "%-28s %-12.4g %-12.4g %-8d\n",
			fmt.Sprintf("%s/%s", k.Layer, k.Site), a.maxRel, a.maxAbs, a.nan)
	}
	return sb.String()
}
