// Package arch analyzes transformer architectures for the FT2 criticality
// heuristic (Section 4.1 of the paper): a linear layer is deemed *critical*
// if no scaling operation or activation layer is present between its output
// and the next linear layer. The analysis is purely structural — no
// inference runs — which is exactly the point of the heuristic: it replaces
// the expensive leave-one-out fault-injection study of Figure 6.
//
// The package also encodes the protection-coverage sets of the four methods
// compared in Table 1 (Ranger, MaxiMals, Global Clipper, FT2).
package arch

import (
	"fmt"
	"sort"
	"strings"

	"ft2/internal/model"
)

// FollowOp classifies what sits between a linear layer's output and the
// next linear layer on its dataflow path.
type FollowOp int

const (
	// FollowNone: the output reaches the next linear layer (or the residual
	// stream) without any magnitude-limiting operation.
	FollowNone FollowOp = iota
	// FollowScaling: the output feeds the attention score computation,
	// which scales by 1/sqrt(d) and passes through a softmax — both limit
	// the magnitude of faulty values.
	FollowScaling
	// FollowActivation: the output passes through the MLP activation
	// (ReLU/GELU/SiLU), which crushes extreme negative values and, combined
	// with downstream protection, limits fault propagation.
	FollowActivation
)

// String implements fmt.Stringer.
func (f FollowOp) String() string {
	switch f {
	case FollowNone:
		return "none"
	case FollowScaling:
		return "scaling"
	case FollowActivation:
		return "activation"
	default:
		return fmt.Sprintf("FollowOp(%d)", int(f))
	}
}

// NextOp returns what follows a layer kind before the next linear layer in
// the given architecture family.
func NextOp(family model.Family, kind model.LayerKind) FollowOp {
	switch kind {
	case model.KProj, model.QProj:
		// K and Q feed the attention score calculation: scaled dot product
		// (×1/sqrt(d)) followed by softmax.
		return FollowScaling
	case model.FC1:
		// FC1 is followed by the MLP activation (ReLU for OPT, GELU for
		// GPT-J) before FC2.
		return FollowActivation
	case model.GateProj:
		// GateProj passes through SiLU before the gating multiply and
		// DownProj.
		return FollowActivation
	case model.VProj, model.OutProj, model.FC2, model.UpProj, model.DownProj:
		// V is consumed directly by the attention-weight application (a
		// convex combination, no magnitude reduction for extreme values);
		// OutProj/FC2/DownProj feed the residual stream; UpProj is only
		// multiplied element-wise by the activated gate (not itself
		// activated).
		return FollowNone
	default:
		panic(fmt.Sprintf("arch: unknown layer kind %v", kind))
	}
}

// IsCritical applies the FT2 heuristic to one layer kind: critical iff no
// scaling operation or activation layer follows it before the next linear
// layer.
func IsCritical(family model.Family, kind model.LayerKind) bool {
	return NextOp(family, kind) == FollowNone
}

// CriticalKinds returns the critical layer kinds of a family, in block
// order.
func CriticalKinds(family model.Family) []model.LayerKind {
	var out []model.LayerKind
	for _, k := range family.LayerKinds() {
		if IsCritical(family, k) {
			out = append(out, k)
		}
	}
	return out
}

// CriticalLayers returns every critical linear layer instance of a model
// config.
func CriticalLayers(cfg model.Config) []model.LayerRef {
	var out []model.LayerRef
	for _, ref := range cfg.LinearLayers() {
		if IsCritical(cfg.Family, ref.Kind) {
			out = append(out, ref)
		}
	}
	return out
}

// Method identifies a protection scheme compared in the paper.
type Method int

const (
	// MethodNone applies no protection.
	MethodNone Method = iota
	// MethodRanger protects only activation-layer outputs (Chen et al.).
	MethodRanger
	// MethodMaxiMals protects attention-block and MLP outputs
	// (OUT_PROJ, FC2, DOWN_PROJ) but misses V_PROJ and UP_PROJ.
	MethodMaxiMals
	// MethodGlobalClipper protects the attention-block linear layers
	// (V_PROJ, OUT_PROJ) and corrects NaN, but ignores the MLP.
	MethodGlobalClipper
	// MethodFT2 protects every critical layer with first-token bounds.
	MethodFT2
	// MethodFT2Offline is FT2's coverage with offline-profiled bounds,
	// used to validate the first-token bounds (Fig. 13).
	MethodFT2Offline
)

// String implements fmt.Stringer with the paper's names.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "No Protection"
	case MethodRanger:
		return "Ranger"
	case MethodMaxiMals:
		return "MaxiMals"
	case MethodGlobalClipper:
		return "Global Clipper"
	case MethodFT2:
		return "FT2"
	case MethodFT2Offline:
		return "FT2 (offline bounds)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// AllMethods lists the protections in the comparison order of Figure 13.
var AllMethods = []Method{MethodNone, MethodRanger, MethodMaxiMals, MethodGlobalClipper, MethodFT2, MethodFT2Offline}

// CoveragePoint is one protected hook site.
type CoveragePoint struct {
	Kind model.LayerKind
	Site model.Site
}

// Coverage returns the set of hook sites a method protects for the given
// family, reproducing Table 1. The returned map is keyed by coverage point;
// membership means "protected".
func Coverage(m Method, family model.Family) map[CoveragePoint]bool {
	cov := make(map[CoveragePoint]bool)
	linear := func(kinds ...model.LayerKind) {
		present := make(map[model.LayerKind]bool)
		for _, k := range family.LayerKinds() {
			present[k] = true
		}
		for _, k := range kinds {
			if present[k] {
				cov[CoveragePoint{k, model.SiteLinearOut}] = true
			}
		}
	}
	switch m {
	case MethodNone:
	case MethodRanger:
		// Activation outputs only: no linear layer is protected.
		switch family {
		case model.FamilyOPT, model.FamilyGPTJ:
			cov[CoveragePoint{model.FC1, model.SiteActivationOut}] = true
		case model.FamilyLlama:
			cov[CoveragePoint{model.GateProj, model.SiteActivationOut}] = true
		}
	case MethodMaxiMals:
		linear(model.OutProj, model.FC2, model.DownProj)
	case MethodGlobalClipper:
		linear(model.VProj, model.OutProj)
	case MethodFT2, MethodFT2Offline:
		linear(CriticalKinds(family)...)
	default:
		panic(fmt.Sprintf("arch: unknown method %v", m))
	}
	return cov
}

// CorrectsNaN reports whether the method detects and corrects NaN values at
// its protected sites (Global Clipper and FT2 do; the others rely on range
// checks alone, which NaN comparisons slip through).
func CorrectsNaN(m Method) bool {
	switch m {
	case MethodGlobalClipper, MethodFT2, MethodFT2Offline:
		return true
	default:
		return false
	}
}

// CoverageTable renders the Table 1 criticality/coverage matrix for a
// family as an aligned text table.
func CoverageTable(family model.Family) string {
	methods := []Method{MethodRanger, MethodMaxiMals, MethodGlobalClipper, MethodFT2}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s", "Layer", "Critical")
	for _, m := range methods {
		fmt.Fprintf(&b, " %-15s", m)
	}
	b.WriteByte('\n')
	for _, k := range family.LayerKinds() {
		crit := "N"
		if IsCritical(family, k) {
			crit = "Y"
		}
		fmt.Fprintf(&b, "%-10s %-9s", k, crit)
		for _, m := range methods {
			mark := ""
			if Coverage(m, family)[CoveragePoint{k, model.SiteLinearOut}] {
				mark = "yes"
			}
			fmt.Fprintf(&b, " %-15s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// UnprotectedCritical returns the critical layer kinds a method leaves
// uncovered — the paper's explanation for each baseline's residual SDCs.
func UnprotectedCritical(m Method, family model.Family) []model.LayerKind {
	cov := Coverage(m, family)
	var out []model.LayerKind
	for _, k := range CriticalKinds(family) {
		if !cov[CoveragePoint{k, model.SiteLinearOut}] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
