package arch

import (
	"strings"
	"testing"

	"ft2/internal/model"
)

// Table 1 ground truth: the paper's criticality column.
func TestCriticalityMatchesTable1(t *testing.T) {
	want := map[model.LayerKind]bool{
		model.KProj:    false,
		model.QProj:    false,
		model.VProj:    true,
		model.OutProj:  true,
		model.FC1:      false,
		model.FC2:      true,
		model.UpProj:   true,
		model.GateProj: false,
		model.DownProj: true,
	}
	for _, f := range []model.Family{model.FamilyOPT, model.FamilyGPTJ, model.FamilyLlama} {
		for _, k := range f.LayerKinds() {
			if got := IsCritical(f, k); got != want[k] {
				t.Errorf("%v/%v: IsCritical=%v, want %v", f, k, got, want[k])
			}
		}
	}
}

func TestNextOpClassification(t *testing.T) {
	if NextOp(model.FamilyOPT, model.KProj) != FollowScaling {
		t.Error("K_PROJ must be followed by scaling")
	}
	if NextOp(model.FamilyOPT, model.FC1) != FollowActivation {
		t.Error("FC1 must be followed by activation")
	}
	if NextOp(model.FamilyLlama, model.GateProj) != FollowActivation {
		t.Error("GATE_PROJ must be followed by activation")
	}
	if NextOp(model.FamilyLlama, model.UpProj) != FollowNone {
		t.Error("UP_PROJ has no magnitude-limiting follower")
	}
	if FollowNone.String() != "none" || FollowScaling.String() != "scaling" || FollowActivation.String() != "activation" {
		t.Error("FollowOp strings wrong")
	}
}

func TestCriticalKindsPerFamily(t *testing.T) {
	opt := CriticalKinds(model.FamilyOPT)
	if len(opt) != 3 { // V, OUT, FC2
		t.Fatalf("OPT critical kinds = %v, want 3", opt)
	}
	llama := CriticalKinds(model.FamilyLlama)
	if len(llama) != 4 { // V, OUT, UP, DOWN
		t.Fatalf("Llama critical kinds = %v, want 4", llama)
	}
}

func TestCriticalLayersCount(t *testing.T) {
	cfg, err := model.ConfigByName("llama2-7b-sim")
	if err != nil {
		t.Fatal(err)
	}
	crit := CriticalLayers(cfg)
	if len(crit) != cfg.Blocks*4 {
		t.Errorf("critical layers = %d, want %d", len(crit), cfg.Blocks*4)
	}
}

// Table 1 coverage ground truth per method.
func TestCoverageMatchesTable1(t *testing.T) {
	fam := model.FamilyLlama
	cases := []struct {
		m     Method
		kinds []model.LayerKind
	}{
		{MethodNone, nil},
		{MethodMaxiMals, []model.LayerKind{model.OutProj, model.DownProj}}, // FC2 absent in llama blocks
		{MethodGlobalClipper, []model.LayerKind{model.VProj, model.OutProj}},
		{MethodFT2, []model.LayerKind{model.VProj, model.OutProj, model.UpProj, model.DownProj}},
	}
	for _, c := range cases {
		cov := Coverage(c.m, fam)
		gotLinear := 0
		for p := range cov {
			if p.Site == model.SiteLinearOut {
				gotLinear++
			}
		}
		if gotLinear != len(c.kinds) {
			t.Errorf("%v: covers %d linear kinds, want %d", c.m, gotLinear, len(c.kinds))
		}
		for _, k := range c.kinds {
			if !cov[CoveragePoint{k, model.SiteLinearOut}] {
				t.Errorf("%v must cover %v", c.m, k)
			}
		}
	}
	// OPT family: MaxiMals covers OUT_PROJ and FC2.
	covOpt := Coverage(MethodMaxiMals, model.FamilyOPT)
	if !covOpt[CoveragePoint{model.FC2, model.SiteLinearOut}] || !covOpt[CoveragePoint{model.OutProj, model.SiteLinearOut}] {
		t.Error("MaxiMals on OPT must cover OUT_PROJ and FC2")
	}
	if covOpt[CoveragePoint{model.VProj, model.SiteLinearOut}] {
		t.Error("MaxiMals must not cover V_PROJ")
	}
}

func TestRangerCoversOnlyActivations(t *testing.T) {
	for _, f := range []model.Family{model.FamilyOPT, model.FamilyGPTJ, model.FamilyLlama} {
		cov := Coverage(MethodRanger, f)
		if len(cov) != 1 {
			t.Fatalf("%v: Ranger coverage size %d, want 1", f, len(cov))
		}
		for p := range cov {
			if p.Site != model.SiteActivationOut {
				t.Errorf("%v: Ranger must protect activation outputs only, got %v", f, p)
			}
		}
	}
}

func TestFT2CoversAllCritical(t *testing.T) {
	for _, f := range []model.Family{model.FamilyOPT, model.FamilyGPTJ, model.FamilyLlama} {
		if miss := UnprotectedCritical(MethodFT2, f); len(miss) != 0 {
			t.Errorf("%v: FT2 leaves critical layers unprotected: %v", f, miss)
		}
		if miss := UnprotectedCritical(MethodFT2Offline, f); len(miss) != 0 {
			t.Errorf("%v: FT2-offline leaves critical layers unprotected: %v", f, miss)
		}
	}
}

// The paper's explanation for baseline deficiencies: MaxiMals misses UP_PROJ
// on Llama-family models; Global Clipper misses the MLP critical layers;
// Ranger misses everything.
func TestBaselineGaps(t *testing.T) {
	if miss := UnprotectedCritical(MethodMaxiMals, model.FamilyLlama); len(miss) != 2 ||
		miss[0] != model.VProj || miss[1] != model.UpProj {
		t.Errorf("MaxiMals/llama gaps = %v, want [V_PROJ UP_PROJ]", miss)
	}
	if miss := UnprotectedCritical(MethodGlobalClipper, model.FamilyOPT); len(miss) != 1 || miss[0] != model.FC2 {
		t.Errorf("GlobalClipper/opt gaps = %v, want [FC2]", miss)
	}
	if miss := UnprotectedCritical(MethodRanger, model.FamilyOPT); len(miss) != 3 {
		t.Errorf("Ranger/opt gaps = %v, want all 3 critical kinds", miss)
	}
}

func TestCorrectsNaN(t *testing.T) {
	if !CorrectsNaN(MethodFT2) || !CorrectsNaN(MethodFT2Offline) || !CorrectsNaN(MethodGlobalClipper) {
		t.Error("FT2 and Global Clipper correct NaN")
	}
	if CorrectsNaN(MethodRanger) || CorrectsNaN(MethodMaxiMals) || CorrectsNaN(MethodNone) {
		t.Error("Ranger/MaxiMals/None must not correct NaN")
	}
}

func TestCoverageTableRenders(t *testing.T) {
	for _, f := range []model.Family{model.FamilyOPT, model.FamilyLlama} {
		tbl := CoverageTable(f)
		if !strings.Contains(tbl, "V_PROJ") || !strings.Contains(tbl, "Critical") {
			t.Errorf("%v: coverage table missing content:\n%s", f, tbl)
		}
		lines := strings.Count(tbl, "\n")
		if lines != len(f.LayerKinds())+1 {
			t.Errorf("%v: table has %d lines, want %d", f, lines, len(f.LayerKinds())+1)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodFT2.String() != "FT2" || MethodRanger.String() != "Ranger" ||
		MethodMaxiMals.String() != "MaxiMals" || MethodGlobalClipper.String() != "Global Clipper" ||
		MethodNone.String() != "No Protection" {
		t.Error("Method strings wrong")
	}
	if len(AllMethods) != 6 {
		t.Error("AllMethods must list 6 entries")
	}
}
