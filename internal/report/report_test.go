package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Name", "SDC")
	tb.AddRow("FT2", 0.204)
	tb.AddRow("Ranger", 2.83)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "FT2") {
		t.Errorf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0.204") {
		t.Error("float formatting wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("xxxxxxxx", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and row must place column 2 at the same offset.
	hIdx := strings.Index(lines[0], "LongHeader")
	rIdx := strings.Index(lines[2], "1")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header@%d row@%d\n%s", hIdx, rIdx, out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", "he said \"hi\"")
	tb.AddRow(1, 2)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Error("comma cell must be quoted")
	}
	if !strings.Contains(out, `"he said ""hi"""`) {
		t.Error("quote cell must be escaped")
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Error("header row wrong")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Error("empty table must still render headers")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestRenderPropagatesWriteErrors(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow(1)
	if err := tb.Render(&failWriter{}); err == nil {
		t.Error("Render must propagate writer errors")
	}
	if err := tb.CSV(&failWriter{}); err == nil {
		t.Error("CSV must propagate writer errors")
	}
}

func TestRowsWiderThanHeaders(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "extra", "columns")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "columns") {
		t.Errorf("extra cells must still render:\n%s", out)
	}
}

func TestFloat32Formatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(float32(1.5))
	if !strings.Contains(tb.String(), "1.500") {
		t.Error("float32 must format with 3 decimals")
	}
}

func TestNotesRenderedAfterTitleNotInCSV(t *testing.T) {
	tb := NewTable("Title", "a")
	tb.AddNote("interrupted: partial results")
	tb.AddRow(1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, note, header, sep, row
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[1] != "note: interrupted: partial results" {
		t.Errorf("note line wrong: %q", lines[1])
	}
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "interrupted") {
		t.Error("notes must not leak into CSV output")
	}
}

func TestCampaignBreakdown(t *testing.T) {
	tb := CampaignBreakdown(50, 2, 8,
		map[string]int{"panic": 1, "timeout": 1},
		[]string{"trial 7 failed (panic, 2 attempts): boom"})
	out := tb.String()
	for _, want := range []string{"completed", "failed: panic", "failed: timeout",
		"partial result: 50 completed, 2 failed, 8 skipped", "trial 7 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	// A complete campaign gets no partial note.
	clean := CampaignBreakdown(60, 0, 0, nil, nil)
	if strings.Contains(clean.String(), "partial result") {
		t.Error("complete campaign must not be annotated as partial")
	}
	if len(clean.Rows) != 3 {
		t.Errorf("clean breakdown rows = %d, want 3", len(clean.Rows))
	}
}
