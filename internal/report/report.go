// Package report renders experiment results as aligned text tables and CSV,
// the output format of every figure/table regenerator in cmd/ft2bench.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table with an optional title and
// optional notes (rendered between the title and the header; not part of
// the CSV output).
type Table struct {
	Title   string
	Notes   []string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddNote appends an annotation line — e.g. that the table covers a
// partially-completed campaign.
func (t *Table) AddNote(note string) {
	t.Notes = append(t.Notes, note)
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// CampaignBreakdown renders the execution breakdown of a (possibly
// partial) campaign: how many trials completed, failed and were skipped,
// the failure taxonomy, and a sample of the recorded trial errors. The
// package stays decoupled from the campaign types — callers pass plain
// counts and strings.
func CampaignBreakdown(completed, failed, skipped int, failures map[string]int, errs []string) *Table {
	t := NewTable("Campaign execution breakdown", "Category", "Trials")
	t.AddRow("completed", completed)
	t.AddRow("failed", failed)
	t.AddRow("skipped", skipped)
	kinds := make([]string, 0, len(failures))
	for k := range failures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.AddRow("failed: "+k, failures[k])
	}
	for _, e := range errs {
		t.AddNote(e)
	}
	if failed > 0 || skipped > 0 {
		t.AddNote(PartialNote(completed, failed, skipped))
	}
	return t
}

// PartialNote formats the standard one-line partial-result annotation.
func PartialNote(completed, failed, skipped int) string {
	return fmt.Sprintf("partial result: %d completed, %d failed, %d skipped; statistics cover completed trials only",
		completed, failed, skipped)
}

// CSV writes the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
