// Command ft2policy derives an adaptive per-layer protection policy from
// measured vulnerability: it runs two fault-injection campaigns over the same
// fault distribution — unprotected and FT2-protected — breaks the SDC rates
// down by layer kind, and assigns every kind the cheapest sufficient tier
// (none / ft2 / abft / dmr / abft+ft2; see protect.DerivePolicy):
//
//	ft2policy -model llama2-7b-sim -trials 400 -o policy.json
//	ft2serve -model llama2-7b-sim -protect-policy policy.json
//
// The profiling distribution can include persistent weight corruption and
// KV-cache flips (-mix-weight / -mix-kv), matching what the chaos engine
// throws at a live server, so the derived tiers reflect the faults the
// policy will actually face.
package main

import (
	"flag"
	"fmt"
	"os"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/cliutil"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/fault"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
)

func main() {
	modelName := flag.String("model", "llama2-7b-sim", "zoo model name")
	dsName := flag.String("dataset", "squad-sim", "dataset name")
	inputs := flag.Int("inputs", 5, "evaluation inputs")
	faultName := flag.String("fault", "EXP", "fault model: 1-bit, 2-bit, EXP")
	trials := flag.Int("trials", 300, "fault injections per campaign (two campaigns run)")
	mixWeight := flag.Float64("mix-weight", 0.2, "fraction of faults landing in persistent weight corruption")
	mixKV := flag.Float64("mix-kv", 0.2, "fraction of faults landing in resident KV-cache state")
	dtypeName := flag.String("dtype", "fp16", "activation dtype: fp16, fp32")
	seed := flag.Int64("seed", 42, "base seed")
	out := flag.String("o", "policy.json", "output policy path (- for stdout)")
	base := cliutil.RegisterBase(flag.CommandLine)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ft2policy:", err)
		os.Exit(1)
	}

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		die(err)
	}
	ds, err := data.ByName(*dsName, *inputs)
	if err != nil {
		die(err)
	}
	var fm numerics.FaultModel
	switch *faultName {
	case "1-bit":
		fm = numerics.SingleBit
	case "2-bit":
		fm = numerics.DoubleBit
	case "EXP", "exp":
		fm = numerics.ExponentBit
	default:
		die(fmt.Errorf("unknown fault model %q", *faultName))
	}
	dtype := numerics.FP16
	if *dtypeName == "fp32" {
		dtype = numerics.FP32
	}

	spec := campaign.Spec{
		ModelCfg: cfg, ModelSeed: *seed, DType: dtype,
		Fault: fm, FT2Opts: core.Defaults(),
		Dataset: ds, Trials: *trials, BaseSeed: *seed + 1000,
		Targets: fault.TargetMix{Weight: *mixWeight, KV: *mixKV},
	}

	ctx, stop := base.Context()
	defer stop()

	// Two campaigns over the identical fault distribution: the unprotected
	// rate says whether a kind needs protection at all; the FT2 rate says
	// whether the cheap clamp is sufficient or exact correction is needed.
	spec.Method = arch.MethodNone
	fmt.Fprintf(os.Stderr, "ft2policy: profiling %s over %d unprotected trials...\n", cfg.Name, *trials)
	unprot, err := campaign.RunContext(ctx, spec)
	if err != nil {
		die(err)
	}
	spec.Method = arch.MethodFT2
	fmt.Fprintf(os.Stderr, "ft2policy: profiling %s over %d FT2-protected trials...\n", cfg.Name, *trials)
	ft2, err := campaign.RunContext(ctx, spec)
	if err != nil {
		die(err)
	}

	profiles := make(map[model.LayerKind]protect.KindProfile)
	for _, k := range cfg.Family.LayerKinds() {
		pu, pf := unprot.ByKind[k], ft2.ByKind[k]
		if pu.Trials == 0 {
			continue // the sampler never hit this kind; DerivePolicy treats it as unmeasured
		}
		profiles[k] = protect.KindProfile{
			Unprotected: pu.P(),
			FT2:         pf.P(),
			Trials:      pf.Trials,
		}
	}
	policy := protect.DerivePolicy(cfg.Family, profiles)

	fmt.Printf("model=%s dataset=%s fault=%s mix=%.0f%%w/%.0f%%kv trials=%d×2\n",
		cfg.Name, ds.Name, fm, *mixWeight*100, *mixKV*100, *trials)
	fmt.Printf("%-10s %-12s %-12s %s\n", "kind", "unprotected", "ft2", "tier")
	for _, k := range cfg.Family.LayerKinds() {
		prof, ok := profiles[k]
		if !ok {
			fmt.Printf("%-10s %-12s %-12s %s\n", k, "-", "-", policy.Tier(k))
			continue
		}
		fmt.Printf("%-10s %-12s %-12s %s\n", k,
			fmt.Sprintf("%.2f%%", prof.Unprotected*100),
			fmt.Sprintf("%.2f%%", prof.FT2*100), policy.Tier(k))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	if err := protect.SavePolicy(w, policy, profiles); err != nil {
		die(err)
	}
	if *out != "-" {
		fmt.Printf("ft2policy: wrote %s\n", *out)
	}
}
