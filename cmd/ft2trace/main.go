// Command ft2trace injects one fault and prints how it propagates through
// the network — per-site deviation from the golden run — optionally with
// FT2 protection attached, reproducing the Section 4.1.1 style analysis:
//
//	ft2trace -model opt-6.7b-sim -layer FC2 -block 1 -step 2 -value 30000
//	ft2trace -model llama2-7b-sim -layer V_PROJ -block 0 -step 1 -nan -protect
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/tensor"
	"ft2/internal/trace"
)

func main() {
	modelName := flag.String("model", "opt-6.7b-sim", "zoo model name")
	dsName := flag.String("dataset", "squad-sim", "dataset for the prompt")
	layerName := flag.String("layer", "FC2", "layer kind to corrupt")
	block := flag.Int("block", 0, "block index")
	step := flag.Int("step", 1, "generation step of the fault")
	elem := flag.Int("elem", 0, "element index within the layer output")
	value := flag.Float64("value", 30000, "corrupted value to write")
	useNaN := flag.Bool("nan", false, "inject NaN instead of -value")
	protectFlag := flag.Bool("protect", false, "attach FT2 protection")
	threshold := flag.Float64("threshold", 1e-4, "relative-L2 reporting threshold")
	seed := flag.Int64("seed", 42, "model seed")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ft2trace:", err)
		os.Exit(1)
	}
	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		die(err)
	}
	var kind model.LayerKind
	found := false
	for _, k := range cfg.Family.LayerKinds() {
		if k.String() == *layerName {
			kind, found = k, true
		}
	}
	if !found {
		die(fmt.Errorf("layer %q not in family %v (have %v)", *layerName, cfg.Family, cfg.Family.LayerKinds()))
	}
	ds, err := data.ByName(*dsName, 1)
	if err != nil {
		die(err)
	}
	m, err := model.New(cfg, *seed, numerics.FP16)
	if err != nil {
		die(err)
	}

	corrupted := float32(*value)
	if *useNaN {
		corrupted = float32(math.NaN())
	}
	ref := model.LayerRef{Block: *block, Kind: kind}
	devs, err := trace.Run(m, ds.Inputs[0].Prompt, ds.GenTokens, func() {
		m.RegisterHook(func(ctx model.HookCtx, out *tensor.Tensor) {
			if ctx.Layer == ref && ctx.Step == *step && ctx.Site == model.SiteLinearOut {
				if *elem < len(out.Data) {
					out.Data[*elem] = corrupted
				}
			}
		})
		if *protectFlag {
			core.Attach(m, core.Defaults())
		}
	})
	if err != nil {
		die(err)
	}

	affected := trace.Affected(devs, *threshold)
	fmt.Printf("fault: %s step %d elem %d <- %g (protect=%v)\n", ref, *step, *elem, corrupted, *protectFlag)
	fmt.Printf("affected sites: %d of %d observations\n\n", len(affected), len(devs))
	fmt.Print(trace.Summarize(affected, cfg.Family))
}
