// Command ft2profile compares the two ways of obtaining range-restriction
// bounds: the expensive offline profiling pass over a corpus (with its
// modeled cost on the reference GPUs) and FT2's free first-token capture,
// printing both bound sets side by side for a model:
//
//	ft2profile -model opt-6.7b-sim -dataset squad-sim -inputs 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/perfmodel"
	"ft2/internal/protect"
)

func main() {
	modelName := flag.String("model", "opt-6.7b-sim", "zoo model name")
	dsName := flag.String("dataset", "squad-sim", "dataset name")
	inputs := flag.Int("inputs", 20, "profiling corpus size")
	seed := flag.Int64("seed", 42, "seed")
	flag.Parse()

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ft2profile:", err)
		os.Exit(1)
	}
	ds, err := data.ByName(*dsName, *inputs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ft2profile:", err)
		os.Exit(1)
	}
	m, err := model.New(cfg, *seed, numerics.FP16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ft2profile:", err)
		os.Exit(1)
	}

	// Offline profiling (wall-clock measured on the Go engine; hours
	// modeled for the reference hardware).
	start := time.Now()
	offline := protect.OfflineProfile(m, ds.Prompts(), ds.GenTokens)
	elapsed := time.Since(start)

	w := perfmodel.Workload{
		Params: cfg.RefParams, PromptTokens: ds.RefPromptTokens,
		GenTokens: ds.GenTokens, DType: numerics.FP16,
	}
	fmt.Printf("offline profiling: %d inputs in %.2fs on this machine\n", *inputs, elapsed.Seconds())
	fmt.Printf("reference cost for the real corpus (%d inputs): A100 %.1f h, H100 %.1f h\n",
		ds.RefProfilingInputs,
		perfmodel.ProfilingHours(perfmodel.A100, w, ds.RefProfilingInputs),
		perfmodel.ProfilingHours(perfmodel.H100, w, ds.RefProfilingInputs))

	// First-token capture on one input.
	f := core.Attach(m, core.Defaults())
	f.Generate(ds.Inputs[0].Prompt, ds.GenTokens)
	online := f.Bounds()
	f.Detach()

	fmt.Printf("\n%-28s %-24s %-24s\n", "layer", "offline bounds", "first-token bounds (×2)")
	type row struct {
		key protect.SiteKey
		off protect.Bounds
	}
	var rows []row
	for _, ref := range cfg.LinearLayers() {
		k := protect.SiteKey{Layer: ref, Site: model.SiteLinearOut}
		if b, ok := offline.Get(k); ok {
			rows = append(rows, row{k, b})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].key.Layer, rows[j].key.Layer
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Kind < b.Kind
	})
	for _, r := range rows {
		on, ok := online.Get(r.key)
		onStr := "(not protected by FT2)"
		if ok {
			sc := on.Scale(2)
			onStr = fmt.Sprintf("[%.2f, %.2f]", sc.Lo, sc.Hi)
		}
		fmt.Printf("%-28s [%.2f, %.2f]%-8s %s\n", r.key.Layer, r.off.Lo, r.off.Hi, "", onStr)
	}
	fmt.Printf("\nbounds memory: offline %d B, FT2 %d B (fp16 storage)\n",
		offline.MemoryBytes(numerics.FP16), online.MemoryBytes(numerics.FP16))
}
