// Command ft2inject runs a standalone fault-injection campaign for one
// model × dataset × fault model × protection cell and prints the SDC rate
// with its per-layer-kind breakdown:
//
//	ft2inject -model llama2-7b-sim -dataset gsm8k-sim -fault EXP -method ft2 -trials 500
//
// Campaigns are interruptible and resumable: SIGINT/SIGTERM (or -timeout)
// stops the run and prints the statistics over the completed trials, and
// with -journal/-resume a re-run executes only the missing trials.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ft2/internal/arch"
	"ft2/internal/campaign"
	"ft2/internal/cliutil"
	"ft2/internal/core"
	"ft2/internal/data"
	"ft2/internal/model"
	"ft2/internal/numerics"
	"ft2/internal/protect"
	"ft2/internal/report"
)

func main() {
	modelName := flag.String("model", "llama2-7b-sim", "zoo model name")
	dsName := flag.String("dataset", "squad-sim", "dataset name")
	faultName := flag.String("fault", "EXP", "fault model: 1-bit, 2-bit, EXP")
	methodName := flag.String("method", "none", "protection: none, ranger, maximals, globalclipper, ft2, ft2-offline")
	trials := flag.Int("trials", 300, "fault injections")
	inputs := flag.Int("inputs", 5, "evaluation inputs")
	profileN := flag.Int("profile", 40, "profiling-split size (offline methods)")
	dtypeName := flag.String("dtype", "fp16", "activation dtype: fp16, fp32")
	window := flag.String("window", "all", "injection window: all, first-token, following")
	seed := flag.Int64("seed", 42, "base seed")
	cf := cliutil.RegisterCampaign(flag.CommandLine)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ft2inject:", err)
		os.Exit(1)
	}
	if err := cf.Validate(); err != nil {
		die(err)
	}

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		die(err)
	}
	ds, err := data.ByName(*dsName, *inputs)
	if err != nil {
		die(err)
	}
	fm, err := parseFault(*faultName)
	if err != nil {
		die(err)
	}
	method, err := parseMethod(*methodName)
	if err != nil {
		die(err)
	}
	dtype := numerics.FP16
	if *dtypeName == "fp32" {
		dtype = numerics.FP32
	}

	spec := campaign.Spec{
		ModelCfg: cfg, ModelSeed: *seed, DType: dtype,
		Fault: fm, Method: method, FT2Opts: core.Defaults(),
		Dataset: ds, Trials: *trials, BaseSeed: *seed + 1000,
	}
	switch *window {
	case "first-token":
		spec.Window = campaign.WindowFirstToken
	case "following":
		spec.Window = campaign.WindowFollowing
	case "all":
	default:
		die(fmt.Errorf("unknown window %q", *window))
	}
	switch method {
	case arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2Offline:
		m, err := model.New(cfg, *seed, dtype)
		if err != nil {
			die(err)
		}
		spec.OfflineBounds = protect.OfflineProfile(m, ds.ProfileSplit(*profileN).Prompts(), ds.GenTokens)
	}

	ctx, stop := cf.Context()
	defer stop()
	j, err := cf.OpenJournal()
	if err != nil {
		die(err)
	}
	if j != nil {
		defer j.Close()
	}
	cf.ApplySpec(&spec, j)

	start := time.Now()
	res, err := campaign.RunContext(ctx, spec)
	interrupted := cliutil.Interrupted(err)
	if err != nil && !interrupted && res.Completed == 0 {
		die(err)
	}

	fmt.Printf("model=%s dataset=%s fault=%s method=%s dtype=%s window=%s (%.1fs)\n",
		cfg.Name, ds.Name, fm, method, dtype, *window, time.Since(start).Seconds())
	fmt.Printf("SDC rate: %s\n", res.SDC)
	fmt.Printf("corrections: %d out-of-bound, %d NaN\n", res.Corrections.OutOfBound, res.Corrections.NaN)
	fmt.Println("per-layer-kind SDC:")
	kinds := make([]model.LayerKind, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-10s %s\n", k, res.ByKind[k])
	}
	if res.Partial() || res.Failed > 0 {
		byKind := make(map[string]int, len(res.FailuresByKind))
		for k, n := range res.FailuresByKind {
			byKind[k.String()] = n
		}
		fmt.Println()
		fmt.Println(report.CampaignBreakdown(res.Completed, res.Failed, res.Skipped, byKind, res.ErrorSummaries()).String())
	}
	if interrupted {
		os.Exit(cf.InterruptNotice("ft2inject", err))
	}
	if err != nil {
		die(err)
	}
}

func parseFault(s string) (numerics.FaultModel, error) {
	switch s {
	case "1-bit":
		return numerics.SingleBit, nil
	case "2-bit":
		return numerics.DoubleBit, nil
	case "EXP", "exp":
		return numerics.ExponentBit, nil
	default:
		return 0, fmt.Errorf("unknown fault model %q", s)
	}
}

func parseMethod(s string) (arch.Method, error) {
	switch s {
	case "none":
		return arch.MethodNone, nil
	case "ranger":
		return arch.MethodRanger, nil
	case "maximals":
		return arch.MethodMaxiMals, nil
	case "globalclipper":
		return arch.MethodGlobalClipper, nil
	case "ft2":
		return arch.MethodFT2, nil
	case "ft2-offline":
		return arch.MethodFT2Offline, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
