// Command ft2critical prints the structural criticality analysis for a zoo
// model: each linear layer kind, what follows it on the dataflow path, the
// heuristic verdict, the Table 1 protection-coverage matrix, and which
// critical layers each baseline leaves exposed:
//
//	ft2critical -model llama2-7b-sim
package main

import (
	"flag"
	"fmt"
	"os"

	"ft2/internal/arch"
	"ft2/internal/model"
)

func main() {
	modelName := flag.String("model", "llama2-7b-sim", "zoo model name")
	flag.Parse()

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ft2critical:", err)
		os.Exit(1)
	}

	fmt.Printf("model %s (family %s, %d blocks)\n\n", cfg.Name, cfg.Family, cfg.Blocks)
	fmt.Println("heuristic: a layer is critical iff no scaling operation or activation")
	fmt.Print("layer is present before the next linear layer\n\n")

	fmt.Printf("%-10s %-12s %-9s\n", "layer", "followed by", "critical")
	for _, k := range cfg.Family.LayerKinds() {
		crit := "no"
		if arch.IsCritical(cfg.Family, k) {
			crit = "YES"
		}
		fmt.Printf("%-10s %-12s %-9s\n", k, arch.NextOp(cfg.Family, k), crit)
	}

	fmt.Printf("\ncritical layer instances: %d of %d linear layers\n",
		len(arch.CriticalLayers(cfg)), len(cfg.LinearLayers()))

	fmt.Println("\ncoverage matrix (Table 1):")
	fmt.Println(arch.CoverageTable(cfg.Family))

	fmt.Println("critical layers left unprotected per method:")
	for _, m := range []arch.Method{arch.MethodRanger, arch.MethodMaxiMals, arch.MethodGlobalClipper, arch.MethodFT2} {
		gaps := arch.UnprotectedCritical(m, cfg.Family)
		if len(gaps) == 0 {
			fmt.Printf("  %-16s (none — full critical coverage)\n", m)
			continue
		}
		fmt.Printf("  %-16s %v\n", m, gaps)
	}
}
